(* Reconnect cost as a function of divergence (the ConflictSync claim).

   Two replicas share a seeded state, then diverge by a controlled
   ratio — disjoint updates applied on each side of a simulated
   partition whose traffic is lost — and reconnect.  From the reconnect
   on, every delivered message is sized exactly by the lib/wire codecs
   (exact framed bytes via the counting trace sink), and the sweep
   records what each synchronization family pays to re-converge:

   - conflict-sync : digest detection + rateless-IBLT / Bloom session,
     expected to scale with the difference |⇓a △ ⇓b|;
   - merkle        : hash-tree descent, scales with touched buckets;
   - delta-classic : its recovery resync ships the full durable state,
     scales with |⇓a ∪ ⇓b| regardless of the difference;
   - state-based   : full state both ways, the floor baseline.

   The reconnect event restarts replica 1 (crash + recover at the heal
   boundary), which is the uniform trigger every protocol understands:
   each runs whatever reconnect machinery it owns — delta-classic's
   SyncReq/SyncResp, conflict-sync's resync session, merkle's and
   state-based's ordinary anti-entropy.

   The run fails (non-zero exit through an exception) unless, on every
   (crdt, ratio) cell, conflict-sync's reconnect bytes undercut both
   merkle and delta-classic, and unless its cost at 0.1% divergence is
   at most a tenth of its cost at 50% — the difference-scaling headline.
   A partition-heal cluster scenario (lib/sim/fault schedule, heal at
   the measured boundary, partition-tolerant protocols only) rides
   along for the multi-node picture.  With --json the tables land in
   BENCH_divergence_sweep.json. *)

open Crdt_core
open Crdt_sim
module Workload = Crdt_engine.Workload
module Registry = Crdt_engine.Registry
module Trace = Crdt_engine.Trace

type pair_row = {
  crdt : string;
  protocol : string;
  ratio : float;
  seeded : int;  (** irreducibles both sides share before the gap. *)
  diff : int;  (** size of the symmetric difference at reconnect. *)
  reconnect_bytes : int;  (** exact framed bytes, reconnect → equality. *)
  digest_bytes : int;  (** the control-traffic share of those bytes. *)
  messages : int;
  rounds : int;  (** reconnect rounds until states were equal. *)
  converged : bool;
}

type cluster_row = {
  c_protocol : string;
  c_nodes : int;
  c_heal_bytes : int;  (** exact framed bytes over the post-heal tail. *)
  c_heal_rounds : int;
  c_converged : bool;
}

(* -- the two-replica divergence cell ------------------------------------ *)

module Pair (C : Crdt_proto.Protocol_intf.CRDT) = struct
  module type PROTO =
    Crdt_proto.Protocol_intf.PROTOCOL
      with type crdt = C.t
       and type op = C.op

  let proto name : (module PROTO) =
    Registry.instantiate
      (Registry.find_protocol name)
      (module C : Crdt_proto.Protocol_intf.CRDT
        with type t = C.t
         and type op = C.op)

  (* Seed both replicas with [seed_ops] (applied at 0, synced across),
     apply the disjoint gap ops while discarding all traffic, restart
     replica 1 at the heal boundary, then count delivered wire bytes
     until the states are equal again. *)
  let measure (module P : PROTO) ~crdt ~ratio ~seeded ~diff ~seed_ops ~gap0
      ~gap1 =
    let module D = Crdt_engine.Driver.Make (P) in
    let counters = Trace.make_counters () in
    let sink = Trace.counting counters in
    let a = D.create ~sink ~exact_bytes:true ~id:0 ~neighbors:[ 1 ] ~total:2 ()
    and b =
      D.create ~sink ~exact_bytes:true ~id:1 ~neighbors:[ 0 ] ~total:2 ()
    in
    let node = function 0 -> a | _ -> b in
    let round = ref 0 in
    let q = Queue.create () in
    let emit_from src ~dest msg = Queue.add (src, dest, msg) q in
    (* Replies cascade within the round, like the simulator's loop. *)
    let drain () =
      while not (Queue.is_empty q) do
        let src, dest, msg = Queue.pop q in
        D.deliver (node dest) ~round:!round ~src ~emit:(emit_from dest) msg
      done
    in
    let equal () = C.equal (D.state a) (D.state b) in
    let exchange limit =
      let r0 = !round in
      while (not (equal ())) && !round - r0 < limit do
        D.tick a ~round:!round ~emit:(emit_from 0);
        D.tick b ~round:!round ~emit:(emit_from 1);
        drain ();
        incr round
      done;
      !round - r0
    in
    ignore (D.apply a seed_ops);
    ignore (exchange 32);
    if not (equal ()) then
      failwith
        (Printf.sprintf "divergence_sweep: %s/%s seed phase did not converge"
           crdt P.protocol_name);
    (* Partition gap: disjoint updates per side, every message lost.  A
       few discarded ticks flush the protocols' send buffers, exactly
       what a real cut does to them. *)
    ignore (D.apply a gap0);
    ignore (D.apply b gap1);
    let discard ~dest:_ _ = () in
    for _ = 1 to 3 do
      D.tick a ~round:!round ~emit:discard;
      D.tick b ~round:!round ~emit:discard;
      incr round
    done;
    Queue.clear q;
    (* Reconnect: replica 1 restarts; count everything from here. *)
    Trace.reset_counters counters;
    D.crash b ~round:!round;
    D.recover b ~round:!round;
    let rounds = exchange 64 in
    {
      crdt;
      protocol = P.protocol_name;
      ratio;
      seeded;
      diff;
      reconnect_bytes = counters.Trace.wire_bytes;
      digest_bytes = counters.Trace.digest_bytes;
      messages = counters.Trace.messages;
      rounds;
      converged = equal ();
    }
end

module P_gset = Pair (Gset.Of_int)
module P_gmap = Pair (Gmap.Versioned)

let pair_protocols =
  [ "conflict-sync"; "merkle"; "delta-classic"; "state-based" ]

(* d unique updates split across the two sides; always at least one so
   a "0.1% of a quick-scale state" cell still diverges. *)
let split ~seeded ratio =
  let d = max 1 (int_of_float (ratio *. float_of_int seeded)) in
  (d, (d + 1) / 2, d / 2)

(* Realistic identifiers, not dense small ints: set members and map keys
   in deployed CRDTs are content hashes, UUIDs and object ids, i.e.
   full-width integers (the paper's byte model likewise charges 8 B per
   int).  A dense [0..n) keyspace would make every element a 1–2 byte
   varint and full-state resync artificially cheap.  The LCG is a
   bijection mod 2^64, so distinct inputs stay distinct. *)
let ident i = ((i * 0x2545F4914F6CDD1D) + 0x123456789ABCDEF) land max_int

let gset_cell ~seeded ~ratio protocol =
  let d, d0, d1 = split ~seeded ratio in
  P_gset.measure (P_gset.proto protocol) ~crdt:"gset" ~ratio ~seeded ~diff:d
    ~seed_ops:(List.init seeded ident)
    ~gap0:(List.init d0 (fun i -> ident (1_000_000 + i)))
    ~gap1:(List.init d1 (fun i -> ident (2_000_000 + i)))

let gmap_cell ~seeded ~ratio protocol =
  let d, d0, d1 = split ~seeded ratio in
  let bump k = Gmap.Versioned.Apply (ident k, Version.Bump) in
  P_gmap.measure (P_gmap.proto protocol) ~crdt:"gmap" ~ratio ~seeded ~diff:d
    ~seed_ops:(List.init seeded bump)
    ~gap0:(List.init d0 (fun i -> bump (1_000_000 + i)))
    ~gap1:(List.init d1 (fun i -> bump (2_000_000 + i)))

let pair_rows ~seeded ~ratios =
  List.concat_map
    (fun ratio ->
      List.map (gset_cell ~seeded ~ratio) pair_protocols
      @ List.map (gmap_cell ~seeded ~ratio) pair_protocols)
    ratios

(* -- partition-heal cluster scenario ------------------------------------ *)

(* Half the partial mesh is cut from the other half for the back half of
   the measured phase; the heal lands at the measured boundary, so the
   quiescent tail is exactly the post-heal reconciliation — its wire
   bytes are the cluster reconnect cost.  Only protocols declaring
   partition tolerance can run the plan (delta-classic cannot; the
   ack-mode δ-buffer stands in for the delta family). *)
let cluster_protocols =
  [ "conflict-sync"; "merkle"; "delta-bp+rr-ack"; "state-based" ]

let cluster_cell ~nodes ~rounds protocol =
  let module C = Gset.Of_int in
  let module P =
    (val Registry.instantiate
           (Registry.find_protocol protocol)
           (module C : Crdt_proto.Protocol_intf.CRDT
             with type t = C.t
              and type op = C.op))
  in
  let module R = Runner.Make (P) in
  let half = List.init (nodes / 2) (fun i -> i) in
  let rest = List.init (nodes - (nodes / 2)) (fun i -> (nodes / 2) + i) in
  let faults =
    {
      Fault.none with
      Fault.partitions =
        [
          Fault.partition ~from_round:(rounds / 3) ~heal_round:rounds
            [ half; rest ];
        ];
    }
  in
  let res =
    R.run ~faults ~bytes:Metrics.Exact ~equal:C.equal
      ~topology:(Topology.partial_mesh nodes)
      ~rounds
      ~ops:(fun ~round ~node _ -> Workload.gset ~nodes ~round ~node ())
      ()
  in
  let tail = Metrics.summarize res.R.quiesce_rounds in
  {
    c_protocol = protocol;
    c_nodes = nodes;
    c_heal_bytes = tail.Metrics.total_wire_bytes;
    c_heal_rounds = Array.length res.R.quiesce_rounds;
    c_converged = res.R.converged;
  }

(* -- assertions ---------------------------------------------------------- *)

(* The paper's claim, checked per cell on exact bytes: conflict-sync's
   reconnect cost undercuts both the tree baseline and the delta
   family's full-state resync. *)
let check_pair_ordering rows =
  let cells =
    List.sort_uniq compare (List.map (fun r -> (r.crdt, r.ratio)) rows)
  in
  List.filter_map
    (fun (crdt, ratio) ->
      let find proto =
        List.find
          (fun r -> r.crdt = crdt && r.ratio = ratio && r.protocol = proto)
          rows
      in
      let cs = find "conflict-sync"
      and mk = find "merkle"
      and cl = find "delta-classic" in
      if
        cs.reconnect_bytes < mk.reconnect_bytes
        && cs.reconnect_bytes < cl.reconnect_bytes
      then None
      else
        Some
          (Printf.sprintf
             "%s @ %.3f: conflict-sync=%d merkle=%d delta-classic=%d \
              violates conflict-sync < min(merkle, delta-classic)"
             crdt ratio cs.reconnect_bytes mk.reconnect_bytes
             cl.reconnect_bytes))
    cells

(* Difference scaling: the cheapest-divergence cell must cost at most a
   tenth of the worst-divergence cell (per CRDT). *)
let check_scaling rows =
  List.filter_map
    (fun crdt ->
      let at ratio =
        List.find
          (fun r ->
            r.crdt = crdt && r.protocol = "conflict-sync" && r.ratio = ratio)
          rows
      in
      let ratios =
        List.sort_uniq compare
          (List.filter_map
             (fun r -> if r.crdt = crdt then Some r.ratio else None)
             rows)
      in
      let lo = at (List.hd ratios) and hi = at (List.hd (List.rev ratios)) in
      if lo.reconnect_bytes * 10 <= hi.reconnect_bytes then None
      else
        Some
          (Printf.sprintf
             "%s: conflict-sync %d B @ %.3f not <= 1/10 of %d B @ %.3f" crdt
             lo.reconnect_bytes lo.ratio hi.reconnect_bytes hi.ratio))
    (List.sort_uniq compare (List.map (fun r -> r.crdt) rows))

let check_converged rows =
  List.filter_map
    (fun r ->
      if r.converged then None
      else
        Some
          (Printf.sprintf "%s/%s @ %.3f did not re-converge" r.crdt r.protocol
             r.ratio))
    rows

(* -- reporting ----------------------------------------------------------- *)

let print_pair rows =
  Report.table
    ~header:
      [
        "crdt"; "ratio"; "diff"; "protocol"; "reconnect B"; "digest B";
        "msgs"; "rounds";
      ]
    (List.map
       (fun r ->
         [
           r.crdt;
           Printf.sprintf "%.3f" r.ratio;
           string_of_int r.diff;
           r.protocol;
           string_of_int r.reconnect_bytes;
           string_of_int r.digest_bytes;
           string_of_int r.messages;
           Printf.sprintf "%d%s" r.rounds (if r.converged then "" else "!");
         ])
       rows)

let print_cluster rows =
  Report.table
    ~header:[ "protocol"; "nodes"; "heal B"; "heal rounds" ]
    (List.map
       (fun r ->
         [
           r.c_protocol;
           string_of_int r.c_nodes;
           string_of_int r.c_heal_bytes;
           Printf.sprintf "%d%s" r.c_heal_rounds
             (if r.c_converged then "" else "!");
         ])
       rows)

let write_json path ~scale ~seeded pair cluster =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"bench\": \"divergence_sweep\",\n  \"schema\": 1,\n";
  out "  \"host\": %s,\n" (Report.host_json ());
  out "  \"scale\": %S,\n" scale;
  out "  \"seeded\": %d,\n" seeded;
  out
    "  \"accounting\": \"exact framed wire bytes (lib/wire codecs), \
     reconnect phase only\",\n";
  out "  \"pair_sweep\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"crdt\": %S, \"ratio\": %.3f, \"diff\": %d, \"protocol\": %S,\n\
        \     \"reconnect_bytes\": %d, \"digest_bytes\": %d, \"messages\": \
         %d, \"rounds\": %d, \"converged\": %b}%s\n"
        r.crdt r.ratio r.diff r.protocol r.reconnect_bytes r.digest_bytes
        r.messages r.rounds r.converged
        (if i = List.length pair - 1 then "" else ","))
    pair;
  out "  ],\n  \"partition_heal\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"crdt\": \"gset\", \"protocol\": %S, \"nodes\": %d, \
         \"heal_bytes\": %d, \"heal_rounds\": %d, \"converged\": %b}%s\n"
        r.c_protocol r.c_nodes r.c_heal_bytes r.c_heal_rounds r.c_converged
        (if i = List.length cluster - 1 then "" else ","))
    cluster;
  out "  ]\n}\n";
  close_out oc;
  Report.note "wrote %s" path

let run ?(quick = false) ?json_path () =
  let seeded = if quick then 1500 else 4000 in
  let ratios = if quick then [ 0.001; 0.5 ] else [ 0.001; 0.01; 0.1; 0.5 ] in
  let nodes = if quick then 6 else 8 in
  let rounds = if quick then 9 else 12 in
  Report.section "divergence_sweep"
    "reconnect wire bytes vs divergence ratio (conflict-sync claim)";
  let pair = pair_rows ~seeded ~ratios in
  print_pair pair;
  let cluster = List.map (cluster_cell ~nodes ~rounds) cluster_protocols in
  Report.note "partition-heal cluster (gset, partial mesh, heal at measured \
               boundary):";
  print_cluster cluster;
  (match json_path with
  | None -> ()
  | Some path ->
      write_json path
        ~scale:(if quick then "quick" else "default")
        ~seeded pair cluster);
  let violations =
    check_converged pair @ check_pair_ordering pair @ check_scaling pair
    @ List.filter_map
        (fun r ->
          if r.c_converged then None
          else Some (Printf.sprintf "cluster %s did not heal" r.c_protocol))
        cluster
  in
  match violations with
  | [] ->
      Report.note
        "conflict-sync < min(merkle, delta-classic) on all cells; 10x \
         difference scaling holds"
  | vs ->
      List.iter (fun v -> Report.note "VIOLATION: %s" v) vs;
      failwith "divergence_sweep: reconnect-cost claims violated"
