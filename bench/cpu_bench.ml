(* Wall-clock micro-benchmarks (bechamel) for the primitive operations
   whose cost drives Fig. 1-right and Fig. 12: join, decomposition, the
   optimal delta Δ, and the two receive paths of Algorithm 1 (classic
   inflation check vs RR extraction). *)

open Bechamel
open Crdt_core

let rng = Random.State.make [| 2024 |]

let gset n =
  Gset.Of_int.of_list (List.init n (fun _ -> Random.State.int rng 1_000_000))

let gcounter n =
  Gcounter.of_list
    (List.init n (fun i ->
         (Replica_id.of_int i, 1 + Random.State.int rng 100)))

let gmap n =
  Gmap.Versioned.of_list
    (List.init n (fun i -> (i, 1 + Random.State.int rng 100)))

module Dset = Delta.Make (Gset.Of_int)
module Dmap = Delta.Make (Gmap.Versioned)

let tests =
  let s1 = gset 1000 and s2 = gset 1000 in
  let small = gset 10 in
  let c1 = gcounter 64 and c2 = gcounter 64 in
  let m1 = gmap 1000 and m2 = gmap 1000 in
  Test.make_grouped ~name:"crdt-ops"
    [
      Test.make ~name:"gset-join-1k"
        (Staged.stage (fun () -> ignore (Gset.Of_int.join s1 s2)));
      Test.make ~name:"gcounter-join-64"
        (Staged.stage (fun () -> ignore (Gcounter.join c1 c2)));
      Test.make ~name:"gmap-join-1k"
        (Staged.stage (fun () -> ignore (Gmap.Versioned.join m1 m2)));
      Test.make ~name:"gset-decompose-1k"
        (Staged.stage (fun () -> ignore (Gset.Of_int.decompose s1)));
      Test.make ~name:"gmap-decompose-1k"
        (Staged.stage (fun () -> ignore (Gmap.Versioned.decompose m1)));
      Test.make ~name:"gset-delta-generic-1k"
        (Staged.stage (fun () -> ignore (Dset.delta s1 s2)));
      Test.make ~name:"gset-delta-structural-1k"
        (Staged.stage (fun () -> ignore (Gset.Of_int.delta s1 s2)));
      Test.make ~name:"gmap-delta-generic-1k"
        (Staged.stage (fun () -> ignore (Dmap.delta m1 m2)));
      Test.make ~name:"gmap-delta-structural-1k"
        (Staged.stage (fun () -> ignore (Gmap.Versioned.delta m1 m2)));
      (* The two receive paths of Algorithm 1 on a small δ-group against
         a large local state: classic pays a ⊑ check and then re-buffers
         everything; RR pays one structural Δ of the (small) group. *)
      Test.make ~name:"classic-inflation-check"
        (Staged.stage (fun () -> ignore (Gset.Of_int.leq small s1)));
      Test.make ~name:"rr-extraction"
        (Staged.stage (fun () -> ignore (Gset.Of_int.delta small s1)));
      Test.make ~name:"rr-extraction-generic"
        (Staged.stage (fun () -> ignore (Dset.delta small s1)));
    ]

let run () =
  Report.section "CPU" "per-operation wall-clock cost (bechamel)";
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> Printf.sprintf "%.0f ns" x
        | _ -> "n/a"
      in
      rows := [ name; ns ] :: !rows)
    results;
  Report.table
    ~header:[ "operation"; "time per run" ]
    (List.sort compare !rows)
