(* Micro-kernels for the two hot paths the structural-delta work
   optimizes:

   1. Δ(a,b) itself — the generic decompose-then-filter oracle
      (Delta.Make) against the structural DECOMPOSABLE.delta, across
      GCounter / GSet / GMap at several state sizes;
   2. the δ-buffer — the seed's list-buffer store/tick loop (append per
      store, fold-the-buffer per neighbor) against the incremental
      per-origin groups of Delta_sync, at several operations-per-round.

   Results print as tables and, with --json, land in
   BENCH_delta_kernels.json so the perf trajectory is machine-readable
   across PRs. *)

open Crdt_core

let rng = Random.State.make [| 2024 |]

(* -- timing ------------------------------------------------------------ *)

(* Nanoseconds per call of [f], growing the iteration count until the
   sample is long enough to trust Sys.time's resolution. *)
let ns_per_run f =
  ignore (f ());
  let rec measure iters =
    let t0 = Sys.time () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = Sys.time () -. t0 in
    if dt < 0.2 && iters < 20_000_000 then measure (iters * 4)
    else dt /. float_of_int iters *. 1e9
  in
  measure 1

(* -- Δ kernels --------------------------------------------------------- *)

module Gs = Gset.Of_int
module Dset = Delta.Make (Gs)
module Dmap = Delta.Make (Gmap.Versioned)
module Dcounter = Delta.Make (Gcounter)

(* States where half of [a] is redundant against [b] — the regime the RR
   extraction lives in. *)
let gset_pair n =
  (Gs.of_list (List.init n Fun.id), Gs.of_list (List.init n (fun i -> i + (n / 2))))

let gmap_pair n =
  ( Gmap.Versioned.of_list (List.init n (fun i -> (i, 2))),
    Gmap.Versioned.of_list
      (List.init n (fun i ->
           if i < n / 2 then (i + (n / 2), 2) else (i + (n / 2), 1))) )

let gcounter_pair n =
  ( Gcounter.of_list (List.init n (fun i -> (Replica_id.of_int i, 2))),
    Gcounter.of_list
      (List.init n (fun i ->
           (Replica_id.of_int (i + (n / 2)), if i < n / 2 then 2 else 1))) )

type delta_row = {
  crdt : string;
  size : int;
  generic_ns : float;
  structural_ns : float;
}

let delta_kernels sizes =
  List.concat_map
    (fun size ->
      let s1, s2 = gset_pair size in
      let m1, m2 = gmap_pair size in
      let c1, c2 = gcounter_pair size in
      [
        {
          crdt = "gset";
          size;
          generic_ns = ns_per_run (fun () -> Dset.delta s1 s2);
          structural_ns = ns_per_run (fun () -> Gs.delta s1 s2);
        };
        {
          crdt = "gmap";
          size;
          generic_ns = ns_per_run (fun () -> Dmap.delta m1 m2);
          structural_ns = ns_per_run (fun () -> Gmap.Versioned.delta m1 m2);
        };
        {
          crdt = "gcounter";
          size;
          generic_ns = ns_per_run (fun () -> Dcounter.delta c1 c2);
          structural_ns = ns_per_run (fun () -> Gcounter.delta c1 c2);
        };
      ])
    sizes

(* -- δ-buffer kernels -------------------------------------------------- *)

(* The seed's buffer representation, preserved here as the baseline: a
   seq-ordered entry list with an O(|B|) append per store and one fold
   over the whole buffer per neighbor at tick. *)
module Classic_buffer = struct
  type entry = { delta : Gs.t; origin : int }
  type node = { x : Gs.t; buffer : entry list }

  let init = { x = Gs.bottom; buffer = [] }

  let store n delta origin =
    { x = Gs.join n.x delta; buffer = n.buffer @ [ { delta; origin } ] }

  let local_update self rid n e =
    let d = Gs.delta_mutate e rid n.x in
    if Gs.is_bottom d then n else store n d self

  let tick neighbors n =
    let msgs =
      List.filter_map
        (fun j ->
          let g =
            List.fold_left
              (fun acc e ->
                if e.origin = j then acc else Gs.join acc e.delta)
              Gs.bottom n.buffer
          in
          if Gs.is_bottom g then None else Some (j, g))
        neighbors
    in
    ({ n with buffer = [] }, msgs)
end

module P = Crdt_proto.Delta_sync.Make (Gs) (Crdt_proto.Delta_sync.Bp_rr_config)

let neighbors = [ 1; 2; 3 ]
let rounds = 8

(* One measured unit: [rounds] rounds of [ops] fresh local updates
   followed by a tick whose messages are discarded (the kernel isolates
   the sender side: store cost + δ-group assembly). *)
let classic_loop ops () =
  let rid = Replica_id.of_int 0 in
  let n = ref Classic_buffer.init in
  for r = 0 to rounds - 1 do
    for i = 0 to ops - 1 do
      n := Classic_buffer.local_update 0 rid !n ((r * ops) + i)
    done;
    let n', msgs = Classic_buffer.tick neighbors !n in
    ignore (Sys.opaque_identity msgs);
    n := n'
  done;
  Gs.cardinal !n.Classic_buffer.x

let incremental_loop ops () =
  let n = ref (P.init ~id:0 ~neighbors ~total:4) in
  for r = 0 to rounds - 1 do
    for i = 0 to ops - 1 do
      n := P.local_update !n ((r * ops) + i)
    done;
    let n', msgs = P.tick !n in
    ignore (Sys.opaque_identity msgs);
    n := n'
  done;
  Gs.cardinal (P.state !n)

type buffer_row = { ops : int; classic_ns : float; incremental_ns : float }

let buffer_kernels ops_list =
  List.map
    (fun ops ->
      let per_op total = total /. float_of_int (rounds * ops) in
      {
        ops;
        classic_ns = per_op (ns_per_run (classic_loop ops));
        incremental_ns = per_op (ns_per_run (incremental_loop ops));
      })
    ops_list

(* -- reporting --------------------------------------------------------- *)

let ns v = Printf.sprintf "%.0f ns" v
let speedup g s = Printf.sprintf "%.1fx" (g /. s)

let json_escape_float v =
  (* JSON has no NaN/inf; the kernels never produce them, but keep the
     emitter total. *)
  if Float.is_finite v then Printf.sprintf "%.1f" v else "null"

let write_json path ~scale ~deltas ~buffers =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"bench\": \"delta_kernels\",\n  \"schema\": 1,\n";
  out "  \"host\": %s,\n" (Report.host_json ());
  out "  \"scale\": %S,\n" scale;
  out "  \"delta_kernels\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"crdt\": %S, \"size\": %d, \"generic_ns\": %s, \
         \"structural_ns\": %s, \"speedup\": %s}%s\n"
        r.crdt r.size
        (json_escape_float r.generic_ns)
        (json_escape_float r.structural_ns)
        (json_escape_float (r.generic_ns /. r.structural_ns))
        (if i = List.length deltas - 1 then "" else ","))
    deltas;
  out "  ],\n  \"buffer_loop\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"ops_per_round\": %d, \"classic_ns_per_op\": %s, \
         \"incremental_ns_per_op\": %s, \"speedup\": %s}%s\n"
        r.ops
        (json_escape_float r.classic_ns)
        (json_escape_float r.incremental_ns)
        (json_escape_float (r.classic_ns /. r.incremental_ns))
        (if i = List.length buffers - 1 then "" else ","))
    buffers;
  out "  ]\n}\n";
  close_out oc;
  Report.note "wrote %s" path

let run ?(quick = false) ?json_path () =
  ignore rng;
  let sizes = if quick then [ 256; 1024 ] else [ 256; 1024; 8192 ] in
  let ops_list = if quick then [ 64; 256; 1024 ] else [ 64; 256; 1024; 4096 ] in
  Report.section "delta"
    "structural Δ vs generic decomposition; incremental vs list δ-buffers";
  let deltas = delta_kernels sizes in
  Report.table
    ~header:[ "Δ kernel"; "size"; "generic"; "structural"; "speedup" ]
    (List.map
       (fun r ->
         [
           r.crdt;
           string_of_int r.size;
           ns r.generic_ns;
           ns r.structural_ns;
           speedup r.generic_ns r.structural_ns;
         ])
       deltas);
  Report.note
    "generic = Delta.Make (materialize ⇓a, filter, join); structural = \
     DECOMPOSABLE.delta";
  let buffers = buffer_kernels ops_list in
  Report.table
    ~header:
      [ "store+tick loop"; "ops/round"; "classic"; "incremental"; "speedup" ]
    (List.map
       (fun r ->
         [
           "delta-bp+rr";
           string_of_int r.ops;
           ns r.classic_ns;
           ns r.incremental_ns;
           speedup r.classic_ns r.incremental_ns;
         ])
       buffers);
  Report.note
    "per-op cost of a round of local updates + one tick to %d neighbors; \
     classic = list append per store + whole-buffer fold per neighbor"
    (List.length neighbors);
  match json_path with
  | None -> ()
  | Some path ->
      write_json path
        ~scale:(if quick then "quick" else "default")
        ~deltas ~buffers
