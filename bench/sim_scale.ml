(* Node-count scalability of the simulation engine itself.

   Sweeps 16/32/64/128/256 nodes over tree and partial-mesh topologies,
   GSet and GMap workloads, classic and BP+RR delta protocols, and
   reports wall-clock per round plus throughput (messages/sec, ops/sec)
   for three configurations:

   - legacy: the full pre-PR stack, vendored below at the seed revision —
     the list-queue runner (O(n²) appends, Queue→list→Queue round-trips,
     a functional 9-field record update per message) driving the pre-PR
     delta protocol (per-message C.weight/C.byte_size traversals,
     per-origin buffer groups maintained even without BP) over the
     pre-PR map lattice (merge-walk ⊑/Δ, fold-the-map weight/byte_size);
   - seq:    the allocation-light wave engine at domains = 1, on the
     optimized protocol/lattice hot paths;
   - par N:  the same engine with an N-domain pool.

   Both stacks compute identical protocol semantics (same messages, same
   metric values, same convergence) — only the wall-clock differs, so
   legacy/seq is exactly what this PR buys end to end.  With --json the
   table also lands in BENCH_sim_scale.json so the perf trajectory is
   tracked across PRs. *)

open Crdt_core
open Crdt_sim
module Workload = Crdt_engine.Workload

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Best-of-[samples] wall time: every engine recomputes the same
   deterministic run, so the minimum is the cleanest estimate of its
   cost on a shared host — scheduler noise only ever adds time. *)
let wall_best ~samples f =
  let rec go best_r best_s i =
    if i >= samples then (best_r, best_s)
    else
      let r, s = wall f in
      if s < best_s then go r s (i + 1) else go best_r best_s (i + 1)
  in
  let r, s = wall f in
  go r s 1

(* ----------------------------------------------------------------------- *)
(* The pre-PR baseline stack, vendored at the seed revision.               *)
(* ----------------------------------------------------------------------- *)

module Legacy_stack = struct
  (* The slice of the CRDT signature the baseline protocol consumes. *)
  module type BASE = sig
    type t
    type op

    val bottom : t
    val is_bottom : t -> bool
    val equal : t -> t -> bool
    val join : t -> t -> t
    val leq : t -> t -> bool
    val weight : t -> int
    val byte_size : t -> int
    val delta : t -> t -> t
    val delta_mutate : op -> Replica_id.t -> t -> t
  end

  (* Pre-PR GMap (Int ↪→ Version): merge-walk [leq]/[delta] that traverse
     (and, for [leq]/[delta], allocate over) both maps, and
     fold-the-whole-map [weight]/[byte_size] — the lattice hot paths this
     PR replaced with lookup walks and cached sizes. *)
  module Gmap_versioned : BASE with type op = Gmap.Versioned.op = struct
    module M = Map.Make (Int)

    type t = Version.t M.t
    type op = Gmap.Versioned.op

    let bottom = M.empty
    let is_bottom = M.is_empty
    let equal = M.equal Version.equal
    let join = M.union (fun _k a b -> Some (Version.join a b))

    exception Not_leq

    let leq m1 m2 =
      match
        M.merge
          (fun _k v1 v2 ->
            match (v1, v2) with
            | None, _ -> None
            | Some v1, Some v2 ->
                if Version.leq v1 v2 then None else raise Not_leq
            | Some _, None -> raise Not_leq)
          m1 m2
      with
      | _ -> true
      | exception Not_leq -> false

    let weight m = M.fold (fun _ v acc -> acc + Version.weight v) m 0
    let byte_size m = M.fold (fun _ v acc -> acc + 8 + Version.byte_size v) m 0

    let delta m1 m2 =
      M.merge
        (fun _k v1 v2 ->
          match (v1, v2) with
          | None, _ -> None
          | Some v1, None -> Some v1
          | Some v1, Some v2 ->
              let d = Version.delta v1 v2 in
              if Version.is_bottom d then None else Some d)
        m1 m2

    let find k m =
      match M.find_opt k m with Some v -> v | None -> Version.bottom

    let delta_mutate (Gmap.Versioned.Apply (k, vop)) i m =
      let d = Version.delta_mutate vop i (find k m) in
      if Version.is_bottom d then M.empty else M.singleton k d
  end

  (* GSet is set-difference/subset-based in both eras (this PR did not
     touch Powerset), so the current module doubles as its own pre-PR
     lattice; only the protocol/engine layers above it differ. *)
  module Gset_base : BASE with type op = Gset.Of_int.op = Gset.Of_int

  (* One vendored baseline = pre-PR delta protocol (non-ack modes; the
     sweep exercises classic and BP+RR) under the pre-PR runner.  Both
     are verbatim ports of the seed revision, minus the ack-mode and
     fault-injection branches the sweep never takes. *)
  module Runner (B : BASE) (Cfg : sig
    val config : Crdt_proto.Delta_sync.config
  end) =
  struct
    module Origins = Map.Make (Int)

    let cfg = Cfg.config

    type node = {
      id : Replica_id.t;
      self : int;
      neighbors : int list;
      x : B.t;
      groups : B.t Origins.t;
      pending : B.t;
      next_seq : int;
      work : int;
    }

    type message = Delta of { group : B.t; seq : int }

    let init ~id ~neighbors =
      {
        id = Replica_id.of_int id;
        self = id;
        neighbors;
        x = B.bottom;
        groups = Origins.empty;
        pending = B.bottom;
        next_seq = 0;
        work = 0;
      }

    (* Pre-PR store: per-origin group joined even without BP. *)
    let store n delta origin =
      {
        n with
        x = B.join n.x delta;
        next_seq = n.next_seq + 1;
        work = n.work + B.weight delta;
        groups =
          Origins.update origin
            (function None -> Some delta | Some g -> Some (B.join g delta))
            n.groups;
        pending = B.join n.pending delta;
      }

    let local_update n op =
      let d = B.delta_mutate op n.id n.x in
      if B.is_bottom d then n else store n d n.self

    let exclusive_groups groups =
      let arr = Array.of_list (Origins.bindings groups) in
      let k = Array.length arr in
      let suffix = Array.make (k + 1) B.bottom in
      for i = k - 1 downto 0 do
        suffix.(i) <- B.join (snd arr.(i)) suffix.(i + 1)
      done;
      let excl = ref Origins.empty and prefix = ref B.bottom in
      for i = 0 to k - 1 do
        let o, g = arr.(i) in
        excl := Origins.add o (B.join !prefix suffix.(i + 1)) !excl;
        prefix := B.join !prefix g
      done;
      !excl

    let tick n =
      let msgs =
        if B.is_bottom n.pending then []
        else
          let excl =
            if cfg.Crdt_proto.Delta_sync.bp then exclusive_groups n.groups
            else Origins.empty
          in
          List.filter_map
            (fun j ->
              let g =
                if cfg.Crdt_proto.Delta_sync.bp then
                  match Origins.find_opt j excl with
                  | Some g -> g
                  | None -> n.pending
                else n.pending
              in
              if B.is_bottom g then None
              else Some (j, Delta { group = g; seq = n.next_seq }))
            n.neighbors
      in
      let cost =
        List.fold_left
          (fun acc (_, Delta { group; _ }) -> acc + B.weight group)
          0 msgs
      in
      ( {
          n with
          groups = Origins.empty;
          pending = B.bottom;
          work = n.work + cost;
        },
        msgs )

    let handle n ~src (Delta { group = d; seq = _ }) =
      if cfg.Crdt_proto.Delta_sync.rr then begin
        let extracted = B.delta d n.x in
        let n = { n with work = n.work + B.weight d } in
        if B.is_bottom extracted then n else store n extracted src
      end
      else begin
        let n = { n with work = n.work + B.weight d } in
        if B.leq d n.x then n else store n d src
      end

    let tagged = cfg.Crdt_proto.Delta_sync.bp
    let payload_weight (Delta { group; _ }) = B.weight group
    let metadata_weight _ = if tagged then 1 else 0
    let payload_bytes (Delta { group; _ }) = B.byte_size group
    let metadata_bytes _ = if tagged then 8 else 0

    let memory_weight n =
      B.weight n.x + Origins.fold (fun _ g acc -> acc + B.weight g) n.groups 0

    let memory_bytes n =
      B.byte_size n.x
      + Origins.fold (fun _ g acc -> acc + B.byte_size g) n.groups 0

    let metadata_memory_bytes n = 8 * List.length n.neighbors

    (* -- the pre-PR engine, fault-free path ------------------------------ *)

    let snapshot nodes (acc : Metrics.round) : Metrics.round =
      let memory_weight_acc = ref 0
      and memory_bytes_acc = ref 0
      and metadata_memory_bytes_acc = ref 0 in
      Array.iter
        (fun n ->
          memory_weight_acc := !memory_weight_acc + memory_weight n;
          memory_bytes_acc := !memory_bytes_acc + memory_bytes n;
          metadata_memory_bytes_acc :=
            !metadata_memory_bytes_acc + metadata_memory_bytes n)
        nodes;
      {
        acc with
        memory_weight = !memory_weight_acc;
        memory_bytes = !memory_bytes_acc;
        metadata_memory_bytes = !metadata_memory_bytes_acc;
      }

    let deliver nodes queue (acc : Metrics.round) : Metrics.round =
      let acc = ref acc in
      let pending = Queue.create () in
      let push msgs = List.iter (fun m -> Queue.add m pending) msgs in
      push queue;
      while not (Queue.is_empty pending) do
        let batch =
          let all = List.of_seq (Queue.to_seq pending) in
          Queue.clear pending;
          all
        in
        List.iter
          (fun (src, dst, msg) ->
            acc :=
              {
                !acc with
                messages = !acc.messages + 1;
                payload = !acc.payload + payload_weight msg;
                metadata = !acc.metadata + metadata_weight msg;
                payload_bytes = !acc.payload_bytes + payload_bytes msg;
                metadata_bytes = !acc.metadata_bytes + metadata_bytes msg;
              };
            nodes.(dst) <- handle nodes.(dst) ~src msg)
          batch
      done;
      !acc

    let sync_round nodes (acc : Metrics.round) : Metrics.round =
      let queue = ref [] in
      Array.iteri
        (fun i _ ->
          let node, msgs = tick nodes.(i) in
          nodes.(i) <- node;
          queue := !queue @ List.map (fun (j, m) -> (i, j, m)) msgs)
        nodes;
      deliver nodes !queue acc

    let all_equal nodes =
      let first = nodes.(0).x in
      Array.for_all (fun n -> B.equal n.x first) nodes

    let run ?(quiesce_limit = 64) ~topology ~rounds ~ops () =
      let n = Topology.size topology in
      let nodes =
        Array.init n (fun i ->
            init ~id:i ~neighbors:(Topology.neighbors topology i))
      in
      for round = 0 to rounds - 1 do
        Array.iteri
          (fun i _ ->
            List.iter
              (fun op -> nodes.(i) <- local_update nodes.(i) op)
              (ops ~round ~node:i))
          nodes;
        ignore (snapshot nodes (sync_round nodes Metrics.empty_round))
      done;
      let steps = ref 0 in
      while (not (all_equal nodes)) && !steps < quiesce_limit do
        incr steps;
        ignore (snapshot nodes (sync_round nodes Metrics.empty_round))
      done;
      all_equal nodes
  end
end

(* -- sweep -------------------------------------------------------------- *)

type row = {
  crdt : string;
  topo : string;
  nodes : int;
  protocol : string;
  rounds : int;
  legacy_s : float option;  (** None when the baseline was skipped. *)
  seq_s : float;
  par_s : (int * float) list;  (** (domains, seconds). *)
  msgs : int;  (** total messages incl. the convergence tail. *)
  ops : int;
  converged : bool;
}

module Sweep
    (C : Crdt_proto.Protocol_intf.CRDT)
    (B : Legacy_stack.BASE with type op = C.op) =
struct
  module type PROTO =
    Crdt_proto.Protocol_intf.PROTOCOL
      with type crdt = C.t
       and type op = C.op

  let proto name : (module PROTO) =
    Crdt_engine.Registry.instantiate
      (Crdt_engine.Registry.find_protocol name)
      (module C : Crdt_proto.Protocol_intf.CRDT
        with type t = C.t
         and type op = C.op)

  module L_classic =
    Legacy_stack.Runner (B) (Crdt_proto.Delta_sync.Classic_config)
  module L_bp_rr = Legacy_stack.Runner (B) (Crdt_proto.Delta_sync.Bp_rr_config)

  let measure (module P : PROTO) ~legacy_run ~crdt ~topology ~rounds ~gen_ops
      ~domain_counts ~with_legacy ~samples =
    let module R = Runner.Make (P) in
    let ops ~round ~node _state = gen_ops ~round ~node in
    let seq_res, seq_s =
      wall_best ~samples (fun () -> R.run ~equal:C.equal ~topology ~rounds ~ops ())
    in
    let legacy_s =
      if with_legacy then begin
        let converged, s =
          wall_best ~samples (fun () ->
              legacy_run ~topology ~rounds ~ops:gen_ops ())
        in
        (* Same protocol semantics ⇒ same convergence verdict; a mismatch
           means the vendored baseline drifted from the real stack. *)
        assert (converged = seq_res.R.converged);
        Some s
      end
      else None
    in
    let par_s =
      List.map
        (fun d ->
          ( d,
            snd
              (wall_best ~samples (fun () ->
                   R.run ~domains:d ~equal:C.equal ~topology ~rounds ~ops ()))
          ))
        domain_counts
    in
    let s = R.full_summary seq_res in
    {
      crdt;
      topo = Topology.name topology;
      nodes = Topology.size topology;
      protocol = P.protocol_name;
      rounds;
      legacy_s;
      seq_s;
      par_s;
      msgs = s.Metrics.total_messages;
      ops = s.Metrics.total_ops;
      converged = seq_res.R.converged;
    }

  let measure_all ~crdt ~topology ~rounds ~gen_ops ~domain_counts ~with_legacy
      ~samples =
    [
      measure (proto "delta-classic")
        ~legacy_run:(fun ~topology ~rounds ~ops () ->
          L_classic.run ~topology ~rounds ~ops ())
        ~crdt ~topology ~rounds ~gen_ops ~domain_counts ~with_legacy ~samples;
      measure (proto "delta-bp+rr")
        ~legacy_run:(fun ~topology ~rounds ~ops () ->
          L_bp_rr.run ~topology ~rounds ~ops ())
        ~crdt ~topology ~rounds ~gen_ops ~domain_counts ~with_legacy ~samples;
    ]
end

module S_gset = Sweep (Gset.Of_int) (Legacy_stack.Gset_base)
module S_gmap = Sweep (Gmap.Versioned) (Legacy_stack.Gmap_versioned)

let topologies n = [ Topology.tree n; Topology.partial_mesh n ]

let rows ~scales ~rounds ~domain_counts ~legacy_cap ~samples =
  List.concat_map
    (fun n ->
      let with_legacy = n <= legacy_cap in
      (* Repeat only the scales the acceptance ratios are read from; the
         large tail cells are trend indicators and run once. *)
      let samples = if n <= 64 then samples else 1 in
      List.concat_map
        (fun topology ->
          S_gset.measure_all ~crdt:"gset" ~topology ~rounds
            ~gen_ops:(fun ~round ~node ->
              Workload.gset ~nodes:n ~round ~node ())
            ~domain_counts ~with_legacy ~samples
          @ S_gmap.measure_all ~crdt:"gmap" ~topology ~rounds
              ~gen_ops:(fun ~round ~node ->
                Workload.gmap ~total_keys:1000 ~k:10 ~nodes:n ~round ~node ())
              ~domain_counts ~with_legacy ~samples)
        (topologies n))
    scales

(* -- reporting ---------------------------------------------------------- *)

let per_round seconds rounds = seconds /. float_of_int rounds *. 1e3
let fnum v = if Float.is_finite v then Printf.sprintf "%.3f" v else "null"

let print_rows rows =
  Report.table
    ~header:
      [
        "crdt/topo"; "n"; "protocol"; "legacy ms/rd"; "seq ms/rd"; "par ms/rd";
        "seq vs legacy"; "par vs seq"; "msg/s"; "op/s";
      ]
    (List.map
       (fun r ->
         let best_par =
           List.fold_left (fun acc (_, s) -> Float.min acc s) infinity
             (List.map (fun x -> x) r.par_s)
         in
         [
           Printf.sprintf "%s/%s%s" r.crdt r.topo
             (if r.converged then "" else "!");
           string_of_int r.nodes;
           r.protocol;
           (match r.legacy_s with
           | Some s -> Printf.sprintf "%.2f" (per_round s r.rounds)
           | None -> "-");
           Printf.sprintf "%.2f" (per_round r.seq_s r.rounds);
           (if r.par_s = [] then "-"
            else Printf.sprintf "%.2f" (per_round best_par r.rounds));
           (match r.legacy_s with
           | Some s -> Printf.sprintf "%.1fx" (s /. r.seq_s)
           | None -> "-");
           (if r.par_s = [] then "-"
            else Printf.sprintf "%.1fx" (r.seq_s /. best_par));
           Printf.sprintf "%.0f" (float_of_int r.msgs /. r.seq_s);
           Printf.sprintf "%.0f" (float_of_int r.ops /. r.seq_s);
         ])
       rows)

(* A non-converged run measured a broken synchronization, not the
   engine: its throughput/speedup figures would poison the cross-PR
   trajectory, so such rows are refused rather than recorded. *)
let write_json path ~scale all_rows =
  let rows, rejected =
    List.partition (fun r -> r.converged) all_rows
  in
  if rejected <> [] then
    Report.note
      "refusing to record %d non-converged row(s) in %s: %s"
      (List.length rejected) path
      (String.concat ", "
         (List.map
            (fun r ->
              Printf.sprintf "%s/%s/%s n=%d" r.crdt r.topo r.protocol r.nodes)
            rejected));
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"bench\": \"sim_scale\",\n  \"schema\": 1,\n";
  out "  \"host\": %s,\n" (Report.host_json ());
  out "  \"scale\": %S,\n" scale;
  out "  \"baseline\": \"pre-PR stack (list-queue runner + uncached delta \
       protocol + merge-walk map lattice), vendored at the seed revision\",\n";
  out "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"sweep\": [\n";
  List.iteri
    (fun i r ->
      let par =
        String.concat ", "
          (List.map
             (fun (d, s) ->
               Printf.sprintf
                 "{\"domains\": %d, \"seconds\": %s, \"speedup_vs_seq\": %s}" d
                 (fnum s)
                 (fnum (r.seq_s /. s)))
             r.par_s)
      in
      out
        "    {\"crdt\": %S, \"topology\": %S, \"nodes\": %d, \"protocol\": \
         %S, \"rounds\": %d,\n\
        \     \"legacy_seconds\": %s, \"seq_seconds\": %s, \
         \"seq_speedup_vs_legacy\": %s,\n\
        \     \"seq_ms_per_round\": %s, \"msgs_per_sec\": %s, \
         \"ops_per_sec\": %s, \"converged\": %b,\n\
        \     \"parallel\": [%s]}%s\n"
        r.crdt r.topo r.nodes r.protocol r.rounds
        (match r.legacy_s with Some s -> fnum s | None -> "null")
        (fnum r.seq_s)
        (match r.legacy_s with
        | Some s -> fnum (s /. r.seq_s)
        | None -> "null")
        (fnum (per_round r.seq_s r.rounds))
        (fnum (float_of_int r.msgs /. r.seq_s))
        (fnum (float_of_int r.ops /. r.seq_s))
        r.converged par
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  close_out oc;
  Report.note "wrote %s" path

let run ?(quick = false) ?json_path () =
  let scales = if quick then [ 16 ] else [ 16; 32; 64; 128; 256 ] in
  let rounds = if quick then 5 else 20 in
  let domain_counts = if quick then [ 2 ] else [ 2; 8 ] in
  (* The legacy stack's quadratic queue appends make it unaffordable at
     the top of the sweep; the speedup story is told at <= 64 nodes. *)
  let legacy_cap = if quick then 16 else 64 in
  let samples = if quick then 1 else 3 in
  Report.section "sim_scale"
    "engine scalability: nodes sweep, pre-PR stack vs allocation-light vs \
     parallel";
  Report.note
    "host reports %d usable core(s); parallel speedups are bounded by that"
    (Domain.recommended_domain_count ());
  let rows = rows ~scales ~rounds ~domain_counts ~legacy_cap ~samples in
  print_rows rows;
  Report.note
    "legacy = pre-PR stack vendored at the seed revision (list-queue runner, \
     uncached per-message weights, merge-walk map lattice); seq = wave \
     engine, domains=1; par = best of domains in {%s}"
    (String.concat ", " (List.map string_of_int domain_counts));
  match json_path with
  | None -> ()
  | Some path ->
      write_json path ~scale:(if quick then "quick" else "default") rows
