(* Benchmark harness entry point.

   Regenerates every table and figure of the paper's evaluation section
   (see DESIGN.md §5 and EXPERIMENTS.md).  With no arguments, runs the
   whole suite at the default scale; individual experiments can be
   selected by id, and the scale switched with --quick / --paper:

     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- fig7 fig9    # selected experiments
     dune exec bench/main.exe -- --quick      # reduced scale (CI)
     dune exec bench/main.exe -- --paper      # paper-scale Retwis run
     dune exec bench/main.exe -- --json delta # also write BENCH_delta_kernels.json *)

let all_ids =
  [
    "fig1"; "tab1"; "fig7"; "fig8"; "fig9"; "fig10"; "tab2"; "fig11";
    "ablation"; "cpu"; "delta"; "sim_scale"; "fault_matrix"; "wire_size";
    "net_throughput"; "divergence_sweep"; "recovery_time";
  ]

let usage () =
  Printf.printf
    "usage: main.exe [--quick|--paper] [--json] [%s ...]\n(fig11 also prints \
     Fig 12; no ids = run everything; --json makes `delta` / `sim_scale` / \
     `fault_matrix` / `wire_size` / `net_throughput` / `divergence_sweep` / \
     `recovery_time` write BENCH_delta_kernels.json / BENCH_sim_scale.json / \
     BENCH_fault_matrix.json / BENCH_wire_size.json / \
     BENCH_net_throughput.json / BENCH_divergence_sweep.json / \
     BENCH_recovery_time.json)\n"
    (String.concat "|" all_ids)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--help" args || List.mem "-h" args then usage ()
  else begin
    let quick = List.mem "--quick" args in
    let json = List.mem "--json" args in
    let scale =
      if quick then Experiments.quick_scale
      else if List.mem "--paper" args then Experiments.paper_scale
      else Experiments.default_scale
    in
    let ids =
      match
        List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
      with
      | [] -> all_ids
      | ids ->
          List.iter
            (fun id ->
              if not (List.mem id all_ids) then begin
                Printf.eprintf "unknown experiment id: %s\n" id;
                usage ();
                exit 1
              end)
            ids;
          ids
    in
    let t0 = Sys.time () in
    List.iter
      (fun id ->
        match id with
        | "fig1" -> Experiments.fig1 scale
        | "tab1" -> Experiments.table1 ()
        | "fig7" -> Experiments.fig7 scale
        | "fig8" -> Experiments.fig8 scale
        | "fig9" -> Experiments.fig9 scale
        | "fig10" -> Experiments.fig10 scale
        | "tab2" -> Experiments.table2 scale
        | "fig11" | "fig12" -> Experiments.fig11_12 scale
        | "ablation" -> Experiments.ablation scale
        | "cpu" -> Cpu_bench.run ()
        | "delta" ->
            Delta_kernels.run ~quick
              ?json_path:(if json then Some "BENCH_delta_kernels.json" else None)
              ()
        | "sim_scale" ->
            Sim_scale.run ~quick
              ?json_path:(if json then Some "BENCH_sim_scale.json" else None)
              ()
        | "fault_matrix" ->
            Fault_matrix.run ~quick
              ?json_path:(if json then Some "BENCH_fault_matrix.json" else None)
              ()
        | "wire_size" ->
            Wire_size.run ~quick
              ?json_path:(if json then Some "BENCH_wire_size.json" else None)
              ()
        | "net_throughput" ->
            Net_throughput.run ~quick
              ?json_path:
                (if json then Some "BENCH_net_throughput.json" else None)
              ()
        | "divergence_sweep" ->
            Divergence_sweep.run ~quick
              ?json_path:
                (if json then Some "BENCH_divergence_sweep.json" else None)
              ()
        | "recovery_time" ->
            Recovery_time.run ~quick
              ?json_path:(if json then Some "BENCH_recovery_time.json" else None)
              ()
        | _ -> assert false)
      ids;
    Printf.printf "\ntotal bench time: %.1fs\n" (Sys.time () -. t0)
  end
