(* Recovery cost as a function of log size and checkpoint interval.

   A writer replica applies a known op stream and persists through the
   driver's store seam exactly as `crdtsync serve --data-dir` does: one
   structural delta per durability point, a full-state checkpoint every
   [checkpoint_every] deltas (0 = never).  The measured phase is the
   restart: reopen the segment log, decode checkpoint ⊔ replayed
   deltas, and rebuild a protocol node from the image with [P.load] —
   the same code path `serve` runs before its first tick.

   The sweep records recovery wall time, replayed records/bytes and
   checkpoint bytes per (crdt × protocol × log size × interval) cell,
   for gset and gmap under delta-bp+rr and conflict-sync.  It fails
   unless every recovered state equals the writer's final state, every
   checkpointed cell replays at most one checkpoint interval of deltas,
   and checkpointing never replays more bytes than the
   no-checkpoint baseline at the same log size.  With --json the table
   lands in BENCH_recovery_time.json. *)

open Crdt_core
module Registry = Crdt_engine.Registry
module Store = Crdt_store.Store

type row = {
  crdt : string;
  protocol : string;
  ops : int;  (** durability points = delta records written. *)
  checkpoint_every : int;  (** 0 = checkpointing disabled. *)
  log_bytes : int;  (** total bytes appended by the writer. *)
  segments : int;  (** segments scanned at recovery. *)
  checkpoint_bytes : int;
  replayed_records : int;
  replayed_bytes : int;
  recovery_ms : float;  (** reopen + decode + join + P.load. *)
  recovered_ok : bool;  (** recovered state = writer's final state. *)
}

(* Small segments so multi-segment logs (and their seal/scan path) are
   part of what the restart pays for, even at quick scale. *)
let segment_bytes = 64 * 1024

let dir_seq = ref 0

let fresh_dir () =
  incr dir_seq;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "crdtsync-recovery-%d-%d" (Unix.getpid ()) !dir_seq)

let remove_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

module Cell (C : Crdt_proto.Protocol_intf.CRDT) = struct
  module type PROTO =
    Crdt_proto.Protocol_intf.PROTOCOL
      with type crdt = C.t
       and type op = C.op

  let proto name : (module PROTO) =
    Registry.instantiate
      (Registry.find_protocol name)
      (module C : Crdt_proto.Protocol_intf.CRDT
        with type t = C.t
         and type op = C.op)

  let encode x = Crdt_wire.Codec.encode_to_string C.codec x

  let decode what s =
    match Crdt_wire.Codec.decode_string C.codec s with
    | Ok v -> v
    | Error e ->
        failwith
          (Printf.sprintf "recovery_time: undecodable %s record: %s" what
             (Crdt_wire.Codec.error_to_string e))

  let measure (module P : PROTO) ~crdt ~ops ~checkpoint_every ~op_of_i =
    let module D = Crdt_engine.Driver.Make (P) in
    let dir = fresh_dir () in
    remove_dir dir;
    Fun.protect
      ~finally:(fun () -> remove_dir dir)
      (fun () ->
        (* -- populate: the serve persist closure, op by op ------------- *)
        let store, _ = Store.open_ ~segment_bytes ~fsync:Store.Never ~dir () in
        let d = D.create ~id:0 ~neighbors:[ 1 ] ~total:2 () in
        let last = ref C.bottom in
        D.set_persist d (fun state ->
            let delta = C.delta state !last in
            if not (C.is_bottom delta) then begin
              Store.append_delta store (encode delta);
              if
                checkpoint_every > 0
                && Store.deltas_since_checkpoint store >= checkpoint_every
              then Store.checkpoint store (encode state)
            end;
            last := state);
        for i = 0 to ops - 1 do
          ignore (D.apply d [ op_of_i i ]);
          D.sync_store d
        done;
        let final = D.state d in
        let log_bytes = Store.appended_bytes store in
        Store.close store;
        (* -- measure: reopen, rebuild the image, load a fresh node ----- *)
        let t0 = Unix.gettimeofday () in
        let store, recovered = Store.open_ ~segment_bytes ~dir () in
        let image =
          List.fold_left
            (fun acc s -> C.join acc (decode "delta" s))
            (match recovered.Store.checkpoint with
            | Some c -> decode "checkpoint" c
            | None -> C.bottom)
            recovered.Store.deltas
        in
        let node = P.load (P.init ~id:0 ~neighbors:[ 1 ] ~total:2) image in
        let recovery_ms = (Unix.gettimeofday () -. t0) *. 1000. in
        Store.close store;
        {
          crdt;
          protocol = P.protocol_name;
          ops;
          checkpoint_every;
          log_bytes;
          segments = recovered.Store.segments;
          checkpoint_bytes = recovered.Store.checkpoint_bytes;
          replayed_records = recovered.Store.replayed_records;
          replayed_bytes = recovered.Store.replayed_bytes;
          recovery_ms;
          recovered_ok = C.equal (P.state node) final;
        })
end

module C_gset = Cell (Gset.Of_int)
module C_gmap = Cell (Gmap.Versioned)

let protocols = [ "delta-bp+rr"; "conflict-sync" ]

(* Full-width identifiers, same rationale as divergence_sweep: dense
   small ints would make every delta record a few bytes and replay
   artificially cheap. *)
let ident i = ((i * 0x2545F4914F6CDD1D) + 0x123456789ABCDEF) land max_int

let gset_row ~ops ~checkpoint_every protocol =
  C_gset.measure (C_gset.proto protocol) ~crdt:"gset" ~ops ~checkpoint_every
    ~op_of_i:ident

let gmap_row ~ops ~checkpoint_every protocol =
  C_gmap.measure (C_gmap.proto protocol) ~crdt:"gmap" ~ops ~checkpoint_every
    ~op_of_i:(fun i -> Gmap.Versioned.Apply (ident i, Version.Bump))

let sweep ~sizes ~intervals =
  List.concat_map
    (fun ops ->
      List.concat_map
        (fun checkpoint_every ->
          List.map (gset_row ~ops ~checkpoint_every) protocols
          @ List.map (gmap_row ~ops ~checkpoint_every) protocols)
        intervals)
    sizes

(* -- assertions ---------------------------------------------------------- *)

let check_recovered rows =
  List.filter_map
    (fun r ->
      if r.recovered_ok then None
      else
        Some
          (Printf.sprintf
             "%s/%s ops=%d ckpt=%d: recovered state differs from writer's"
             r.crdt r.protocol r.ops r.checkpoint_every))
    rows

(* The headline bound: a checkpointed restart replays at most one
   checkpoint interval of deltas, however long the log grew. *)
let check_bounded_replay rows =
  List.filter_map
    (fun r ->
      if r.checkpoint_every = 0 || r.replayed_records <= r.checkpoint_every
      then None
      else
        Some
          (Printf.sprintf
             "%s/%s ops=%d: replayed %d records > checkpoint interval %d"
             r.crdt r.protocol r.ops r.replayed_records r.checkpoint_every))
    rows

let check_vs_baseline rows =
  List.filter_map
    (fun r ->
      if r.checkpoint_every = 0 then None
      else
        let baseline =
          List.find
            (fun b ->
              b.crdt = r.crdt && b.protocol = r.protocol && b.ops = r.ops
              && b.checkpoint_every = 0)
            rows
        in
        if r.replayed_bytes <= baseline.replayed_bytes then None
        else
          Some
            (Printf.sprintf
               "%s/%s ops=%d ckpt=%d: replayed %d B > no-checkpoint \
                baseline %d B"
               r.crdt r.protocol r.ops r.checkpoint_every r.replayed_bytes
               baseline.replayed_bytes))
    rows

(* -- reporting ----------------------------------------------------------- *)

let print_rows rows =
  Report.table
    ~header:
      [
        "crdt"; "protocol"; "ops"; "ckpt"; "log B"; "segs"; "ckpt B";
        "replay recs"; "replay B"; "recovery ms";
      ]
    (List.map
       (fun r ->
         [
           r.crdt;
           r.protocol;
           string_of_int r.ops;
           (if r.checkpoint_every = 0 then "off"
            else string_of_int r.checkpoint_every);
           string_of_int r.log_bytes;
           string_of_int r.segments;
           string_of_int r.checkpoint_bytes;
           string_of_int r.replayed_records;
           string_of_int r.replayed_bytes;
           Printf.sprintf "%.2f%s" r.recovery_ms
             (if r.recovered_ok then "" else "!");
         ])
       rows)

let write_json path ~scale rows =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"bench\": \"recovery_time\",\n  \"schema\": 1,\n";
  out "  \"host\": %s,\n" (Report.host_json ());
  out "  \"scale\": %S,\n" scale;
  out "  \"segment_bytes\": %d,\n" segment_bytes;
  out
    "  \"accounting\": \"restart = reopen segment log + decode checkpoint \
     and deltas + join + P.load; wall-clock ms\",\n";
  out "  \"sweep\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"crdt\": %S, \"protocol\": %S, \"ops\": %d, \
         \"checkpoint_every\": %d,\n\
        \     \"log_bytes\": %d, \"segments\": %d, \"checkpoint_bytes\": %d, \
         \"replayed_records\": %d, \"replayed_bytes\": %d, \"recovery_ms\": \
         %.3f, \"recovered_ok\": %b}%s\n"
        r.crdt r.protocol r.ops r.checkpoint_every r.log_bytes r.segments
        r.checkpoint_bytes r.replayed_records r.replayed_bytes r.recovery_ms
        r.recovered_ok
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  close_out oc;
  Report.note "wrote %s" path

let run ?(quick = false) ?json_path () =
  let sizes = if quick then [ 1_000; 4_000 ] else [ 1_000; 4_000; 16_000 ] in
  let intervals = if quick then [ 0; 64 ] else [ 0; 16; 64; 512 ] in
  Report.section "recovery_time"
    "restart cost vs log size and checkpoint interval (lib/store)";
  let rows = sweep ~sizes ~intervals in
  print_rows rows;
  (match json_path with
  | None -> ()
  | Some path ->
      write_json path ~scale:(if quick then "quick" else "default") rows);
  let violations =
    check_recovered rows @ check_bounded_replay rows @ check_vs_baseline rows
  in
  match violations with
  | [] ->
      Report.note
        "all recovered states byte-equal to the writer; checkpointed \
         restarts replay <= one interval of deltas"
  | vs ->
      List.iter (fun v -> Report.note "VIOLATION: %s" v) vs;
      failwith "recovery_time: recovery claims violated"
