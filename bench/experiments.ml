(* One function per paper artifact (Figs. 1, 7-12 and Tables I-II).
   Each prints the series/rows the paper reports, in the paper's units
   (lattice elements for transmission and memory, bytes for metadata and
   for the Retwis run, work units for CPU). *)

open Crdt_core
open Crdt_sim
module Workload = Crdt_engine.Workload

(* Experiment scale.  Defaults follow the paper where affordable on one
   machine: 15-node topologies, 100 events per replica, 1000 GMap keys,
   Fig. 9 sweeps up to 32 nodes.  The Retwis run defaults to a reduced
   scale (16 nodes / 1000 users / 40 rounds); --full restores the paper's
   50 nodes / 10000 users. *)
type scale = {
  nodes : int;
  rounds : int;
  gmap_keys : int;
  metadata_nodes : int list;
  retwis_nodes : int;
  retwis_users : int;
  retwis_rounds : int;
  zipf_coefficients : float list;
}

let default_scale =
  {
    nodes = 15;
    rounds = 100;
    gmap_keys = 1000;
    metadata_nodes = [ 8; 16; 24; 32 ];
    retwis_nodes = 16;
    retwis_users = 1000;
    retwis_rounds = 40;
    zipf_coefficients = [ 0.5; 0.75; 1.0; 1.25; 1.5 ];
  }

let paper_scale =
  { default_scale with retwis_nodes = 50; retwis_users = 10_000;
    retwis_rounds = 100 }

let quick_scale =
  {
    default_scale with
    nodes = 15;
    rounds = 30;
    metadata_nodes = [ 8; 16 ];
    retwis_nodes = 8;
    retwis_users = 200;
    retwis_rounds = 15;
  }

(* Harness instances per benchmark CRDT. *)
module H_gset = Harness.Make (Gset.Of_int)
module H_gcounter = Harness.Make (Gcounter)
module H_gmap = Harness.Make (Gmap.Versioned)

let gset_ops nodes ~round ~node state =
  Workload.gset ~nodes ~round ~node state

let gcounter_ops ~round ~node state = Workload.gcounter ~round ~node state

let gmap_ops ~total_keys ~k ~nodes ~round ~node state =
  Workload.gmap ~total_keys ~k ~nodes ~round ~node state

let check_converged outcomes =
  List.iter
    (fun (o : Harness.outcome) ->
      if not o.converged then
        failwith (Printf.sprintf "%s failed to converge" o.protocol))
    outcomes

(* Transmission = payload + metadata, both in element units (an element
   is a set element / map entry; a metadata unit is a version-pair
   component, vector entry or sequence number).  Counting metadata here
   is what reproduces the paper's Fig. 7 story: the vector-based
   protocols ship optimal per-update deltas yet still lose — massively on
   GCounter — because their identification metadata does not compress
   under joins.  Fig. 9 then isolates that metadata cost explicitly. *)
let transmission (o : Harness.outcome) =
  Metrics.total_transmission o.summary

let ratio_row baseline (o : Harness.outcome) =
  [
    o.protocol;
    string_of_int (transmission o);
    Report.f2
      (Metrics.ratio ~baseline:(transmission baseline) (transmission o));
  ]

(* ---------------------------------------------------------------- fig1 *)

(* Fig. 1: 15-node partial mesh replicating an always-growing GSet.
   Left: elements sent over time (cumulative, sampled); right: CPU ratio
   w.r.t. state-based. *)
let fig1 scale =
  Report.section "Fig 1" "delta-based ≈ state-based on a mesh (GSet)";
  let topo = Topology.partial_mesh scale.nodes in
  let ops = gset_ops scale.nodes in
  let selection =
    {
      Harness.all_protocols with
      scuttlebutt = false;
      scuttlebutt_gc = false;
      op_based = false;
      delta_bp = false;
      delta_rr = false;
    }
  in
  (* Per-round series need raw runner access. *)
  let proto name =
    Crdt_engine.Registry.instantiate
      (Crdt_engine.Registry.find_protocol name)
      (module Gset.Of_int : Crdt_proto.Protocol_intf.CRDT
        with type t = Gset.Of_int.t
         and type op = Gset.Of_int.op)
  in
  let module Ps = (val proto "state-based") in
  let module Pc = (val proto "delta-classic") in
  let module Pb = (val proto "delta-bp+rr") in
  let module Rs = Runner.Make (Ps) in
  let module Rc = Runner.Make (Pc) in
  let module Rb = Runner.Make (Pb) in
  let series (rounds : Metrics.round array) =
    let cum = ref 0 in
    Array.map
      (fun (r : Metrics.round) ->
        cum := !cum + r.Metrics.payload;
        !cum)
      rounds
  in
  let s_state =
    Rs.run ~equal:Gset.Of_int.equal ~topology:topo ~rounds:scale.rounds ~ops ()
  in
  let s_classic =
    Rc.run ~equal:Gset.Of_int.equal ~topology:topo ~rounds:scale.rounds ~ops ()
  in
  let s_bprr =
    Rb.run ~equal:Gset.Of_int.equal ~topology:topo ~rounds:scale.rounds ~ops ()
  in
  let cs = series s_state.Rs.rounds
  and cc = series s_classic.Rc.rounds
  and cb = series s_bprr.Rb.rounds in
  let sample = max 1 (scale.rounds / 10) in
  let rows = ref [] in
  Array.iteri
    (fun i _ ->
      if (i + 1) mod sample = 0 then
        rows :=
          [
            string_of_int (i + 1);
            string_of_int cs.(i);
            string_of_int cc.(i);
            string_of_int cb.(i);
          ]
          :: !rows)
    cs;
  Report.note "cumulative set elements transmitted (left plot):";
  Report.table
    ~header:[ "round"; "state-based"; "delta-classic"; "delta-bp+rr" ]
    (List.rev !rows);
  let w_state = Rs.total_work s_state
  and w_classic = Rc.total_work s_classic
  and w_bprr = Rb.total_work s_bprr in
  Report.note "";
  Report.note
    "CPU work ratio w.r.t. state-based (right plot): classic=%.2f bp+rr=%.2f"
    (Metrics.ratio ~baseline:w_state w_classic)
    (Metrics.ratio ~baseline:w_state w_bprr);
  ignore selection

(* ---------------------------------------------------------------- tab1 *)

let table1 () =
  Report.section "Tab I" "micro-benchmark description";
  Report.table
    ~header:[ "type"; "periodic event"; "measurement" ]
    [
      [ "GCounter"; "single increment"; "number of entries in the map" ];
      [ "GSet"; "addition of unique element"; "number of elements in the set" ];
      [
        "GMap K%";
        "change the value of K/N% keys";
        "number of entries in the map";
      ];
    ]

(* ---------------------------------------------------------------- fig7 *)

let fig7 scale =
  Report.section "Fig 7"
    "transmission of GSet and GCounter w.r.t. delta-based BP+RR (tree & mesh)";
  let topologies =
    [ Topology.tree scale.nodes; Topology.partial_mesh scale.nodes ]
  in
  List.iter
    (fun topo ->
      let run_gset =
        H_gset.run ~topology:topo ~rounds:scale.rounds
          ~ops:(gset_ops scale.nodes) ()
      in
      check_converged run_gset;
      let base = H_gset.baseline run_gset in
      Report.note "GSet / %s topology:" (Topology.name topo);
      Report.table
        ~header:[ "protocol"; "elements sent"; "ratio vs bp+rr" ]
        (List.map (ratio_row base) run_gset);
      let run_gc =
        H_gcounter.run ~topology:topo ~rounds:scale.rounds ~ops:gcounter_ops ()
      in
      check_converged run_gc;
      let base = H_gcounter.baseline run_gc in
      Report.note "";
      Report.note "GCounter / %s topology:" (Topology.name topo);
      Report.table
        ~header:[ "protocol"; "entries sent"; "ratio vs bp+rr" ]
        (List.map (ratio_row base) run_gc);
      Report.note "")
    topologies

(* ---------------------------------------------------------------- fig8 *)

let fig8 scale =
  Report.section "Fig 8"
    "transmission of GMap 10%, 30%, 60%, 100% w.r.t. BP+RR (tree & mesh)";
  let topologies =
    [ Topology.tree scale.nodes; Topology.partial_mesh scale.nodes ]
  in
  List.iter
    (fun topo ->
      List.iter
        (fun k ->
          let run =
            H_gmap.run ~topology:topo ~rounds:scale.rounds
              ~ops:
                (gmap_ops ~total_keys:scale.gmap_keys ~k ~nodes:scale.nodes)
              ()
          in
          check_converged run;
          let base = H_gmap.baseline run in
          Report.note "GMap %d%% / %s topology:" k (Topology.name topo);
          Report.table
            ~header:[ "protocol"; "entries sent"; "ratio vs bp+rr" ]
            (List.map (ratio_row base) run);
          Report.note "")
        [ 10; 30; 60; 100 ])
    topologies

(* ---------------------------------------------------------------- fig9 *)

let fig9 scale =
  Report.section "Fig 9"
    "synchronization metadata per node while varying the number of nodes \
     (GSet, mesh)";
  let selection =
    {
      Harness.all_protocols with
      state_based = false;
      delta_classic = false;
      delta_bp = false;
      delta_rr = false;
    }
  in
  let rows =
    List.concat_map
      (fun n ->
        let topo = Topology.partial_mesh n in
        let run =
          H_gset.run ~selection ~topology:topo ~rounds:scale.rounds
            ~ops:(gset_ops n) ()
        in
        check_converged run;
        List.map
          (fun (o : Harness.outcome) ->
            [
              o.protocol;
              string_of_int n;
              Report.bytes o.summary.Metrics.avg_metadata_memory_bytes;
              Report.pct (Metrics.metadata_fraction o.summary);
            ])
          run)
      scale.metadata_nodes
  in
  Report.table
    ~header:
      [ "protocol"; "nodes"; "metadata/node (avg)"; "metadata share of tx" ]
    rows;
  Report.note "";
  Report.note
    "Paper's claim at 32 nodes: metadata is 75%% / 99%% / 97%% of transmission";
  Report.note
    "for scuttlebutt / scuttlebutt-gc / op-based, vs 7.7%% for delta-based."

(* --------------------------------------------------------------- fig10 *)

let fig10 scale =
  Report.section "Fig 10"
    "average memory ratio w.r.t. BP+RR (GCounter, GSet, GMap 10%, GMap 100%; \
     mesh)";
  let topo = Topology.partial_mesh scale.nodes in
  let mem (o : Harness.outcome) = o.full.Metrics.avg_memory_weight in
  let report name run =
    check_converged run;
    let base =
      match List.find_opt (fun (o : Harness.outcome) -> o.protocol = "delta-bp+rr") run with
      | Some b -> b
      | None -> assert false
    in
    Report.note "%s:" name;
    Report.table
      ~header:[ "protocol"; "avg resident elements"; "ratio vs bp+rr" ]
      (List.map
         (fun (o : Harness.outcome) ->
           [
             o.protocol;
             Printf.sprintf "%.0f" (mem o);
             Report.f2 (Metrics.fratio ~baseline:(mem base) (mem o));
           ])
         run);
    Report.note ""
  in
  report "GCounter"
    (H_gcounter.run ~topology:topo ~rounds:scale.rounds ~ops:gcounter_ops ());
  report "GSet"
    (H_gset.run ~topology:topo ~rounds:scale.rounds ~ops:(gset_ops scale.nodes)
       ());
  List.iter
    (fun k ->
      report
        (Printf.sprintf "GMap %d%%" k)
        (H_gmap.run ~topology:topo ~rounds:scale.rounds
           ~ops:(gmap_ops ~total_keys:scale.gmap_keys ~k ~nodes:scale.nodes)
           ()))
    [ 10; 100 ]

(* ---------------------------------------------------------------- tab2 *)

let table2 scale =
  Report.section "Tab II" "Retwis workload characterization (measured)";
  let wl =
    Crdt_retwis.Workload.make ~seed:99 ~users:scale.retwis_users
      ~coefficient:1.0
  in
  (* Drive the generator against an evolving store so posts fan out. *)
  let db = ref Crdt_retwis.Store.bottom in
  let i0 = Replica_id.of_int 0 in
  for round = 0 to 5000 do
    List.iter
      (fun (Crdt_retwis.Store.Apply (k, op)) ->
        db := Crdt_retwis.Store.apply k op i0 !db)
      (Crdt_retwis.Workload.ops wl ~round ~node:0 !db)
  done;
  let follows, posts, reads, updates_per_post = Crdt_retwis.Workload.mix wl in
  Report.table
    ~header:[ "operation"; "#updates"; "workload %"; "measured %" ]
    [
      [ "Follow"; "1"; "15%"; Report.f1 follows ^ "%" ];
      [
        "Post Tweet";
        "1 + #followers";
        "35%";
        Printf.sprintf "%s%% (avg %.1f updates)" (Report.f1 posts)
          updates_per_post;
      ];
      [ "Timeline"; "0"; "50%"; Report.f1 reads ^ "%" ];
    ]

(* ------------------------------------------------------------- ablation *)

module H_naive = Harness.Make (Gset.Naive_of_int)

(* Section III-B ablation: the original δ-mutator of [13] returns a
   singleton even when the element is already present; the optimal one
   returns ⊥.  Under a contended workload (re-adds dominate), the naive
   mutator keeps feeding redundant singletons into the δ-buffer. *)
let ablation scale =
  Report.section "Abl" "δ-mutator optimality ablation (Section III-B)";
  let topo = Topology.partial_mesh scale.nodes in
  let pool = 2 * scale.nodes in
  let ops ~round ~node state =
    Workload.gset_contended ~pool ~round ~node state
  in
  let selection = Harness.delta_only in
  let optimal = H_gset.run ~selection ~topology:topo ~rounds:scale.rounds ~ops () in
  let naive = H_naive.run ~selection ~topology:topo ~rounds:scale.rounds ~ops () in
  check_converged optimal;
  check_converged naive;
  Report.note
    "contended GSet (%d-element pool, mostly re-adds), %d nodes, %d rounds:"
    pool scale.nodes scale.rounds;
  let rows =
    List.concat_map
      (fun (tag, outcomes) ->
        List.map
          (fun (o : Harness.outcome) ->
            [
              o.protocol;
              tag;
              string_of_int o.summary.Metrics.total_payload;
            ])
          outcomes)
      [ ("optimal (Fig. 2b)", optimal); ("naive [13]", naive) ]
  in
  Report.table ~header:[ "protocol"; "δ-mutator"; "elements sent" ] rows;
  Report.note "";
  Report.note
    "The optimal δ-mutator alone removes every re-add from the wire; the \
     naive one keeps shipping redundant singletons even under BP+RR."

(* --------------------------------------------------------- fig11/fig12 *)

module Retwis_classic =
  Crdt_retwis.Sharded_store.Delta (Crdt_proto.Delta_sync.Classic_config)
module Retwis_bprr =
  Crdt_retwis.Sharded_store.Delta (Crdt_proto.Delta_sync.Bp_rr_config)
module Rr_classic = Runner.Make (Retwis_classic)
module Rr_bprr = Runner.Make (Retwis_bprr)

type retwis_point = {
  coefficient : float;
  tx_classic : float;  (** bytes transmitted per node per round. *)
  tx_bprr : float;
  mem_classic : float;  (** average resident bytes per node. *)
  mem_bprr : float;
  work_classic : int;
  work_bprr : int;
}

let retwis_sweep scale =
  List.map
    (fun coefficient ->
      let topo = Topology.partial_mesh scale.retwis_nodes in
      let per_node_round x =
        x /. float_of_int (scale.retwis_nodes * scale.retwis_rounds)
      in
      let run_classic () =
        let wl =
          Crdt_retwis.Workload.make ~seed:31 ~users:scale.retwis_users
            ~coefficient
        in
        Rr_classic.run ~equal:Retwis_classic.equal_states ~topology:topo
          ~rounds:scale.retwis_rounds
          ~ops:(fun ~round ~node state ->
            Crdt_retwis.Workload.ops_sharded wl ~round ~node state)
          ()
      in
      let run_bprr () =
        let wl =
          Crdt_retwis.Workload.make ~seed:31 ~users:scale.retwis_users
            ~coefficient
        in
        Rr_bprr.run ~equal:Retwis_bprr.equal_states ~topology:topo
          ~rounds:scale.retwis_rounds
          ~ops:(fun ~round ~node state ->
            Crdt_retwis.Workload.ops_sharded wl ~round ~node state)
          ()
      in
      let rc = run_classic () in
      let rb = run_bprr () in
      if not (rc.Rr_classic.converged && rb.Rr_bprr.converged) then
        failwith "retwis run failed to converge";
      let sc = Rr_classic.summary rc and sb = Rr_bprr.summary rb in
      {
        coefficient;
        tx_classic =
          per_node_round
            (float_of_int (Metrics.total_transmission_bytes sc));
        tx_bprr =
          per_node_round
            (float_of_int (Metrics.total_transmission_bytes sb));
        mem_classic =
          sc.Metrics.avg_memory_bytes /. float_of_int scale.retwis_nodes;
        mem_bprr =
          sb.Metrics.avg_memory_bytes /. float_of_int scale.retwis_nodes;
        work_classic = Rr_classic.total_work rc;
        work_bprr = Rr_bprr.total_work rb;
      })
    scale.zipf_coefficients

let fig11_12 scale =
  Report.section "Fig 11"
    "Retwis: transmission and memory per node, classic vs BP+RR, by Zipf \
     coefficient";
  Report.note "%d nodes (mesh), %d users, %d rounds" scale.retwis_nodes
    scale.retwis_users scale.retwis_rounds;
  let points = retwis_sweep scale in
  Report.table
    ~header:
      [
        "zipf";
        "tx/node/round classic";
        "tx/node/round bp+rr";
        "mem/node classic";
        "mem/node bp+rr";
      ]
    (List.map
       (fun p ->
         [
           Report.f2 p.coefficient;
           Report.bytes p.tx_classic;
           Report.bytes p.tx_bprr;
           Report.bytes p.mem_classic;
           Report.bytes p.mem_bprr;
         ])
       points);
  Report.section "Fig 12" "CPU overhead of classic delta-based vs BP+RR";
  Report.table
    ~header:[ "zipf"; "work classic"; "work bp+rr"; "overhead (x)" ]
    (List.map
       (fun p ->
         [
           Report.f2 p.coefficient;
           string_of_int p.work_classic;
           string_of_int p.work_bprr;
           Report.f2
             (Metrics.ratio ~baseline:p.work_bprr
                (p.work_classic - p.work_bprr));
         ])
       points);
  Report.note
    "overhead = (classic - bp+rr) / bp+rr, matching the paper's 0.4x / 5.5x \
     / 7.9x at zipf 1 / 1.25 / 1.5."
