(* Network data-path throughput: batched vs. one-write-per-message.

   Spawns a real loopback cluster per cell — one domain per replica,
   each running the lib/net socket runtime over Unix-domain sockets
   with tick_ms = 0, so the serve loop free-runs and throughput is
   bounded by the data path (syscalls, encoding, buffer management)
   rather than the synchronization timer.  Every cell runs twice: with
   per-peer write coalescing (the default) and with batch = false (one
   write(2) per message — the pre-batching path, what `crdtsync serve
   --no-batch` selects), and the ratio of the two is the figure this
   bench exists to pin.

   Batching changes syscall counts, never bytes: both modes of a cell
   move the same protocol traffic, and test_net_convergence separately
   pins wire-byte equality against the simulator.  Recorded per cell:
   delivered messages/sec and wire bytes/sec (cluster-wide, over the
   slowest replica's wall time), write(2) calls per tick per peer
   (<= 1.0 is the coalescing invariant), p99 tick latency, and the
   domain count the host offers (`cores` — throughput figures from a
   1-core host carry scheduling noise at larger cluster sizes).

   The run fails (non-zero exit through an exception) if the batched
   path is slower than the unbatched baseline on every cell — the CI
   net-bench-smoke gate.  With --json the sweep lands in
   BENCH_net_throughput.json. *)

module Registry = Crdt_engine.Registry

type node_res = {
  messages : int;
  wire_bytes : int;
  writes : int;
  ticks : int;
  wall_s : float;
  p99_us : float;
  backend : string;
  clean : bool;
}

type row = {
  crdt : string;
  protocol : string;
  nodes : int;
  batch : bool;
  domains : int;  (** codec fan-out width each replica ran with. *)
  evloop : string;  (** readiness backend that actually ran. *)
  msgs : int;
  msgs_per_sec : float;
  bytes_per_sec : float;
  writes_per_tick_per_peer : float;
  p99_tick_us : float;  (** worst replica's p99 tick duration. *)
  wall_s : float;  (** slowest replica. *)
  clean : bool;  (** all replicas terminated by agreement. *)
}

let uniq = ref 0

(* One cluster run: [n] replicas over Unix-domain sockets in a private
   temp directory, one domain each. *)
let run_cluster ?(domains = 1) ?(evloop = `Auto) ~crdt ~protocol ~n ~batch
    ~ops_ticks () =
  let module S = (val Registry.find_crdt crdt) in
  let maker = Registry.find_protocol protocol in
  let module P =
    (val Registry.instantiate maker
           (module S.C : Crdt_proto.Protocol_intf.CRDT
             with type t = S.C.t
              and type op = S.C.op))
  in
  let module R = Crdt_net.Runtime.Make (P) in
  incr uniq;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "crdtsync-net-tp-%d-%d" (Unix.getpid ()) !uniq)
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let addr id =
    Crdt_net.Addr.Unix_sock (Filename.concat dir (Printf.sprintf "n%d.sock" id))
  in
  let digest state =
    Digest.string (Crdt_wire.Codec.encode_to_string S.C.codec state)
  in
  let run_node id =
    let peers =
      List.filter_map
        (fun j -> if j = id then None else Some (j, addr j))
        (List.init n Fun.id)
    in
    let cfg =
      {
        (Crdt_net.Runtime.default_config ~id ~listen:(addr id) ~peers ~total:n)
        with
        tick_ms = 0 (* free-run: the loop, not the clock, is the limit *);
        ops_ticks;
        quiet_ticks = 25;
        max_ticks = 1_000_000;
        max_wall_s = 600. (* backstop: a crashed peer must not hang the bench *);
        batch;
        domains;
        evloop;
      }
    in
    R.serve ~equal:S.C.equal ~digest cfg ~ops:(fun ~tick state ->
        S.serve_ops ~id ~tick state)
  in
  let workers =
    List.init n (fun id ->
        Domain.spawn (fun () ->
            match run_node id with
            | r ->
                Ok
                  {
                    messages = r.R.counters.Crdt_engine.Trace.messages;
                    wire_bytes = r.R.counters.Crdt_engine.Trace.wire_bytes;
                    writes = r.R.writes;
                    ticks = r.R.ticks;
                    wall_s = r.R.wall_s;
                    p99_us = r.R.tick_p99_us;
                    backend = r.R.backend;
                    clean = r.R.clean;
                  }
            | exception e -> Error (Printexc.to_string e)))
  in
  let results = List.map Domain.join workers in
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir);
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  let nodes =
    List.map
      (function
        | Ok r -> r
        | Error msg -> failwith (Printf.sprintf "replica failed: %s" msg))
      results
  in
  let sum (f : node_res -> int) = List.fold_left (fun acc r -> acc + f r) 0 nodes in
  let maxf (f : node_res -> float) =
    List.fold_left (fun acc r -> Float.max acc (f r)) 0. nodes
  in
  let wall = Float.max 1e-9 (maxf (fun r -> r.wall_s)) in
  let msgs = sum (fun r -> r.messages) in
  let tick_peer_slots = sum (fun r -> r.ticks * (n - 1)) in
  {
    crdt;
    protocol;
    nodes = n;
    batch;
    domains;
    evloop =
      (match nodes with r :: _ -> r.backend | [] -> "none");
    msgs;
    msgs_per_sec = float_of_int msgs /. wall;
    bytes_per_sec = float_of_int (sum (fun r -> r.wire_bytes)) /. wall;
    writes_per_tick_per_peer =
      float_of_int (sum (fun r -> r.writes))
      /. float_of_int (max 1 tick_peer_slots);
    p99_tick_us = maxf (fun r -> r.p99_us);
    wall_s = wall;
    clean = List.for_all (fun (r : node_res) -> r.clean) nodes;
  }

(* Batched-over-unbatched msgs/sec ratio per (crdt, protocol, nodes). *)
let ratios rows =
  List.filter_map
    (fun r ->
      if not r.batch then None
      else
        match
          List.find_opt
            (fun u ->
              (not u.batch) && u.crdt = r.crdt && u.protocol = r.protocol
              && u.nodes = r.nodes && u.domains = r.domains
              && u.evloop = r.evloop)
            rows
        with
        | Some u ->
            Some
              ( (r.crdt, r.protocol, r.nodes),
                r.msgs_per_sec /. Float.max 1e-9 u.msgs_per_sec )
        | None -> None)
    rows

let print_rows rows =
  Report.table
    ~header:
      [
        "crdt"; "protocol"; "n"; "mode"; "dom"; "evloop"; "msgs"; "msgs/s";
        "MB/s"; "writes/tick/peer"; "p99 tick us"; "wall s";
      ]
    (List.map
       (fun r ->
         [
           (if r.clean then r.crdt else r.crdt ^ "!");
           r.protocol;
           string_of_int r.nodes;
           (if r.batch then "batched" else "no-batch");
           string_of_int r.domains;
           r.evloop;
           string_of_int r.msgs;
           Printf.sprintf "%.0f" r.msgs_per_sec;
           Printf.sprintf "%.2f" (r.bytes_per_sec /. 1e6);
           Printf.sprintf "%.2f" r.writes_per_tick_per_peer;
           Printf.sprintf "%.0f" r.p99_tick_us;
           Printf.sprintf "%.2f" r.wall_s;
         ])
       rows)

let write_json path ~scale rows =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"bench\": \"net_throughput\",\n  \"schema\": 1,\n";
  out "  \"host\": %s,\n" (Report.host_json ());
  out "  \"scale\": %S,\n" scale;
  out
    "  \"note\": \"loopback unix-socket clusters, tick_ms=0 (free-running \
     loop); batched = per-peer write coalescing, no-batch = one write(2) \
     per message; wire bytes identical in both modes\",\n";
  out "  \"sweep\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"crdt\": %S, \"protocol\": %S, \"nodes\": %d, \"batch\": %b,\n\
        \     \"domains\": %d, \"evloop\": %S,\n\
        \     \"messages\": %d, \"msgs_per_sec\": %.1f, \"bytes_per_sec\": \
         %.1f,\n\
        \     \"writes_per_tick_per_peer\": %.3f, \"p99_tick_us\": %.1f, \
         \"wall_s\": %.3f, \"clean\": %b}%s\n"
        r.crdt r.protocol r.nodes r.batch r.domains r.evloop r.msgs
        r.msgs_per_sec r.bytes_per_sec r.writes_per_tick_per_peer r.p99_tick_us
        r.wall_s r.clean
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ],\n  \"speedup\": [\n";
  let rs = ratios rows in
  List.iteri
    (fun i ((crdt, protocol, nodes), ratio) ->
      out
        "    {\"crdt\": %S, \"protocol\": %S, \"nodes\": %d, \
         \"msgs_per_sec_ratio\": %.3f}%s\n"
        crdt protocol nodes ratio
        (if i = List.length rs - 1 then "" else ","))
    rs;
  out "  ]\n}\n";
  close_out oc;
  Report.note "wrote %s" path

let run ?(quick = false) ?json_path () =
  Report.section "net_throughput"
    "socket-runtime throughput, batched vs one-write-per-message";
  Report.note "host offers %d domain(s)" (Domain.recommended_domain_count ());
  let cells =
    if quick then [ ("gset", "scuttlebutt", 2); ("gset", "delta-bp+rr", 2) ]
    else
      List.concat_map
        (fun (crdt, protocol) ->
          List.map (fun n -> (crdt, protocol, n)) [ 2; 4; 8 ])
        [
          ("gset", "delta-bp+rr");
          ("gset", "scuttlebutt");
          ("gmap", "delta-bp+rr");
          ("gmap", "scuttlebutt");
        ]
  in
  let ops_ticks = if quick then 60 else 150 in
  (* Quick cells finish in tens of milliseconds, where scheduler noise
     on an oversubscribed host swamps the batching effect; take the
     best of a few trials per (cell, mode) so the smoke gate measures
     the data path and not a bad scheduling draw.  Default-scale cells
     run long enough that one trial is representative. *)
  let trials = if quick then 3 else 1 in
  let best_of k f =
    List.fold_left
      (fun acc _ ->
        let r = f () in
        match acc with
        | Some (b : row) when b.msgs_per_sec >= r.msgs_per_sec -> acc
        | _ -> Some r)
      None (List.init k Fun.id)
    |> Option.get
  in
  let rows =
    List.concat_map
      (fun (crdt, protocol, n) ->
        List.map
          (fun batch ->
            best_of trials (fun () ->
                run_cluster ~crdt ~protocol ~n ~batch ~ops_ticks ()))
          [ true; false ])
      cells
  in
  (* Sharded sweep: the headline cell, batched, at codec fan-out widths
     1/2/4, plus an explicit select run to pin epoll vs select.  The
     widths all move identical bytes (the lockstep byte-equality test
     pins that); this sweep records what the fan-out does to
     throughput. *)
  let sh_crdt, sh_protocol, sh_n =
    if quick then ("gset", "delta-bp+rr", 2) else ("gset", "delta-bp+rr", 4)
  in
  let sharded =
    List.map
      (fun domains ->
        best_of trials (fun () ->
            run_cluster ~domains ~crdt:sh_crdt ~protocol:sh_protocol ~n:sh_n
              ~batch:true ~ops_ticks ()))
      [ 1; 2; 4 ]
  in
  let select_row =
    best_of trials (fun () ->
        run_cluster ~evloop:`Select ~crdt:sh_crdt ~protocol:sh_protocol
          ~n:sh_n ~batch:true ~ops_ticks ())
  in
  let all_rows = rows @ sharded @ [ select_row ] in
  print_rows all_rows;
  let rs = ratios rows in
  List.iter
    (fun ((crdt, protocol, nodes), ratio) ->
      Report.note "%s/%s n=%d: batched/unbatched msgs/sec = %.2fx" crdt
        protocol nodes ratio)
    rs;
  (* Both gates run BEFORE the JSON lands: a violating sweep must fail
     the run, not publish rows a later reader would take at face
     value. *)
  let best = List.fold_left (fun acc (_, r) -> Float.max acc r) 0. rs in
  (* Quick cells finish in tens of milliseconds, so even best-of-3 draws
     a few percent of scheduler noise on a loaded host; a ratio just
     under parity there is a statistical tie, not a regression.  The
     floor still trips on a real data-path regression (an extra copy or
     per-frame syscall shows up as a sustained, much larger gap). *)
  let floor = if quick then 0.9 else 1.0 in
  if best < floor then
    failwith
      (Printf.sprintf
         "net_throughput: batched path regressed below the unbatched \
          baseline on every cell (best ratio %.2f < %.2f)"
         best floor)
  else Report.note "best batched/unbatched ratio: %.2fx" best;
  (* Sharded gate, keyed off the recorded host core count (the same
     figure the JSON's host header carries).  On one core the fan-out
     cannot win, so the requirement is bounded overhead: every sharded
     row within the 0.9 noise floor of domains=1 (the fanout_min
     granularity threshold is what keeps this honest).  With 4+ cores
     the requirement is actual scaling: >= 2x messages/sec from 1 to 4
     domains.  In between, only the floor applies. *)
  let cores = Report.host_cores () in
  (match sharded with
  | base :: rest ->
      List.iter
        (fun r ->
          let ratio = r.msgs_per_sec /. Float.max 1e-9 base.msgs_per_sec in
          Report.note "sharded %s/%s n=%d domains=%d (%s): %.2fx vs domains=1"
            r.crdt r.protocol r.nodes r.domains r.evloop ratio;
          if ratio < 0.9 then
            failwith
              (Printf.sprintf
                 "net_throughput: domains=%d regressed to %.2fx of the \
                  domains=1 throughput (floor 0.90) on %d core(s)"
                 r.domains ratio cores))
        rest;
      if cores >= 4 then (
        match List.find_opt (fun r -> r.domains = 4) rest with
        | Some r4 ->
            let ratio = r4.msgs_per_sec /. Float.max 1e-9 base.msgs_per_sec in
            if ratio < 2.0 then
              failwith
                (Printf.sprintf
                   "net_throughput: %d cores available but domains=4 \
                    reached only %.2fx of domains=1 (target >= 2x)"
                   cores ratio)
        | None -> ())
      else
        Report.note
          "host has %d core(s): the >=2x scaling target at domains=4 needs \
           4+ cores; only the regression floor applies here"
          cores
  | [] -> ());
  let sel_ratio =
    match sharded with
    | base :: _ when base.evloop <> select_row.evloop ->
        Some (select_row.msgs_per_sec /. Float.max 1e-9 base.msgs_per_sec)
    | _ -> None
  in
  (match sel_ratio with
  | Some r ->
      Report.note "select/%s msgs/sec ratio at domains=1: %.2fx"
        (match sharded with base :: _ -> base.evloop | [] -> "?")
        r
  | None -> ());
  match json_path with
  | None -> ()
  | Some path ->
      write_json path ~scale:(if quick then "quick" else "default") all_rows
