(* Protocol × fault matrix: convergence under adversity.

   Runs every capability-declaring protocol under each fault class the
   adversity layer injects — loss, scheduled partition (healed mid-run),
   per-link delay, crash–restart, and a combined storm — and reports
   whether it converged, how long convergence took after the last
   heal/restart event, and the fault accounting (dropped / held /
   partitioned message counts).  Cells a protocol does not declare
   tolerance for are reported as unsupported rather than run: that is
   the capability contract, the former behaviour being a silently
   diverged run.

   With --json the matrix also lands in BENCH_fault_matrix.json so the
   fault-tolerance surface is tracked across PRs. *)

open Crdt_core
open Crdt_sim
module Workload = Crdt_engine.Workload

module Si = Gset.Of_int

module type P_int =
  Crdt_proto.Protocol_intf.PROTOCOL with type crdt = Si.t and type op = int

(* Every registered protocol except the redundant delta variants:
   classic/BP/RR share BP+RR's (absent) fault tolerance, so they would
   only repeat its unsupported cells. *)
let protocols : (string * (module P_int)) list =
  List.filter_map
    (fun maker ->
      let name = Crdt_engine.Registry.protocol_name maker in
      if List.mem name [ "delta-classic"; "delta-bp"; "delta-rr" ] then None
      else
        Some
          ( name,
            Crdt_engine.Registry.instantiate maker
              (module Si : Crdt_proto.Protocol_intf.CRDT
                with type t = Si.t
                 and type op = Si.op) ))
    Crdt_engine.Registry.protocols

(* One fault cell = a plan builder parameterized on nodes/rounds so the
   same schedule shape scales with --quick. *)
let fault_cells ~nodes ~rounds =
  let third = max 1 (nodes / 3) in
  [
    ("none", Fault.none);
    ("drop-0.2", { Fault.none with Fault.drop = 0.2; seed = 17 });
    ( "partition",
      { Fault.none with
        Fault.partitions =
          [
            Fault.partition ~from_round:(rounds / 4)
              ~heal_round:(rounds / 2)
              [ List.init third Fun.id ];
          ];
      } );
    ( "delay",
      { Fault.none with
        Fault.delays =
          [ Fault.delay ~src:0 ~dst:1 ~hold:2; Fault.delay ~src:1 ~dst:0 ~hold:3 ];
      } );
    ( "crash",
      { Fault.none with
        Fault.crashes =
          [
            Fault.crash ~victim:(nodes - 1) ~crash_round:(rounds / 4)
              ~recover_round:(rounds / 2);
          ];
      } );
    ( "storm",
      {
        Fault.drop = 0.1;
        duplicate = 0.1;
        shuffle = true;
        seed = 23;
        partitions =
          [
            Fault.partition ~from_round:(rounds / 4)
              ~heal_round:(rounds / 2)
              [ [ 0; 1 ] ];
          ];
        delays = [ Fault.delay ~src:1 ~dst:2 ~hold:2 ];
        crashes =
          [
            Fault.crash ~victim:(nodes - 1) ~crash_round:(rounds / 3)
              ~recover_round:(2 * rounds / 3);
          ];
      } );
  ]

type cell = {
  protocol : string;
  fault : string;
  topo : string;
  nodes : int;
  rounds : int;
  supported : bool;
  converged : bool;  (** false for unsupported cells. *)
  ttc_after_heal : int;
      (** rounds from the last heal/recovery event to convergence;
          total rounds ran when the plan has no structural event. *)
  delivered : int;
  dropped : int;
  held : int;
  partitioned : int;
}

let run_cell (module P : P_int) ~name ~fault_name ~faults ~topology ~rounds =
  let module R = Runner.Make (P) in
  let nodes = Topology.size topology in
  if not (Fault.supported ~caps:P.capabilities faults) then
    {
      protocol = name;
      fault = fault_name;
      topo = Topology.name topology;
      nodes;
      rounds;
      supported = false;
      converged = false;
      ttc_after_heal = 0;
      delivered = 0;
      dropped = 0;
      held = 0;
      partitioned = 0;
    }
  else
    let res =
      R.run ~faults ~equal:Si.equal ~topology ~rounds
        ~ops:(fun ~round ~node _ -> Workload.gset ~nodes ~round ~node ())
        ()
    in
    let s = R.full_summary res in
    let total_rounds = rounds + Array.length res.R.quiesce_rounds in
    {
      protocol = name;
      fault = fault_name;
      topo = Topology.name topology;
      nodes;
      rounds;
      supported = true;
      converged = res.R.converged;
      ttc_after_heal = total_rounds - Fault.last_heal faults;
      delivered = s.Metrics.total_messages;
      dropped = s.Metrics.total_dropped;
      held = s.Metrics.total_held;
      partitioned = s.Metrics.total_partitioned;
    }

let cells ~nodes ~rounds =
  let topology = Topology.partial_mesh nodes in
  List.concat_map
    (fun (name, p) ->
      List.map
        (fun (fault_name, faults) ->
          run_cell p ~name ~fault_name ~faults ~topology ~rounds)
        (fault_cells ~nodes ~rounds))
    protocols

let print_cells cells =
  Report.table
    ~header:
      [
        "protocol"; "fault"; "converged"; "ttc-after-heal"; "delivered";
        "dropped"; "held"; "partitioned";
      ]
    (List.map
       (fun c ->
         if not c.supported then
           [ c.protocol; c.fault; "unsupported"; "-"; "-"; "-"; "-"; "-" ]
         else
           [
             c.protocol;
             c.fault;
             (if c.converged then "yes" else "NO");
             Report.i c.ttc_after_heal;
             Report.i c.delivered;
             Report.i c.dropped;
             Report.i c.held;
             Report.i c.partitioned;
           ])
       cells)

let write_json path ~scale cells =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"bench\": \"fault_matrix\",\n  \"schema\": 1,\n";
  out "  \"host\": %s,\n" (Report.host_json ());
  out "  \"scale\": %S,\n" scale;
  out "  \"matrix\": [\n";
  List.iteri
    (fun i c ->
      out
        "    {\"protocol\": %S, \"fault\": %S, \"topology\": %S, \"nodes\": \
         %d, \"rounds\": %d,\n\
        \     \"supported\": %b, \"converged\": %b, \"ttc_after_heal\": %d,\n\
        \     \"delivered\": %d, \"dropped\": %d, \"held\": %d, \
         \"partitioned\": %d}%s\n"
        c.protocol c.fault c.topo c.nodes c.rounds c.supported c.converged
        c.ttc_after_heal c.delivered c.dropped c.held c.partitioned
        (if i = List.length cells - 1 then "" else ","))
    cells;
  out "  ]\n}\n";
  close_out oc;
  Report.note "wrote %s" path

let run ?(quick = false) ?json_path () =
  let nodes = if quick then 6 else 12 in
  let rounds = if quick then 8 else 20 in
  Report.section "fault_matrix"
    "protocol × fault convergence matrix (partition / delay / crash / loss)";
  let cells = cells ~nodes ~rounds in
  print_cells cells;
  Report.note
    "unsupported = the protocol does not declare tolerance for the fault \
     class and the runner refuses the plan up front";
  let bad =
    List.filter (fun c -> c.supported && not c.converged) cells
  in
  if bad <> [] then
    Report.note "WARNING: %d supported cell(s) failed to converge"
      (List.length bad);
  match json_path with
  | None -> ()
  | Some path -> write_json path ~scale:(if quick then "quick" else "default") cells
