(* Plain-text reporting for the benchmark harness: section banners and
   aligned tables, one section per paper table/figure. *)

let section id title =
  Printf.printf "\n%s\n== %-6s %s\n%s\n" (String.make 78 '=') id title
    (String.make 78 '=')

let note fmt = Printf.ksprintf (fun s -> Printf.printf "   %s\n" s) fmt

(* Render rows with the first column left-aligned and the rest
   right-aligned, sized to fit. *)
let table ~header rows =
  let cols = List.length header in
  let all = header :: rows in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell ->
        let w = List.nth widths c in
        if c = 0 then Printf.printf "  %-*s" w cell
        else Printf.printf "  %*s" w cell)
      row;
    print_newline ()
  in
  print_row header;
  Printf.printf "  %s\n"
    (String.make (List.fold_left ( + ) (2 * (cols - 1)) widths) '-');
  List.iter print_row rows

(* Host identity stamped into every BENCH_*.json: gates that select
   their acceptance condition by the recorded core count (and readers
   comparing artifacts across machines) need the provenance in the
   artifact itself, not in whoever remembers which box ran it. *)
let host_os () =
  let uname () =
    try
      let ic = Unix.open_process_in "uname -sr 2>/dev/null" in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> Some line
      | _ | (exception Unix.Unix_error _) -> None
    with Unix.Unix_error _ | Sys_error _ -> None
  in
  match uname () with Some s -> s | None -> Sys.os_type

let host_cores () = Domain.recommended_domain_count ()

let host_json () =
  Printf.sprintf {|{"cores": %d, "os": %S, "ocaml_version": %S}|}
    (host_cores ()) (host_os ()) Sys.ocaml_version

let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x
let pct x = Printf.sprintf "%.1f%%" (100. *. x)
let i = string_of_int

let bytes x =
  if x >= 1_073_741_824. then Printf.sprintf "%.2f GB" (x /. 1_073_741_824.)
  else if x >= 1_048_576. then Printf.sprintf "%.2f MB" (x /. 1_048_576.)
  else if x >= 1024. then Printf.sprintf "%.1f kB" (x /. 1024.)
  else Printf.sprintf "%.0f B" x
