(* Exact wire sizes of the synchronization protocols.

   Replays the Table I micro-workloads (GSet and GMap, tree and partial
   mesh) under state-based, classic delta and BP+RR delta
   synchronization with exact byte accounting: every delivered message
   is encoded by the lib/wire codecs and the framed size recorded, so
   the figures are what a real deployment would put on the sockets —
   not the paper's 20 B/8 B estimate model (also reported, for the
   estimate-vs-exact ratio the size law in test_wire bounds).

   The run fails (non-zero exit through an exception) if exact bytes
   violate the paper's headline ordering

       delta BP+RR <= delta classic <= state-based

   on any cell, so the cross-PR trajectory cannot silently record a
   regression of the core result.  With --json the table also lands in
   BENCH_wire_size.json. *)

open Crdt_core
open Crdt_sim
module Workload = Crdt_engine.Workload

type row = {
  crdt : string;
  topo : string;
  nodes : int;
  protocol : string;
  rounds : int;
  wire_bytes : int;  (** exact framed bytes, measured rounds + tail. *)
  estimate_bytes : int;  (** the byte-model figure over the same run. *)
  messages : int;
  converged : bool;
}

module Sweep (C : Crdt_proto.Protocol_intf.CRDT) = struct
  module type PROTO =
    Crdt_proto.Protocol_intf.PROTOCOL
      with type crdt = C.t
       and type op = C.op

  let proto name : (module PROTO) =
    Crdt_engine.Registry.instantiate
      (Crdt_engine.Registry.find_protocol name)
      (module C : Crdt_proto.Protocol_intf.CRDT
        with type t = C.t
         and type op = C.op)

  let measure (module P : PROTO) ~crdt ~topology ~rounds ~gen_ops =
    let module R = Runner.Make (P) in
    let res =
      R.run ~bytes:Metrics.Exact ~equal:C.equal ~topology ~rounds
        ~ops:(fun ~round ~node _ -> gen_ops ~round ~node)
        ()
    in
    let s = R.full_summary res in
    {
      crdt;
      topo = Topology.name topology;
      nodes = Topology.size topology;
      protocol = P.protocol_name;
      rounds;
      wire_bytes = s.Metrics.total_wire_bytes;
      estimate_bytes = Metrics.total_transmission_bytes s;
      messages = s.Metrics.total_messages;
      converged = res.R.converged;
    }

  let measure_all ~crdt ~topology ~rounds ~gen_ops =
    List.map
      (fun name -> measure (proto name) ~crdt ~topology ~rounds ~gen_ops)
      [ "state-based"; "delta-classic"; "delta-bp+rr" ]
end

module S_gset = Sweep (Gset.Of_int)
module S_gmap = Sweep (Gmap.Versioned)

let rows ~nodes ~rounds =
  List.concat_map
    (fun topology ->
      S_gset.measure_all ~crdt:"gset" ~topology ~rounds
        ~gen_ops:(fun ~round ~node -> Workload.gset ~nodes ~round ~node ())
      @ S_gmap.measure_all ~crdt:"gmap" ~topology ~rounds
          ~gen_ops:(fun ~round ~node ->
            Workload.gmap ~total_keys:1000 ~k:10 ~nodes ~round ~node ()))
    [ Topology.tree nodes; Topology.partial_mesh nodes ]

(* The paper's headline ordering, checked on exact bytes per cell. *)
let check_ordering rows =
  let cells =
    List.sort_uniq compare (List.map (fun r -> (r.crdt, r.topo)) rows)
  in
  List.filter_map
    (fun (crdt, topo) ->
      let find proto =
        List.find
          (fun r -> r.crdt = crdt && r.topo = topo && r.protocol = proto)
          rows
      in
      let st = find "state-based"
      and cl = find "delta-classic"
      and bp = find "delta-bp+rr" in
      if bp.wire_bytes <= cl.wire_bytes && cl.wire_bytes <= st.wire_bytes
      then None
      else
        Some
          (Printf.sprintf
             "%s/%s: bp+rr=%d classic=%d state=%d violates bp+rr <= classic \
              <= state"
             crdt topo bp.wire_bytes cl.wire_bytes st.wire_bytes))
    cells

let print_rows rows =
  Report.table
    ~header:
      [
        "crdt/topo"; "n"; "protocol"; "wire bytes"; "estimate bytes";
        "est/exact"; "msgs";
      ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%s/%s%s" r.crdt r.topo
             (if r.converged then "" else "!");
           string_of_int r.nodes;
           r.protocol;
           string_of_int r.wire_bytes;
           string_of_int r.estimate_bytes;
           Printf.sprintf "%.2f"
             (float_of_int r.estimate_bytes /. float_of_int (max 1 r.wire_bytes));
           string_of_int r.messages;
         ])
       rows)

let write_json path ~scale rows =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"bench\": \"wire_size\",\n  \"schema\": 1,\n";
  out "  \"host\": %s,\n" (Report.host_json ());
  out "  \"scale\": %S,\n" scale;
  out "  \"accounting\": \"exact framed wire bytes (lib/wire codecs)\",\n";
  out "  \"sweep\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"crdt\": %S, \"topology\": %S, \"nodes\": %d, \"protocol\": \
         %S, \"rounds\": %d,\n\
        \     \"wire_bytes\": %d, \"estimate_bytes\": %d, \"messages\": %d, \
         \"converged\": %b}%s\n"
        r.crdt r.topo r.nodes r.protocol r.rounds r.wire_bytes
        r.estimate_bytes r.messages r.converged
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  close_out oc;
  Report.note "wrote %s" path

let run ?(quick = false) ?json_path () =
  let nodes = if quick then 8 else 15 in
  let rounds = if quick then 10 else 30 in
  Report.section "wire_size"
    "exact encoded wire bytes per protocol (state vs classic vs BP+RR)";
  let rows = rows ~nodes ~rounds in
  print_rows rows;
  (match json_path with
  | None -> ()
  | Some path ->
      write_json path ~scale:(if quick then "quick" else "default") rows);
  match check_ordering rows with
  | [] -> Report.note "ordering bp+rr <= classic <= state-based holds on all cells"
  | violations ->
      List.iter (fun v -> Report.note "ORDERING VIOLATION: %s" v) violations;
      failwith "wire_size: exact-byte protocol ordering violated"
