(* crdtsync — command-line driver for the synchronization experiments.

   Subcommands:
     micro   run a micro-benchmark (Table I workload) under every protocol
     retwis  run the Retwis application benchmark (classic vs BP+RR)
     serve   run one live replica over real sockets (lib/net runtime)
     topo    describe a topology
     check   model-check SEC invariants over protocol × CRDT cells

   Examples:
     crdtsync micro --crdt gset --topology mesh --nodes 15 --rounds 100
     crdtsync micro --crdt gmap --k 60 --topology tree --bytes estimate
     crdtsync micro --drop 0.2 --crash 3:10:30 --partition '20:60:0,1,2'
     crdtsync retwis --zipf 1.25 --users 1000 --nodes 16 --rounds 40
     crdtsync serve --id 0 --listen 127.0.0.1:7000 --peer 1=127.0.0.1:7001
     crdtsync topo --topology mesh --nodes 15

   Protocol and CRDT dispatch goes through Crdt_engine.Registry: micro
   runs every registered protocol, serve accepts any registered
   protocol × CRDT cell (minus the registry's declared exclusions).

   Fault flags build a Crdt_sim.Fault.plan; protocols whose declared
   capabilities do not cover the plan are skipped (micro) or rejected
   (retwis).  Any non-converged run exits with status 1. *)

open Cmdliner
open Crdt_sim
module Registry = Crdt_engine.Registry
module Trace = Crdt_engine.Trace

let topology_arg =
  Arg.(
    value & opt string "mesh"
    & info [ "topology"; "t" ] ~docv:"NAME"
        ~doc:"Topology: tree, mesh, ring, line, star or full.")

let nodes_arg =
  Arg.(
    value & opt int 15
    & info [ "nodes"; "n" ] ~docv:"N" ~doc:"Number of replicas.")

let rounds_arg =
  Arg.(
    value & opt int 100
    & info [ "rounds"; "r" ] ~docv:"R"
        ~doc:"Synchronization rounds (one update per node per round).")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains"; "d" ] ~docv:"D"
        ~doc:
          "Worker domains for the parallel engine (1 = sequential). Any \
           value yields bit-identical results; speedups need as many cores.")

(* Shared --domains validation (micro, retwis, serve): a non-positive
   width is an error; oversubscribing the machine is legal (results are
   width-independent) but earns a warning since it can only slow the
   run down. *)
let validate_domains domains =
  if domains < 1 then
    invalid_arg (Printf.sprintf "--domains must be >= 1 (got %d)" domains);
  let cores = Domain.recommended_domain_count () in
  if domains > cores then
    Printf.eprintf
      "warning: --domains %d exceeds this machine's %d available core%s; \
       results are identical but expect no speedup\n\
       %!"
      domains cores
      (if cores = 1 then "" else "s")

(* -- fault flags (micro and retwis) ------------------------------------- *)

let parse_ints ~what s =
  List.map
    (fun tok ->
      match int_of_string_opt (String.trim tok) with
      | Some i -> i
      | None -> invalid_arg (Printf.sprintf "bad %s spec %S" what s))
    (String.split_on_char ':' s)

(* "VICTIM:AT:REC" *)
let parse_crash s =
  match parse_ints ~what:"--crash" s with
  | [ victim; crash_round; recover_round ] ->
      Fault.crash ~victim ~crash_round ~recover_round
  | _ -> invalid_arg (Printf.sprintf "--crash wants VICTIM:AT:REC, got %S" s)

(* "SRC:DST:HOLD" *)
let parse_delay s =
  match parse_ints ~what:"--delay-link" s with
  | [ src; dst; hold ] -> Fault.delay ~src ~dst ~hold
  | _ ->
      invalid_arg (Printf.sprintf "--delay-link wants SRC:DST:HOLD, got %S" s)

(* "FROM:HEAL:a,b/c,d" — islands are '/'-separated id groups; nodes not
   listed form the residual island. *)
let parse_partition s =
  match String.split_on_char ':' s with
  | [ from_s; heal_s; islands_s ] ->
      let int ~what s =
        match int_of_string_opt (String.trim s) with
        | Some i -> i
        | None -> invalid_arg (Printf.sprintf "bad %s in %S" what s)
      in
      let islands =
        String.split_on_char '/' islands_s
        |> List.map (fun grp ->
               String.split_on_char ',' grp
               |> List.filter (fun t -> String.trim t <> "")
               |> List.map (int ~what:"island node"))
      in
      Fault.partition ~from_round:(int ~what:"from-round" from_s)
        ~heal_round:(int ~what:"heal-round" heal_s)
        islands
  | _ ->
      invalid_arg
        (Printf.sprintf "--partition wants FROM:HEAL:a,b/c,d, got %S" s)

let fault_term =
  let drop =
    Arg.(
      value & opt float 0.
      & info [ "drop" ] ~docv:"P" ~doc:"Per-message drop probability.")
  in
  let duplicate =
    Arg.(
      value & opt float 0.
      & info [ "duplicate" ] ~docv:"P"
          ~doc:"Per-message duplication probability.")
  in
  let shuffle =
    Arg.(
      value & flag
      & info [ "shuffle" ]
          ~doc:"Randomize per-destination delivery order each round.")
  in
  let partitions =
    Arg.(
      value & opt_all string []
      & info [ "partition" ] ~docv:"FROM:HEAL:a,b/c,d"
          ~doc:
            "Cut the listed islands off from the rest during rounds \
             [FROM, HEAL); repeatable.  Unlisted nodes form the residual \
             island.")
  in
  let delays =
    Arg.(
      value & opt_all string []
      & info [ "delay-link" ] ~docv:"SRC:DST:HOLD"
          ~doc:"Hold messages on the SRC→DST link for HOLD rounds; repeatable.")
  in
  let crashes =
    Arg.(
      value & opt_all string []
      & info [ "crash" ] ~docv:"VICTIM:AT:REC"
          ~doc:
            "Crash node VICTIM at round AT (volatile protocol state lost, \
             durable CRDT state kept) and restart it at round REC; \
             repeatable.")
  in
  let seed =
    Arg.(
      value & opt int Fault.none.Fault.seed
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"Seed of the per-destination fault streams.")
  in
  let build drop duplicate shuffle partitions delays crashes seed =
    {
      Fault.drop;
      duplicate;
      shuffle;
      partitions = List.map parse_partition partitions;
      delays = List.map parse_delay delays;
      crashes = List.map parse_crash crashes;
      seed;
    }
  in
  Term.(
    const build $ drop $ duplicate $ shuffle $ partitions $ delays $ crashes
    $ seed)

(* Byte accounting shared by micro and retwis: exact framed wire sizes
   (what lib/wire puts on a socket) or the paper's estimate model. *)
let bytes_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("exact", Metrics.Exact); ("estimate", Metrics.Estimate) ])
        Metrics.Exact
    & info [ "bytes" ] ~docv:"MODE"
        ~doc:
          "Byte accounting: $(b,exact) measures the exact framed wire size \
           of every delivered message; $(b,estimate) uses the paper's byte \
           model (node id = 20 B, int = 8 B).")

(* -- structured output (micro and serve) -------------------------------- *)

let trace_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the structured event trace (tick/send/recv/deliver/…) \
           as JSON lines to FILE.")

let metrics_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write a machine-readable JSON metrics summary to FILE; the \
           $(b,totals) object uses the same keys in micro and serve, so \
           simulated and socket runs are directly comparable.")

(* The shared totals schema: what the simulator accumulates per run and
   the socket runtime accumulates per process. *)
let totals_json ~messages ~payload ~metadata ~payload_bytes ~metadata_bytes
    ~wire_bytes ~ops_applied ~sync_rounds ~digest_bytes =
  Printf.sprintf
    {|{"messages":%d,"payload":%d,"metadata":%d,"payload_bytes":%d,"metadata_bytes":%d,"wire_bytes":%d,"ops_applied":%d,"sync_rounds":%d,"digest_bytes":%d}|}
    messages payload metadata payload_bytes metadata_bytes wire_bytes
    ops_applied sync_rounds digest_bytes

let summary_totals_json (s : Metrics.summary) =
  totals_json ~messages:s.Metrics.total_messages ~payload:s.Metrics.total_payload
    ~metadata:s.Metrics.total_metadata
    ~payload_bytes:s.Metrics.total_payload_bytes
    ~metadata_bytes:s.Metrics.total_metadata_bytes
    ~wire_bytes:s.Metrics.total_wire_bytes ~ops_applied:s.Metrics.total_ops
    ~sync_rounds:s.Metrics.total_sync_rounds
    ~digest_bytes:s.Metrics.total_digest_bytes

let counters_totals_json (c : Trace.counters) =
  totals_json ~messages:c.Trace.messages ~payload:c.Trace.payload
    ~metadata:c.Trace.metadata ~payload_bytes:c.Trace.payload_bytes
    ~metadata_bytes:c.Trace.metadata_bytes ~wire_bytes:c.Trace.wire_bytes
    ~ops_applied:c.Trace.ops_applied ~sync_rounds:c.Trace.sync_rounds
    ~digest_bytes:c.Trace.digest_bytes

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

(* Run [f] with an optional JSONL trace sink on [path]. *)
let with_trace_sink path f =
  match path with
  | None -> f None
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> f (Some (Trace.jsonl oc)))

(* -- micro -------------------------------------------------------------- *)

let print_outcomes ~accounting outcomes =
  let baseline =
    let find name =
      List.find_opt (fun (o : Harness.outcome) -> o.protocol = name) outcomes
    in
    match (find "delta-bp+rr", find "delta-bp+rr-ack", outcomes) with
    | Some o, _, _ | None, Some o, _ | None, None, o :: _ -> o
    | None, None, [] -> invalid_arg "no protocol selected"
  in
  let base = Metrics.total_transmission baseline.summary in
  Printf.printf "byte accounting: %s\n"
    (Metrics.accounting_name accounting);
  Printf.printf "%-17s %14s %8s %14s %14s %12s\n" "protocol" "tx (elements)"
    "ratio" "tx (bytes)" "avg mem (elt)" "work units";
  List.iter
    (fun (o : Harness.outcome) ->
      let tx = Metrics.total_transmission o.summary in
      let txb = Metrics.transmission_bytes ~accounting o.summary in
      Printf.printf "%-17s %14d %8.2f %14d %14.0f %12d%s\n" o.protocol tx
        (float_of_int tx /. float_of_int base)
        txb o.full.Metrics.avg_memory_weight o.work
        (if o.converged then "" else "  NOT CONVERGED"))
    outcomes

(* A run that fails to converge is a correctness red flag, not a footnote:
   banner it and make the process exit non-zero so scripts notice. *)
let convergence_verdict outcomes =
  let stragglers =
    List.filter_map
      (fun (o : Harness.outcome) ->
        if o.converged then None else Some o.protocol)
      outcomes
  in
  match stragglers with
  | [] -> 0
  | names ->
      Printf.printf
        "\n*** NOT CONVERGED: %s — replicas still diverge after the \
         quiescence limit; results above are not comparable. ***\n"
        (String.concat ", " names);
      1

let report_skipped = function
  | [] -> ()
  | names ->
      Printf.printf "skipping (no declared fault tolerance): %s\n\n"
        (String.concat ", " names)

(* The micro metrics file: one totals object per protocol, over the full
   run including the convergence tail — the figure a lockstep socket
   cluster of the same workload reproduces. *)
let micro_metrics_json ~crdt ~topology ~nodes ~rounds outcomes =
  let results =
    List.map
      (fun (o : Harness.outcome) ->
        Printf.sprintf
          {|    {"protocol":"%s","converged":%b,"totals":%s}|}
          o.protocol o.converged
          (summary_totals_json o.full))
      outcomes
  in
  Printf.sprintf
    "{\"cmd\":\"micro\",\"crdt\":\"%s\",\"topology\":\"%s\",\"nodes\":%d,\"rounds\":%d,\"results\":[\n%s\n]}\n"
    crdt topology nodes rounds
    (String.concat ",\n" results)

let run_micro crdt topology nodes rounds k domains faults bytes trace_out
    metrics_out only_protocols =
  try
    validate_domains domains;
    let topo = Topology.of_name topology nodes in
    Printf.printf "%s on %s (%d nodes, %d rounds)\n\n" crdt topology nodes
      rounds;
    let module S = (val Registry.find_crdt crdt) in
    let module H = Harness.Make (S.C) in
    (* An explicit --protocol list names the lineup exactly (validated
       against the registry); otherwise every registered protocol runs.
       Registry exclusions (cells that are not meaningful) come off
       next; then, under an active fault plan, the ack-mode δ-buffer
       joins the lineup — the delta variant built for lossy channels —
       and capability masking drops what the plan overwhelms. *)
    let sel =
      match only_protocols with
      | [] -> Harness.all_protocols
      | names ->
          List.fold_left
            (fun sel name ->
              ignore (Registry.find_protocol name);
              Harness.enable sel name)
            Harness.none_protocols names
    in
    let sel =
      List.fold_left
        (fun sel name ->
          if Option.is_some (S.excluded name) then Harness.disable sel name
          else sel)
        sel Registry.protocol_names
    in
    let sel =
      if only_protocols = [] then
        { sel with Harness.delta_ack = Fault.active faults }
      else sel
    in
    let selection, skipped = H.mask_unsupported faults sel in
    report_skipped skipped;
    let outcomes =
      with_trace_sink trace_out (fun sink ->
          (match sink with
          | Some (s : Trace.sink) ->
              s.Trace.meta
                (Printf.sprintf "micro crdt=%s topology=%s nodes=%d rounds=%d"
                   crdt topology nodes rounds)
          | None -> ());
          H.run ~selection ~faults ~domains ~bytes ?sink ~topology:topo
            ~rounds
            ~ops:(fun ~round ~node state ->
              S.micro_ops ~nodes ~k ~round ~node state)
            ())
    in
    print_outcomes ~accounting:bytes outcomes;
    (match metrics_out with
    | None -> ()
    | Some path ->
        write_file path
          (micro_metrics_json ~crdt ~topology ~nodes ~rounds outcomes));
    convergence_verdict outcomes
  with Invalid_argument msg ->
    Printf.eprintf "error: %s\n" msg;
    2

let micro_cmd =
  let crdt =
    Arg.(
      value & opt string "gset"
      & info [ "crdt"; "c" ] ~docv:"CRDT"
          ~doc:
            (Printf.sprintf "Benchmark data type: %s."
               (String.concat ", " Registry.crdt_names)))
  in
  let k =
    Arg.(
      value & opt int 100
      & info [ "k" ] ~docv:"K" ~doc:"GMap only: percentage of keys updated \
                                     globally per round.")
  in
  let only_protocols =
    Arg.(
      value & opt_all string []
      & info [ "protocol"; "p" ] ~docv:"PROTO"
          ~doc:
            (Printf.sprintf
               "Run only PROTO (repeatable); default is every registered \
                protocol.  Known: %s."
               (String.concat ", " Registry.protocol_names)))
  in
  Cmd.v
    (Cmd.info "micro" ~doc:"Run a Table I micro-benchmark under every protocol")
    Term.(
      const run_micro $ crdt $ topology_arg $ nodes_arg $ rounds_arg $ k
      $ domains_arg $ fault_term $ bytes_arg $ trace_out_arg
      $ metrics_out_arg $ only_protocols)

(* -- retwis ------------------------------------------------------------- *)

let run_retwis zipf users topology nodes rounds domains faults bytes =
  try
    validate_domains domains;
    let topo = Topology.of_name topology nodes in
    Printf.printf
      "retwis: %d users, zipf %.2f, %s topology (%d nodes), %d rounds\n\
       byte accounting: %s\n\n"
      users zipf topology nodes rounds
      (Metrics.accounting_name bytes);
    let module Classic =
      Crdt_retwis.Sharded_store.Delta (Crdt_proto.Delta_sync.Classic_config) in
    let module BpRr =
      Crdt_retwis.Sharded_store.Delta (Crdt_proto.Delta_sync.Bp_rr_config) in
    let module Rc = Runner.Make (Classic) in
    let module Rb = Runner.Make (BpRr) in
    let wl () = Crdt_retwis.Workload.make ~seed:31 ~users ~coefficient:zipf in
    let w1 = wl () in
    let rc =
      Rc.run ~faults ~domains ~bytes ~equal:Classic.equal_states
        ~topology:topo ~rounds
        ~ops:(fun ~round ~node state ->
          Crdt_retwis.Workload.ops_sharded w1 ~round ~node state)
        ()
    in
    let w2 = wl () in
    let rb =
      Rb.run ~faults ~domains ~bytes ~equal:BpRr.equal_states ~topology:topo
        ~rounds
        ~ops:(fun ~round ~node state ->
          Crdt_retwis.Workload.ops_sharded w2 ~round ~node state)
        ()
    in
    let row name (s : Metrics.summary) work converged =
      Printf.printf "%-14s tx=%9d bytes   mem/node=%9.0f bytes   work=%9d%s\n"
        name
        (Metrics.transmission_bytes ~accounting:bytes s)
        (s.Metrics.avg_memory_bytes /. float_of_int nodes)
        work
        (if converged then "" else "  NOT CONVERGED")
    in
    row "delta-classic" (Rc.summary rc) (Rc.total_work rc) rc.Rc.converged;
    row "delta-bp+rr" (Rb.summary rb) (Rb.total_work rb) rb.Rb.converged;
    let stragglers =
      List.filter_map
        (fun (name, converged) -> if converged then None else Some name)
        [
          ("delta-classic", rc.Rc.converged); ("delta-bp+rr", rb.Rb.converged);
        ]
    in
    match stragglers with
    | [] -> 0
    | names ->
        Printf.printf
          "\n*** NOT CONVERGED: %s — replicas still diverge after the \
           quiescence limit; results above are not comparable. ***\n"
          (String.concat ", " names);
        1
  with Invalid_argument msg ->
    Printf.eprintf "error: %s\n" msg;
    2

let retwis_cmd =
  let zipf =
    Arg.(
      value & opt float 1.0
      & info [ "zipf"; "z" ] ~docv:"S" ~doc:"Zipf contention coefficient.")
  in
  let users =
    Arg.(
      value & opt int 1000
      & info [ "users"; "u" ] ~docv:"U" ~doc:"Number of Retwis users.")
  in
  Cmd.v
    (Cmd.info "retwis"
       ~doc:"Run the Retwis application benchmark (classic vs BP+RR)")
    Term.(
      const run_retwis $ zipf $ users $ topology_arg $ nodes_arg $ rounds_arg
      $ domains_arg $ fault_term $ bytes_arg)

(* -- serve -------------------------------------------------------------- *)

(* One live replica over real sockets (lib/net): listens on --listen,
   dials every --peer, applies --ops deterministic operations (one per
   tick), synchronizes under the selected protocol, and exits once all
   replicas agree they are done.  --state-out writes the hex-encoded
   canonical final state so an external check can compare replicas;
   --metrics-out writes this process's totals (same schema as micro). *)

let to_hex s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

(* "ID=ADDR" *)
let parse_peer s =
  match String.index_opt s '=' with
  | Some i -> (
      let id = String.sub s 0 i in
      let addr = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt id with
      | Some id -> (id, Crdt_net.Addr.parse_exn addr)
      | None -> invalid_arg (Printf.sprintf "--peer wants ID=ADDR, got %S" s))
  | None -> invalid_arg (Printf.sprintf "--peer wants ID=ADDR, got %S" s)

let run_serve id listen peers crdt protocol ops_ticks tick_ms quiet_ticks
    max_ticks lockstep no_batch domains evloop fanout_min data_dir
    checkpoint_every fsync state_out metrics_out trace_out verbose =
  try
    validate_domains domains;
    let module S = (val Registry.find_crdt crdt) in
    (match S.excluded protocol with
    | Some reason ->
        invalid_arg
          (Printf.sprintf "%s cannot run %s: %s" crdt protocol reason)
    | None -> ());
    let maker = Registry.find_protocol protocol in
    let module P =
      (val Registry.instantiate maker
             (module S.C : Crdt_proto.Protocol_intf.CRDT
               with type t = S.C.t
                and type op = S.C.op))
    in
    let module R = Crdt_net.Runtime.Make (P) in
    let listen = Crdt_net.Addr.parse_exn listen in
    let peers = List.map parse_peer peers in
    let fsync =
      match Crdt_store.Store.fsync_policy_of_string fsync with
      | Ok p -> p
      | Error m -> invalid_arg m
    in
    (* Durable storage: open (and recover) the segment log before the
       runtime starts, so boot state and recovery stats exist up
       front.  The store holds only CRDT bytes, so the protocol must
       declare it can restart from a CRDT-state-only image. *)
    let durable =
      match data_dir with
      | None -> None
      | Some dir ->
          if not P.capabilities.Crdt_proto.Protocol_intf.durable_restart then
            invalid_arg
              (Printf.sprintf
                 "%s does not support --data-dir: restarting from a \
                  CRDT-state-only durable image is outside its declared \
                  capabilities"
                 P.protocol_name);
          let t0 = Unix.gettimeofday () in
          let store, recovered = Crdt_store.Store.open_ ~fsync ~dir () in
          let decode what s =
            match Crdt_wire.Codec.decode_string S.C.codec s with
            | Ok v -> v
            | Error e ->
                invalid_arg
                  (Printf.sprintf "%s: undecodable %s record: %s" dir what
                     (Crdt_wire.Codec.error_to_string e))
          in
          let boot =
            List.fold_left
              (fun acc d -> S.C.join acc (decode "delta" d))
              (match recovered.Crdt_store.Store.checkpoint with
              | Some c -> decode "checkpoint" c
              | None -> S.C.bottom)
              recovered.Crdt_store.Store.deltas
          in
          let recovery_s = Unix.gettimeofday () -. t0 in
          Some (store, recovered, boot, recovery_s)
    in
    let cfg =
      {
        (Crdt_net.Runtime.default_config ~id ~listen ~peers
           ~total:(1 + List.length peers))
        with
        ops_ticks;
        tick_ms;
        quiet_ticks;
        max_ticks;
        lockstep;
        batch = not no_batch;
        domains;
        evloop;
        fanout_min;
        verbose;
      }
    in
    let digest state =
      Digest.string (Crdt_wire.Codec.encode_to_string S.C.codec state)
    in
    (* Persist sink: append the structural delta against the last image
       written, and roll a checkpoint once enough deltas accumulated.
       Boot only when the directory held anything — a fresh data dir
       must not arm the recovery exchange of a first-boot replica. *)
    let boot, persist =
      match durable with
      | None -> (None, None)
      | Some (store, recovered, boot_state, _) ->
          let last = ref boot_state in
          let persist state =
            let d = S.C.delta state !last in
            if not (S.C.is_bottom d) then begin
              Crdt_store.Store.append_delta store
                (Crdt_wire.Codec.encode_to_string S.C.codec d);
              if
                checkpoint_every > 0
                && Crdt_store.Store.deltas_since_checkpoint store
                   >= checkpoint_every
              then
                Crdt_store.Store.checkpoint store
                  (Crdt_wire.Codec.encode_to_string S.C.codec state)
            end;
            last := state
          in
          let boot =
            if recovered.Crdt_store.Store.segments > 0 then Some boot_state
            else None
          in
          (boot, Some persist)
    in
    let res =
      with_trace_sink trace_out (fun sink ->
          (match sink with
          | Some (s : Trace.sink) ->
              s.Trace.meta
                (Printf.sprintf "serve node=%d crdt=%s protocol=%s lockstep=%b"
                   id crdt protocol lockstep)
          | None -> ());
          R.serve ?sink ?persist ?boot ~equal:S.C.equal ~digest cfg
            ~ops:(fun ~tick state -> S.serve_ops ~id ~tick state))
    in
    (match durable with
    | Some (store, _, _, _) -> Crdt_store.Store.close store
    | None -> ());
    let final = res.R.state in
    Printf.printf "node %d: final state weight=%d bytes=%d (%s, %d ticks)\n"
      id (S.C.weight final) (S.C.byte_size final) P.protocol_name res.R.ticks;
    (match state_out with
    | None -> ()
    | Some path ->
        let encoded = Crdt_wire.Codec.encode_to_string S.C.codec final in
        write_file path (to_hex encoded ^ "\n"));
    (match metrics_out with
    | None -> ()
    | Some path ->
        let recovery_json =
          match durable with
          | None -> ""
          | Some (_, r, _, recovery_s) ->
              Printf.sprintf
                ",\"recovery\":{\"wall_s\":%.6f,\"checkpoint_bytes\":%d,\"replayed_records\":%d,\"replayed_bytes\":%d,\"truncated_bytes\":%d,\"segments\":%d}"
                recovery_s r.Crdt_store.Store.checkpoint_bytes
                r.Crdt_store.Store.replayed_records
                r.Crdt_store.Store.replayed_bytes
                r.Crdt_store.Store.truncated_bytes
                r.Crdt_store.Store.segments
        in
        write_file path
          (Printf.sprintf
             "{\"cmd\":\"serve\",\"crdt\":\"%s\",\"protocol\":\"%s\",\"node\":%d,\"ticks\":%d,\"clean\":%b,\"exit_reason\":\"%s\",\"writes\":%d,\"wall_s\":%.6f,\"tick_p99_us\":%.1f,\"domains\":%d,\"evloop\":\"%s\"%s,\"totals\":%s}\n"
             crdt protocol id res.R.ticks res.R.clean
             (Crdt_net.Runtime.stop_reason_name res.R.stop)
             res.R.writes res.R.wall_s res.R.tick_p99_us domains res.R.backend
             recovery_json (counters_totals_json res.R.counters)));
    if res.R.clean then 0 else 1
  with
  | Invalid_argument msg | Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      2
  | Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "error: %s (%s %s)\n" (Unix.error_message e) fn arg;
      2

let serve_cmd =
  let id =
    Arg.(
      required & opt (some int) None
      & info [ "id" ] ~docv:"ID" ~doc:"This replica's node id.")
  in
  let listen =
    Arg.(
      required & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:"Listen address: HOST:PORT or unix:PATH.")
  in
  let peers =
    Arg.(
      value & opt_all string []
      & info [ "peer" ] ~docv:"ID=ADDR"
          ~doc:"A peer replica's id and listen address; repeatable.")
  in
  let crdt =
    Arg.(
      value & opt string "gset"
      & info [ "crdt"; "c" ] ~docv:"CRDT"
          ~doc:
            (Printf.sprintf "Replicated data type: %s."
               (String.concat ", " Registry.crdt_names)))
  in
  let protocol =
    Arg.(
      value & opt string "delta-bp+rr"
      & info [ "protocol"; "p" ] ~docv:"PROTO"
          ~doc:
            (Printf.sprintf "Synchronization protocol: %s."
               (String.concat ", " Registry.protocol_names)))
  in
  let ops =
    Arg.(
      value & opt int 10
      & info [ "ops" ] ~docv:"N"
          ~doc:"Apply one deterministic operation per tick for N ticks.")
  in
  let tick_ms =
    Arg.(
      value & opt int 20
      & info [ "tick-ms" ] ~docv:"MS"
          ~doc:"Synchronization interval in milliseconds.")
  in
  let quiet_ticks =
    Arg.(
      value & opt int 5
      & info [ "quiet-ticks" ] ~docv:"K"
          ~doc:
            "Consecutive ticks without local progress (ops pending or \
             state changes) before announcing completion to peers.")
  in
  let max_ticks =
    Arg.(
      value & opt int 5000
      & info [ "max-ticks" ] ~docv:"T" ~doc:"Hard bound on the run length.")
  in
  let lockstep =
    Arg.(
      value & flag
      & info [ "lockstep" ]
          ~doc:
            "Round-barrier mode: ticks advance when every peer's round \
             marker arrives (instead of on a timer), the cluster stops on \
             state-digest unanimity, and the round structure matches the \
             simulator's exactly.")
  in
  let no_batch =
    Arg.(
      value & flag
      & info [ "no-batch" ]
          ~doc:
            "Disable per-peer write coalescing: one write(2) per message \
             (the pre-batching data path), for throughput comparison. \
             Wire bytes are identical either way.")
  in
  let evloop =
    let evloop_conv =
      Arg.conv
        ( (fun s ->
            match Crdt_net.Evloop_epoll.choice_of_string s with
            | Ok c -> Ok c
            | Error m -> Error (`Msg m)),
          fun ppf c ->
            Format.pp_print_string ppf
              (Crdt_net.Evloop_epoll.choice_to_string c) )
    in
    Arg.(
      value & opt evloop_conv `Auto
      & info [ "evloop" ] ~docv:"BACKEND"
          ~doc:
            "Readiness backend: $(b,select) (portable), $(b,epoll) (Linux), \
             or $(b,auto) (epoll where available).  Observable behaviour — \
             wire bytes, lockstep rounds — is identical either way.")
  in
  let fanout_min =
    Arg.(
      value
      & opt int (Crdt_net.Runtime.default_config ~id:0
                   ~listen:(Crdt_net.Addr.Tcp ("127.0.0.1", 0)) ~peers:[]
                   ~total:1).Crdt_net.Runtime.fanout_min
      & info [ "fanout-min" ] ~docv:"N"
          ~doc:
            "Minimum protocol messages in a pass before codec work fans out \
             to the --domains pool; smaller passes stay inline (tuning \
             knob, mostly for tests).")
  in
  let data_dir =
    Arg.(
      value & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:
            "Durable storage directory (append-only delta log + \
             checkpoints, lib/store).  On start the replica recovers \
             checkpoint ⊔ logged deltas from DIR and runs the protocol's \
             restart exchange; every tick's state change is appended as a \
             wire-encoded delta.  Survives kill -9.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 64
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Write a full-state checkpoint (pruning older segments) after \
             N appended deltas; 0 disables checkpoints.")
  in
  let fsync =
    Arg.(
      value & opt string "interval"
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:
            "Log durability policy: always (fsync every append), interval \
             or interval:SECONDS (group commit, default 50ms), never \
             (leave flushing to the OS).  Checkpoints always fsync.")
  in
  let state_out =
    Arg.(
      value & opt (some string) None
      & info [ "state-out" ] ~docv:"FILE"
          ~doc:"Write the hex-encoded final state to FILE on exit.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log runtime events.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run one live replica over real sockets (lib/net runtime)")
    Term.(
      const run_serve $ id $ listen $ peers $ crdt $ protocol $ ops $ tick_ms
      $ quiet_ticks $ max_ticks $ lockstep $ no_batch $ domains_arg $ evloop
      $ fanout_min $ data_dir $ checkpoint_every $ fsync $ state_out
      $ metrics_out_arg $ trace_out_arg $ verbose)

(* -- partition ---------------------------------------------------------- *)

let run_partition shared divergence =
  let module S = Crdt_core.Gset.Of_string in
  let module P = Crdt_proto.Partition_sync.Make (S) in
  let base =
    S.of_list (List.init shared (fun i -> Printf.sprintf "shared-%08d-%024d" i i))
  in
  let grow tag n s =
    List.fold_left
      (fun s i ->
        S.add
          (Printf.sprintf "%s-%d" tag i)
          (Crdt_core.Replica_id.of_int 0)
          s)
      s (List.init n Fun.id)
  in
  let a = grow "a" divergence base in
  let b = grow "b" (divergence / 2) base in
  Printf.printf
    "reconciling two replicas: %d shared elements, %d/%d divergent\n\n"
    shared divergence (divergence / 2);
  let show name (x, y, (stats : P.stats)) =
    assert (S.equal x y);
    Printf.printf "%-14s %d messages  %8d bytes\n" name stats.messages
      stats.bytes
  in
  show "bidirectional" (P.bidirectional a b);
  show "state-driven" (P.state_driven a b);
  show "digest-driven" (P.digest_driven a b);
  0

let partition_cmd =
  let shared =
    Arg.(
      value & opt int 5000
      & info [ "shared" ] ~docv:"N" ~doc:"Elements common to both replicas.")
  in
  let divergence =
    Arg.(
      value & opt int 20
      & info [ "divergence"; "d" ] ~docv:"D"
          ~doc:"Elements only one replica has (the other gets D/2).")
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:"Compare post-partition reconciliation strategies [30]")
    Term.(const run_partition $ shared $ divergence)

(* -- topo --------------------------------------------------------------- *)

let run_topo topology nodes =
  try
    let t = Topology.of_name topology nodes in
    Format.printf "%a@." Topology.pp t;
    Printf.printf "acyclic: %b\n" (Topology.is_acyclic t);
    List.iter
      (fun i ->
        Printf.printf "  node %2d: neighbors %s\n" i
          (String.concat ", "
             (List.map string_of_int (Topology.neighbors t i))))
      (List.init (Topology.size t) Fun.id);
    0
  with Invalid_argument msg ->
    Printf.eprintf "error: %s\n" msg;
    2

let topo_cmd =
  Cmd.v
    (Cmd.info "topo" ~doc:"Describe a topology")
    Term.(const run_topo $ topology_arg $ nodes_arg)

(* -- check -------------------------------------------------------------- *)

let run_check proto crdt replicas ops_per rounds max_faults flush walks
    walk_len seed durable replay =
  let module Cells = Crdt_check.Cells in
  let module Checker = Crdt_check.Checker in
  let checker_cfg =
    {
      Checker.default_config with
      replicas;
      script_len = ops_per;
      flush_rounds = flush;
      durable;
    }
  in
  try
    match replay with
    | Some schedule -> begin
        let proto =
          match proto with
          | Some p -> p
          | None -> invalid_arg "--replay needs --protocol"
        and crdt =
          match crdt with
          | Some c -> c
          | None -> invalid_arg "--replay needs --crdt"
        in
        match Cells.replay checker_cfg ~proto ~crdt ~schedule with
        | None ->
            Printf.printf "%s x %s: replay ok (no violation)\n" proto crdt;
            0
        | Some v ->
            Printf.printf "%s x %s: replay violates %s at step %d\n  %s\n"
              proto crdt v.invariant v.at_step v.detail;
            1
      end
    | None ->
        let cfg =
          {
            Cells.checker = checker_cfg;
            rounds;
            max_faults;
            seed;
            walks;
            walk_len;
          }
        in
        let targets =
          Cells.cells ()
          |> List.filter (fun (p, c) ->
                 (match proto with Some p' -> p = p' | None -> true)
                 && match crdt with Some c' -> c = c' | None -> true)
        in
        if targets = [] then invalid_arg "no matching protocol x crdt cells";
        let violations = ref 0 in
        List.iter
          (fun (p, c) ->
            let r = Cells.check_cell cfg ~proto:p ~crdt:c in
            match r.failure with
            | None ->
                Printf.printf "%-16s x %-12s ok (%d schedules, %d walks)\n" p
                  c r.exhaustive r.walks
            | Some f ->
                incr violations;
                Printf.printf
                  "%-16s x %-12s VIOLATION %s\n\
                  \  %s\n\
                  \  schedule: %s\n\
                  \  shrunk:   %s\n\
                  \  replay:   crdtsync check --protocol %s --crdt %s \
                   --replay '%s'\n"
                  p c f.invariant f.detail f.schedule f.shrunk p c f.shrunk)
          targets;
        if !violations = 0 then 0 else 1
  with Invalid_argument msg ->
    Printf.eprintf "error: %s\n" msg;
    2

let check_cmd =
  let proto =
    Arg.(
      value
      & opt (some string) None
      & info [ "protocol"; "p" ] ~docv:"NAME"
          ~doc:"Check only this protocol (default: all registered).")
  in
  let crdt =
    Arg.(
      value
      & opt (some string) None
      & info [ "crdt"; "c" ] ~docv:"NAME"
          ~doc:"Check only this CRDT (default: all registered).")
  in
  let replicas =
    Arg.(
      value & opt int 2
      & info [ "replicas" ] ~docv:"N"
          ~doc:"Replica group size for the exhaustive tier (default 2).")
  in
  let ops_per =
    Arg.(
      value & opt int 4
      & info [ "ops" ] ~docv:"N"
          ~doc:"Scripted operations per replica (default 4).")
  in
  let rounds =
    Arg.(
      value & opt int 3
      & info [ "rounds" ] ~docv:"R"
          ~doc:"Rounds per exhaustive schedule (default 3).")
  in
  let max_faults =
    Arg.(
      value & opt int 2
      & info [ "max-faults" ] ~docv:"F"
          ~doc:"Non-deliver fate budget per exhaustive schedule (default 2).")
  in
  let flush =
    Arg.(
      value & opt int 48
      & info [ "flush-rounds" ] ~docv:"R"
          ~doc:"Fault-free rounds allowed for convergence (default 48).")
  in
  let walks =
    Arg.(
      value & opt int 64
      & info [ "walks" ] ~docv:"N"
          ~doc:"Random walks per cell, 0 to disable (default 64).")
  in
  let walk_len =
    Arg.(
      value & opt int 80
      & info [ "walk-len" ] ~docv:"N"
          ~doc:"Atomic steps per random walk (default 80).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"S" ~doc:"Base seed for the random tier.")
  in
  let durable =
    Arg.(
      value & flag
      & info [ "durable" ]
          ~doc:
            "Model crash/recover as kill -9 plus restart-from-disk: replicas \
             persist through the driver's store seam, a crash checks the \
             durable image is a lattice prefix of the pre-crash state, and \
             recovery reloads from that image (losing volatile state) \
             instead of resuming in memory.  Protocols that cannot restart \
             from a CRDT-state-only image keep the in-memory model.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"SCHEDULE"
          ~doc:
            "Replay one schedule (as printed by a violation report) against \
             the cell named by --protocol/--crdt instead of exploring.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Model-check SEC invariants over protocol x CRDT cells (exhaustive \
          small-scope schedules + seeded random walks)")
    Term.(
      const run_check $ proto $ crdt $ replicas $ ops_per $ rounds
      $ max_faults $ flush $ walks $ walk_len $ seed $ durable $ replay)

let () =
  let doc = "Efficient synchronization of state-based CRDTs — experiments" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "crdtsync" ~version:"1.0.0" ~doc)
          [
            micro_cmd;
            retwis_cmd;
            serve_cmd;
            partition_cmd;
            topo_cmd;
            check_cmd;
          ]))
