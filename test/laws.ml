(* Generic lattice / decomposition / optimal-delta laws, checked by
   QCheck over every lattice instance in the library (test_laws.ml).

   The properties encode, verbatim, the definitions of Sections II-III:
   join-semilattice axioms, Definition 1 (join-irreducibility),
   Definitions 2-3 (irredundant join decomposition), and the
   correctness/minimality contract of Δ(a,b). *)

open Crdt_core

module Make
    (L : Lattice_intf.DECOMPOSABLE) (G : sig
      val name : string
      val gen : L.t QCheck.Gen.t
    end) =
struct
  module D = Delta.Make (L)

  let arb = QCheck.make ~print:(Format.asprintf "%a" L.pp) G.gen
  let pair = QCheck.pair arb arb
  let triple = QCheck.triple arb arb arb

  let test ?(count = 200) name arb prop =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count ~name:(G.name ^ ": " ^ name) arb prop)

  let join_commutative =
    test "join commutative" pair (fun (a, b) ->
        L.equal (L.join a b) (L.join b a))

  let join_associative =
    test "join associative" triple (fun (a, b, c) ->
        L.equal (L.join a (L.join b c)) (L.join (L.join a b) c))

  let join_idempotent =
    test "join idempotent" arb (fun a -> L.equal (L.join a a) a)

  let bottom_identity =
    test "bottom is neutral" arb (fun a ->
        L.equal (L.join a L.bottom) a && L.equal (L.join L.bottom a) a)

  let is_bottom_consistent =
    test "is_bottom agrees with equal bottom" arb (fun a ->
        L.is_bottom a = L.equal a L.bottom)

  let leq_reflexive = test "⊑ reflexive" arb (fun a -> L.leq a a)

  let leq_antisymmetric =
    test "⊑ antisymmetric" pair (fun (a, b) ->
        if L.leq a b && L.leq b a then L.equal a b else true)

  let leq_transitive =
    test "⊑ transitive (via joins)" triple (fun (a, b, c) ->
        (* a ⊑ a⊔b ⊑ a⊔b⊔c holds by construction; check it. *)
        let ab = L.join a b in
        let abc = L.join ab c in
        L.leq a ab && L.leq ab abc && L.leq a abc)

  let leq_join_consistent =
    test "a ⊑ b ⇔ a⊔b = b" pair (fun (a, b) ->
        L.leq a b = L.equal (L.join a b) b)

  let compare_equal_consistent =
    test "compare = 0 ⇔ equal" pair (fun (a, b) ->
        (L.compare a b = 0) = L.equal a b)

  let bottom_leq_all = test "⊥ ⊑ x" arb (fun a -> L.leq L.bottom a)

  let weight_bottom =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:1
         ~name:(G.name ^ ": weight ⊥ = 0 and ⇓⊥ = ∅")
         QCheck.unit
         (fun () -> L.weight L.bottom = 0 && L.decompose L.bottom = []))

  let weight_zero_iff_bottom =
    test "weight x = 0 ⇔ x = ⊥" arb (fun a ->
        (L.weight a = 0) = L.is_bottom a)

  let join_weight_subadditive =
    test "weight (a⊔b) ≤ weight a + weight b" pair (fun (a, b) ->
        L.weight (L.join a b) <= L.weight a + L.weight b)

  (* Decomposition laws (Definitions 1-3, Proposition 2). *)

  let decompose_rejoins =
    test "⊔⇓x = x" arb (fun a -> D.is_decomposition (L.decompose a) a)

  let decompose_below =
    test "every y ∈ ⇓x satisfies y ⊑ x" arb (fun a ->
        List.for_all (fun y -> L.leq y a) (L.decompose a))

  let decompose_irredundant =
    test ~count:100 "⇓x is irredundant" arb (fun a ->
        D.is_irredundant (L.decompose a))

  let decompose_irreducible =
    test ~count:100 "elements of ⇓x are join-irreducible" arb (fun a ->
        List.for_all D.is_irreducible (L.decompose a))

  let decompose_no_bottom =
    test "⊥ ∉ ⇓x" arb (fun a ->
        List.for_all (fun y -> not (L.is_bottom y)) (L.decompose a))

  let decompose_weight =
    test "weight x = |⇓x|" arb (fun a ->
        L.weight a = List.length (L.decompose a))

  (* Optimal-delta laws (Section III-B). *)

  let delta_correct =
    test "Δ(a,b) ⊔ b = a ⊔ b" pair (fun (a, b) ->
        L.equal (L.join (D.delta a b) b) (L.join a b))

  let delta_below =
    test "Δ(a,b) ⊑ a" pair (fun (a, b) -> L.leq (D.delta a b) a)

  let delta_bottom_when_contained =
    test "a ⊑ b ⇒ Δ(a,b) = ⊥" pair (fun (a, b) ->
        let b = L.join a b in
        L.is_bottom (D.delta a b))

  let delta_minimal =
    test "minimality: no y ∈ ⇓Δ(a,b) is below b" pair (fun (a, b) ->
        List.for_all (fun y -> not (L.leq y b)) (L.decompose (D.delta a b)))

  let delta_self = test "Δ(a,a) = ⊥" arb (fun a -> L.is_bottom (D.delta a a))

  let redundancy_complement =
    test "Δ(a,b) ⊔ redundancy(a,b) = a" pair (fun (a, b) ->
        L.equal (L.join (D.delta a b) (D.redundancy a b)) a)

  let delta_idempotent_resend =
    test "re-merging a delta changes nothing" pair (fun (a, b) ->
        let d = D.delta a b in
        let merged = L.join b d in
        L.equal (L.join merged d) merged)

  (* Structural delta / streaming decomposition: the direct
     implementations must agree with the generic decompose-based oracle
     and independently satisfy the Δ contract. *)

  let structural_delta_matches_oracle =
    test "structural Δ = decompose-based Δ (oracle)" pair (fun (a, b) ->
        L.equal (L.delta a b) (D.delta a b))

  let structural_delta_correct =
    test "structural Δ(a,b) ⊔ b = a ⊔ b" pair (fun (a, b) ->
        L.equal (L.join (L.delta a b) b) (L.join a b))

  let structural_delta_minimal =
    test "structural Δ minimality: no y ∈ ⇓Δ(a,b) is below b" pair
      (fun (a, b) ->
        List.for_all
          (fun y -> not (L.leq y b))
          (L.decompose (L.delta a b)))

  let fold_decompose_agrees =
    test "fold_decompose enumerates exactly ⇓x" arb (fun a ->
        let streamed =
          List.sort L.compare (L.fold_decompose List.cons a [])
        in
        let listed = List.sort L.compare (L.decompose a) in
        List.length streamed = List.length listed
        && List.for_all2 L.equal streamed listed)

  let suite =
    [
      join_commutative;
      join_associative;
      join_idempotent;
      bottom_identity;
      is_bottom_consistent;
      leq_reflexive;
      leq_antisymmetric;
      leq_transitive;
      leq_join_consistent;
      compare_equal_consistent;
      bottom_leq_all;
      weight_bottom;
      weight_zero_iff_bottom;
      join_weight_subadditive;
      decompose_rejoins;
      decompose_below;
      decompose_irredundant;
      decompose_irreducible;
      decompose_no_bottom;
      decompose_weight;
      delta_correct;
      delta_below;
      delta_bottom_when_contained;
      delta_minimal;
      delta_self;
      redundancy_complement;
      delta_idempotent_resend;
      structural_delta_matches_oracle;
      structural_delta_correct;
      structural_delta_minimal;
      fold_decompose_agrees;
    ]
end
