(* Unit tests for the register CRDTs: LWW register (lexicographic
   single-writer construction), epoch flag, and the MV-register built on
   the antichain composition. *)

open Crdt_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let a = Replica_id.of_int 0
let b = Replica_id.of_int 1

let lww_tests =
  [
    Alcotest.test_case "write bumps timestamp and replaces value" `Quick
      (fun () ->
        let r = Lww_register.write "hello" a Lww_register.bottom in
        check_str "value" "hello" (Lww_register.value r);
        check_int "ts" 1 (Lww_register.timestamp r);
        let r = Lww_register.write "bye" a r in
        check_str "value" "bye" (Lww_register.value r);
        check_int "ts" 2 (Lww_register.timestamp r));
    Alcotest.test_case "newer timestamp wins on merge" `Quick (fun () ->
        let r1 = Lww_register.write "old" a Lww_register.bottom in
        let r2 = Lww_register.write "new" b r1 in
        check_str "merge" "new"
          (Lww_register.value (Lww_register.join r1 r2)));
    Alcotest.test_case "concurrent writes tie-break deterministically" `Quick
      (fun () ->
        let r1 = Lww_register.write "apple" a Lww_register.bottom in
        let r2 = Lww_register.write "zebra" b Lww_register.bottom in
        let m1 = Lww_register.join r1 r2 and m2 = Lww_register.join r2 r1 in
        check "commutes" true (Lww_register.equal m1 m2);
        check_str "max payload wins" "zebra" (Lww_register.value m1));
    Alcotest.test_case "writes are inflations" `Quick (fun () ->
        let r = Lww_register.write "x" a Lww_register.bottom in
        check "inflation" true
          (Lww_register.leq r (Lww_register.write "y" a r)));
  ]

let flag_tests =
  [
    Alcotest.test_case "starts disabled" `Quick (fun () ->
        check "value" false (Epoch_flag.value Epoch_flag.bottom));
    Alcotest.test_case "enable then read" `Quick (fun () ->
        check "enabled" true
          (Epoch_flag.value (Epoch_flag.enable a Epoch_flag.bottom)));
    Alcotest.test_case "disable dominates earlier concurrent enable" `Quick
      (fun () ->
        let on = Epoch_flag.enable a Epoch_flag.bottom in
        let off = Epoch_flag.disable b on in
        check "off" false (Epoch_flag.value (Epoch_flag.join on off)));
    Alcotest.test_case "enables within an epoch merge to enabled" `Quick
      (fun () ->
        let on1 = Epoch_flag.enable a Epoch_flag.bottom in
        let on2 = Epoch_flag.enable b Epoch_flag.bottom in
        check "on" true (Epoch_flag.value (Epoch_flag.join on1 on2)));
    Alcotest.test_case "disable of a disabled flag is a no-op" `Quick
      (fun () ->
        let off = Epoch_flag.disable a Epoch_flag.bottom in
        check "no epoch bump" true (Epoch_flag.equal off Epoch_flag.bottom));
  ]

let mv_tests =
  [
    Alcotest.test_case "single write reads back" `Quick (fun () ->
        let r = Mv_register.write "v" a Mv_register.bottom in
        Alcotest.(check (list string)) "values" [ "v" ] (Mv_register.values r));
    Alcotest.test_case "concurrent writes are both kept" `Quick (fun () ->
        let r1 = Mv_register.write "x" a Mv_register.bottom in
        let r2 = Mv_register.write "y" b Mv_register.bottom in
        let m = Mv_register.join r1 r2 in
        check_int "two values" 2 (List.length (Mv_register.values m)));
    Alcotest.test_case "a later write subsumes what it saw" `Quick (fun () ->
        let r1 = Mv_register.write "x" a Mv_register.bottom in
        let r2 = Mv_register.write "y" b Mv_register.bottom in
        let m = Mv_register.join r1 r2 in
        let resolved = Mv_register.write "winner" a m in
        Alcotest.(check (list string))
          "collapsed" [ "winner" ]
          (Mv_register.values resolved);
        check "dominates" true (Mv_register.leq m resolved));
    Alcotest.test_case "writes are inflations" `Quick (fun () ->
        let r = Mv_register.write "x" a Mv_register.bottom in
        check "inflation" true (Mv_register.leq r (Mv_register.write "y" b r)));
    Alcotest.test_case "delta of a write is the tagged singleton" `Quick
      (fun () ->
        let r = Mv_register.write "x" a Mv_register.bottom in
        let d = Mv_register.delta_mutate (Mv_register.Write "y") b r in
        check_int "weight" 1 (Mv_register.weight d);
        check "merge = mutate" true
          (Mv_register.equal
             (Mv_register.join r d)
             (Mv_register.mutate (Mv_register.Write "y") b r)));
  ]

(* End-to-end: replicate each register CRDT over delta BP+RR. *)
module Replication (C : Lattice_intf.CRDT) = struct
  open Crdt_sim
  module P = Crdt_proto.Delta_sync.Make (C) (Crdt_proto.Delta_sync.Bp_rr_config)
  module R = Runner.Make (P)

  let run ops =
    let topo = Topology.ring 5 in
    let res = R.run ~equal:C.equal ~topology:topo ~rounds:10 ~ops () in
    (res.R.converged, res.R.finals.(0))
end

module Lww_repl = Replication (Lww_register)
module Mv_repl = Replication (Mv_register)
module Flag_repl = Replication (Epoch_flag)

let replication_tests =
  [
    Alcotest.test_case "LWW registers converge to one winner" `Quick
      (fun () ->
        let converged, final =
          Lww_repl.run (fun ~round ~node _ ->
              [ Lww_register.Write (Printf.sprintf "v-%d-%d" round node) ])
        in
        check "converged" true converged;
        check "some winner" true (Lww_register.value final <> ""));
    Alcotest.test_case "MV registers converge to the same frontier" `Quick
      (fun () ->
        let converged, final =
          Mv_repl.run (fun ~round ~node _ ->
              if round < 3 then
                [ Mv_register.Write (Printf.sprintf "w-%d-%d" round node) ]
              else [])
        in
        check "converged" true converged;
        check "non-empty" true (Mv_register.values final <> []));
    Alcotest.test_case "epoch flags converge" `Quick (fun () ->
        let converged, _ =
          Flag_repl.run (fun ~round ~node _ ->
              match (round + node) mod 3 with
              | 0 -> [ Epoch_flag.Enable ]
              | 1 -> [ Epoch_flag.Disable ]
              | _ -> [])
        in
        check "converged" true converged);
  ]

let () =
  Alcotest.run "registers"
    [
      ("LWW", lww_tests);
      ("Epoch flag", flag_tests);
      ("MV register", mv_tests);
      ("replication", replication_tests);
    ]
