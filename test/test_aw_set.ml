(* Unit tests for the add-wins observed-remove set, including the
   add/remove concurrency semantics that define it and delta
   replication end-to-end. *)

open Crdt_core
module S = Aw_set.Of_string

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let a = Replica_id.of_int 0
let b = Replica_id.of_int 1

let basics =
  [
    Alcotest.test_case "add then mem" `Quick (fun () ->
        let s = S.add "x" a S.bottom in
        check "mem" true (S.mem "x" s);
        Alcotest.(check (list string)) "value" [ "x" ] (S.value s));
    Alcotest.test_case "remove observed element" `Quick (fun () ->
        let s = S.add "x" a S.bottom in
        let s = S.remove "x" a s in
        check "gone" false (S.mem "x" s);
        check_int "tombstone kept" 1 (S.tombstones s));
    Alcotest.test_case "re-add after remove works (unlike 2P-set)" `Quick
      (fun () ->
        let s = S.add "x" a S.bottom in
        let s = S.remove "x" a s in
        let s = S.add "x" a s in
        check "back" true (S.mem "x" s));
    Alcotest.test_case "removing an absent element is a no-op" `Quick
      (fun () ->
        let s = S.add "x" a S.bottom in
        check "unchanged" true (S.equal s (S.remove "y" a s)));
    Alcotest.test_case "duplicate adds collapse in value" `Quick (fun () ->
        let s = S.add "x" a (S.add "x" b S.bottom) in
        Alcotest.(check (list string)) "one value" [ "x" ] (S.value s);
        check_int "two dots" 2 (S.alive_dots s));
  ]

let concurrency =
  [
    Alcotest.test_case "add wins over concurrent remove" `Quick (fun () ->
        let base = S.add "x" a S.bottom in
        (* b removes the x it observed; a concurrently re-adds x. *)
        let at_b = S.remove "x" b base in
        let at_a = S.add "x" a base in
        let m = S.join at_b at_a in
        check "commutes" true (S.equal m (S.join at_a at_b));
        check "add wins" true (S.mem "x" m));
    Alcotest.test_case "remove kills only what it observed" `Quick (fun () ->
        let at_a = S.add "x" a S.bottom in
        let at_b = S.add "x" b S.bottom in
        (* a removes before ever seeing b's dot. *)
        let at_a = S.remove "x" a at_a in
        let m = S.join at_a at_b in
        check "b's dot survives" true (S.mem "x" m));
    Alcotest.test_case "remove after full observation empties the element"
      `Quick (fun () ->
        let at_a = S.add "x" a S.bottom in
        let at_b = S.add "x" b S.bottom in
        let merged = S.join at_a at_b in
        let removed = S.remove "x" a merged in
        check "gone everywhere" false (S.mem "x" (S.join removed at_b)));
    Alcotest.test_case "independent elements never interfere" `Quick
      (fun () ->
        let s = S.add "x" a (S.add "y" b S.bottom) in
        let s = S.remove "x" a s in
        Alcotest.(check (list string)) "y stays" [ "y" ] (S.value s));
  ]

let deltas =
  [
    Alcotest.test_case "addδ is a single alive entry" `Quick (fun () ->
        let s = S.add "x" a S.bottom in
        let d = S.delta_mutate (S.Add "y") a s in
        check_int "one entry" 1 (S.weight d));
    Alcotest.test_case "removeδ is one dead entry per killed dot" `Quick
      (fun () ->
        let s = S.add "x" a (S.add "x" b S.bottom) in
        let d = S.delta_mutate (S.Remove "x") a s in
        check_int "two killed dots" 2 (S.weight d));
    Alcotest.test_case "removeδ of an absent element is ⊥" `Quick (fun () ->
        let s = S.add "x" a S.bottom in
        check "bottom" true (S.is_bottom (S.delta_mutate (S.Remove "z") a s)));
    Alcotest.test_case "m(x) = x ⊔ mδ(x)" `Quick (fun () ->
        let s = S.add "x" a (S.remove "x" b (S.add "x" b S.bottom)) in
        List.iter
          (fun op ->
            check "contract" true
              (S.equal (S.mutate op a s) (S.join s (S.delta_mutate op a s))))
          [ S.Add "x"; S.Add "new"; S.Remove "x"; S.Remove "missing" ]);
  ]

(* End-to-end: OR-Set under BP+RR on a mesh with adds and removes. *)
let replication =
  [
    Alcotest.test_case "converges under delta sync with mixed ops" `Quick
      (fun () ->
        let open Crdt_sim in
        let module C = Aw_set.Of_int in
        let module P =
          Crdt_proto.Delta_sync.Make (C) (Crdt_proto.Delta_sync.Bp_rr_config)
        in
        let module R = Runner.Make (P) in
        let topo = Topology.partial_mesh 8 in
        let res =
          R.run ~equal:C.equal ~topology:topo ~rounds:15
            ~ops:(fun ~round ~node state ->
              (* everyone keeps adding; node 0 periodically removes what
                 it currently sees. *)
              let add = C.Add ((round * 31) + node) in
              if node = 0 && round mod 3 = 0 then
                match C.value state with
                | v :: _ -> [ add; C.Remove v ]
                | [] -> [ add ]
              else [ add ])
            ()
        in
        check "converged" true res.R.converged;
        Array.iter
          (fun st ->
            check "identical values" true
              (C.value st = C.value res.R.finals.(0)))
          res.R.finals);
  ]

let () =
  Alcotest.run "aw_set"
    [
      ("basics", basics);
      ("concurrency (add-wins)", concurrency);
      ("deltas", deltas);
      ("replication", replication);
    ]
