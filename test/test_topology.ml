(* Unit tests for network topologies (Fig. 6 and variants). *)

open Crdt_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let degrees t = List.init (Topology.size t) (Topology.degree t)

let paper_topologies =
  [
    Alcotest.test_case "15-node tree has the paper's degree profile" `Quick
      (fun () ->
        let t = Topology.tree 15 in
        check_int "root degree" 2 (Topology.degree t 0);
        (* internal nodes: 1..6 have parent + 2 children. *)
        List.iter
          (fun i -> check_int (Printf.sprintf "internal %d" i) 3 (Topology.degree t i))
          [ 1; 2; 3; 4; 5; 6 ];
        (* leaves: 7..14. *)
        List.iter
          (fun i -> check_int (Printf.sprintf "leaf %d" i) 1 (Topology.degree t i))
          [ 7; 8; 9; 10; 11; 12; 13; 14 ];
        check "acyclic" true (Topology.is_acyclic t));
    Alcotest.test_case "15-node partial mesh is 4-regular with cycles" `Quick
      (fun () ->
        let t = Topology.partial_mesh 15 in
        check "4-regular" true (List.for_all (fun d -> d = 4) (degrees t));
        check "cyclic" false (Topology.is_acyclic t);
        check_int "edges" 30 (List.length (Topology.edges t)));
  ]

let constructors =
  [
    Alcotest.test_case "line" `Quick (fun () ->
        let t = Topology.line 5 in
        check_int "end degree" 1 (Topology.degree t 0);
        check_int "middle degree" 2 (Topology.degree t 2);
        check "acyclic" true (Topology.is_acyclic t));
    Alcotest.test_case "ring" `Quick (fun () ->
        let t = Topology.ring 6 in
        check "2-regular" true (List.for_all (fun d -> d = 2) (degrees t));
        check "cyclic" false (Topology.is_acyclic t));
    Alcotest.test_case "star" `Quick (fun () ->
        let t = Topology.star 7 in
        check_int "hub" 6 (Topology.degree t 0);
        check "spokes" true
          (List.for_all (fun i -> Topology.degree t i = 1) [ 1; 2; 3; 4; 5; 6 ]));
    Alcotest.test_case "full mesh" `Quick (fun () ->
        let t = Topology.full_mesh 5 in
        check "4-regular" true (List.for_all (fun d -> d = 4) (degrees t));
        check_int "edges" 10 (List.length (Topology.edges t)));
    Alcotest.test_case "grid" `Quick (fun () ->
        let t = Topology.grid ~rows:3 ~cols:3 in
        check_int "corner" 2 (Topology.degree t 0);
        check_int "center" 4 (Topology.degree t 4));
    Alcotest.test_case "circulant offsets" `Quick (fun () ->
        let t = Topology.circulant ~offsets:[ 1; 3 ] 10 in
        check "4-regular" true (List.for_all (fun d -> d = 4) (degrees t)));
  ]

let validation =
  [
    Alcotest.test_case "adjacency is symmetric" `Quick (fun () ->
        let t = Topology.partial_mesh 15 in
        check "symmetric" true
          (List.for_all
             (fun i ->
               List.for_all
                 (fun j -> List.mem i (Topology.neighbors t j))
                 (Topology.neighbors t i))
             (List.init 15 Fun.id)));
    Alcotest.test_case "self loops are rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Topology.of_edges ~name:"bad" ~n:3 [ (0, 0) ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "disconnected graphs are rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Topology.of_edges ~name:"bad" ~n:4 [ (0, 1); (2, 3) ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "out-of-range nodes are rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Topology.of_edges ~name:"bad" ~n:2 [ (0, 5) ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "neighbor lookup bounds-checked" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Topology.neighbors (Topology.ring 5) 9);
             false
           with Invalid_argument _ -> true));
  ]

(* Topology.of_name is the single CLI/registry entry point: every alias
   must resolve, and the shape must match the direct constructor. *)
let of_name =
  let same_shape a b =
    Topology.size a = Topology.size b
    && List.for_all
         (fun i -> Topology.neighbors a i = Topology.neighbors b i)
         (List.init (Topology.size a) Fun.id)
  in
  [
    Alcotest.test_case "every alias resolves to its constructor" `Quick
      (fun () ->
        List.iter
          (fun (alias, expect) ->
            let t = Topology.of_name alias 8 in
            check
              (Printf.sprintf "%s matches %s" alias (Topology.name expect))
              true (same_shape t expect))
          [
            ("tree", Topology.tree 8);
            ("mesh", Topology.partial_mesh 8);
            ("partial-mesh", Topology.partial_mesh 8);
            ("ring", Topology.ring 8);
            ("line", Topology.line 8);
            ("star", Topology.star 8);
            ("full", Topology.full_mesh 8);
            ("full-mesh", Topology.full_mesh 8);
          ]);
    Alcotest.test_case "unknown name raises with the known list" `Quick
      (fun () ->
        check "raises" true
          (try
             ignore (Topology.of_name "torus" 8);
             false
           with Invalid_argument msg ->
             (* The error must name the offender and the alternatives. *)
             let mem s =
               let ls = String.length s and lm = String.length msg in
               let rec go i =
                 i + ls <= lm && (String.sub msg i ls = s || go (i + 1))
               in
               go 0
             in
             mem "torus" && mem "tree" && mem "mesh"));
  ]

let () =
  Alcotest.run "topology"
    [
      ("paper topologies (Fig. 6)", paper_topologies);
      ("constructors", constructors);
      ("validation", validation);
      ("of_name", of_name);
    ]
