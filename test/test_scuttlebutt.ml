(* Unit tests for the Scuttlebutt adaptation (Section V-B): digest/reply
   reconciliation over optimal deltas, unbounded growth of the original
   design, and the safe-delete rule of Scuttlebutt-GC. *)

open Crdt_core
open Crdt_proto
open Crdt_sim
module Workload = Crdt_engine.Workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module S = Gset.Of_string
module Sb = Scuttlebutt.Make (S) (Scuttlebutt.No_gc_config)
module SbGc = Scuttlebutt.Make (S) (Scuttlebutt.Gc_config)

(* Manual two-node reconciliation. *)
let two_node_exchange () =
  let a = Sb.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
  let b = Sb.init ~id:1 ~neighbors:[ 0 ] ~total:2 in
  let a = Sb.local_update a "x" in
  let a = Sb.local_update a "y" in
  (* B pushes its digest; A replies with the two missing pairs. *)
  let b, msgs = Sb.tick b in
  let digest = List.assoc 0 msgs in
  let a, replies = Sb.handle a ~src:1 digest in
  (a, b, replies)

let basics =
  [
    Alcotest.test_case "digest triggers a reply with missing pairs" `Quick
      (fun () ->
        let _, _, replies = two_node_exchange () in
        check_int "one reply" 1 (List.length replies);
        let _, pairs = List.hd replies in
        check_int "two deltas (2 elements)" 2 (Sb.payload_weight pairs));
    Alcotest.test_case "pairs deliver the state" `Quick (fun () ->
        let _, b, replies = two_node_exchange () in
        let _, pairs = List.hd replies in
        let b, _ = Sb.handle b ~src:0 pairs in
        check "B caught up" true
          (S.equal (Sb.state b) (S.of_list [ "x"; "y" ])));
    Alcotest.test_case "covered digests draw no reply" `Quick (fun () ->
        let a, b, replies = two_node_exchange () in
        let _, pairs = List.hd replies in
        let b, _ = Sb.handle b ~src:0 pairs in
        (* B now knows everything A has; A's digest to B yields nothing. *)
        let _, msgs = Sb.tick a in
        let _, replies = Sb.handle b ~src:0 (List.assoc 1 msgs) in
        check "no reply" true (replies = []));
    Alcotest.test_case "duplicate pairs are ignored" `Quick (fun () ->
        let _, b, replies = two_node_exchange () in
        let _, pairs = List.hd replies in
        let b, _ = Sb.handle b ~src:0 pairs in
        let before = Sb.memory_weight b in
        let b, _ = Sb.handle b ~src:0 pairs in
        check_int "memory unchanged" before (Sb.memory_weight b));
  ]

(* Run the mesh micro-benchmark and inspect store growth. *)
module R_sb = Runner.Make (Scuttlebutt.Make (Gset.Of_int) (Scuttlebutt.No_gc_config))
module R_gc = Runner.Make (Scuttlebutt.Make (Gset.Of_int) (Scuttlebutt.Gc_config))

let growth_tests =
  [
    Alcotest.test_case "GC keeps the store bounded; original grows" `Quick
      (fun () ->
        let topo = Topology.partial_mesh 8 in
        let ops ~round ~node _ = Workload.gset ~nodes:8 ~round ~node () in
        let res_plain =
          R_sb.run ~equal:Gset.Of_int.equal ~topology:topo ~rounds:20 ~ops ()
        in
        let res_gc =
          R_gc.run ~equal:Gset.Of_int.equal ~topology:topo ~rounds:20 ~ops ()
        in
        check "both converge" true (res_plain.R_sb.converged && res_gc.R_gc.converged);
        let mem_plain = (R_sb.summary res_plain).Metrics.avg_memory_weight in
        let mem_gc = (R_gc.summary res_gc).Metrics.avg_memory_weight in
        check "GC uses less memory" true (mem_gc < mem_plain);
        (* In the original design the last round's memory dominates the
           average (monotone growth). *)
        let rounds = res_plain.R_sb.rounds in
        let last = rounds.(Array.length rounds - 1).Metrics.memory_weight in
        let first = rounds.(0).Metrics.memory_weight in
        check "plain store grows monotonically" true (last > first));
    Alcotest.test_case "GC metadata is quadratic-ish; plain is linear-ish"
      `Quick (fun () ->
        let topo = Topology.partial_mesh 8 in
        let ops ~round ~node _ = Workload.gset ~nodes:8 ~round ~node () in
        let res_plain =
          R_sb.run ~equal:Gset.Of_int.equal ~topology:topo ~rounds:10 ~ops ()
        in
        let res_gc =
          R_gc.run ~equal:Gset.Of_int.equal ~topology:topo ~rounds:10 ~ops ()
        in
        let md r = (Metrics.summarize r).Metrics.total_metadata_bytes in
        check "GC ships more metadata" true
          (md res_gc.R_gc.rounds > 2 * md res_plain.R_sb.rounds));
  ]

let opaque_values =
  [
    Alcotest.test_case
      "GCounter through scuttlebutt: deltas pile up (no lattice compression)"
      `Quick (fun () ->
        (* One replica increments 5 times; all five key-delta pairs sit in
           the store even though their join is a single entry. *)
        let module Sbc = Scuttlebutt.Make (Gcounter) (Scuttlebutt.No_gc_config) in
        let a = Sbc.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let a =
          List.fold_left
            (fun a () -> Sbc.local_update a (Gcounter.Inc 1))
            a
            (List.init 5 (fun _ -> ()))
        in
        (* CRDT weight is 1 entry, but the store holds 5 deltas. *)
        check_int "crdt entry" 1 (Gcounter.weight (Sbc.state a));
        check "store is larger than the CRDT" true (Sbc.memory_weight a >= 6));
  ]

let () =
  Alcotest.run "scuttlebutt"
    [
      ("reconciliation", basics);
      ("store growth & GC", growth_tests);
      ("opaque values", opaque_values);
    ]
