(* Property-based end-to-end convergence: random connected topologies,
   random operation schedules, random transport faults — every protocol
   must still drive all replicas to the same state (strong eventual
   consistency). *)

open Crdt_core
open Crdt_sim
module Gen = QCheck.Gen

module Si = Gset.Of_int

(* Random connected graph: a random spanning tree plus random extra
   edges. *)
let topology_gen =
  let open Gen in
  int_range 3 10 >>= fun n ->
  list_size (int_bound (n * 2)) (pair (int_bound (n - 1)) (int_bound (n - 1)))
  >>= fun extra ->
  (* attach node i to a random earlier node: spanning tree. *)
  let tree_edges =
    List.init (n - 1) (fun i ->
        let child = i + 1 in
        (child, child * 7919 mod (i + 1)))
  in
  let edges =
    tree_edges
    @ List.filter_map
        (fun (a, b) -> if a <> b then Some (a, b) else None)
        extra
  in
  return (Topology.of_edges ~name:"random" ~n edges)

(* Schedule: per round and node, how many unique elements to add
   (0-2). *)
let schedule_gen =
  Gen.(
    pair (int_range 1 8)
      (array_size (return 64) (int_bound 2)))

type faultspec = { dup : float; shuffle : bool }

let fault_gen =
  Gen.(
    pair (float_bound_inclusive 0.5) bool
    |> map (fun (dup, shuffle) -> { dup; shuffle }))

let arb =
  QCheck.make
    ~print:(fun (t, (rounds, _), f) ->
      Printf.sprintf "n=%d rounds=%d dup=%.2f shuffle=%b" (Topology.size t)
        rounds f.dup f.shuffle)
    Gen.(triple topology_gen schedule_gen fault_gen)

module Check (P : Crdt_proto.Protocol_intf.PROTOCOL
                with type crdt = Si.t
                 and type op = int) =
struct
  module R = Runner.Make (P)

  let converges (topo, (rounds, counts), f) =
    let n = Topology.size topo in
    let ops ~round ~node _ =
      let how_many =
        counts.((round * n + node) mod Array.length counts)
      in
      List.init how_many (fun k ->
          (round * 1_000_003) + (node * 971) + k)
    in
    let faults =
      {
        R.no_faults with
        duplicate = f.dup;
        shuffle = f.shuffle;
        seed = 42;
      }
    in
    let res =
      R.run ~faults ~quiesce_limit:128 ~equal:Si.equal ~topology:topo ~rounds
        ~ops ()
    in
    res.R.converged
end

module C_classic =
  Check (Crdt_proto.Delta_sync.Make (Si) (Crdt_proto.Delta_sync.Classic_config))
module C_bprr =
  Check (Crdt_proto.Delta_sync.Make (Si) (Crdt_proto.Delta_sync.Bp_rr_config))
module C_state = Check (Crdt_proto.State_sync.Make (Si))
module C_sbgc =
  Check (Crdt_proto.Scuttlebutt.Make (Si) (Crdt_proto.Scuttlebutt.Gc_config))
module C_op = Check (Crdt_proto.Op_sync.Make (Si))

let prop name f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:40 ~name arb f)

(* The same property over a remove-capable type: random interleavings of
   adds and observed-removes on the OR-Set must still converge, with the
   same faults injected. *)
module Aw = Crdt_core.Aw_set.Of_int

module Check_aw (P : Crdt_proto.Protocol_intf.PROTOCOL
                   with type crdt = Aw.t
                    and type op = Aw.op) =
struct
  module R = Runner.Make (P)

  let converges (topo, (rounds, counts), f) =
    let n = Topology.size topo in
    let ops ~round ~node state =
      let roll = counts.((round * n + node) mod Array.length counts) in
      let add = Aw.Add ((round * 1_000_003) + (node * 971)) in
      if roll = 0 then []
      else if roll = 1 then [ add ]
      else
        (* add one element and remove one currently visible. *)
        match Aw.value state with
        | v :: _ -> [ add; Aw.Remove v ]
        | [] -> [ add ]
    in
    let faults =
      {
        R.no_faults with
        duplicate = f.dup;
        shuffle = f.shuffle;
        seed = 43;
      }
    in
    let res =
      R.run ~faults ~quiesce_limit:128 ~equal:Aw.equal ~topology:topo ~rounds
        ~ops ()
    in
    res.R.converged
end

module A_classic =
  Check_aw
    (Crdt_proto.Delta_sync.Make (Aw) (Crdt_proto.Delta_sync.Classic_config))
module A_bprr =
  Check_aw (Crdt_proto.Delta_sync.Make (Aw) (Crdt_proto.Delta_sync.Bp_rr_config))
module A_sbgc =
  Check_aw (Crdt_proto.Scuttlebutt.Make (Aw) (Crdt_proto.Scuttlebutt.Gc_config))

let () =
  Alcotest.run "random convergence"
    [
      ( "strong eventual consistency (GSet)",
        [
          prop "state-based converges" C_state.converges;
          prop "delta-classic converges" C_classic.converges;
          prop "delta-bp+rr converges" C_bprr.converges;
          prop "scuttlebutt-gc converges" C_sbgc.converges;
          prop "op-based converges" C_op.converges;
        ] );
      ( "strong eventual consistency (OR-Set, adds + removes)",
        [
          prop "delta-classic converges" A_classic.converges;
          prop "delta-bp+rr converges" A_bprr.converges;
          prop "scuttlebutt-gc converges" A_sbgc.converges;
        ] );
    ]
