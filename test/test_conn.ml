(* Socket-level tests for the batched connection layer (lib/net/conn)
   over real socketpairs: write coalescing (many staged frames, one
   write(2)), partial-write queueing and draining under a congested
   socket, and dead-peer error reporting.  These pin the Conn contract
   the runtime's event loop relies on; byte-level equality of the
   batched and unbatched encodings is covered in test_wire.ml, and the
   end-to-end cluster behavior in test_net_convergence.ml. *)

module Conn = Crdt_net.Conn
module Frame = Crdt_wire.Frame

(* A write to a closed peer must surface as an [Error], not kill the
   process. *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let socketpair () = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0

let payload i = Printf.sprintf "frame-%d-%s" i (String.make (i mod 23) 'y')

(* Drain everything currently readable from a nonblocking fd. *)
let read_available fd buf =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let coalescing_tests =
  [
    Alcotest.test_case "50 staged frames leave in one write(2)" `Quick
      (fun () ->
        let a, b = socketpair () in
        let conn = Conn.create a in
        let n = 50 in
        for i = 0 to n - 1 do
          Conn.stage conn ~kind:(i mod 5) (payload i)
        done;
        check_int "staging never touches the socket" 0 (Conn.writes conn);
        check "staged bytes are pending" true (Conn.pending_out conn > 0);
        (match Conn.flush conn with
        | Ok () -> ()
        | Error m -> Alcotest.failf "flush: %s" m);
        check_int "one write for the whole batch" 1 (Conn.writes conn);
        check_int "nothing left queued" 0 (Conn.pending_out conn);
        let expected =
          String.concat ""
            (List.init n (fun i -> Frame.encode ~kind:(i mod 5) (payload i)))
        in
        let got = Buffer.create 4096 in
        Unix.set_nonblock b;
        read_available b got;
        Alcotest.(check string)
          "receiver sees the concatenated frames byte-exactly" expected
          (Buffer.contents got);
        Conn.close conn;
        Unix.close b);
    Alcotest.test_case "send is one write per message" `Quick (fun () ->
        let a, b = socketpair () in
        let conn = Conn.create a in
        for i = 0 to 4 do
          match Conn.send conn ~kind:1 (payload i) with
          | Ok () -> ()
          | Error m -> Alcotest.failf "send: %s" m
        done;
        check_int "five messages, five writes" 5 (Conn.writes conn);
        Conn.close conn;
        Unix.close b);
  ]

let backpressure_tests =
  [
    Alcotest.test_case "partial write queues; repeated flush drains" `Quick
      (fun () ->
        let a, b = socketpair () in
        let conn = Conn.create a in
        (* Far more than any socket buffer: the first flush must hit
           EAGAIN with a queued remainder, and that must be Ok, not an
           error (the old path raised on any short write). *)
        let big = String.make (4 * 1024 * 1024) 'z' in
        Conn.stage conn ~kind:2 big;
        (match Conn.flush conn with
        | Ok () -> ()
        | Error m -> Alcotest.failf "first flush: %s" m);
        check "remainder queued after EAGAIN" true (Conn.pending_out conn > 0);
        check "connection still healthy" true (Conn.alive conn);
        let got = Buffer.create (String.length big + 64) in
        Unix.set_nonblock b;
        let rounds = ref 0 in
        while Conn.pending_out conn > 0 && !rounds < 10_000 do
          incr rounds;
          read_available b got;
          match Conn.flush conn with
          | Ok () -> ()
          | Error m -> Alcotest.failf "drain flush: %s" m
        done;
        read_available b got;
        check_int "everything eventually drained" 0 (Conn.pending_out conn);
        check "took more than one write" true (Conn.writes conn > 1);
        Alcotest.(check string)
          "received stream is the staged frame" (Frame.encode ~kind:2 big)
          (Buffer.contents got);
        Conn.close conn;
        Unix.close b);
    Alcotest.test_case "flush to a closed peer reports Error" `Quick
      (fun () ->
        let a, b = socketpair () in
        let conn = Conn.create a in
        Unix.close b;
        (* The kernel may accept a buffered write or two before EPIPE
           surfaces; keep pushing until the error comes through. *)
        let rec poke k =
          if k = 0 then Alcotest.fail "no error after many writes to dead peer"
          else begin
            Conn.stage conn ~kind:1 (String.make 4096 'q');
            match Conn.flush conn with
            | Ok () -> poke (k - 1)
            | Error _ -> ()
          end
        in
        poke 100;
        check "connection marked dead" false (Conn.alive conn);
        (match Conn.send conn ~kind:1 "after" with
        | Ok () -> Alcotest.fail "send succeeded on a dead connection"
        | Error _ -> ());
        Conn.close conn);
  ]

let recv_tests =
  [
    Alcotest.test_case "one read surfaces every buffered frame" `Quick
      (fun () ->
        let a, b = socketpair () in
        let conn = Conn.create a in
        let n = 20 in
        let stream =
          String.concat ""
            (List.init n (fun i -> Frame.encode ~kind:(i mod 3) (payload i)))
        in
        let w = Unix.write_substring b stream 0 (String.length stream) in
        check_int "test stream fits the socket buffer" (String.length stream) w;
        (match Conn.recv conn with
        | Ok frames ->
            Alcotest.(check (list (pair int string)))
              "all frames, in order"
              (List.init n (fun i -> (i mod 3, payload i)))
              frames
        | Error `Closed -> Alcotest.fail "recv: closed"
        | Error (`Bad e) ->
            Alcotest.failf "recv: %s" (Crdt_wire.Codec.error_to_string e));
        Unix.close b;
        (match Conn.recv conn with
        | Error `Closed -> ()
        | Ok _ | Error (`Bad _) -> Alcotest.fail "EOF not reported as Closed");
        check "closed on EOF" false (Conn.alive conn);
        Conn.close conn);
  ]

let () =
  Alcotest.run "conn"
    [
      ("coalescing", coalescing_tests);
      ("backpressure", backpressure_tests);
      ("recv", recv_tests);
    ]
