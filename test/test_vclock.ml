(* Unit tests for vector clocks and causal deliverability. *)

open Crdt_proto

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let basics =
  [
    Alcotest.test_case "empty clock reads zero" `Quick (fun () ->
        check_int "get" 0 (Vclock.get 3 Vclock.empty));
    Alcotest.test_case "incr advances one component" `Quick (fun () ->
        let v = Vclock.incr 2 (Vclock.incr 2 Vclock.empty) in
        check_int "incremented" 2 (Vclock.get 2 v);
        check_int "others" 0 (Vclock.get 0 v));
    Alcotest.test_case "set to zero removes the entry" `Quick (fun () ->
        let v = Vclock.set 1 0 (Vclock.incr 1 Vclock.empty) in
        check_int "cardinal" 0 (Vclock.cardinal v));
    Alcotest.test_case "merge is pointwise max" `Quick (fun () ->
        let v1 = Vclock.of_list [ (0, 3); (1, 1) ] in
        let v2 = Vclock.of_list [ (0, 1); (2, 5) ] in
        let m = Vclock.merge v1 v2 in
        check_int "0" 3 (Vclock.get 0 m);
        check_int "1" 1 (Vclock.get 1 m);
        check_int "2" 5 (Vclock.get 2 m));
  ]

let order =
  [
    Alcotest.test_case "leq is pointwise" `Quick (fun () ->
        check "⊑" true
          (Vclock.leq (Vclock.of_list [ (0, 1) ]) (Vclock.of_list [ (0, 2) ]));
        check "⋢" false
          (Vclock.leq (Vclock.of_list [ (0, 3) ]) (Vclock.of_list [ (0, 2) ])));
    Alcotest.test_case "concurrent clocks are incomparable" `Quick (fun () ->
        let v1 = Vclock.of_list [ (0, 1) ] and v2 = Vclock.of_list [ (1, 1) ] in
        check "v1 ⋢ v2" false (Vclock.leq v1 v2);
        check "v2 ⋢ v1" false (Vclock.leq v2 v1));
    Alcotest.test_case "strict domination" `Quick (fun () ->
        let v1 = Vclock.of_list [ (0, 1) ] in
        let v2 = Vclock.of_list [ (0, 1); (1, 1) ] in
        check "strict" true (Vclock.dominates_strictly v2 v1);
        check "not self" false (Vclock.dominates_strictly v1 v1));
  ]

let delivery =
  [
    Alcotest.test_case "next op from a known origin is deliverable" `Quick
      (fun () ->
        let local = Vclock.of_list [ (0, 2); (1, 1) ] in
        let tag = Vclock.of_list [ (0, 3); (1, 1) ] in
        check "deliverable" true (Vclock.deliverable ~origin:0 ~tag ~local));
    Alcotest.test_case "a gap in the origin's sequence blocks delivery" `Quick
      (fun () ->
        let local = Vclock.of_list [ (0, 1) ] in
        let tag = Vclock.of_list [ (0, 3) ] in
        check "blocked" false (Vclock.deliverable ~origin:0 ~tag ~local));
    Alcotest.test_case "missing causal dependency blocks delivery" `Quick
      (fun () ->
        (* op from 0 that causally saw (1,2), but locally we only have
           (1,1). *)
        let local = Vclock.of_list [ (1, 1) ] in
        let tag = Vclock.of_list [ (0, 1); (1, 2) ] in
        check "blocked" false (Vclock.deliverable ~origin:0 ~tag ~local));
    Alcotest.test_case "already delivered ops are not deliverable again"
      `Quick (fun () ->
        let local = Vclock.of_list [ (0, 3) ] in
        let tag = Vclock.of_list [ (0, 3) ] in
        check "duplicate" false (Vclock.deliverable ~origin:0 ~tag ~local));
  ]

let accounting =
  [
    Alcotest.test_case "byte size: 28 B per entry (20 B id + 8 B ctr)" `Quick
      (fun () ->
        check_int "bytes" 56 (Vclock.byte_size (Vclock.of_list [ (0, 1); (5, 2) ])));
  ]

let () =
  Alcotest.run "vclock"
    [
      ("basics", basics);
      ("order", order);
      ("causal delivery", delivery);
      ("accounting", accounting);
    ]
