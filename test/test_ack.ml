(* Focused tests for the ack-based delta buffer (the paper's footnote in
   Section IV: on lossy channels, tag δ-buffer entries with sequence
   numbers and evict them only once every neighbor acknowledged). *)

open Crdt_core
open Crdt_proto

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module S = Gset.Of_string
module P = Delta_sync.Make (S) (Delta_sync.Ack_config)

(* Pull the single message addressed to [dest] out of a tick result. *)
let to_dest dest msgs = List.assoc_opt dest msgs

let tests =
  [
    Alcotest.test_case "unacked δ-groups are retransmitted" `Quick (fun () ->
        let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let a = P.local_update a "x" in
        let a, msgs = P.tick a in
        check "first send" true (to_dest 1 msgs <> None);
        (* The message is lost; the next tick must resend it. *)
        let a, msgs = P.tick a in
        (match to_dest 1 msgs with
        | Some m -> check_int "resent payload" 1 (P.payload_weight m)
        | None -> Alcotest.fail "expected a retransmission");
        ignore a);
    Alcotest.test_case "acked δ-groups stop being sent" `Quick (fun () ->
        let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let b = P.init ~id:1 ~neighbors:[ 0 ] ~total:2 in
        let a = P.local_update a "x" in
        let a, msgs = P.tick a in
        let m = Option.get (to_dest 1 msgs) in
        let b, replies = P.handle b ~src:0 m in
        check "receiver acks" true (replies <> []);
        check "receiver applied" true (S.mem "x" (P.state b));
        (* Deliver the ack back to a; nothing further flows. *)
        let a =
          List.fold_left
            (fun a (dest, reply) ->
              check_int "ack goes to a" 0 dest;
              fst (P.handle a ~src:1 reply))
            a replies
        in
        let _, msgs = P.tick a in
        check "silence after ack" true (to_dest 1 msgs = None));
    Alcotest.test_case "memory drains only after the ack" `Quick (fun () ->
        let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let b = P.init ~id:1 ~neighbors:[ 0 ] ~total:2 in
        let a = P.local_update a "x" in
        let before = P.memory_weight a in
        let a, msgs = P.tick a in
        (* Without the ack the buffer entry survives the tick. *)
        check_int "still buffered" before (P.memory_weight a);
        let _, replies = P.handle b ~src:0 (Option.get (to_dest 1 msgs)) in
        let a =
          List.fold_left
            (fun a (_, reply) -> fst (P.handle a ~src:1 reply))
            a replies
        in
        let a, _ = P.tick a in
        check "drained" true (P.memory_weight a < before));
    Alcotest.test_case "duplicated acks are harmless" `Quick (fun () ->
        let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let b = P.init ~id:1 ~neighbors:[ 0 ] ~total:2 in
        let a = P.local_update a "x" in
        let a, msgs = P.tick a in
        let _, replies = P.handle b ~src:0 (Option.get (to_dest 1 msgs)) in
        let ack = snd (List.hd replies) in
        let a, _ = P.handle a ~src:1 ack in
        let a, _ = P.handle a ~src:1 ack in
        let _, msgs = P.tick a in
        check "no resend" true (to_dest 1 msgs = None));
    Alcotest.test_case "BP still filters the origin under ack mode" `Quick
      (fun () ->
        (* b's δ-group reaches a; a must not send it back to b even
           though b never acked it (it is its origin). *)
        let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let b = P.init ~id:1 ~neighbors:[ 0 ] ~total:2 in
        let b = P.local_update b "y" in
        let _, msgs = P.tick b in
        let a, _ = P.handle a ~src:1 (Option.get (to_dest 0 msgs)) in
        let _, msgs = P.tick a in
        (* Only the ack-free path matters: any Delta to b must be empty
           of y, i.e. there is no Delta at all (a has no local ops). *)
        check "nothing delta-worthy for b" true
          (match to_dest 1 msgs with
          | None -> true
          | Some m -> P.payload_weight m = 0));
  ]

(* Eviction under the per-origin buffer representation: an entry leaves
   the (seq-tagged, ack-mode-only) buffer exactly when every neighbor
   that must receive it — under BP, everyone except its origin — has
   acked past it, even when some deliveries are dropped. *)
let eviction_tests =
  (* Deliver [a]'s pending messages to the peers listed in [deliver]
     (dropping the rest), flow the acks back, and return the updated
     nodes. *)
  let exchange a peers deliver =
    let a, msgs = P.tick a in
    List.fold_left
      (fun (a, peers) (dest, m) ->
        if not (List.mem dest deliver) then (a, peers) (* dropped *)
        else
          let peer = List.assoc dest peers in
          let peer, replies = P.handle peer ~src:0 m in
          let a =
            List.fold_left
              (fun a (_, reply) -> fst (P.handle a ~src:dest reply))
              a replies
          in
          (a, (dest, peer) :: List.remove_assoc dest peers))
      (a, peers) msgs
  in
  [
    Alcotest.test_case "entry survives until ALL non-origin neighbors ack"
      `Quick (fun () ->
        let a = P.init ~id:0 ~neighbors:[ 1; 2 ] ~total:3 in
        let peers =
          [
            (1, P.init ~id:1 ~neighbors:[ 0 ] ~total:3);
            (2, P.init ~id:2 ~neighbors:[ 0 ] ~total:3);
          ]
        in
        let a = P.local_update a "x" in
        let buffered = P.memory_weight a in
        (* Round 1: the message to 2 is dropped; only 1 acks. *)
        let a, peers = exchange a peers [ 1 ] in
        check_int "kept while 2 is missing it" buffered (P.memory_weight a);
        (* Round 2: 2 finally receives and acks; the entry is evicted on
           the next tick. *)
        let a, _ = exchange a peers [ 2 ] in
        let a, _ = P.tick a in
        check "evicted once both acked" true (P.memory_weight a < buffered));
    Alcotest.test_case "repeated drops never evict prematurely" `Quick
      (fun () ->
        let a = P.init ~id:0 ~neighbors:[ 1; 2 ] ~total:3 in
        let peers =
          [
            (1, P.init ~id:1 ~neighbors:[ 0 ] ~total:3);
            (2, P.init ~id:2 ~neighbors:[ 0 ] ~total:3);
          ]
        in
        let a = P.local_update a "x" in
        let buffered = P.memory_weight a in
        (* Three rounds of total loss: the entry must stay put and keep
           being retransmitted to both neighbors. *)
        let a =
          List.fold_left
            (fun a _ ->
              let a, msgs = P.tick a in
              check_int "still retransmitting to both" 2 (List.length msgs);
              check_int "still buffered" buffered (P.memory_weight a);
              a)
            a [ (); (); () ]
        in
        ignore (exchange a peers [ 1; 2 ]));
    Alcotest.test_case "origin's own ack is not required (BP)" `Quick
      (fun () ->
        (* b's δ-group reaches a; under BP a never sends it back to b, so
           the entry (origin 1) must be evicted once neighbor 2 — the only
           replica that still needs it — acks, even though 1 never does. *)
        let a = P.init ~id:0 ~neighbors:[ 1; 2 ] ~total:3 in
        let b = P.init ~id:1 ~neighbors:[ 0 ] ~total:3 in
        let c = P.init ~id:2 ~neighbors:[ 0 ] ~total:3 in
        let b = P.local_update b "y" in
        let _, msgs = P.tick b in
        let a, replies = P.handle a ~src:1 (Option.get (to_dest 0 msgs)) in
        (* Drop a's ack to b; it is irrelevant to a's buffer. *)
        ignore replies;
        let state_w = S.cardinal (P.state a) in
        check "y buffered at a" true (P.memory_weight a > state_w);
        let a, msgs = P.tick a in
        check "forwarded to 2 only" true
          (to_dest 2 msgs <> None && to_dest 1 msgs = None);
        let _, replies = P.handle c ~src:0 (Option.get (to_dest 2 msgs)) in
        let a =
          List.fold_left
            (fun a (_, reply) -> fst (P.handle a ~src:2 reply))
            a replies
        in
        let a, _ = P.tick a in
        check_int "evicted after 2's ack alone" state_w (P.memory_weight a));
  ]

let () =
  Alcotest.run "ack-mode delta buffer"
    [ ("ack mode", tests); ("eviction under drops", eviction_tests) ]
