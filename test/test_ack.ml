(* Focused tests for the ack-based delta buffer (the paper's footnote in
   Section IV: on lossy channels, tag δ-buffer entries with sequence
   numbers and evict them only once every neighbor acknowledged). *)

open Crdt_core
open Crdt_proto

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module S = Gset.Of_string
module P = Delta_sync.Make (S) (Delta_sync.Ack_config)

(* Pull the single message addressed to [dest] out of a tick result. *)
let to_dest dest msgs = List.assoc_opt dest msgs

let tests =
  [
    Alcotest.test_case "unacked δ-groups are retransmitted" `Quick (fun () ->
        let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let a = P.local_update a "x" in
        let a, msgs = P.tick a in
        check "first send" true (to_dest 1 msgs <> None);
        (* The message is lost; the next tick must resend it. *)
        let a, msgs = P.tick a in
        (match to_dest 1 msgs with
        | Some m -> check_int "resent payload" 1 (P.payload_weight m)
        | None -> Alcotest.fail "expected a retransmission");
        ignore a);
    Alcotest.test_case "acked δ-groups stop being sent" `Quick (fun () ->
        let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let b = P.init ~id:1 ~neighbors:[ 0 ] ~total:2 in
        let a = P.local_update a "x" in
        let a, msgs = P.tick a in
        let m = Option.get (to_dest 1 msgs) in
        let b, replies = P.handle b ~src:0 m in
        check "receiver acks" true (replies <> []);
        check "receiver applied" true (S.mem "x" (P.state b));
        (* Deliver the ack back to a; nothing further flows. *)
        let a =
          List.fold_left
            (fun a (dest, reply) ->
              check_int "ack goes to a" 0 dest;
              fst (P.handle a ~src:1 reply))
            a replies
        in
        let _, msgs = P.tick a in
        check "silence after ack" true (to_dest 1 msgs = None));
    Alcotest.test_case "memory drains only after the ack" `Quick (fun () ->
        let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let b = P.init ~id:1 ~neighbors:[ 0 ] ~total:2 in
        let a = P.local_update a "x" in
        let before = P.memory_weight a in
        let a, msgs = P.tick a in
        (* Without the ack the buffer entry survives the tick. *)
        check_int "still buffered" before (P.memory_weight a);
        let _, replies = P.handle b ~src:0 (Option.get (to_dest 1 msgs)) in
        let a =
          List.fold_left
            (fun a (_, reply) -> fst (P.handle a ~src:1 reply))
            a replies
        in
        let a, _ = P.tick a in
        check "drained" true (P.memory_weight a < before));
    Alcotest.test_case "duplicated acks are harmless" `Quick (fun () ->
        let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let b = P.init ~id:1 ~neighbors:[ 0 ] ~total:2 in
        let a = P.local_update a "x" in
        let a, msgs = P.tick a in
        let _, replies = P.handle b ~src:0 (Option.get (to_dest 1 msgs)) in
        let ack = snd (List.hd replies) in
        let a, _ = P.handle a ~src:1 ack in
        let a, _ = P.handle a ~src:1 ack in
        let _, msgs = P.tick a in
        check "no resend" true (to_dest 1 msgs = None));
    Alcotest.test_case "BP still filters the origin under ack mode" `Quick
      (fun () ->
        (* b's δ-group reaches a; a must not send it back to b even
           though b never acked it (it is its origin). *)
        let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let b = P.init ~id:1 ~neighbors:[ 0 ] ~total:2 in
        let b = P.local_update b "y" in
        let _, msgs = P.tick b in
        let a, _ = P.handle a ~src:1 (Option.get (to_dest 0 msgs)) in
        let _, msgs = P.tick a in
        (* Only the ack-free path matters: any Delta to b must be empty
           of y, i.e. there is no Delta at all (a has no local ops). *)
        check "nothing delta-worthy for b" true
          (match to_dest 1 msgs with
          | None -> true
          | Some m -> P.payload_weight m = 0));
  ]

let () = Alcotest.run "ack-mode delta buffer" [ ("ack mode", tests) ]
