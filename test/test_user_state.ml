(* Focused tests for the composed Retwis per-user state: delta
   localization through the triple product and query behaviour. *)

open Crdt_core
open Crdt_retwis
module U = User_state

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let i = Replica_id.of_int 0
let j = Replica_id.of_int 1

let mutation_tests =
  [
    Alcotest.test_case "follow touches only the follower set" `Quick
      (fun () ->
        let d = U.delta_mutate (U.Follow 7) i U.bottom in
        check_int "weight 1" 1 (U.weight d);
        let followers, (wall, timeline) = d in
        check "follower side live" false (U.Followers.is_bottom followers);
        check "wall untouched" true (U.Wall.is_bottom wall);
        check "timeline untouched" true (U.Timeline.is_bottom timeline));
    Alcotest.test_case "post touches only the wall" `Quick (fun () ->
        let d =
          U.delta_mutate (U.Post { tweet_id = "t"; content = "c" }) i U.bottom
        in
        let followers, (wall, timeline) = d in
        check "wall live" false (U.Wall.is_bottom wall);
        check "followers untouched" true (U.Followers.is_bottom followers);
        check "timeline untouched" true (U.Timeline.is_bottom timeline));
    Alcotest.test_case "timeline add touches only the timeline" `Quick
      (fun () ->
        let d =
          U.delta_mutate
            (U.Timeline_add { timestamp = 3; tweet_id = "t" })
            i U.bottom
        in
        let followers, (wall, timeline) = d in
        check "timeline live" false (U.Timeline.is_bottom timeline);
        check "followers untouched" true (U.Followers.is_bottom followers);
        check "wall untouched" true (U.Wall.is_bottom wall));
    Alcotest.test_case "duplicate follow yields bottom delta" `Quick
      (fun () ->
        let st = U.mutate (U.Follow 7) i U.bottom in
        check "bottom" true (U.is_bottom (U.delta_mutate (U.Follow 7) j st)));
    Alcotest.test_case "m(x) = x ⊔ mδ(x) for all ops" `Quick (fun () ->
        let st = U.mutate (U.Follow 7) i U.bottom in
        List.iter
          (fun op ->
            check "contract" true
              (U.equal (U.mutate op j st) (U.join st (U.delta_mutate op j st))))
          [
            U.Follow 7;
            U.Follow 8;
            U.Post { tweet_id = "t1"; content = "hello" };
            U.Timeline_add { timestamp = 1; tweet_id = "t1" };
          ]);
  ]

let query_tests =
  [
    Alcotest.test_case "followers accumulate across replicas" `Quick
      (fun () ->
        let at_i = U.mutate (U.Follow 1) i U.bottom in
        let at_j = U.mutate (U.Follow 2) j U.bottom in
        Alcotest.(check (list int))
          "both" [ 1; 2 ]
          (U.followers (U.join at_i at_j)));
    Alcotest.test_case "concurrent posts of distinct tweets both land"
      `Quick (fun () ->
        let p1 = U.mutate (U.Post { tweet_id = "t1"; content = "a" }) i U.bottom in
        let p2 = U.mutate (U.Post { tweet_id = "t2"; content = "b" }) j U.bottom in
        check_int "two tweets" 2 (U.Wall.cardinal (U.wall (U.join p1 p2))));
    Alcotest.test_case "recent_timeline honours a custom limit" `Quick
      (fun () ->
        let st =
          List.fold_left
            (fun st ts ->
              U.mutate
                (U.Timeline_add
                   { timestamp = ts; tweet_id = Printf.sprintf "t%d" ts })
                i st)
            U.bottom
            (List.init 6 (fun k -> k + 1))
        in
        check_int "limit 3" 3 (List.length (U.recent_timeline ~limit:3 st));
        check_int "default covers all 6" 6
          (List.length (U.recent_timeline st)));
    Alcotest.test_case "timeline entries resolve to tweet ids" `Quick
      (fun () ->
        let st =
          U.mutate (U.Timeline_add { timestamp = 9; tweet_id = "hello" }) i
            U.bottom
        in
        match U.recent_timeline st with
        | [ (9, "hello") ] -> ()
        | _ -> Alcotest.fail "unexpected timeline");
  ]

let () =
  Alcotest.run "user_state"
    [ ("mutations & deltas", mutation_tests); ("queries", query_tests) ]
