(* The parallel engine's contract: for a fixed fault seed, any [domains]
   setting produces results bit-identical to the sequential engine —
   same finals, same convergence verdict, same per-round metrics, same
   per-node work — including under duplicate / drop / shuffle plans and
   the structural adversity layer (partitions, per-link delay,
   crash–restart).  Plans are gated on each protocol's declared
   capabilities, mirroring what Runner.run enforces.  Also unit-covers
   the engine's substrate (Pool, Dynbuf). *)

open Crdt_core
open Crdt_sim
module Workload = Crdt_engine.Workload
module Pool = Crdt_engine.Shard.Pool
module Dynbuf = Crdt_engine.Dynbuf

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module Si = Gset.Of_int

module Check (P : Crdt_proto.Protocol_intf.PROTOCOL
                with type crdt = Si.t
                 and type op = int) =
struct
  module R = Runner.Make (P)

  let go ~faults ~domains ~topology ~rounds =
    R.run ~faults ~domains ~equal:Si.equal ~topology ~rounds
      ~ops:(fun ~round ~node _ ->
        Workload.gset ~nodes:(Topology.size topology) ~round ~node ())
      ()

  let same_result (a : R.result) (b : R.result) =
    a.R.converged = b.R.converged
    && Array.for_all2 Si.equal a.R.finals b.R.finals
    && a.R.rounds = b.R.rounds
    && a.R.quiesce_rounds = b.R.quiesce_rounds
    && a.R.work = b.R.work

  (* Compare sequential vs domains = 2 and 4 over several fault plans,
     keeping only those the protocol declares tolerance for. *)
  let cases name topology rounds =
    let n = Topology.size topology in
    let plans =
      [
        ("no faults", R.no_faults);
        ("duplicate", { R.no_faults with duplicate = 0.4; seed = 11 });
        ("shuffle", { R.no_faults with shuffle = true; seed = 12 });
        ("drop", { R.no_faults with drop = 0.3; seed = 13 });
        ( "duplicate+drop+shuffle",
          { R.no_faults with duplicate = 0.3; drop = 0.2; shuffle = true;
            seed = 14 } );
        ( "partition",
          { R.no_faults with
            partitions = [ Fault.partition ~from_round:1 ~heal_round:3 [ [ 0; 1 ] ] ];
          } );
        ( "delay",
          { R.no_faults with
            delays = [ Fault.delay ~src:0 ~dst:1 ~hold:2 ];
          } );
        ( "crash",
          { R.no_faults with
            crashes = [ Fault.crash ~victim:(n - 1) ~crash_round:1 ~recover_round:3 ];
          } );
        ( "partition+delay+crash+shuffle",
          { R.no_faults with
            shuffle = true;
            seed = 15;
            partitions = [ Fault.partition ~from_round:0 ~heal_round:2 [ [ 0 ] ] ];
            delays = [ Fault.delay ~src:1 ~dst:0 ~hold:1 ];
            crashes = [ Fault.crash ~victim:2 ~crash_round:2 ~recover_round:3 ];
          } );
      ]
      |> List.filter (fun (_, plan) ->
             Fault.supported ~caps:P.capabilities plan)
    in
    List.map
      (fun (plan_name, faults) ->
        Alcotest.test_case
          (Printf.sprintf "%s, %s: domains 2/4 ≡ sequential" name plan_name)
          `Quick
          (fun () ->
            let seq = go ~faults ~domains:1 ~topology ~rounds in
            List.iter
              (fun domains ->
                let par = go ~faults ~domains ~topology ~rounds in
                check
                  (Printf.sprintf "bit-identical at %d domains" domains)
                  true (same_result seq par))
              [ 2; 4 ]))
      plans
end

module C_bprr =
  Check (Crdt_proto.Delta_sync.Make (Si) (Crdt_proto.Delta_sync.Bp_rr_config))
module C_state = Check (Crdt_proto.State_sync.Make (Si))
module C_sbgc =
  Check (Crdt_proto.Scuttlebutt.Make (Si) (Crdt_proto.Scuttlebutt.Gc_config))
module C_merkle =
  Check (Crdt_proto.Merkle_sync.Make (Si) (Crdt_proto.Merkle_sync.Default_config))

(* More domains than nodes: high shards own empty ranges. *)
let oversharded =
  Alcotest.test_case "more domains than nodes" `Quick (fun () ->
      let topology = Topology.ring 3 in
      let seq = C_bprr.go ~faults:C_bprr.R.no_faults ~domains:1 ~topology ~rounds:4 in
      let par = C_bprr.go ~faults:C_bprr.R.no_faults ~domains:6 ~topology ~rounds:4 in
      check "identical" true (C_bprr.same_result seq par))

let seeded_faults_determinism =
  Alcotest.test_case "same seed twice ⇒ same faulty parallel run" `Quick
    (fun () ->
      let topology = Topology.partial_mesh 8 in
      let faults =
        { C_bprr.R.no_faults with duplicate = 0.5; shuffle = true; seed = 99 }
      in
      let a = C_bprr.go ~faults ~domains:3 ~topology ~rounds:5 in
      let b = C_bprr.go ~faults ~domains:3 ~topology ~rounds:5 in
      check "identical" true (C_bprr.same_result a b))

let ops_applied_counted =
  Alcotest.test_case "ops_applied counts the workload ops per round" `Quick
    (fun () ->
      let topology = Topology.ring 5 in
      let res =
        C_bprr.go ~faults:C_bprr.R.no_faults ~domains:2 ~topology ~rounds:3
      in
      Array.iter
        (fun (r : Metrics.round) -> check_int "one op per node" 5 r.ops_applied)
        res.C_bprr.R.rounds;
      Array.iter
        (fun (r : Metrics.round) -> check_int "quiesce applies none" 0 r.ops_applied)
        res.C_bprr.R.quiesce_rounds;
      check_int "summary total" 15
        (C_bprr.R.summary res).Metrics.total_ops)

(* -- Shard.Make driven directly ----------------------------------------- *)

(* The scheduler under the simulator's skin: tick / route / deliver_wave
   / sync_round on a full mesh at pool widths 1, 2 and 4, with no
   Runner on top.  Finals and the folded counters must be bit-identical
   at every width — the same contract the Runner-level cases check, but
   pinned at the layer serve and future transports consume. *)
module Shard_direct = struct
  module P = Crdt_proto.Delta_sync.Make (Si) (Crdt_proto.Delta_sync.Bp_rr_config)
  module Sh = Crdt_engine.Shard.Make (P)

  let run ~domains ~n ~rounds =
    Pool.with_pool domains @@ fun pool ->
    let neighbors i = List.filter (fun j -> j <> i) (List.init n Fun.id) in
    let sh = Sh.create ~pool ~n ~neighbors () in
    for round = 0 to rounds - 1 do
      Array.iteri
        (fun i drv ->
          ignore (Sh.D.apply drv (Workload.gset ~nodes:n ~round ~node:i ())))
        (Sh.drivers sh);
      Sh.sync_round sh ~round
    done;
    Sh.snapshot_memory sh;
    let finals = Array.init n (Sh.state sh) in
    let c = Sh.total_counters sh in
    (finals, c, Sh.all_equal ~equal:Si.equal sh)

  let same_counters (a : Crdt_engine.Trace.counters)
      (b : Crdt_engine.Trace.counters) =
    a.sent = b.sent && a.delivered = b.delivered && a.messages = b.messages
    && a.payload_bytes = b.payload_bytes
    && a.metadata_bytes = b.metadata_bytes
    && a.wire_bytes = b.wire_bytes
    && a.ops_applied = b.ops_applied
    && a.memory_weight = b.memory_weight
    && a.memory_bytes = b.memory_bytes

  let equivalence =
    Alcotest.test_case "tick/route/deliver: widths 1/2/4 bit-identical"
      `Quick (fun () ->
        let n = 7 and rounds = 5 in
        let f1, c1, conv1 = run ~domains:1 ~n ~rounds in
        check "width 1 converged" true conv1;
        List.iter
          (fun domains ->
            let fd, cd, convd = run ~domains ~n ~rounds in
            check
              (Printf.sprintf "width %d converged" domains)
              true convd;
            check
              (Printf.sprintf "finals identical at width %d" domains)
              true
              (Array.for_all2 Si.equal f1 fd);
            check
              (Printf.sprintf "counters identical at width %d" domains)
              true (same_counters c1 cd))
          [ 2; 4 ])

  (* One explicit wave walked by hand: tick fills the producing shards'
     outboxes, route drains them into destination inboxes in shard
     order, deliver_wave empties every inbox.  This pins the phase
     boundaries the composite sync_round hides. *)
  let phases =
    Alcotest.test_case "tick -> route -> deliver_wave phase contract" `Quick
      (fun () ->
        Pool.with_pool 2 @@ fun pool ->
        let n = 4 in
        let neighbors i = List.filter (fun j -> j <> i) (List.init n Fun.id) in
        let sh = Sh.create ~pool ~n ~neighbors () in
        Array.iteri
          (fun i drv ->
            ignore (Sh.D.apply drv (Workload.gset ~nodes:n ~round:0 ~node:i ())))
          (Sh.drivers sh);
        Sh.tick sh ~round:0;
        let produced = ref 0 in
        for s = 0 to Sh.shards sh - 1 do
          produced := !produced + Dynbuf.length (Sh.outbox sh ~shard:s)
        done;
        check "tick produced messages" true (!produced > 0);
        check "route reports pending" true (Sh.route sh);
        let pending = ref 0 in
        for d = 0 to n - 1 do
          pending := !pending + Dynbuf.length (Sh.inbox sh d)
        done;
        check_int "route moved every message" !produced !pending;
        Sh.deliver_wave sh ~round:0;
        let left = ref 0 in
        for d = 0 to n - 1 do
          left := !left + Dynbuf.length (Sh.inbox sh d)
        done;
        check_int "deliver_wave drained the inboxes" 0 !left)
end

(* -- substrate: Pool ---------------------------------------------------- *)

let pool_tests =
  [
    Alcotest.test_case "size 1 runs inline" `Quick (fun () ->
        Pool.with_pool 1 (fun p ->
            check_int "size" 1 (Pool.size p);
            let hit = ref 0 in
            Pool.run p (fun shard -> hit := !hit + shard + 1);
            check_int "one shard" 1 !hit));
    Alcotest.test_case "all shards run exactly once per job" `Quick (fun () ->
        Pool.with_pool 4 (fun p ->
            let hits = Array.make 4 0 in
            for _ = 1 to 10 do
              Pool.run p (fun shard -> hits.(shard) <- hits.(shard) + 1)
            done;
            Array.iter (fun h -> check_int "10 jobs" 10 h) hits));
    Alcotest.test_case "sharded partial sums add up" `Quick (fun () ->
        Pool.with_pool 3 (fun p ->
            let n = 1000 in
            let partial = Array.make 3 0 in
            Pool.run p (fun s ->
                for i = s * n / 3 to ((s + 1) * n / 3) - 1 do
                  partial.(s) <- partial.(s) + i
                done);
            check_int "sum 0..999" (n * (n - 1) / 2)
              (Array.fold_left ( + ) 0 partial)));
    Alcotest.test_case "worker exception is re-raised at the barrier" `Quick
      (fun () ->
        Pool.with_pool 2 (fun p ->
            check "raised" true
              (try
                 Pool.run p (fun shard ->
                     if shard = 1 then failwith "boom");
                 false
               with Failure _ -> true);
            (* The pool survives a failed job. *)
            let ok = ref false in
            Pool.run p (fun shard -> if shard = 0 then ok := true);
            check "still usable" true !ok));
  ]

(* -- substrate: Dynbuf -------------------------------------------------- *)

let dynbuf_tests =
  [
    Alcotest.test_case "push/get/clear across growth" `Quick (fun () ->
        let b = Dynbuf.create () in
        check "empty" true (Dynbuf.is_empty b);
        for i = 0 to 99 do
          Dynbuf.push b i
        done;
        check_int "length" 100 (Dynbuf.length b);
        for i = 0 to 99 do
          check_int "get" i (Dynbuf.get b i)
        done;
        Dynbuf.clear b;
        check "cleared" true (Dynbuf.is_empty b);
        Dynbuf.push b 7;
        check_int "refill" 7 (Dynbuf.get b 0));
    Alcotest.test_case "get out of bounds raises" `Quick (fun () ->
        let b = Dynbuf.create () in
        Dynbuf.push b 1;
        check "raises" true
          (try
             ignore (Dynbuf.get b 1);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "shuffle permutes in place deterministically" `Quick
      (fun () ->
        let fill () =
          let b = Dynbuf.create () in
          for i = 0 to 31 do
            Dynbuf.push b i
          done;
          b
        in
        let a = fill () and b = fill () in
        Dynbuf.shuffle ~rng:(Random.State.make [| 3 |]) a;
        Dynbuf.shuffle ~rng:(Random.State.make [| 3 |]) b;
        let elems buf =
          List.init (Dynbuf.length buf) (Dynbuf.get buf)
        in
        check "same permutation" true (elems a = elems b);
        check "is a permutation" true
          (List.sort Int.compare (elems a) = List.init 32 Fun.id));
  ]

let () =
  Alcotest.run "engine determinism"
    [
      ("delta-bp+rr", C_bprr.cases "bp+rr" (Topology.partial_mesh 9) 6);
      ("state-based", C_state.cases "state" (Topology.tree 7) 4);
      ("scuttlebutt-gc", C_sbgc.cases "sb-gc" (Topology.ring 6) 5);
      ("merkle", C_merkle.cases "merkle" (Topology.ring 5) 4);
      ( "edges",
        [ oversharded; seeded_faults_determinism; ops_applied_counted ] );
      ("shard-direct", [ Shard_direct.equivalence; Shard_direct.phases ]);
      ("pool", pool_tests);
      ("dynbuf", dynbuf_tests);
    ]
