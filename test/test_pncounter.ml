(* Unit tests for the positive-negative counter (Appendix C). *)

open Crdt_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let a = Replica_id.of_int 0
let b = Replica_id.of_int 1

let basics =
  [
    Alcotest.test_case "value = increments - decrements" `Quick (fun () ->
        let p = Pncounter.(inc a bottom |> inc a |> dec a |> inc b) in
        check_int "value" 2 (Pncounter.value p));
    Alcotest.test_case "can go negative" `Quick (fun () ->
        let p = Pncounter.(dec ~n:5 a bottom) in
        check_int "value" (-5) (Pncounter.value p));
    Alcotest.test_case "invalid amounts rejected" `Quick (fun () ->
        Alcotest.check_raises "inc 0"
          (Invalid_argument "Pncounter.inc: increment must be >= 1") (fun () ->
            ignore (Pncounter.inc ~n:0 a Pncounter.bottom));
        Alcotest.check_raises "dec 0"
          (Invalid_argument "Pncounter.dec: decrement must be >= 1") (fun () ->
            ignore (Pncounter.dec ~n:0 a Pncounter.bottom)));
  ]

let convergence =
  [
    Alcotest.test_case "concurrent inc/dec converge" `Quick (fun () ->
        let base = Pncounter.inc ~n:2 a Pncounter.bottom in
        let at_a = Pncounter.dec a base in
        let at_b = Pncounter.inc ~n:3 b base in
        let m1 = Pncounter.join at_a at_b in
        let m2 = Pncounter.join at_b at_a in
        check "commutes" true (Pncounter.equal m1 m2);
        check_int "value" 4 (Pncounter.value m1));
    Alcotest.test_case "join never loses increments or decrements" `Quick
      (fun () ->
        let p1 = Pncounter.of_list [ (a, (5, 2)) ] in
        let p2 = Pncounter.of_list [ (a, (3, 4)) ] in
        let j = Pncounter.join p1 p2 in
        check "entry max-joined" true
          (Pncounter.equal j (Pncounter.of_list [ (a, (5, 4)) ])));
  ]

let delta_tests =
  [
    Alcotest.test_case "incδ carries only the inc component" `Quick (fun () ->
        let p = Pncounter.of_list [ (a, (2, 3)) ] in
        let d = Pncounter.delta_mutate (Pncounter.Inc 1) a p in
        check "delta" true (Pncounter.equal d (Pncounter.of_list [ (a, (3, 0)) ])));
    Alcotest.test_case "decδ carries only the dec component" `Quick (fun () ->
        let p = Pncounter.of_list [ (a, (2, 3)) ] in
        let d = Pncounter.delta_mutate (Pncounter.Dec 2) a p in
        check "delta" true
          (Pncounter.equal d (Pncounter.of_list [ (a, (0, 5)) ])));
    Alcotest.test_case "m(x) = x ⊔ mδ(x)" `Quick (fun () ->
        let p = Pncounter.of_list [ (a, (2, 3)); (b, (5, 5)) ] in
        List.iter
          (fun op ->
            check "contract" true
              (Pncounter.equal
                 (Pncounter.mutate op b p)
                 (Pncounter.join p (Pncounter.delta_mutate op b p))))
          [ Pncounter.Inc 1; Pncounter.Dec 1; Pncounter.Inc 7 ]);
  ]

let () =
  Alcotest.run "pncounter"
    [
      ("basics", basics);
      ("convergence", convergence);
      ("deltas", delta_tests);
    ]
