(* The adversity layer's contract, protocol × fault × topology:

   - structurally invalid fault plans are rejected up front;
   - plans demanding an undeclared fault class are rejected up front
     (the former behaviour was a silently diverged run);
   - every protocol declaring tolerance for a class actually converges
     under it: partition-heal, crash–restart, per-link delay, loss, and
     a combined storm — on mesh and tree topologies, with the final
     state carrying exactly the operations that were performed;
   - the crash/recover split preserves the durable CRDT state for every
     protocol;
   - fault accounting is exact: dropped/held/partitioned counters, the
     delivered-vs-dropped balance under a fixed seed, and the satellite
     fix that dropped messages no longer inflate the delivered tallies;
   - the whole layer is bit-identical across engine domain counts. *)

open Crdt_core
open Crdt_sim
module Workload = Crdt_engine.Workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module Si = Gset.Of_int

module type P_int =
  Crdt_proto.Protocol_intf.PROTOCOL with type crdt = Si.t and type op = int

module State = Crdt_proto.State_sync.Make (Si)
module Classic = Crdt_proto.Delta_sync.Make (Si) (Crdt_proto.Delta_sync.Classic_config)
module BpRr = Crdt_proto.Delta_sync.Make (Si) (Crdt_proto.Delta_sync.Bp_rr_config)
module Ack = Crdt_proto.Delta_sync.Make (Si) (Crdt_proto.Delta_sync.Ack_config)
module Sb = Crdt_proto.Scuttlebutt.Make (Si) (Crdt_proto.Scuttlebutt.No_gc_config)
module SbGc = Crdt_proto.Scuttlebutt.Make (Si) (Crdt_proto.Scuttlebutt.Gc_config)
module Op = Crdt_proto.Op_sync.Make (Si)
module Merkle = Crdt_proto.Merkle_sync.Make (Si) (Crdt_proto.Merkle_sync.Default_config)

module F (P : P_int) = struct
  module R = Runner.Make (P)

  let go ?(quiesce_limit = 64) ?(domains = 1) ~faults ~topology ~rounds () =
    R.run ~faults ~quiesce_limit ~domains ~equal:Si.equal ~topology ~rounds
      ~ops:(fun ~round ~node _ ->
        Workload.gset ~nodes:(Topology.size topology) ~round ~node ())
      ()

  (* Unique-adds workload ⇒ the converged state must hold exactly one
     element per (live node, round) pair. *)
  let converges_to ?quiesce_limit ~faults ~topology ~rounds ~expect_weight name
      =
    let res = go ?quiesce_limit ~faults ~topology ~rounds () in
    check (name ^ ": converged") true res.R.converged;
    check_int (name ^ ": final weight") expect_weight
      (Si.weight res.R.finals.(0));
    res
end

module F_state = F (State)
module F_classic = F (Classic)
module F_bprr = F (BpRr)
module F_ack = F (Ack)
module F_sb = F (Sb)
module F_sbgc = F (SbGc)
module F_op = F (Op)
module F_merkle = F (Merkle)

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* -- plan validation ----------------------------------------------------- *)

let validate_tests =
  let v ?(nodes = 8) ?(rounds = 10) plan () =
    Fault.validate ~nodes ~rounds plan
  in
  let reject name plan =
    Alcotest.test_case name `Quick (fun () ->
        check "rejected" true (raises_invalid (v plan)))
  in
  [
    Alcotest.test_case "the empty plan passes" `Quick (fun () ->
        v Fault.none ());
    reject "drop probability above 1"
      { Fault.none with Fault.drop = 1.5 };
    reject "negative duplicate probability"
      { Fault.none with Fault.duplicate = -0.1 };
    reject "partition with no islands"
      { Fault.none with Fault.partitions = [ { Fault.from_round = 0; heal_round = 2; islands = [] } ] };
    reject "partition with an empty window"
      { Fault.none with Fault.partitions = [ { Fault.from_round = 3; heal_round = 3; islands = [ [ 0 ] ] } ] };
    reject "partition healing after the schedule ends"
      { Fault.none with Fault.partitions = [ { Fault.from_round = 0; heal_round = 99; islands = [ [ 0 ] ] } ] };
    reject "node listed in two islands"
      { Fault.none with Fault.partitions = [ { Fault.from_round = 0; heal_round = 2; islands = [ [ 0; 1 ]; [ 1; 2 ] ] } ] };
    reject "island node out of range"
      { Fault.none with Fault.partitions = [ { Fault.from_round = 0; heal_round = 2; islands = [ [ 42 ] ] } ] };
    reject "delay of zero rounds"
      { Fault.none with Fault.delays = [ { Fault.src = 0; dst = 1; hold = 0 } ] };
    reject "crash that never recovers in-schedule"
      { Fault.none with Fault.crashes = [ { Fault.victim = 0; crash_round = 2; recover_round = 99 } ] };
    reject "crash window of zero rounds"
      { Fault.none with Fault.crashes = [ { Fault.victim = 0; crash_round = 2; recover_round = 2 } ] };
    reject "overlapping crash windows on one victim"
      { Fault.none with
        Fault.crashes =
          [
            { Fault.victim = 0; crash_round = 1; recover_round = 5 };
            { Fault.victim = 0; crash_round = 3; recover_round = 7 };
          ];
      };
    Alcotest.test_case "smart constructors validate eagerly" `Quick (fun () ->
        check "bad crash" true
          (raises_invalid (fun () ->
               Fault.crash ~victim:0 ~crash_round:5 ~recover_round:2));
        check "bad delay" true
          (raises_invalid (fun () -> Fault.delay ~src:0 ~dst:1 ~hold:(-1)));
        check "bad partition" true
          (raises_invalid (fun () ->
               Fault.partition ~from_round:2 ~heal_round:1 [ [ 0 ] ])));
  ]

(* -- capability gate ------------------------------------------------------ *)

let capability_tests =
  let drop_plan = { Fault.none with Fault.drop = 0.2 } in
  let part_plan =
    { Fault.none with
      Fault.partitions = [ Fault.partition ~from_round:0 ~heal_round:2 [ [ 0 ] ] ];
    }
  in
  let crash_plan =
    { Fault.none with
      Fault.crashes = [ Fault.crash ~victim:0 ~crash_round:1 ~recover_round:2 ];
    }
  in
  [
    Alcotest.test_case "declared capability records" `Quick (fun () ->
        let open Crdt_proto.Protocol_intf in
        let all c = c.tolerates_drop && c.tolerates_partition
                    && c.tolerates_delay && c.tolerates_crash in
        check "state tolerates everything" true (all State.capabilities);
        check "merkle tolerates everything" true (all Merkle.capabilities);
        check "scuttlebutt tolerates everything" true (all Sb.capabilities);
        check "ack-mode delta tolerates everything" true (all Ack.capabilities);
        check "plain bp+rr survives neither loss nor cuts" true
          ((not BpRr.capabilities.tolerates_drop)
          && (not BpRr.capabilities.tolerates_partition)
          && BpRr.capabilities.tolerates_delay
          && BpRr.capabilities.tolerates_crash);
        check "op-based only survives delay" true
          ((not Op.capabilities.tolerates_drop)
          && (not Op.capabilities.tolerates_partition)
          && Op.capabilities.tolerates_delay
          && not Op.capabilities.tolerates_crash));
    Alcotest.test_case "runner rejects drop for plain bp+rr" `Quick (fun () ->
        check "rejected" true
          (raises_invalid (fun () ->
               F_bprr.go ~faults:drop_plan ~topology:(Topology.ring 5)
                 ~rounds:3 ())));
    Alcotest.test_case "runner rejects partitions for op-based" `Quick
      (fun () ->
        check "rejected" true
          (raises_invalid (fun () ->
               F_op.go ~faults:part_plan ~topology:(Topology.ring 5) ~rounds:3
                 ())));
    Alcotest.test_case "runner rejects crash for op-based" `Quick (fun () ->
        check "rejected" true
          (raises_invalid (fun () ->
               F_op.go ~faults:crash_plan ~topology:(Topology.ring 5) ~rounds:3
                 ())));
    Alcotest.test_case "harness masks unsupported protocols by name" `Quick
      (fun () ->
        let module H = Harness.Make (Si) in
        let sel, excluded =
          H.mask_unsupported drop_plan
            { Harness.all_protocols with delta_ack = true }
        in
        check "bp+rr masked" true (not sel.Harness.delta_bp_rr);
        check "op masked" true (not sel.Harness.op_based);
        check "state kept" true sel.Harness.state_based;
        check "ack kept" true sel.Harness.delta_ack;
        check "masked names reported" true
          (List.mem "delta-bp+rr" excluded && List.mem "op-based" excluded);
        let sel', excluded' = H.mask_unsupported Fault.none sel in
        check "no-fault masking is the identity" true
          (sel' = sel && excluded' = []));
  ]

(* -- partition-heal convergence ------------------------------------------ *)

let partition_tests =
  let plan =
    { Fault.none with
      Fault.partitions =
        [ Fault.partition ~from_round:2 ~heal_round:6 [ [ 0; 1; 2 ] ] ];
    }
  in
  let rounds = 10 in
  let mesh = Topology.partial_mesh 8 and tree = Topology.tree 7 in
  let case name topology run =
    Alcotest.test_case
      (Printf.sprintf "%s converges after heal on %s" name
         (Topology.name topology))
      `Quick
      (fun () ->
        run ~faults:plan ~topology ~rounds
          ~expect_weight:(Topology.size topology * rounds))
  in
  [
    case "state-based" mesh (fun ~faults ~topology ~rounds ~expect_weight ->
        ignore
          (F_state.converges_to ~faults ~topology ~rounds ~expect_weight
             "state/mesh"));
    case "state-based" tree (fun ~faults ~topology ~rounds ~expect_weight ->
        ignore
          (F_state.converges_to ~faults ~topology ~rounds ~expect_weight
             "state/tree"));
    case "delta-ack" mesh (fun ~faults ~topology ~rounds ~expect_weight ->
        ignore
          (F_ack.converges_to ~faults ~topology ~rounds ~expect_weight
             "ack/mesh"));
    case "delta-ack" tree (fun ~faults ~topology ~rounds ~expect_weight ->
        ignore
          (F_ack.converges_to ~faults ~topology ~rounds ~expect_weight
             "ack/tree"));
    case "scuttlebutt" mesh (fun ~faults ~topology ~rounds ~expect_weight ->
        ignore
          (F_sb.converges_to ~faults ~topology ~rounds ~expect_weight
             "sb/mesh"));
    case "scuttlebutt-gc" mesh (fun ~faults ~topology ~rounds ~expect_weight ->
        ignore
          (F_sbgc.converges_to ~faults ~topology ~rounds ~expect_weight
             "sb-gc/mesh"));
    case "scuttlebutt-gc" tree (fun ~faults ~topology ~rounds ~expect_weight ->
        ignore
          (F_sbgc.converges_to ~faults ~topology ~rounds ~expect_weight
             "sb-gc/tree"));
    case "merkle" mesh (fun ~faults ~topology ~rounds ~expect_weight ->
        ignore
          (F_merkle.converges_to ~faults ~topology ~rounds ~expect_weight
             "merkle/mesh"));
    Alcotest.test_case "cut messages are counted as partitioned" `Quick
      (fun () ->
        let res =
          F_state.go ~faults:plan ~topology:mesh ~rounds:10 ()
        in
        let s = F_state.R.full_summary res in
        check "partitioned > 0" true (s.Metrics.total_partitioned > 0);
        check "nothing dropped or held" true
          (s.Metrics.total_dropped = 0 && s.Metrics.total_held = 0));
  ]

(* -- crash–restart -------------------------------------------------------- *)

let crash_tests =
  let crash_round = 2 and recover_round = 6 in
  let rounds = 10 in
  let plan =
    { Fault.none with
      Fault.crashes = [ Fault.crash ~victim:3 ~crash_round ~recover_round ];
    }
  in
  let mesh = Topology.partial_mesh 8 in
  (* The victim performs no ops while down: [crash_round, recover_round). *)
  let expect_weight = (8 * rounds) - (recover_round - crash_round) in
  let case name run =
    Alcotest.test_case
      (Printf.sprintf "%s converges after crash–restart" name) `Quick
      (fun () -> ignore (run ()))
  in
  [
    case "state-based" (fun () ->
        F_state.converges_to ~faults:plan ~topology:mesh ~rounds ~expect_weight
          "state");
    case "delta-classic" (fun () ->
        F_classic.converges_to ~faults:plan ~topology:mesh ~rounds
          ~expect_weight "classic");
    case "delta-bp+rr" (fun () ->
        F_bprr.converges_to ~faults:plan ~topology:mesh ~rounds ~expect_weight
          "bp+rr");
    case "delta-bp+rr-ack" (fun () ->
        F_ack.converges_to ~faults:plan ~topology:mesh ~rounds ~expect_weight
          "ack");
    case "scuttlebutt" (fun () ->
        F_sb.converges_to ~faults:plan ~topology:mesh ~rounds ~expect_weight
          "sb");
    case "scuttlebutt-gc" (fun () ->
        F_sbgc.converges_to ~faults:plan ~topology:mesh ~rounds ~expect_weight
          "sb-gc");
    case "merkle" (fun () ->
        F_merkle.converges_to ~faults:plan ~topology:mesh ~rounds
          ~expect_weight "merkle");
    Alcotest.test_case "messages to a crashed node count as dropped" `Quick
      (fun () ->
        let res = F_state.go ~faults:plan ~topology:mesh ~rounds () in
        let s = F_state.R.full_summary res in
        check "dropped > 0" true (s.Metrics.total_dropped > 0));
    Alcotest.test_case "back-to-back crash windows on one victim" `Quick
      (fun () ->
        let plan =
          { Fault.none with
            Fault.crashes =
              [
                Fault.crash ~victim:2 ~crash_round:1 ~recover_round:3;
                Fault.crash ~victim:2 ~crash_round:3 ~recover_round:5;
              ];
          }
        in
        ignore
          (F_state.converges_to ~faults:plan ~topology:mesh ~rounds
             ~expect_weight:((8 * rounds) - 4)
             "double crash"));
  ]

(* -- per-link delay -------------------------------------------------------- *)

let delay_tests =
  let topology = Topology.full_mesh 6 in
  let rounds = 8 in
  let plan =
    { Fault.none with
      Fault.delays =
        [ Fault.delay ~src:0 ~dst:1 ~hold:2; Fault.delay ~src:4 ~dst:2 ~hold:3 ];
    }
  in
  let case name run =
    Alcotest.test_case (Printf.sprintf "%s converges under delay" name) `Quick
      (fun () -> ignore (run ()))
  in
  let expect_weight = 6 * rounds in
  [
    case "state-based" (fun () ->
        F_state.converges_to ~faults:plan ~topology ~rounds ~expect_weight
          "state");
    case "delta-classic" (fun () ->
        F_classic.converges_to ~faults:plan ~topology ~rounds ~expect_weight
          "classic");
    case "delta-bp+rr" (fun () ->
        F_bprr.converges_to ~faults:plan ~topology ~rounds ~expect_weight
          "bp+rr");
    case "op-based" (fun () ->
        F_op.converges_to ~faults:plan ~topology ~rounds ~expect_weight "op");
    case "scuttlebutt" (fun () ->
        F_sb.converges_to ~faults:plan ~topology ~rounds ~expect_weight "sb");
    case "merkle" (fun () ->
        F_merkle.converges_to ~faults:plan ~topology ~rounds ~expect_weight
          "merkle");
    Alcotest.test_case "held messages are counted, then delivered" `Quick
      (fun () ->
        let res = F_state.go ~faults:plan ~topology ~rounds () in
        let s = F_state.R.full_summary res in
        check "held > 0" true (s.Metrics.total_held > 0);
        check "nothing dropped" true (s.Metrics.total_dropped = 0));
  ]

(* -- loss accounting (the metrics-inflation fix) -------------------------- *)

let loss_tests =
  let ring = Topology.ring 5 in
  [
    Alcotest.test_case "total loss delivers nothing and diverges" `Quick
      (fun () ->
        let faults = { Fault.none with Fault.drop = 1.0 } in
        let res =
          F_state.go ~quiesce_limit:4 ~faults ~topology:ring ~rounds:3 ()
        in
        check "not converged" true (not res.F_state.R.converged);
        let s = F_state.R.full_summary res in
        check_int "no message delivered" 0 s.Metrics.total_messages;
        check_int "no payload counted" 0 s.Metrics.total_payload;
        check_int "no metadata bytes counted" 0 s.Metrics.total_metadata_bytes;
        check "everything dropped" true (s.Metrics.total_dropped > 0));
    Alcotest.test_case "delivered + dropped balances the sends (seed 42)"
      `Quick
      (fun () ->
        (* state-based broadcasts to every neighbor each tick, so the
           measured-phase send count is rounds × Σ degree = 4 × 10,
           independent of faults — the drop draw only decides which side
           of the ledger each message lands on. *)
        let rounds = 4 in
        let faults = { Fault.none with Fault.drop = 0.3; seed = 42 } in
        let res = F_state.go ~faults ~topology:ring ~rounds () in
        let s = F_state.R.summary res in
        check_int "delivered + dropped = sent" (rounds * 10)
          (s.Metrics.total_messages + s.Metrics.total_dropped);
        (* Regression pin: these exact totals changed when the metrics
           inflation bug was fixed (messages used to be counted before
           the drop check); any accounting change must show up here. *)
        check_int "delivered (pinned)" 25 s.Metrics.total_messages;
        check_int "dropped (pinned)" 15 s.Metrics.total_dropped);
    Alcotest.test_case "ack-mode delta converges through heavy loss" `Quick
      (fun () ->
        let faults = { Fault.none with Fault.drop = 0.4; seed = 5 } in
        ignore
          (F_ack.converges_to ~faults ~topology:(Topology.partial_mesh 8)
             ~rounds:8 ~expect_weight:(8 * 8) "ack under loss"));
  ]

(* -- combined storm + engine bit-identity --------------------------------- *)

let storm_plan =
  {
    Fault.drop = 0.15;
    duplicate = 0.2;
    shuffle = true;
    seed = 21;
    partitions = [ Fault.partition ~from_round:1 ~heal_round:4 [ [ 0; 1 ] ] ];
    delays = [ Fault.delay ~src:2 ~dst:3 ~hold:2 ];
    crashes = [ Fault.crash ~victim:5 ~crash_round:3 ~recover_round:7 ];
  }

let storm_tests =
  let topology = Topology.partial_mesh 8 in
  let rounds = 12 in
  [
    Alcotest.test_case "ack-mode delta survives the combined storm" `Quick
      (fun () ->
        ignore
          (F_ack.converges_to ~faults:storm_plan ~topology ~rounds
             ~expect_weight:((8 * rounds) - 4)
             "storm"));
    Alcotest.test_case "state-based survives the combined storm" `Quick
      (fun () ->
        ignore
          (F_state.converges_to ~faults:storm_plan ~topology ~rounds
             ~expect_weight:((8 * rounds) - 4)
             "storm"));
    Alcotest.test_case "storm run is bit-identical across domain counts"
      `Quick
      (fun () ->
        let go domains =
          F_ack.go ~domains ~faults:storm_plan ~topology ~rounds ()
        in
        let seq = go 1 in
        List.iter
          (fun domains ->
            let par = go domains in
            let module R = F_ack.R in
            check
              (Printf.sprintf "identical at %d domains" domains)
              true
              (seq.R.converged = par.R.converged
              && Array.for_all2 Si.equal seq.R.finals par.R.finals
              && seq.R.rounds = par.R.rounds
              && seq.R.quiesce_rounds = par.R.quiesce_rounds
              && seq.R.work = par.R.work))
          [ 2; 3 ]);
  ]

(* -- crash/recover state preservation ------------------------------------- *)

let law_tests =
  let law (module P : P_int) name =
    Alcotest.test_case (name ^ ": state survives crash + recover") `Quick
      (fun () ->
        let n = P.init ~id:0 ~neighbors:[ 1; 2 ] ~total:3 in
        let n = List.fold_left P.local_update n [ 7; 11; 13 ] in
        let before = P.state n in
        let crashed = P.crash n in
        check (name ^ ": durable through crash") true
          (Si.equal before (P.state crashed));
        check (name ^ ": durable through recover") true
          (Si.equal before (P.state (P.recover crashed))))
  in
  [
    law (module State) "state-based";
    law (module Classic) "delta-classic";
    law (module BpRr) "delta-bp+rr";
    law (module Ack) "delta-bp+rr-ack";
    law (module Sb) "scuttlebutt";
    law (module SbGc) "scuttlebutt-gc";
    law (module Op) "op-based";
    law (module Merkle) "merkle";
  ]

(* -- pairwise recovery (Partition_sync) ----------------------------------- *)

let pairwise_tests =
  let module P = Crdt_proto.Partition_sync.Make (Si) in
  [
    Alcotest.test_case "recover_crashed reconciles durable state with a peer"
      `Quick
      (fun () ->
        let id = Replica_id.of_int 0 in
        let durable = List.fold_left (fun s e -> Si.add e id s) Si.bottom [ 1; 2 ] in
        let peer =
          List.fold_left (fun s e -> Si.add e id s) Si.bottom [ 2; 3; 4 ]
        in
        let restarted', peer', stats = P.recover_crashed ~durable ~peer in
        let expected = Si.join durable peer in
        check "restarted caught up" true (Si.equal restarted' expected);
        check "peer absorbed durable" true (Si.equal peer' expected);
        check_int "two messages" 2 stats.P.messages);
  ]

let () =
  Alcotest.run "fault matrix"
    [
      ("validation", validate_tests);
      ("capability gate", capability_tests);
      ("partition-heal", partition_tests);
      ("crash-restart", crash_tests);
      ("delay", delay_tests);
      ("loss accounting", loss_tests);
      ("storm", storm_tests);
      ("crash/recover law", law_tests);
      ("pairwise recovery", pairwise_tests);
    ]
