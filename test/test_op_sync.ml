(* Unit tests for the operation-based middleware: causal delivery,
   duplicate suppression, store-and-forward seen-sets, and buffer
   eviction. *)

open Crdt_core
open Crdt_proto

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module S = Gset.Of_string
module P = Op_sync.Make (S)

let basics =
  [
    Alcotest.test_case "local update applies immediately" `Quick (fun () ->
        let n = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let n = P.local_update n "x" in
        check "applied" true (S.mem "x" (P.state n)));
    Alcotest.test_case "tick ships buffered operations once" `Quick (fun () ->
        let n = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let n = P.local_update n "x" in
        let n, msgs = P.tick n in
        check_int "one message" 1 (List.length msgs);
        let _, msgs = P.tick n in
        check "nothing to resend" true (msgs = []));
    Alcotest.test_case "receiver applies the op at its origin's identity"
      `Quick (fun () ->
        let module Pc = Op_sync.Make (Gcounter) in
        let a = Pc.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let b = Pc.init ~id:1 ~neighbors:[ 0 ] ~total:2 in
        let a = Pc.local_update a (Gcounter.Inc 1) in
        let _, msgs = Pc.tick a in
        let b, _ = Pc.handle b ~src:0 (List.assoc 1 msgs) in
        (* entry belongs to replica 0, not to receiver 1. *)
        check_int "origin entry" 1
          (Gcounter.find (Replica_id.of_int 0) (Pc.state b));
        check_int "receiver entry" 0
          (Gcounter.find (Replica_id.of_int 1) (Pc.state b)));
  ]

(* Drive out-of-causal-order delivery by hand: node 0 emits x then y; a
   third node receives y's batch first. *)
let causal_tests =
  [
    Alcotest.test_case "delivery waits for the causal past" `Quick (fun () ->
        let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:3 in
        let c = P.init ~id:2 ~neighbors:[ 0 ] ~total:3 in
        let a = P.local_update a "x" in
        let a, msgs1 = P.tick a in
        let batch1 = List.assoc 1 msgs1 in
        let a = P.local_update a "y" in
        (* Force a resend of everything to a fresh destination by
           tricking tick: node 1 already marked seen, so emit to 1 again
           is empty; instead reuse the tagged batches directly. *)
        let _, msgs2 = P.tick a in
        let batch2 = List.assoc 1 msgs2 in
        (* Deliver the later op first: it must be parked, not applied. *)
        let c, _ = P.handle c ~src:0 batch2 in
        check "y not yet visible" false (S.mem "y" (P.state c));
        (* Now the earlier op arrives; both become visible. *)
        let c, _ = P.handle c ~src:0 batch1 in
        check "x visible" true (S.mem "x" (P.state c));
        check "y visible after its past" true (S.mem "y" (P.state c)));
    Alcotest.test_case "duplicates are delivered exactly once" `Quick
      (fun () ->
        let module Pc = Op_sync.Make (Gcounter) in
        let a = Pc.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let b = Pc.init ~id:1 ~neighbors:[ 0 ] ~total:2 in
        let a = Pc.local_update a (Gcounter.Inc 1) in
        let _, msgs = Pc.tick a in
        let batch = List.assoc 1 msgs in
        let b, _ = Pc.handle b ~src:0 batch in
        let b, _ = Pc.handle b ~src:0 batch in
        let b, _ = Pc.handle b ~src:0 batch in
        check_int "value once" 1 (Gcounter.value (Pc.state b)));
  ]

let forwarding_tests =
  [
    Alcotest.test_case "ops are forwarded to neighbors that haven't seen them"
      `Quick (fun () ->
        (* Line 0-1-2: node 1 forwards node 0's op to node 2. *)
        let b = P.init ~id:1 ~neighbors:[ 0; 2 ] ~total:3 in
        let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:3 in
        let a = P.local_update a "x" in
        let _, msgs = P.tick a in
        let b, _ = P.handle b ~src:0 (List.assoc 1 msgs) in
        let _, msgs = P.tick b in
        check "forwards to 2" true (List.mem_assoc 2 msgs);
        check "does not echo to 0" false (List.mem_assoc 0 msgs));
    Alcotest.test_case "seen-set updates suppress redundant forwards" `Quick
      (fun () ->
        (* Node 1 receives the same op from 0 and from 2; it must forward
           to neither. *)
        let b = P.init ~id:1 ~neighbors:[ 0; 2 ] ~total:3 in
        let a = P.init ~id:0 ~neighbors:[ 1; 2 ] ~total:3 in
        let a = P.local_update a "x" in
        let _, msgs = P.tick a in
        let batch = List.assoc 1 msgs in
        let b, _ = P.handle b ~src:0 batch in
        let b, _ = P.handle b ~src:2 batch in
        let _, msgs = P.tick b in
        check "nothing to forward" true (msgs = []));
    Alcotest.test_case "buffer drains once every neighbor has seen the op"
      `Quick (fun () ->
        let a = P.init ~id:0 ~neighbors:[ 1; 2 ] ~total:3 in
        let a = P.local_update a "x" in
        let before = P.memory_weight a in
        let a, _ = P.tick a in
        (* after shipping to both neighbors the entry is evicted; what
           remains is the CRDT element plus the delivered-ops clock. *)
        check "entry evicted" true (P.memory_weight a < before);
        check_int "crdt + clock entry" 2 (P.memory_weight a));
  ]

let metadata_tests =
  [
    Alcotest.test_case "each op ships with its vector clock" `Quick (fun () ->
        let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let a = P.local_update a "x" in
        let a = P.local_update a "y" in
        let _, msgs = P.tick a in
        let batch = List.assoc 1 msgs in
        check_int "payload = 2 ops" 2 (P.payload_weight batch);
        check "metadata ≥ one vector entry per op" true
          (P.metadata_weight batch >= 2));
  ]

let () =
  Alcotest.run "op_sync"
    [
      ("basics", basics);
      ("causal delivery", causal_tests);
      ("store-and-forward", forwarding_tests);
      ("metadata", metadata_tests);
    ]
