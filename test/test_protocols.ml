(* Protocol-level tests: the Fig. 4 (BP) and Fig. 5 (RR) scenarios driven
   step by step, a convergence matrix across protocols × CRDTs ×
   topologies, transport-fault tolerance, and the transmission ordering
   the evaluation section reports. *)

open Crdt_core
open Crdt_proto
open Crdt_sim
module Workload = Crdt_engine.Workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module S = Gset.Of_string
module Classic = Delta_sync.Make (S) (Delta_sync.Classic_config)
module Bp = Delta_sync.Make (S) (Delta_sync.Bp_config)
module Rr = Delta_sync.Make (S) (Delta_sync.Rr_config)
module BpRr = Delta_sync.Make (S) (Delta_sync.Bp_rr_config)

(* -- Fig. 4: back-propagation of δ-groups ------------------------------ *)

(* Replicas A(0) and B(1).  B adds b and synchronizes; A adds a and
   synchronizes back.  Classic sends {a,b} back to B; BP sends only {a}. *)
module Fig4 (P : Protocol_intf.PROTOCOL with type crdt = S.t and type op = string) =
struct
  let sent_back_to_b () =
    let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
    let b = P.init ~id:1 ~neighbors:[ 0 ] ~total:2 in
    let b = P.local_update b "b" in
    let b, msgs = P.tick b in
    ignore b;
    let to_a = List.assoc 0 msgs in
    let a, _ = P.handle a ~src:1 to_a in
    let a = P.local_update a "a" in
    let _, msgs = P.tick a in
    P.payload_weight (List.assoc 1 msgs)
end

module Fig4_classic = Fig4 (Classic)
module Fig4_bp = Fig4 (Bp)

let fig4_tests =
  [
    Alcotest.test_case "classic back-propagates {a,b} (2 elements)" `Quick
      (fun () -> check_int "payload" 2 (Fig4_classic.sent_back_to_b ()));
    Alcotest.test_case "BP sends only {a} (1 element)" `Quick (fun () ->
        check_int "payload" 1 (Fig4_bp.sent_back_to_b ()));
  ]

(* -- Fig. 5: redundant state in received δ-groups ---------------------- *)

(* Diamond A(0)-B(1)-C(2) with C-D(3).  C already knows {b} when A's
   δ-group {a,b} arrives; what C then forwards to D is {a,b} under
   classic but only {a} under RR. *)
module Fig5 (P : Protocol_intf.PROTOCOL with type crdt = S.t and type op = string) =
struct
  let forwarded_to_d () =
    let a = P.init ~id:0 ~neighbors:[ 1; 2 ] ~total:4 in
    let b = P.init ~id:1 ~neighbors:[ 0; 2 ] ~total:4 in
    let c = P.init ~id:2 ~neighbors:[ 0; 1; 3 ] ~total:4 in
    (* •4: B adds b and pushes to A and C. *)
    let b = P.local_update b "b" in
    let _, msgs = P.tick b in
    let a, _ = P.handle a ~src:1 (List.assoc 0 msgs) in
    let c, _ = P.handle c ~src:1 (List.assoc 2 msgs) in
    (* •5: C pushes {b} onward (to D among others); buffer now clear. *)
    let c, _ = P.tick c in
    (* •6: A adds a and pushes the join of its buffer to C. *)
    let a = P.local_update a "a" in
    let _, msgs = P.tick a in
    let c, _ = P.handle c ~src:0 (List.assoc 2 msgs) in
    (* •7: what does C now forward to D? *)
    let _, msgs = P.tick c in
    match List.assoc_opt 3 msgs with
    | None -> 0
    | Some m -> P.payload_weight m
end

module Fig5_classic = Fig5 (Classic)
module Fig5_rr = Fig5 (Rr)
module Fig5_bprr = Fig5 (BpRr)

let fig5_tests =
  [
    Alcotest.test_case "classic forwards the redundant {a,b}" `Quick (fun () ->
        check_int "payload" 2 (Fig5_classic.forwarded_to_d ()));
    Alcotest.test_case "RR forwards only {a}" `Quick (fun () ->
        check_int "payload" 1 (Fig5_rr.forwarded_to_d ()));
    Alcotest.test_case "BP+RR forwards only {a}" `Quick (fun () ->
        check_int "payload" 1 (Fig5_bprr.forwarded_to_d ()));
  ]

(* -- Convergence matrix ------------------------------------------------- *)

module Si = Gset.Of_int

module Convergence (P : Protocol_intf.PROTOCOL
                      with type crdt = Si.t
                       and type op = int) =
struct
  module R = Runner.Make (P)

  let run topo rounds =
    R.run ~equal:Si.equal ~topology:topo ~rounds
      ~ops:(fun ~round ~node _ ->
        Workload.gset ~nodes:(Topology.size topo) ~round ~node ())
      ()

  let converges_with_expected_elements name topo rounds =
    Alcotest.test_case name `Quick (fun () ->
        let res = run topo rounds in
        check "converged" true res.R.converged;
        let n = Topology.size topo in
        check_int "all elements present" (rounds * n)
          (Si.cardinal res.R.finals.(0)))
end

module C_state = Convergence (State_sync.Make (Si))
module C_classic = Convergence (Delta_sync.Make (Si) (Delta_sync.Classic_config))
module C_bp = Convergence (Delta_sync.Make (Si) (Delta_sync.Bp_config))
module C_rr = Convergence (Delta_sync.Make (Si) (Delta_sync.Rr_config))
module C_bprr = Convergence (Delta_sync.Make (Si) (Delta_sync.Bp_rr_config))
module C_sb = Convergence (Scuttlebutt.Make (Si) (Scuttlebutt.No_gc_config))
module C_sbgc = Convergence (Scuttlebutt.Make (Si) (Scuttlebutt.Gc_config))
module C_op = Convergence (Op_sync.Make (Si))

let convergence_tests =
  let tree = Topology.tree 7
  and mesh = Topology.partial_mesh 8
  and ring = Topology.ring 6
  and line = Topology.line 5 in
  [
    C_state.converges_with_expected_elements "state-based / mesh" mesh 10;
    C_classic.converges_with_expected_elements "classic / mesh" mesh 10;
    C_bp.converges_with_expected_elements "BP / tree" tree 10;
    C_rr.converges_with_expected_elements "RR / ring" ring 10;
    C_bprr.converges_with_expected_elements "BP+RR / mesh" mesh 10;
    C_bprr.converges_with_expected_elements "BP+RR / line" line 10;
    C_sb.converges_with_expected_elements "scuttlebutt / mesh" mesh 10;
    C_sbgc.converges_with_expected_elements "scuttlebutt-GC / tree" tree 10;
    C_op.converges_with_expected_elements "op-based / mesh" mesh 10;
    C_op.converges_with_expected_elements "op-based / line" line 10;
  ]

(* GCounter: every protocol must agree on the same final value. *)
module Counter_conv (P : Protocol_intf.PROTOCOL
                       with type crdt = Gcounter.t
                        and type op = Gcounter.op) =
struct
  module R = Runner.Make (P)

  let final_value topo rounds =
    let res =
      R.run ~equal:Gcounter.equal ~topology:topo ~rounds
        ~ops:(fun ~round ~node _ -> Workload.gcounter ~round ~node ())
        ()
    in
    check "converged" true res.R.converged;
    Gcounter.value res.R.finals.(0)
end

module Cc_state = Counter_conv (State_sync.Make (Gcounter))
module Cc_classic = Counter_conv (Delta_sync.Make (Gcounter) (Delta_sync.Classic_config))
module Cc_bprr = Counter_conv (Delta_sync.Make (Gcounter) (Delta_sync.Bp_rr_config))
module Cc_sb = Counter_conv (Scuttlebutt.Make (Gcounter) (Scuttlebutt.Gc_config))
module Cc_op = Counter_conv (Op_sync.Make (Gcounter))

let counter_agreement =
  [
    Alcotest.test_case "all protocols agree on the counter value" `Quick
      (fun () ->
        let topo = Topology.partial_mesh 6 in
        let expected = 6 * 8 in
        check_int "state" expected (Cc_state.final_value topo 8);
        check_int "classic" expected (Cc_classic.final_value topo 8);
        check_int "bp+rr" expected (Cc_bprr.final_value topo 8);
        check_int "scuttlebutt-gc" expected (Cc_sb.final_value topo 8);
        check_int "op-based" expected (Cc_op.final_value topo 8));
  ]

(* -- Convergence across data types -------------------------------------- *)

module Type_matrix (C : Crdt_core.Lattice_intf.CRDT) = struct
  let case name (ops : round:int -> node:int -> C.t -> C.op list) =
    Alcotest.test_case name `Quick (fun () ->
        let topo = Topology.partial_mesh 6 in
        let go (module P : Protocol_intf.PROTOCOL
                 with type crdt = C.t
                  and type op = C.op) =
          let module R = Runner.Make (P) in
          let res = R.run ~equal:C.equal ~topology:topo ~rounds:8 ~ops () in
          check (name ^ "/" ^ P.protocol_name) true res.R.converged
        in
        go (module State_sync.Make (C));
        go (module Delta_sync.Make (C) (Delta_sync.Classic_config));
        go (module Delta_sync.Make (C) (Delta_sync.Bp_rr_config));
        go (module Scuttlebutt.Make (C) (Scuttlebutt.Gc_config));
        go (module Merkle_sync.Make (C) (Merkle_sync.Default_config)))
end

module Pn_matrix = Type_matrix (Pncounter)
module Gm_matrix = Type_matrix (Gmap.Versioned)
module Aw_matrix = Type_matrix (Aw_set.Of_int)
module Lw_matrix = Type_matrix (Lww_register)

let type_matrix_tests =
  [
    Pn_matrix.case "PNCounter" (fun ~round ~node:_ _ ->
        if round mod 2 = 0 then [ Pncounter.Inc 2 ] else [ Pncounter.Dec 1 ]);
    Gm_matrix.case "GMap" (fun ~round ~node _ ->
        [ Gmap.Versioned.Apply ((round + node) mod 5, Version.Bump) ]);
    Aw_matrix.case "AW OR-Set" (fun ~round ~node state ->
        let add = Aw_set.Of_int.Add ((round * 17) + node) in
        if node = 1 && round mod 2 = 1 then
          match Aw_set.Of_int.value state with
          | v :: _ -> [ add; Aw_set.Of_int.Remove v ]
          | [] -> [ add ]
        else [ add ]);
    Lw_matrix.case "LWW register" (fun ~round ~node _ ->
        [ Lww_register.Write (Printf.sprintf "%d-%d" round node) ]);
  ]

(* -- Transmission ordering (the Fig. 7 claim, in miniature) ------------- *)

module Volume (P : Protocol_intf.PROTOCOL
                 with type crdt = Si.t
                  and type op = int) =
struct
  module R = Runner.Make (P)

  let payload topo rounds =
    let res =
      R.run ~equal:Si.equal ~topology:topo ~rounds
        ~ops:(fun ~round ~node _ ->
          Workload.gset ~nodes:(Topology.size topo) ~round ~node ())
        ()
    in
    (R.summary res).Metrics.total_payload
end

module V_state = Volume (State_sync.Make (Si))
module V_classic = Volume (Delta_sync.Make (Si) (Delta_sync.Classic_config))
module V_bp = Volume (Delta_sync.Make (Si) (Delta_sync.Bp_config))
module V_rr = Volume (Delta_sync.Make (Si) (Delta_sync.Rr_config))
module V_bprr = Volume (Delta_sync.Make (Si) (Delta_sync.Bp_rr_config))

let ordering_tests =
  [
    Alcotest.test_case "mesh: BP+RR ≤ RR ≪ classic ≈ state" `Quick (fun () ->
        let topo = Topology.partial_mesh 15 in
        let state = V_state.payload topo 30
        and classic = V_classic.payload topo 30
        and bp = V_bp.payload topo 30
        and rr = V_rr.payload topo 30
        and bprr = V_bprr.payload topo 30 in
        check "bp+rr ≤ rr" true (bprr <= rr);
        check "rr ≪ classic (≥5x)" true (rr * 5 <= classic);
        check "classic ≈ state (within 10%)" true
          (abs (classic - state) * 10 <= state);
        check "bp barely helps in the mesh" true (classic * 9 <= bp * 10));
    Alcotest.test_case "tree: BP alone attains BP+RR's optimum" `Quick
      (fun () ->
        let topo = Topology.tree 15 in
        check_int "bp = bp+rr" (V_bprr.payload topo 30) (V_bp.payload topo 30));
  ]

(* -- Exact optimality on trees ------------------------------------------- *)

(* On an acyclic topology, BP+RR broadcasts every join-irreducible along
   the unique spanning paths: each element crosses each of the n−1 edges
   exactly once, so the full-run payload is exactly elements × edges.
   This is the strongest form of the paper's "BP suffices on trees"
   claim. *)
module Opt = Runner.Make (Delta_sync.Make (Si) (Delta_sync.Bp_rr_config))
module Opt_bp = Runner.Make (Delta_sync.Make (Si) (Delta_sync.Bp_config))

let tree_optimality_tests =
  let full_payload rounds quiesce =
    let sum arr =
      Array.fold_left (fun acc (r : Metrics.round) -> acc + r.Metrics.payload) 0 arr
    in
    sum rounds + sum quiesce
  in
  [
    Alcotest.test_case "BP+RR tree payload = elements × edges, exactly"
      `Quick (fun () ->
        List.iter
          (fun (n, rounds) ->
            let topo = Topology.tree n in
            let res =
              Opt.run ~equal:Si.equal ~topology:topo ~rounds
                ~ops:(fun ~round ~node _ -> Workload.gset ~nodes:n ~round ~node ())
                ()
            in
            check "converged" true res.Opt.converged;
            check_int
              (Printf.sprintf "n=%d rounds=%d" n rounds)
              (rounds * n * (n - 1))
              (full_payload res.Opt.rounds res.Opt.quiesce_rounds))
          [ (7, 10); (15, 6); (3, 20) ]);
    Alcotest.test_case "BP alone reaches the same optimum on trees" `Quick
      (fun () ->
        let n = 15 and rounds = 6 in
        let topo = Topology.tree n in
        let res =
          Opt_bp.run ~equal:Si.equal ~topology:topo ~rounds
            ~ops:(fun ~round ~node _ -> Workload.gset ~nodes:n ~round ~node ())
            ()
        in
        check_int "exact" (rounds * n * (n - 1))
          (full_payload res.Opt_bp.rounds res.Opt_bp.quiesce_rounds));
    Alcotest.test_case "on a line the bound also holds" `Quick (fun () ->
        let n = 6 and rounds = 8 in
        let topo = Topology.line n in
        let res =
          Opt.run ~equal:Si.equal ~topology:topo ~rounds
            ~ops:(fun ~round ~node _ -> Workload.gset ~nodes:n ~round ~node ())
            ()
        in
        check_int "exact" (rounds * n * (n - 1))
          (full_payload res.Opt.rounds res.Opt.quiesce_rounds));
  ]

(* -- GCounter as the GMap 100% special case ------------------------------ *)

(* Table I remark: "the GCounter benchmark is a particular case of
   GMap K% in which K = 100" with as many keys as nodes.  With the key
   space pinned to the node count, both workloads update one entry per
   node per round, so delta-based transmission must coincide exactly. *)
module V_gmap = Runner.Make
  (Delta_sync.Make (Gmap.Versioned) (Delta_sync.Bp_rr_config))
module V_gcounter = Runner.Make
  (Delta_sync.Make (Gcounter) (Delta_sync.Bp_rr_config))

let special_case_tests =
  [
    Alcotest.test_case "GCounter transmission = GMap 100% with N keys"
      `Quick (fun () ->
        let n = 8 in
        let topo = Topology.partial_mesh n in
        let gmap =
          V_gmap.run ~equal:Gmap.Versioned.equal ~topology:topo ~rounds:12
            ~ops:(fun ~round ~node state ->
              Workload.gmap ~total_keys:n ~k:100 ~nodes:n ~round ~node state)
            ()
        in
        let gcounter =
          V_gcounter.run ~equal:Gcounter.equal ~topology:topo ~rounds:12
            ~ops:(fun ~round ~node state -> Workload.gcounter ~round ~node state)
            ()
        in
        check_int "identical payload"
          (V_gmap.summary gmap).Metrics.total_payload
          (V_gcounter.summary gcounter).Metrics.total_payload);
  ]

(* -- Transport faults --------------------------------------------------- *)

module F_bprr = Runner.Make (Delta_sync.Make (Si) (Delta_sync.Bp_rr_config))
module F_state = Runner.Make (State_sync.Make (Si))
module F_sb = Runner.Make (Scuttlebutt.Make (Si) (Scuttlebutt.Gc_config))
module F_op = Runner.Make (Op_sync.Make (Si))
module F_ack = Runner.Make (Delta_sync.Make (Si) (Delta_sync.Ack_config))

let gset_ops topo ~round ~node _ =
  Workload.gset ~nodes:(Topology.size topo) ~round ~node ()

let fault_tests =
  [
    Alcotest.test_case "BP+RR survives duplication and reordering" `Quick
      (fun () ->
        let topo = Topology.partial_mesh 8 in
        let faults =
          {
            F_bprr.no_faults with
            duplicate = 0.3;
            shuffle = true;
            seed = 11;
          }
        in
        let res =
          F_bprr.run ~faults ~equal:Si.equal ~topology:topo ~rounds:10
            ~ops:(gset_ops topo) ()
        in
        check "converged" true res.F_bprr.converged;
        check_int "elements" 80 (Si.cardinal res.F_bprr.finals.(0)));
    Alcotest.test_case "scuttlebutt survives duplication and reordering"
      `Quick (fun () ->
        let topo = Topology.ring 6 in
        let faults =
          {
            F_sb.no_faults with
            duplicate = 0.3;
            shuffle = true;
            seed = 12;
          }
        in
        let res =
          F_sb.run ~faults ~equal:Si.equal ~topology:topo ~rounds:10
            ~ops:(gset_ops topo) ()
        in
        check "converged" true res.F_sb.converged);
    Alcotest.test_case "op-based survives duplication and reordering" `Quick
      (fun () ->
        let topo = Topology.partial_mesh 6 in
        let faults =
          {
            F_op.no_faults with
            duplicate = 0.25;
            shuffle = true;
            seed = 13;
          }
        in
        let res =
          F_op.run ~faults ~equal:Si.equal ~topology:topo ~rounds:10
            ~ops:(gset_ops topo) ()
        in
        check "converged" true res.F_op.converged;
        check_int "elements" 60 (Si.cardinal res.F_op.finals.(0)));
    Alcotest.test_case "state-based tolerates message loss" `Quick (fun () ->
        let topo = Topology.partial_mesh 6 in
        let faults =
          { F_state.no_faults with drop = 0.3; seed = 14 }
        in
        let res =
          F_state.run ~faults ~equal:Si.equal ~topology:topo ~rounds:10
            ~ops:(gset_ops topo) ()
        in
        check "converged" true res.F_state.converged);
    Alcotest.test_case "scuttlebutt tolerates message loss (pull-based)"
      `Quick (fun () ->
        let topo = Topology.ring 6 in
        let faults =
          { F_sb.no_faults with drop = 0.25; seed = 21 }
        in
        let res =
          F_sb.run ~faults ~equal:Si.equal ~topology:topo ~rounds:10
            ~ops:(gset_ops topo) ()
        in
        check "converged" true res.F_sb.converged);
    Alcotest.test_case "merkle tolerates message loss (digest-driven)"
      `Quick (fun () ->
        let module Fm =
          Runner.Make (Merkle_sync.Make (Si) (Merkle_sync.Default_config)) in
        let topo = Topology.ring 6 in
        let faults =
          { Fm.no_faults with drop = 0.25; seed = 22 }
        in
        let res =
          Fm.run ~faults ~equal:Si.equal ~topology:topo ~rounds:10
            ~ops:(gset_ops topo) ()
        in
        check "converged" true res.Fm.converged);
    Alcotest.test_case "ack-mode delta tolerates message loss (footnote)"
      `Quick (fun () ->
        let topo = Topology.partial_mesh 6 in
        let faults =
          { F_ack.no_faults with drop = 0.3; seed = 15 }
        in
        let res =
          F_ack.run ~faults ~equal:Si.equal ~topology:topo ~rounds:10
            ~ops:(gset_ops topo) ()
        in
        check "converged" true res.F_ack.converged;
        check_int "elements" 60 (Si.cardinal res.F_ack.finals.(0)));
  ]

(* -- Memory accounting -------------------------------------------------- *)

let memory_tests =
  [
    Alcotest.test_case "state-based stores no metadata (Fig. 10 baseline)"
      `Quick (fun () ->
        let module P = State_sync.Make (Si) in
        let n = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let n = P.local_update n 42 in
        check_int "memory = crdt only" 1 (P.memory_weight n);
        check_int "no metadata" 0 (P.metadata_memory_bytes n));
    Alcotest.test_case "delta buffers count toward memory until flushed"
      `Quick (fun () ->
        let module P = Delta_sync.Make (Si) (Delta_sync.Bp_rr_config) in
        let n = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let n = P.local_update n 1 in
        let n = P.local_update n 2 in
        (* state weight 2 + buffered deltas weight 2 *)
        check_int "with buffer" 4 (P.memory_weight n);
        let n, _ = P.tick n in
        check_int "after flush" 2 (P.memory_weight n));
  ]

let () =
  Alcotest.run "protocols"
    [
      ("Fig. 4 (BP)", fig4_tests);
      ("Fig. 5 (RR)", fig5_tests);
      ("convergence", convergence_tests);
      ("data-type matrix", type_matrix_tests);
      ("cross-protocol agreement", counter_agreement);
      ("transmission ordering", ordering_tests);
      ("exact tree optimality", tree_optimality_tests);
      ("GCounter = GMap 100% (Table I)", special_case_tests);
      ("transport faults", fault_tests);
      ("memory accounting", memory_tests);
    ]
