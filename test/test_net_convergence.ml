(* End-to-end convergence over real sockets.

   Spawns one `crdtsync serve` process per replica (the lib/net
   event-loop runtime), fully meshed over unix-domain sockets in a
   private temp directory, running delta BP+RR.  Each replica applies
   its deterministic per-tick operations, synchronizes, and on mutual
   Done writes its hex-encoded final state (canonical lib/wire
   encoding) to a file.  The test asserts every replica wrote the
   byte-identical encoding, that it decodes, and that the decoded state
   has the weight the workload predicts.

   This is the wire stack exercised for real: codecs framing actual
   socket traffic, partial reads reassembled by the frame feed, and the
   Done handshake terminating the processes.

   On top of plain convergence, two engine-level properties are pinned
   here: Scuttlebutt — a protocol that never goes silent on its own —
   terminates over sockets via the dirty-based quiescence handshake,
   and a `--lockstep` cluster reports exactly the wire bytes the
   in-process simulator predicts for the same seeded workload (the
   sim-vs-socket cross-check: both drivers run the identical registry
   workload, so their byte accounting must agree to the byte). *)

open Crdt_core
module Codec = Crdt_wire.Codec
module Registry = Crdt_engine.Registry

let crdtsync () =
  let candidates =
    [
      "../bin/crdtsync.exe";
      Filename.concat (Filename.dirname Sys.executable_name)
        "../bin/crdtsync.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail "crdtsync.exe not found; build bin/ first"

let temp_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go k =
    let d =
      Filename.concat base
        (Printf.sprintf "crdtsync-net-%d-%d" (Unix.getpid ()) k)
    in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (k + 1)
  in
  go 0

let rm_rf dir =
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let of_hex s =
  if String.length s mod 2 <> 0 then Alcotest.fail "odd-length hex state";
  String.init
    (String.length s / 2)
    (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let read_hex_line path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input_line ic)

let status_to_string = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n

(* Reap every replica, killing the cluster if it outlives [timeout_s]
   (a hung handshake must fail the test, not hang dune runtest). *)
let wait_all ~timeout_s pids =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let pending = ref pids in
  let failed = ref [] in
  while !pending <> [] && Unix.gettimeofday () < deadline do
    pending :=
      List.filter
        (fun pid ->
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> true
          | _, Unix.WEXITED 0 -> false
          | _, st ->
              failed := status_to_string st :: !failed;
              false)
        !pending;
    if !pending <> [] then Unix.sleepf 0.02
  done;
  if !pending <> [] then begin
    List.iter
      (fun pid -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
      !pending;
    List.iter (fun pid -> ignore (Unix.waitpid [] pid)) !pending;
    Alcotest.failf "cluster still running after %.0fs; killed" timeout_s
  end;
  match !failed with
  | [] -> ()
  | fs -> Alcotest.failf "replica failure: %s" (String.concat ", " fs)

(* Scrape an integer field out of a one-line JSON object without a JSON
   dependency; the metrics schema is flat enough for a substring scan. *)
let scrape_int ~key json =
  let pat = Printf.sprintf "%S:" key in
  let lp = String.length pat and lj = String.length json in
  let rec find i =
    if i + lp > lj then Alcotest.failf "no %s field in %s" key json
    else if String.sub json i lp = pat then i + lp
    else find (i + 1)
  in
  let start = find 0 in
  let stop = ref start in
  while
    !stop < lj && match json.[!stop] with '0' .. '9' -> true | _ -> false
  do
    incr stop
  done;
  if !stop = start then Alcotest.failf "non-numeric %s in %s" key json;
  int_of_string (String.sub json start (!stop - start))

(* Run an [n]-replica full mesh of `crdtsync serve` processes on [crdt]
   under [protocol]; returns each replica's raw encoded final state and,
   when [metrics] is set, the cluster's total wire bytes as reported by
   `--metrics-out`. *)
let run_cluster ?(protocol = "delta-bp+rr") ?(lockstep = false)
    ?(metrics = false) ?(no_batch = false) ?(domains = 1) ?evloop ?fanout_min
    ~crdt ~n ~ops () =
  let exe = crdtsync () in
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sock i = Filename.concat dir (Printf.sprintf "n%d.sock" i) in
  let state i = Filename.concat dir (Printf.sprintf "state%d.hex" i) in
  let metrics_file i = Filename.concat dir (Printf.sprintf "m%d.json" i) in
  let ids = List.init n Fun.id in
  let pids =
    List.map
      (fun i ->
        let peers =
          List.concat_map
            (fun j ->
              if j = i then []
              else [ "--peer"; Printf.sprintf "%d=unix:%s" j (sock j) ])
            ids
        in
        let argv =
          [
            exe; "serve";
            "--id"; string_of_int i;
            "--listen"; "unix:" ^ sock i;
            "--crdt"; crdt;
            "--protocol"; protocol;
            "--ops"; string_of_int ops;
            "--tick-ms"; "10";
            "--max-ticks"; "3000";
            "--state-out"; state i;
          ]
          @ (if lockstep then [ "--lockstep" ] else [])
          @ (if no_batch then [ "--no-batch" ] else [])
          @ (if metrics then [ "--metrics-out"; metrics_file i ] else [])
          @ (if domains = 1 then [] else [ "--domains"; string_of_int domains ])
          @ (match evloop with
            | None -> []
            | Some b -> [ "--evloop"; b ])
          @ (match fanout_min with
            | None -> []
            | Some f -> [ "--fanout-min"; string_of_int f ])
          @ peers
        in
        let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
        let pid =
          Unix.create_process exe (Array.of_list argv) Unix.stdin devnull
            Unix.stderr
        in
        Unix.close devnull;
        pid)
      ids
  in
  wait_all ~timeout_s:60. pids;
  let encodings =
    List.map
      (fun i ->
        let hex = read_hex_line (state i) in
        Alcotest.(check bool)
          (Printf.sprintf "replica %d wrote a state" i)
          true
          (String.length hex > 0);
        of_hex hex)
      ids
  in
  let wire_bytes =
    if not metrics then 0
    else
      List.fold_left
        (fun acc i ->
          acc + scrape_int ~key:"wire_bytes" (read_hex_line (metrics_file i)))
        0 ids
  in
  (encodings, wire_bytes)

let all_identical = function
  | [] | [ _ ] -> true
  | x :: rest -> List.for_all (String.equal x) rest

(* -- kill -9 + restart from --data-dir ----------------------------------- *)

let rec rm_rf_deep dir =
  Array.iter
    (fun f ->
      let p = Filename.concat dir f in
      if Sys.is_directory p then rm_rf_deep p
      else try Sys.remove p with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

(* A real crash: an [n]-replica durable mesh, one replica SIGKILLed as
   soon as its segment log holds bytes, then restarted from the same
   --data-dir.  The restarted process recovers checkpoint ⊔ deltas from
   disk, re-applies its deterministic idempotent ops from tick 0, and
   the recovery exchange plus the survivors' redial loop must win back
   whatever the kill destroyed — the cluster still converges
   byte-identically.  The victim's metrics pin that it genuinely booted
   from disk (recovered segments > 0), so a silently-fresh restart
   cannot pass. *)
let kill_restart_test ~protocol () =
  let n = 3 and ops = 40 and victim = 1 in
  let exe = crdtsync () in
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf_deep dir) @@ fun () ->
  let sock i = Filename.concat dir (Printf.sprintf "n%d.sock" i) in
  let state i = Filename.concat dir (Printf.sprintf "state%d.hex" i) in
  let metrics_file i = Filename.concat dir (Printf.sprintf "m%d.json" i) in
  let data i = Filename.concat dir (Printf.sprintf "data%d" i) in
  let ids = List.init n Fun.id in
  let spawn i =
    let peers =
      List.concat_map
        (fun j ->
          if j = i then []
          else [ "--peer"; Printf.sprintf "%d=unix:%s" j (sock j) ])
        ids
    in
    let argv =
      [
        exe; "serve";
        "--id"; string_of_int i;
        "--listen"; "unix:" ^ sock i;
        "--crdt"; "gset";
        "--protocol"; protocol;
        "--ops"; string_of_int ops;
        "--tick-ms"; "10";
        "--max-ticks"; "3000";
        "--state-out"; state i;
        "--metrics-out"; metrics_file i;
        "--data-dir"; data i;
        "--checkpoint-every"; "8";
        "--fsync"; "never";
      ]
      @ peers
    in
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let pid =
      Unix.create_process exe (Array.of_list argv) Unix.stdin devnull
        Unix.stderr
    in
    Unix.close devnull;
    pid
  in
  let pids = List.map spawn ids in
  (* Kill only once the victim has persisted something, so the restart
     is a real recovery, not a fresh boot. *)
  let log_bytes i =
    let d = data i in
    if not (Sys.file_exists d) then 0
    else
      Array.fold_left
        (fun acc f -> acc + (Unix.stat (Filename.concat d f)).Unix.st_size)
        0 (Sys.readdir d)
  in
  let deadline = Unix.gettimeofday () +. 20. in
  while log_bytes victim = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  if log_bytes victim = 0 then
    Alcotest.fail "victim never persisted anything to its --data-dir";
  let victim_pid = List.nth pids victim in
  Unix.kill victim_pid Sys.sigkill;
  (match Unix.waitpid [] victim_pid with
  | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | _, st -> Alcotest.failf "victim did not die of SIGKILL: %s"
               (status_to_string st));
  let restarted = spawn victim in
  let survivors = List.filteri (fun i _ -> i <> victim) pids in
  wait_all ~timeout_s:60. (restarted :: survivors);
  let encodings = List.map (fun i -> of_hex (read_hex_line (state i))) ids in
  Alcotest.(check bool)
    "all replicas (including the restarted one) encode byte-identically" true
    (all_identical encodings);
  (match Codec.decode_string Gset.Of_int.codec (List.hd encodings) with
  | Error e -> Alcotest.failf "state decode: %s" (Codec.error_to_string e)
  | Ok s ->
      Alcotest.(check int) "no element lost across the kill" (n * ops)
        (Gset.Of_int.weight s));
  let victim_metrics = read_hex_line (metrics_file victim) in
  Alcotest.(check bool) "victim booted from a non-empty segment log" true
    (scrape_int ~key:"segments" victim_metrics > 0)

let gset_test () =
  let n = 4 and ops = 10 in
  let encodings, _ = run_cluster ~crdt:"gset" ~n ~ops () in
  Alcotest.(check bool)
    "all replicas encode byte-identically" true (all_identical encodings);
  match Codec.decode_string Gset.Of_int.codec (List.hd encodings) with
  | Error e -> Alcotest.failf "state decode: %s" (Codec.error_to_string e)
  | Ok s ->
      (* Per-tick elements are disjoint across replicas (id*1e6 + tick),
         so the converged set has exactly n*ops elements. *)
      Alcotest.(check int) "cardinal = replicas * ops" (n * ops)
        (Gset.Of_int.weight s)

let gmap_test () =
  let n = 3 and ops = 10 in
  let encodings, _ = run_cluster ~crdt:"gmap" ~n ~ops () in
  Alcotest.(check bool)
    "all replicas encode byte-identically" true (all_identical encodings);
  match Codec.decode_string Gmap.Versioned.codec (List.hd encodings) with
  | Error e -> Alcotest.failf "state decode: %s" (Codec.error_to_string e)
  | Ok m ->
      (* Every replica bumps key (tick mod 50) once, so keys 0..ops-1
         are populated and the joined version on each is 1. *)
      Alcotest.(check int) "one live key per op tick" ops
        (Gmap.Versioned.weight m)

(* Scuttlebutt gossips digests forever when left alone — before the
   dirty-based quiescence handshake, a serve cluster running it would
   spin until --max-ticks.  Its convergence over real sockets is the
   evidence that serve now accepts every registered protocol. *)
let scuttlebutt_test () =
  let n = 3 and ops = 8 in
  let encodings, _ =
    run_cluster ~protocol:"scuttlebutt" ~crdt:"gset" ~n ~ops ()
  in
  Alcotest.(check bool)
    "all replicas encode byte-identically" true (all_identical encodings);
  match Codec.decode_string Gset.Of_int.codec (List.hd encodings) with
  | Error e -> Alcotest.failf "state decode: %s" (Codec.error_to_string e)
  | Ok s ->
      Alcotest.(check int) "cardinal = replicas * ops" (n * ops)
        (Gset.Of_int.weight s)

(* The simulator's prediction for the serve workload: same registry
   workload, same protocol, full mesh, exact byte accounting. *)
let sim_wire_bytes ~crdt ~protocol ~n ~ops =
  let module S = (val Registry.find_crdt crdt) in
  let module P =
    (val Registry.instantiate
           (Registry.find_protocol protocol)
           (module S.C : Crdt_proto.Protocol_intf.CRDT
             with type t = S.C.t
              and type op = S.C.op))
  in
  let module R = Crdt_sim.Runner.Make (P) in
  let res =
    R.run ~bytes:Crdt_sim.Metrics.Exact ~equal:S.C.equal
      ~topology:(Crdt_sim.Topology.full_mesh n)
      ~rounds:ops
      ~ops:(fun ~round ~node state -> S.serve_ops ~id:node ~tick:round state)
      ()
  in
  Alcotest.(check bool) "simulator converged" true res.R.converged;
  (R.full_summary res).Crdt_sim.Metrics.total_wire_bytes

(* The headline engine claim: a --lockstep socket cluster and the
   in-process simulator running the same seeded workload account the
   same wire traffic, to the byte.  Any divergence in what the shared
   driver ships or how the trace layer counts it fails this test.
   Running it both batched (the default) and with --no-batch pins the
   coalescing invariant: batching changes write(2) counts, never wire
   bytes, so both modes must land on the simulator's exact total. *)
let cross_check ?(protocol = "delta-bp+rr") ?no_batch ~crdt ~n ~ops () =
  let encodings, socket_bytes =
    run_cluster ~protocol ~lockstep:true ~metrics:true ?no_batch ~crdt ~n ~ops
      ()
  in
  Alcotest.(check bool)
    "all replicas encode byte-identically" true (all_identical encodings);
  Alcotest.(check bool) "sockets moved bytes" true (socket_bytes > 0);
  let sim_bytes = sim_wire_bytes ~crdt ~protocol ~n ~ops in
  Alcotest.(check int) "simulator and sockets agree on total wire bytes"
    sim_bytes socket_bytes

(* The parallel-engine contract over real sockets: a lockstep cluster at
   any --domains width (codec fan-out forced on with --fanout-min 1)
   must land on byte-identical states and the exact wire-byte total of
   the sequential run — the fan-out may only move encode/decode onto the
   pool, never change what is shipped or when. *)
let serve_domains_equality ?(protocol = "delta-bp+rr") ~crdt ~n ~ops () =
  let run domains =
    run_cluster ~protocol ~lockstep:true ~metrics:true ~domains ~fanout_min:1
      ~crdt ~n ~ops ()
  in
  let base_enc, base_bytes = run 1 in
  Alcotest.(check bool)
    "domains=1 replicas byte-identical" true (all_identical base_enc);
  Alcotest.(check bool) "sockets moved bytes" true (base_bytes > 0);
  List.iter
    (fun domains ->
      let enc, bytes = run domains in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d replicas byte-identical" domains)
        true
        (all_identical enc);
      Alcotest.(check string)
        (Printf.sprintf "domains=%d state equals domains=1" domains)
        (List.hd base_enc) (List.hd enc);
      Alcotest.(check int)
        (Printf.sprintf "domains=%d wire bytes equal domains=1" domains)
        base_bytes bytes)
    [ 2; 4 ]

(* Same contract across event-loop backends: epoll and select drive the
   same runtime, so a lockstep cluster must produce identical states and
   wire bytes under either.  Skipped where epoll is unavailable. *)
let evloop_equality () =
  if not (Crdt_net.Evloop_epoll.available ()) then
    Alcotest.skip ()
  else begin
    let run evloop =
      run_cluster ~lockstep:true ~metrics:true ~evloop ~crdt:"gset" ~n:3
        ~ops:8 ()
    in
    let sel_enc, sel_bytes = run "select" in
    let ep_enc, ep_bytes = run "epoll" in
    Alcotest.(check bool)
      "select replicas byte-identical" true (all_identical sel_enc);
    Alcotest.(check bool)
      "epoll replicas byte-identical" true (all_identical ep_enc);
    Alcotest.(check string) "epoll state equals select" (List.hd sel_enc)
      (List.hd ep_enc);
    Alcotest.(check int) "epoll wire bytes equal select" sel_bytes ep_bytes
  end

let () =
  Alcotest.run "net_convergence"
    [
      ( "serve",
        [
          Alcotest.test_case "4 GSet replicas converge over sockets" `Quick
            gset_test;
          Alcotest.test_case "3 GMap replicas converge over sockets" `Quick
            gmap_test;
          Alcotest.test_case "3 Scuttlebutt replicas converge over sockets"
            `Quick scuttlebutt_test;
          Alcotest.test_case "4 GSet replicas converge with --no-batch" `Quick
            (fun () ->
              let encodings, _ =
                run_cluster ~no_batch:true ~crdt:"gset" ~n:4 ~ops:10 ()
              in
              Alcotest.(check bool)
                "all replicas encode byte-identically" true
                (all_identical encodings));
        ] );
      ( "sim-vs-socket wire bytes",
        [
          Alcotest.test_case "GSet lockstep cluster matches the simulator"
            `Quick
            (cross_check ~crdt:"gset" ~n:3 ~ops:8);
          Alcotest.test_case "GMap lockstep cluster matches the simulator"
            `Quick
            (cross_check ~crdt:"gmap" ~n:3 ~ops:8);
          Alcotest.test_case
            "GSet lockstep --no-batch matches the simulator too" `Quick
            (cross_check ~no_batch:true ~crdt:"gset" ~n:3 ~ops:8);
          (* Conflict-sync broadcasts a digest every tick, so this cell
             additionally pins that the lockstep barrier and the
             simulator's quiesce loop stop at the same round boundary —
             one extra round on either side would show up as n*(n-1)
             stray digest frames. *)
          Alcotest.test_case
            "GSet conflict-sync lockstep matches the simulator" `Quick
            (cross_check ~protocol:"conflict-sync" ~crdt:"gset" ~n:3 ~ops:8);
        ] );
      ( "parallel serve",
        [
          Alcotest.test_case
            "GSet delta-bp+rr lockstep: domains 1/2/4 byte-identical" `Quick
            (serve_domains_equality ~crdt:"gset" ~n:3 ~ops:8);
          Alcotest.test_case
            "GSet conflict-sync lockstep: domains 1/2/4 byte-identical"
            `Quick
            (serve_domains_equality ~protocol:"conflict-sync" ~crdt:"gset"
               ~n:3 ~ops:8);
          Alcotest.test_case "epoll and select move identical bytes" `Quick
            evloop_equality;
        ] );
      ( "kill -9 + restart",
        [
          Alcotest.test_case
            "delta-bp+rr survives SIGKILL + restart from --data-dir" `Quick
            (kill_restart_test ~protocol:"delta-bp+rr");
          Alcotest.test_case
            "conflict-sync survives SIGKILL + restart from --data-dir" `Quick
            (kill_restart_test ~protocol:"conflict-sync");
        ] );
    ]
