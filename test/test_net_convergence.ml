(* End-to-end convergence over real sockets.

   Spawns one `crdtsync serve` process per replica (the lib/net
   event-loop runtime), fully meshed over unix-domain sockets in a
   private temp directory, running delta BP+RR.  Each replica applies
   its deterministic per-tick operations, synchronizes, and on mutual
   Done writes its hex-encoded final state (canonical lib/wire
   encoding) to a file.  The test asserts every replica wrote the
   byte-identical encoding, that it decodes, and that the decoded state
   has the weight the workload predicts.

   This is the wire stack exercised for real: codecs framing actual
   socket traffic, partial reads reassembled by the frame feed, and the
   Done handshake terminating the processes. *)

open Crdt_core
module Codec = Crdt_wire.Codec

let crdtsync () =
  let candidates =
    [
      "../bin/crdtsync.exe";
      Filename.concat (Filename.dirname Sys.executable_name)
        "../bin/crdtsync.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail "crdtsync.exe not found; build bin/ first"

let temp_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go k =
    let d =
      Filename.concat base
        (Printf.sprintf "crdtsync-net-%d-%d" (Unix.getpid ()) k)
    in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (k + 1)
  in
  go 0

let rm_rf dir =
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let of_hex s =
  if String.length s mod 2 <> 0 then Alcotest.fail "odd-length hex state";
  String.init
    (String.length s / 2)
    (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let read_hex_line path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input_line ic)

let status_to_string = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n

(* Reap every replica, killing the cluster if it outlives [timeout_s]
   (a hung handshake must fail the test, not hang dune runtest). *)
let wait_all ~timeout_s pids =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let pending = ref pids in
  let failed = ref [] in
  while !pending <> [] && Unix.gettimeofday () < deadline do
    pending :=
      List.filter
        (fun pid ->
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> true
          | _, Unix.WEXITED 0 -> false
          | _, st ->
              failed := status_to_string st :: !failed;
              false)
        !pending;
    if !pending <> [] then Unix.sleepf 0.02
  done;
  if !pending <> [] then begin
    List.iter
      (fun pid -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
      !pending;
    List.iter (fun pid -> ignore (Unix.waitpid [] pid)) !pending;
    Alcotest.failf "cluster still running after %.0fs; killed" timeout_s
  end;
  match !failed with
  | [] -> ()
  | fs -> Alcotest.failf "replica failure: %s" (String.concat ", " fs)

(* Run an [n]-replica full mesh of `crdtsync serve` processes on [crdt]
   under delta BP+RR and return each replica's raw encoded final state. *)
let run_cluster ~crdt ~n ~ops =
  let exe = crdtsync () in
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sock i = Filename.concat dir (Printf.sprintf "n%d.sock" i) in
  let state i = Filename.concat dir (Printf.sprintf "state%d.hex" i) in
  let ids = List.init n Fun.id in
  let pids =
    List.map
      (fun i ->
        let peers =
          List.concat_map
            (fun j ->
              if j = i then []
              else [ "--peer"; Printf.sprintf "%d=unix:%s" j (sock j) ])
            ids
        in
        let argv =
          [
            exe; "serve";
            "--id"; string_of_int i;
            "--listen"; "unix:" ^ sock i;
            "--crdt"; crdt;
            "--protocol"; "delta-bp+rr";
            "--ops"; string_of_int ops;
            "--tick-ms"; "10";
            "--max-ticks"; "3000";
            "--state-out"; state i;
          ]
          @ peers
        in
        let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
        let pid =
          Unix.create_process exe (Array.of_list argv) Unix.stdin devnull
            Unix.stderr
        in
        Unix.close devnull;
        pid)
      ids
  in
  wait_all ~timeout_s:60. pids;
  List.map
    (fun i ->
      let hex = read_hex_line (state i) in
      Alcotest.(check bool)
        (Printf.sprintf "replica %d wrote a state" i)
        true
        (String.length hex > 0);
      of_hex hex)
    ids

let all_identical = function
  | [] | [ _ ] -> true
  | x :: rest -> List.for_all (String.equal x) rest

let gset_test () =
  let n = 4 and ops = 10 in
  let encodings = run_cluster ~crdt:"gset" ~n ~ops in
  Alcotest.(check bool)
    "all replicas encode byte-identically" true (all_identical encodings);
  match Codec.decode_string Gset.Of_int.codec (List.hd encodings) with
  | Error e -> Alcotest.failf "state decode: %s" (Codec.error_to_string e)
  | Ok s ->
      (* Per-tick elements are disjoint across replicas (id*1e6 + tick),
         so the converged set has exactly n*ops elements. *)
      Alcotest.(check int) "cardinal = replicas * ops" (n * ops)
        (Gset.Of_int.weight s)

let gmap_test () =
  let n = 3 and ops = 10 in
  let encodings = run_cluster ~crdt:"gmap" ~n ~ops in
  Alcotest.(check bool)
    "all replicas encode byte-identically" true (all_identical encodings);
  match Codec.decode_string Gmap.Versioned.codec (List.hd encodings) with
  | Error e -> Alcotest.failf "state decode: %s" (Codec.error_to_string e)
  | Ok m ->
      (* Every replica bumps key (tick mod 50) once, so keys 0..ops-1
         are populated and the joined version on each is 1. *)
      Alcotest.(check int) "one live key per op tick" ops
        (Gmap.Versioned.weight m)

let () =
  Alcotest.run "net_convergence"
    [
      ( "serve",
        [
          Alcotest.test_case "4 GSet replicas converge over sockets" `Quick
            gset_test;
          Alcotest.test_case "3 GMap replicas converge over sockets" `Quick
            gmap_test;
        ] );
    ]
