(* Unit tests for chain lattices (Chain). *)

open Crdt_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module Mi = Chain.Max_int
module Ms = Chain.Max_string
module B = Chain.Bool_or

let max_int_tests =
  [
    Alcotest.test_case "bottom is 0" `Quick (fun () ->
        check_int "bottom" 0 Mi.bottom;
        check "is_bottom" true (Mi.is_bottom 0));
    Alcotest.test_case "join is max" `Quick (fun () ->
        check_int "join" 7 (Mi.join 3 7);
        check_int "join sym" 7 (Mi.join 7 3);
        check_int "join self" 3 (Mi.join 3 3));
    Alcotest.test_case "leq is <=" `Quick (fun () ->
        check "3<=7" true (Mi.leq 3 7);
        check "7<=3" false (Mi.leq 7 3);
        check "0<=x" true (Mi.leq Mi.bottom 42));
    Alcotest.test_case "weight counts one irreducible" `Quick (fun () ->
        check_int "weight 0" 0 (Mi.weight 0);
        check_int "weight 9" 1 (Mi.weight 9));
    Alcotest.test_case "decompose per Appendix C: ⇓c = {c}" `Quick (fun () ->
        Alcotest.(check (list int)) "non-bottom" [ 5 ] (Mi.decompose 5);
        Alcotest.(check (list int)) "bottom" [] (Mi.decompose 0));
    Alcotest.test_case "byte size is 8" `Quick (fun () ->
        check_int "bytes" 8 (Mi.byte_size 123));
  ]

let max_string_tests =
  [
    Alcotest.test_case "bottom is empty string" `Quick (fun () ->
        Alcotest.(check string) "bottom" "" Ms.bottom);
    Alcotest.test_case "join is lexicographic max" `Quick (fun () ->
        Alcotest.(check string) "join" "b" (Ms.join "a" "b");
        Alcotest.(check string) "prefix" "ab" (Ms.join "ab" "a"));
    Alcotest.test_case "byte size is length" `Quick (fun () ->
        check_int "bytes" 5 (Ms.byte_size "hello"));
  ]

let bool_tests =
  [
    Alcotest.test_case "join is or" `Quick (fun () ->
        check "f|t" true (B.join false true);
        check "f|f" false (B.join false false));
    Alcotest.test_case "two-element chain order" `Quick (fun () ->
        check "f<=t" true (B.leq false true);
        check "t<=f" false (B.leq true false));
    Alcotest.test_case "decompose" `Quick (fun () ->
        Alcotest.(check (list bool)) "true" [ true ] (B.decompose true);
        Alcotest.(check (list bool)) "false" [] (B.decompose false));
  ]

(* Make_max over a custom carrier. *)
module Level = Chain.Make_max (struct
  type t = char

  let compare = Char.compare
  let bottom = 'a'
  let byte_size _ = 1

  let codec =
    Crdt_wire.Codec.conv Char.code Char.chr Crdt_wire.Codec.u8

  let pp ppf = Format.fprintf ppf "%c"
end)

let custom_tests =
  [
    Alcotest.test_case "functor over chars" `Quick (fun () ->
        Alcotest.(check char) "join" 'z' (Level.join 'q' 'z');
        check "leq" true (Level.leq 'a' 'q');
        check "bottom" true (Level.is_bottom 'a');
        check_int "weight" 1 (Level.weight 'q'));
  ]

let () =
  Alcotest.run "chain"
    [
      ("Max_int", max_int_tests);
      ("Max_string", max_string_tests);
      ("Bool_or", bool_tests);
      ("Make_max", custom_tests);
    ]
