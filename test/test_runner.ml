(* Tests for the simulation driver (Runner) and the experiment harness
   (Harness): quiescent convergence, per-round accounting, fault
   determinism, protocol selection and ratio baselines. *)

open Crdt_core
open Crdt_sim
module Workload = Crdt_engine.Workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module Si = Gset.Of_int
module P = Crdt_proto.Delta_sync.Make (Si) (Crdt_proto.Delta_sync.Bp_rr_config)
module R = Runner.Make (P)

let unique_ops topo ~round ~node _ =
  Workload.gset ~nodes:(Topology.size topo) ~round ~node ()

let runner_tests =
  [
    Alcotest.test_case "one round record per measured round" `Quick (fun () ->
        let topo = Topology.ring 5 in
        let res =
          R.run ~equal:Si.equal ~topology:topo ~rounds:7 ~ops:(unique_ops topo)
            ()
        in
        check_int "rounds" 7 (Array.length res.R.rounds));
    Alcotest.test_case "quiescent tail converges a slow topology" `Quick
      (fun () ->
        (* A long line needs ~diameter extra rounds after the last op. *)
        let topo = Topology.line 10 in
        let res =
          R.run ~equal:Si.equal ~topology:topo ~rounds:3 ~ops:(unique_ops topo)
            ()
        in
        check "converged" true res.R.converged;
        check "needed extra rounds" true
          (Array.length res.R.quiesce_rounds > 0));
    Alcotest.test_case "quiesce limit bounds the tail" `Quick (fun () ->
        let topo = Topology.line 12 in
        let res =
          R.run ~quiesce_limit:1 ~equal:Si.equal ~topology:topo ~rounds:2
            ~ops:(unique_ops topo) ()
        in
        check "did not converge within 1 round" false res.R.converged;
        check_int "tail bounded" 1 (Array.length res.R.quiesce_rounds));
    Alcotest.test_case "message counts are positive when traffic flows"
      `Quick (fun () ->
        let topo = Topology.ring 4 in
        let res =
          R.run ~equal:Si.equal ~topology:topo ~rounds:2 ~ops:(unique_ops topo)
            ()
        in
        Array.iter
          (fun (r : Metrics.round) ->
            check "messages" true (r.Metrics.messages > 0);
            check "payload" true (r.Metrics.payload > 0))
          res.R.rounds);
    Alcotest.test_case "same seed ⇒ identical faulty runs" `Quick (fun () ->
        let go () =
          let topo = Topology.partial_mesh 6 in
          let faults =
            {
              R.no_faults with
              duplicate = 0.4;
              shuffle = true;
              seed = 123;
            }
          in
          let res =
            R.run ~faults ~equal:Si.equal ~topology:topo ~rounds:6
              ~ops:(unique_ops topo) ()
          in
          (R.summary res).Metrics.total_payload
        in
        check_int "deterministic" (go ()) (go ()));
    Alcotest.test_case "duplication increases delivered traffic" `Quick
      (fun () ->
        (* Duplicated δ-groups are re-handled; with BP+RR they are
           filtered, but messages still count. *)
        let topo = Topology.ring 6 in
        let base =
          R.run ~equal:Si.equal ~topology:topo ~rounds:6 ~ops:(unique_ops topo)
            ()
        in
        let faults =
          {
            R.no_faults with
            duplicate = 0.9;
            seed = 5;
          }
        in
        let dup =
          R.run ~faults ~equal:Si.equal ~topology:topo ~rounds:6
            ~ops:(unique_ops topo) ()
        in
        check "both converge" true (base.R.converged && dup.R.converged);
        check "same final state" true
          (Si.equal base.R.finals.(0) dup.R.finals.(0)));
    Alcotest.test_case "ops callback sees the node's current state" `Quick
      (fun () ->
        let topo = Topology.ring 4 in
        let saw_growth = ref false in
        let _ =
          R.run ~equal:Si.equal ~topology:topo ~rounds:5
            ~ops:(fun ~round ~node state ->
              if round > 2 && Si.cardinal state > 0 then saw_growth := true;
              [ (round * 100) + node ])
            ()
        in
        check "state visible to workload" true !saw_growth);
  ]

module H = Harness.Make (Si)

let harness_tests =
  [
    Alcotest.test_case "default selection runs all ten protocols" `Quick
      (fun () ->
        let topo = Topology.ring 5 in
        let outcomes =
          H.run ~topology:topo ~rounds:4 ~ops:(unique_ops topo) ()
        in
        check_int "ten" 10 (List.length outcomes);
        check "all converged" true
          (List.for_all (fun (o : Harness.outcome) -> o.converged) outcomes));
    Alcotest.test_case "delta_only runs classic and bp+rr" `Quick (fun () ->
        let topo = Topology.ring 5 in
        let outcomes =
          H.run ~selection:Harness.delta_only ~topology:topo ~rounds:4
            ~ops:(unique_ops topo) ()
        in
        Alcotest.(check (list string))
          "names"
          [ "delta-classic"; "delta-bp+rr" ]
          (List.map (fun (o : Harness.outcome) -> o.protocol) outcomes));
    Alcotest.test_case "baseline finds bp+rr" `Quick (fun () ->
        let topo = Topology.ring 5 in
        let outcomes =
          H.run ~selection:Harness.delta_only ~topology:topo ~rounds:4
            ~ops:(unique_ops topo) ()
        in
        Alcotest.(check string)
          "baseline" "delta-bp+rr"
          (H.baseline outcomes).protocol);
    Alcotest.test_case "baseline falls back when bp+rr is masked" `Quick
      (fun () ->
        (* Fault runs may exclude plain bp+rr (it does not tolerate
           loss); the baseline then degrades to the first outcome
           instead of crashing the report. *)
        let only =
          {
            Harness.protocol = "state-based";
            summary = Metrics.summarize [||];
            full = Metrics.summarize [||];
            work = 0;
            converged = true;
          }
        in
        Alcotest.(check string)
          "fallback" "state-based"
          (H.baseline [ only ]).protocol;
        check "raises on empty" true
          (try
             ignore (H.baseline []);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "protocol names are stable identifiers" `Quick
      (fun () ->
        let topo = Topology.ring 5 in
        let outcomes =
          H.run ~topology:topo ~rounds:2 ~ops:(unique_ops topo) ()
        in
        Alcotest.(check (list string))
          "order and names"
          [
            "state-based"; "delta-classic"; "delta-bp"; "delta-rr";
            "delta-bp+rr"; "scuttlebutt"; "scuttlebutt-gc"; "op-based";
            "merkle"; "conflict-sync";
          ]
          (List.map (fun (o : Harness.outcome) -> o.protocol) outcomes));
  ]

let () =
  Alcotest.run "runner & harness"
    [ ("runner", runner_tests); ("harness", harness_tests) ]
