(* Tests for the SEC model checker: the schedule codec, checker verdicts
   on a known-good cell and on a deliberately broken protocol, and the
   shrinker's contract (shrunk counterexamples still violate and are
   locally minimal). *)

open Crdt_core
open Crdt_proto
open Crdt_check

let check = Alcotest.(check bool)
let check_string = Alcotest.(check string)

module Good = Delta_sync.Make (Gcounter) (Delta_sync.Bp_rr_config)

(* The archetypal data-loss bug: local operations are silently ignored,
   so every replica agrees on a state strictly below the oracle. *)
module Lossy = struct
  include Good

  let protocol_name = "lossy"
  let local_update n _ = n
end

module Ck = Checker.Make (Gcounter) (Good)
module CkL = Checker.Make (Gcounter) (Lossy)

let ops ~node:_ ~index:_ _ = [ Gcounter.Inc 1 ]
let cfg = { Checker.default_config with replicas = 2; script_len = 2 }

let every_step =
  Schedule.
    [
      Op 0;
      Tick 1;
      Deliver (0, 1);
      Duplicate (1, 0);
      Drop (0, 1);
      Delay (1, 0);
      Release (1, 0);
      Crash 0;
      Recover 0;
    ]

let codec_tests =
  [
    Alcotest.test_case "every constructor roundtrips" `Quick (fun () ->
        let s = Schedule.to_string every_step in
        check_string "text form" "op:0,tick:1,dlv:0:1,dup:1:0,drop:0:1,dly:1:0,rel:1:0,crash:0,rec:0" s;
        check "roundtrip" true (Schedule.of_string s = every_step));
    Alcotest.test_case "empty and whitespace-padded forms" `Quick (fun () ->
        check "empty" true (Schedule.of_string "" = []);
        check "padded" true
          (Schedule.of_string " op:1 , tick:0 " = Schedule.[ Op 1; Tick 0 ]));
    Alcotest.test_case "malformed tokens are named" `Quick (fun () ->
        let rejects s =
          match Schedule.of_string s with
          | _ -> false
          | exception Invalid_argument msg ->
              (* the offending token is quoted in the message. *)
              String.length msg > 0
        in
        check "unknown verb" true (rejects "op:0,frobnicate:1");
        check "missing arg" true (rejects "dlv:0");
        check "non-numeric" true (rejects "crash:x"));
  ]

(* QCheck generator for schedules over a 2-replica group (the checker
   indexes replica arrays directly, so steps must stay in range). *)
let step_gen =
  let open QCheck.Gen in
  let r = int_range 0 1 in
  let link = pair r r in
  oneof
    [
      map (fun i -> Schedule.Op i) r;
      map (fun i -> Schedule.Tick i) r;
      map (fun (s, d) -> Schedule.Deliver (s, d)) link;
      map (fun (s, d) -> Schedule.Duplicate (s, d)) link;
      map (fun (s, d) -> Schedule.Drop (s, d)) link;
      map (fun (s, d) -> Schedule.Delay (s, d)) link;
      map (fun (s, d) -> Schedule.Release (s, d)) link;
      map (fun i -> Schedule.Crash i) r;
      map (fun i -> Schedule.Recover i) r;
    ]

let schedule_arb =
  QCheck.make
    ~print:(fun s -> Schedule.to_string s)
    QCheck.Gen.(list_size (int_range 0 24) step_gen)

let roundtrip_prop =
  QCheck.Test.make ~name:"schedule codec roundtrips" ~count:200 schedule_arb
    (fun s -> Schedule.of_string (Schedule.to_string s) = s)

let remove_nth i l = List.filteri (fun j _ -> j <> i) l

(* The shrinker's published contract: the shrunk schedule reproduces a
   violation of the same invariant class, and removing any single
   remaining step makes that reproduction disappear. *)
let shrink_contract sched v =
  let shrunk = CkL.shrink cfg ~ops sched v in
  let same s =
    match CkL.run cfg ~ops s with
    | Some v' -> v'.Checker.invariant = v.Checker.invariant
    | None -> false
  in
  same shrunk
  && List.length shrunk <= List.length sched
  && List.for_all
       (fun i -> not (same (remove_nth i shrunk)))
       (List.init (List.length shrunk) Fun.id)

let shrinker_prop =
  QCheck.Test.make ~name:"shrunk counterexamples still violate, minimally"
    ~count:60 schedule_arb (fun sched ->
      (* guarantee at least one scripted op so the lossy bug can fire. *)
      let sched = Schedule.Op 0 :: sched in
      match CkL.run cfg ~ops sched with
      | None -> QCheck.assume_fail () (* ops exhausted by skips: impossible *)
      | Some v -> shrink_contract sched v)

let checker_tests =
  [
    Alcotest.test_case "known-good cell passes the exhaustive tier" `Quick
      (fun () ->
        let o = Ck.exhaustive cfg ~ops ~rounds:2 ~max_faults:1 in
        check "no violation" true (o.Checker.failure = None);
        check "explored some schedules" true (o.Checker.explored > 1));
    Alcotest.test_case "known-good cell passes the random tier" `Quick
      (fun () ->
        let o = Ck.random cfg ~ops ~seed:7 ~walks:8 ~walk_len:40 in
        check "no violation" true (o.Checker.failure = None));
    Alcotest.test_case "a lossy protocol is convicted of data-loss" `Quick
      (fun () ->
        match (CkL.exhaustive cfg ~ops ~rounds:2 ~max_faults:1).Checker.failure with
        | None -> Alcotest.fail "lossy protocol passed the checker"
        | Some (_, v) -> check_string "invariant" "data-loss" v.Checker.invariant);
    Alcotest.test_case "replaying a counterexample is deterministic" `Quick
      (fun () ->
        match (CkL.exhaustive cfg ~ops ~rounds:2 ~max_faults:1).Checker.failure with
        | None -> Alcotest.fail "no counterexample to replay"
        | Some (sched, v) ->
            let once = CkL.run cfg ~ops sched in
            check "replay violates" true (once = Some v);
            check "replay is stable" true (CkL.run cfg ~ops sched = once));
    Alcotest.test_case "the lossy counterexample shrinks to a single op" `Quick
      (fun () ->
        match (CkL.exhaustive cfg ~ops ~rounds:2 ~max_faults:1).Checker.failure with
        | None -> Alcotest.fail "no counterexample to shrink"
        | Some (sched, v) ->
            let shrunk = CkL.shrink cfg ~ops sched v in
            check "contract holds" true (shrink_contract sched v);
            (* one ignored op is the entire bug. *)
            Alcotest.(check int)
              "minimal length" 1 (List.length shrunk);
            check "it is an op step" true
              (match shrunk with [ Schedule.Op _ ] -> true | _ -> false));
  ]

let qcheck_tests =
  List.map
    (QCheck_alcotest.to_alcotest ~long:false)
    [ roundtrip_prop; shrinker_prop ]

let () =
  Alcotest.run "check"
    [
      ("schedule-codec", codec_tests);
      ("checker", checker_tests);
      ("properties", qcheck_tests);
    ]
