(* Property suite for the lib/wire codec subsystem (DESIGN.md §6).

   Three layers of guarantees:

   - roundtrip: [decode (encode x) = Ok x] (up to lattice equality) for
     every composition's state codec, and join-of-decoded agrees with
     the in-memory join; protocol messages roundtrip byte-exactly
     (abstract message types are compared by re-encoding);

   - size law: the byte_size estimate (20 B node ids / 8 B ints) stays
     within a documented constant envelope of the exact encoded size:

         exact    <= 2 * estimate + 5 * weight + 16
         estimate <= 36 * exact + 16

   - robustness: decoders are total — strict prefixes and bit-flipped
     inputs return [Error] or a different value but never raise, corrupt
     length prefixes are rejected before allocating, oversized frames
     are refused by the framing layer. *)

open Crdt_core
module Codec = Crdt_wire.Codec
module Frame = Crdt_wire.Frame
module Gen = QCheck.Gen

let qtest = QCheck_alcotest.to_alcotest
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -- generic lattice codec laws ----------------------------------------- *)

module Wire_laws (L : Lattice_intf.LATTICE) (G : sig
  val name : string
  val gen : L.t Gen.t
end) =
struct
  let arb = QCheck.make ~print:(Format.asprintf "%a" L.pp) G.gen
  let encode x = Codec.encode_to_string L.codec x

  let roundtrip =
    QCheck.Test.make ~count:200 ~name:(G.name ^ ": decode (encode x) = Ok x")
      arb (fun x ->
        match Codec.decode_string L.codec (encode x) with
        | Ok y -> L.equal x y && L.compare x y = 0
        | Error _ -> false)

  let join_of_decoded =
    QCheck.Test.make ~count:200
      ~name:(G.name ^ ": join of decoded = join of originals")
      (QCheck.pair arb arb)
      (fun (a, b) ->
        let rt x =
          match Codec.decode_string L.codec (encode x) with
          | Ok y -> y
          | Error _ -> QCheck.Test.fail_report "decode failed"
        in
        L.equal (L.join (rt a) (rt b)) (L.join a b))

  let size_law =
    QCheck.Test.make ~count:200
      ~name:(G.name ^ ": exact size within the estimate envelope") arb
      (fun x ->
        let exact = Codec.encoded_size L.codec x in
        let est = L.byte_size x in
        let w = L.weight x in
        exact <= (2 * est) + (5 * w) + 16 && est <= (36 * exact) + 16)

  let truncation =
    QCheck.Test.make ~count:50
      ~name:(G.name ^ ": strict prefixes never decode") arb (fun x ->
        let s = encode x in
        let ok = ref true in
        for k = 0 to String.length s - 1 do
          match Codec.decode_string L.codec (String.sub s 0 k) with
          | Ok _ -> ok := false
          | Error _ -> ()
        done;
        !ok)

  let bit_flips =
    QCheck.Test.make ~count:25 ~name:(G.name ^ ": bit flips never raise") arb
      (fun x ->
        let s = encode x in
        for i = 0 to String.length s - 1 do
          for bit = 0 to 7 do
            let b = Bytes.of_string s in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
            (* Any result is fine; raising is the only failure. *)
            ignore (Codec.decode_string L.codec (Bytes.to_string b))
          done
        done;
        true)

  let tests =
    List.map qtest [ roundtrip; join_of_decoded; size_law; truncation; bit_flips ]
end

(* -- instances: every composition of the catalogue ---------------------- *)

let replica = Gen.map Replica_id.of_int (Gen.int_bound 4)
let small_string = Gen.map (fun n -> String.make n 'a') (Gen.int_bound 5)
let gset_gen = Gen.map Gset.Of_int.of_list (Gen.small_list (Gen.int_bound 30))

module Max_int_w =
  Wire_laws
    (Chain.Max_int)
    (struct
      let name = "Max_int"

      (* Full-range ints stress the zigzag varint, not just small ones. *)
      let gen =
        Gen.oneof
          [ Gen.int_bound 20; Gen.int; Gen.oneofl [ min_int; max_int; -1; 0 ] ]
    end)

module Max_string_w =
  Wire_laws
    (Chain.Max_string)
    (struct
      let name = "Max_string"
      let gen = Gen.string_size ~gen:Gen.printable (Gen.int_bound 40)
    end)

module Gset_w =
  Wire_laws
    (Gset.Of_int)
    (struct
      let name = "GSet<int>"
      let gen = gset_gen
    end)

module Gcounter_w =
  Wire_laws
    (Gcounter)
    (struct
      let name = "GCounter"

      let gen =
        Gen.map Gcounter.of_list
          (Gen.small_list (Gen.pair replica (Gen.int_range 1 10)))
    end)

module Pncounter_w =
  Wire_laws
    (Pncounter)
    (struct
      let name = "PNCounter"

      let gen =
        Gen.map Pncounter.of_list
          (Gen.small_list
             (Gen.pair replica (Gen.pair (Gen.int_bound 9) (Gen.int_bound 9))))
    end)

module Pair = Product.Make (Chain.Max_int) (Gset.Of_int)

module Product_w =
  Wire_laws
    (Pair)
    (struct
      let name = "Max_int × GSet"
      let gen = Gen.pair (Gen.int_bound 20) gset_gen
    end)

module Lex = Lexico.Make (Chain.Max_int) (Gset.Of_int)

module Lexico_w =
  Wire_laws
    (Lex)
    (struct
      let name = "Max_int ⋉ GSet"
      let gen = Gen.pair (Gen.int_bound 3) gset_gen
    end)

module Sum = Linear_sum.Make (Gset.Of_int) (Gset.Of_int)

module Linear_sum_w =
  Wire_laws
    (Sum)
    (struct
      let name = "GSet ⊕ GSet"

      let gen =
        Gen.oneof
          [
            Gen.map (fun s -> Sum.Left s) gset_gen;
            Gen.map (fun s -> Sum.Right s) gset_gen;
          ]
    end)

module Gmap_w =
  Wire_laws
    (Gmap.Versioned)
    (struct
      let name = "GMap<int,Version>"

      let gen =
        Gen.map Gmap.Versioned.of_list
          (Gen.small_list (Gen.pair (Gen.int_bound 5) (Gen.int_bound 5)))
    end)

module Aw_w =
  Wire_laws
    (Aw_set.Of_int)
    (struct
      let name = "AWSet<int>"

      let gen =
        let op =
          Gen.oneof
            [
              Gen.map (fun e -> Aw_set.Of_int.Add e) (Gen.int_bound 10);
              Gen.map (fun e -> Aw_set.Of_int.Remove e) (Gen.int_bound 10);
            ]
        in
        Gen.map
          (fun ops ->
            List.fold_left
              (fun s (i, op) -> Aw_set.Of_int.mutate op i s)
              Aw_set.Of_int.bottom ops)
          (Gen.small_list (Gen.pair replica op))
    end)

module Mv_w =
  Wire_laws
    (Mv_register)
    (struct
      let name = "MV register"

      let gen =
        Gen.map
          (fun writes ->
            List.fold_left
              (fun (acc, reg) (i, s) ->
                let reg' = Mv_register.mutate (Mv_register.Write s) i reg in
                (Mv_register.join acc reg', reg'))
              (Mv_register.bottom, Mv_register.bottom)
              writes
            |> fst)
          (Gen.small_list (Gen.pair replica small_string))
    end)

module Divisibility = struct
  type t = int

  (* Total on all of int (decoded fuzz inputs may carry 0): 0 divides
     only itself. *)
  let leq a b = if a = 0 then b = 0 else b mod a = 0
  let compare = Int.compare
  let weight _ = 1
  let byte_size _ = 8
  let codec = Codec.int
  let pp ppf = Format.fprintf ppf "%d"
end

module Div_chain = Antichain.Make (Divisibility)

module Antichain_w =
  Wire_laws
    (Div_chain)
    (struct
      let name = "M(divisibility)"
      let gen = Gen.map Div_chain.of_list (Gen.small_list (Gen.int_range 1 60))
    end)

(* Deep composite: the shape of real application state. *)
module Deep_value = Product.Make (Gcounter) (Lex)
module Deep = Map_lattice.Make (Gmap.Int_key) (Deep_value)

module Deep_w =
  Wire_laws
    (Deep)
    (struct
      let name = "Map<int, GCounter × (ℕ ⋉ GSet)>"

      let gen =
        let gcounter =
          Gen.map Gcounter.of_list
            (Gen.small_list (Gen.pair replica (Gen.int_range 1 9)))
        in
        let value =
          Gen.pair gcounter (Gen.pair (Gen.int_bound 3) gset_gen)
        in
        Gen.map Deep.of_list
          (Gen.small_list (Gen.pair (Gen.int_bound 5) value))
    end)

module User_w =
  Wire_laws
    (Crdt_retwis.User_state)
    (struct
      let name = "Retwis user state"

      let gen =
        let op =
          Gen.oneof
            [
              Gen.map (fun u -> Crdt_retwis.User_state.Follow u) (Gen.int_bound 20);
              Gen.map
                (fun (id, c) ->
                  Crdt_retwis.User_state.Post { tweet_id = id; content = c })
                (Gen.pair small_string small_string);
              Gen.map
                (fun (ts, id) ->
                  Crdt_retwis.User_state.Timeline_add
                    { timestamp = ts; tweet_id = id })
                (Gen.pair (Gen.int_bound 100) small_string);
            ]
        in
        Gen.map
          (fun ops ->
            List.fold_left
              (fun s (i, op) -> Crdt_retwis.User_state.mutate op i s)
              Crdt_retwis.User_state.bottom ops)
          (Gen.small_list (Gen.pair replica op))
    end)

(* -- protocol message roundtrips ---------------------------------------- *)

(* Messages are harvested by driving a real 3-replica full-mesh exchange
   (ticks, handler replies, and — when tolerated — a crash/recover to
   provoke the recovery messages), then each message is checked to
   decode and re-encode byte-identically, with message_wire_bytes equal
   to the framed size of the encoding. *)
module Proto_messages
    (P : Crdt_proto.Protocol_intf.PROTOCOL) (W : sig
      val name : string
      val ops_at : round:int -> node:int -> P.op list
    end) =
struct
  let collect () =
    let ids = [ 0; 1; 2 ] in
    let nodes =
      Array.init 3 (fun i ->
          P.init ~id:i ~neighbors:(List.filter (fun j -> j <> i) ids) ~total:3)
    in
    let collected = ref [] in
    let deliver msgs =
      (* Waves of (src, dst, message), replies feeding the next wave. *)
      let wave = ref msgs in
      let steps = ref 0 in
      while !wave <> [] && !steps < 32 do
        incr steps;
        let next = ref [] in
        List.iter
          (fun (src, dst, m) ->
            collected := m :: !collected;
            let n, replies = P.handle nodes.(dst) ~src m in
            nodes.(dst) <- n;
            List.iter (fun (j, r) -> next := (dst, j, r) :: !next) replies)
          !wave;
        wave := List.rev !next
      done
    in
    for round = 0 to 5 do
      if round = 3 && P.capabilities.Crdt_proto.Protocol_intf.tolerates_crash
      then nodes.(1) <- P.recover (P.crash nodes.(1));
      Array.iteri
        (fun i _ ->
          List.iter
            (fun op -> nodes.(i) <- P.local_update nodes.(i) op)
            (W.ops_at ~round ~node:i))
        nodes;
      let outbound = ref [] in
      Array.iteri
        (fun i _ ->
          let n, msgs = P.tick nodes.(i) in
          nodes.(i) <- n;
          List.iter (fun (j, m) -> outbound := (i, j, m) :: !outbound) msgs)
        nodes;
      deliver (List.rev !outbound)
    done;
    !collected

  let test =
    Alcotest.test_case (W.name ^ ": messages roundtrip byte-exactly") `Quick
      (fun () ->
        let msgs = collect () in
        check "harvested some messages" true (msgs <> []);
        List.iter
          (fun m ->
            let enc = Codec.encode_to_string P.message_codec m in
            match Codec.decode_string P.message_codec enc with
            | Error e ->
                Alcotest.failf "%s: decode failed: %s" W.name
                  (Codec.error_to_string e)
            | Ok m' ->
                Alcotest.(check string)
                  "re-encode is byte-identical" enc
                  (Codec.encode_to_string P.message_codec m');
                check_int "message_wire_bytes = framed size"
                  (Frame.framed_size ~payload_len:(String.length enc))
                  (P.message_wire_bytes m))
          msgs)

  (* The batched data path appends into reused buffers instead of
     allocating a string per message; batching must never change a wire
     byte, so [encode_into] (into a buffer that already holds other
     data) and [Frame.encode_value_into] (the staging path Conn uses)
     must agree byte-for-byte with their allocating counterparts on
     every message the protocol actually produces. *)
  let test_into =
    Alcotest.test_case
      (W.name ^ ": encode_into agrees with encode_to_string")
      `Quick
      (fun () ->
        let msgs = collect () in
        check "harvested some messages" true (msgs <> []);
        let buf = Buffer.create 256 in
        let framed = Buffer.create 256 in
        let scratch = Buffer.create 256 in
        List.iter
          (fun m ->
            let enc = Codec.encode_to_string P.message_codec m in
            Buffer.clear buf;
            Buffer.add_string buf "prior-bytes";
            Codec.encode_into buf P.message_codec m;
            Alcotest.(check string)
              "encode_into appends exactly encode_to_string"
              ("prior-bytes" ^ enc) (Buffer.contents buf);
            Buffer.clear framed;
            Frame.encode_value_into ~scratch framed ~kind:1 P.message_codec m;
            Alcotest.(check string)
              "Frame.encode_value_into = Frame.encode"
              (Frame.encode ~kind:1 enc)
              (Buffer.contents framed))
          msgs)
end

open Crdt_proto

let gset_ops ~round ~node = [ (round * 100) + node ]

module Msg_state =
  Proto_messages
    (State_sync.Make (Gset.Of_int))
    (struct
      let name = "state-based/GSet"
      let ops_at = gset_ops
    end)

module Msg_bp_rr =
  Proto_messages
    (Delta_sync.Make (Gset.Of_int) (Delta_sync.Bp_rr_config))
    (struct
      let name = "delta-bp+rr/GSet"
      let ops_at = gset_ops
    end)

module Msg_ack =
  Proto_messages
    (Delta_sync.Make (Gset.Of_int) (Delta_sync.Ack_config))
    (struct
      (* Ack mode also exercises Ack and the SyncReq/SyncResp recovery
         exchange (the harvest crashes and recovers node 1). *)
      let name = "delta-bp+rr-ack/GSet"
      let ops_at = gset_ops
    end)

module Msg_delta_gmap =
  Proto_messages
    (Delta_sync.Make (Gmap.Versioned) (Delta_sync.Bp_rr_config))
    (struct
      let name = "delta-bp+rr/GMap"

      let ops_at ~round ~node =
        [ Gmap.Versioned.Apply (((round * 3) + node) mod 7, Version.Bump) ]
    end)

module Msg_scuttlebutt =
  Proto_messages
    (Scuttlebutt.Make (Gset.Of_int) (Scuttlebutt.No_gc_config))
    (struct
      let name = "scuttlebutt/GSet"
      let ops_at = gset_ops
    end)

module Msg_op =
  Proto_messages
    (Op_sync.Make (Gcounter))
    (struct
      let name = "op-based/GCounter"
      let ops_at ~round:_ ~node:_ = [ Gcounter.Inc 1 ]
    end)

module Msg_merkle =
  Proto_messages
    (Merkle_sync.Make (Gset.Of_int) (Merkle_sync.Default_config))
    (struct
      let name = "merkle/GSet"
      let ops_at = gset_ops
    end)

(* Conflict-sync under the default tuning: the crash/recover at round 3
   triggers the post-restart resync sessions, so the harvest carries
   Delta, Digest, SyncReq, Cells and the decoded-session close legs. *)
module Msg_conflict =
  Proto_messages
    (Conflict_sync.Make (Gset.Of_int) (Conflict_sync.Default_config))
    (struct
      let name = "conflict-sync/GSet"
      let ops_at = gset_ops
    end)

(* Near-zero escalation threshold + a heavier op rate: the resync
   difference is too big for two cells, so this harvest additionally
   carries More, BloomReq and BloomResp — the escalation wire surface
   the default harvest never reaches. *)
module Tiny_escalation_config = struct
  let fpr = 0.05
  let chunk0 = 1
  let escalate_cells = 2
  let mismatch_streak = 1
  let quiet_ticks = 1
  let session_timeout = 4
end

module Msg_conflict_bloom =
  Proto_messages
    (Conflict_sync.Make (Gset.Of_int) (Tiny_escalation_config))
    (struct
      let name = "conflict-sync-bloom/GSet"

      let ops_at ~round ~node =
        List.init 8 (fun k -> (round * 1000) + (node * 100) + k)
    end)

module Shard_key = struct
  type t = int

  let compare = Int.compare
  let byte_size _ = 8
  let codec = Codec.int
end

module Msg_sharded =
  Proto_messages
    (Sharded.Make (Shard_key) (Gset.Of_string)
       (Delta_sync.Make (Gset.Of_string) (Delta_sync.Bp_rr_config)))
    (struct
      let name = "sharded-delta/GSet"

      let ops_at ~round ~node =
        [ (round mod 3, Printf.sprintf "e-%d-%d" round node) ]
    end)

let message_tests =
  [
    Msg_state.test;
    Msg_bp_rr.test;
    Msg_ack.test;
    Msg_delta_gmap.test;
    Msg_scuttlebutt.test;
    Msg_op.test;
    Msg_merkle.test;
    Msg_conflict.test;
    Msg_conflict_bloom.test;
    Msg_sharded.test;
    Msg_state.test_into;
    Msg_bp_rr.test_into;
    Msg_ack.test_into;
    Msg_delta_gmap.test_into;
    Msg_scuttlebutt.test_into;
    Msg_op.test_into;
    Msg_merkle.test_into;
    Msg_conflict.test_into;
    Msg_conflict_bloom.test_into;
    Msg_sharded.test_into;
  ]

(* -- corruption fuzz over real conflict-sync traffic --------------------- *)

(* The new wire surface (digests, cell streams, Bloom filters) must shrug
   off damaged inputs: any truncation or bit flip of a genuine message
   either decodes to an error or to some valid message — never an
   exception — and whatever does decode re-encodes canonically (so a
   corrupted input can't smuggle in a value the sender could not have
   produced). *)
let corruption_tests =
  let module P = Conflict_sync.Make (Gset.Of_int) (Tiny_escalation_config) in
  let module M =
    Proto_messages
      (P)
      (struct
        let name = "conflict-sync fuzz"

        let ops_at ~round ~node =
          List.init 8 (fun k -> (round * 1000) + (node * 100) + k)
      end)
  in
  let well_formed what s =
    match Codec.decode_string P.message_codec s with
    | Error _ -> ()
    | Ok m ->
        let enc = Codec.encode_to_string P.message_codec m in
        (match Codec.decode_string P.message_codec enc with
        | Ok m' ->
            Alcotest.(check string)
              (what ^ ": accepted corruption re-encodes stably")
              enc
              (Codec.encode_to_string P.message_codec m')
        | Error e ->
            Alcotest.failf "%s: accepted value fails to roundtrip: %s" what
              (Codec.error_to_string e))
  in
  [
    Alcotest.test_case "every truncation of every message is handled" `Quick
      (fun () ->
        let msgs = M.collect () in
        check "harvested some messages" true (msgs <> []);
        List.iter
          (fun m ->
            let enc = Codec.encode_to_string P.message_codec m in
            for len = 0 to String.length enc - 1 do
              well_formed
                (Printf.sprintf "truncate to %d/%d" len (String.length enc))
                (String.sub enc 0 len)
            done)
          msgs);
    Alcotest.test_case "single bit flips are handled" `Quick (fun () ->
        let msgs = M.collect () in
        List.iter
          (fun m ->
            let enc = Codec.encode_to_string P.message_codec m in
            String.iteri
              (fun i c ->
                let b = Bytes.of_string enc in
                Bytes.set b i (Char.chr (Char.code c lxor (1 lsl (i mod 8))));
                well_formed
                  (Printf.sprintf "flip bit %d of byte %d" (i mod 8) i)
                  (Bytes.to_string b))
              enc)
          msgs);
  ]

(* -- primitive codecs ---------------------------------------------------- *)

let primitive_tests =
  [
    qtest
      (QCheck.Test.make ~count:500 ~name:"zigzag int roundtrip (full range)"
         (QCheck.make
            Gen.(
              oneof
                [ int; oneofl [ min_int; max_int; 0; -1; 1; 1 lsl 62 ] ]))
         (fun n ->
           Codec.decode_string Codec.int
             (Codec.encode_to_string Codec.int n)
           = Ok n));
    qtest
      (QCheck.Test.make ~count:500 ~name:"varint roundtrip (non-negative)"
         (QCheck.make Gen.(oneof [ nat; oneofl [ 0; 1; max_int ] ]))
         (fun n ->
           Codec.decode_string Codec.varint
             (Codec.encode_to_string Codec.varint n)
           = Ok n));
    Alcotest.test_case "varint size matches encoding" `Quick (fun () ->
        List.iter
          (fun n ->
            check_int
              (Printf.sprintf "varint_size %d" n)
              (String.length (Codec.encode_to_string Codec.varint n))
              (Codec.varint_size n))
          [ 0; 1; 127; 128; 16383; 16384; 1 lsl 35; max_int ]);
  ]

(* -- allocation caps and framing robustness ------------------------------ *)

let adversarial_tests =
  [
    Alcotest.test_case "corrupt list count rejected before allocating" `Quick
      (fun () ->
        (* A claimed element count of 2^40 with no elements behind it must
           be rejected by the remaining-bytes check, not allocated. *)
        let huge = Codec.encode_to_string Codec.varint (1 lsl 40) in
        (match Codec.decode_string (Codec.list Codec.varint) huge with
        | Error (Codec.Malformed _) -> ()
        | Error Codec.Truncated -> Alcotest.fail "expected Malformed, got Truncated"
        | Ok _ -> Alcotest.fail "decoded a 2^40-element list from 6 bytes");
        match Codec.decode_string Codec.string huge with
        | Error (Codec.Malformed _) -> ()
        | Error Codec.Truncated -> Alcotest.fail "expected Malformed, got Truncated"
        | Ok _ -> Alcotest.fail "decoded a 2^40-byte string from 6 bytes");
    Alcotest.test_case "oversized frame refused by the feed" `Quick (fun () ->
        let feed = Frame.feed ~max_payload:1024 () in
        let huge_header =
          let buf = Buffer.create 8 in
          Buffer.add_char buf (Char.chr Frame.magic);
          Buffer.add_char buf (Char.chr Frame.version);
          Buffer.add_char buf '\001';
          Codec.write_varint buf (1 lsl 30);
          Buffer.contents buf
        in
        Frame.push feed huge_header;
        (match Frame.pop feed with
        | Error (Codec.Malformed _) -> ()
        | Error Codec.Truncated | Ok _ -> Alcotest.fail "oversized frame accepted");
        (* The error is sticky: the stream is garbage from here on. *)
        Frame.push feed (String.make 4 '\000');
        match Frame.pop feed with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "feed recovered after a framing violation");
    Alcotest.test_case "bad magic / version rejected" `Quick (fun () ->
        let frame = Frame.encode ~kind:1 "payload" in
        let flip i c =
          let b = Bytes.of_string frame in
          Bytes.set b i c;
          Bytes.to_string b
        in
        (match Frame.decode (flip 0 'X') with
        | Error (Codec.Malformed _) -> ()
        | _ -> Alcotest.fail "bad magic accepted");
        match Frame.decode (flip 1 '\255') with
        | Error (Codec.Malformed _) -> ()
        | _ -> Alcotest.fail "future version accepted");
    Alcotest.test_case "frame roundtrip and byte-at-a-time feed" `Quick
      (fun () ->
        let payloads = [ ""; "x"; String.make 300 'p'; "\000\255\xc5" ] in
        let stream =
          String.concat ""
            (List.mapi (fun i p -> Frame.encode ~kind:(i mod 3) p) payloads)
        in
        let feed = Frame.feed () in
        let got = ref [] in
        String.iter
          (fun c ->
            Frame.push feed (String.make 1 c);
            let rec drain () =
              match Frame.pop feed with
              | Ok (Some (kind, payload)) ->
                  got := (kind, payload) :: !got;
                  drain ()
              | Ok None -> ()
              | Error e -> Alcotest.failf "feed: %s" (Codec.error_to_string e)
            in
            drain ())
          stream;
        Alcotest.(check (list (pair int string)))
          "all frames recovered in order"
          (List.mapi (fun i p -> (i mod 3, p)) payloads)
          (List.rev !got);
        check_int "nothing pending" 0 (Frame.pending_bytes feed));
    Alcotest.test_case "burst: hundreds of frames in one chunk" `Quick
      (fun () ->
        (* The batched writer hands the receiver many frames per read(2):
           a single pushed chunk must yield every frame, in order, and
           the coalesced stream must be byte-identical to concatenating
           the per-frame encoder's output. *)
        let n = 500 in
        let payload i = Printf.sprintf "payload-%d-%s" i (String.make (i mod 37) 'x') in
        let buf = Buffer.create 8192 in
        for i = 0 to n - 1 do
          Frame.encode_into buf ~kind:(i mod 5) (payload i)
        done;
        let expected =
          String.concat ""
            (List.init n (fun i -> Frame.encode ~kind:(i mod 5) (payload i)))
        in
        Alcotest.(check string)
          "encode_into stream = concatenated Frame.encode" expected
          (Buffer.contents buf);
        let feed = Frame.feed () in
        Frame.push feed (Buffer.contents buf);
        let got = ref 0 in
        let rec drain () =
          match Frame.pop feed with
          | Ok (Some (kind, p)) ->
              check_int "kind" (!got mod 5) kind;
              Alcotest.(check string) "payload" (payload !got) p;
              incr got;
              drain ()
          | Ok None -> ()
          | Error e -> Alcotest.failf "feed: %s" (Codec.error_to_string e)
        in
        drain ();
        check_int "every frame recovered" n !got;
        check_int "nothing pending" 0 (Frame.pending_bytes feed));
    qtest
      (QCheck.Test.make ~count:200 ~name:"arbitrary bytes never crash Frame.decode"
         (QCheck.make (Gen.string_size ~gen:Gen.char (Gen.int_bound 64)))
         (fun s ->
           ignore (Frame.decode s);
           let feed = Frame.feed () in
           Frame.push feed s;
           (match Frame.pop feed with Ok _ | Error _ -> ());
           true));
  ]

(* -- vclock -------------------------------------------------------------- *)

let vclock_tests =
  [
    qtest
      (QCheck.Test.make ~count:200 ~name:"vclock roundtrip (zeros dropped)"
         (QCheck.make
            Gen.(
              small_list (pair (int_bound 6) (int_bound 5))))
         (fun entries ->
           let vc =
             List.fold_left
               (fun vc (i, n) -> Vclock.set i n vc)
               Vclock.empty entries
           in
           match
             Codec.decode_string Vclock.codec
               (Codec.encode_to_string Vclock.codec vc)
           with
           | Ok vc' -> Vclock.compare vc vc' = 0
           | Error _ -> false));
  ]

let () =
  Alcotest.run "wire"
    [
      ("primitives", primitive_tests);
      ("Max_int", Max_int_w.tests);
      ("Max_string", Max_string_w.tests);
      ("GSet", Gset_w.tests);
      ("GCounter", Gcounter_w.tests);
      ("PNCounter", Pncounter_w.tests);
      ("Product", Product_w.tests);
      ("Lexico", Lexico_w.tests);
      ("Linear_sum", Linear_sum_w.tests);
      ("GMap", Gmap_w.tests);
      ("AWSet", Aw_w.tests);
      ("MV", Mv_w.tests);
      ("Antichain", Antichain_w.tests);
      ("Deep", Deep_w.tests);
      ("Retwis", User_w.tests);
      ("messages", message_tests);
      ("corruption fuzz", corruption_tests);
      ("adversarial", adversarial_tests);
      ("vclock", vclock_tests);
    ]
