(* Unit tests for the lattice compositions, pinned to the paper's worked
   examples: Example 1 (join-irreducibility), Example 2 (irredundant
   decompositions), Fig. 3 (Hasse diagrams), Appendix C (PNCounter
   decomposition), and the lexicographic/linear-sum rules of Tables
   III-IV. *)

open Crdt_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let a = Replica_id.of_int 0
let b = Replica_id.of_int 1

(* -- Example 1 / Example 2: GCounter and GSet decompositions ----------- *)

module Dc = Delta.Make (Gcounter)
module Ds = Delta.Make (Gset.Of_string)

let example_1 =
  [
    Alcotest.test_case "p1 = {A5} is join-irreducible" `Quick (fun () ->
        check "p1" true (Dc.is_irreducible (Gcounter.of_list [ (a, 5) ])));
    Alcotest.test_case "p3 = {A5,B7} is reducible" `Quick (fun () ->
        check "p3" false
          (Dc.is_irreducible (Gcounter.of_list [ (a, 5); (b, 7) ])));
    Alcotest.test_case "s2 = {a} irreducible; s3 = {a,b} reducible" `Quick
      (fun () ->
        check "s2" true (Ds.is_irreducible (Gset.Of_string.of_list [ "a" ]));
        check "s3" false
          (Ds.is_irreducible (Gset.Of_string.of_list [ "a"; "b" ])));
    Alcotest.test_case "bottom is never irreducible" `Quick (fun () ->
        check "⊥" false (Ds.is_irreducible Gset.Of_string.bottom));
  ]

let same_states expected actual =
  List.length expected = List.length actual
  && List.for_all
       (fun e -> List.exists (fun x -> Gcounter.equal e x) actual)
       expected

let example_2 =
  [
    Alcotest.test_case "⇓{A5,B7} = {{A5},{B7}} (P4)" `Quick (fun () ->
        let p = Gcounter.of_list [ (a, 5); (b, 7) ] in
        let expected =
          [ Gcounter.of_list [ (a, 5) ]; Gcounter.of_list [ (b, 7) ] ]
        in
        check "P4" true (same_states expected (Gcounter.decompose p)));
    Alcotest.test_case "⇓{a,b,c} = {{a},{b},{c}} (S4)" `Quick (fun () ->
        let s = Gset.Of_string.of_list [ "a"; "b"; "c" ] in
        let ds = Gset.Of_string.decompose s in
        check_int "three singletons" 3 (List.length ds);
        check "all singletons" true
          (List.for_all (fun d -> Gset.Of_string.cardinal d = 1) ds));
    Alcotest.test_case "P2-style sets with redundancy are rejected" `Quick
      (fun () ->
        (* P2 = {{A5},{B6},{B7}} is a decomposition of {A5,B7} but not
           irredundant. *)
        let p2 =
          [
            Gcounter.of_list [ (a, 5) ];
            Gcounter.of_list [ (b, 6) ];
            Gcounter.of_list [ (b, 7) ];
          ]
        in
        check "is a decomposition" true
          (Dc.is_decomposition p2 (Gcounter.of_list [ (a, 5); (b, 7) ]));
        check "but redundant" false (Dc.is_irredundant p2));
    Alcotest.test_case "P1 is not even a decomposition" `Quick (fun () ->
        let p1 = [ Gcounter.of_list [ (a, 5) ]; Gcounter.of_list [ (b, 6) ] ] in
        check "P1" false
          (Dc.is_decomposition p1 (Gcounter.of_list [ (a, 5); (b, 7) ])));
  ]

(* -- Fig. 3a: GCounter Hasse diagram states ---------------------------- *)

let fig3 =
  [
    Alcotest.test_case "{A1,B1} arises from inc or join (Fig. 3a)" `Quick
      (fun () ->
        let a1 = Gcounter.of_list [ (a, 1) ] in
        let b1 = Gcounter.of_list [ (b, 1) ] in
        let a1b1 = Gcounter.of_list [ (a, 1); (b, 1) ] in
        check "inc on {A1} by B" true (Gcounter.equal a1b1 (Gcounter.inc b a1));
        check "inc on {B1} by A" true (Gcounter.equal a1b1 (Gcounter.inc a b1));
        check "join of the two" true
          (Gcounter.equal a1b1 (Gcounter.join a1 b1)));
  ]

(* -- Product rule: ⇓⟨a,b⟩ = ⇓a × {⊥} ∪ {⊥} × ⇓b ------------------------ *)

module PS = Powerset.Make (Powerset.String_elt)
module Prod = Product.Make (Chain.Max_int) (PS)
module Dp = Delta.Make (Prod)

let product_tests =
  [
    Alcotest.test_case "componentwise join and order" `Quick (fun () ->
        let x = (3, PS.of_list [ "a" ]) and y = (1, PS.of_list [ "b" ]) in
        let j = Prod.join x y in
        check "join" true (Prod.equal j (3, PS.of_list [ "a"; "b" ]));
        check "x ⊑ j" true (Prod.leq x j);
        check "incomparable" false (Prod.leq x y || Prod.leq y x));
    Alcotest.test_case "decomposition splits components" `Quick (fun () ->
        let x = (2, PS.of_list [ "a"; "b" ]) in
        let ds = Prod.decompose x in
        check_int "three irreducibles" 3 (List.length ds);
        check "rejoins" true (Dp.is_decomposition ds x);
        check "each has one live component" true
          (List.for_all (fun (c, s) -> c = 0 <> PS.is_bottom s) ds));
  ]

(* -- Lexicographic rule (Tables III-IV) -------------------------------- *)

module Lex = Lexico.Make (Chain.Max_int) (PS)

let lexico_tests =
  [
    Alcotest.test_case "higher version wins regardless of payload" `Quick
      (fun () ->
        let winner = (2, PS.of_list [ "x" ]) in
        let loser = (1, PS.of_list [ "a"; "b"; "c" ]) in
        check "join" true (Lex.equal (Lex.join winner loser) winner);
        check "order" true (Lex.leq loser winner));
    Alcotest.test_case "equal versions join payloads" `Quick (fun () ->
        let x = (2, PS.of_list [ "a" ]) and y = (2, PS.of_list [ "b" ]) in
        check "join" true
          (Lex.equal (Lex.join x y) (2, PS.of_list [ "a"; "b" ])));
    Alcotest.test_case "⟨c,⊥⟩ with c≠⊥ is irreducible" `Quick (fun () ->
        check_int "single element" 1 (List.length (Lex.decompose (3, PS.bottom)));
        check "not bottom" false (Lex.is_bottom (3, PS.bottom)));
    Alcotest.test_case "quotient decomposition ⇓⟨c,a⟩ = {c}×⇓a" `Quick
      (fun () ->
        let ds = Lex.decompose (2, PS.of_list [ "a"; "b" ]) in
        check_int "two" 2 (List.length ds);
        check "all carry version 2" true (List.for_all (fun (c, _) -> c = 2) ds));
  ]

(* -- Linear sum rule ---------------------------------------------------- *)

module Sum = Linear_sum.Make (Chain.Max_int) (PS)

let sum_tests =
  [
    Alcotest.test_case "Right dominates Left" `Quick (fun () ->
        let l = Sum.Left 9 and r = Sum.Right (PS.of_list [ "a" ]) in
        check "order" true (Sum.leq l r);
        check "join" true (Sum.equal (Sum.join l r) r);
        check "no reverse" false (Sum.leq r l));
    Alcotest.test_case "bottom is Left ⊥" `Quick (fun () ->
        check "bottom" true (Sum.is_bottom (Sum.Left 0));
        check "Right ⊥ isn't bottom" false (Sum.is_bottom (Sum.Right PS.bottom)));
    Alcotest.test_case "Right ⊥ is irreducible" `Quick (fun () ->
        check_int "singleton decomposition" 1
          (List.length (Sum.decompose (Sum.Right PS.bottom))));
    Alcotest.test_case "same-side joins are componentwise" `Quick (fun () ->
        check "left" true
          (Sum.equal (Sum.join (Sum.Left 2) (Sum.Left 5)) (Sum.Left 5)));
  ]

(* -- PNCounter: the Appendix C worked example --------------------------- *)

let pn_same expected actual =
  List.length expected = List.length actual
  && List.for_all
       (fun e -> List.exists (fun x -> Pncounter.equal e x) actual)
       expected

let pncounter_decomposition =
  [
    Alcotest.test_case "⇓{A↦⟨2,3⟩,B↦⟨5,5⟩} (Appendix C)" `Quick (fun () ->
        let p = Pncounter.of_list [ (a, (2, 3)); (b, (5, 5)) ] in
        let expected =
          [
            Pncounter.of_list [ (a, (2, 0)) ];
            Pncounter.of_list [ (a, (0, 3)) ];
            Pncounter.of_list [ (b, (5, 0)) ];
            Pncounter.of_list [ (b, (0, 5)) ];
          ]
        in
        check "matches the paper" true
          (pn_same expected (Pncounter.decompose p)));
  ]

(* -- Antichain M(P) ----------------------------------------------------- *)

module Div = struct
  type t = int

  let leq a b = b mod a = 0
  let compare = Int.compare
  let weight _ = 1
  let byte_size _ = 8
  let codec = Crdt_wire.Codec.int
  let pp ppf = Format.fprintf ppf "%d"
end

module Ac = Antichain.Make (Div)

let antichain_tests =
  [
    Alcotest.test_case "of_list keeps only maximals" `Quick (fun () ->
        let s = Ac.of_list [ 2; 4; 3; 12 ] in
        Alcotest.(check (list int)) "maximals" [ 12 ] (Ac.elements s));
    Alcotest.test_case "join prunes dominated elements" `Quick (fun () ->
        let s = Ac.join (Ac.of_list [ 2 ]) (Ac.of_list [ 8 ]) in
        Alcotest.(check (list int)) "join" [ 8 ] (Ac.elements s));
    Alcotest.test_case "incomparable elements coexist" `Quick (fun () ->
        let s = Ac.of_list [ 4; 9 ] in
        Alcotest.(check (list int)) "antichain" [ 4; 9 ] (Ac.elements s);
        check "leq by domination" true (Ac.leq (Ac.of_list [ 2; 3 ]) s));
    Alcotest.test_case "insert is a join with a singleton" `Quick (fun () ->
        let s = Ac.insert 6 (Ac.of_list [ 2; 5 ]) in
        Alcotest.(check (list int)) "result" [ 5; 6 ] (Ac.elements s));
  ]

(* -- Map lattice internals --------------------------------------------- *)

module Mm = Map_lattice.Make (Gmap.Int_key) (Chain.Max_int)

let map_tests =
  [
    Alcotest.test_case "absent keys read as bottom" `Quick (fun () ->
        check_int "find" 0 (Mm.find 99 Mm.empty));
    Alcotest.test_case "bottom values are never stored" `Quick (fun () ->
        check "singleton ⊥" true (Mm.is_bottom (Mm.singleton 1 0));
        let m = Mm.set 1 5 Mm.empty in
        check "set to ⊥ removes" true (Mm.is_bottom (Mm.set 1 0 m)));
    Alcotest.test_case "join is pointwise max" `Quick (fun () ->
        let m1 = Mm.of_list [ (1, 5); (2, 1) ] in
        let m2 = Mm.of_list [ (1, 3); (3, 7) ] in
        let j = Mm.join m1 m2 in
        check_int "key 1" 5 (Mm.find 1 j);
        check_int "key 2" 1 (Mm.find 2 j);
        check_int "key 3" 7 (Mm.find 3 j));
    Alcotest.test_case "leq is pointwise" `Quick (fun () ->
        let m1 = Mm.of_list [ (1, 2) ] in
        let m2 = Mm.of_list [ (1, 3); (2, 1) ] in
        check "m1 ⊑ m2" true (Mm.leq m1 m2);
        check "m2 ⋢ m1" false (Mm.leq m2 m1));
    Alcotest.test_case "join_entry equals join with singleton" `Quick (fun () ->
        let m = Mm.of_list [ (1, 2) ] in
        check "join_entry" true
          (Mm.equal (Mm.join_entry 1 5 m) (Mm.of_list [ (1, 5) ])));
    Alcotest.test_case "weight counts entries recursively" `Quick (fun () ->
        check_int "weight" 2 (Mm.weight (Mm.of_list [ (1, 5); (2, 2) ])));
  ]

let () =
  Alcotest.run "compositions"
    [
      ("Example 1 (irreducibility)", example_1);
      ("Example 2 (decompositions)", example_2);
      ("Fig. 3 Hasse", fig3);
      ("Product", product_tests);
      ("Lexico", lexico_tests);
      ("Linear sum", sum_tests);
      ("PNCounter (Appendix C)", pncounter_decomposition);
      ("Antichain", antichain_tests);
      ("Map lattice", map_tests);
    ]
