(* Instantiates the generic lattice/decomposition/delta laws (laws.ml)
   for every lattice and CRDT in the library, including deep composites,
   exercising the composition rules of Appendix C. *)

open Crdt_core
module Gen = QCheck.Gen

(* -- Generators -------------------------------------------------------- *)

let replica = Gen.map Replica_id.of_int (Gen.int_bound 4)
let small_int = Gen.int_bound 20
let small_string = Gen.map (fun n -> String.make n 'a') (Gen.int_bound 5)

module Max_int_laws =
  Laws.Make
    (Chain.Max_int)
    (struct
      let name = "Max_int"
      let gen = small_int
    end)

module Max_string_laws =
  Laws.Make
    (Chain.Max_string)
    (struct
      let name = "Max_string"
      let gen = small_string
    end)

module Bool_laws =
  Laws.Make
    (Chain.Bool_or)
    (struct
      let name = "Bool_or"
      let gen = Gen.bool
    end)

module Gset_laws =
  Laws.Make
    (Gset.Of_int)
    (struct
      let name = "GSet<int>"
      let gen = Gen.map Gset.Of_int.of_list (Gen.small_list (Gen.int_bound 30))
    end)

let gcounter_gen =
  Gen.map Gcounter.of_list
    (Gen.small_list (Gen.pair replica (Gen.int_range 1 10)))

module Gcounter_laws =
  Laws.Make
    (Gcounter)
    (struct
      let name = "GCounter"
      let gen = gcounter_gen
    end)

module Pncounter_laws =
  Laws.Make
    (Pncounter)
    (struct
      let name = "PNCounter"

      let gen =
        Gen.map Pncounter.of_list
          (Gen.small_list
             (Gen.pair replica (Gen.pair (Gen.int_bound 9) (Gen.int_bound 9))))
    end)

module Pair = Product.Make (Chain.Max_int) (Gset.Of_int)

let gset_gen = Gen.map Gset.Of_int.of_list (Gen.small_list (Gen.int_bound 15))

module Product_laws =
  Laws.Make
    (Pair)
    (struct
      let name = "Max_int × GSet"
      let gen = Gen.pair small_int gset_gen
    end)

module Lex = Lexico.Make (Chain.Max_int) (Gset.Of_int)

module Lexico_laws =
  Laws.Make
    (Lex)
    (struct
      let name = "Max_int ⋉ GSet"
      let gen = Gen.pair (Gen.int_bound 3) gset_gen
    end)

module Sum = Linear_sum.Make (Gset.Of_int) (Gset.Of_int)

module Linear_sum_laws =
  Laws.Make
    (Sum)
    (struct
      let name = "GSet ⊕ GSet"

      let gen =
        Gen.oneof
          [
            Gen.map (fun s -> Sum.Left s) gset_gen;
            Gen.map (fun s -> Sum.Right s) gset_gen;
          ]
    end)

module Gmap_laws =
  Laws.Make
    (Gmap.Versioned)
    (struct
      let name = "GMap<int,Version>"

      let gen =
        Gen.map Gmap.Versioned.of_list
          (Gen.small_list (Gen.pair (Gen.int_bound 5) (Gen.int_bound 5)))
    end)

module Tps = Two_pset.Make (Powerset.Int_elt)

module Two_pset_laws =
  Laws.Make
    (Tps)
    (struct
      let name = "2PSet<int>"

      let gen =
        let op =
          Gen.oneof
            [
              Gen.map (fun e -> Tps.Add e) (Gen.int_bound 10);
              Gen.map (fun e -> Tps.Remove e) (Gen.int_bound 10);
            ]
        in
        Gen.map
          (fun ops ->
            List.fold_left
              (fun s op -> Tps.mutate op (Replica_id.of_int 0) s)
              Tps.bottom ops)
          (Gen.small_list op)
    end)

module Lww_laws =
  Laws.Make
    (Lww_register)
    (struct
      let name = "LWW register"
      let gen = Gen.pair (Gen.int_bound 6) small_string
    end)

module Flag_laws =
  Laws.Make
    (Epoch_flag)
    (struct
      let name = "Epoch flag"
      let gen = Gen.pair (Gen.int_bound 4) Gen.bool
    end)

let mv_gen =
  let write = Gen.pair replica small_string in
  Gen.map
    (fun writes ->
      (* Interleave sequential writes with joins of divergent replicas to
         reach states holding concurrent values. *)
      List.fold_left
        (fun (acc, reg) (i, s) ->
          let reg' = Mv_register.mutate (Mv_register.Write s) i reg in
          (Mv_register.join acc reg', reg'))
        (Mv_register.bottom, Mv_register.bottom)
        writes
      |> fst)
    (Gen.small_list write)

module Mv_laws =
  Laws.Make
    (Mv_register)
    (struct
      let name = "MV register"
      let gen = mv_gen
    end)

(* Antichains over the divisibility order on positive integers: a
   genuinely partial order unrelated to any CRDT, stressing M(P). *)
module Divisibility = struct
  type t = int

  let leq a b = b mod a = 0
  let compare = Int.compare
  let weight _ = 1
  let byte_size _ = 8
  let codec = Crdt_wire.Codec.int
  let pp ppf = Format.fprintf ppf "%d"
end

module Div_chain = Antichain.Make (Divisibility)

module Antichain_laws =
  Laws.Make
    (Div_chain)
    (struct
      let name = "M(divisibility)"

      let gen =
        Gen.map Div_chain.of_list (Gen.small_list (Gen.int_range 1 60))
    end)

(* Deep composite: map of user ids to (counter × lexicographic
   register), the shape of real application state. *)
module Deep_value = Product.Make (Gcounter) (Lex)
module Deep = Map_lattice.Make (Gmap.Int_key) (Deep_value)

module Deep_laws =
  Laws.Make
    (Deep)
    (struct
      let name = "Map<int, GCounter × (ℕ ⋉ GSet)>"

      let gen =
        Gen.map Deep.of_list
          (Gen.small_list
             (Gen.pair (Gen.int_bound 3)
                (Gen.pair gcounter_gen (Gen.pair (Gen.int_bound 3) gset_gen))))
    end)

module Aw = Aw_set.Of_string

module Aw_laws =
  Laws.Make
    (Aw)
    (struct
      let name = "AW OR-Set"

      let gen =
        let op =
          Gen.oneof
            [
              Gen.map (fun e -> Aw.Add (String.make 1 e))
                (Gen.char_range 'a' 'd');
              Gen.map (fun e -> Aw.Remove (String.make 1 e))
                (Gen.char_range 'a' 'd');
            ]
        in
        (* Mix sequential mutation with joins of divergent replicas so
           concurrent add/remove patterns appear in generated states. *)
        Gen.map
          (fun ops ->
            List.fold_left
              (fun (acc, st) (i, op) ->
                let st' = Aw.mutate op i st in
                (Aw.join acc st', st'))
              (Aw.bottom, Aw.bottom) ops
            |> fst)
          (Gen.small_list (Gen.pair replica op))
    end)

module Resettable_laws =
  Laws.Make
    (Resettable_counter)
    (struct
      let name = "Resettable counter"

      let gen =
        let op =
          Gen.oneof
            [
              Gen.map (fun n -> Resettable_counter.Inc (n + 1)) (Gen.int_bound 5);
              Gen.return Resettable_counter.Reset;
            ]
        in
        Gen.map
          (fun ops ->
            List.fold_left
              (fun x (i, op) -> Resettable_counter.mutate op i x)
              Resettable_counter.bottom ops)
          (Gen.small_list (Gen.pair replica op))
    end)

module Bounded_laws =
  Laws.Make
    (Bounded_counter)
    (struct
      let name = "Bounded counter"

      let gen =
        let op =
          Gen.oneof
            [
              Gen.map (fun n -> Bounded_counter.Inc (n + 1)) (Gen.int_bound 5);
              Gen.map (fun n -> Bounded_counter.Dec (n + 1)) (Gen.int_bound 5);
              Gen.map
                (fun (n, t) ->
                  Bounded_counter.Transfer
                    { amount = n + 1; target = Replica_id.of_int t })
                (Gen.pair (Gen.int_bound 3) (Gen.int_bound 4));
            ]
        in
        Gen.map
          (fun ops ->
            List.fold_left
              (fun x (i, op) -> Bounded_counter.mutate op i x)
              Bounded_counter.bottom ops)
          (Gen.small_list (Gen.pair replica op))
    end)

module User_laws =
  Laws.Make
    (Crdt_retwis.User_state)
    (struct
      let name = "Retwis user state"

      let gen =
        let op =
          Gen.oneof
            [
              Gen.map (fun u -> Crdt_retwis.User_state.Follow u) (Gen.int_bound 9);
              Gen.map
                (fun n ->
                  Crdt_retwis.User_state.Post
                    { tweet_id = Printf.sprintf "t%d" n; content = "c" })
                (Gen.int_bound 9);
              Gen.map
                (fun ts ->
                  Crdt_retwis.User_state.Timeline_add
                    { timestamp = ts; tweet_id = "t" })
                (Gen.int_bound 9);
            ]
        in
        Gen.map
          (fun ops ->
            List.fold_left
              (fun st (i, op) -> Crdt_retwis.User_state.mutate op i st)
              Crdt_retwis.User_state.bottom ops)
          (Gen.small_list (Gen.pair replica op))
    end)

let () =
  Alcotest.run "lattice laws"
    [
      ("Max_int", Max_int_laws.suite);
      ("Max_string", Max_string_laws.suite);
      ("Bool_or", Bool_laws.suite);
      ("GSet", Gset_laws.suite);
      ("GCounter", Gcounter_laws.suite);
      ("PNCounter", Pncounter_laws.suite);
      ("Product", Product_laws.suite);
      ("Lexico", Lexico_laws.suite);
      ("Linear_sum", Linear_sum_laws.suite);
      ("GMap", Gmap_laws.suite);
      ("2PSet", Two_pset_laws.suite);
      ("LWW", Lww_laws.suite);
      ("Epoch_flag", Flag_laws.suite);
      ("MV_register", Mv_laws.suite);
      ("Antichain", Antichain_laws.suite);
      ("Deep composite", Deep_laws.suite);
      ("AW OR-Set", Aw_laws.suite);
      ("Resettable counter", Resettable_laws.suite);
      ("Bounded counter", Bounded_laws.suite);
      ("Retwis user", User_laws.suite);
    ]
