(* Tests for the post-partition pairwise synchronization techniques
   (state-driven and digest-driven, related-work section / [30]), and for
   the naive-δ-mutator ablation instance. *)

open Crdt_core
open Crdt_proto

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module S = Gset.Of_string
module P = Partition_sync.Make (S)

let diverged () =
  let base = S.of_list [ "shared1"; "shared2" ] in
  let a = S.join base (S.of_list [ "a1"; "a2"; "a3" ]) in
  let b = S.join base (S.of_list [ "b1" ]) in
  (a, b)

let joined (a, b) = S.join a b

let partition_tests =
  [
    Alcotest.test_case "state-driven converges in 2 messages" `Quick
      (fun () ->
        let a, b = diverged () in
        let a', b', stats = P.state_driven a b in
        check "a converged" true (S.equal a' (joined (a, b)));
        check "b converged" true (S.equal b' (joined (a, b)));
        check_int "messages" 2 stats.P.messages);
    Alcotest.test_case "digest-driven converges in 3 messages" `Quick
      (fun () ->
        let a, b = diverged () in
        let a', b', stats = P.digest_driven a b in
        check "a converged" true (S.equal a' (joined (a, b)));
        check "b converged" true (S.equal b' (joined (a, b)));
        check_int "messages" 3 stats.P.messages);
    Alcotest.test_case "state-driven ships less than bidirectional" `Quick
      (fun () ->
        let a, b = diverged () in
        let _, _, sd = P.state_driven a b in
        let _, _, bi = P.bidirectional a b in
        check "fewer bytes" true (sd.P.bytes <= bi.P.bytes));
    Alcotest.test_case
      "digest-driven avoids full-state transfer on large shared prefixes"
      `Quick (fun () ->
        (* Large shared state, tiny divergence: deltas are tiny, digests
           are proportional to state size but much smaller than the state
           (8 B per element vs 64 B payloads). *)
        let shared =
          S.of_list
            (List.init 200 (fun i ->
                 Printf.sprintf "shared-%06d-%s" i (String.make 50 'x')))
        in
        let a = S.join shared (S.of_list [ "only-a" ]) in
        let b = S.join shared (S.of_list [ "only-b" ]) in
        let _, _, dd = P.digest_driven a b in
        let _, _, sd = P.state_driven a b in
        check "digest beats state-driven" true (dd.P.bytes < sd.P.bytes));
    Alcotest.test_case "already synchronized replicas exchange only digests"
      `Quick (fun () ->
        let x = S.of_list [ "a"; "b" ] in
        let a', b', stats = P.digest_driven x x in
        check "unchanged" true (S.equal a' x && S.equal b' x);
        (* 2 digests, no deltas: 8 B per element per digest. *)
        check_int "digest-only cost" (2 * 2 * 8) stats.P.bytes);
    Alcotest.test_case "works for counters too" `Quick (fun () ->
        let module Pc = Partition_sync.Make (Gcounter) in
        let r0 = Replica_id.of_int 0 and r1 = Replica_id.of_int 1 in
        let base = Gcounter.inc ~n:5 r0 Gcounter.bottom in
        let a = Gcounter.inc ~n:2 r0 base in
        let b = Gcounter.inc ~n:7 r1 base in
        let a', b', _ = Pc.state_driven a b in
        check "converged" true (Gcounter.equal a' b');
        check_int "value" 14 (Gcounter.value a'));
  ]

let naive_tests =
  [
    Alcotest.test_case "naive δ-mutator re-ships present elements" `Quick
      (fun () ->
        let module N = Gset.Naive_of_int in
        let s = N.of_list [ 1; 2 ] in
        let d = N.delta_mutate 1 (Replica_id.of_int 0) s in
        check "non-bottom" false (N.is_bottom d);
        (* It still satisfies the δ-mutator contract. *)
        check "contract" true
          (N.equal
             (N.mutate 1 (Replica_id.of_int 0) s)
             (N.join s d)));
    Alcotest.test_case "naive mutator transmits strictly more under load"
      `Quick (fun () ->
        let open Crdt_sim in
        let module Workload = Crdt_engine.Workload in
        let topo = Topology.partial_mesh 6 in
        let ops ~round ~node state =
          Workload.gset_contended ~pool:5 ~round ~node state
        in
        let module Ho = Harness.Make (Gset.Of_int) in
        let module Hn = Harness.Make (Gset.Naive_of_int) in
        let sel = Harness.delta_only in
        let optimal = Ho.run ~selection:sel ~topology:topo ~rounds:12 ~ops () in
        let naive = Hn.run ~selection:sel ~topology:topo ~rounds:12 ~ops () in
        let payload outs =
          List.fold_left
            (fun acc (o : Harness.outcome) ->
              acc + o.summary.Metrics.total_payload)
            0 outs
        in
        check "naive > optimal" true (payload naive > payload optimal));
  ]

let () =
  Alcotest.run "partition & ablation"
    [ ("partition sync", partition_tests); ("naive δ-mutator", naive_tests) ]
