(* Unit tests for the extension counters: the resettable Cassandra-style
   counter (Lexico(ℕ, GCounter), Appendix B / [37]) and the bounded
   counter built from grow-only map compositions. *)

open Crdt_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let a = Replica_id.of_int 0
let b = Replica_id.of_int 1

module Rc = Resettable_counter

let resettable_tests =
  [
    Alcotest.test_case "increments accumulate" `Quick (fun () ->
        let x = Rc.(inc a bottom |> inc ~n:4 b) in
        check_int "value" 5 (Rc.value x);
        check_int "epoch" 0 (Rc.epoch x));
    Alcotest.test_case "reset zeroes the value and bumps the epoch" `Quick
      (fun () ->
        let x = Rc.(inc ~n:9 a bottom |> reset b) in
        check_int "value" 0 (Rc.value x);
        check_int "epoch" 1 (Rc.epoch x);
        check "inflation" true (Rc.leq (Rc.inc ~n:9 a Rc.bottom) x));
    Alcotest.test_case "reset wins over concurrent increments" `Quick
      (fun () ->
        let base = Rc.inc ~n:3 a Rc.bottom in
        let incd = Rc.inc ~n:5 b base in
        let reset = Rc.reset a base in
        let m = Rc.join incd reset in
        check "commutes" true (Rc.equal m (Rc.join reset incd));
        check_int "reset absorbed the increments" 0 (Rc.value m));
    Alcotest.test_case "increments after a reset survive it" `Quick (fun () ->
        let x = Rc.(inc ~n:3 a bottom |> reset a |> inc ~n:2 b) in
        check_int "value" 2 (Rc.value x));
    Alcotest.test_case "incδ is a single tagged entry" `Quick (fun () ->
        let x = Rc.(inc ~n:3 a bottom |> inc ~n:8 b) in
        let d = Rc.delta_mutate (Rc.Inc 1) a x in
        check_int "weight" 1 (Rc.weight d);
        check "contract" true
          (Rc.equal (Rc.mutate (Rc.Inc 1) a x) (Rc.join x d)));
    Alcotest.test_case "m(x) = x ⊔ mδ(x) including resets" `Quick (fun () ->
        let x = Rc.(inc ~n:3 a bottom |> inc b) in
        List.iter
          (fun op ->
            check "contract" true
              (Rc.equal (Rc.mutate op b x) (Rc.join x (Rc.delta_mutate op b x))))
          [ Rc.Inc 2; Rc.Reset ]);
  ]

module Bc = Bounded_counter

let bounded_tests =
  [
    Alcotest.test_case "cannot go below zero" `Quick (fun () ->
        let x = Bc.inc ~n:3 a Bc.bottom in
        let x = Bc.dec ~n:5 a x in
        check_int "dec was a no-op" 3 (Bc.value x);
        let x = Bc.dec ~n:3 a x in
        check_int "exact spend ok" 0 (Bc.value x));
    Alcotest.test_case "rights are per replica" `Quick (fun () ->
        let x = Bc.inc ~n:10 a Bc.bottom in
        (* b holds no rights, so its decrement is a no-op. *)
        check_int "b has none" 0 (Bc.rights_of b x);
        check_int "unchanged" 10 (Bc.value (Bc.dec ~n:1 b x)));
    Alcotest.test_case "transfer moves rights" `Quick (fun () ->
        let x = Bc.inc ~n:10 a Bc.bottom in
        let x = Bc.transfer ~amount:4 ~target:b a x in
        check_int "a keeps 6" 6 (Bc.rights_of a x);
        check_int "b holds 4" 4 (Bc.rights_of b x);
        let x = Bc.dec ~n:4 b x in
        check_int "b spent them" 6 (Bc.value x));
    Alcotest.test_case "self transfer is a no-op" `Quick (fun () ->
        let x = Bc.inc ~n:2 a Bc.bottom in
        check "unchanged" true (Bc.equal x (Bc.transfer ~amount:1 ~target:a a x)));
    Alcotest.test_case "concurrent spends of disjoint rights merge safely"
      `Quick (fun () ->
        let base =
          Bc.inc ~n:5 a Bc.bottom |> Bc.transfer ~amount:2 ~target:b a
        in
        let at_a = Bc.dec ~n:3 a base in
        let at_b = Bc.dec ~n:2 b base in
        let m = Bc.join at_a at_b in
        check "commutes" true (Bc.equal m (Bc.join at_b at_a));
        check_int "value" 0 (Bc.value m);
        check "never negative" true (Bc.value m >= 0));
    Alcotest.test_case "deltas carry one entry" `Quick (fun () ->
        let x = Bc.inc ~n:5 a Bc.bottom in
        let d = Bc.delta_mutate (Bc.Inc 1) a x in
        check_int "weight" 1 (Bc.weight d);
        let d = Bc.delta_mutate (Bc.Dec 2) a x in
        check_int "weight" 1 (Bc.weight d);
        check "insufficient dec delta is bottom" true
          (Bc.is_bottom (Bc.delta_mutate (Bc.Dec 50) a x)));
    Alcotest.test_case "m(x) = x ⊔ mδ(x) for all ops" `Quick (fun () ->
        let x = Bc.inc ~n:5 a Bc.bottom in
        List.iter
          (fun op ->
            check "contract" true
              (Bc.equal (Bc.mutate op a x) (Bc.join x (Bc.delta_mutate op a x))))
          [
            Bc.Inc 2;
            Bc.Dec 1;
            Bc.Dec 99;
            Bc.Transfer { amount = 1; target = b };
            Bc.Transfer { amount = 99; target = b };
          ]);
  ]

(* End-to-end: replicate a bounded counter over delta BP+RR and check the
   invariant holds at every replica throughout. *)
let replication_tests =
  [
    Alcotest.test_case "bounded counter never goes negative under sync"
      `Quick (fun () ->
        let open Crdt_sim in
        let module P =
          Crdt_proto.Delta_sync.Make (Bc) (Crdt_proto.Delta_sync.Bp_rr_config)
        in
        let module R = Runner.Make (P) in
        let topo = Topology.ring 5 in
        let res =
          R.run ~equal:Bc.equal ~topology:topo ~rounds:20
            ~ops:(fun ~round ~node _state ->
              (* node 0 mints rights and spreads them; everyone spends. *)
              if node = 0 then
                [ Bc.Inc 5; Bc.Transfer { amount = 1; target = (round mod 4) + 1 } ]
              else [ Bc.Dec 1 ])
            ()
        in
        check "converged" true res.R.converged;
        Array.iter
          (fun st -> check "non-negative" true (Bc.value st >= 0))
          res.R.finals);
  ]

let () =
  Alcotest.run "extension counters"
    [
      ("resettable counter", resettable_tests);
      ("bounded counter", bounded_tests);
      ("replication", replication_tests);
    ]
