(* Unit tests for the Zipf sampler used by the Retwis contention sweep. *)

open Crdt_sim

let check = Alcotest.(check bool)

let histogram z draws =
  let h = Array.make (Zipf.support z) 0 in
  for _ = 1 to draws do
    let k = Zipf.sample z in
    h.(k) <- h.(k) + 1
  done;
  h

let tests =
  [
    Alcotest.test_case "samples stay in range" `Quick (fun () ->
        let rng = Random.State.make [| 1 |] in
        let z = Zipf.make ~rng ~s:1.0 ~n:50 in
        for _ = 1 to 1000 do
          let k = Zipf.sample z in
          check "in range" true (k >= 0 && k < 50)
        done);
    Alcotest.test_case "s = 0 is uniform" `Quick (fun () ->
        let rng = Random.State.make [| 2 |] in
        let z = Zipf.make ~rng ~s:0. ~n:10 in
        let h = histogram z 20_000 in
        Array.iter
          (fun c -> check "within 25% of uniform" true (abs (c - 2000) < 500))
          h);
    Alcotest.test_case "higher s concentrates mass on the head" `Quick
      (fun () ->
        let mass s =
          let rng = Random.State.make [| 3 |] in
          Zipf.head_mass (Zipf.make ~rng ~s ~n:100)
        in
        check "monotone" true (mass 0.5 < mass 1.0 && mass 1.0 < mass 1.5));
    Alcotest.test_case "s = 1.0 hits the head about 1/H(n) of draws" `Quick
      (fun () ->
        let rng = Random.State.make [| 4 |] in
        let z = Zipf.make ~rng ~s:1.0 ~n:100 in
        let h = histogram z 50_000 in
        (* H(100) ≈ 5.187, expected head share ≈ 19.3%. *)
        let share = float_of_int h.(0) /. 50_000. in
        check "head share" true (share > 0.17 && share < 0.22));
    Alcotest.test_case "deterministic under a fixed seed" `Quick (fun () ->
        let draw () =
          let rng = Random.State.make [| 9 |] in
          let z = Zipf.make ~rng ~s:1.2 ~n:30 in
          List.init 100 (fun _ -> Zipf.sample z)
        in
        check "equal sequences" true (draw () = draw ()));
    Alcotest.test_case "sample_at boundary draws" `Quick (fun () ->
        let rng = Random.State.make [| 6 |] in
        let z = Zipf.make ~rng ~s:1.0 ~n:10 in
        Alcotest.(check int) "u = 0 maps to the head" 0 (Zipf.sample_at z 0.);
        Alcotest.(check int) "u just under 1 maps to the tail" 9
          (Zipf.sample_at z 0.999_999_999);
        (* A draw landing exactly on a CDF entry belongs to that rank
           (first index whose cumulative mass reaches u). *)
        Alcotest.(check int) "u = head_mass stays on rank 0" 0
          (Zipf.sample_at z (Zipf.head_mass z)));
    Alcotest.test_case "n = 1 always draws the only item" `Quick (fun () ->
        let rng = Random.State.make [| 7 |] in
        let z = Zipf.make ~rng ~s:1.3 ~n:1 in
        check "head mass is 1" true (Zipf.head_mass z = 1.);
        for _ = 1 to 100 do
          Alcotest.(check int) "only rank" 0 (Zipf.sample z)
        done);
    Alcotest.test_case "chi-squared fit against the analytic masses" `Quick
      (fun () ->
        let n = 20 and draws = 100_000 in
        let rng = Random.State.make [| 8 |] in
        let z = Zipf.make ~rng ~s:1.0 ~n in
        let h = histogram z draws in
        (* Analytic mass of rank k at s = 1: 1/(k+1) over the harmonic
           normalizer H(n). *)
        let norm = ref 0. in
        for k = 1 to n do
          norm := !norm +. (1. /. float_of_int k)
        done;
        let chi2 = ref 0. in
        for k = 0 to n - 1 do
          let expected =
            float_of_int draws /. (float_of_int (k + 1) *. !norm)
          in
          let diff = float_of_int h.(k) -. expected in
          chi2 := !chi2 +. (diff *. diff /. expected)
        done;
        (* 19 degrees of freedom: χ²₀.₉₉₉ ≈ 43.8; a correct sampler sits
           far below, a mis-normalized CDF blows far past. *)
        check
          (Printf.sprintf "chi2 = %.1f < 43.8" !chi2)
          true (!chi2 < 43.8));
    Alcotest.test_case "invalid parameters rejected" `Quick (fun () ->
        let rng = Random.State.make [| 5 |] in
        check "n = 0" true
          (try
             ignore (Zipf.make ~rng ~s:1. ~n:0);
             false
           with Invalid_argument _ -> true);
        check "negative s" true
          (try
             ignore (Zipf.make ~rng ~s:(-1.) ~n:5);
             false
           with Invalid_argument _ -> true));
  ]

let () = Alcotest.run "zipf" [ ("distribution", tests) ]
