(* Unit tests for the grow-only set (Fig. 2b), including the optimal
   vs. naive δ-mutator distinction of Section III-B. *)

open Crdt_core
module S = Gset.Of_string

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let i = Replica_id.of_int 0

let basics =
  [
    Alcotest.test_case "fresh set is empty" `Quick (fun () ->
        check_int "cardinal" 0 (S.cardinal S.bottom);
        Alcotest.(check (list string)) "elements" [] (S.elements S.bottom));
    Alcotest.test_case "add then mem" `Quick (fun () ->
        let s = S.add "x" i S.bottom in
        check "mem" true (S.mem "x" s);
        check "not mem" false (S.mem "y" s));
    Alcotest.test_case "value is the set itself (Fig. 2b)" `Quick (fun () ->
        let s = S.of_list [ "b"; "a" ] in
        Alcotest.(check (list string)) "sorted" [ "a"; "b" ] (S.elements s));
    Alcotest.test_case "join is set union" `Quick (fun () ->
        let s = S.join (S.of_list [ "a"; "b" ]) (S.of_list [ "b"; "c" ]) in
        Alcotest.(check (list string)) "union" [ "a"; "b"; "c" ] (S.elements s));
    Alcotest.test_case "leq is subset" `Quick (fun () ->
        check "subset" true (S.leq (S.of_list [ "a" ]) (S.of_list [ "a"; "b" ]));
        check "not subset" false
          (S.leq (S.of_list [ "z" ]) (S.of_list [ "a"; "b" ])));
    Alcotest.test_case "leq regression: edges of the subset walk" `Quick
      (fun () ->
        (* Pin the corner cases of the short-circuiting order check:
           ⊥ at both ends, equality, extra elements on either side, and a
           violating element sorting before/after the common prefix. *)
        let abc = S.of_list [ "a"; "b"; "c" ] in
        check "⊥ ⊑ s" true (S.leq S.bottom abc);
        check "s ⋢ ⊥" false (S.leq abc S.bottom);
        check "⊥ ⊑ ⊥" true (S.leq S.bottom S.bottom);
        check "s ⊑ s" true (S.leq abc abc);
        check "first element missing" false
          (S.leq (S.of_list [ "A"; "b" ]) (S.of_list [ "b"; "c" ]));
        check "last element missing" false
          (S.leq (S.of_list [ "b"; "z" ]) (S.of_list [ "a"; "b"; "c" ]));
        check "interleaved subset" true
          (S.leq (S.of_list [ "a"; "c" ]) (S.of_list [ "a"; "b"; "c"; "d" ])));
  ]

let delta_tests =
  [
    Alcotest.test_case "addδ of a new element is a singleton" `Quick (fun () ->
        let s = S.of_list [ "a" ] in
        let d = S.add_delta "b" s in
        Alcotest.(check (list string)) "singleton" [ "b" ] (S.elements d));
    Alcotest.test_case "addδ of a present element is ⊥ (optimal)" `Quick
      (fun () ->
        let s = S.of_list [ "a" ] in
        check "bottom" true (S.is_bottom (S.add_delta "a" s)));
    Alcotest.test_case "naive δ-mutator from [13] is not optimal" `Quick
      (fun () ->
        let s = S.of_list [ "a" ] in
        let naive = S.add_delta_naive "a" s in
        check "returns a redundant singleton" false (S.is_bottom naive);
        (* Both still satisfy m(x) = x ⊔ mδ(x)… *)
        check "same result" true
          (S.equal (S.join s naive) (S.add "a" i s));
        (* …but the optimal one is strictly below the naive one. *)
        check "optimal ⊑ naive, not equal" true
          (S.leq (S.add_delta "a" s) naive
          && not (S.equal (S.add_delta "a" s) naive)));
    Alcotest.test_case "m(x) = x ⊔ mδ(x) for all adds" `Quick (fun () ->
        let s = S.of_list [ "a"; "b" ] in
        List.iter
          (fun e ->
            check e true
              (S.equal (S.add e i s) (S.join s (S.add_delta e s))))
          [ "a"; "b"; "c"; "d" ]);
  ]

let accounting =
  [
    Alcotest.test_case "weight counts elements (Table I metric)" `Quick
      (fun () ->
        check_int "weight" 3 (S.weight (S.of_list [ "a"; "b"; "c" ])));
    Alcotest.test_case "byte size sums element sizes" `Quick (fun () ->
        check_int "bytes" 6 (S.byte_size (S.of_list [ "ab"; "cdef" ])));
    Alcotest.test_case "op accounting" `Quick (fun () ->
        check_int "op weight" 1 (S.op_weight "abc");
        check_int "op bytes" 3 (S.op_byte_size "abc"));
  ]

let () =
  Alcotest.run "gset"
    [ ("basics", basics); ("deltas", delta_tests); ("accounting", accounting) ]
