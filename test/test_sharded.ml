(* Unit tests for the per-object protocol composition (Sharded). *)

open Crdt_core
open Crdt_proto
open Crdt_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module S = Gset.Of_string

module Key = struct
  type t = int

  let compare = Int.compare
  let byte_size _ = 8
  let codec = Crdt_wire.Codec.int
end

module One = Delta_sync.Make (S) (Delta_sync.Bp_rr_config)
module Sh = Sharded.Make (Key) (S) (One)

let basics =
  [
    Alcotest.test_case "updates land on the right object" `Quick (fun () ->
        let n = Sh.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let n = Sh.local_update n (1, "x") in
        let n = Sh.local_update n (2, "y") in
        let st = Sh.state n in
        check "obj 1" true (S.mem "x" (List.assoc 1 st));
        check "obj 2" true (S.mem "y" (List.assoc 2 st));
        check "no cross-talk" false (S.mem "y" (List.assoc 1 st)));
    Alcotest.test_case "tick batches per destination" `Quick (fun () ->
        let n = Sh.init ~id:0 ~neighbors:[ 1; 2 ] ~total:3 in
        let n = Sh.local_update n (1, "x") in
        let n = Sh.local_update n (2, "y") in
        let _, msgs = Sh.tick n in
        (* one bundled message per neighbor, each carrying 2 objects. *)
        check_int "two messages" 2 (List.length msgs);
        List.iter
          (fun (_, batch) -> check_int "2 elements" 2 (Sh.payload_weight batch))
          msgs);
    Alcotest.test_case "quiet objects send nothing" `Quick (fun () ->
        let n = Sh.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let n = Sh.local_update n (1, "x") in
        let n, _ = Sh.tick n in
        let _, msgs = Sh.tick n in
        check "silent" true (msgs = []));
  ]

let equality_tests =
  [
    Alcotest.test_case "equal_states ignores object order" `Quick (fun () ->
        let a = [ (1, S.of_list [ "x" ]); (2, S.of_list [ "y" ]) ] in
        let b = [ (2, S.of_list [ "y" ]); (1, S.of_list [ "x" ]) ] in
        check "equal" true (Sh.equal_states a b));
    Alcotest.test_case "equal_states treats absent as bottom" `Quick (fun () ->
        check "bottom object irrelevant" true
          (Sh.equal_states [ (1, S.bottom) ] []);
        check "non-bottom matters" false
          (Sh.equal_states [ (1, S.of_list [ "x" ]) ] []));
  ]

module R = Runner.Make (Sh)

let convergence_tests =
  [
    Alcotest.test_case "sharded replicas converge across a mesh" `Quick
      (fun () ->
        let topo = Topology.partial_mesh 6 in
        let res =
          R.run ~equal:Sh.equal_states ~topology:topo ~rounds:8
            ~ops:(fun ~round ~node _ ->
              (* spread updates across 3 objects *)
              [ (round mod 3, Printf.sprintf "e-%d-%d" round node) ])
            ()
        in
        check "converged" true res.R.converged;
        let st = res.R.finals.(0) in
        check_int "three objects" 3 (List.length st);
        check_int "all elements present" (8 * 6)
          (List.fold_left (fun acc (_, s) -> acc + S.cardinal s) 0 st));
    Alcotest.test_case "per-object isolation beats a composed store under
contention skew" `Quick (fun () ->
        (* Contention confined to one object leaves the others' classic
           buffers clean; this is the property that makes Fig. 11 behave. *)
        let module ClassicOne = Delta_sync.Make (S) (Delta_sync.Classic_config) in
        let module ShC = Sharded.Make (Key) (S) (ClassicOne) in
        let module Rc = Runner.Make (ShC) in
        let topo = Topology.partial_mesh 6 in
        let res =
          Rc.run ~equal:ShC.equal_states ~topology:topo ~rounds:8
            ~ops:(fun ~round ~node _ ->
              if node = 0 then [ (0, Printf.sprintf "hot-%d" round) ] else [])
            ()
        in
        check "converged" true res.Rc.converged)
  ]

let () =
  Alcotest.run "sharded"
    [
      ("basics", basics);
      ("equality", equality_tests);
      ("convergence", convergence_tests);
    ]
