(* Unit tests for the per-object protocol composition (Sharded). *)

open Crdt_core
open Crdt_proto
open Crdt_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module S = Gset.Of_string

module Key = struct
  type t = int

  let compare = Int.compare
  let byte_size _ = 8
  let codec = Crdt_wire.Codec.int
end

module One = Delta_sync.Make (S) (Delta_sync.Bp_rr_config)
module Sh = Sharded.Make (Key) (S) (One)

let basics =
  [
    Alcotest.test_case "updates land on the right object" `Quick (fun () ->
        let n = Sh.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let n = Sh.local_update n (1, "x") in
        let n = Sh.local_update n (2, "y") in
        let st = Sh.state n in
        check "obj 1" true (S.mem "x" (List.assoc 1 st));
        check "obj 2" true (S.mem "y" (List.assoc 2 st));
        check "no cross-talk" false (S.mem "y" (List.assoc 1 st)));
    Alcotest.test_case "tick batches per destination" `Quick (fun () ->
        let n = Sh.init ~id:0 ~neighbors:[ 1; 2 ] ~total:3 in
        let n = Sh.local_update n (1, "x") in
        let n = Sh.local_update n (2, "y") in
        let _, msgs = Sh.tick n in
        (* one bundled message per neighbor, each carrying 2 objects. *)
        check_int "two messages" 2 (List.length msgs);
        List.iter
          (fun (_, batch) -> check_int "2 elements" 2 (Sh.payload_weight batch))
          msgs);
    Alcotest.test_case "quiet objects send nothing" `Quick (fun () ->
        let n = Sh.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let n = Sh.local_update n (1, "x") in
        let n, _ = Sh.tick n in
        let _, msgs = Sh.tick n in
        check "silent" true (msgs = []));
  ]

let equality_tests =
  [
    Alcotest.test_case "equal_states ignores object order" `Quick (fun () ->
        let a = [ (1, S.of_list [ "x" ]); (2, S.of_list [ "y" ]) ] in
        let b = [ (2, S.of_list [ "y" ]); (1, S.of_list [ "x" ]) ] in
        check "equal" true (Sh.equal_states a b));
    Alcotest.test_case "equal_states treats absent as bottom" `Quick (fun () ->
        check "bottom object irrelevant" true
          (Sh.equal_states [ (1, S.bottom) ] []);
        check "non-bottom matters" false
          (Sh.equal_states [ (1, S.of_list [ "x" ]) ] []));
  ]

(* Hand-driven two-node exchange: tick both nodes, deliver every
   message (cascading replies) unless the destination is down. *)
let drain ~down a b =
  let a = ref a and b = ref b in
  let q = Queue.create () in
  let deliver (dst, src, m) =
    if not (List.mem dst down) then
      let node = if dst = 0 then a else b in
      let n, replies = Sh.handle !node ~src m in
      node := n;
      List.iter (fun (d, r) -> Queue.push (d, dst, r) q) replies
  in
  for _ = 1 to 8 do
    let na, ma = Sh.tick !a in
    let nb, mb = Sh.tick !b in
    a := na;
    b := nb;
    List.iter (fun (d, m) -> Queue.push (d, 0, m) q) ma;
    List.iter (fun (d, m) -> Queue.push (d, 1, m) q) mb;
    while not (Queue.is_empty q) do
      deliver (Queue.pop q)
    done
  done;
  (!a, !b)

let crash_tests =
  [
    Alcotest.test_case "crash tolerance is inherited from the object protocol"
      `Quick (fun () ->
        check "delta inner tolerates crash" true
          Sh.capabilities.Protocol_intf.tolerates_crash;
        let module OpInner = Op_sync.Make (S) in
        let module ShOp = Sharded.Make (Key) (S) (OpInner) in
        check "op-based inner declines crash" false
          ShOp.capabilities.Protocol_intf.tolerates_crash);
    Alcotest.test_case "a restarted node asks neighbors for key manifests"
      `Quick (fun () ->
        let n = Sh.recover (Sh.crash (Sh.init ~id:1 ~neighbors:[ 0; 2 ] ~total:3)) in
        let probe n =
          let n, msgs = Sh.tick n in
          let reqs =
            List.filter (fun (_, m) -> Sh.metadata_weight m = 1 && Sh.payload_weight m = 0) msgs
          in
          (n, List.map fst reqs |> List.sort compare)
        in
        let n, dests = probe n in
        check "one request per neighbor" true (dests = [ 0; 2 ]);
        (* unanswered requests are retried on the next tick. *)
        let _, dests = probe n in
        check "retried until answered" true (dests = [ 0; 2 ]));
    Alcotest.test_case "manifests resurrect objects created during downtime"
      `Quick (fun () ->
        let a = Sh.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let b = Sh.init ~id:1 ~neighbors:[ 0 ] ~total:2 in
        let a = Sh.local_update a (1, "x") in
        let a, b = drain ~down:[] a b in
        check "warmed up" true (Sh.equal_states (Sh.state a) (Sh.state b));
        (* B goes down; A creates a brand-new object meanwhile.  All
           traffic to B is discarded while it is down. *)
        let b = Sh.crash b in
        let a = Sh.local_update a (2, "y") in
        let a, b = drain ~down:[ 1 ] a b in
        let b = Sh.recover b in
        let a, b = drain ~down:[] a b in
        check "converged after restart" true
          (Sh.equal_states (Sh.state a) (Sh.state b));
        check "restarted node learned the new key" true
          (S.mem "y" (List.assoc 2 (Sh.state b))));
  ]

module R = Runner.Make (Sh)

let convergence_tests =
  [
    Alcotest.test_case "sharded replicas converge across a mesh" `Quick
      (fun () ->
        let topo = Topology.partial_mesh 6 in
        let res =
          R.run ~equal:Sh.equal_states ~topology:topo ~rounds:8
            ~ops:(fun ~round ~node _ ->
              (* spread updates across 3 objects *)
              [ (round mod 3, Printf.sprintf "e-%d-%d" round node) ])
            ()
        in
        check "converged" true res.R.converged;
        let st = res.R.finals.(0) in
        check_int "three objects" 3 (List.length st);
        check_int "all elements present" (8 * 6)
          (List.fold_left (fun acc (_, s) -> acc + S.cardinal s) 0 st));
    Alcotest.test_case "sharded converges through a crash window" `Quick
      (fun () ->
        let topo = Topology.partial_mesh 6 in
        let faults =
          {
            R.no_faults with
            crashes =
              [ { Fault.victim = 1; crash_round = 2; recover_round = 5 } ];
          }
        in
        let res =
          R.run ~faults ~equal:Sh.equal_states ~topology:topo ~rounds:8
            ~ops:(fun ~round ~node _ ->
              [ (round mod 3, Printf.sprintf "e-%d-%d" round node) ])
            ()
        in
        (if not res.R.converged then
           Array.iteri
             (fun i st ->
               Printf.printf "node %d: %s\n" i
                 (String.concat " "
                    (List.map
                       (fun (k, s) ->
                         Printf.sprintf "%d:{%s}" k
                           (String.concat "," (List.sort compare (S.elements s))))
                       (List.sort compare st))))
             res.R.finals);
        check "converged" true res.R.converged);
    Alcotest.test_case "per-object isolation beats a composed store under
contention skew" `Quick (fun () ->
        (* Contention confined to one object leaves the others' classic
           buffers clean; this is the property that makes Fig. 11 behave. *)
        let module ClassicOne = Delta_sync.Make (S) (Delta_sync.Classic_config) in
        let module ShC = Sharded.Make (Key) (S) (ClassicOne) in
        let module Rc = Runner.Make (ShC) in
        let topo = Topology.partial_mesh 6 in
        let res =
          Rc.run ~equal:ShC.equal_states ~topology:topo ~rounds:8
            ~ops:(fun ~round ~node _ ->
              if node = 0 then [ (0, Printf.sprintf "hot-%d" round) ] else [])
            ()
        in
        check "converged" true res.Rc.converged)
  ]

let () =
  Alcotest.run "sharded"
    [
      ("basics", basics);
      ("equality", equality_tests);
      ("crash", crash_tests);
      ("convergence", convergence_tests);
    ]
