(* Unit tests for the grow-only counter (Fig. 2a). *)

open Crdt_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let a = Replica_id.of_int 0
let b = Replica_id.of_int 1
let c = Replica_id.of_int 2

let basics =
  [
    Alcotest.test_case "fresh counter reads 0" `Quick (fun () ->
        check_int "value" 0 (Gcounter.value Gcounter.bottom));
    Alcotest.test_case "inc tracks per replica" `Quick (fun () ->
        let p = Gcounter.(inc a bottom |> inc a |> inc b) in
        check_int "value" 3 (Gcounter.value p);
        check_int "entry a" 2 (Gcounter.find a p);
        check_int "entry b" 1 (Gcounter.find b p));
    Alcotest.test_case "inc ~n adds n" `Quick (fun () ->
        let p = Gcounter.inc ~n:5 a Gcounter.bottom in
        check_int "value" 5 (Gcounter.value p));
    Alcotest.test_case "inc rejects non-positive amounts" `Quick (fun () ->
        Alcotest.check_raises "zero" (Invalid_argument
          "Gcounter.inc: increment must be >= 1") (fun () ->
            ignore (Gcounter.inc ~n:0 a Gcounter.bottom)));
    Alcotest.test_case "value is the sum over entries" `Quick (fun () ->
        let p = Gcounter.of_list [ (a, 10); (b, 20); (c, 12) ] in
        check_int "value" 42 (Gcounter.value p));
  ]

let join_tests =
  [
    Alcotest.test_case "join keeps per-key maxima (Fig. 2a)" `Quick (fun () ->
        let p1 = Gcounter.of_list [ (a, 3); (b, 1) ] in
        let p2 = Gcounter.of_list [ (a, 1); (c, 4) ] in
        let j = Gcounter.join p1 p2 in
        check_int "a" 3 (Gcounter.find a j);
        check_int "b" 1 (Gcounter.find b j);
        check_int "c" 4 (Gcounter.find c j);
        check_int "value" 8 (Gcounter.value j));
    Alcotest.test_case "concurrent increments are both counted" `Quick
      (fun () ->
        let base = Gcounter.inc a Gcounter.bottom in
        let at_a = Gcounter.inc a base in
        let at_b = Gcounter.inc b base in
        check_int "merged" 3 (Gcounter.value (Gcounter.join at_a at_b)));
    Alcotest.test_case "duplicate delivery is harmless" `Quick (fun () ->
        let p = Gcounter.of_list [ (a, 2) ] in
        let d = Gcounter.inc_delta a p in
        let once = Gcounter.join p d in
        check "idempotent" true (Gcounter.equal once (Gcounter.join once d)));
  ]

let delta_tests =
  [
    Alcotest.test_case "incδ returns only the updated entry (Fig. 2a)" `Quick
      (fun () ->
        let p = Gcounter.of_list [ (a, 3); (b, 9) ] in
        let d = Gcounter.inc_delta a p in
        check_int "one entry" 1 (Gcounter.weight d);
        check_int "entry value" 4 (Gcounter.find a d));
    Alcotest.test_case "m(x) = x ⊔ mδ(x)" `Quick (fun () ->
        let p = Gcounter.of_list [ (a, 3); (b, 9) ] in
        check "contract" true
          (Gcounter.equal (Gcounter.inc a p)
             (Gcounter.join p (Gcounter.inc_delta a p))));
    Alcotest.test_case "mutate/delta_mutate agree through the op type" `Quick
      (fun () ->
        let p = Gcounter.of_list [ (b, 2) ] in
        let via_op = Gcounter.mutate (Gcounter.Inc 3) b p in
        let via_delta =
          Gcounter.join p (Gcounter.delta_mutate (Gcounter.Inc 3) b p)
        in
        check "equal" true (Gcounter.equal via_op via_delta);
        check_int "value" 5 (Gcounter.value via_op));
  ]

let accounting =
  [
    Alcotest.test_case "weight counts map entries (Table I metric)" `Quick
      (fun () ->
        check_int "weight" 2
          (Gcounter.weight (Gcounter.of_list [ (a, 5); (b, 1) ])));
    Alcotest.test_case "byte size: 20B id + 8B counter per entry" `Quick
      (fun () ->
        check_int "bytes" 56
          (Gcounter.byte_size (Gcounter.of_list [ (a, 5); (b, 1) ])));
    Alcotest.test_case "op accounting" `Quick (fun () ->
        check_int "op weight" 1 (Gcounter.op_weight (Gcounter.Inc 1));
        check_int "op bytes" 8 (Gcounter.op_byte_size (Gcounter.Inc 1)));
  ]

let () =
  Alcotest.run "gcounter"
    [
      ("basics", basics);
      ("join", join_tests);
      ("deltas", delta_tests);
      ("accounting", accounting);
    ]
