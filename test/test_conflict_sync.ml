(* ConflictSync behaviour suite: the quiet-link digest detection path,
   the IBLT session, the Bloom escalation, the crash/partition/loss
   fault matrix via the runner, and the durability law.  Protocol
   messages are sealed behind PROTOCOL, so the tests observe behaviour —
   convergence, message counts, accounting weights — not constructors. *)

open Crdt_core
open Crdt_proto
open Crdt_sim
module Workload = Crdt_engine.Workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module Si = Gset.Of_int
module P = Conflict_sync.Make (Si) (Conflict_sync.Default_config)

(* Escalation-happy tuning: the IBLT stream gives up almost immediately,
   so any difference beyond a couple of elements exercises the Bloom
   round (and, when a false positive strikes, the residue session). *)
module Aggressive_config = struct
  let fpr = 0.05
  let chunk0 = 2
  let escalate_cells = 4
  let mismatch_streak = 1
  let quiet_ticks = 1
  let session_timeout = 4
end

module Pa = Conflict_sync.Make (Si) (Aggressive_config)

(* Two-replica harness: tick both nodes each round and deliver the whole
   message wave (including reply cascades) before the next round, like a
   lossless link.  Returns the converged pair and how many rounds it
   took; fails the test if [limit] rounds don't suffice. *)
module Pair (P : sig
  include
    Crdt_proto.Protocol_intf.PROTOCOL with type crdt = Si.t and type op = int
end) =
struct
  let make () =
    ( P.init ~id:0 ~neighbors:[ 1 ] ~total:2,
      P.init ~id:1 ~neighbors:[ 0 ] ~total:2 )

  let converge ?(limit = 32) (a, b) =
    let nodes = [| a; b |] in
    let delivered = ref 0 in
    let round = ref 0 in
    while
      (not (Si.equal (P.state nodes.(0)) (P.state nodes.(1)))) && !round < limit
    do
      incr round;
      let queue = Queue.create () in
      Array.iteri
        (fun i n ->
          let n, msgs = P.tick n in
          nodes.(i) <- n;
          List.iter (fun (d, m) -> Queue.add (i, d, m) queue) msgs)
        nodes;
      (* Drain the wave, cascading replies within the round. *)
      let steps = ref 0 in
      while (not (Queue.is_empty queue)) && !steps < 10_000 do
        incr steps;
        let src, dst, m = Queue.pop queue in
        incr delivered;
        let n, replies = P.handle nodes.(dst) ~src m in
        nodes.(dst) <- n;
        List.iter (fun (d, m') -> Queue.add (dst, d, m') queue) replies
      done
    done;
    if not (Si.equal (P.state nodes.(0)) (P.state nodes.(1))) then
      Alcotest.failf "pair did not converge within %d rounds" limit;
    ((nodes.(0), nodes.(1)), !round, !delivered)
end

module Pair_default = Pair (P)
module Pair_aggr = Pair (Pa)

let add_range p n lo hi =
  let r = ref n in
  for i = lo to hi - 1 do
    r := p !r i
  done;
  !r

(* ------------------------------------------------------------------ *)
(* Digest-driven detection (no crash, no recover hint)                 *)
(* ------------------------------------------------------------------ *)

let detection_tests =
  [
    Alcotest.test_case "identical replicas never open a session" `Quick
      (fun () ->
        let a, b = Pair_default.make () in
        let a = add_range P.local_update a 0 20
        and b = add_range P.local_update b 0 20 in
        (* Same elements on both sides: deltas cross once, digests then
           match forever — a converged pair costs 2 digest messages per
           round and nothing else. *)
        let (_, _), rounds, _ = Pair_default.converge (a, b) in
        check "deltas alone suffice" true (rounds <= 2));
    Alcotest.test_case
      "silent divergence is found by digests alone and repaired" `Quick
      (fun () ->
        (* Divergence with no crash and no in-flight deltas — the only
           path to repair is quiet-link digest mismatch → streak →
           session.  This is the pure detection machinery. *)
        let a, b = Pair_default.make () in
        let a = add_range P.local_update a 0 40 in
        let b = add_range P.local_update b 100 130 in
        (* Burn the δ-buffers while the link is down: tick both, drop
           everything on the floor. *)
        let a = fst (P.tick a) and b = fst (P.tick b) in
        let (a, b), rounds, _ = Pair_default.converge (a, b) in
        check "converged" true (Si.equal (P.state a) (P.state b));
        check_int "union restored" 70 (Si.weight (P.state a));
        (* quiet_ticks=2 + streak=2 means detection needs a few rounds
           but not many; the session itself cascades within one. *)
        check ("repair took " ^ string_of_int rounds ^ " rounds") true
          (rounds >= 2 && rounds <= 10));
    Alcotest.test_case "lower id initiates, higher id only responds" `Quick
      (fun () ->
        (* Symmetric divergence: if both sides initiated we'd see two
           sessions' worth of SyncReq traffic.  The sid namespacing and
           the n.self < src guard make exactly one side open it; we
           observe that the repair converges (and in few rounds — two
           racing sessions would be slower to go quiet). *)
        let a, b = Pair_default.make () in
        let a = add_range P.local_update a 0 10 in
        let b = add_range P.local_update b 50 60 in
        let a = fst (P.tick a) and b = fst (P.tick b) in
        let (a, b), _, _ = Pair_default.converge (a, b) in
        check_int "both hold the union" 20 (Si.weight (P.state a));
        check "equal" true (Si.equal (P.state a) (P.state b)));
  ]

(* ------------------------------------------------------------------ *)
(* Sessions: IBLT path, Bloom escalation, residue                      *)
(* ------------------------------------------------------------------ *)

let session_tests =
  [
    Alcotest.test_case "big one-shot divergence escalates and converges"
      `Quick (fun () ->
        (* ~600 disjoint irreducibles: far past escalate_cells=256 worth
           of decodable difference, so the default config must take the
           Bloom road (and clean up any false-positive residue with a
           follow-up session). *)
        let a, b = Pair_default.make () in
        let a = add_range P.local_update a 0 300 in
        let b = add_range P.local_update b 10_000 10_300 in
        let a = fst (P.tick a) and b = fst (P.tick b) in
        let (a, b), _, _ = Pair_default.converge (a, b) in
        check_int "union of 600" 600 (Si.weight (P.state a));
        check "equal" true (Si.equal (P.state a) (P.state b)));
    Alcotest.test_case "aggressive config forces the Bloom round" `Quick
      (fun () ->
        (* escalate_cells=4 cannot decode a 120-element difference, so
           every repair here goes through BloomReq/BloomResp; fpr=0.05
           makes false-positive residue likely, which the *next* quiet
           mismatch resolves via a fresh (tiny, decodable) session. *)
        let a, b = Pair_aggr.make () in
        let a = add_range Pa.local_update a 0 60 in
        let b = add_range Pa.local_update b 1_000 1_060 in
        let a = fst (Pa.tick a) and b = fst (Pa.tick b) in
        let (a, b), _, _ = Pair_aggr.converge ~limit:48 (a, b) in
        check_int "union of 120" 120 (Si.weight (Pa.state a));
        check "equal" true (Si.equal (Pa.state a) (Pa.state b)));
    Alcotest.test_case "Bloom FP residue is repaired while traffic flows"
      `Quick (fun () ->
        (* The quiet-link trigger's blind spot: a Bloom-escalated
           session leaves false-positive residue (fpr=0.05 over a
           60-element difference makes a collision near-certain), and
           from the next round on the workload keeps delta traffic
           flowing — so the link is never quiet again, the mismatch
           streak is cleared every round, and BP delta groups never
           re-carry old elements.  Only the post-escalation mark can
           repair the residue: having just run a lossy Bloom round, one
           digest mismatch must force a follow-up session immediately.

           Round 0 (quiet): mismatch → session → IBLT gives up at 4
           cells → Bloom round → residue; everything cascades within
           the round.  Rounds 1..: one fresh op per replica per round,
           delivered losslessly, so at each round end the states are
           equal iff the residue is gone. *)
        let a, b = Pair_aggr.make () in
        let a = add_range Pa.local_update a 0 30 in
        let b = add_range Pa.local_update b 1_000 1_030 in
        (* burn the δ-buffers: the only repair path is a session *)
        let a = fst (Pa.tick a) and b = fst (Pa.tick b) in
        let nodes = [| a; b |] in
        let equal () = Si.equal (Pa.state nodes.(0)) (Pa.state nodes.(1)) in
        let next = ref 2_000_000 in
        let round ~with_ops =
          if with_ops then begin
            Array.iteri
              (fun i n -> nodes.(i) <- Pa.local_update n (!next + i))
              nodes;
            next := !next + 2
          end;
          let queue = Queue.create () in
          Array.iteri
            (fun i n ->
              let n, msgs = Pa.tick n in
              nodes.(i) <- n;
              List.iter (fun (d, m) -> Queue.add (i, d, m) queue) msgs)
            nodes;
          let steps = ref 0 in
          while (not (Queue.is_empty queue)) && !steps < 10_000 do
            incr steps;
            let src, dst, m = Queue.pop queue in
            let n, replies = Pa.handle nodes.(dst) ~src m in
            nodes.(dst) <- n;
            List.iter (fun (d, m') -> Queue.add (dst, d, m') queue) replies
          done
        in
        round ~with_ops:false;
        check "Bloom round left false-positive residue" false (equal ());
        let converged_at = ref None in
        for r = 1 to 24 do
          round ~with_ops:true;
          if !converged_at = None && equal () then converged_at := Some r
        done;
        match !converged_at with
        | None ->
            Alcotest.fail
              "false-positive residue was never repaired under traffic"
        | Some r ->
            check
              (Printf.sprintf "follow-up session repaired at round %d" r)
              true (r <= 4));
    Alcotest.test_case "session cost scales with the difference, not state"
      `Quick (fun () ->
        (* The headline claim at unit scale: same 2000-element base,
           small vs large divergence — message traffic for the small
           repair must be well under the large one. *)
        let repair gap =
          let a, b = Pair_default.make () in
          let a = add_range P.local_update a 0 2_000 in
          let b = add_range P.local_update b 0 2_000 in
          let (a, b), _, _ = Pair_default.converge (a, b) in
          let a = add_range P.local_update a 50_000 (50_000 + gap) in
          let a = fst (P.tick a) and b = fst (P.tick b) in
          let (a, b), _, delivered = Pair_default.converge (a, b) in
          check "equal" true (Si.equal (P.state a) (P.state b));
          delivered
        in
        let small = repair 4 and large = repair 400 in
        check
          (Printf.sprintf "small repair (%d msgs) < large repair (%d msgs)"
             small large)
          true (small < large));
  ]

(* ------------------------------------------------------------------ *)
(* Fault matrix via the runner                                         *)
(* ------------------------------------------------------------------ *)

module R = Runner.Make (P)

let go ?(quiesce_limit = 64) ~faults ~topology ~rounds () =
  R.run ~faults ~quiesce_limit ~equal:Si.equal ~topology ~rounds
    ~ops:(fun ~round ~node _ ->
      Workload.gset ~nodes:(Topology.size topology) ~round ~node ())
    ()

let converges_to ?quiesce_limit ~faults ~topology ~rounds ~expect_weight name =
  let res = go ?quiesce_limit ~faults ~topology ~rounds () in
  check (name ^ ": converged") true res.R.converged;
  check_int (name ^ ": final weight") expect_weight (Si.weight res.R.finals.(0))

let fault_tests =
  let mesh = Topology.partial_mesh 8 in
  [
    Alcotest.test_case "declares full fault tolerance" `Quick (fun () ->
        let open Crdt_proto.Protocol_intf in
        let c = P.capabilities in
        check "all four classes" true
          (c.tolerates_drop && c.tolerates_partition && c.tolerates_delay
         && c.tolerates_crash));
    Alcotest.test_case "converges after crash-restart" `Quick (fun () ->
        let faults =
          {
            Fault.none with
            Fault.crashes =
              [ Fault.crash ~victim:3 ~crash_round:2 ~recover_round:6 ];
          }
        in
        converges_to ~faults ~topology:mesh ~rounds:10
          ~expect_weight:((8 * 10) - 4) "crash");
    Alcotest.test_case "converges after partition-heal" `Quick (fun () ->
        let faults =
          {
            Fault.none with
            Fault.partitions =
              [ Fault.partition ~from_round:2 ~heal_round:6 [ [ 0; 1; 2 ] ] ];
          }
        in
        converges_to ~faults ~topology:mesh ~rounds:10 ~expect_weight:(8 * 10)
          "partition");
    Alcotest.test_case "converges through 20% loss" `Quick (fun () ->
        let faults = { Fault.none with Fault.drop = 0.2; seed = 7 } in
        converges_to ~faults ~topology:mesh ~rounds:8 ~expect_weight:(8 * 8)
          "loss");
    Alcotest.test_case "converges under per-link delay" `Quick (fun () ->
        let faults =
          {
            Fault.none with
            Fault.delays =
              [
                Fault.delay ~src:0 ~dst:1 ~hold:2;
                Fault.delay ~src:4 ~dst:2 ~hold:3;
              ];
          }
        in
        converges_to ~faults ~topology:(Topology.full_mesh 6) ~rounds:8
          ~expect_weight:(6 * 8) "delay");
    Alcotest.test_case "survives the combined storm" `Quick (fun () ->
        let faults =
          {
            Fault.drop = 0.15;
            duplicate = 0.2;
            shuffle = true;
            seed = 21;
            partitions =
              [ Fault.partition ~from_round:1 ~heal_round:4 [ [ 0; 1 ] ] ];
            delays = [ Fault.delay ~src:2 ~dst:3 ~hold:2 ];
            crashes =
              [ Fault.crash ~victim:5 ~crash_round:3 ~recover_round:7 ];
          }
        in
        converges_to ~faults ~topology:mesh ~rounds:12
          ~expect_weight:((8 * 12) - 4) "storm");
    Alcotest.test_case "sync_rounds and digest_bytes are accounted" `Quick
      (fun () ->
        (* A crash forces a reconciliation session after recovery, so
           the run must record control rounds and non-zero digest bytes
           in the new counters. *)
        let faults =
          {
            Fault.none with
            Fault.crashes =
              [ Fault.crash ~victim:3 ~crash_round:2 ~recover_round:6 ];
          }
        in
        let res = go ~faults ~topology:mesh ~rounds:10 () in
        let s = R.full_summary res in
        check "sync rounds counted" true (s.Metrics.total_sync_rounds > 0);
        check "digest bytes counted" true (s.Metrics.total_digest_bytes > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Durability law                                                      *)
(* ------------------------------------------------------------------ *)

let law_tests =
  [
    Alcotest.test_case "state survives crash + recover" `Quick (fun () ->
        let n = P.init ~id:0 ~neighbors:[ 1; 2 ] ~total:3 in
        let n = List.fold_left P.local_update n [ 7; 11; 13 ] in
        let before = P.state n in
        let crashed = P.crash n in
        check "durable through crash" true (Si.equal before (P.state crashed));
        check "durable through recover" true
          (Si.equal before (P.state (P.recover crashed))));
    Alcotest.test_case "recover initiates resync with every neighbor" `Quick
      (fun () ->
        (* After recover, the node must not wait for digest detection:
           the first tick opens a session with each neighbor (2 extra
           non-digest messages here). *)
        let n = P.init ~id:0 ~neighbors:[ 1; 2 ] ~total:3 in
        let n = P.recover (P.crash n) in
        let _, msgs = P.tick n in
        (* 2 digests + 2 sync requests. *)
        check_int "digests plus a SyncReq per neighbor" 4 (List.length msgs));
  ]

let () =
  Alcotest.run "conflict_sync"
    [
      ("detection", detection_tests);
      ("sessions", session_tests);
      ("fault matrix", fault_tests);
      ("durability", law_tests);
    ]
