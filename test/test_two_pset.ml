(* Unit tests for the two-phase set. *)

open Crdt_core
module T = Two_pset.Make (Powerset.String_elt)

let check = Alcotest.(check bool)
let i = Replica_id.of_int 0
let j = Replica_id.of_int 1

let semantics =
  [
    Alcotest.test_case "add then mem" `Quick (fun () ->
        let s = T.add "x" i T.bottom in
        check "mem" true (T.mem "x" s));
    Alcotest.test_case "remove wins over add" `Quick (fun () ->
        let s = T.add "x" i T.bottom in
        let s = T.remove "x" i s in
        check "gone" false (T.mem "x" s);
        Alcotest.(check (list string)) "value" [] (T.value s));
    Alcotest.test_case "removed elements cannot come back" `Quick (fun () ->
        let s = T.remove "x" i (T.add "x" i T.bottom) in
        let s = T.add "x" i s in
        check "still gone" false (T.mem "x" s));
    Alcotest.test_case "concurrent add/remove converge to removed" `Quick
      (fun () ->
        let base = T.add "x" i T.bottom in
        let removed = T.remove "x" i base in
        let readd = T.add "x" j base in
        let m = T.join removed readd in
        check "remove wins" false (T.mem "x" m);
        check "commutes" true (T.equal m (T.join readd removed)));
  ]

let delta_tests =
  [
    Alcotest.test_case "re-add delta is bottom" `Quick (fun () ->
        let s = T.add "x" i T.bottom in
        check "bottom" true (T.is_bottom (T.delta_mutate (T.Add "x") i s)));
    Alcotest.test_case "re-remove delta is bottom" `Quick (fun () ->
        let s = T.remove "x" i T.bottom in
        check "bottom" true (T.is_bottom (T.delta_mutate (T.Remove "x") i s)));
    Alcotest.test_case "m(x) = x ⊔ mδ(x)" `Quick (fun () ->
        let s = T.add "a" i (T.remove "b" i T.bottom) in
        List.iter
          (fun op ->
            check "contract" true
              (T.equal (T.mutate op i s) (T.join s (T.delta_mutate op i s))))
          [ T.Add "a"; T.Add "c"; T.Remove "a"; T.Remove "b" ]);
  ]

let () =
  Alcotest.run "two_pset" [ ("semantics", semantics); ("deltas", delta_tests) ]
