(* Engine-layer tests: the protocol × CRDT registry, the replica driver,
   and the trace layer.

   The headline check is registry exhaustiveness: every registered
   protocol instantiates against every registered CRDT (minus the
   registry's own declared exclusions), ticks, and moves a message
   between two driver replicas.  That is what backs the claim that
   `crdtsync serve` accepts any registered cell — a protocol added to
   the registry is covered here without edits. *)

open Crdt_sim
module Registry = Crdt_engine.Registry
module Trace = Crdt_engine.Trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~needle hay =
  let ls = String.length needle and lm = String.length hay in
  let rec go i = i + ls <= lm && (String.sub hay i ls = needle || go (i + 1)) in
  go 0

(* -- registry surface --------------------------------------------------- *)

let expected_protocols =
  [
    "state-based"; "delta-classic"; "delta-bp"; "delta-rr"; "delta-bp+rr";
    "delta-bp+rr-ack"; "scuttlebutt"; "scuttlebutt-gc"; "op-based"; "merkle";
    "conflict-sync";
  ]

let expected_crdts = [ "gset"; "gcounter"; "gmap"; "orset" ]

let surface =
  [
    Alcotest.test_case "protocol catalogue and its order are stable" `Quick
      (fun () ->
        Alcotest.(check (list string))
          "names" expected_protocols Registry.protocol_names);
    Alcotest.test_case "crdt catalogue is stable" `Quick (fun () ->
        Alcotest.(check (list string)) "names" expected_crdts Registry.crdt_names);
    Alcotest.test_case "registry names match the protocol instances" `Quick
      (fun () ->
        (* The registry hardcodes the display name next to the functor;
           this pins them together so they cannot drift. *)
        List.iter
          (fun maker ->
            let module P =
              (val Registry.instantiate maker
                     (module Crdt_core.Gcounter : Crdt_proto.Protocol_intf.CRDT
                       with type t = Crdt_core.Gcounter.t
                        and type op = Crdt_core.Gcounter.op))
            in
            check_string "name" (Registry.protocol_name maker) P.protocol_name)
          Registry.protocols);
    Alcotest.test_case "find_protocol rejects unknown names helpfully" `Quick
      (fun () ->
        check "raises" true
          (try
             ignore (Registry.find_protocol "gossip");
             false
           with Invalid_argument msg ->
             contains ~needle:"gossip" msg
             && contains ~needle:"delta-bp+rr" msg));
    Alcotest.test_case "find_crdt rejects unknown names helpfully" `Quick
      (fun () ->
        check "raises" true
          (try
             ignore (Registry.find_crdt "rga");
             false
           with Invalid_argument msg ->
             contains ~needle:"rga" msg && contains ~needle:"gset" msg));
    Alcotest.test_case "capabilities are readable for every protocol" `Quick
      (fun () ->
        List.iter
          (fun maker ->
            let caps = Registry.capabilities maker in
            (* BP+RR-ack declares loss tolerance; plain BP+RR does not. *)
            match Registry.protocol_name maker with
            | "delta-bp+rr-ack" ->
                check "ack tolerates drop" true
                  caps.Crdt_proto.Protocol_intf.tolerates_drop
            | "delta-bp+rr" ->
                check "bp+rr no drop" false
                  caps.Crdt_proto.Protocol_intf.tolerates_drop
            | _ -> ())
          Registry.protocols);
  ]

(* -- exhaustiveness: every cell instantiates and exchanges a message ---- *)

(* One protocol × CRDT cell: build two driver replicas, apply the
   registry's serve workload on one, tick it, deliver its messages to
   the other.  Replies are delivered back so digest/pairs protocols
   exercise their full exchange. *)
let smoke_cell (spec : Registry.crdt_spec) (maker : Registry.proto) =
  let module S = (val spec) in
  let module P =
    (val Registry.instantiate maker
           (module S.C : Crdt_proto.Protocol_intf.CRDT
             with type t = S.C.t
              and type op = S.C.op))
  in
  let module D = Crdt_engine.Driver.Make (P) in
  let counters = Trace.make_counters () in
  let sink = Trace.counting counters in
  let a = D.create ~sink ~id:0 ~neighbors:[ 1 ] ~total:2 () in
  let b = D.create ~sink ~id:1 ~neighbors:[ 0 ] ~total:2 () in
  let applied = D.apply a (S.serve_ops ~id:0 ~tick:0 (D.state a)) in
  check "cell applies ops" true (applied > 0);
  (* Run a few tick/deliver rounds so at least one protocol message
     crosses (scuttlebutt needs digest → pairs, merkle root → walk). *)
  let drivers = [| a; b |] in
  let inbox = [| Queue.create (); Queue.create () |] in
  for round = 0 to 3 do
    Array.iteri
      (fun i d ->
        D.tick d ~round ~emit:(fun ~dest msg ->
            check_int "dest in range" (1 - i) dest;
            Queue.add (i, msg) inbox.(dest)))
      drivers;
    Array.iteri
      (fun i q ->
        while not (Queue.is_empty q) do
          let src, msg = Queue.pop q in
          D.deliver drivers.(i) ~round ~src
            ~emit:(fun ~dest msg -> Queue.add (i, msg) inbox.(dest))
            msg
        done)
      inbox
  done;
  check "cell moved messages" true (counters.Trace.messages > 0);
  check "cell delivered" true (counters.Trace.delivered > 0)

let exhaustive =
  List.concat_map
    (fun spec ->
      let module S = (val spec : Registry.CRDT_SPEC) in
      List.filter_map
        (fun maker ->
          let proto = Registry.protocol_name maker in
          match S.excluded proto with
          | Some _ -> None
          | None ->
              Some
                (Alcotest.test_case
                   (Printf.sprintf "%s × %s" proto S.name)
                   `Quick
                   (fun () -> smoke_cell spec maker)))
        Registry.protocols)
    Registry.crdts

let exclusions =
  [
    Alcotest.test_case "no cell is excluded (orset runs op-based)" `Quick
      (fun () ->
        (* The orset workload removes a deterministically named element
           (node 0's own add from three rounds earlier), so op-based
           replay reproduces it and the old exclusion is gone: the full
           protocol × CRDT matrix is live. *)
        List.iter
          (fun spec ->
            let module S = (val spec : Registry.CRDT_SPEC) in
            List.iter
              (fun proto ->
                let p = Registry.protocol_name proto in
                check
                  (Printf.sprintf "%s x %s allowed" p S.name)
                  true
                  (Option.is_none (S.excluded p)))
              Registry.protocols)
          Registry.crdts);
  ]

(* -- driver state machine ----------------------------------------------- *)

module Gc = Crdt_core.Gcounter

let driver =
  [
    Alcotest.test_case "apply counts ops and sets dirty" `Quick (fun () ->
        let maker = Registry.find_protocol "state-based" in
        let module P =
          (val Registry.instantiate maker
                 (module Gc : Crdt_proto.Protocol_intf.CRDT
                   with type t = Gc.t
                    and type op = Gc.op))
        in
        let module D = Crdt_engine.Driver.Make (P) in
        let d = D.create ~id:0 ~neighbors:[ 1 ] ~total:2 () in
        check "fresh not dirty" false (D.dirty d);
        check_int "applied" 2 (D.apply d [ Gc.Inc 1; Gc.Inc 2 ]);
        check "dirty after apply" true (D.dirty d);
        D.clear_dirty d;
        check "cleared" false (D.dirty d);
        check_int "cumulative" 2 (D.ops_applied d));
    Alcotest.test_case "crash makes the replica dark" `Quick (fun () ->
        let maker = Registry.find_protocol "state-based" in
        let module P =
          (val Registry.instantiate maker
                 (module Gc : Crdt_proto.Protocol_intf.CRDT
                   with type t = Gc.t
                    and type op = Gc.op))
        in
        let module D = Crdt_engine.Driver.Make (P) in
        let d = D.create ~id:0 ~neighbors:[ 1 ] ~total:2 () in
        D.crash d ~round:1;
        check "down" true (D.down d);
        check_int "no ops while down" 0 (D.apply d [ Gc.Inc 1 ]);
        let sent = ref 0 in
        D.tick d ~round:1 ~emit:(fun ~dest:_ _ -> incr sent);
        check_int "no tick traffic while down" 0 !sent;
        D.recover d ~round:2;
        check "up" false (D.down d);
        check "dirty after recover" true (D.dirty d));
    Alcotest.test_case "changed-based dirty tracking on delivery" `Quick
      (fun () ->
        let maker = Registry.find_protocol "state-based" in
        let module P =
          (val Registry.instantiate maker
                 (module Gc : Crdt_proto.Protocol_intf.CRDT
                   with type t = Gc.t
                    and type op = Gc.op))
        in
        let module D = Crdt_engine.Driver.Make (P) in
        let changed a b = not (Gc.equal a b) in
        let a = D.create ~id:0 ~neighbors:[ 1 ] ~total:2 () in
        let b = D.create ~changed ~id:1 ~neighbors:[ 0 ] ~total:2 () in
        ignore (D.apply a [ Gc.Inc 5 ]);
        let inbox = Queue.create () in
        D.tick a ~round:0 ~emit:(fun ~dest:_ msg -> Queue.add msg inbox);
        check "a sent its state" false (Queue.is_empty inbox);
        D.deliver b ~round:0 ~src:0
          ~emit:(fun ~dest:_ _ -> ())
          (Queue.pop inbox);
        check "b dirty after inflating delivery" true (D.dirty b);
        D.clear_dirty b;
        (* Redelivering the same state is idempotent: no dirt. *)
        ignore (D.apply a []);
        let inbox2 = Queue.create () in
        D.tick a ~round:1 ~emit:(fun ~dest:_ msg -> Queue.add msg inbox2);
        D.deliver b ~round:1 ~src:0
          ~emit:(fun ~dest:_ _ -> ())
          (Queue.pop inbox2);
        check "idempotent delivery leaves b clean" false (D.dirty b));
  ]

(* -- trace layer -------------------------------------------------------- *)

let trace =
  [
    Alcotest.test_case "counting sink implements the Metrics discipline"
      `Quick (fun () ->
        let c = Trace.make_counters () in
        let s = Trace.counting c in
        s.Trace.send ~src:0 ~dest:1 ~round:0 ~weight:9 ~metadata:9
          ~payload_bytes:9 ~metadata_bytes:9 ~wire_bytes:9;
        check_int "send only bumps sent" 0 c.Trace.messages;
        check_int "sent" 1 c.Trace.sent;
        s.Trace.recv ~node:1 ~src:0 ~round:0 ~weight:2 ~metadata:3
          ~payload_bytes:16 ~metadata_bytes:24 ~wire_bytes:11;
        check_int "messages" 1 c.Trace.messages;
        check_int "payload" 2 c.Trace.payload;
        check_int "metadata" 3 c.Trace.metadata;
        check_int "payload_bytes" 16 c.Trace.payload_bytes;
        check_int "metadata_bytes" 24 c.Trace.metadata_bytes;
        check_int "wire_bytes" 11 c.Trace.wire_bytes;
        s.Trace.deliver ~node:1 ~src:0 ~round:0;
        s.Trace.deliver ~node:1 ~src:0 ~round:0;
        check_int "delivered (duplication)" 2 c.Trace.delivered;
        s.Trace.drop ~node:1 ~src:0 ~round:0;
        s.Trace.hold ~node:1 ~src:0 ~round:0;
        s.Trace.cut ~node:1 ~src:0 ~round:0;
        check_int "dropped" 1 c.Trace.dropped;
        check_int "held" 1 c.Trace.held;
        check_int "partitioned" 1 c.Trace.partitioned;
        Trace.reset_counters c;
        check_int "reset" 0 c.Trace.messages);
    Alcotest.test_case "tee fans out and widens detail" `Quick (fun () ->
        let c1 = Trace.make_counters () and c2 = Trace.make_counters () in
        let t = Trace.tee (Trace.counting c1) (Trace.counting c2) in
        check "counting sinks are cheap" false t.Trace.detailed;
        let detailed =
          Trace.tee (Trace.counting c1) (Trace.event_sink (fun _ -> ()))
        in
        check "event sink forces detail" true detailed.Trace.detailed;
        t.Trace.recv ~node:0 ~src:1 ~round:0 ~weight:1 ~metadata:0
          ~payload_bytes:8 ~metadata_bytes:0 ~wire_bytes:6;
        check_int "both counted" 1 c1.Trace.messages;
        check_int "both counted'" 1 c2.Trace.messages);
    Alcotest.test_case "events serialize to one-line JSON" `Quick (fun () ->
        check_string "send"
          {|{"ev":"send","src":0,"dest":2,"round":7,"weight":1,"metadata":0,"payload_bytes":8,"metadata_bytes":0,"wire_bytes":6}|}
          (Trace.event_to_json
             (Trace.Send
                {
                  src = 0;
                  dest = 2;
                  round = 7;
                  weight = 1;
                  metadata = 0;
                  payload_bytes = 8;
                  metadata_bytes = 0;
                  wire_bytes = 6;
                }));
        check_string "meta escapes"
          {|{"ev":"meta","note":"a\"b\nc"}|}
          (Trace.event_to_json (Trace.Meta { note = "a\"b\nc" })));
    Alcotest.test_case "event sink sees the full driver cycle" `Quick
      (fun () ->
        let events = ref [] in
        let sink = Trace.event_sink (fun e -> events := e :: !events) in
        let maker = Registry.find_protocol "delta-bp+rr" in
        let module P =
          (val Registry.instantiate maker
                 (module Gc : Crdt_proto.Protocol_intf.CRDT
                   with type t = Gc.t
                    and type op = Gc.op))
        in
        let module D = Crdt_engine.Driver.Make (P) in
        let a = D.create ~sink ~id:0 ~neighbors:[ 1 ] ~total:2 () in
        let b = D.create ~sink ~id:1 ~neighbors:[ 0 ] ~total:2 () in
        ignore (D.apply a [ Gc.Inc 1 ]);
        let inbox = Queue.create () in
        D.tick a ~round:0 ~emit:(fun ~dest:_ msg -> Queue.add msg inbox);
        Queue.iter
          (fun msg ->
            D.deliver b ~round:0 ~src:0 ~emit:(fun ~dest:_ _ -> ()) msg)
          inbox;
        D.finish b ~round:1;
        let kinds =
          List.rev_map
            (function
              | Trace.Tick _ -> `Tick
              | Trace.Send _ -> `Send
              | Trace.Recv _ -> `Recv
              | Trace.Deliver _ -> `Deliver
              | Trace.Done _ -> `Done
              | _ -> `Other)
            !events
        in
        check "tick seen" true (List.mem `Tick kinds);
        check "send seen" true (List.mem `Send kinds);
        check "recv seen" true (List.mem `Recv kinds);
        check "deliver seen" true (List.mem `Deliver kinds);
        check "done seen" true (List.mem `Done kinds);
        (* Send events carry real costs because the event sink is
           detailed. *)
        check "send costs computed" true
          (List.exists
             (function
               | Trace.Send { wire_bytes; _ } -> wire_bytes > 0
               | _ -> false)
             !events));
  ]

(* -- one accounting path: trace totals = Metrics totals ----------------- *)

let accounting =
  [
    Alcotest.test_case "a user sink's tallies equal the Metrics summary"
      `Quick (fun () ->
        let module Si = Crdt_core.Gset.Of_int in
        let maker = Registry.find_protocol "delta-bp+rr" in
        let module P =
          (val Registry.instantiate maker
                 (module Si : Crdt_proto.Protocol_intf.CRDT
                   with type t = Si.t
                    and type op = Si.op))
        in
        let module R = Runner.Make (P) in
        let seen = Trace.make_counters () in
        let res =
          R.run ~bytes:Metrics.Exact ~sink:(Trace.counting seen)
            ~equal:Si.equal
            ~topology:(Topology.ring 4) ~rounds:5
            ~ops:(fun ~round ~node _ -> [ (round * 100) + node ])
            ()
        in
        let s = R.full_summary res in
        check "converged" true res.R.converged;
        check_int "messages" s.Metrics.total_messages seen.Trace.messages;
        check_int "payload" s.Metrics.total_payload seen.Trace.payload;
        check_int "wire bytes" s.Metrics.total_wire_bytes seen.Trace.wire_bytes);
    Alcotest.test_case "a sink requires the sequential engine" `Quick
      (fun () ->
        let module Si = Crdt_core.Gset.Of_int in
        let maker = Registry.find_protocol "delta-bp+rr" in
        let module P =
          (val Registry.instantiate maker
                 (module Si : Crdt_proto.Protocol_intf.CRDT
                   with type t = Si.t
                    and type op = Si.op))
        in
        let module R = Runner.Make (P) in
        check "raises" true
          (try
             ignore
               (R.run ~domains:2 ~sink:Trace.null ~equal:Si.equal
                  ~topology:(Topology.ring 4) ~rounds:2
                  ~ops:(fun ~round:_ ~node _ -> [ node ])
                  ());
             false
           with Invalid_argument _ -> true));
  ]

let () =
  Alcotest.run "engine registry"
    [
      ("registry surface", surface);
      ("protocol × CRDT exhaustiveness", exhaustive);
      ("exclusions", exclusions);
      ("driver", driver);
      ("trace", trace);
      ("accounting", accounting);
    ]
