(* Tests for lib/digest: the shared hashing story, the Bloom filter and
   the rateless IBLT underneath conflict-sync, plus a byte-compat
   regression pinning that extracting the merkle digest helpers into
   lib/digest did not change a single wire byte of the merkle protocol. *)

open Crdt_core
open Crdt_proto
module Codec = Crdt_wire.Codec
module Hash = Crdt_digest.Hash
module Bloom = Crdt_digest.Bloom
module Iblt = Crdt_digest.Iblt

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Hash                                                                *)
(* ------------------------------------------------------------------ *)

let hash_tests =
  [
    Alcotest.test_case "of_value hashes the wire encoding" `Quick (fun () ->
        List.iter
          (fun v ->
            check_int "of_value = of_string . encode"
              (Hash.of_string (Codec.encode_to_string Codec.varint v))
              (Hash.of_value Codec.varint v))
          [ 0; 1; 127; 128; 300_000; max_int ]);
    Alcotest.test_case "keys are positive and nonzero" `Quick (fun () ->
        (* Zero is reserved for empty IBLT/Bloom sums, so no input may
           hash to it, and negative keys would break varint encoding. *)
        for i = 0 to 10_000 do
          let k = Hash.of_string (string_of_int i) in
          if k <= 0 then Alcotest.failf "key %d for input %d" k i
        done;
        check "empty string hashes fine" true (Hash.of_string "" > 0));
    Alcotest.test_case "derive gives independent functions per salt" `Quick
      (fun () ->
        let h = Hash.of_string "some-irreducible" in
        let salts = [ 0; 1; 101; 202; 303; 404 ] in
        let derived = List.map (fun s -> Hash.derive ~salt:s h) salts in
        let distinct = List.sort_uniq compare derived in
        check_int "no salt collisions on a sample key" (List.length salts)
          (List.length distinct);
        check_int "derive is deterministic"
          (Hash.derive ~salt:7 h) (Hash.derive ~salt:7 h));
    Alcotest.test_case "combine is order-independent" `Quick (fun () ->
        let keys = List.init 100 (fun i -> Hash.of_string (string_of_int i)) in
        let fold ks = List.fold_left Hash.combine 0 ks in
        check_int "reversed fold agrees" (fold keys) (fold (List.rev keys));
        let shuffled =
          List.sort (fun a b -> compare (Hash.mix a) (Hash.mix b)) keys
        in
        check_int "shuffled fold agrees" (fold keys) (fold shuffled);
        check "digest distinguishes sets" true
          (fold keys <> fold (List.tl keys)));
  ]

(* ------------------------------------------------------------------ *)
(* Bloom                                                               *)
(* ------------------------------------------------------------------ *)

let member_keys n = List.init n (fun i -> Hash.of_string ("member-" ^ string_of_int i))
let probe_keys n = List.init n (fun i -> Hash.of_string ("probe-" ^ string_of_int i))

let bloom_tests =
  [
    Alcotest.test_case "no false negatives at n=10000" `Quick (fun () ->
        let keys = member_keys 10_000 in
        let t = Bloom.of_keys ~fpr:0.01 keys in
        check "every inserted key is a member" true
          (List.for_all (Bloom.mem t) keys));
    Alcotest.test_case "measured FPR within 2x of configured" `Quick
      (fun () ->
        (* 10k members, 10k disjoint probes, fpr=0.01: expect ~100 false
           positives; 200 is a >10-sigma bound, so a failure means the
           sizing math or double hashing regressed, not bad luck. *)
        let t = Bloom.of_keys ~fpr:0.01 (member_keys 10_000) in
        let fps =
          List.length (List.filter (Bloom.mem t) (probe_keys 10_000))
        in
        if fps > 200 then
          Alcotest.failf "%d false positives on 10k probes (limit 200)" fps);
    Alcotest.test_case "codec roundtrips the exact bit array" `Quick
      (fun () ->
        let t = Bloom.of_keys ~fpr:0.02 (member_keys 500) in
        let enc = Codec.encode_to_string Bloom.codec t in
        match Codec.decode_string Bloom.codec enc with
        | Error e -> Alcotest.failf "decode: %s" (Codec.error_to_string e)
        | Ok t' ->
            check "same membership" true
              (List.for_all (Bloom.mem t') (member_keys 500));
            check "re-encode is byte-identical" true
              (String.equal enc (Codec.encode_to_string Bloom.codec t')));
    Alcotest.test_case "truncated encoding is rejected" `Quick (fun () ->
        let t = Bloom.of_keys ~fpr:0.01 (member_keys 100) in
        let enc = Codec.encode_to_string Bloom.codec t in
        let cut = String.sub enc 0 (String.length enc - 1) in
        match Codec.decode_string Bloom.codec cut with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "truncated bloom decoded");
  ]

(* ------------------------------------------------------------------ *)
(* IBLT                                                                *)
(* ------------------------------------------------------------------ *)

(* Distinct positive keys from an int list (the generators below produce
   arbitrary ints; keys must be hashed to the 63-bit key space). *)
let keys_of_ints ints =
  List.sort_uniq compare (List.map (fun i -> Hash.of_string (string_of_int i)) ints)

(* Decode a difference by streaming prefixes of doubling length, exactly
   like a conflict-sync session: any prefix is a valid IBLT, and decode
   must land before the table is ~4x the difference.  Returns the signed
   symmetric difference as sorted lists. *)
let decode_with_doubling ~a_keys ~b_keys =
  let diff =
    List.length (List.filter (fun k -> not (List.mem k b_keys)) a_keys)
    + List.length (List.filter (fun k -> not (List.mem k a_keys)) b_keys)
  in
  let rec go len =
    if len > 4096 then None
    else
      let d =
        Iblt.sub
          (Iblt.build ~keys:a_keys ~lo:0 ~len)
          (Iblt.build ~keys:b_keys ~lo:0 ~len)
      in
      match Iblt.peel d with
      | Some (plus, minus) ->
          Some (List.sort compare plus, List.sort compare minus, len)
      | None -> go (len * 2)
  in
  go (max 8 diff)

let iblt_tests =
  [
    qtest
      (QCheck.Test.make ~count:100
         ~name:"iblt: peel(build keys) recovers exactly the key set"
         QCheck.(list small_nat)
         (fun ints ->
           let keys = keys_of_ints ints in
           match decode_with_doubling ~a_keys:keys ~b_keys:[] with
           | None -> false
           | Some (plus, minus, _) ->
               plus = List.sort compare keys && minus = []));
    qtest
      (QCheck.Test.make ~count:100
         ~name:"iblt: sub of two tables peels to the symmetric difference"
         QCheck.(triple (list small_nat) (list small_nat) (list small_nat))
         (fun (shared, a_only, b_only) ->
           (* Congruence classes keep the three groups disjoint before
              hashing: 3i+1 / 3i+2 / 3i+3 never collide. *)
           let shared = keys_of_ints (List.map (fun i -> (3 * i) + 1) shared) in
           let a_only = keys_of_ints (List.map (fun i -> (3 * i) + 2) a_only) in
           let b_only = keys_of_ints (List.map (fun i -> (3 * i) + 3) b_only) in
           let a_keys = shared @ a_only and b_keys = shared @ b_only in
           match decode_with_doubling ~a_keys ~b_keys with
           | None -> false
           | Some (plus, minus, _) ->
               plus = List.sort compare a_only
               && minus = List.sort compare b_only));
    qtest
      (QCheck.Test.make ~count:100
         ~name:"iblt: concatenated chunks equal one contiguous build"
         QCheck.(pair (list small_nat) (pair small_nat small_nat))
         (fun (ints, (a, b)) ->
           (* The cell stream ships chunk [0,a) then [a,a+b); receivers
              concatenate.  That only works if chunked construction is
              literally the contiguous prefix. *)
           let keys = keys_of_ints ints in
           let a = 1 + a and b = 1 + b in
           Array.append
             (Iblt.build ~keys ~lo:0 ~len:a)
             (Iblt.build ~keys ~lo:a ~len:b)
           = Iblt.build ~keys ~lo:0 ~len:(a + b)));
    qtest
      (QCheck.Test.make ~count:200 ~name:"iblt: cell codec roundtrips"
         QCheck.(triple small_signed_int small_nat small_nat)
         (fun (count, key_sum, hash_sum) ->
           let c = { Iblt.count; key_sum; hash_sum } in
           match
             Codec.decode_string Iblt.cell_codec
               (Codec.encode_to_string Iblt.cell_codec c)
           with
           | Ok c' -> c = c'
           | Error _ -> false));
    Alcotest.test_case "sub rejects mismatched lengths" `Quick (fun () ->
        let a = Iblt.build ~keys:[ Hash.of_string "x" ] ~lo:0 ~len:8 in
        let b = Iblt.build ~keys:[ Hash.of_string "x" ] ~lo:0 ~len:16 in
        Alcotest.check_raises "invalid_arg"
          (Invalid_argument "Iblt.sub: length mismatch") (fun () ->
            ignore (Iblt.sub a b)));
    Alcotest.test_case "empty difference peels to nothing" `Quick (fun () ->
        let keys = keys_of_ints (List.init 50 Fun.id) in
        let d =
          Iblt.sub
            (Iblt.build ~keys ~lo:0 ~len:8)
            (Iblt.build ~keys ~lo:0 ~len:8)
        in
        match Iblt.peel d with
        | Some ([], []) -> ()
        | Some _ -> Alcotest.fail "phantom difference"
        | None -> Alcotest.fail "identical tables must decode");
  ]

(* ------------------------------------------------------------------ *)
(* Merkle wire byte-compat regression                                  *)
(* ------------------------------------------------------------------ *)

(* The digest helpers merkle is built on were extracted into lib/digest;
   this pins that the extraction (and any future lib/digest change) does
   not alter merkle's wire format.  Two replicas are driven through a
   deterministic divergence-and-reconcile cascade; every message, in
   delivery order, is encoded through the protocol codec and folded into
   one MD5.  The constant below was recorded when the stream was first
   captured — a mismatch means merkle's bytes moved. *)

module Merkle_gset = Merkle_sync.Make (Gset.Of_int) (Merkle_sync.Default_config)

let harvest_merkle_stream () =
  let module P = Merkle_gset in
  let a = ref (P.init ~id:0 ~neighbors:[ 1 ] ~total:2) in
  let b = ref (P.init ~id:1 ~neighbors:[ 0 ] ~total:2) in
  for i = 0 to 40 do
    a := P.local_update !a ((i * 7) + 1)
  done;
  for i = 0 to 40 do
    b := P.local_update !b ((i * 11) + 2)
  done;
  let buf = Buffer.create 4096 in
  let record m = Buffer.add_string buf (Codec.encode_to_string P.message_codec m) in
  let nodes = [| !a; !b |] in
  let queue = Queue.create () in
  let n, msgs = P.tick nodes.(0) in
  nodes.(0) <- n;
  List.iter (fun (d, m) -> Queue.add (0, d, m) queue) msgs;
  let steps = ref 0 in
  while (not (Queue.is_empty queue)) && !steps < 10_000 do
    incr steps;
    let src, dst, m = Queue.pop queue in
    record m;
    let n, replies = P.handle nodes.(dst) ~src m in
    nodes.(dst) <- n;
    List.iter (fun (d, m') -> Queue.add (dst, d, m') queue) replies
  done;
  check "harvest cascade went quiet" true (Queue.is_empty queue);
  check "harvest converged" true
    (Gset.Of_int.equal (P.state nodes.(0)) (P.state nodes.(1)));
  Stdlib.Digest.to_hex (Stdlib.Digest.string (Buffer.contents buf))

let merkle_compat_tests =
  [
    Alcotest.test_case "merkle message stream bytes are pinned" `Quick
      (fun () ->
        Alcotest.(check string)
          "MD5 of the deterministic reconcile stream"
          "079996b6ac4348871f9c4a9926dcc0e2" (harvest_merkle_stream ()));
  ]

let () =
  Alcotest.run "digest"
    [
      ("hash", hash_tests);
      ("bloom", bloom_tests);
      ("iblt", iblt_tests);
      ("merkle byte-compat", merkle_compat_tests);
    ]
