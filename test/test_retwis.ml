(* Tests for the Retwis application: data model queries, the Table II
   operation mix, and end-to-end convergence of the replicated store. *)

open Crdt_core
open Crdt_sim
open Crdt_retwis

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let i0 = Replica_id.of_int 0
let i1 = Replica_id.of_int 1

let model_tests =
  [
    Alcotest.test_case "follow updates the followee's follower set" `Quick
      (fun () ->
        let db = Store.follow ~follower:7 ~followee:3 i0 Store.bottom in
        Alcotest.(check (list int)) "followers" [ 7 ] (Store.followers_of 3 db));
    Alcotest.test_case "post lands on the author's wall" `Quick (fun () ->
        let db =
          Store.post ~author:3 ~tweet_id:"t1" ~content:"hello" i0 Store.bottom
        in
        let wall = Store.wall_of 3 db in
        check_int "one tweet" 1 (User_state.Wall.cardinal wall);
        Alcotest.(check string)
          "content" "hello"
          (Lww_register.value (User_state.Wall.find "t1" wall)));
    Alcotest.test_case "timeline returns the 10 newest, newest first" `Quick
      (fun () ->
        let db =
          List.fold_left
            (fun db ts ->
              Store.push_timeline ~user:1 ~timestamp:ts
                ~tweet_id:(Printf.sprintf "t%d" ts) i0 db)
            Store.bottom
            (List.init 15 (fun k -> k + 1))
        in
        let tl = Store.timeline_of 1 db in
        check_int "limit 10" 10 (List.length tl);
        check_int "newest first" 15 (fst (List.hd tl));
        check "descending" true
          (let rec desc = function
             | (a, _) :: ((b, _) :: _ as rest) -> a > b && desc rest
             | _ -> true
           in
           desc tl));
    Alcotest.test_case "concurrent follows of the same user merge" `Quick
      (fun () ->
        let at_a = Store.follow ~follower:1 ~followee:9 i0 Store.bottom in
        let at_b = Store.follow ~follower:2 ~followee:9 i1 Store.bottom in
        Alcotest.(check (list int))
          "both followers" [ 1; 2 ]
          (Store.followers_of 9 (Store.join at_a at_b)));
  ]

let workload_tests =
  [
    Alcotest.test_case "operation mix matches Table II (15/35/50)" `Quick
      (fun () ->
        let wl = Workload.make ~seed:1 ~users:200 ~coefficient:1.0 in
        let db = ref Store.bottom in
        for round = 0 to 2000 do
          let ops = Workload.ops wl ~round ~node:0 !db in
          List.iter
            (fun (Store.Apply (k, op)) -> db := Store.apply k op i0 !db)
            ops
        done;
        let follows, posts, reads, _ = Workload.mix wl in
        check (Printf.sprintf "follows %.1f%%" follows) true
          (abs_float (follows -. 15.) < 3.);
        check (Printf.sprintf "posts %.1f%%" posts) true
          (abs_float (posts -. 35.) < 3.);
        check (Printf.sprintf "reads %.1f%%" reads) true
          (abs_float (reads -. 50.) < 3.));
    Alcotest.test_case "posts fan out to followers (1 + #followers updates)"
      `Quick (fun () ->
        let wl = Workload.make ~seed:2 ~users:50 ~coefficient:0.8 in
        (* Seed a db in which user 0 (zipf head) has 5 followers. *)
        let db =
          List.fold_left
            (fun db f -> Store.follow ~follower:f ~followee:0 i0 db)
            Store.bottom [ 1; 2; 3; 4; 5 ]
        in
        (* Find a round where the generated op is a post by user 0. *)
        let rec hunt round =
          if round > 5000 then Alcotest.fail "no post by the zipf head found"
          else
            let ops = Workload.ops wl ~round ~node:0 db in
            match ops with
            | Store.Apply (0, User_state.Post _) :: rest ->
                check_int "5 timeline pushes" 5 (List.length rest);
                List.iter
                  (fun (Store.Apply (_, op)) ->
                    match op with
                    | User_state.Timeline_add _ -> ()
                    | _ -> Alcotest.fail "expected a timeline push")
                  rest
            | _ -> hunt (round + 1)
        in
        hunt 0);
    Alcotest.test_case "tweet ids are 31 bytes, content 270 bytes" `Quick
      (fun () ->
        let wl = Workload.make ~seed:3 ~users:50 ~coefficient:1.0 in
        let rec hunt round =
          if round > 2000 then Alcotest.fail "no post found"
          else
            match Workload.ops wl ~round ~node:0 Store.bottom with
            | Store.Apply (_, User_state.Post { tweet_id; content }) :: _ ->
                check_int "id bytes" 31 (String.length tweet_id);
                check_int "content bytes" 270 (String.length content)
            | _ -> hunt (round + 1)
        in
        hunt 0);
  ]

(* End-to-end replication of the sharded store. *)
module Classic = Sharded_store.Delta (Crdt_proto.Delta_sync.Classic_config)
module BpRr = Sharded_store.Delta (Crdt_proto.Delta_sync.Bp_rr_config)
module Rc = Runner.Make (Classic)
module Rb = Runner.Make (BpRr)

let replication_tests =
  [
    Alcotest.test_case "sharded store converges under the retwis workload"
      `Quick (fun () ->
        let topo = Topology.partial_mesh 8 in
        let wl = Workload.make ~seed:5 ~users:100 ~coefficient:1.0 in
        let res =
          Rb.run ~equal:BpRr.equal_states ~topology:topo ~rounds:15
            ~ops:(fun ~round ~node state ->
              Workload.ops_sharded wl ~round ~node state)
            ()
        in
        check "converged" true res.Rb.converged);
    Alcotest.test_case "classic ships at least as much as BP+RR" `Quick
      (fun () ->
        let topo = Topology.partial_mesh 8 in
        let run_classic () =
          let wl = Workload.make ~seed:7 ~users:100 ~coefficient:1.25 in
          let res =
            Rc.run ~equal:Classic.equal_states ~topology:topo ~rounds:15
              ~ops:(fun ~round ~node state ->
                Workload.ops_sharded wl ~round ~node state)
              ()
          in
          Metrics.total_transmission_bytes (Rc.summary res)
        in
        let run_bprr () =
          let wl = Workload.make ~seed:7 ~users:100 ~coefficient:1.25 in
          let res =
            Rb.run ~equal:BpRr.equal_states ~topology:topo ~rounds:15
              ~ops:(fun ~round ~node state ->
                Workload.ops_sharded wl ~round ~node state)
              ()
          in
          Metrics.total_transmission_bytes (Rb.summary res)
        in
        check "classic ≥ bp+rr" true (run_classic () >= run_bprr ()));
  ]

let () =
  Alcotest.run "retwis"
    [
      ("data model", model_tests);
      ("workload (Table II)", workload_tests);
      ("replication", replication_tests);
    ]
