(* Unit tests for optimal deltas Δ(a,b) (Section III-B), pinned to
   concrete examples and to the Fig. 4 / Fig. 5 redundancy scenarios. *)

open Crdt_core
module S = Gset.Of_string
module Ds = Delta.Make (S)
module Dc = Delta.Make (Gcounter)

let check = Alcotest.(check bool)
let a = Replica_id.of_int 0
let b = Replica_id.of_int 1

let set_examples =
  [
    Alcotest.test_case "Δ({a,b,c},{b}) = {a,c}" `Quick (fun () ->
        let d = Ds.delta (S.of_list [ "a"; "b"; "c" ]) (S.of_list [ "b" ]) in
        Alcotest.(check (list string)) "delta" [ "a"; "c" ] (S.elements d));
    Alcotest.test_case "Δ(a,b) ⊔ b = a ⊔ b" `Quick (fun () ->
        let x = S.of_list [ "a"; "b" ] and y = S.of_list [ "b"; "c" ] in
        check "property" true
          (S.equal (S.join (Ds.delta x y) y) (S.join x y)));
    Alcotest.test_case "Δ is exactly set difference on GSets" `Quick (fun () ->
        let x = S.of_list [ "p"; "q"; "r" ] and y = S.of_list [ "q"; "z" ] in
        Alcotest.(check (list string))
          "difference" [ "p"; "r" ]
          (S.elements (Ds.delta x y)));
    Alcotest.test_case "redundancy is the intersection" `Quick (fun () ->
        let x = S.of_list [ "p"; "q"; "r" ] and y = S.of_list [ "q"; "z" ] in
        Alcotest.(check (list string))
          "intersection" [ "q" ]
          (S.elements (Ds.redundancy x y)));
  ]

let counter_examples =
  [
    Alcotest.test_case "Δ keeps only strictly newer entries" `Quick (fun () ->
        let x = Gcounter.of_list [ (a, 5); (b, 2) ] in
        let y = Gcounter.of_list [ (a, 3); (b, 2) ] in
        let d = Dc.delta x y in
        check "only A's newer entry" true
          (Gcounter.equal d (Gcounter.of_list [ (a, 5) ])));
    Alcotest.test_case "Δ against a dominating state is ⊥" `Quick (fun () ->
        let x = Gcounter.of_list [ (a, 1) ] in
        let y = Gcounter.of_list [ (a, 9); (b, 3) ] in
        check "bottom" true (Gcounter.is_bottom (Dc.delta x y)));
  ]

let minimality =
  [
    Alcotest.test_case "Δ is minimum among all states with c ⊔ b = a ⊔ b"
      `Quick (fun () ->
        (* Exhaustively enumerate every subset c of {a,b,c,d} and verify
           the optimality claim of Section III-B on a concrete pair. *)
        let universe = [ "a"; "b"; "c"; "d" ] in
        let x = S.of_list [ "a"; "b"; "c" ] and y = S.of_list [ "b"; "d" ] in
        let delta = Ds.delta x y in
        let rec subsets = function
          | [] -> [ [] ]
          | e :: rest ->
              let rs = subsets rest in
              rs @ List.map (fun s -> e :: s) rs
        in
        let candidates = List.map S.of_list (subsets universe) in
        List.iter
          (fun c ->
            if S.equal (S.join c y) (S.join x y) then
              check "Δ ⊑ c for every valid c" true (S.leq delta c))
          candidates);
    Alcotest.test_case "δ-mutator derived via Δ equals the optimal addδ"
      `Quick (fun () ->
        let s = S.of_list [ "a" ] in
        let via_delta = Ds.delta_mutator (S.add "a" a) s in
        check "no-op is bottom" true (S.is_bottom via_delta);
        let via_delta = Ds.delta_mutator (S.add "z" a) s in
        check "new element is singleton" true
          (S.equal via_delta (S.of_list [ "z" ])));
  ]

(* Fig. 4: two replicas; classic back-propagates B's own δ-group. *)
let fig4 =
  [
    Alcotest.test_case "Fig. 4: RR extraction removes the echoed {b}" `Quick
      (fun () ->
        (* A's state after receiving {b} and adding a: {a,b}.  When A's
           δ-group {a,b} reaches B (whose state is {b,c}), RR extracts
           exactly {a}. *)
        let received = S.of_list [ "a"; "b" ] in
        let local = S.of_list [ "b"; "c" ] in
        Alcotest.(check (list string))
          "extracted" [ "a" ]
          (S.elements (Ds.delta received local)));
  ]

(* Fig. 5: diamond; C receives {a,b} from A while already knowing {b}. *)
let fig5 =
  [
    Alcotest.test_case "Fig. 5: C forwards only {a} to D under RR" `Quick
      (fun () ->
        let received_from_a = S.of_list [ "a"; "b" ] in
        let c_state = S.of_list [ "b" ] in
        let to_store = Ds.delta received_from_a c_state in
        Alcotest.(check (list string)) "buffered" [ "a" ] (S.elements to_store);
        (* Classic would store the whole received group instead. *)
        check "classic inflation check passes (d ⋢ x)" true
          (not (S.leq received_from_a c_state)));
  ]

(* The decomposition validators used by the property suites deserve
   their own sanity checks. *)
let validators =
  [
    Alcotest.test_case "is_decomposition accepts the empty set for ⊥"
      `Quick (fun () -> check "⊥" true (Ds.is_decomposition [] S.bottom));
    Alcotest.test_case "is_irredundant on the empty set" `Quick (fun () ->
        check "vacuous" true (Ds.is_irredundant []));
    Alcotest.test_case "is_irredundant flags duplicated elements" `Quick
      (fun () ->
        let s = S.of_list [ "a" ] in
        check "dup" false (Ds.is_irredundant [ s; s ]));
    Alcotest.test_case "is_irreducible rejects ⊥ and reducibles" `Quick
      (fun () ->
        check "⊥" false (Ds.is_irreducible S.bottom);
        check "pair" false (Ds.is_irreducible (S.of_list [ "a"; "b" ]));
        check "singleton" true (Ds.is_irreducible (S.of_list [ "a" ])));
    Alcotest.test_case "delta_mutator of a no-op mutator is ⊥" `Quick
      (fun () ->
        let s = S.of_list [ "a" ] in
        check "identity" true (S.is_bottom (Ds.delta_mutator Fun.id s)));
  ]

let () =
  Alcotest.run "delta"
    [
      ("GSet examples", set_examples);
      ("GCounter examples", counter_examples);
      ("minimality", minimality);
      ("Fig. 4", fig4);
      ("Fig. 5", fig5);
      ("validators", validators);
    ]
