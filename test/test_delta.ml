(* Unit tests for optimal deltas Δ(a,b) (Section III-B), pinned to
   concrete examples and to the Fig. 4 / Fig. 5 redundancy scenarios. *)

open Crdt_core
module S = Gset.Of_string
module Ds = Delta.Make (S)
module Dc = Delta.Make (Gcounter)

let check = Alcotest.(check bool)
let a = Replica_id.of_int 0
let b = Replica_id.of_int 1

let set_examples =
  [
    Alcotest.test_case "Δ({a,b,c},{b}) = {a,c}" `Quick (fun () ->
        let d = Ds.delta (S.of_list [ "a"; "b"; "c" ]) (S.of_list [ "b" ]) in
        Alcotest.(check (list string)) "delta" [ "a"; "c" ] (S.elements d));
    Alcotest.test_case "Δ(a,b) ⊔ b = a ⊔ b" `Quick (fun () ->
        let x = S.of_list [ "a"; "b" ] and y = S.of_list [ "b"; "c" ] in
        check "property" true
          (S.equal (S.join (Ds.delta x y) y) (S.join x y)));
    Alcotest.test_case "Δ is exactly set difference on GSets" `Quick (fun () ->
        let x = S.of_list [ "p"; "q"; "r" ] and y = S.of_list [ "q"; "z" ] in
        Alcotest.(check (list string))
          "difference" [ "p"; "r" ]
          (S.elements (Ds.delta x y)));
    Alcotest.test_case "redundancy is the intersection" `Quick (fun () ->
        let x = S.of_list [ "p"; "q"; "r" ] and y = S.of_list [ "q"; "z" ] in
        Alcotest.(check (list string))
          "intersection" [ "q" ]
          (S.elements (Ds.redundancy x y)));
  ]

let counter_examples =
  [
    Alcotest.test_case "Δ keeps only strictly newer entries" `Quick (fun () ->
        let x = Gcounter.of_list [ (a, 5); (b, 2) ] in
        let y = Gcounter.of_list [ (a, 3); (b, 2) ] in
        let d = Dc.delta x y in
        check "only A's newer entry" true
          (Gcounter.equal d (Gcounter.of_list [ (a, 5) ])));
    Alcotest.test_case "Δ against a dominating state is ⊥" `Quick (fun () ->
        let x = Gcounter.of_list [ (a, 1) ] in
        let y = Gcounter.of_list [ (a, 9); (b, 3) ] in
        check "bottom" true (Gcounter.is_bottom (Dc.delta x y)));
  ]

let minimality =
  [
    Alcotest.test_case "Δ is minimum among all states with c ⊔ b = a ⊔ b"
      `Quick (fun () ->
        (* Exhaustively enumerate every subset c of {a,b,c,d} and verify
           the optimality claim of Section III-B on a concrete pair. *)
        let universe = [ "a"; "b"; "c"; "d" ] in
        let x = S.of_list [ "a"; "b"; "c" ] and y = S.of_list [ "b"; "d" ] in
        let delta = Ds.delta x y in
        let rec subsets = function
          | [] -> [ [] ]
          | e :: rest ->
              let rs = subsets rest in
              rs @ List.map (fun s -> e :: s) rs
        in
        let candidates = List.map S.of_list (subsets universe) in
        List.iter
          (fun c ->
            if S.equal (S.join c y) (S.join x y) then
              check "Δ ⊑ c for every valid c" true (S.leq delta c))
          candidates);
    Alcotest.test_case "δ-mutator derived via Δ equals the optimal addδ"
      `Quick (fun () ->
        let s = S.of_list [ "a" ] in
        let via_delta = Ds.delta_mutator (S.add "a" a) s in
        check "no-op is bottom" true (S.is_bottom via_delta);
        let via_delta = Ds.delta_mutator (S.add "z" a) s in
        check "new element is singleton" true
          (S.equal via_delta (S.of_list [ "z" ])));
  ]

(* Fig. 4: two replicas; classic back-propagates B's own δ-group. *)
let fig4 =
  [
    Alcotest.test_case "Fig. 4: RR extraction removes the echoed {b}" `Quick
      (fun () ->
        (* A's state after receiving {b} and adding a: {a,b}.  When A's
           δ-group {a,b} reaches B (whose state is {b,c}), RR extracts
           exactly {a}. *)
        let received = S.of_list [ "a"; "b" ] in
        let local = S.of_list [ "b"; "c" ] in
        Alcotest.(check (list string))
          "extracted" [ "a" ]
          (S.elements (Ds.delta received local)));
  ]

(* Fig. 5: diamond; C receives {a,b} from A while already knowing {b}. *)
let fig5 =
  [
    Alcotest.test_case "Fig. 5: C forwards only {a} to D under RR" `Quick
      (fun () ->
        let received_from_a = S.of_list [ "a"; "b" ] in
        let c_state = S.of_list [ "b" ] in
        let to_store = Ds.delta received_from_a c_state in
        Alcotest.(check (list string)) "buffered" [ "a" ] (S.elements to_store);
        (* Classic would store the whole received group instead. *)
        check "classic inflation check passes (d ⋢ x)" true
          (not (S.leq received_from_a c_state)));
  ]

(* The decomposition validators used by the property suites deserve
   their own sanity checks. *)
let validators =
  [
    Alcotest.test_case "is_decomposition accepts the empty set for ⊥"
      `Quick (fun () -> check "⊥" true (Ds.is_decomposition [] S.bottom));
    Alcotest.test_case "is_irredundant on the empty set" `Quick (fun () ->
        check "vacuous" true (Ds.is_irredundant []));
    Alcotest.test_case "is_irredundant flags duplicated elements" `Quick
      (fun () ->
        let s = S.of_list [ "a" ] in
        check "dup" false (Ds.is_irredundant [ s; s ]));
    Alcotest.test_case "is_irreducible rejects ⊥ and reducibles" `Quick
      (fun () ->
        check "⊥" false (Ds.is_irreducible S.bottom);
        check "pair" false (Ds.is_irreducible (S.of_list [ "a"; "b" ]));
        check "singleton" true (Ds.is_irreducible (S.of_list [ "a" ])));
    Alcotest.test_case "delta_mutator of a no-op mutator is ⊥" `Quick
      (fun () ->
        let s = S.of_list [ "a" ] in
        check "identity" true (S.is_bottom (Ds.delta_mutator Fun.id s)));
  ]

(* Structural Δ vs the generic decompose-based oracle: for each CRDT
   instance, build a small pool of reachable states (mutations plus joins
   of divergent replicas) and check, over every ordered pair, that the
   structural delta agrees with [Delta.Make], satisfies the Δ contract
   (Δ(a,b) ⊔ b = a ⊔ b), and is minimal (no irreducible of Δ(a,b) is
   below b). *)
module Oracle_check
    (L : Lattice_intf.DECOMPOSABLE) (G : sig
      val name : string
      val states : L.t list
    end) =
struct
  module D = Delta.Make (L)

  let all_pairs f = List.iter (fun a -> List.iter (f a) G.states) G.states

  let tests =
    [
      Alcotest.test_case (G.name ^ ": structural Δ = oracle Δ") `Quick
        (fun () ->
          all_pairs (fun a b ->
              check "agrees with Delta.Make" true
                (L.equal (L.delta a b) (D.delta a b))));
      Alcotest.test_case (G.name ^ ": Δ(a,b) ⊔ b = a ⊔ b") `Quick (fun () ->
          all_pairs (fun a b ->
              check "correct" true
                (L.equal (L.join (L.delta a b) b) (L.join a b))));
      Alcotest.test_case (G.name ^ ": no y ∈ ⇓Δ(a,b) is ⊑ b") `Quick
        (fun () ->
          all_pairs (fun a b ->
              check "minimal" true
                (List.for_all
                   (fun y -> not (L.leq y b))
                   (L.decompose (L.delta a b)))));
      Alcotest.test_case (G.name ^ ": fold_decompose matches decompose")
        `Quick (fun () ->
          List.iter
            (fun a ->
              let streamed =
                List.sort L.compare (L.fold_decompose List.cons a [])
              in
              let listed = List.sort L.compare (L.decompose a) in
              check "same irreducibles" true
                (List.length streamed = List.length listed
                && List.for_all2 L.equal streamed listed))
            G.states);
    ]
end

(* State pools per instance.  Joins of divergent replicas are included so
   pairs with genuinely concurrent information appear. *)

let fold_ops (type s o) (module C : Lattice_intf.CRDT
               with type t = s and type op = o) ops =
  List.fold_left (fun x (i, op) -> C.mutate op (Replica_id.of_int i) x)
    C.bottom ops

module Gcounter_oracle =
  Oracle_check
    (Gcounter)
    (struct
      let name = "GCounter"

      let states =
        [
          Gcounter.bottom;
          Gcounter.of_list [ (a, 3) ];
          Gcounter.of_list [ (a, 5); (b, 2) ];
          Gcounter.of_list [ (a, 1); (b, 7) ];
        ]
    end)

module Gset_oracle =
  Oracle_check
    (S)
    (struct
      let name = "GSet<string>"

      let states =
        [
          S.bottom;
          S.of_list [ "a" ];
          S.of_list [ "a"; "b" ];
          S.of_list [ "b"; "c"; "d" ];
        ]
    end)

module Gmap_oracle =
  Oracle_check
    (Gmap.Versioned)
    (struct
      let name = "GMap<int,Version>"

      let states =
        [
          Gmap.Versioned.bottom;
          Gmap.Versioned.of_list [ (1, 2) ];
          Gmap.Versioned.of_list [ (1, 1); (2, 4) ];
          Gmap.Versioned.of_list [ (2, 2); (3, 1) ];
        ]
    end)

module Pncounter_oracle =
  Oracle_check
    (Pncounter)
    (struct
      let name = "PNCounter"

      let states =
        [
          Pncounter.bottom;
          fold_ops (module Pncounter) [ (0, Pncounter.Inc 3) ];
          fold_ops (module Pncounter)
            [ (0, Pncounter.Inc 2); (1, Pncounter.Dec 1) ];
          fold_ops (module Pncounter)
            [ (1, Pncounter.Inc 5); (1, Pncounter.Dec 2); (0, Pncounter.Inc 1) ];
        ]
    end)

module Tps = Two_pset.Make (Powerset.Int_elt)

module Two_pset_oracle =
  Oracle_check
    (Tps)
    (struct
      let name = "2PSet<int>"

      let states =
        [
          Tps.bottom;
          fold_ops (module Tps) [ (0, Tps.Add 1) ];
          fold_ops (module Tps) [ (0, Tps.Add 1); (0, Tps.Remove 1) ];
          fold_ops (module Tps) [ (1, Tps.Add 2); (1, Tps.Add 3) ];
        ]
    end)

module Aw = Aw_set.Of_string

module Aw_oracle =
  Oracle_check
    (Aw)
    (struct
      let name = "AW OR-Set"

      let divergent =
        let x = fold_ops (module Aw) [ (0, Aw.Add "p") ] in
        let y = fold_ops (module Aw) [ (1, Aw.Add "p"); (1, Aw.Remove "p") ] in
        Aw.join x y

      let states =
        [
          Aw.bottom;
          fold_ops (module Aw) [ (0, Aw.Add "p") ];
          fold_ops (module Aw) [ (0, Aw.Add "p"); (0, Aw.Remove "p") ];
          divergent;
        ]
    end)

module Mv_oracle =
  Oracle_check
    (Mv_register)
    (struct
      let name = "MV register"

      let concurrent =
        let base = fold_ops (module Mv_register) [ (0, Mv_register.Write "x") ] in
        Mv_register.join
          (Mv_register.mutate (Mv_register.Write "l") a base)
          (Mv_register.mutate (Mv_register.Write "r") b base)

      let states =
        [
          Mv_register.bottom;
          fold_ops (module Mv_register) [ (0, Mv_register.Write "x") ];
          concurrent;
        ]
    end)

module Lww_oracle =
  Oracle_check
    (Lww_register)
    (struct
      let name = "LWW register"

      let states =
        [
          Lww_register.bottom;
          (1, "u");
          (2, "v");
          (2, "w");
        ]
    end)

module Flag_oracle =
  Oracle_check
    (Epoch_flag)
    (struct
      let name = "Epoch flag"
      let states = [ Epoch_flag.bottom; (0, true); (1, false); (1, true) ]
    end)

module Resettable_oracle =
  Oracle_check
    (Resettable_counter)
    (struct
      let name = "Resettable counter"

      let states =
        [
          Resettable_counter.bottom;
          fold_ops (module Resettable_counter) [ (0, Resettable_counter.Inc 3) ];
          fold_ops (module Resettable_counter)
            [ (0, Resettable_counter.Inc 3); (1, Resettable_counter.Reset) ];
          fold_ops (module Resettable_counter)
            [
              (0, Resettable_counter.Inc 1);
              (1, Resettable_counter.Reset);
              (1, Resettable_counter.Inc 4);
            ];
        ]
    end)

module Bounded_oracle =
  Oracle_check
    (Bounded_counter)
    (struct
      let name = "Bounded counter"

      let states =
        [
          Bounded_counter.bottom;
          fold_ops (module Bounded_counter) [ (0, Bounded_counter.Inc 5) ];
          fold_ops (module Bounded_counter)
            [ (0, Bounded_counter.Inc 5); (0, Bounded_counter.Dec 2) ];
          fold_ops (module Bounded_counter)
            [
              (0, Bounded_counter.Inc 5);
              ( 0,
                Bounded_counter.Transfer
                  { amount = 2; target = Replica_id.of_int 1 } );
            ];
        ]
    end)

let oracle_suites =
  Gcounter_oracle.tests @ Gset_oracle.tests @ Gmap_oracle.tests
  @ Pncounter_oracle.tests @ Two_pset_oracle.tests @ Aw_oracle.tests
  @ Mv_oracle.tests @ Lww_oracle.tests @ Flag_oracle.tests
  @ Resettable_oracle.tests @ Bounded_oracle.tests

let () =
  Alcotest.run "delta"
    [
      ("GSet examples", set_examples);
      ("GCounter examples", counter_examples);
      ("minimality", minimality);
      ("Fig. 4", fig4);
      ("Fig. 5", fig5);
      ("validators", validators);
      ("structural Δ vs oracle", oracle_suites);
    ]
