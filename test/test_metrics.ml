(* Unit tests for the measurement plumbing. *)

open Crdt_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let round ?(messages = 0) ?(payload = 0) ?(metadata = 0) ?(payload_bytes = 0)
    ?(metadata_bytes = 0) ?(wire_bytes = 0) ?(memory_weight = 0)
    ?(memory_bytes = 0) ?(metadata_memory_bytes = 0) ?(ops_applied = 0)
    ?(dropped = 0) ?(held = 0) ?(partitioned = 0) ?(sync_rounds = 0)
    ?(digest_bytes = 0) () : Metrics.round =
  {
    messages;
    payload;
    metadata;
    payload_bytes;
    metadata_bytes;
    wire_bytes;
    memory_weight;
    memory_bytes;
    metadata_memory_bytes;
    ops_applied;
    dropped;
    held;
    partitioned;
    sync_rounds;
    digest_bytes;
  }

let tests =
  [
    Alcotest.test_case "summarize totals and averages" `Quick (fun () ->
        let rounds =
          [|
            round ~messages:2 ~payload:10 ~metadata:1 ~memory_weight:4 ();
            round ~messages:4 ~payload:30 ~metadata:3 ~memory_weight:8 ();
          |]
        in
        let s = Metrics.summarize rounds in
        check_int "messages" 6 s.total_messages;
        check_int "payload" 40 s.total_payload;
        check_int "metadata" 4 s.total_metadata;
        check "avg memory" true (s.avg_memory_weight = 6.);
        check_int "max memory" 8 s.max_memory_weight;
        check_int "rounds" 2 s.rounds);
    Alcotest.test_case "empty run summarizes to zeros" `Quick (fun () ->
        let s = Metrics.summarize [||] in
        check_int "payload" 0 s.total_payload;
        check "avg" true (s.avg_memory_weight = 0.));
    Alcotest.test_case "total transmission adds payload and metadata" `Quick
      (fun () ->
        let s = Metrics.summarize [| round ~payload:7 ~metadata:3 () |] in
        check_int "total" 10 (Metrics.total_transmission s));
    Alcotest.test_case "metadata fraction (Section V-B2)" `Quick (fun () ->
        let s =
          Metrics.summarize
            [| round ~payload_bytes:25 ~metadata_bytes:75 () |]
        in
        check "75%" true (Metrics.metadata_fraction s = 0.75));
    Alcotest.test_case "metadata fraction of silence is 0" `Quick (fun () ->
        check "zero" true (Metrics.metadata_fraction (Metrics.summarize [||]) = 0.));
    Alcotest.test_case "ops totals and throughput" `Quick (fun () ->
        let s =
          Metrics.summarize
            [|
              round ~messages:10 ~ops_applied:4 ();
              round ~messages:20 ~ops_applied:6 ();
            |]
        in
        check_int "total ops" 10 s.total_ops;
        check "ops/sec" true (Metrics.ops_per_sec s ~seconds:2. = 5.);
        check "msgs/sec" true (Metrics.msgs_per_sec s ~seconds:2. = 15.);
        check "nan on zero interval" true
          (Float.is_nan (Metrics.ops_per_sec s ~seconds:0.)));
    Alcotest.test_case "fault counters are summed" `Quick (fun () ->
        let s =
          Metrics.summarize
            [|
              round ~dropped:3 ~held:1 ~partitioned:2 ();
              round ~dropped:4 ~partitioned:5 ();
            |]
        in
        check_int "dropped" 7 s.total_dropped;
        check_int "held" 1 s.total_held;
        check_int "partitioned" 7 s.total_partitioned);
    Alcotest.test_case "ratios" `Quick (fun () ->
        check "ratio" true (Metrics.ratio ~baseline:10 25 = 2.5);
        check "nan on zero baseline" true
          (Float.is_nan (Metrics.ratio ~baseline:0 25));
        check "fratio" true (Metrics.fratio ~baseline:2. 5. = 2.5));
  ]

let () = Alcotest.run "metrics" [ ("metrics", tests) ]
