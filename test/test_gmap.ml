(* Unit tests for the grow-only map of CRDTs, including the nested
   optimal-delta behaviour and the GMap K% benchmark instance. *)

open Crdt_core
module G = Gmap.Versioned

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let i = Replica_id.of_int 0
let j = Replica_id.of_int 1

let basics =
  [
    Alcotest.test_case "absent key reads bottom" `Quick (fun () ->
        check_int "find" 0 (G.find 7 G.empty);
        check "mem" false (G.mem 7 G.empty));
    Alcotest.test_case "apply bump creates and inflates entries" `Quick
      (fun () ->
        let m = G.apply 7 Version.Bump i G.empty in
        check_int "version" 1 (G.find 7 m);
        let m = G.apply 7 Version.Bump i m in
        check_int "version 2" 2 (G.find 7 m);
        check_int "cardinal" 1 (G.cardinal m));
    Alcotest.test_case "keys accumulate, never vanish" `Quick (fun () ->
        let m = G.apply 1 Version.Bump i G.empty in
        let m = G.apply 2 Version.Bump i m in
        Alcotest.(check (list int)) "keys" [ 1; 2 ] (G.keys m));
    Alcotest.test_case "leq regression: single-walk order check" `Quick
      (fun () ->
        (* The order is pointwise; the implementation walks both maps
           simultaneously (one merge) instead of a find per key.  Pin
           every branch: missing key in m2, pointwise violation, equal
           maps, both bottoms, and disjoint key ranges. *)
        let m12 = G.of_list [ (1, 3); (2, 1) ] in
        check "⊥ ⊑ m" true (G.leq G.empty m12);
        check "m ⋢ ⊥" false (G.leq m12 G.empty);
        check "m ⊑ m" true (G.leq m12 m12);
        check "pointwise ≤" true (G.leq m12 (G.of_list [ (1, 3); (2, 5) ]));
        check "pointwise violation" false
          (G.leq m12 (G.of_list [ (1, 2); (2, 5) ]));
        check "key only in m1 (before m2's range)" false
          (G.leq (G.of_list [ (0, 1) ]) (G.of_list [ (5, 9) ]));
        check "key only in m1 (after m2's range)" false
          (G.leq (G.of_list [ (9, 1) ]) (G.of_list [ (5, 9) ]));
        check "m1 keys a strict subset" true
          (G.leq (G.of_list [ (2, 1) ]) m12));
  ]

let delta_tests =
  [
    Alcotest.test_case "update delta is a singleton map" `Quick (fun () ->
        let m = G.of_list [ (1, 5); (2, 2) ] in
        let d = G.apply_delta 1 Version.Bump i m in
        check_int "one entry" 1 (G.cardinal d);
        check_int "bumped" 6 (G.find 1 d));
    Alcotest.test_case "no-op update yields bottom delta" `Quick (fun () ->
        let m = G.of_list [ (1, 5) ] in
        let d = G.apply_delta 1 (Version.Raise_to 3) i m in
        check "bottom" true (G.is_bottom d));
    Alcotest.test_case "m(x) = x ⊔ mδ(x) through nesting" `Quick (fun () ->
        let m = G.of_list [ (1, 5); (2, 2) ] in
        List.iter
          (fun op ->
            check "contract" true
              (G.equal (G.mutate op i m) (G.join m (G.delta_mutate op i m))))
          [
            G.Apply (1, Version.Bump);
            G.Apply (9, Version.Bump);
            G.Apply (2, Version.Raise_to 10);
          ]);
  ]

(* Nested: GMap of GSet values — deltas localize to the inner change. *)
module Inner = Gset.Of_string
module Nested = Gmap.Make (Gmap.Int_key) (Inner)

let nested_tests =
  [
    Alcotest.test_case "nested delta carries only the new element" `Quick
      (fun () ->
        let m = Nested.apply 1 "a" i Nested.empty in
        let m = Nested.apply 1 "b" i m in
        let d = Nested.apply_delta 1 "c" i m in
        check_int "weight 1" 1 (Nested.weight d);
        check "contains only c" true
          (Inner.equal (Nested.find 1 d) (Inner.of_list [ "c" ])));
    Alcotest.test_case "nested no-op yields bottom" `Quick (fun () ->
        let m = Nested.apply 1 "a" i Nested.empty in
        check "bottom" true (Nested.is_bottom (Nested.apply_delta 1 "a" i m)));
    Alcotest.test_case "concurrent updates to different keys merge" `Quick
      (fun () ->
        let base = Nested.empty in
        let at_i = Nested.apply 1 "x" i base in
        let at_j = Nested.apply 2 "y" j base in
        let m = Nested.join at_i at_j in
        check "key 1" true (Inner.mem "x" (Nested.find 1 m));
        check "key 2" true (Inner.mem "y" (Nested.find 2 m)));
    Alcotest.test_case "concurrent updates to the same key merge" `Quick
      (fun () ->
        let at_i = Nested.apply 1 "x" i Nested.empty in
        let at_j = Nested.apply 1 "y" j Nested.empty in
        let m = Nested.join at_i at_j in
        Alcotest.(check (list string))
          "both" [ "x"; "y" ]
          (Inner.elements (Nested.find 1 m)));
  ]

let workload_tests =
  [
    Alcotest.test_case "GMap K% blocks are disjoint within a round" `Quick
      (fun () ->
        let nodes = 15 and total_keys = 1000 and k = 60 in
        let all =
          List.concat_map
            (fun node ->
              Crdt_engine.Workload.gmap_keys ~total_keys ~k ~nodes ~round:0 ~node)
            (List.init nodes Fun.id)
        in
        let dedup = List.sort_uniq Int.compare all in
        check_int "no overlap" (List.length all) (List.length dedup));
    Alcotest.test_case "GMap K% touches ~K% of keys per round" `Quick
      (fun () ->
        let nodes = 15 and total_keys = 1000 in
        List.iter
          (fun k ->
            let touched =
              List.concat_map
                (fun node ->
                  Crdt_engine.Workload.gmap_keys ~total_keys ~k ~nodes ~round:3
                    ~node)
                (List.init nodes Fun.id)
              |> List.sort_uniq Int.compare |> List.length
            in
            let expected = total_keys * k / 100 in
            check
              (Printf.sprintf "k=%d touched=%d" k touched)
              true
              (abs (touched - expected) * 100 / total_keys <= 5))
          [ 10; 30; 60; 100 ]);
  ]

let () =
  Alcotest.run "gmap"
    [
      ("basics", basics);
      ("deltas", delta_tests);
      ("nested", nested_tests);
      ("K% workload", workload_tests);
    ]
