(* Unit suite for the lib/store segment log (DESIGN.md §11).

   The store treats record bodies as opaque bytes, so the suite drives
   it with plain strings and checks the format contract directly:

   - roundtrip: append / roll / close / reopen preserves every delta in
     order, across multiple segments and writer generations;
   - checkpoint: a checkpoint resets the replay set and prunes every
     older segment; records appended after it are replayed on top;
   - torn tail: truncating the final record at every byte offset, and
     flipping every bit of it, never raises and never loses any record
     before it — recovery yields an exact prefix of what was written;
   - crash during checkpoint: a checkpoint record torn mid-write leaves
     the previous checkpoint and the deltas after it fully recoverable;
   - corruption in a sealed (non-final) segment is refused loudly
     ({!Store.Corrupt}), never silently skipped. *)

module Store = Crdt_store.Store

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_deltas = Alcotest.(check (list string))

(* -- scratch directories ------------------------------------------------- *)

let dir_seq = ref 0

let fresh_dir () =
  incr dir_seq;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "crdtsync-test-store-%d-%d" (Unix.getpid ()) !dir_seq)
  in
  dir

let remove_dir dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_dir f =
  let dir = fresh_dir () in
  remove_dir dir;
  Fun.protect ~finally:(fun () -> remove_dir dir) (fun () -> f dir)

let segment_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".log")
  |> List.sort compare

let file_size path = (Unix.stat path).Unix.st_size

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let body i = Printf.sprintf "delta-%04d-%s" i (String.make (i mod 7) 'x')

(* -- roundtrip ----------------------------------------------------------- *)

let test_roundtrip () =
  with_dir (fun dir ->
      let n = 40 in
      let written = List.init n body in
      (* Tiny segments force several rolls. *)
      let store, r0 = Store.open_ ~segment_bytes:256 ~dir () in
      check_int "fresh dir has no segments" 0 r0.Store.segments;
      check "fresh dir has no checkpoint" true (r0.Store.checkpoint = None);
      List.iter (Store.append_delta store) written;
      Store.close store;
      check "log rolled into several segments" true
        (List.length (segment_files dir) > 1);
      let r = Store.read ~dir in
      check_deltas "all deltas recovered in order" written r.Store.deltas;
      check_int "replayed_records counts them" n r.Store.replayed_records;
      check_int "replayed_bytes sums the bodies"
        (List.fold_left (fun a d -> a + String.length d) 0 written)
        r.Store.replayed_bytes;
      check_int "nothing truncated" 0 r.Store.truncated_bytes;
      (* A second writer generation appends on top. *)
      let store, r1 = Store.open_ ~segment_bytes:256 ~dir () in
      check_deltas "reopen recovers the same" written r1.Store.deltas;
      check_int "since_checkpoint resumes from the replay set" n
        (Store.deltas_since_checkpoint store);
      Store.append_delta store "tail";
      Store.close store;
      let r = Store.read ~dir in
      check_deltas "append after reopen lands at the end"
        (written @ [ "tail" ])
        r.Store.deltas)

(* -- checkpoint and pruning ---------------------------------------------- *)

let test_checkpoint_prunes () =
  with_dir (fun dir ->
      let store, _ = Store.open_ ~segment_bytes:256 ~dir () in
      List.iter (Store.append_delta store) (List.init 40 body);
      check "several segments before the checkpoint" true
        (List.length (segment_files dir) > 1);
      Store.checkpoint store "STATE";
      check_int "checkpoint prunes all older segments" 1
        (List.length (segment_files dir));
      check_int "checkpoint resets the delta counter" 0
        (Store.deltas_since_checkpoint store);
      Store.append_delta store "after-1";
      Store.append_delta store "after-2";
      Store.close store;
      let r = Store.read ~dir in
      check "checkpoint recovered" true (r.Store.checkpoint = Some "STATE");
      check_deltas "only post-checkpoint deltas replay"
        [ "after-1"; "after-2" ]
        r.Store.deltas;
      check_int "replayed_records ignores checkpointed history" 2
        r.Store.replayed_records)

(* -- torn-tail fuzz ------------------------------------------------------ *)

(* A log of [n] records in one segment, returning the final segment's
   path, its size with and without the last record, and the first n-1
   bodies. *)
let build_tail_log dir n =
  let store, _ = Store.open_ ~dir () in
  let all = List.init n body in
  let rec go = function
    | [] -> assert false
    | [ last ] ->
        let path = Filename.concat dir (List.hd (segment_files dir)) in
        let before = file_size path in
        Store.append_delta store last;
        Store.close store;
        (path, before, file_size path)
    | d :: rest ->
        Store.append_delta store d;
        go rest
  in
  let path, before, after = go all in
  (path, before, after, List.filteri (fun i _ -> i < n - 1) all, all)

let test_torn_truncation () =
  with_dir (fun dir ->
      let path, before, after, prefix, _ = build_tail_log dir 6 in
      let full = read_file path in
      for cut = before to after - 1 do
        write_file path (String.sub full 0 cut);
        let r = Store.read ~dir in
        check_deltas
          (Printf.sprintf "truncation at %d keeps the prefix" cut)
          prefix r.Store.deltas;
        check_int
          (Printf.sprintf "truncation at %d counts the torn bytes" cut)
          (cut - before) r.Store.truncated_bytes
      done;
      (* A writer reopened over a torn tail drops it physically and
         appends cleanly. *)
      write_file path (String.sub full 0 (before + 3));
      let store, r = Store.open_ ~dir () in
      check_deltas "reopen over torn tail keeps the prefix" prefix
        r.Store.deltas;
      check_int "reopen truncates the file back" before (file_size path);
      Store.append_delta store "fresh";
      Store.close store;
      check_deltas "append over the healed tail"
        (prefix @ [ "fresh" ])
        (Store.read ~dir).Store.deltas)

let test_torn_bitflips () =
  with_dir (fun dir ->
      let path, before, after, prefix, all = build_tail_log dir 6 in
      let full = read_file path in
      for off = before to after - 1 do
        for bit = 0 to 7 do
          let damaged = Bytes.of_string full in
          Bytes.set damaged off
            (Char.chr (Char.code full.[off] lxor (1 lsl bit)));
          write_file path (Bytes.to_string damaged);
          let r = Store.read ~dir in
          (* The flip may or may not kill the final record, but it must
             never raise, never invent a record, and never damage any
             record before it. *)
          let ok =
            r.Store.checkpoint = None
            && (r.Store.deltas = prefix || r.Store.deltas = all)
          in
          check
            (Printf.sprintf "bit %d at offset %d recovers a clean prefix" bit
               off)
            true ok
        done
      done)

(* -- crash during checkpoint --------------------------------------------- *)

let test_torn_checkpoint () =
  with_dir (fun dir ->
      let store, _ = Store.open_ ~dir () in
      List.iter (Store.append_delta store) [ "d1"; "d2" ];
      Store.checkpoint store "CKPT-A";
      List.iter (Store.append_delta store) [ "d3"; "d4" ];
      let path = Filename.concat dir (List.hd (segment_files dir)) in
      let before = file_size path in
      Store.checkpoint store "CKPT-B";
      Store.close store;
      let full = read_file path in
      (* Tear the CKPT-B record at every byte offset: recovery must fall
         back to CKPT-A plus the deltas after it. *)
      for cut = before to String.length full - 1 do
        write_file path (String.sub full 0 cut);
        let r = Store.read ~dir in
        check
          (Printf.sprintf "cut at %d falls back to the previous checkpoint"
             cut)
          true
          (r.Store.checkpoint = Some "CKPT-A");
        check_deltas
          (Printf.sprintf "cut at %d keeps the post-A deltas" cut)
          [ "d3"; "d4" ] r.Store.deltas
      done;
      (* The intact file promotes to CKPT-B with nothing to replay. *)
      write_file path full;
      let r = Store.read ~dir in
      check "intact file recovers the new checkpoint" true
        (r.Store.checkpoint = Some "CKPT-B");
      check_deltas "new checkpoint resets the replay set" [] r.Store.deltas)

(* -- corruption outside the final segment -------------------------------- *)

let test_corrupt_sealed_segment () =
  with_dir (fun dir ->
      let store, _ = Store.open_ ~segment_bytes:256 ~dir () in
      List.iter (Store.append_delta store) (List.init 40 body);
      Store.close store;
      let segs = segment_files dir in
      check "several segments" true (List.length segs > 1);
      let path = Filename.concat dir (List.hd segs) in
      let full = read_file path in
      let damaged = Bytes.of_string full in
      let off = String.length full / 2 in
      Bytes.set damaged off (Char.chr (Char.code full.[off] lxor 0x40));
      write_file path (Bytes.to_string damaged);
      check "mid-file damage in a sealed segment raises Corrupt" true
        (match Store.read ~dir with
        | _ -> false
        | exception Store.Corrupt _ -> true))

let () =
  Alcotest.run "store"
    [
      ( "segment log",
        [
          Alcotest.test_case "roundtrip across rolls and reopens" `Quick
            test_roundtrip;
          Alcotest.test_case "checkpoint prunes older segments" `Quick
            test_checkpoint_prunes;
        ] );
      ( "torn tail",
        [
          Alcotest.test_case "truncation at every offset" `Quick
            test_torn_truncation;
          Alcotest.test_case "bit flip at every offset" `Quick
            test_torn_bitflips;
        ] );
      ( "checkpoint crash",
        [
          Alcotest.test_case "torn checkpoint falls back" `Quick
            test_torn_checkpoint;
        ] );
      ( "sealed segments",
        [
          Alcotest.test_case "mid-file damage raises Corrupt" `Quick
            test_corrupt_sealed_segment;
        ] );
    ]
