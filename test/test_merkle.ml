(* Tests for the hash-tree anti-entropy baseline (related work [32,33]):
   digest walks locate divergence, matching digests exchange nothing, and
   replicas converge across topologies. *)

open Crdt_core
open Crdt_proto
open Crdt_sim
module Workload = Crdt_engine.Workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module S = Gset.Of_string
module P = Merkle_sync.Make (S) (Merkle_sync.Default_config)

let behavioural =
  [
    Alcotest.test_case "identical replicas exchange only root digests"
      `Quick (fun () ->
        let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let b = P.init ~id:1 ~neighbors:[ 0 ] ~total:2 in
        let a = P.local_update a "x" in
        let b = P.local_update b "x" in
        let a, msgs = P.tick a in
        ignore a;
        let _, replies = P.handle b ~src:0 (List.assoc 1 msgs) in
        check "silence on matching roots" true (replies = []));
    Alcotest.test_case "divergence triggers a subtree walk ending in buckets"
      `Quick (fun () ->
        let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let b = P.init ~id:1 ~neighbors:[ 0 ] ~total:2 in
        let a = P.local_update a "only-at-a" in
        let a, msgs = P.tick a in
        (* Drive the cascade by hand until it goes quiet. *)
        let nodes = [| a; b |] in
        let queue = Queue.create () in
        List.iter (fun (d, m) -> Queue.add (0, d, m) queue) msgs;
        let deliveries = ref 0 in
        while not (Queue.is_empty queue) do
          let src, dst, m = Queue.pop queue in
          incr deliveries;
          let n, replies = P.handle nodes.(dst) ~src m in
          nodes.(dst) <- n;
          List.iter (fun (d, m) -> Queue.add (dst, d, m) queue) replies
        done;
        (* Root + depth-1 subtree levels + bucket + bucket reply. *)
        check "multiple exchanges to locate divergence" true (!deliveries >= 5);
        check "b caught up" true (S.mem "only-at-a" (P.state nodes.(1))));
    Alcotest.test_case "bucket replies make the exchange symmetric" `Quick
      (fun () ->
        let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let b = P.init ~id:1 ~neighbors:[ 0 ] ~total:2 in
        let a = P.local_update a "from-a" in
        let b = P.local_update b "from-b" in
        let a, msgs = P.tick a in
        let nodes = [| a; b |] in
        let queue = Queue.create () in
        List.iter (fun (d, m) -> Queue.add (0, d, m) queue) msgs;
        while not (Queue.is_empty queue) do
          let src, dst, m = Queue.pop queue in
          let n, replies = P.handle nodes.(dst) ~src m in
          nodes.(dst) <- n;
          List.iter (fun (d, m) -> Queue.add (dst, d, m) queue) replies
        done;
        (* One digest walk initiated by a suffices for both directions
           when the divergent elements land in the same bucket exchange;
           at minimum a must now know b's element or vice versa. *)
        check "information flowed" true
          (S.mem "from-b" (P.state nodes.(0))
          || S.mem "from-a" (P.state nodes.(1))));
    Alcotest.test_case "digests carry metadata, buckets carry payload"
      `Quick (fun () ->
        let a = P.init ~id:0 ~neighbors:[ 1 ] ~total:2 in
        let a = P.local_update a "x" in
        let _, msgs = P.tick a in
        let root = List.assoc 1 msgs in
        check_int "root has no payload" 0 (P.payload_weight root);
        check "root has metadata" true (P.metadata_weight root > 0));
  ]

module Si = Gset.Of_int
module Pi = Merkle_sync.Make (Si) (Merkle_sync.Default_config)
module R = Runner.Make (Pi)

let convergence =
  [
    Alcotest.test_case "merkle converges on a mesh" `Quick (fun () ->
        let topo = Topology.partial_mesh 8 in
        let res =
          R.run ~equal:Si.equal ~topology:topo ~rounds:10
            ~ops:(fun ~round ~node _ -> Workload.gset ~nodes:8 ~round ~node ())
            ()
        in
        check "converged" true res.R.converged;
        check_int "all elements" 80 (Si.cardinal res.R.finals.(0)));
    Alcotest.test_case "merkle tolerates duplication and reordering" `Quick
      (fun () ->
        let topo = Topology.ring 6 in
        let faults =
          {
            R.no_faults with
            duplicate = 0.3;
            shuffle = true;
            seed = 77;
          }
        in
        let res =
          R.run ~faults ~equal:Si.equal ~topology:topo ~rounds:8
            ~ops:(fun ~round ~node _ -> Workload.gset ~nodes:6 ~round ~node ())
            ()
        in
        check "converged" true res.R.converged);
    Alcotest.test_case "hash work dwarfs bp+rr's (the paper's objection)"
      `Quick (fun () ->
        let topo = Topology.ring 6 in
        let ops ~round ~node _ = Workload.gset ~nodes:6 ~round ~node () in
        let module Pd =
          Delta_sync.Make (Si) (Delta_sync.Bp_rr_config) in
        let module Rd = Runner.Make (Pd) in
        let merkle =
          R.run ~equal:Si.equal ~topology:topo ~rounds:10 ~ops ()
        in
        let bprr =
          Rd.run ~equal:Si.equal ~topology:topo ~rounds:10 ~ops ()
        in
        check "merkle pays more work" true
          (R.total_work merkle > Rd.total_work bprr));
  ]

let () =
  Alcotest.run "merkle anti-entropy"
    [ ("behaviour", behavioural); ("convergence", convergence) ]
