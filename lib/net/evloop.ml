(* Readiness event loop: incremental interest registration behind a
   backend seam.  See evloop.mli for the contract. *)

module type BACKEND = sig
  type t

  val name : string
  val create : unit -> t
  val add : t -> ?read:bool -> Unix.file_descr -> unit
  val remove : t -> Unix.file_descr -> unit
  val set_write : t -> Unix.file_descr -> bool -> unit

  val wait :
    t -> timeout:float -> Unix.file_descr list * Unix.file_descr list

  val close : t -> unit
end

module Select : BACKEND = struct
  type interest = { mutable read : bool; mutable write : bool }

  (* The fd lists handed to [Unix.select] are caches over [interests]:
     registration changes only mark them dirty, and [wait] rebuilds a
     list at most once per actual change — steady-state passes reuse
     the same lists with zero bookkeeping. *)
  type t = {
    interests : (Unix.file_descr, interest) Hashtbl.t;
    mutable read_fds : Unix.file_descr list;
    mutable write_fds : Unix.file_descr list;
    mutable read_dirty : bool;
    mutable write_dirty : bool;
  }

  let name = "select"

  let create () =
    {
      interests = Hashtbl.create 16;
      read_fds = [];
      write_fds = [];
      read_dirty = false;
      write_dirty = false;
    }

  let add t ?(read = true) fd =
    match Hashtbl.find_opt t.interests fd with
    | Some i ->
        if i.read <> read then begin
          i.read <- read;
          t.read_dirty <- true
        end
    | None ->
        Hashtbl.replace t.interests fd { read; write = false };
        if read then t.read_dirty <- true

  let remove t fd =
    match Hashtbl.find_opt t.interests fd with
    | None -> ()
    | Some i ->
        Hashtbl.remove t.interests fd;
        if i.read then t.read_dirty <- true;
        if i.write then t.write_dirty <- true

  let set_write t fd want =
    match Hashtbl.find_opt t.interests fd with
    | None -> ()
    | Some i ->
        if i.write <> want then begin
          i.write <- want;
          t.write_dirty <- true
        end

  let refresh t =
    if t.read_dirty then begin
      t.read_fds <-
        Hashtbl.fold
          (fun fd i acc -> if i.read then fd :: acc else acc)
          t.interests [];
      t.read_dirty <- false
    end;
    if t.write_dirty then begin
      t.write_fds <-
        Hashtbl.fold
          (fun fd i acc -> if i.write then fd :: acc else acc)
          t.interests [];
      t.write_dirty <- false
    end

  let wait t ~timeout =
    refresh t;
    match Unix.select t.read_fds t.write_fds [] timeout with
    | r, w, _ -> (r, w)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])

  let close _ = ()
end

type t = Loop : (module BACKEND with type t = 'a) * 'a -> t

let make (module B : BACKEND) = Loop ((module B), B.create ())
let create () = Loop ((module Select), Select.create ())
let backend_name (Loop ((module B), _)) = B.name
let add (Loop ((module B), s)) ?read fd = B.add s ?read fd
let remove (Loop ((module B), s)) fd = B.remove s fd
let set_write (Loop ((module B), s)) fd want = B.set_write s fd want
let wait (Loop ((module B), s)) ~timeout = B.wait s ~timeout
let close (Loop ((module B), s)) = B.close s
