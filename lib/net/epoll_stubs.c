/* Linux epoll bindings for Evloop_epoll (stdlib-only build: no ctypes,
 * no external packages).  File descriptors cross the boundary as the
 * plain ints the Unix library represents them as on POSIX systems.
 *
 * Non-Linux builds compile the #else branch: crdt_epoll_available
 * reports false and the other entry points fail loudly, so --evloop
 * auto falls back to select portably and --evloop epoll errors out.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/signals.h>

#ifdef __linux__

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <unistd.h>

CAMLprim value crdt_epoll_available(value unit)
{
  (void)unit;
  return Val_true;
}

CAMLprim value crdt_epoll_create(value unit)
{
  int fd;
  (void)unit;
  fd = epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) caml_failwith("epoll_create1 failed");
  return Val_int(fd);
}

/* op: 0 = add, 1 = mod, 2 = del; events: bit 0 read, bit 1 write.
 * Returns 0 on success, errno on failure -- the OCaml side decides
 * which failures are benign (idempotent add/remove semantics). */
CAMLprim value crdt_epoll_ctl(value vep, value vop, value vfd, value vevents)
{
  static const int ops[3] = { EPOLL_CTL_ADD, EPOLL_CTL_MOD, EPOLL_CTL_DEL };
  struct epoll_event ev;
  memset(&ev, 0, sizeof ev);
  if (Int_val(vevents) & 1) ev.events |= EPOLLIN;
  if (Int_val(vevents) & 2) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(vfd);
  if (epoll_ctl(Int_val(vep), ops[Int_val(vop)], Int_val(vfd), &ev) < 0)
    return Val_int(errno ? errno : -1);
  return Val_int(0);
}

/* Fill [vfds] with the ready descriptors and [vrevents] with their
 * event bits (bit 0 readable, bit 1 writable; ERR/HUP surface on both
 * so a dead connection is noticed whichever direction the runtime
 * watches); returns the count.  The wait releases the OCaml runtime
 * lock: a blocked domain must not stall the other domains' GC. */
CAMLprim value crdt_epoll_wait(value vep, value vtimeout_ms, value vfds,
                               value vrevents)
{
  struct epoll_event evs[64];
  int max = Wosize_val(vfds);
  int ep = Int_val(vep);
  int timeout = Int_val(vtimeout_ms);
  int n, i;
  if (max > 64) max = 64;
  caml_enter_blocking_section();
  n = epoll_wait(ep, evs, max, timeout);
  caml_leave_blocking_section();
  if (n < 0) {
    if (errno == EINTR) return Val_int(0);
    caml_failwith("epoll_wait failed");
  }
  for (i = 0; i < n; i++) {
    int bits = 0;
    if (evs[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) bits |= 1;
    if (evs[i].events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) bits |= 2;
    Field(vfds, i) = Val_int(evs[i].data.fd);
    Field(vrevents, i) = Val_int(bits);
  }
  return Val_int(n);
}

CAMLprim value crdt_epoll_close(value vep)
{
  close(Int_val(vep));
  return Val_unit;
}

#else /* !__linux__ */

CAMLprim value crdt_epoll_available(value unit)
{
  (void)unit;
  return Val_false;
}

CAMLprim value crdt_epoll_create(value unit)
{
  (void)unit;
  caml_failwith("epoll is unavailable on this platform");
}

CAMLprim value crdt_epoll_ctl(value vep, value vop, value vfd, value vevents)
{
  (void)vep; (void)vop; (void)vfd; (void)vevents;
  caml_failwith("epoll is unavailable on this platform");
}

CAMLprim value crdt_epoll_wait(value vep, value vtimeout_ms, value vfds,
                               value vrevents)
{
  (void)vep; (void)vtimeout_ms; (void)vfds; (void)vrevents;
  caml_failwith("epoll is unavailable on this platform");
}

CAMLprim value crdt_epoll_close(value vep)
{
  (void)vep;
  caml_failwith("epoll is unavailable on this platform");
}

#endif
