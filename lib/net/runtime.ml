(** Event-loop peer runtime: runs one replica of a {!Crdt_proto}
    protocol over real sockets.

    Each process listens on its own address and dials every peer; a
    dialed connection carries traffic in one direction only (dialer →
    acceptor), so a full link between two nodes is a pair of sockets.
    The first frame on a dialed connection is a [Hello] carrying the
    dialer's node id, which is how the accepting side attributes
    subsequent protocol messages to a source replica.

    The loop is a [select] over the listening socket and all inbound
    connections, with a periodic tick (the protocol's synchronization
    interval): each tick applies the workload operations due, runs
    [P.tick] and ships the outbound messages; inbound frames are decoded
    and dispatched through [P.handle], whose replies are sent
    immediately.

    {2 Termination}

    Replicas stop by mutual agreement rather than a wall clock: once a
    node has applied all its operations and observed [quiet_ticks]
    consecutive ticks with no traffic in either direction (its δ-buffers
    are drained and acknowledged), it broadcasts a [Done] announcement
    but keeps serving.  It exits only when it is quiet {e and} has
    received [Done] from every peer — at which point no peer can have
    anything left to send it.  Send failures after a peer's [Done] are
    expected (the peer may already have exited) and ignored.
    [max_ticks] bounds the run as a failsafe. *)

(* Frame kinds on the wire (the Frame layer's dispatch byte). *)
let kind_hello = 0
let kind_message = 1
let kind_done = 2

type config = {
  id : int;  (** this replica's node id. *)
  listen : Addr.t;
  peers : (int * Addr.t) list;  (** peer node id ↦ its listen address. *)
  total : int;  (** total replica count (for [P.init]). *)
  tick_ms : int;  (** synchronization interval. *)
  ops_ticks : int;  (** ticks during which operations are generated. *)
  quiet_ticks : int;  (** quiet ticks required before announcing Done. *)
  max_ticks : int;  (** hard bound on the run. *)
  dial_timeout_s : float;  (** how long to retry dialing each peer. *)
  verbose : bool;
}

let default_config ~id ~listen ~peers ~total =
  {
    id;
    listen;
    peers;
    total;
    tick_ms = 20;
    ops_ticks = 0;
    quiet_ticks = 5;
    max_ticks = 5000;
    dial_timeout_s = 10.;
    verbose = false;
  }

let id_payload id =
  Crdt_wire.Codec.encode_to_string Crdt_wire.Codec.varint id

module Make (P : Crdt_proto.Protocol_intf.PROTOCOL) = struct
  type state = {
    cfg : config;
    mutable node : P.node;
    out : (int, Conn.t) Hashtbl.t;  (** peer id ↦ dialed connection. *)
    mutable inbound : (Conn.t * int option ref) list;
        (** accepted connections with the peer id learned from Hello. *)
    peer_done : (int, unit) Hashtbl.t;
    mutable activity : bool;  (** traffic since the last tick. *)
    mutable quiet : int;
    mutable done_sent : bool;
  }

  let log st fmt =
    if st.cfg.verbose then
      Printf.eprintf ("node %d: " ^^ fmt ^^ "\n%!") st.cfg.id
    else Printf.ifprintf stderr fmt

  let dial st (j, addr) =
    let deadline = Unix.gettimeofday () +. st.cfg.dial_timeout_s in
    let rec attempt () =
      let fd = Unix.socket (Addr.domain addr) Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Addr.to_sockaddr addr) with
      | () -> fd
      | exception Unix.Unix_error ((ECONNREFUSED | ENOENT | ETIMEDOUT), _, _)
        when Unix.gettimeofday () < deadline ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Unix.sleepf 0.05;
          attempt ()
      | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e
    in
    let conn = Conn.create (attempt ()) in
    (match Conn.send conn ~kind:kind_hello (id_payload st.cfg.id) with
    | Ok () -> ()
    | Error msg -> failwith (Printf.sprintf "hello to peer %d failed: %s" j msg));
    Hashtbl.replace st.out j conn;
    log st "connected to peer %d at %s" j (Addr.to_string addr)

  (* Ship one protocol message to [dest].  A dead connection after the
     peer announced Done is the expected shutdown race; before that it
     is a hard error. *)
  let ship st dest msg =
    match Hashtbl.find_opt st.out dest with
    | None -> failwith (Printf.sprintf "no connection to peer %d" dest)
    | Some conn -> (
        let payload = Crdt_wire.Codec.encode_to_string P.message_codec msg in
        match Conn.send conn ~kind:kind_message payload with
        | Ok () -> ()
        | Error m when Hashtbl.mem st.peer_done dest ->
            log st "send to finished peer %d failed (%s); ignored" dest m
        | Error m ->
            failwith (Printf.sprintf "send to peer %d failed: %s" dest m))

  let handle_message st ~src payload =
    match Crdt_wire.Codec.decode_string P.message_codec payload with
    | Error e ->
        failwith
          (Printf.sprintf "bad message from peer %d: %s" src
             (Crdt_wire.Codec.error_to_string e))
    | Ok msg ->
        st.activity <- true;
        let node, replies = P.handle st.node ~src msg in
        st.node <- node;
        List.iter (fun (dest, reply) -> ship st dest reply) replies

  let decode_id payload =
    match Crdt_wire.Codec.decode_string Crdt_wire.Codec.varint payload with
    | Ok id -> id
    | Error e ->
        failwith ("bad peer id payload: " ^ Crdt_wire.Codec.error_to_string e)

  let handle_frame st peer_ref (kind, payload) =
    if kind = kind_hello then peer_ref := Some (decode_id payload)
    else if kind = kind_done then begin
      let j = decode_id payload in
      log st "peer %d done" j;
      Hashtbl.replace st.peer_done j ()
    end
    else if kind = kind_message then
      match !peer_ref with
      | Some src -> handle_message st ~src payload
      | None -> failwith "protocol message before Hello"
    else failwith (Printf.sprintf "unknown frame kind %d" kind)

  let service_inbound st conn peer_ref =
    match Conn.recv conn with
    | Ok frames -> List.iter (handle_frame st peer_ref) frames
    | Error `Closed ->
        (* Peers close their dialed connections when they exit; their
           Done announcement has already been processed by then. *)
        log st "inbound connection closed"
    | Error (`Bad e) ->
        failwith ("framing error: " ^ Crdt_wire.Codec.error_to_string e)

  let tick st ~n ~ops =
    if n < st.cfg.ops_ticks then
      List.iter
        (fun op -> st.node <- P.local_update st.node op)
        (ops ~tick:n);
    let node, msgs = P.tick st.node in
    st.node <- node;
    List.iter (fun (dest, msg) -> ship st dest msg) msgs;
    let busy = st.activity || msgs <> [] || n < st.cfg.ops_ticks in
    st.activity <- false;
    st.quiet <- (if busy then 0 else st.quiet + 1);
    if (not st.done_sent) && st.quiet >= st.cfg.quiet_ticks then begin
      st.done_sent <- true;
      log st "quiet for %d ticks; announcing done" st.quiet;
      Hashtbl.iter
        (fun j conn ->
          match Conn.send conn ~kind:kind_done (id_payload st.cfg.id) with
          | Ok () -> ()
          | Error m -> log st "done to peer %d failed (%s)" j m)
        st.out
    end

  let finished st =
    st.done_sent
    && st.quiet >= st.cfg.quiet_ticks
    && List.for_all (fun (j, _) -> Hashtbl.mem st.peer_done j) st.cfg.peers

  (** Run the replica to completion and return its final CRDT state.
      [ops ~tick] lists the operations this replica applies at tick
      [tick] (consulted for ticks [0 .. ops_ticks)). *)
  let serve (cfg : config) ~(ops : tick:int -> P.op list) : P.crdt =
    (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
    | _ -> ()
    | exception (Invalid_argument _ | Sys_error _) -> ());
    let neighbors = List.map fst cfg.peers in
    let st =
      {
        cfg;
        node = P.init ~id:cfg.id ~neighbors ~total:cfg.total;
        out = Hashtbl.create (List.length cfg.peers);
        inbound = [];
        peer_done = Hashtbl.create (List.length cfg.peers);
        activity = false;
        quiet = 0;
        done_sent = false;
      }
    in
    Addr.cleanup cfg.listen;
    let listener = Unix.socket (Addr.domain cfg.listen) Unix.SOCK_STREAM 0 in
    (match cfg.listen with
    | Addr.Tcp _ -> Unix.setsockopt listener Unix.SO_REUSEADDR true
    | Addr.Unix_sock _ -> ());
    Unix.bind listener (Addr.to_sockaddr cfg.listen);
    Unix.listen listener 64;
    log st "listening on %s" (Addr.to_string cfg.listen);
    (* Dial-all barrier: every peer must be reachable before the first
       tick, so no protocol message is ever emitted into the void. *)
    List.iter (dial st) cfg.peers;
    let tick_s = float_of_int cfg.tick_ms /. 1000. in
    let next_tick = ref (Unix.gettimeofday () +. tick_s) in
    let n = ref 0 in
    let result = ref None in
    while !result = None do
      let timeout = Float.max 0. (!next_tick -. Unix.gettimeofday ()) in
      let readable =
        let fds =
          listener
          :: List.filter_map
               (fun (c, _) -> if Conn.alive c then Some (Conn.fd c) else None)
               st.inbound
        in
        match Unix.select fds [] [] timeout with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      List.iter
        (fun fd ->
          if fd == listener then begin
            let peer_fd, _ = Unix.accept listener in
            st.inbound <- (Conn.create peer_fd, ref None) :: st.inbound
          end
          else
            match
              List.find_opt (fun (c, _) -> Conn.fd c == fd) st.inbound
            with
            | Some (conn, peer_ref) -> service_inbound st conn peer_ref
            | None -> ())
        readable;
      if Unix.gettimeofday () >= !next_tick then begin
        tick st ~n:!n ~ops;
        incr n;
        next_tick := !next_tick +. tick_s;
        if finished st then result := Some (P.state st.node)
        else if !n >= cfg.max_ticks then begin
          Printf.eprintf "node %d: max_ticks (%d) reached before shutdown\n%!"
            cfg.id cfg.max_ticks;
          result := Some (P.state st.node)
        end
      end
    done;
    Hashtbl.iter (fun _ c -> Conn.close c) st.out;
    List.iter (fun (c, _) -> Conn.close c) st.inbound;
    (try Unix.close listener with Unix.Unix_error _ -> ());
    Addr.cleanup cfg.listen;
    Option.get !result
end
