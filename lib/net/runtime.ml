(** Event-loop peer runtime: runs one replica of a {!Crdt_proto}
    protocol over real sockets.

    Each process listens on its own address and dials every peer; a
    dialed connection carries traffic in one direction only (dialer →
    acceptor), so a full link between two nodes is a pair of sockets.
    The first frame on a dialed connection is a [Hello] carrying the
    dialer's node id, which is how the accepting side attributes
    subsequent protocol messages to a source replica.

    The replica itself is a {!Crdt_engine.Driver}: this module only
    moves frames between sockets and the driver, so the apply → tick →
    ship → handle cycle (and all byte accounting) is the same code the
    simulator runs.  Accounting follows the simulator's convention —
    protocol messages are tallied at {e delivery} through the driver's
    trace sink; [Hello]/[Done]/[Mark]/[Digest] control frames are
    free — so a cluster's summed [wire_bytes] is directly comparable to
    a {!Crdt_sim.Runner} total for the same workload.

    {2 Batched data path}

    Outbound traffic is coalesced per peer: the ship phase {e stages}
    every frame bound for a peer into that connection's reusable
    outbound buffer ({!Conn.stage_value} — the message payload is
    encoded straight into it, no intermediate strings) and the staged
    bytes leave in one [write(2)] per peer per loop iteration, so a
    tick's messages, any replies raised while pumping, and a trailing
    control frame (Done, or the lockstep Mark) all travel in the same
    syscall.  Short writes and [EAGAIN] queue the remainder on the
    connection; the event loop watches the fd for writability and
    drains it.  Batching changes only how many syscalls carry the
    bytes, never the bytes: frame encoding is shared with the eager
    path, which the sim-vs-socket byte-equality test pins.  [batch =
    false] in the config restores one write per message (the
    [--no-batch] baseline the throughput bench measures against).

    {2 Codec fan-out ([--domains N])}

    With [domains > 1] the serve loop attaches the engine's Domain pool
    ({!Crdt_engine.Shard.Pool}) and moves the {e codec} work — the CPU
    component of the data path — onto it: the ship phase defers its
    shipments and a flush groups them per destination, encoding each
    peer's group into that connection's staging buffer on a worker
    domain ({!stage_pending}); inbound message payloads are predecoded
    on the pool before the sequential dispatch consumes them in arrival
    order.  All socket I/O, the event loop, and the Driver state
    machine stay on the calling domain, so observable behaviour — the
    byte stream on every connection, the trace accounting, lockstep's
    round attribution — is identical at every width; only the domain
    that ran [encode]/[decode] changes.  Passes smaller than
    [fanout_min] messages skip the pool: waking it costs more than the
    codec work it would absorb.

    {2 Wall-clock mode}

    The loop is an {!Evloop} — backend per [--evloop]: the portable
    [select], or Linux [epoll] ({!Evloop_epoll}) — over the listening
    socket, all
    inbound connections, and any outbound connection with queued bytes,
    with a periodic tick (the protocol's synchronization interval):
    each tick applies the workload operations due, runs the driver's
    tick and stages the outbound messages; inbound frames are decoded
    and delivered through the driver, whose replies are staged and
    flushed with the same pass.

    Replicas stop by mutual agreement rather than a wall clock.  A node
    is {e busy} while it still has operations to apply or its CRDT state
    changed since the last tick (the driver's dirty bit, fed by a
    state-equality check on every delivery); chatter alone — protocols
    like state-based or scuttlebutt ship messages every interval forever
    — does not count, which is what lets every registered protocol
    terminate here.  After [quiet_ticks] consecutive non-busy ticks a
    node broadcasts [Done] but keeps serving; it exits once it is quiet
    {e and} has received [Done] from every peer.  Send failures after a
    peer's [Done] are expected (the peer may already have exited) and
    ignored.  [max_ticks] bounds the run as a failsafe.

    {2 Lockstep mode}

    With [lockstep] set, ticks are driven by {e round barriers} instead
    of the clock, making a socket cluster reproduce the simulator's
    round structure exactly.  Per round [r], a node ships the replies
    buffered from round [r-1], applies the round's operations, runs the
    driver tick, then broadcasts a [Mark r] frame: since each TCP
    connection is FIFO, a peer that has seen [Mark r] on a connection
    has necessarily seen every round-[r] message sent on it.  Messages
    arriving on a connection are tagged with the number of marks seen so
    far on it, which is exactly their round.  Once marks for round [r]
    are in from every peer, the round's messages are delivered (replies
    buffered for round [r+1]) and the node broadcasts a [Digest r] frame
    carrying [(ops_done, digest-of-state)]; when digests for round [r]
    are in from every peer, everyone decides identically: stop iff all
    replicas are done generating operations and all digests agree.
    Digest exchange is itself a barrier, so a peer can run at most one
    round ahead, and the message/mark tagging above stays unambiguous.

    For protocols whose handlers send no replies (the delta family
    without acks, state-based), a lockstep run is message-for-message
    identical to the simulator on the same workload — the basis of the
    sim-vs-socket cross-check in the test suite. *)

module Trace = Crdt_engine.Trace
module Dynbuf = Crdt_engine.Dynbuf
module Pool = Crdt_engine.Shard.Pool

(* Frame kinds on the wire (the Frame layer's dispatch byte). *)
let kind_hello = 0
let kind_message = 1
let kind_done = 2
let kind_mark = 3
let kind_digest = 4

(** Why the serve loop stopped — reported structurally so kill-restart
    tests and benches can assert the exact cause from the metrics
    JSON. *)
type stop_reason =
  | Agreement  (** mutual Done / lockstep digest unanimity. *)
  | Max_ticks  (** the tick-count failsafe fired. *)
  | Max_wall  (** the wall-clock failsafe fired. *)
  | Signal of int  (** SIGTERM/SIGINT-initiated graceful shutdown. *)

let stop_reason_name = function
  | Agreement -> "clean"
  | Max_ticks -> "max_ticks"
  | Max_wall -> "wall_s"
  | Signal _ -> "signal"

type config = {
  id : int;  (** this replica's node id. *)
  listen : Addr.t;
  peers : (int * Addr.t) list;  (** peer node id ↦ its listen address. *)
  total : int;  (** total replica count (for [P.init]). *)
  tick_ms : int;  (** synchronization interval (wall-clock mode). *)
  ops_ticks : int;  (** ticks during which operations are generated. *)
  quiet_ticks : int;  (** quiet ticks required before announcing Done. *)
  max_ticks : int;  (** hard bound on the run. *)
  max_wall_s : float;
      (** hard wall-clock bound on a wall-clock-mode run; [0.] means
          unbounded.  A backstop for free-running benches: with ticks
          paced down while a node waits for its peers' Dones, a crashed
          peer would otherwise take ages to exhaust [max_ticks]. *)
  dial_timeout_s : float;  (** how long to retry dialing each peer. *)
  lockstep : bool;  (** round-barrier mode instead of wall-clock ticks. *)
  batch : bool;
      (** coalesce outbound frames into one write per peer per loop
          pass (default); [false] restores one write per message. *)
  domains : int;
      (** width of the codec fan-out pool (the engine's Domain pool):
          with [domains > 1] and [batch] on, per-peer frame encoding
          and inbound message decoding run on worker domains.  I/O and
          the driver state machine stay on the calling domain, so the
          bytes on each connection are identical at every width. *)
  evloop : Evloop_epoll.choice;
      (** readiness backend: select, epoll, or epoll-where-available. *)
  fanout_min : int;
      (** below this many staged/queued protocol messages a pass keeps
          its codec work inline — fanning out a handful of frames costs
          more in pool wake-ups than it saves. *)
  verbose : bool;
}

let default_config ~id ~listen ~peers ~total =
  {
    id;
    listen;
    peers;
    total;
    tick_ms = 20;
    ops_ticks = 0;
    quiet_ticks = 5;
    max_ticks = 5000;
    max_wall_s = 0.;
    dial_timeout_s = 10.;
    lockstep = false;
    batch = true;
    domains = 1;
    evloop = `Auto;
    fanout_min = 32;
    verbose = false;
  }

(* Growable sample store for per-tick latencies. *)
type samples = { mutable buf : float array; mutable count : int }

let samples () = { buf = Array.make 256 0.; count = 0 }

let add_sample s x =
  if s.count = Array.length s.buf then begin
    let grown = Array.make (2 * s.count) 0. in
    Array.blit s.buf 0 grown 0 s.count;
    s.buf <- grown
  end;
  s.buf.(s.count) <- x;
  s.count <- s.count + 1

let percentile s p =
  if s.count = 0 then 0.
  else begin
    let sorted = Array.sub s.buf 0 s.count in
    Array.sort compare sorted;
    sorted.(min (s.count - 1) (s.count * p / 100))
  end

let id_payload id =
  Crdt_wire.Codec.encode_to_string Crdt_wire.Codec.varint id

(* Lockstep digest payload: round, (done generating ops, state digest). *)
let digest_codec =
  Crdt_wire.Codec.(pair varint (pair bool string))

module Make (P : Crdt_proto.Protocol_intf.PROTOCOL) = struct
  module D = Crdt_engine.Driver.Make (P)

  type result = {
    state : P.crdt;
    ticks : int;  (** ticks (or lockstep rounds) executed. *)
    counters : Trace.counters;
        (** the run's tallies, same accounting as the simulator's
            per-round records: received protocol messages with their
            payload/metadata/wire costs, plus final memory sizes and
            the write-syscall count. *)
    ops_applied : int;
    writes : int;  (** successful [write(2)] calls over the whole run. *)
    wall_s : float;  (** wall-clock duration of the serve loop. *)
    tick_p99_us : float;
        (** 99th-percentile duration of a wall-clock tick (apply +
            driver tick + ship + flush), in microseconds; 0 in
            lockstep mode (rounds there are barrier-, not work-,
            bound). *)
    backend : string;
        (** the readiness backend that actually ran ("select" or
            "epoll") — what [`Auto] resolved to. *)
    clean : bool;
        (** whether the run terminated by agreement (mutual [Done] /
            digest unanimity) rather than a failsafe or a signal. *)
    stop : stop_reason;  (** the structured version of [clean]. *)
  }

  type inbound = {
    conn : Conn.t;
    peer : int option ref;  (** learned from the Hello frame. *)
    mutable marks : int;  (** lockstep: mark frames seen on this conn. *)
  }

  type state = {
    cfg : config;
    drv : D.t;
    loop : Evloop.t;
    listener : Unix.file_descr;
    out : (int, Conn.t) Hashtbl.t;  (** peer id ↦ dialed connection. *)
    mutable inbound : inbound list;
        (** accepted connections; pruned when a peer closes. *)
    peer_done : (int, unit) Hashtbl.t;
    tick_times : samples;  (** wall-clock per-tick durations, seconds. *)
    rng : Random.State.t;  (** dial-backoff jitter only. *)
    mutable quiet : int;
    mutable done_sent : bool;
    sig_stop : int option ref;
        (** set by the SIGTERM/SIGINT handler; checked at tick/round
            boundaries. *)
    (* Wall-clock dead-peer bookkeeping: a failed send buries the
       connection and schedules redials with capped backoff, so a peer
       that was kill -9'd and restarted from its data dir is re-linked
       (both directions: it re-dials us on boot, we re-dial it here). *)
    mutable to_bury : int list;
        (** peers whose outbound connection failed mid-iteration;
            swept by [bury] outside the iteration. *)
    dead : (int, float * float) Hashtbl.t;
        (** peer id ↦ (next redial attempt time, current backoff). *)
    (* Lockstep bookkeeping. *)
    msgq : (int, (int * string) list ref) Hashtbl.t;
        (** round ↦ (src, undecoded payload) in arrival order. *)
    marks_of : (int, int) Hashtbl.t;  (** peer id ↦ marks received. *)
    digests : (int * int, bool * string) Hashtbl.t;
        (** (round, peer id) ↦ its (ops_done, digest). *)
    mutable pending_out : (int * P.message) list;
        (** lockstep replies buffered for the next round, reversed. *)
    (* Codec fan-out (domains > 1): the pool plus the reusable staging
       that carries work to it. *)
    pool : Pool.t;
    pending_ship : (int * P.message) Dynbuf.t;
        (** batched-mode shipments deferred for {!stage_pending}'s
            per-peer parallel encode, production order. *)
    ship_order : int Dynbuf.t;
        (** destinations in first-appearance order (the group list a
            fan-out pass partitions). *)
    ship_groups : (int, P.message Dynbuf.t) Hashtbl.t;
        (** destination ↦ its pending messages, production order. *)
    frames : (inbound * (int * string)) Dynbuf.t;
        (** frames collected by one pump pass, arrival order. *)
  }

  let log st fmt =
    if st.cfg.verbose then
      Printf.eprintf ("node %d: " ^^ fmt ^^ "\n%!") st.cfg.id
    else Printf.ifprintf stderr fmt

  (* Dial with exponential backoff + jitter (capped), so a cluster
     starting out of order waits instead of hammering connect(2) in a
     busy loop.  TCP connections disable Nagle: the delta protocols
     emit small frames whose delivery the default coalescing would
     delay a full RTT-or-timer. *)
  let dial st (j, addr) =
    let deadline = Unix.gettimeofday () +. st.cfg.dial_timeout_s in
    let rec attempt delay =
      let fd = Unix.socket (Addr.domain addr) Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Addr.to_sockaddr addr) with
      | () -> fd
      | exception Unix.Unix_error ((ECONNREFUSED | ENOENT | ETIMEDOUT), _, _)
        when Unix.gettimeofday () < deadline ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          let jittered = delay *. (0.5 +. Random.State.float st.rng 0.5) in
          let remaining = deadline -. Unix.gettimeofday () in
          Unix.sleepf (Float.max 0. (Float.min jittered remaining));
          attempt (Float.min 0.64 (delay *. 2.))
      | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e
    in
    let fd = attempt 0.01 in
    (match addr with
    | Addr.Tcp _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
    | Addr.Unix_sock _ -> ());
    let conn = Conn.create fd in
    Evloop.add st.loop ~read:false (Conn.fd conn);
    (match Conn.send conn ~kind:kind_hello (id_payload st.cfg.id) with
    | Ok () -> Evloop.set_write st.loop (Conn.fd conn) (Conn.pending_out conn > 0)
    | Error msg -> failwith (Printf.sprintf "hello to peer %d failed: %s" j msg));
    Hashtbl.replace st.out j conn;
    log st "connected to peer %d at %s" j (Addr.to_string addr)

  (* Flush a peer's staged/queued bytes and keep the event loop's write
     interest in sync with what remains.  In wall-clock mode a dead
     connection is the expected shutdown race — a peer exits once it is
     quiet and has everyone's Done, and its own Done may still be deep
     in our unread inbound backlog when our next write to it breaks; the
     Done arrives on the {e inbound} connection regardless, so we log
     and keep serving (a peer that truly crashed never sends Done and
     the run ends unclean at [max_ticks]).  In lockstep mode the round
     barriers mean no peer can be legitimately gone mid-run, so a write
     failure is a hard error there. *)
  let flush_peer ?(ignore_dead = false) st j conn =
    match Conn.flush conn with
    | Ok () ->
        Evloop.set_write st.loop (Conn.fd conn) (Conn.pending_out conn > 0)
    | Error m ->
        Evloop.remove st.loop (Conn.fd conn);
        if st.cfg.lockstep then
          if ignore_dead || Hashtbl.mem st.peer_done j then
            log st "send to peer %d failed (%s); ignored" j m
          else failwith (Printf.sprintf "send to peer %d failed: %s" j m)
        else begin
          (* Wall-clock mode: the peer may be mid-restart — bury the
             connection and let the redial machinery re-link.  Deferred
             to [bury]: this path runs inside Hashtbl.iter over
             [st.out]. *)
          log st "send to peer %d failed (%s); scheduling redial" j m;
          st.to_bury <- j :: st.to_bury
        end

  (* Stage one protocol message on [dest]'s connection right now (the
     batched data path's encode). *)
  let stage_now st dest msg =
    match Hashtbl.find_opt st.out dest with
    | None ->
        if st.cfg.lockstep then
          failwith (Printf.sprintf "no connection to peer %d" dest)
        else
          (* The peer is down (buried, awaiting redial).  Dropping is
             safe in wall-clock mode: every registered protocol either
             retries by design or runs an explicit recovery exchange
             once the restarted peer dials back in. *)
          log st "dropping message to dead peer %d" dest
    | Some conn -> Conn.stage_value conn ~kind:kind_message P.message_codec msg

  (* Ship one protocol message to [dest].  Batched mode stages it on the
     peer's connection — deferred to {!stage_pending} when a fan-out
     pool is attached, immediately otherwise; either way the loop
     flushes once per pass.  Unbatched mode stages + flushes immediately
     (one write per message, the pre-batching path kept for
     measurement). *)
  let ship st dest msg =
    if st.cfg.batch then
      if Pool.size st.pool > 1 then Dynbuf.push st.pending_ship (dest, msg)
      else stage_now st dest msg
    else
      match Hashtbl.find_opt st.out dest with
      | None ->
          if st.cfg.lockstep then
            failwith (Printf.sprintf "no connection to peer %d" dest)
          else log st "dropping message to dead peer %d" dest
      | Some conn ->
          let payload = Crdt_wire.Codec.encode_to_string P.message_codec msg in
          Conn.stage conn ~kind:kind_message payload;
          flush_peer st dest conn

  (* Drain the deferred shipments onto their connections.  The frames
     bound for one peer are grouped in production order and each group
     is encoded into its own connection's staging buffer, so groups are
     disjoint and the pool can encode them on different domains — the
     per-connection byte stream is identical to the sequential path's,
     only the domain that ran [encode] changes.  Small passes (fewer
     than [fanout_min] messages, or fewer than two destinations) stay
     inline: waking the pool costs more than encoding a handful of
     frames.  Dead destinations take the sequential path's fate
     (lockstep: hard error; wall-clock: logged drop) while grouping,
     before any parallel work starts. *)
  let stage_pending st =
    if not (Dynbuf.is_empty st.pending_ship) then begin
      let many = Dynbuf.length st.pending_ship >= st.cfg.fanout_min in
      if (not many) || Pool.size st.pool = 1 then
        Dynbuf.iter (fun (dest, msg) -> stage_now st dest msg) st.pending_ship
      else begin
        Dynbuf.iter
          (fun (dest, msg) ->
            match Hashtbl.find_opt st.ship_groups dest with
            | Some q -> Dynbuf.push q msg
            | None ->
                if Hashtbl.mem st.out dest then begin
                  let q = Dynbuf.create () in
                  Dynbuf.push q msg;
                  Hashtbl.replace st.ship_groups dest q;
                  Dynbuf.push st.ship_order dest
                end
                else if st.cfg.lockstep then
                  failwith (Printf.sprintf "no connection to peer %d" dest)
                else log st "dropping message to dead peer %d" dest)
          st.pending_ship;
        let groups = Dynbuf.length st.ship_order in
        let width = Pool.size st.pool in
        if groups < 2 then
          Dynbuf.iter
            (fun dest ->
              let conn = Hashtbl.find st.out dest in
              Dynbuf.iter
                (Conn.stage_value conn ~kind:kind_message P.message_codec)
                (Hashtbl.find st.ship_groups dest))
            st.ship_order
        else
          Pool.run st.pool (fun s ->
              let g = ref s in
              while !g < groups do
                let dest = Dynbuf.get st.ship_order !g in
                let conn = Hashtbl.find st.out dest in
                Dynbuf.iter
                  (Conn.stage_value conn ~kind:kind_message P.message_codec)
                  (Hashtbl.find st.ship_groups dest);
                g := !g + width
              done);
        Hashtbl.reset st.ship_groups;
        Dynbuf.clear st.ship_order
      end;
      Dynbuf.clear st.pending_ship
    end

  (* Deferred shipments are staged at the top of both flush entry
     points, so on every connection protocol messages precede whatever
     control frame the pass appends — the FIFO order (and lockstep's
     mark-counting round attribution) is the sequential path's. *)
  let flush_all st =
    stage_pending st;
    Hashtbl.iter (fun j conn -> flush_peer st j conn) st.out

  let broadcast st ~kind payload ~ignore_dead =
    stage_pending st;
    Hashtbl.iter
      (fun j conn ->
        Conn.stage conn ~kind payload;
        flush_peer ~ignore_dead st j conn)
      st.out

  (* Sweep connections whose sends failed this pass (wall-clock mode):
     close them, drop them from the outbound table and schedule the
     first redial attempt. *)
  let bury st =
    List.iter
      (fun j ->
        match Hashtbl.find_opt st.out j with
        | None -> ()
        | Some conn ->
            Conn.close conn;
            Hashtbl.remove st.out j;
            Hashtbl.replace st.dead j (Unix.gettimeofday () +. 0.05, 0.05))
      st.to_bury;
    st.to_bury <- []

  (* One non-blocking-ish redial attempt per due dead peer.  On
     success the link is fresh: the peer's pre-death Done (if any) no
     longer stands for its current incarnation, and our own Done — if
     already sent — never reached the new process, so both are reset
     and re-earned (Done is idempotent on the receiving side). *)
  let try_redial st j addr =
    let fd = Unix.socket (Addr.domain addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Addr.to_sockaddr addr) with
    | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        false
    | () -> (
        (match addr with
        | Addr.Tcp _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
        | Addr.Unix_sock _ -> ());
        let conn = Conn.create fd in
        match Conn.send conn ~kind:kind_hello (id_payload st.cfg.id) with
        | Error _ ->
            Conn.close conn;
            false
        | Ok () ->
            Evloop.add st.loop ~read:false (Conn.fd conn);
            Evloop.set_write st.loop (Conn.fd conn)
              (Conn.pending_out conn > 0);
            Hashtbl.replace st.out j conn;
            Hashtbl.remove st.peer_done j;
            st.done_sent <- false;
            st.quiet <- 0;
            log st "re-connected to peer %d" j;
            true)

  let redial_pass st =
    bury st;
    if Hashtbl.length st.dead > 0 then begin
      let now = Unix.gettimeofday () in
      let due =
        Hashtbl.fold
          (fun j (at, delay) acc -> if at <= now then (j, delay) :: acc else acc)
          st.dead []
      in
      List.iter
        (fun (j, delay) ->
          match List.assoc_opt j st.cfg.peers with
          | None -> Hashtbl.remove st.dead j
          | Some addr ->
              if try_redial st j addr then Hashtbl.remove st.dead j
              else
                let delay = Float.min 1.0 (delay *. 2.) in
                let jitter = 0.75 +. Random.State.float st.rng 0.5 in
                Hashtbl.replace st.dead j
                  (Unix.gettimeofday () +. (delay *. jitter), delay))
        due
    end

  let decode_message ~src payload =
    match Crdt_wire.Codec.decode_string P.message_codec payload with
    | Ok msg -> msg
    | Error e ->
        failwith
          (Printf.sprintf "bad message from peer %d: %s" src
             (Crdt_wire.Codec.error_to_string e))

  let decode_id payload =
    match Crdt_wire.Codec.decode_string Crdt_wire.Codec.varint payload with
    | Ok id -> id
    | Error e ->
        failwith ("bad peer id payload: " ^ Crdt_wire.Codec.error_to_string e)

  let src_of ib =
    match !(ib.peer) with
    | Some src -> src
    | None -> failwith "protocol frame before Hello"

  (* Wall-clock frame dispatch: messages go straight through the driver,
     replies ship immediately.  [tick] is the current tick number, used
     as the trace round.  [pre] is the frame's pool-predecoded message,
     when the pump's fan-out pass produced one. *)
  let handle_frame_wallclock st ~tick ib (kind, payload) pre =
    if kind = kind_hello then begin
      let j = decode_id payload in
      ib.peer := Some j;
      (* A Hello announces a fresh process incarnation dialing in: a
         Done recorded for this peer belongs to its previous life, and
         our own Done (if announced) never reached the new process —
         reset both so they are re-earned.  At initial startup this is
         a no-op (no Done exists yet). *)
      Hashtbl.remove st.peer_done j;
      st.done_sent <- false
    end
    else if kind = kind_done then begin
      let j = decode_id payload in
      log st "peer %d done" j;
      Hashtbl.replace st.peer_done j ()
    end
    else if kind = kind_message then begin
      let src = src_of ib in
      let msg =
        match pre with Some m -> m | None -> decode_message ~src payload
      in
      D.deliver st.drv ~round:tick ~src
        ~emit:(fun ~dest m -> ship st dest m)
        msg
    end
    else failwith (Printf.sprintf "unknown frame kind %d" kind)

  (* Lockstep frame dispatch: messages are queued under the round the
     connection's mark count implies; marks and digests update the
     barrier bookkeeping.  Nothing is delivered here — the round loop
     drains the queue once the mark barrier is complete (and runs the
     decode fan-out there, so the pump never predecodes in this mode). *)
  let handle_frame_lockstep st ib (kind, payload) (_ : P.message option) =
    if kind = kind_hello then ib.peer := Some (decode_id payload)
    else if kind = kind_message then begin
      let src = src_of ib in
      let q =
        match Hashtbl.find_opt st.msgq ib.marks with
        | Some q -> q
        | None ->
            let q = ref [] in
            Hashtbl.replace st.msgq ib.marks q;
            q
      in
      q := (src, payload) :: !q
    end
    else if kind = kind_mark then begin
      let r = decode_id payload in
      if r <> ib.marks then
        failwith
          (Printf.sprintf "out-of-order mark: got round %d, expected %d" r
             ib.marks);
      ib.marks <- ib.marks + 1;
      let src = src_of ib in
      Hashtbl.replace st.marks_of src ib.marks
    end
    else if kind = kind_digest then begin
      let src = src_of ib in
      match Crdt_wire.Codec.decode_string digest_codec payload with
      | Ok (r, d) -> Hashtbl.replace st.digests (r, src) d
      | Error e ->
          failwith
            (Printf.sprintf "bad digest from peer %d: %s" src
               (Crdt_wire.Codec.error_to_string e))
    end
    else if kind = kind_done then ()
    else failwith (Printf.sprintf "unknown frame kind %d" kind)

  (* Pool-predecode the message frames of one pump pass: decoding needs
     no per-connection state, so the payloads can be parsed on worker
     domains while the sequential dispatch that follows consumes the
     results in arrival order.  A payload that fails to decode is left
     [None]; the dispatcher re-decodes it to raise the error with the
     source attributed (the Hello naming the source may itself sit
     earlier in this very batch, so the worker cannot name it). *)
  let predecode_frames st =
    let n = Dynbuf.length st.frames in
    let pre = Array.make n None in
    let messages = ref 0 in
    Dynbuf.iter
      (fun (_, (kind, _)) -> if kind = kind_message then incr messages)
      st.frames;
    if !messages >= st.cfg.fanout_min && Pool.size st.pool > 1 then begin
      let width = Pool.size st.pool in
      Pool.run st.pool (fun s ->
          let k = ref s in
          while !k < n do
            let _, (kind, payload) = Dynbuf.get st.frames !k in
            if kind = kind_message then begin
              match Crdt_wire.Codec.decode_string P.message_codec payload with
              | Ok msg -> pre.(!k) <- Some msg
              | Error _ -> ()
            end;
            k := !k + width
          done)
    end;
    pre

  (* One event-loop pass: accept new connections, read every readable
     inbound connection into the frame buffer, drain outbound
     connections whose fds turned writable, prune connections the peers
     closed (unregistering their fds — the former leak: a closed
     connection used to stay in the list and be selected forever), then
     dispatch the collected frames in arrival order — predecoding
     message payloads on the pool first when [predecode] is set and the
     batch is worth the wake-up.  Returns whether any frame was
     processed. *)
  let pump ?(predecode = false) st ~timeout ~dispatch =
    let readable, writable = Evloop.wait st.loop ~timeout in
    List.iter
      (fun fd ->
        if fd == st.listener then begin
          let peer_fd, _ = Unix.accept st.listener in
          (match st.cfg.listen with
          | Addr.Tcp _ -> Unix.setsockopt peer_fd Unix.TCP_NODELAY true
          | Addr.Unix_sock _ -> ());
          let conn = Conn.create peer_fd in
          Evloop.add st.loop ~read:true (Conn.fd conn);
          st.inbound <- { conn; peer = ref None; marks = 0 } :: st.inbound
        end
        else
          match
            List.find_opt (fun ib -> Conn.fd ib.conn == fd) st.inbound
          with
          | Some ib -> (
              match Conn.recv ib.conn with
              | Ok frames ->
                  List.iter (fun f -> Dynbuf.push st.frames (ib, f)) frames
              | Error `Closed ->
                  (* Peers close their dialed connections when they
                     exit; drop the connection below. *)
                  log st "inbound connection closed"
              | Error (`Bad e) ->
                  failwith
                    ("framing error: " ^ Crdt_wire.Codec.error_to_string e))
          | None -> ())
      readable;
    (* Outbound fds show up here only while a connection has queued
       bytes (EAGAIN or a short write earlier); drain them now. *)
    List.iter
      (fun fd ->
        Hashtbl.iter
          (fun j conn -> if Conn.fd conn == fd then flush_peer st j conn)
          st.out)
      writable;
    if List.exists (fun ib -> not (Conn.alive ib.conn)) st.inbound then begin
      List.iter
        (fun ib ->
          if not (Conn.alive ib.conn) then Evloop.remove st.loop (Conn.fd ib.conn))
        st.inbound;
      st.inbound <- List.filter (fun ib -> Conn.alive ib.conn) st.inbound
    end;
    let progressed = not (Dynbuf.is_empty st.frames) in
    if progressed then begin
      let pre =
        if predecode then predecode_frames st
        else Array.make (Dynbuf.length st.frames) None
      in
      (* Dispatch may raise (framing, protocol errors): clear the
         buffer first so a handler that recovers at a higher level
         never sees this pass's frames replayed. *)
      let batch = Array.init (Dynbuf.length st.frames) (Dynbuf.get st.frames) in
      Dynbuf.clear st.frames;
      Array.iteri (fun k (ib, f) -> dispatch ib f pre.(k)) batch
    end;
    progressed

  let finished st =
    st.done_sent
    && st.quiet >= st.cfg.quiet_ticks
    && List.for_all (fun (j, _) -> Hashtbl.mem st.peer_done j) st.cfg.peers

  (* Wall-clock tick: operations, driver tick (ships directly), then the
     quiescence accounting on the driver's dirty bit. *)
  let tick_wallclock st ~n ~ops =
    if n < st.cfg.ops_ticks then
      ignore (D.apply st.drv (ops ~tick:n (D.state st.drv)));
    D.tick st.drv ~round:n ~emit:(fun ~dest m -> ship st dest m);
    (* Durability point: everything applied or delivered since the last
       tick reaches the store (when one is attached) before this tick's
       quiescence/Done decisions. *)
    D.sync_store st.drv;
    let busy = n < st.cfg.ops_ticks || D.dirty st.drv in
    D.clear_dirty st.drv;
    st.quiet <- (if busy then 0 else st.quiet + 1);
    if (not st.done_sent) && st.quiet >= st.cfg.quiet_ticks then begin
      st.done_sent <- true;
      log st "quiet for %d ticks; announcing done" st.quiet;
      broadcast st ~kind:kind_done (id_payload st.cfg.id) ~ignore_dead:true
    end

  let serve_wallclock st ~ops =
    let tick_s = float_of_int st.cfg.tick_ms /. 1000. in
    let t_begin = Unix.gettimeofday () in
    let next_tick = ref (t_begin +. tick_s) in
    let n = ref 0 in
    let result = ref None in
    while !result = None do
      (match !(st.sig_stop) with
      | Some s -> result := Some (Signal s)
      | None -> ());
      let timeout =
        let t = Float.max 0. (!next_tick -. Unix.gettimeofday ()) in
        (* Free-running nodes (tick_ms = 0) that have announced Done and
           are only waiting for their peers' Dones must not keep spinning
           at full speed: the tick-rate digest flood starves a slower
           peer of the cycles it needs to go quiet, and the waiter burns
           through its own max_ticks budget in well under a second.
           Pace the wait instead — pump still wakes immediately on
           traffic, and a tick every couple of milliseconds is plenty to
           keep soliciting anything a not-yet-done peer produces. *)
        if t = 0. && st.done_sent && st.quiet >= st.cfg.quiet_ticks then 0.002
        else t
      in
      ignore
        (pump ~predecode:true st ~timeout
           ~dispatch:(handle_frame_wallclock st ~tick:!n));
      redial_pass st;
      let now = Unix.gettimeofday () in
      if now >= !next_tick then begin
        (* The tick and everything it staged — messages, replies raised
           while pumping, a Done broadcast — leave in one flush: at most
           one write(2) per peer for the whole pass. *)
        let t0 = Unix.gettimeofday () in
        tick_wallclock st ~n:!n ~ops;
        flush_all st;
        add_sample st.tick_times (Unix.gettimeofday () -. t0);
        incr n;
        (* Catch up at most one interval: after a stall (a long select
           burst, a debugger pause) the old [+. tick_s] accumulation
           would fire a burst of zero-delay ticks, each eating into the
           quiet count; resynchronize to the clock instead. *)
        let due = !next_tick +. tick_s in
        next_tick := (if due < now then now +. tick_s else due);
        if !result = None then
          if finished st then result := Some Agreement
          else if !n >= st.cfg.max_ticks then begin
            Printf.eprintf
              "node %d: max_ticks (%d) reached before shutdown\n%!" st.cfg.id
              st.cfg.max_ticks;
            result := Some Max_ticks
          end
          else if st.cfg.max_wall_s > 0. && now -. t_begin > st.cfg.max_wall_s
          then begin
            Printf.eprintf
              "node %d: max_wall_s (%.0fs) reached before shutdown\n%!"
              st.cfg.id st.cfg.max_wall_s;
            result := Some Max_wall
          end
      end
      else
        (* No tick due: replies staged while pumping still leave this
           pass, coalesced per peer. *)
        flush_all st
    done;
    (Option.get !result, !n)

  (* Lockstep helpers: block on the select loop until [cond] holds,
     failing loudly if the cluster stops making progress. *)
  let lockstep_wait st ~what ~cond =
    let stall_s = 30. in
    let last_progress = ref (Unix.gettimeofday ()) in
    while not (cond ()) do
      if pump st ~timeout:1.0 ~dispatch:(handle_frame_lockstep st) then
        last_progress := Unix.gettimeofday ()
      else if Unix.gettimeofday () -. !last_progress > stall_s then
        failwith
          (Printf.sprintf "lockstep stalled for %.0fs waiting for %s" stall_s
             what)
    done

  let serve_lockstep st ~digest ~ops =
    let peer_ids = List.map fst st.cfg.peers in
    let r = ref 0 in
    let result = ref None in
    while !result = None do
      (match !(st.sig_stop) with
      | Some s -> result := Some (Signal s)
      | None -> ());
      let round = !r in
      (* Replies buffered while waiting on the previous round's barrier
         belong to this round's wave.  In batched mode the whole wave —
         replies, tick messages, and the Mark that bounds it — is staged
         and leaves in the broadcast's flush, one write per peer, with
         FIFO order (and hence the mark-counting round attribution)
         intact. *)
      List.iter (fun (dest, m) -> ship st dest m) (List.rev st.pending_out);
      st.pending_out <- [];
      if round < st.cfg.ops_ticks then
        ignore (D.apply st.drv (ops ~tick:round (D.state st.drv)));
      D.tick st.drv ~round ~emit:(fun ~dest m -> ship st dest m);
      broadcast st ~kind:kind_mark (id_payload round) ~ignore_dead:false;
      lockstep_wait st
        ~what:(Printf.sprintf "round %d marks" round)
        ~cond:(fun () ->
          List.for_all
            (fun j ->
              match Hashtbl.find_opt st.marks_of j with
              | Some m -> m > round
              | None -> false)
            peer_ids);
      (* The mark barrier bounds the wave: every round-[round] message
         is queued.  Decode the wave — on the pool when it is wide
         enough to pay for the wake-up — then deliver sequentially in
         arrival order; replies wait for the next round. *)
      (match Hashtbl.find_opt st.msgq round with
      | None -> ()
      | Some q ->
          let wave = Array.of_list (List.rev !q) in
          Hashtbl.remove st.msgq round;
          let count = Array.length wave in
          let width = Pool.size st.pool in
          let msgs =
            if count >= st.cfg.fanout_min && width > 1 then begin
              let out = Array.make count None in
              Pool.run st.pool (fun s ->
                  let k = ref s in
                  while !k < count do
                    let src, payload = wave.(!k) in
                    out.(!k) <- Some (decode_message ~src payload);
                    k := !k + width
                  done);
              Array.map Option.get out
            end
            else
              Array.map (fun (src, payload) -> decode_message ~src payload) wave
          in
          Array.iteri
            (fun k (src, _) ->
              D.deliver st.drv ~round ~src
                ~emit:(fun ~dest m ->
                  st.pending_out <- (dest, m) :: st.pending_out)
                msgs.(k))
            wave);
      (* Round durability point, mirroring the wall-clock tick's. *)
      D.sync_store st.drv;
      let ops_done = round + 1 >= st.cfg.ops_ticks in
      let my_digest = digest (D.state st.drv) in
      broadcast st ~kind:kind_digest
        (Crdt_wire.Codec.encode_to_string digest_codec
           (round, (ops_done, my_digest)))
        ~ignore_dead:false;
      lockstep_wait st
        ~what:(Printf.sprintf "round %d digests" round)
        ~cond:(fun () ->
          List.for_all
            (fun j -> Hashtbl.mem st.digests (round, j))
            peer_ids);
      let all_done =
        ops_done
        && List.for_all
             (fun j -> fst (Hashtbl.find st.digests (round, j)))
             peer_ids
      and all_agree =
        List.for_all
          (fun j -> String.equal (snd (Hashtbl.find st.digests (round, j))) my_digest)
          peer_ids
      in
      List.iter (fun j -> Hashtbl.remove st.digests (round, j)) peer_ids;
      incr r;
      if !result = None then
        if all_done && all_agree then begin
          D.finish st.drv ~round;
          result := Some Agreement
        end
        else if !r >= st.cfg.max_ticks then begin
          Printf.eprintf
            "node %d: max_ticks (%d) reached before lockstep agreement\n%!"
            st.cfg.id st.cfg.max_ticks;
          result := Some Max_ticks
        end
    done;
    (Option.get !result, !r)

  (** Run the replica to completion.

      [ops ~tick state] lists the operations this replica applies at
      tick [tick] given its current state (consulted for ticks
      [0 .. ops_ticks)).  [equal] feeds the driver's dirty tracking
      (wall-clock quiescence); [digest] must be a canonical fingerprint
      of the CRDT state — equal states must digest equally across
      processes — and drives lockstep termination.  [sink] attaches a
      trace sink (e.g. a JSONL writer) on top of the runtime's internal
      counting sink.

      [persist] attaches a durability sink ({!D.set_persist}): it is
      invoked with the current state at every tick/round whose
      apply/deliver work may have inflated it.  [boot] restarts the
      replica from a durably recovered state before dialing: the node
      is rebuilt via [P.load] — volatile protocol state gone, recovery
      exchange armed — exactly the semantics of a process that died and
      came back from its data directory. *)
  let serve ?sink ?persist ?boot ~(equal : P.crdt -> P.crdt -> bool)
      ~(digest : P.crdt -> string) (cfg : config)
      ~(ops : tick:int -> P.crdt -> P.op list) : result =
    if cfg.domains < 1 then
      invalid_arg
        (Printf.sprintf "Runtime.serve: domains must be >= 1 (got %d)"
           cfg.domains);
    (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
    | _ -> ()
    | exception (Invalid_argument _ | Sys_error _) -> ());
    let sig_stop = ref None in
    (* Graceful shutdown: note the signal, let the loop finish its pass
       and exit with [Signal] — the caller then syncs and closes its
       store and reports the structured exit reason. *)
    List.iter
      (fun s ->
        match Sys.signal s (Sys.Signal_handle (fun s -> sig_stop := Some s)) with
        | _ -> ()
        | exception (Invalid_argument _ | Sys_error _) -> ())
      [ Sys.sigterm; Sys.sigint ];
    let counters = Trace.make_counters () in
    let counting = Trace.counting counters in
    let sink =
      match sink with
      | None -> counting
      | Some user -> Trace.tee counting user
    in
    let neighbors = List.map fst cfg.peers in
    let drv =
      D.create ~sink ~exact_bytes:true
        ~changed:(fun a b -> not (equal a b))
        ~id:cfg.id ~neighbors ~total:cfg.total ()
    in
    (match boot with Some s -> D.restart_from drv s | None -> ());
    (match persist with Some f -> D.set_persist drv f | None -> ());
    Addr.cleanup cfg.listen;
    let listener = Unix.socket (Addr.domain cfg.listen) Unix.SOCK_STREAM 0 in
    (match cfg.listen with
    | Addr.Tcp _ -> Unix.setsockopt listener Unix.SO_REUSEADDR true
    | Addr.Unix_sock _ -> ());
    Unix.bind listener (Addr.to_sockaddr cfg.listen);
    Unix.listen listener 64;
    let loop = Evloop_epoll.loop cfg.evloop in
    Evloop.add loop ~read:true listener;
    (* The codec fan-out pool lives exactly as long as the serve loop;
       [with_pool] joins the worker domains even on exception. *)
    Pool.with_pool cfg.domains @@ fun pool ->
    let st =
      {
        cfg;
        drv;
        loop;
        listener;
        out = Hashtbl.create (List.length cfg.peers);
        inbound = [];
        peer_done = Hashtbl.create (List.length cfg.peers);
        tick_times = samples ();
        rng = Random.State.make [| cfg.id; 0x6e6574 |];
        quiet = 0;
        done_sent = false;
        sig_stop;
        to_bury = [];
        dead = Hashtbl.create 4;
        msgq = Hashtbl.create 8;
        marks_of = Hashtbl.create (List.length cfg.peers);
        digests = Hashtbl.create 8;
        pending_out = [];
        pool;
        pending_ship = Dynbuf.create ();
        ship_order = Dynbuf.create ();
        ship_groups = Hashtbl.create (List.length cfg.peers);
        frames = Dynbuf.create ();
      }
    in
    log st "listening on %s" (Addr.to_string cfg.listen);
    (* Dial-all barrier: every peer must be reachable before the first
       tick, so no protocol message is ever emitted into the void. *)
    List.iter (dial st) cfg.peers;
    let t_start = Unix.gettimeofday () in
    let stop, ticks =
      if cfg.lockstep then serve_lockstep st ~digest ~ops
      else serve_wallclock st ~ops
    in
    (* Last durability point: deliveries since the final tick. *)
    D.sync_store drv;
    let wall_s = Unix.gettimeofday () -. t_start in
    (* Anything still deferred for the fan-out must reach the
       connections before the drain below. *)
    stage_pending st;
    (* Final drain: a frame queued behind a full socket buffer (a slow
       peer under free-running ticks) must not be discarded by the
       close below — the Done broadcast travels on this queue, and a
       peer that never sees it waits until its max_ticks.  Switch each
       still-loaded connection to blocking with a send timeout and push
       the remainder out; a dead peer just errors and is dropped. *)
    Hashtbl.iter
      (fun j conn ->
        if Conn.alive conn && Conn.pending_out conn > 0 then begin
          (try
             Unix.clear_nonblock (Conn.fd conn);
             Unix.setsockopt_float (Conn.fd conn) Unix.SO_SNDTIMEO 5.0
           with Unix.Unix_error _ -> ());
          match Conn.flush conn with
          | Ok () -> ()
          | Error m -> log st "final drain to peer %d failed (%s)" j m
        end)
      st.out;
    let writes =
      Hashtbl.fold (fun _ c acc -> acc + Conn.writes c) st.out 0
    in
    Hashtbl.iter (fun _ c -> Conn.close c) st.out;
    List.iter (fun ib -> Conn.close ib.conn) st.inbound;
    (try Unix.close listener with Unix.Unix_error _ -> ());
    let backend = Evloop.backend_name loop in
    Evloop.close loop;
    Addr.cleanup cfg.listen;
    counters.ops_applied <- D.ops_applied drv;
    counters.memory_weight <- D.memory_weight drv;
    counters.memory_bytes <- D.memory_bytes drv;
    counters.metadata_memory_bytes <- D.metadata_memory_bytes drv;
    counters.writes <- writes;
    {
      state = D.state drv;
      ticks;
      counters;
      ops_applied = D.ops_applied drv;
      writes;
      wall_s;
      tick_p99_us = percentile st.tick_times 99 *. 1e6;
      backend;
      clean = (stop = Agreement);
      stop;
    }
end
