(** Event-loop peer runtime: runs one replica of a {!Crdt_proto}
    protocol over real sockets.

    Each process listens on its own address and dials every peer; a
    dialed connection carries traffic in one direction only (dialer →
    acceptor), so a full link between two nodes is a pair of sockets.
    The first frame on a dialed connection is a [Hello] carrying the
    dialer's node id, which is how the accepting side attributes
    subsequent protocol messages to a source replica.

    The replica itself is a {!Crdt_engine.Driver}: this module only
    moves frames between sockets and the driver, so the apply → tick →
    ship → handle cycle (and all byte accounting) is the same code the
    simulator runs.  Accounting follows the simulator's convention —
    protocol messages are tallied at {e delivery} through the driver's
    trace sink; [Hello]/[Done]/[Mark]/[Digest] control frames are
    free — so a cluster's summed [wire_bytes] is directly comparable to
    a {!Crdt_sim.Runner} total for the same workload.

    {2 Wall-clock mode}

    The loop is a [select] over the listening socket and all inbound
    connections, with a periodic tick (the protocol's synchronization
    interval): each tick applies the workload operations due, runs the
    driver's tick and ships the outbound messages; inbound frames are
    decoded and delivered through the driver, whose replies are sent
    immediately.

    Replicas stop by mutual agreement rather than a wall clock.  A node
    is {e busy} while it still has operations to apply or its CRDT state
    changed since the last tick (the driver's dirty bit, fed by a
    state-equality check on every delivery); chatter alone — protocols
    like state-based or scuttlebutt ship messages every interval forever
    — does not count, which is what lets every registered protocol
    terminate here.  After [quiet_ticks] consecutive non-busy ticks a
    node broadcasts [Done] but keeps serving; it exits once it is quiet
    {e and} has received [Done] from every peer.  Send failures after a
    peer's [Done] are expected (the peer may already have exited) and
    ignored.  [max_ticks] bounds the run as a failsafe.

    {2 Lockstep mode}

    With [lockstep] set, ticks are driven by {e round barriers} instead
    of the clock, making a socket cluster reproduce the simulator's
    round structure exactly.  Per round [r], a node ships the replies
    buffered from round [r-1], applies the round's operations, runs the
    driver tick, then broadcasts a [Mark r] frame: since each TCP
    connection is FIFO, a peer that has seen [Mark r] on a connection
    has necessarily seen every round-[r] message sent on it.  Messages
    arriving on a connection are tagged with the number of marks seen so
    far on it, which is exactly their round.  Once marks for round [r]
    are in from every peer, the round's messages are delivered (replies
    buffered for round [r+1]) and the node broadcasts a [Digest r] frame
    carrying [(ops_done, digest-of-state)]; when digests for round [r]
    are in from every peer, everyone decides identically: stop iff all
    replicas are done generating operations and all digests agree.
    Digest exchange is itself a barrier, so a peer can run at most one
    round ahead, and the message/mark tagging above stays unambiguous.

    For protocols whose handlers send no replies (the delta family
    without acks, state-based), a lockstep run is message-for-message
    identical to the simulator on the same workload — the basis of the
    sim-vs-socket cross-check in the test suite. *)

module Trace = Crdt_engine.Trace

(* Frame kinds on the wire (the Frame layer's dispatch byte). *)
let kind_hello = 0
let kind_message = 1
let kind_done = 2
let kind_mark = 3
let kind_digest = 4

type config = {
  id : int;  (** this replica's node id. *)
  listen : Addr.t;
  peers : (int * Addr.t) list;  (** peer node id ↦ its listen address. *)
  total : int;  (** total replica count (for [P.init]). *)
  tick_ms : int;  (** synchronization interval (wall-clock mode). *)
  ops_ticks : int;  (** ticks during which operations are generated. *)
  quiet_ticks : int;  (** quiet ticks required before announcing Done. *)
  max_ticks : int;  (** hard bound on the run. *)
  dial_timeout_s : float;  (** how long to retry dialing each peer. *)
  lockstep : bool;  (** round-barrier mode instead of wall-clock ticks. *)
  verbose : bool;
}

let default_config ~id ~listen ~peers ~total =
  {
    id;
    listen;
    peers;
    total;
    tick_ms = 20;
    ops_ticks = 0;
    quiet_ticks = 5;
    max_ticks = 5000;
    dial_timeout_s = 10.;
    lockstep = false;
    verbose = false;
  }

let id_payload id =
  Crdt_wire.Codec.encode_to_string Crdt_wire.Codec.varint id

(* Lockstep digest payload: round, (done generating ops, state digest). *)
let digest_codec =
  Crdt_wire.Codec.(pair varint (pair bool string))

module Make (P : Crdt_proto.Protocol_intf.PROTOCOL) = struct
  module D = Crdt_engine.Driver.Make (P)

  type result = {
    state : P.crdt;
    ticks : int;  (** ticks (or lockstep rounds) executed. *)
    counters : Trace.counters;
        (** the run's tallies, same accounting as the simulator's
            per-round records: received protocol messages with their
            payload/metadata/wire costs, plus final memory sizes. *)
    ops_applied : int;
    clean : bool;
        (** whether the run terminated by agreement (mutual [Done] /
            digest unanimity) rather than the [max_ticks] failsafe. *)
  }

  type inbound = {
    conn : Conn.t;
    peer : int option ref;  (** learned from the Hello frame. *)
    mutable marks : int;  (** lockstep: mark frames seen on this conn. *)
  }

  type state = {
    cfg : config;
    drv : D.t;
    out : (int, Conn.t) Hashtbl.t;  (** peer id ↦ dialed connection. *)
    mutable inbound : inbound list;
        (** accepted connections; pruned when a peer closes. *)
    peer_done : (int, unit) Hashtbl.t;
    mutable quiet : int;
    mutable done_sent : bool;
    (* Lockstep bookkeeping. *)
    msgq : (int, (int * string) list ref) Hashtbl.t;
        (** round ↦ (src, undecoded payload) in arrival order. *)
    marks_of : (int, int) Hashtbl.t;  (** peer id ↦ marks received. *)
    digests : (int * int, bool * string) Hashtbl.t;
        (** (round, peer id) ↦ its (ops_done, digest). *)
    mutable pending_out : (int * P.message) list;
        (** lockstep replies buffered for the next round, reversed. *)
  }

  let log st fmt =
    if st.cfg.verbose then
      Printf.eprintf ("node %d: " ^^ fmt ^^ "\n%!") st.cfg.id
    else Printf.ifprintf stderr fmt

  let dial st (j, addr) =
    let deadline = Unix.gettimeofday () +. st.cfg.dial_timeout_s in
    let rec attempt () =
      let fd = Unix.socket (Addr.domain addr) Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Addr.to_sockaddr addr) with
      | () -> fd
      | exception Unix.Unix_error ((ECONNREFUSED | ENOENT | ETIMEDOUT), _, _)
        when Unix.gettimeofday () < deadline ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Unix.sleepf 0.05;
          attempt ()
      | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e
    in
    let conn = Conn.create (attempt ()) in
    (match Conn.send conn ~kind:kind_hello (id_payload st.cfg.id) with
    | Ok () -> ()
    | Error msg -> failwith (Printf.sprintf "hello to peer %d failed: %s" j msg));
    Hashtbl.replace st.out j conn;
    log st "connected to peer %d at %s" j (Addr.to_string addr)

  (* Ship one protocol message to [dest].  A dead connection after the
     peer announced Done is the expected shutdown race; before that it
     is a hard error. *)
  let ship st dest msg =
    match Hashtbl.find_opt st.out dest with
    | None -> failwith (Printf.sprintf "no connection to peer %d" dest)
    | Some conn -> (
        let payload = Crdt_wire.Codec.encode_to_string P.message_codec msg in
        match Conn.send conn ~kind:kind_message payload with
        | Ok () -> ()
        | Error m when Hashtbl.mem st.peer_done dest ->
            log st "send to finished peer %d failed (%s); ignored" dest m
        | Error m ->
            failwith (Printf.sprintf "send to peer %d failed: %s" dest m))

  let broadcast st ~kind payload ~ignore_dead =
    Hashtbl.iter
      (fun j conn ->
        match Conn.send conn ~kind payload with
        | Ok () -> ()
        | Error m when ignore_dead -> log st "send to peer %d failed (%s)" j m
        | Error m ->
            failwith (Printf.sprintf "send to peer %d failed: %s" j m))
      st.out

  let decode_message ~src payload =
    match Crdt_wire.Codec.decode_string P.message_codec payload with
    | Ok msg -> msg
    | Error e ->
        failwith
          (Printf.sprintf "bad message from peer %d: %s" src
             (Crdt_wire.Codec.error_to_string e))

  let decode_id payload =
    match Crdt_wire.Codec.decode_string Crdt_wire.Codec.varint payload with
    | Ok id -> id
    | Error e ->
        failwith ("bad peer id payload: " ^ Crdt_wire.Codec.error_to_string e)

  let src_of ib =
    match !(ib.peer) with
    | Some src -> src
    | None -> failwith "protocol frame before Hello"

  (* Wall-clock frame dispatch: messages go straight through the driver,
     replies ship immediately.  [tick] is the current tick number, used
     as the trace round. *)
  let handle_frame_wallclock st ~tick ib (kind, payload) =
    if kind = kind_hello then ib.peer := Some (decode_id payload)
    else if kind = kind_done then begin
      let j = decode_id payload in
      log st "peer %d done" j;
      Hashtbl.replace st.peer_done j ()
    end
    else if kind = kind_message then begin
      let src = src_of ib in
      D.deliver st.drv ~round:tick ~src
        ~emit:(fun ~dest m -> ship st dest m)
        (decode_message ~src payload)
    end
    else failwith (Printf.sprintf "unknown frame kind %d" kind)

  (* Lockstep frame dispatch: messages are queued under the round the
     connection's mark count implies; marks and digests update the
     barrier bookkeeping.  Nothing is delivered here — the round loop
     drains the queue once the mark barrier is complete. *)
  let handle_frame_lockstep st ib (kind, payload) =
    if kind = kind_hello then ib.peer := Some (decode_id payload)
    else if kind = kind_message then begin
      let src = src_of ib in
      let q =
        match Hashtbl.find_opt st.msgq ib.marks with
        | Some q -> q
        | None ->
            let q = ref [] in
            Hashtbl.replace st.msgq ib.marks q;
            q
      in
      q := (src, payload) :: !q
    end
    else if kind = kind_mark then begin
      let r = decode_id payload in
      if r <> ib.marks then
        failwith
          (Printf.sprintf "out-of-order mark: got round %d, expected %d" r
             ib.marks);
      ib.marks <- ib.marks + 1;
      let src = src_of ib in
      Hashtbl.replace st.marks_of src ib.marks
    end
    else if kind = kind_digest then begin
      let src = src_of ib in
      match Crdt_wire.Codec.decode_string digest_codec payload with
      | Ok (r, d) -> Hashtbl.replace st.digests (r, src) d
      | Error e ->
          failwith
            (Printf.sprintf "bad digest from peer %d: %s" src
               (Crdt_wire.Codec.error_to_string e))
    end
    else if kind = kind_done then ()
    else failwith (Printf.sprintf "unknown frame kind %d" kind)

  (* One select pass: accept new connections, read every readable
     inbound connection, dispatch its complete frames, and prune
     connections the peers closed (the former leak: a closed connection
     used to stay in the list and be selected forever).  Returns whether
     any frame was processed. *)
  let pump st listener ~timeout ~dispatch =
    let readable =
      let fds =
        listener
        :: List.filter_map
             (fun ib -> if Conn.alive ib.conn then Some (Conn.fd ib.conn) else None)
             st.inbound
      in
      match Unix.select fds [] [] timeout with
      | r, _, _ -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    let progressed = ref false in
    List.iter
      (fun fd ->
        if fd == listener then begin
          let peer_fd, _ = Unix.accept listener in
          st.inbound <-
            { conn = Conn.create peer_fd; peer = ref None; marks = 0 }
            :: st.inbound
        end
        else
          match
            List.find_opt (fun ib -> Conn.fd ib.conn == fd) st.inbound
          with
          | Some ib -> (
              match Conn.recv ib.conn with
              | Ok frames ->
                  List.iter
                    (fun f ->
                      progressed := true;
                      dispatch ib f)
                    frames
              | Error `Closed ->
                  (* Peers close their dialed connections when they
                     exit; drop the connection below. *)
                  log st "inbound connection closed"
              | Error (`Bad e) ->
                  failwith
                    ("framing error: " ^ Crdt_wire.Codec.error_to_string e))
          | None -> ())
      readable;
    if List.exists (fun ib -> not (Conn.alive ib.conn)) st.inbound then
      st.inbound <- List.filter (fun ib -> Conn.alive ib.conn) st.inbound;
    !progressed

  let finished st =
    st.done_sent
    && st.quiet >= st.cfg.quiet_ticks
    && List.for_all (fun (j, _) -> Hashtbl.mem st.peer_done j) st.cfg.peers

  (* Wall-clock tick: operations, driver tick (ships directly), then the
     quiescence accounting on the driver's dirty bit. *)
  let tick_wallclock st ~n ~ops =
    if n < st.cfg.ops_ticks then
      ignore (D.apply st.drv (ops ~tick:n (D.state st.drv)));
    D.tick st.drv ~round:n ~emit:(fun ~dest m -> ship st dest m);
    let busy = n < st.cfg.ops_ticks || D.dirty st.drv in
    D.clear_dirty st.drv;
    st.quiet <- (if busy then 0 else st.quiet + 1);
    if (not st.done_sent) && st.quiet >= st.cfg.quiet_ticks then begin
      st.done_sent <- true;
      log st "quiet for %d ticks; announcing done" st.quiet;
      broadcast st ~kind:kind_done (id_payload st.cfg.id) ~ignore_dead:true
    end

  let serve_wallclock st listener ~ops =
    let tick_s = float_of_int st.cfg.tick_ms /. 1000. in
    let next_tick = ref (Unix.gettimeofday () +. tick_s) in
    let n = ref 0 in
    let result = ref None in
    while !result = None do
      let timeout = Float.max 0. (!next_tick -. Unix.gettimeofday ()) in
      ignore
        (pump st listener ~timeout
           ~dispatch:(handle_frame_wallclock st ~tick:!n));
      let now = Unix.gettimeofday () in
      if now >= !next_tick then begin
        tick_wallclock st ~n:!n ~ops;
        incr n;
        (* Catch up at most one interval: after a stall (a long select
           burst, a debugger pause) the old [+. tick_s] accumulation
           would fire a burst of zero-delay ticks, each eating into the
           quiet count; resynchronize to the clock instead. *)
        let due = !next_tick +. tick_s in
        next_tick := (if due < now then now +. tick_s else due);
        if finished st then result := Some true
        else if !n >= st.cfg.max_ticks then begin
          Printf.eprintf "node %d: max_ticks (%d) reached before shutdown\n%!"
            st.cfg.id st.cfg.max_ticks;
          result := Some false
        end
      end
    done;
    (Option.get !result, !n)

  (* Lockstep helpers: block on the select loop until [cond] holds,
     failing loudly if the cluster stops making progress. *)
  let lockstep_wait st listener ~what ~cond =
    let stall_s = 30. in
    let last_progress = ref (Unix.gettimeofday ()) in
    while not (cond ()) do
      if pump st listener ~timeout:1.0 ~dispatch:(handle_frame_lockstep st)
      then last_progress := Unix.gettimeofday ()
      else if Unix.gettimeofday () -. !last_progress > stall_s then
        failwith
          (Printf.sprintf "lockstep stalled for %.0fs waiting for %s" stall_s
             what)
    done

  let serve_lockstep st listener ~digest ~ops =
    let peer_ids = List.map fst st.cfg.peers in
    let r = ref 0 in
    let result = ref None in
    while !result = None do
      let round = !r in
      (* Replies buffered while waiting on the previous round's barrier
         belong to this round's wave. *)
      List.iter (fun (dest, m) -> ship st dest m) (List.rev st.pending_out);
      st.pending_out <- [];
      if round < st.cfg.ops_ticks then
        ignore (D.apply st.drv (ops ~tick:round (D.state st.drv)));
      D.tick st.drv ~round ~emit:(fun ~dest m -> ship st dest m);
      broadcast st ~kind:kind_mark (id_payload round) ~ignore_dead:false;
      lockstep_wait st listener
        ~what:(Printf.sprintf "round %d marks" round)
        ~cond:(fun () ->
          List.for_all
            (fun j ->
              match Hashtbl.find_opt st.marks_of j with
              | Some m -> m > round
              | None -> false)
            peer_ids);
      (* The mark barrier bounds the wave: every round-[round] message
         is queued.  Deliver them; replies wait for the next round. *)
      (match Hashtbl.find_opt st.msgq round with
      | None -> ()
      | Some q ->
          List.iter
            (fun (src, payload) ->
              D.deliver st.drv ~round ~src
                ~emit:(fun ~dest m ->
                  st.pending_out <- (dest, m) :: st.pending_out)
                (decode_message ~src payload))
            (List.rev !q);
          Hashtbl.remove st.msgq round);
      let ops_done = round + 1 >= st.cfg.ops_ticks in
      let my_digest = digest (D.state st.drv) in
      broadcast st ~kind:kind_digest
        (Crdt_wire.Codec.encode_to_string digest_codec
           (round, (ops_done, my_digest)))
        ~ignore_dead:false;
      lockstep_wait st listener
        ~what:(Printf.sprintf "round %d digests" round)
        ~cond:(fun () ->
          List.for_all
            (fun j -> Hashtbl.mem st.digests (round, j))
            peer_ids);
      let all_done =
        ops_done
        && List.for_all
             (fun j -> fst (Hashtbl.find st.digests (round, j)))
             peer_ids
      and all_agree =
        List.for_all
          (fun j -> String.equal (snd (Hashtbl.find st.digests (round, j))) my_digest)
          peer_ids
      in
      List.iter (fun j -> Hashtbl.remove st.digests (round, j)) peer_ids;
      incr r;
      if all_done && all_agree then begin
        D.finish st.drv ~round;
        result := Some true
      end
      else if !r >= st.cfg.max_ticks then begin
        Printf.eprintf
          "node %d: max_ticks (%d) reached before lockstep agreement\n%!"
          st.cfg.id st.cfg.max_ticks;
        result := Some false
      end
    done;
    (Option.get !result, !r)

  (** Run the replica to completion.

      [ops ~tick state] lists the operations this replica applies at
      tick [tick] given its current state (consulted for ticks
      [0 .. ops_ticks)).  [equal] feeds the driver's dirty tracking
      (wall-clock quiescence); [digest] must be a canonical fingerprint
      of the CRDT state — equal states must digest equally across
      processes — and drives lockstep termination.  [sink] attaches a
      trace sink (e.g. a JSONL writer) on top of the runtime's internal
      counting sink. *)
  let serve ?sink ~(equal : P.crdt -> P.crdt -> bool)
      ~(digest : P.crdt -> string) (cfg : config)
      ~(ops : tick:int -> P.crdt -> P.op list) : result =
    (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
    | _ -> ()
    | exception (Invalid_argument _ | Sys_error _) -> ());
    let counters = Trace.make_counters () in
    let counting = Trace.counting counters in
    let sink =
      match sink with
      | None -> counting
      | Some user -> Trace.tee counting user
    in
    let neighbors = List.map fst cfg.peers in
    let drv =
      D.create ~sink ~exact_bytes:true
        ~changed:(fun a b -> not (equal a b))
        ~id:cfg.id ~neighbors ~total:cfg.total ()
    in
    let st =
      {
        cfg;
        drv;
        out = Hashtbl.create (List.length cfg.peers);
        inbound = [];
        peer_done = Hashtbl.create (List.length cfg.peers);
        quiet = 0;
        done_sent = false;
        msgq = Hashtbl.create 8;
        marks_of = Hashtbl.create (List.length cfg.peers);
        digests = Hashtbl.create 8;
        pending_out = [];
      }
    in
    Addr.cleanup cfg.listen;
    let listener = Unix.socket (Addr.domain cfg.listen) Unix.SOCK_STREAM 0 in
    (match cfg.listen with
    | Addr.Tcp _ -> Unix.setsockopt listener Unix.SO_REUSEADDR true
    | Addr.Unix_sock _ -> ());
    Unix.bind listener (Addr.to_sockaddr cfg.listen);
    Unix.listen listener 64;
    log st "listening on %s" (Addr.to_string cfg.listen);
    (* Dial-all barrier: every peer must be reachable before the first
       tick, so no protocol message is ever emitted into the void. *)
    List.iter (dial st) cfg.peers;
    let clean, ticks =
      if cfg.lockstep then serve_lockstep st listener ~digest ~ops
      else serve_wallclock st listener ~ops
    in
    Hashtbl.iter (fun _ c -> Conn.close c) st.out;
    List.iter (fun ib -> Conn.close ib.conn) st.inbound;
    (try Unix.close listener with Unix.Unix_error _ -> ());
    Addr.cleanup cfg.listen;
    counters.ops_applied <- D.ops_applied drv;
    counters.memory_weight <- D.memory_weight drv;
    counters.memory_bytes <- D.memory_bytes drv;
    counters.metadata_memory_bytes <- D.metadata_memory_bytes drv;
    {
      state = D.state drv;
      ticks;
      counters;
      ops_applied = D.ops_applied drv;
      clean;
    }
end
