(** Linux epoll backend for the {!Evloop} seam, plus the backend
    choice the CLI exposes as [--evloop select|epoll|auto].

    The backend keeps select-equal observable behaviour so the runtime
    is byte-identical under either loop:

    - level-triggered registration, mirroring select's semantics (a
      readable fd keeps reporting until drained);
    - an [interests] mirror of the kernel table gives the idempotency
      the BACKEND contract demands without extra syscalls, and filters
      [epoll]'s ERR/HUP reporting down to the fds select would surface;
    - sub-millisecond timeouts round {e up} to 1 ms so a short poll
      never becomes a busy spin.

    On non-Linux platforms the C stubs report {!available}[ () = false]
    and [`Auto] falls back to the portable select backend. *)

val available : unit -> bool
(** [true] iff this build carries a working epoll (Linux). *)

module Epoll : Evloop.BACKEND
(** The epoll backend.  [create] fails if {!available} is [false]. *)

type choice = [ `Select | `Epoll | `Auto ]
(** CLI-selectable backend: [`Auto] means epoll where available,
    select otherwise. *)

val choice_of_string : string -> (choice, string) result
val choice_to_string : choice -> string

val loop : choice -> Evloop.t
(** Build an event loop for [choice].  [`Epoll] on a platform without
    epoll fails; [`Auto] never does. *)
