(* Linux epoll backend for the Evloop seam.  See evloop_epoll.mli. *)

external raw_available : unit -> bool = "crdt_epoll_available"

external raw_create : unit -> Unix.file_descr = "crdt_epoll_create"

external raw_ctl : Unix.file_descr -> int -> Unix.file_descr -> int -> int
  = "crdt_epoll_ctl"

external raw_wait :
  Unix.file_descr -> int -> Unix.file_descr array -> int array -> int
  = "crdt_epoll_wait"

external raw_close : Unix.file_descr -> unit = "crdt_epoll_close"

let available = raw_available

(* ctl ops, mirrored in epoll_stubs.c. *)
let op_add = 0
let op_mod = 1
let op_del = 2

module Epoll : Evloop.BACKEND = struct
  type interest = {
    mutable read : bool;
    mutable write : bool;
    mutable in_kernel : bool;
  }

  (* [interests] mirrors the kernel registration so the idempotency the
     BACKEND contract demands (re-adding a registered fd, removing an
     unknown one, re-asserting the current write interest) costs a hash
     lookup, not a syscall — the same incremental bookkeeping the
     select backend keeps, with the kernel table standing in for the
     cached fd lists.

     An fd whose read and write interest are both off is kept OUT of
     the kernel set ([in_kernel]), not registered with an empty mask:
     epoll reports ERR/HUP regardless of the mask, so a drained
     connection to a dead peer would otherwise turn every wait into an
     immediate return — a busy loop select (which simply omits the fd
     from both lists) never enters.  The runtime notices such deaths on
     its next write, exactly as under select. *)
  type t = {
    ep : Unix.file_descr;
    interests : (Unix.file_descr, interest) Hashtbl.t;
    fds : Unix.file_descr array;  (** reused epoll_wait out-array. *)
    revents : int array;
  }

  let name = "epoll"
  let max_events = 64

  let create () =
    if not (available ()) then
      failwith "the epoll backend is unavailable on this platform";
    {
      ep = raw_create ();
      interests = Hashtbl.create 16;
      fds = Array.make max_events Unix.stdin;
      revents = Array.make max_events 0;
    }

  let bits i = (if i.read then 1 else 0) lor (if i.write then 2 else 0)

  (* Bring the kernel set in line with [i].  MOD falls back to ADD (and
     vice versa): a connection can be closed and its fd number reused
     between our bookkeeping updates, at which point the kernel has
     silently dropped the old registration. *)
  let sync t fd i =
    let b = bits i in
    if b = 0 then begin
      if i.in_kernel then begin
        ignore (raw_ctl t.ep op_del fd 0);
        i.in_kernel <- false
      end
    end
    else if i.in_kernel then begin
      if raw_ctl t.ep op_mod fd b <> 0 then ignore (raw_ctl t.ep op_add fd b)
    end
    else begin
      if raw_ctl t.ep op_add fd b <> 0 then ignore (raw_ctl t.ep op_mod fd b);
      i.in_kernel <- true
    end

  let add t ?(read = true) fd =
    match Hashtbl.find_opt t.interests fd with
    | Some i ->
        if i.read <> read then begin
          i.read <- read;
          sync t fd i
        end
    | None ->
        let i = { read; write = false; in_kernel = false } in
        Hashtbl.replace t.interests fd i;
        sync t fd i

  let remove t fd =
    match Hashtbl.find_opt t.interests fd with
    | None -> ()
    | Some i ->
        Hashtbl.remove t.interests fd;
        (* ENOENT/EBADF are expected: closing an fd already removed it
           from the kernel's epoll set. *)
        if i.in_kernel then ignore (raw_ctl t.ep op_del fd 0)

  let set_write t fd want =
    match Hashtbl.find_opt t.interests fd with
    | None -> ()
    | Some i ->
        if i.write <> want then begin
          i.write <- want;
          sync t fd i
        end

  let wait t ~timeout =
    let ms =
      if timeout < 0. then -1
      else if timeout = 0. then 0
      else max 1 (int_of_float (Float.round (timeout *. 1000.)))
    in
    let n = raw_wait t.ep ms t.fds t.revents in
    let readable = ref [] and writable = ref [] in
    for k = n - 1 downto 0 do
      let fd = t.fds.(k) in
      (* Filter through [interests] for select-equal visibility: epoll
         reports ERR/HUP even on fds whose read and write interest are
         both off (a dialed, drained connection whose peer exited) —
         select would show nothing there, and the runtime notices such
         deaths on its next write anyway. *)
      match Hashtbl.find_opt t.interests fd with
      | None -> ()
      | Some i ->
          let b = t.revents.(k) in
          if i.read && b land 1 <> 0 then readable := fd :: !readable;
          if i.write && b land 2 <> 0 then writable := fd :: !writable
    done;
    (!readable, !writable)

  let close t =
    Hashtbl.reset t.interests;
    raw_close t.ep
end

type choice = [ `Select | `Epoll | `Auto ]

let choice_of_string = function
  | "select" -> Ok `Select
  | "epoll" -> Ok `Epoll
  | "auto" -> Ok `Auto
  | s -> Error (Printf.sprintf "unknown event-loop backend %S" s)

let choice_to_string = function
  | `Select -> "select"
  | `Epoll -> "epoll"
  | `Auto -> "auto"

let loop : choice -> Evloop.t = function
  | `Select -> Evloop.make (module Evloop.Select)
  | `Epoll -> Evloop.make (module Epoll)
  | `Auto ->
      if available () then Evloop.make (module Epoll)
      else Evloop.make (module Evloop.Select)
