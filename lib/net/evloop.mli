(** Readiness event loop with incremental interest registration.

    The runtime used to rebuild its fd list on every [select] pass; this
    module keeps the registration {e incremental} — an fd is added once,
    its read/write interest toggled as state changes, and the backend
    maintains whatever bookkeeping it needs (cached fd lists for
    [select], a registration table for an epoll-style backend) without
    per-pass reconstruction.

    The interface is deliberately the intersection of [select] and
    [epoll] semantics, so a Linux epoll backend drops in behind
    {!create} without touching the runtime:

    - interest is level-triggered (a readable fd keeps reporting until
      drained — the runtime reads one chunk per wakeup);
    - write interest is a toggle, meant to be on only while a
      connection has queued outbound bytes (edge registration churn is
      cheap: a no-op toggle does not dirty the backend state).

    Two backends exist: the portable [select] backend here (the right
    floor for clusters of ≤ tens of fds) and the Linux [epoll] backend
    in [Evloop_epoll], which drops in behind {!make} and removes the
    O(fds) scan once fd counts grow.  The runtime picks one per
    [--evloop select|epoll|auto]. *)

(** A pluggable readiness backend.  Implementations must tolerate
    idempotent calls: adding a registered fd, removing an unknown one,
    or re-asserting the current write interest are all no-ops. *)
module type BACKEND = sig
  type t

  val name : string
  val create : unit -> t

  val add : t -> ?read:bool -> Unix.file_descr -> unit
  (** Register [fd].  [read] (default [true]) sets the initial read
      interest; write interest always starts off.  Write-only
      connections (the runtime's dialed sockets) register with
      [~read:false]. *)

  val remove : t -> Unix.file_descr -> unit
  (** Forget [fd] entirely.  A closed fd must be removed before the
      next {!wait}, or a [select] backend will fail with [EBADF]. *)

  val set_write : t -> Unix.file_descr -> bool -> unit
  (** Toggle write interest on a registered fd; unknown fds are
      ignored (a connection can die and be removed between the flush
      that queued bytes and the toggle that would have watched it). *)

  val wait :
    t -> timeout:float -> Unix.file_descr list * Unix.file_descr list
  (** Block up to [timeout] seconds; returns [(readable, writable)].
      [EINTR] yields [([], [])]. *)

  val close : t -> unit
  (** Release backend resources (the epoll instance fd; a no-op for
      select).  The loop must not be used afterwards. *)
end

module Select : BACKEND
(** The portable backend: interests live in one table, and the fd lists
    handed to [Unix.select] are cached — rebuilt only when a
    registration actually changed, not once per pass. *)

type t

val make : (module BACKEND) -> t
(** An event loop over an explicit backend (how [Evloop_epoll] plugs
    in without a dependency cycle). *)

val create : unit -> t
(** An event loop over the portable {!Select} backend.  Callers that
    want epoll-where-available go through [Evloop_epoll.loop]. *)

val backend_name : t -> string
val add : t -> ?read:bool -> Unix.file_descr -> unit
val remove : t -> Unix.file_descr -> unit
val set_write : t -> Unix.file_descr -> bool -> unit
val wait : t -> timeout:float -> Unix.file_descr list * Unix.file_descr list
val close : t -> unit
