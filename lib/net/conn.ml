(** A framed connection over a socket file descriptor.

    Writing emits complete {!Crdt_wire.Frame} frames; reading feeds
    whatever the socket yields into an incremental {!Crdt_wire.Frame.feed}
    and surfaces every complete frame.  Connections are used
    unidirectionally by the runtime: the dialing side writes, the
    accepting side reads — so a node's outbound traffic to peer [j]
    always travels on the connection it dialed to [j]. *)

type t = {
  fd : Unix.file_descr;
  feed : Crdt_wire.Frame.feed;
  scratch : Bytes.t;
  mutable alive : bool;
}

let read_chunk = 65536

let create ?max_payload fd =
  {
    fd;
    feed = Crdt_wire.Frame.feed ?max_payload ();
    scratch = Bytes.create read_chunk;
    alive = true;
  }

let fd t = t.fd
let alive t = t.alive

let close t =
  if t.alive then begin
    t.alive <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

(** Send one frame; [Error] on a broken pipe or reset peer (the
    connection is closed and marked dead). *)
let send t ~kind payload =
  if not t.alive then Error "connection closed"
  else
    let bytes = Crdt_wire.Frame.encode ~kind payload in
    try
      write_all t.fd bytes 0 (String.length bytes);
      Ok ()
    with Unix.Unix_error (e, _, _) ->
      close t;
      Error (Unix.error_message e)

(** Read once from the socket (call after [select] reports the fd
    readable) and return every complete frame now buffered.
    [Ok []] means no complete frame yet; [Error `Closed] is a clean
    peer shutdown; [Error (`Bad e)] is a framing violation — both
    close the connection. *)
let recv t =
  if not t.alive then Error `Closed
  else
    match Unix.read t.fd t.scratch 0 read_chunk with
    | 0 ->
        close t;
        Error `Closed
    | n -> (
        Crdt_wire.Frame.push t.feed (Bytes.sub_string t.scratch 0 n);
        let rec drain acc =
          match Crdt_wire.Frame.pop t.feed with
          | Ok (Some frame) -> drain (frame :: acc)
          | Ok None -> Ok (List.rev acc)
          | Error e ->
              close t;
              Error (`Bad e)
        in
        drain [])
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        close t;
        Error `Closed
    | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> Ok []
