(** A framed connection over a (nonblocking) socket file descriptor.

    Writing is split into two phases so the runtime can coalesce
    frames: {!stage}/{!stage_value} append a frame to the connection's
    outbound buffer without touching the socket, and {!flush} moves the
    staged bytes out with as few [write(2)] calls as the kernel will
    take.  A short write or [EAGAIN] is not an error — the remainder
    stays queued ({!pending_out} reports how much) and the event loop
    drains it when the fd turns writable.  {!send} is the eager
    compatibility path: stage one frame, flush immediately (one write
    per message — the pre-batching behavior, kept for control frames
    and the [--no-batch] measurement mode).

    Buffer ownership: the staging buffer and the payload scratch belong
    to the connection and are reused for its whole lifetime; the only
    per-message allocation on the batched path is whatever the codec
    itself builds.  Reading is unchanged: the socket feeds an
    incremental {!Crdt_wire.Frame.feed} and every complete frame is
    surfaced.  Connections are used unidirectionally by the runtime:
    the dialing side writes, the accepting side reads — so a node's
    outbound traffic to peer [j] always travels on the connection it
    dialed to [j]. *)

type t = {
  fd : Unix.file_descr;
  feed : Crdt_wire.Frame.feed;
  scratch : Bytes.t;  (** read chunk. *)
  obuf : Buffer.t;  (** frame staging; drained into [wbuf] by flush. *)
  pbuf : Buffer.t;  (** payload scratch for {!stage_value}. *)
  mutable wbuf : Bytes.t;  (** outbound queue (staged but unwritten). *)
  mutable wpos : int;  (** next byte of [wbuf] to write. *)
  mutable wlen : int;  (** end of valid bytes in [wbuf]. *)
  mutable writes : int;  (** successful [write(2)] calls, cumulative. *)
  mutable alive : bool;
}

let read_chunk = 65536

let create ?max_payload fd =
  (* Nonblocking is what makes a short write recoverable: a slow peer
     yields EAGAIN and a queued remainder instead of a stalled loop. *)
  (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
  {
    fd;
    feed = Crdt_wire.Frame.feed ?max_payload ();
    scratch = Bytes.create read_chunk;
    obuf = Buffer.create 4096;
    pbuf = Buffer.create 512;
    wbuf = Bytes.create 4096;
    wpos = 0;
    wlen = 0;
    writes = 0;
    alive = true;
  }

let fd t = t.fd
let alive t = t.alive
let writes t = t.writes

let pending_out t = t.wlen - t.wpos + Buffer.length t.obuf

let close t =
  if t.alive then begin
    t.alive <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Staged, coalesced writing                                           *)

let stage t ~kind payload = Crdt_wire.Frame.encode_into t.obuf ~kind payload

(** Stage a frame whose payload is [codec]-encoded [v]; no intermediate
    string is built (the payload goes through the connection's reusable
    scratch only to learn its length prefix). *)
let stage_value t ~kind codec v =
  Crdt_wire.Frame.encode_value_into ~scratch:t.pbuf t.obuf ~kind codec v

(* Make room for [extra] more bytes at [wlen]: slide the unwritten tail
   down first (reclaiming drained space), grow only if still short. *)
let reserve t extra =
  let live = t.wlen - t.wpos in
  if t.wpos > 0 && t.wlen + extra > Bytes.length t.wbuf then begin
    Bytes.blit t.wbuf t.wpos t.wbuf 0 live;
    t.wpos <- 0;
    t.wlen <- live
  end;
  if t.wlen + extra > Bytes.length t.wbuf then begin
    let cap = ref (max 4096 (Bytes.length t.wbuf)) in
    while t.wlen + extra > !cap do
      cap := !cap * 2
    done;
    let grown = Bytes.create !cap in
    Bytes.blit t.wbuf 0 grown 0 t.wlen;
    t.wbuf <- grown
  end

let rec drain t =
  let n = t.wlen - t.wpos in
  if n = 0 then begin
    t.wpos <- 0;
    t.wlen <- 0;
    Ok ()
  end
  else
    match Unix.write t.fd t.wbuf t.wpos n with
    | written ->
        t.writes <- t.writes + 1;
        t.wpos <- t.wpos + written;
        drain t
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Ok ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain t
    | exception Unix.Unix_error (e, _, _) ->
        close t;
        Error (Unix.error_message e)

(** Move the staged frames into the outbound queue and write as much as
    the socket accepts.  [Ok ()] means the connection is healthy —
    bytes may remain queued ({!pending_out}); register the fd for
    writability and call {!flush} again when it fires.  [Error] means
    the connection is dead (closed here); anything still queued is
    discarded with it. *)
let flush t =
  if not t.alive then
    if pending_out t = 0 then Ok ()
    else begin
      Buffer.clear t.obuf;
      t.wpos <- 0;
      t.wlen <- 0;
      Error "connection closed"
    end
  else begin
    let staged = Buffer.length t.obuf in
    if staged > 0 then begin
      reserve t staged;
      Buffer.blit t.obuf 0 t.wbuf t.wlen staged;
      t.wlen <- t.wlen + staged;
      Buffer.clear t.obuf
    end;
    drain t
  end

(** Send one frame eagerly: stage + flush.  On a congested socket the
    remainder is queued rather than raised (the old behavior was a
    [failwith] on any short write); [Error] only on a dead peer. *)
let send t ~kind payload =
  if not t.alive then Error "connection closed"
  else begin
    stage t ~kind payload;
    flush t
  end

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

(** Read once from the socket (call after the event loop reports the fd
    readable) and return every complete frame now buffered.
    [Ok []] means no complete frame yet; [Error `Closed] is a clean
    peer shutdown; [Error (`Bad e)] is a framing violation — both
    close the connection. *)
let recv t =
  if not t.alive then Error `Closed
  else
    match Unix.read t.fd t.scratch 0 read_chunk with
    | 0 ->
        close t;
        Error `Closed
    | n -> (
        Crdt_wire.Frame.push t.feed (Bytes.sub_string t.scratch 0 n);
        let rec drain acc =
          match Crdt_wire.Frame.pop t.feed with
          | Ok (Some frame) -> drain (frame :: acc)
          | Ok None -> Ok (List.rev acc)
          | Error e ->
              close t;
              Error (`Bad e)
        in
        drain [])
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        close t;
        Error `Closed
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        Ok []
