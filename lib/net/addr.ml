(** Transport addresses for the networked runtime.

    Two forms are accepted on the command line:
    - ["HOST:PORT"] — a TCP endpoint ([127.0.0.1:7001]);
    - ["unix:PATH"] (or any string containing a ['/']) — a Unix-domain
      socket path, the form the integration tests use because it needs
      no free-port negotiation. *)

type t =
  | Tcp of string * int  (** host, port. *)
  | Unix_sock of string  (** filesystem path. *)

let to_string = function
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p
  | Unix_sock p -> "unix:" ^ p

let parse s =
  let unix_prefix = "unix:" in
  let plen = String.length unix_prefix in
  if String.length s > plen && String.sub s 0 plen = unix_prefix then
    Ok (Unix_sock (String.sub s plen (String.length s - plen)))
  else if String.contains s '/' then Ok (Unix_sock s)
  else
    match String.rindex_opt s ':' with
    | None ->
        Error (Printf.sprintf "address %S: expected HOST:PORT or unix:PATH" s)
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 ->
            Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | _ -> Error (Printf.sprintf "address %S: bad port %S" s port))

let parse_exn s =
  match parse s with Ok a -> a | Error msg -> invalid_arg msg

let domain = function
  | Tcp _ -> Unix.PF_INET
  | Unix_sock _ -> Unix.PF_UNIX

let to_sockaddr = function
  | Unix_sock p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> invalid_arg (Printf.sprintf "cannot resolve host %S" host))
      in
      Unix.ADDR_INET (inet, port)

(** Remove a stale Unix-socket file before binding; no-op for TCP. *)
let cleanup = function
  | Tcp _ -> ()
  | Unix_sock p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
