(** State-based synchronization (Section II): each replica periodically
    ships its {e full} lattice state to every neighbor, which joins it
    into its own.

    No synchronization metadata is kept (optimal memory, Fig. 10) but
    transmission grows with the state. *)

module Make (C : Protocol_intf.CRDT) :
  Protocol_intf.PROTOCOL with type crdt = C.t and type op = C.op = struct
  type crdt = C.t
  type op = C.op

  type node = {
    id : Crdt_core.Replica_id.t;
    neighbors : int list;
    x : C.t;
    work : int;
  }

  type message = C.t

  let protocol_name = "state-based"

  (* Shipping the full state every tick is a retransmission of
     everything: loss, cuts, delays and restarts are all repaired by the
     next delivered tick.  The only state is the durable CRDT itself, so
     crash/recover are identities. *)
  let capabilities =
    {
      Protocol_intf.tolerates_drop = true;
      tolerates_partition = true;
      tolerates_delay = true;
      tolerates_crash = true;
      durable_restart = true;
    }

  let crash n = n
  let recover n = n
  let load n s = { n with x = C.join n.x s }

  let init ~id ~neighbors ~total:_ =
    { id = Crdt_core.Replica_id.of_int id; neighbors; x = C.bottom; work = 0 }

  let local_update n op =
    let x = C.mutate op n.id n.x in
    { n with x; work = n.work + 1 }

  let tick n =
    let msgs = List.map (fun j -> (j, n.x)) n.neighbors in
    let cost = C.weight n.x * List.length n.neighbors in
    ({ n with work = n.work + cost }, msgs)

  let handle n ~src:_ d =
    ({ n with x = C.join n.x d; work = n.work + C.weight d }, [])

  let state n = n.x
  let payload_weight d = C.weight d
  let metadata_weight _ = 0
  let payload_bytes d = C.byte_size d
  let metadata_bytes _ = 0
  let message_codec = C.codec

  let message_wire_bytes d =
    Crdt_wire.Frame.framed_size
      ~payload_len:(Crdt_wire.Codec.encoded_size C.codec d)
  let memory_weight n = C.weight n.x
  let memory_bytes n = C.byte_size n.x
  let metadata_memory_bytes _ = 0
  let work n = n.work
end
