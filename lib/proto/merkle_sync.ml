(** Hash-tree anti-entropy, the related-work baseline of [32, 33]: nodes
    exchange Merkle-tree digests to locate where their states diverge,
    then ship only the irreducible elements of the differing buckets.

    The tree is built over the irredundant decomposition [⇓x]: each
    irreducible hashes into one of [fanout^depth] leaf buckets, and inner
    nodes hash their children.  One synchronization round between two
    divergent replicas walks the tree level by level — root digest,
    mismatching subtrees, then the bucket contents — which is exactly the
    behaviour the paper ascribes to these protocols: "a significant
    number of message exchanges to identify the source of divergence" and
    "significant processing overhead due to the need of computing hash
    functions".  The walk happens through message cascades, so replicas
    still converge within the round; the cost shows up as extra messages,
    hash metadata and hashing work. *)

module type CONFIG = sig
  val fanout : int
  val depth : int
end

(** 4 levels of fanout 4: 256 leaf buckets. *)
module Default_config = struct
  let fanout = 4
  let depth = 4
end

module Make (C : Protocol_intf.CRDT) (Cfg : CONFIG) :
  Protocol_intf.PROTOCOL with type crdt = C.t and type op = C.op = struct
  module Tree = Crdt_digest.Tree

  type crdt = C.t
  type op = C.op

  let fanout = Cfg.fanout
  let leaves = Tree.leaves ~fanout ~depth:Cfg.depth

  type node = {
    id : Crdt_core.Replica_id.t;
    neighbors : int list;
    x : C.t;
    work : int;
    cache : (C.t * (int array array * C.t list array)) option;
        (** digest tree of the last hashed state, keyed by physical
            equality — rebuilding it is the dominant cost of this
            protocol. *)
  }

  type message =
    | Root of int
    | Subtree of { path : int list; hashes : int list }
        (** digests of the children under [path] (root = []). *)
    | Bucket of { index : int; elements : C.t list; reply : bool }
        (** contents of a leaf bucket; [reply] marks the answering leg of
            the exchange so it is not answered again. *)

  let protocol_name = "merkle"

  (* Anti-entropy restarts from the root digest every tick, so any
     message lost to drops, cuts or downtime only costs extra rounds;
     the digest tree is a cache of the durable state and is simply
     dropped on crash and rebuilt on demand. *)
  let capabilities =
    {
      Protocol_intf.tolerates_drop = true;
      tolerates_partition = true;
      tolerates_delay = true;
      tolerates_crash = true;
      durable_restart = true;
    }

  let crash n = { n with cache = None }
  let recover n = n
  let load n s = { n with x = C.join n.x s; cache = None }

  let init ~id ~neighbors ~total:_ =
    {
      id = Crdt_core.Replica_id.of_int id;
      neighbors;
      x = C.bottom;
      work = 0;
      cache = None;
    }

  let local_update n op =
    { n with x = C.mutate op n.id n.x; work = n.work + 1 }

  (* Deterministic bucket of an irreducible: the repo-wide digest hash
     (FNV-1a over the irreducible's wire encoding, lib/digest), so
     bucket placement is stable across processes — not just within a
     run, as the old structural [Hashtbl.hash] was. *)
  let hash_of y = Crdt_digest.Hash.of_value C.codec y
  let bucket_of y = Tree.bucket_of ~leaves (hash_of y)

  let buckets x =
    let b = Array.make leaves [] in
    List.iter (fun y -> b.(bucket_of y) <- y :: b.(bucket_of y)) (C.decompose x);
    b

  (* Level-by-level digests: level d has fanout^d nodes; level Cfg.depth
     holds the bucket hashes (order-independent within a bucket). *)
  let compute_tree x =
    let b = buckets x in
    let levels =
      Tree.compute ~fanout ~depth:Cfg.depth
        (Array.map (fun elements -> Tree.bucket_hash (List.map hash_of elements)) b)
    in
    (levels, b)

  (* Hashing the whole state is what these protocols pay for; charge the
     work only when the tree is actually (re)built. *)
  let with_tree n =
    match n.cache with
    | Some (x0, t) when x0 == n.x -> (t, n)
    | _ ->
        let t = compute_tree n.x in
        (t, { n with cache = Some (n.x, t); work = n.work + C.weight n.x })

  (* Index of the tree node reached by [path] at level [List.length
     path]. *)
  let index_of_path path =
    List.fold_left (fun acc c -> (acc * fanout) + c) 0 path

  let tick n =
    let (levels, _), n = with_tree n in
    let root = levels.(0).(0) in
    (n, List.map (fun j -> (j, Root root)) n.neighbors)

  let children_hashes levels path =
    let d = List.length path in
    let base = index_of_path path * fanout in
    List.init fanout (fun k -> levels.(d + 1).(base + k))

  let handle n ~src msg =
    match msg with
    | Root h ->
        let (levels, _), n = with_tree n in
        if levels.(0).(0) = h then (n, [])
        else (n, [ (src, Subtree { path = []; hashes = children_hashes levels [] }) ])
    | Subtree { path; hashes } ->
        let (levels, b), n = with_tree n in
        let d = List.length path in
        let replies = ref [] in
        List.iteri
          (fun k remote_hash ->
            let child_path = path @ [ k ] in
            let idx = index_of_path child_path in
            let local_hash = levels.(d + 1).(idx) in
            if local_hash <> remote_hash then
              if d + 1 = Cfg.depth then
                replies :=
                  (src, Bucket { index = idx; elements = b.(idx); reply = false })
                  :: !replies
              else
                replies :=
                  ( src,
                    Subtree
                      { path = child_path; hashes = children_hashes levels child_path } )
                  :: !replies)
          hashes;
        (n, List.rev !replies)
    | Bucket { index; elements; reply } ->
        (* Join whatever we miss; on the requesting leg, answer once with
           the elements of our bucket the sender provably lacks (they
           just told us the bucket's full contents), keeping the exchange
           symmetric.  The memoized digest tree already partitions ⇓x by
           bucket, so the answer reads the cached bucket instead of
           re-decomposing the full state: an unchanged replica (empty
           [missing]) replies without rehashing anything, and a changed
           one rebuilds the tree once here and reuses it at the next
           [tick]. *)
        let theirs = List.fold_left C.join C.bottom elements in
        let missing = List.filter (fun y -> not (C.leq y n.x)) elements in
        let x = List.fold_left C.join n.x missing in
        let n = { n with x; work = n.work + List.length elements } in
        if reply then (n, [])
        else
          let (_, b), n = with_tree n in
          let mine = List.filter (fun y -> not (C.leq y theirs)) b.(index) in
          let n = { n with work = n.work + List.length b.(index) } in
          if mine = [] then (n, [])
          else (n, [ (src, Bucket { index; elements = mine; reply = true }) ])

  let state n = n.x

  let payload_weight = function
    | Root _ | Subtree _ -> 0
    | Bucket { elements; _ } ->
        List.fold_left (fun acc y -> acc + C.weight y) 0 elements

  let metadata_weight = function
    | Root _ -> 1
    | Subtree { hashes; _ } -> List.length hashes
    | Bucket _ -> 1

  let payload_bytes = function
    | Root _ | Subtree _ -> 0
    | Bucket { elements; _ } ->
        List.fold_left (fun acc y -> acc + C.byte_size y) 0 elements

  let metadata_bytes = function
    | Root _ -> 8
    | Subtree { path; hashes } -> (8 * List.length hashes) + List.length path
    | Bucket _ -> 8

  (* Digest hashes can be any int (the inner-node mix overflows), so
     they travel zigzag-encoded; path components and bucket indices are
     small non-negative ints. *)
  let message_codec =
    let open Crdt_wire.Codec in
    union ~name:"merkle_message"
      [
        case 0 int (function Root h -> Some h | _ -> None) (fun h -> Root h);
        case 1
          (pair (list varint) (list int))
          (function
            | Subtree { path; hashes } -> Some (path, hashes) | _ -> None)
          (fun (path, hashes) -> Subtree { path; hashes });
        case 2
          (triple varint (list C.codec) bool)
          (function
            | Bucket { index; elements; reply } -> Some (index, elements, reply)
            | _ -> None)
          (fun (index, elements, reply) -> Bucket { index; elements; reply });
      ]

  let message_wire_bytes m =
    Crdt_wire.Frame.framed_size
      ~payload_len:(Crdt_wire.Codec.encoded_size message_codec m)

  let memory_weight n = C.weight n.x
  let memory_bytes n = C.byte_size n.x

  (* The digest tree is recomputed on demand; resident metadata is the
     cached tree of the last tick: fanout^0 + ... + fanout^depth
     hashes. *)
  let metadata_memory_bytes _ =
    let rec total d acc width =
      if d > Cfg.depth then acc else total (d + 1) (acc + width) (width * fanout)
    in
    8 * total 0 0 1

  let work n = n.work
end
