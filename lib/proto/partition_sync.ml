(** Pairwise synchronization after a network partition, following
    "Join Decompositions for Efficient Synchronization of CRDTs after a
    Network Partition" (Enes, Baquero, Almeida, Shoker — PMLDC@ECOOP'16),
    discussed in the paper's related-work section.  Both techniques exploit
    the same join decompositions as the main algorithm:

    - {b state-driven}: A sends its full state [a] to B; B computes
      [Δ(b, a)] — the minimum state A is missing — joins [a] locally, and
      replies with the delta.  Convergence in 2 messages, with only one
      full-state transfer instead of two.
    - {b digest-driven}: A sends a {e digest} of its state (the metadata
      needed to evaluate [y ⊑ a] for irreducibles [y], smaller than the
      state itself); B computes A's missing delta from the digest alone
      and replies with it plus a digest of its own state; A answers with
      B's missing delta.  Convergence in 3 messages with no full-state
      transfer at all. *)

open Crdt_core

(** A digest abstracts a state [x] by a predicate deciding, for any
    join-irreducible [y], whether [y ⊑ x], plus its wire size.  Built as
    a real hash set of [⇓x]'s irreducible hashes ({!Crdt_digest.Hash}
    through the lattice codec — the repo-wide digest hash), so [covers]
    is what actually travels: 8 bytes per irreducible, with the standard
    hash-set caveat that a collision can claim coverage of an element
    the peer lacks (probability ~2⁻⁶³ per pair). *)
type 'a digest = { covers : 'a -> bool; digest_bytes : int }

module Make (C : Lattice_intf.DECOMPOSABLE) = struct
  type stats = {
    messages : int;
    bytes : int;  (** total payload + digest bytes on the wire. *)
  }

  (** [state_driven a b] returns [(a', b', stats)] with
      [a' = b' = a ⊔ b]: A ships its state, B replies with A's missing
      delta. *)
  let state_driven a b =
    (* message 1: A → B carries the full state a.  B computes A's missing
       delta with the structural Δ — no decomposition of b. *)
    let delta_for_a = C.delta b a in
    let b' = C.join b a in
    (* message 2: B → A carries Δ(b, a). *)
    let a' = C.join a delta_for_a in
    let stats =
      { messages = 2; bytes = C.byte_size a + C.byte_size delta_for_a }
    in
    (a', b', stats)

  (** Digest of a state built from its decomposition: a hash set over
      [⇓x], covering y iff y's hash is present.  [bytes_per_element]
      sizes one digest entry on the wire; the default 8 B is the 64-bit
      hash per irreducible that [Crdt_digest.Hash] produces. *)
  let digest_of ?(bytes_per_element = 8) x =
    let keys = Hashtbl.create 64 in
    let count = ref 0 in
    C.fold_decompose
      (fun y () ->
        incr count;
        Hashtbl.replace keys (Crdt_digest.Hash.of_value C.codec y) ())
      x ();
    {
      covers = (fun y -> Hashtbl.mem keys (Crdt_digest.Hash.of_value C.codec y));
      digest_bytes = !count * bytes_per_element;
    }

  (** [digest_driven a b] converges A and B in 3 messages without ever
      shipping a full state: digests flow A→B, deltas flow both ways. *)
  let digest_driven ?(bytes_per_element = 8) a b =
    (* message 1: A → B carries digest(a). *)
    let da = digest_of ~bytes_per_element a in
    (* B selects from ⇓b what A's digest does not cover, streaming the
       irreducibles instead of materializing the decomposition list. *)
    let delta_for_a =
      C.fold_decompose
        (fun y acc -> if da.covers y then acc else C.join acc y)
        b C.bottom
    in
    (* message 2: B → A carries Δ for A plus digest(b). *)
    let db = digest_of ~bytes_per_element b in
    let a' = C.join a delta_for_a in
    let delta_for_b =
      C.fold_decompose
        (fun y acc -> if db.covers y then acc else C.join acc y)
        a C.bottom
    in
    (* message 3: A → B carries Δ for B. *)
    let b' = C.join b delta_for_b in
    let stats =
      {
        messages = 3;
        bytes =
          da.digest_bytes + db.digest_bytes + C.byte_size delta_for_a
          + C.byte_size delta_for_b;
      }
    in
    (a', b', stats)

  (** Baseline: bidirectional full-state exchange (what systems without
      decompositions fall back to after a partition). *)
  let bidirectional a b =
    let joined = C.join a b in
    (joined, joined, { messages = 2; bytes = C.byte_size a + C.byte_size b })

  (** Crash recovery as pairwise reconciliation: a replica restarting
      from its durable image [durable] catches up with a live [peer]
      through the state-driven exchange — it ships the durable state, the
      peer joins it and answers with the optimal delta
      [Δ(peer, durable)] covering everything missed while down.  Returns
      [(restarted', peer', stats)] with both sides at [durable ⊔ peer];
      this is exactly the exchange [Delta_sync] runs per neighbor after
      {!Crdt_proto.Protocol_intf.PROTOCOL.recover}. *)
  let recover_crashed ~durable ~peer = state_driven durable peer
end
