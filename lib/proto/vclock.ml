(** Vector clocks: summaries [I ↪→ ℕ] of per-replica event counts.

    Used by the operation-based causal-broadcast middleware (each operation
    is tagged with the vector clock of its causal past) and by Scuttlebutt
    (summary vectors of known updates). *)

module M = Map.Make (Int)

type t = int M.t

let empty : t = M.empty
let get i (v : t) = match M.find_opt i v with Some n -> n | None -> 0
let set i n (v : t) : t = if n = 0 then M.remove i v else M.add i n v
let incr i (v : t) : t = M.add i (get i v + 1) v
let merge (a : t) (b : t) : t = M.union (fun _ x y -> Some (max x y)) a b
let leq (a : t) (b : t) = M.for_all (fun i n -> n <= get i b) a
let equal (a : t) (b : t) = leq a b && leq b a
let compare (a : t) (b : t) = M.compare Int.compare a b
let cardinal (v : t) = M.cardinal v
let bindings (v : t) = M.bindings v
let of_list l : t = List.fold_left (fun v (i, n) -> set i n v) empty l

(** [dominates_strictly a b]: [b ≤ a] and [a ≠ b]. *)
let dominates_strictly a b = leq b a && not (leq a b)

(** Causal deliverability (the standard vector-clock condition): an
    operation from [origin] tagged with [tag] is deliverable at a replica
    that has delivered [local] iff the tag is the immediate successor on
    the origin's component and no newer than [local] elsewhere. *)
let deliverable ~origin ~tag ~local =
  get origin tag = get origin local + 1
  && M.for_all (fun i n -> i = origin || n <= get i local) tag

(* A vector entry on the wire: a 20 B replica id plus an 8 B counter, the
   accounting convention of Fig. 9. *)
let entry_bytes = Crdt_core.Replica_id.id_bytes + 8
let byte_size (v : t) = cardinal v * entry_bytes

(* Decoding goes through [of_list]/[set], which drops zero entries —
   indistinguishable from absence — so corrupt input still yields a
   canonical clock. *)
let codec : t Crdt_wire.Codec.t =
  Crdt_wire.Codec.conv bindings of_list
    (Crdt_wire.Codec.list
       (Crdt_wire.Codec.pair Crdt_wire.Codec.varint Crdt_wire.Codec.varint))

let pp ppf (v : t) =
  Format.fprintf ppf "@[<1>[%a]@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (i, n) -> Format.fprintf ppf "%d:%d" i n))
    (M.bindings v)
