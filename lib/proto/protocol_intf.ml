(** Common interface implemented by every synchronization protocol.

    A protocol instance manages one replica (a {e node}) of one CRDT.  The
    driver (simulator or real transport) is expected to:

    - call {!PROTOCOL.local_update} whenever the application performs an
      operation;
    - call {!PROTOCOL.tick} once per synchronization interval, sending the
      returned messages to the designated neighbors;
    - call {!PROTOCOL.handle} on message receipt, sending any returned
      replies.

    Messages may be duplicated or reordered by the driver: every protocol
    here tolerates both (state-based and delta-based by idempotent joins,
    Scuttlebutt by versioned pairs, op-based by per-operation identifiers).
    Harsher fault classes — message loss, link partitions, per-link delay
    and node crash–restart — are {e declared capabilities}
    ({!PROTOCOL.capabilities}): a driver injecting a fault class must
    check the protocol tolerates it (the simulator rejects the plan up
    front otherwise), and every protocol implements the
    {!PROTOCOL.crash}/{!PROTOCOL.recover} split describing exactly which
    state survives a restart.

    The accounting functions mirror the paper's measurements: weights
    count lattice elements (the metric of Table I), byte sizes estimate
    wire/memory footprint (Fig. 9, Fig. 11), and {!PROTOCOL.work} counts
    deterministic CPU work units (elements touched by joins, ⊑ checks and
    decompositions — the basis of Fig. 1-right and Fig. 12). *)

(** Fault classes a protocol declares it tolerates (beyond duplication
    and reordering, which are mandatory).  "Tolerates" means: a run
    injecting only that fault class still converges once the fault
    schedule ends — lost or cut messages are eventually compensated by
    retransmission, anti-entropy or explicit recovery. *)
type capabilities = {
  tolerates_drop : bool;
      (** probabilistic message loss (retry-by-design protocols). *)
  tolerates_partition : bool;
      (** scheduled link cuts that heal at a known round. *)
  tolerates_delay : bool;
      (** messages held a bounded number of rounds, then delivered. *)
  tolerates_crash : bool;
      (** node restart losing volatile protocol state but keeping the
          durable CRDT state (see {!PROTOCOL.crash}). *)
  durable_restart : bool;
      (** whole-process restart from a durable image holding {e only}
          the CRDT state (see {!PROTOCOL.load}).  Strictly stronger
          than [tolerates_crash]: Scuttlebutt, for instance, survives
          an in-memory restart (its documented durable unit includes
          the summary vector) but not a CRDT-state-only reload — a
          fresh summary would reuse sequence numbers and alias
          different deltas under one version pair. *)
}

module type PROTOCOL = sig
  type crdt
  type op
  type node
  type message

  val protocol_name : string

  val capabilities : capabilities
  (** Fault classes this protocol (in its current configuration)
      tolerates; drivers must not inject others. *)

  val init : id:int -> neighbors:int list -> total:int -> node
  (** Fresh replica [id] whose synchronization partners are [neighbors]
      (ids used as message destinations); [total] is the number of
      replicas in the system (needed by Scuttlebutt-GC's safe-delete
      rule; other protocols ignore it). *)

  val local_update : node -> op -> node
  (** Apply an application-level operation at this replica. *)

  val tick : node -> node * (int * message) list
  (** One synchronization step: returns the messages (destination,
      payload) to push to neighbors. *)

  val handle : node -> src:int -> message -> node * (int * message) list
  (** Process a received message; may produce immediate replies (used by
      the digest/reply exchange of Scuttlebutt). *)

  val crash : node -> node
  (** The node fails: volatile protocol state (buffers, caches, session
      metadata) is lost; durable state (at least the CRDT state [xᵢ],
      plus whatever the protocol documents as checkpointed with it)
      survives.  [state (crash n) = state n] for every protocol. *)

  val recover : node -> node
  (** The node restarts from the durable image left by {!crash}:
      rebuilds whatever working state it can and initiates the
      protocol's recovery exchange (if any) on subsequent {!tick}s. *)

  val load : node -> crdt -> node
  (** The node restarts as a {e fresh process} whose only input is a
      CRDT state recovered from durable storage: [load (init ...) s]
      installs [s] as the local state and arms the same recovery
      exchange {!recover} would.  The in-memory crash model keeps the
      full pre-crash [xᵢ] by fiat; here the storage layer supplies a
      lattice prefix of it ([s ⊑] pre-crash state — a torn log tail may
      have dropped the last delta), and the recovery exchange plus
      ordinary anti-entropy close the gap.  Law: [state (load n s) =
      join (state n) s]. *)

  val state : node -> crdt
  (** Current local lattice state [xᵢ]. *)

  val payload_weight : message -> int
  (** Lattice elements carried by the message (0 for pure digests). *)

  val metadata_weight : message -> int
  (** Metadata units carried (vector entries, version pairs, origin
      tags). *)

  val payload_bytes : message -> int
  val metadata_bytes : message -> int

  val message_codec : message Crdt_wire.Codec.t
  (** Binary wire codec for protocol messages, built from the CRDT's
      composition codec plus the protocol's own framing (DESIGN.md §6).
      Total: decoding returns [Error] on truncated/corrupt input. *)

  val message_wire_bytes : message -> int
  (** Exact number of bytes the message occupies on the wire, framed
      (header + varint length prefix + encoded payload) — the exact
      counterpart of the [payload_bytes + metadata_bytes] estimate. *)

  val memory_weight : node -> int
  (** Elements resident at the node: CRDT state plus buffered deltas/ops
      plus stored metadata entries (the metric of Fig. 10). *)

  val memory_bytes : node -> int

  val metadata_memory_bytes : node -> int
  (** Bytes of synchronization metadata kept at the node (Fig. 9). *)

  val work : node -> int
  (** Cumulative work units spent producing and processing messages. *)
end

(** Convenience alias for what protocol functors consume. *)
module type CRDT = Crdt_core.Lattice_intf.CRDT
