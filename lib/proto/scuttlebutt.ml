(** Scuttlebutt anti-entropy adapted to state-based CRDTs (Section V-B).

    Following the paper's adaptation: the values stored in the Scuttlebutt
    key-value store are the {e optimal deltas} produced by δ-mutators, and
    the keys are version pairs [⟨i, s⟩ ∈ I × ℕ] (origin replica, local
    sequence number).  Locally known updates are summarized by a vector
    [I ↪→ ℕ]; each synchronization step pushes the summary vector to a
    neighbor, which replies with every key-delta pair not covered by it.
    Received pairs are stored (for further propagation — nodes are only
    connected to a subset of the system) and their deltas joined into the
    local CRDT.

    - {b Scuttlebutt} (original): pairs are never deleted, so the store
      grows without bound while updates keep arriving.
    - {b Scuttlebutt-GC}: each node additionally gossips, inside its
      digests, the map [I ↪→ (I ↪→ ℕ)] recording the latest summary
      vector it has observed from {e every} node in the system; a pair
      [⟨i, s⟩] is deleted once every node's recorded summary covers [s].
      This is the paper's safe-delete variant with its quadratic metadata
      cost (Fig. 9). *)

module type CONFIG = sig
  val gc : bool
end

module Gc_config = struct
  let gc = true
end

module No_gc_config = struct
  let gc = false
end

module Make (C : Protocol_intf.CRDT) (Cfg : CONFIG) :
  Protocol_intf.PROTOCOL with type crdt = C.t and type op = C.op = struct
  type crdt = C.t
  type op = C.op

  module Im = Map.Make (Int)

  type node = {
    id : Crdt_core.Replica_id.t;
    self : int;
    total : int;  (** number of replicas in the system (for GC). *)
    neighbors : int list;
    x : C.t;
    store : C.t Im.t Im.t;  (** origin ↦ seq ↦ delta. *)
    summary : Vclock.t;  (** highest contiguous seq known per origin. *)
    knowledge : Vclock.t Im.t;
        (** GC only: node ↦ last summary vector observed from it. *)
    work : int;
  }

  type message =
    | Digest of { summary : Vclock.t; knowledge : Vclock.t Im.t }
    | Pairs of (int * int * C.t) list  (** (origin, seq, delta). *)

  let protocol_name = if Cfg.gc then "scuttlebutt-gc" else "scuttlebutt"

  (* Anti-entropy by digests is retry-by-design: any pair missing from a
     summary is resent on the next exchange, so loss, cuts and delays
     only cost rounds.  Crash–restart is tolerated through the durable
     checkpoint (see [crash]) plus the peers' handling of {e regressed}
     digests: a digest whose knowledge vectors went backwards never
     shrinks anyone's state — [merge_knowledge] is a pointwise max — and
     [missing_pairs] simply resends whatever the regressed summary no
     longer covers (idempotently, keyed by version pair). *)
  let capabilities =
    {
      Protocol_intf.tolerates_drop = true;
      tolerates_partition = true;
      tolerates_delay = true;
      tolerates_crash = true;
      (* A CRDT-state-only reload cannot restore the summary vector, so
         a restarted node would reuse its own sequence numbers — two
         different deltas aliased under one version pair breaks the
         versioned-store invariant.  Durable restart would need the
         summary persisted with the state (the documented checkpoint
         unit); the current store layer keeps only CRDT bytes. *)
      durable_restart = false;
    }

  (* The GC variant needs the system size to tell when everyone has seen
     a pair: deletion only fires once summaries from all [total] nodes
     cover it. *)
  let init ~id ~neighbors ~total =
    {
      id = Crdt_core.Replica_id.of_int id;
      self = id;
      total;
      neighbors;
      x = C.bottom;
      store = Im.empty;
      summary = Vclock.empty;
      knowledge = Im.empty;
      work = 0;
    }

  let store_find origin seq store =
    match Im.find_opt origin store with
    | None -> None
    | Some m -> Im.find_opt seq m

  let store_add origin seq delta store =
    let m =
      match Im.find_opt origin store with Some m -> m | None -> Im.empty
    in
    Im.add origin (Im.add seq delta m) store

  (* Summary counts the highest contiguous prefix per origin, so advance
     it as far as consecutive sequence numbers are present. *)
  let advance_summary origin store summary =
    let m =
      match Im.find_opt origin store with Some m -> m | None -> Im.empty
    in
    let rec go s = if Im.mem (s + 1) m then go (s + 1) else s in
    Vclock.set origin (go (Vclock.get origin summary)) summary

  (* Crash–restart.  Durable: the CRDT state and the summary vector,
     checkpointed as one unit — persisting the own sequence counter with
     the state is standard Scuttlebutt practice (reusing a sequence
     number would alias two different deltas under one version pair),
     and the other components only claim knowledge the durable [x]
     actually contains.  Volatile: the pair store and the GC knowledge
     matrix.

     Losing the store does not endanger [x], but it would silence the
     node as a {e forwarder}: peers whose summaries lag would be offered
     nothing.  [recover] therefore reseeds the store with one snapshot
     pair [⟨self, s+1, x⟩] carrying the full durable state under a fresh
     sequence number; every peer's summary is below [s+1], so the next
     digest exchange pulls the snapshot and resumes dissemination.  The
     GC interplay is safe in both directions: pairs pruned before the
     crash were, by the safe-delete rule, covered by this node's own
     (durable) summary — i.e. already joined into [x] — and the rebuilt
     knowledge matrix only delays this node's own pruning until it has
     heard the whole system again. *)
  let crash n = { n with store = Im.empty; knowledge = Im.empty }

  let recover n =
    if C.is_bottom n.x then n
    else
      let seq = Vclock.get n.self n.summary + 1 in
      let store = store_add n.self seq n.x n.store in
      { n with store; summary = advance_summary n.self store n.summary }

  (* Only sound when [n] carries the durable summary vector alongside
     the state (capabilities declare [durable_restart = false]; see
     there) — drivers never call this on a fresh node, but the
     definition honors the [load] law for completeness. *)
  let load n s = recover { n with x = C.join n.x s }

  let local_update n op =
    let delta = C.delta_mutate op n.id n.x in
    if C.is_bottom delta then n
    else
      let seq = Vclock.get n.self n.summary + 1 in
      let store = store_add n.self seq delta n.store in
      {
        n with
        x = C.join n.x delta;
        store;
        summary = advance_summary n.self store n.summary;
        work = n.work + C.weight delta;
      }

  (* GC: a pair ⟨origin, seq⟩ may be deleted once the recorded summaries
     of every known node cover seq — and we have heard from the whole
     system. *)
  let prune n =
    if not Cfg.gc then n
    else
      let members = Im.cardinal n.knowledge in
      if n.total = 0 || members < n.total then n
      else
        let covered origin seq =
          Im.for_all (fun _ summary -> Vclock.get origin summary >= seq)
            n.knowledge
        in
        let store =
          Im.mapi
            (fun origin m -> Im.filter (fun seq _ -> not (covered origin seq)) m)
            n.store
        in
        { n with store }

  let merge_knowledge n ~src summary knowledge =
    if not Cfg.gc then n
    else
      let merge_one node vec acc =
        let prev =
          match Im.find_opt node acc with Some v -> v | None -> Vclock.empty
        in
        Im.add node (Vclock.merge prev vec) acc
      in
      let knowledge = Im.fold merge_one knowledge n.knowledge in
      let knowledge = merge_one src summary knowledge in
      let knowledge = merge_one n.self n.summary knowledge in
      prune { n with knowledge }

  let tick n =
    let digest = Digest { summary = n.summary; knowledge = n.knowledge } in
    let msgs = List.map (fun j -> (j, digest)) n.neighbors in
    ({ n with work = n.work + (Vclock.cardinal n.summary * List.length msgs) },
     msgs)

  let missing_pairs n remote_summary =
    Im.fold
      (fun origin m acc ->
        Im.fold
          (fun seq delta acc ->
            if seq > Vclock.get origin remote_summary then
              (origin, seq, delta) :: acc
            else acc)
          m acc)
      n.store []

  let handle n ~src msg =
    match msg with
    | Digest { summary; knowledge } ->
        let pairs = missing_pairs n summary in
        let n = merge_knowledge n ~src summary knowledge in
        let cost =
          List.fold_left (fun acc (_, _, d) -> acc + C.weight d) 0 pairs
        in
        let n = { n with work = n.work + cost + Vclock.cardinal summary } in
        if pairs = [] then (n, []) else (n, [ (src, Pairs pairs) ])
    | Pairs pairs ->
        let n =
          List.fold_left
            (fun n (origin, seq, delta) ->
              if store_find origin seq n.store <> None then n
              else
                let store = store_add origin seq delta n.store in
                {
                  n with
                  x = C.join n.x delta;
                  store;
                  summary = advance_summary origin store n.summary;
                  work = n.work + C.weight delta;
                })
            n pairs
        in
        (prune n, [])

  let state n = n.x

  let payload_weight = function
    | Digest _ -> 0
    | Pairs pairs ->
        List.fold_left (fun acc (_, _, d) -> acc + C.weight d) 0 pairs

  let metadata_weight = function
    | Digest { summary; knowledge } ->
        Vclock.cardinal summary
        + Im.fold (fun _ v acc -> acc + Vclock.cardinal v) knowledge 0
    | Pairs pairs -> 2 * List.length pairs

  let payload_bytes = function
    | Digest _ -> 0
    | Pairs pairs ->
        List.fold_left (fun acc (_, _, d) -> acc + C.byte_size d) 0 pairs

  let metadata_bytes = function
    | Digest { summary; knowledge } ->
        Vclock.byte_size summary
        + Im.fold
            (fun _ v acc ->
              acc + Crdt_core.Replica_id.id_bytes + Vclock.byte_size v)
            knowledge 0
    | Pairs pairs -> List.length pairs * Vclock.entry_bytes

  let message_codec =
    let open Crdt_wire.Codec in
    let knowledge_codec =
      conv Im.bindings
        (fun l -> List.fold_left (fun m (k, v) -> Im.add k v m) Im.empty l)
        (list (pair varint Vclock.codec))
    in
    union ~name:"scuttlebutt_message"
      [
        case 0 (pair Vclock.codec knowledge_codec)
          (function
            | Digest { summary; knowledge } -> Some (summary, knowledge)
            | Pairs _ -> None)
          (fun (summary, knowledge) -> Digest { summary; knowledge });
        case 1
          (list (triple varint varint C.codec))
          (function Pairs pairs -> Some pairs | Digest _ -> None)
          (fun pairs -> Pairs pairs);
      ]

  let message_wire_bytes m =
    Crdt_wire.Frame.framed_size
      ~payload_len:(Crdt_wire.Codec.encoded_size message_codec m)

  let stored_deltas n =
    Im.fold
      (fun _ m acc -> Im.fold (fun _ d acc -> C.weight d + acc) m acc)
      n.store 0

  let memory_weight n =
    C.weight n.x + stored_deltas n + Vclock.cardinal n.summary
    + Im.fold (fun _ v acc -> acc + Vclock.cardinal v) n.knowledge 0

  let metadata_memory_bytes n =
    Vclock.byte_size n.summary
    + Im.fold
        (fun _ v acc ->
          acc + Crdt_core.Replica_id.id_bytes + Vclock.byte_size v)
        n.knowledge 0

  let memory_bytes n =
    C.byte_size n.x
    + Im.fold
        (fun _ m acc ->
          Im.fold (fun _ d acc -> acc + C.byte_size d + Vclock.entry_bytes) m acc)
        n.store 0
    + metadata_memory_bytes n

  let work n = n.work
end
