(** Delta-based synchronization — Algorithm 1 of the paper, covering both
    columns: the classic algorithm of Almeida et al. [13,14] and the
    improved version with the BP and RR optimizations.

    State per replica: the lattice state [xᵢ] and a δ-buffer [Bᵢ] of
    δ-groups, each tagged with the identifier of the neighbor it came from
    (or the replica itself for local mutations).

    - {b Classic} (lines without highlight): [tick] joins the whole buffer
      into one δ-group and sends it to every neighbor, then clears the
      buffer; [handle d] stores [d] whenever [d ⋢ xᵢ].
    - {b BP} (avoid back-propagation): [tick] filters out, for destination
      [j], the buffer entries whose origin is [j] (line 11, right column).
    - {b RR} (remove redundant state): [handle d] first extracts
      [Δ(d, xᵢ)] — the part of the received δ-group that strictly inflates
      the local state — and stores only that, if non-bottom (lines 15–16,
      right column).

    The paper assumes channels that may duplicate and reorder but not drop
    messages, clearing the buffer after each synchronization step; both
    behaviours are safe here because δ-groups are joined idempotently.
    {!Make} additionally supports the footnote's ack-based variant for
    lossy channels ([ack_mode]): buffer entries carry sequence numbers and
    are only evicted once every neighbor acknowledged them. *)

type config = { bp : bool; rr : bool; ack_mode : bool }

let classic = { bp = false; rr = false; ack_mode = false }
let bp_only = { bp = true; rr = false; ack_mode = false }
let rr_only = { bp = false; rr = true; ack_mode = false }
let bp_rr = { bp = true; rr = true; ack_mode = false }

let config_name c =
  match (c.bp, c.rr) with
  | false, false -> "delta-classic"
  | true, false -> "delta-bp"
  | false, true -> "delta-rr"
  | true, true -> "delta-bp+rr"

module type CONFIG = sig
  val config : config
end

module Make (C : Protocol_intf.CRDT) (Cfg : CONFIG) :
  Protocol_intf.PROTOCOL with type crdt = C.t and type op = C.op = struct
  module D = Crdt_core.Delta.Make (C)

  type crdt = C.t
  type op = C.op

  type entry = {
    delta : C.t;
    origin : int;  (** neighbor the δ-group came from, or self. *)
    seq : int;  (** sequence number, used only in ack mode. *)
  }

  type node = {
    id : Crdt_core.Replica_id.t;
    self : int;
    neighbors : int list;
    x : C.t;
    buffer : entry list;  (** [Bᵢ], oldest first. *)
    next_seq : int;
    acked : Vclock.t;  (** ack mode: highest seq acked per neighbor. *)
    work : int;
  }

  type message =
    | Delta of { group : C.t; seq : int }
    | Ack of { seq : int }

  let protocol_name = config_name Cfg.config
  let cfg = Cfg.config

  let init ~id ~neighbors ~total:_ =
    {
      id = Crdt_core.Replica_id.of_int id;
      self = id;
      neighbors;
      x = C.bottom;
      buffer = [];
      next_seq = 0;
      acked = Vclock.empty;
      work = 0;
    }

  (* fun store(s, o) — lines 18-20: join into the local state and append
     to the δ-buffer tagged with its origin. *)
  let store n delta origin =
    {
      n with
      x = C.join n.x delta;
      buffer = n.buffer @ [ { delta; origin; seq = n.next_seq } ];
      next_seq = n.next_seq + 1;
      work = n.work + C.weight delta;
    }

  let local_update n op =
    let delta = C.delta_mutate op n.id n.x in
    if C.is_bottom delta then n else store n delta n.self

  (* δ-group for destination j: join of buffer entries, minus (under BP)
     those that came from j, minus (in ack mode) those j already acked. *)
  let group_for n j =
    List.fold_left
      (fun acc e ->
        if cfg.bp && e.origin = j then acc
        else if cfg.ack_mode && e.seq < Vclock.get j n.acked then acc
        else C.join acc e.delta)
      C.bottom n.buffer

  let tick n =
    let msgs =
      List.filter_map
        (fun j ->
          let g = group_for n j in
          if C.is_bottom g then None
          else Some (j, Delta { group = g; seq = n.next_seq }))
        n.neighbors
    in
    let cost =
      List.fold_left
        (fun acc (_, m) ->
          match m with Delta { group; _ } -> acc + C.weight group | Ack _ -> acc)
        0 msgs
    in
    let buffer =
      if cfg.ack_mode then
        (* Keep entries until every neighbor that must receive them (under
           BP, everyone but their origin) has acked past them. *)
        List.filter
          (fun e ->
            List.exists
              (fun j ->
                (not (cfg.bp && e.origin = j))
                && e.seq >= Vclock.get j n.acked)
              n.neighbors)
          n.buffer
      else []
    in
    ({ n with buffer; work = n.work + cost }, msgs)

  let handle n ~src d =
    match d with
    | Ack { seq } ->
        let acked = Vclock.set src (max seq (Vclock.get src n.acked)) n.acked in
        ({ n with acked }, [])
    | Delta { group = d; seq } ->
        let ack = if cfg.ack_mode then [ (src, Ack { seq }) ] else [] in
        if cfg.rr then begin
          (* d = Δ(d, xᵢ); if d ≠ ⊥ then store(d, src) — the extraction
             pays one decomposition of the received group. *)
          let extracted = D.delta d n.x in
          let n = { n with work = n.work + C.weight d } in
          if C.is_bottom extracted then (n, ack)
          else (store n extracted src, ack)
        end
        else begin
          (* classic: if d ⋢ xᵢ then store(d, src). *)
          let n = { n with work = n.work + C.weight d } in
          if C.leq d n.x then (n, ack) else (store n d src, ack)
        end

  let state n = n.x

  let payload_weight = function
    | Delta { group; _ } -> C.weight group
    | Ack _ -> 0

  (* Classic tags nothing; BP/ack tag each message with one sequence
     number (the paper's "a sequence number per neighbor" metadata). *)
  let tagged = cfg.bp || cfg.ack_mode

  let metadata_weight = function
    | Delta _ -> if tagged then 1 else 0
    | Ack _ -> 1

  let payload_bytes = function
    | Delta { group; _ } -> C.byte_size group
    | Ack _ -> 0

  let metadata_bytes = function
    | Delta _ -> if tagged then 8 else 0
    | Ack _ -> 8

  let memory_weight n =
    C.weight n.x
    + List.fold_left (fun acc e -> acc + C.weight e.delta) 0 n.buffer

  let memory_bytes n =
    C.byte_size n.x
    + List.fold_left (fun acc e -> acc + C.byte_size e.delta) 0 n.buffer

  (* Delta-based metadata: one sequence number per neighbor (Fig. 9). *)
  let metadata_memory_bytes n = 8 * List.length n.neighbors
  let work n = n.work
end

(** Pre-packaged configurations, one per curve in Figs. 7–8. *)
module Classic_config = struct
  let config = classic
end

module Bp_config = struct
  let config = bp_only
end

module Rr_config = struct
  let config = rr_only
end

module Bp_rr_config = struct
  let config = bp_rr
end

module Ack_config = struct
  let config = { bp_rr with ack_mode = true }
end
