(** Delta-based synchronization — Algorithm 1 of the paper, covering both
    columns: the classic algorithm of Almeida et al. [13,14] and the
    improved version with the BP and RR optimizations.

    State per replica: the lattice state [xᵢ] and a δ-buffer [Bᵢ] of
    δ-groups, each tagged with the identifier of the neighbor it came from
    (or the replica itself for local mutations).

    - {b Classic} (lines without highlight): [tick] joins the whole buffer
      into one δ-group and sends it to every neighbor, then clears the
      buffer; [handle d] stores [d] whenever [d ⋢ xᵢ].
    - {b BP} (avoid back-propagation): [tick] filters out, for destination
      [j], the buffer entries whose origin is [j] (line 11, right column).
    - {b RR} (remove redundant state): [handle d] first extracts
      [Δ(d, xᵢ)] — the part of the received δ-group that strictly inflates
      the local state — and stores only that, if non-bottom (lines 15–16,
      right column).

    The paper assumes channels that may duplicate and reorder but not drop
    messages, clearing the buffer after each synchronization step; both
    behaviours are safe here because δ-groups are joined idempotently.
    {!Make} additionally supports the footnote's ack-based variant for
    lossy channels ([ack_mode]): buffer entries carry sequence numbers and
    are only evicted once every neighbor acknowledged them.

    {b Crash–recovery.}  The δ-buffer, per-origin groups, sequence
    counters and ack vector are volatile; only the CRDT state [xᵢ] is
    durable.  A restarted replica therefore cannot replay lost buffer
    entries — in ack mode the unacked entries themselves are gone — but
    everything they carried is, by construction, below the durable [xᵢ].
    [recover] runs the state-driven reconciliation of the companion
    partition work ([Partition_sync]) against each neighbor: the node
    keeps a [need_sync] set and sends a [SyncReq] carrying its full
    durable state on every tick until the neighbor answers.  The
    neighbor absorbs the request like a received δ-group (so the
    restarted node's unacked data re-enters {e its} buffer and
    propagates onward, rebuilding the per-origin δ-groups) and always
    replies [SyncResp Δ(xⱼ, received)] — the optimal delta covering
    every message the victim missed while down; an empty Δ still flows
    back as the up-to-date marker.  Retrying the request until answered
    makes the exchange safe under loss, so crash tolerance holds in
    every configuration; drop/partition tolerance additionally needs
    the ack machinery for ordinary traffic, hence is declared by
    [ack_mode] only.  One guard closes the stale-incarnation hole: an
    [Ack] whose sequence number exceeds [next_seq] can only refer to a
    pre-crash incarnation (sequence numbers restart at 0) and is
    ignored, otherwise a delayed old ack could evict fresh unacked
    entries.

    {b Buffer representation.}  In the common (non-ack) mode the δ-buffer
    is {e not} a list of entries: it is one joined δ-group per origin
    (maintained only under BP, which is the sole consumer of origin
    tags), plus the running join of all of them.  [store] therefore
    costs one join (two under BP) — O(1) amortized in the buffer length,
    instead of the list-append O(|Bᵢ|) — and [tick] sends the
    precomputed running join; under BP, the per-destination "everything
    except what you sent me" groups are derived with O(origins)
    prefix/suffix joins for the whole tick rather than a fold over the
    full buffer per neighbor.  Only [ack_mode] keeps the seq-tagged entry
    list, because selective eviction needs per-entry sequence numbers.
    The RR extraction in [handle] uses the structural
    {!Crdt_core.Lattice_intf.DECOMPOSABLE.delta}, so no received δ-group
    is ever decomposed into singletons on the hot path.

    {b Message cost caching.}  Every [Delta] message carries its δ-group's
    weight and byte size, computed once when the message is built ([tick]
    needs both anyway for the work charge).  The engine's per-message
    accounting ([payload_weight] / [payload_bytes]) and the receiver's
    work charge in [handle] are then O(1) field reads instead of a full
    traversal of the group per delivery — classic sends the {e same}
    group to every neighbor, so the pre-cache cost was
    O(degree · |group|) per tick for accounting alone. *)

type config = { bp : bool; rr : bool; ack_mode : bool }

let classic = { bp = false; rr = false; ack_mode = false }
let bp_only = { bp = true; rr = false; ack_mode = false }
let rr_only = { bp = false; rr = true; ack_mode = false }
let bp_rr = { bp = true; rr = true; ack_mode = false }

let config_name c =
  let base =
    match (c.bp, c.rr) with
    | false, false -> "delta-classic"
    | true, false -> "delta-bp"
    | false, true -> "delta-rr"
    | true, true -> "delta-bp+rr"
  in
  if c.ack_mode then base ^ "-ack" else base

module type CONFIG = sig
  val config : config
end

module Make (C : Protocol_intf.CRDT) (Cfg : CONFIG) :
  Protocol_intf.PROTOCOL with type crdt = C.t and type op = C.op = struct
  module Origins = Map.Make (Int)
  module Iset = Set.Make (Int)

  type crdt = C.t
  type op = C.op

  type entry = {
    delta : C.t;
    origin : int;  (** neighbor the δ-group came from, or self. *)
    seq : int;  (** sequence number, used only in ack mode. *)
  }

  type node = {
    id : Crdt_core.Replica_id.t;
    self : int;
    neighbors : int list;
    x : C.t;
    groups : C.t Origins.t;
        (** BP, non-ack mode: origin ↦ join of the δ-groups stored from
            that origin since the last tick.  Empty when BP is off — only
            BP consults origins, so the buffer is just [pending]. *)
    pending : C.t;
        (** [Bᵢ] in non-ack mode: join of every δ-group stored since the
            last tick, maintained at [store]. *)
    entries : entry list;  (** [Bᵢ] in ack mode only, newest first. *)
    next_seq : int;
    acked : Vclock.t;  (** ack mode: highest seq acked per neighbor. *)
    need_sync : Iset.t;
        (** neighbors still owing a [SyncResp] after a restart; a
            [SyncReq] is (re)sent to each on every tick. *)
    work : int;
  }

  type message =
    | Delta of { group : C.t; seq : int; weight : int; bytes : int }
        (** [weight]/[bytes] cache [C.weight group]/[C.byte_size group],
            computed once at send time. *)
    | Ack of { seq : int }
    | SyncReq of { state : C.t; weight : int; bytes : int }
        (** crash recovery: the restarted replica's full durable state. *)
    | SyncResp of { group : C.t; weight : int; bytes : int }
        (** crash recovery: [Δ(xⱼ, received)], possibly bottom. *)

  let protocol_name = config_name Cfg.config
  let cfg = Cfg.config

  (* Ordinary traffic survives loss and cuts only with the ack-based
     retransmission machinery; delay loses nothing, and crash recovery
     has its own retried SyncReq/SyncResp exchange (see above). *)
  let capabilities =
    {
      Protocol_intf.tolerates_drop = cfg.ack_mode;
      tolerates_partition = cfg.ack_mode;
      tolerates_delay = true;
      tolerates_crash = true;
      durable_restart = true;
    }

  let init ~id ~neighbors ~total:_ =
    {
      id = Crdt_core.Replica_id.of_int id;
      self = id;
      neighbors;
      x = C.bottom;
      groups = Origins.empty;
      pending = C.bottom;
      entries = [];
      next_seq = 0;
      acked = Vclock.empty;
      need_sync = Iset.empty;
      work = 0;
    }

  (* Durable: [x].  Volatile: the δ-buffer in all its representations,
     the sequence counter and the ack vector (a fresh incarnation
     restarts numbering at 0). *)
  let crash n =
    {
      n with
      groups = Origins.empty;
      pending = C.bottom;
      entries = [];
      next_seq = 0;
      acked = Vclock.empty;
      need_sync = Iset.empty;
    }

  let recover n = { n with need_sync = Iset.of_list n.neighbors }

  (* Restart-from-disk: install the recovered state and run the same
     retried SyncReq/SyncResp exchange as an in-memory restart — it is
     bidirectional, so it also re-propagates any tail deltas the log
     kept but the rest of the cluster never saw. *)
  let load n s = recover { n with x = C.join n.x s }

  (* fun store(s, o) — lines 18-20: join into the local state and into
     the origin's δ-group (non-ack), or cons a seq-tagged entry (ack).
     Either way the cost is independent of the buffer length. *)
  let store n delta origin =
    let n =
      {
        n with
        x = C.join n.x delta;
        next_seq = n.next_seq + 1;
        work = n.work + C.weight delta;
      }
    in
    if cfg.ack_mode then
      { n with entries = { delta; origin; seq = n.next_seq - 1 } :: n.entries }
    else
      {
        n with
        groups =
          (if cfg.bp then
             Origins.update origin
               (function None -> Some delta | Some g -> Some (C.join g delta))
               n.groups
           else n.groups);
        pending = C.join n.pending delta;
      }

  let local_update n op =
    let delta = C.delta_mutate op n.id n.x in
    if C.is_bottom delta then n else store n delta n.self

  (* Ack mode: δ-group for destination j — fold of the entries j still
     needs, minus (under BP) those that came from j. *)
  let group_for_ack n j =
    List.fold_left
      (fun acc e ->
        if cfg.bp && e.origin = j then acc
        else if e.seq < Vclock.get j n.acked then acc
        else C.join acc e.delta)
      C.bottom n.entries

  (* BP, non-ack: for each origin [o], the join of every {e other}
     origin's δ-group, computed with prefix/suffix running joins —
     O(origins) joins total for the whole tick, versus the former
     fold-the-whole-buffer per neighbor. *)
  let exclusive_groups groups =
    let arr = Array.of_list (Origins.bindings groups) in
    let k = Array.length arr in
    let suffix = Array.make (k + 1) C.bottom in
    for i = k - 1 downto 0 do
      suffix.(i) <- C.join (snd arr.(i)) suffix.(i + 1)
    done;
    let excl = ref Origins.empty and prefix = ref C.bottom in
    for i = 0 to k - 1 do
      let o, g = arr.(i) in
      excl := Origins.add o (C.join !prefix suffix.(i + 1)) !excl;
      prefix := C.join !prefix g
    done;
    !excl

  let mk_delta group seq =
    Delta { group; seq; weight = C.weight group; bytes = C.byte_size group }

  let mk_syncreq x =
    SyncReq { state = x; weight = C.weight x; bytes = C.byte_size x }

  let mk_syncresp g =
    SyncResp { group = g; weight = C.weight g; bytes = C.byte_size g }

  let tick n =
    (* Recovery first: keep requesting reconciliation from every
       neighbor that has not answered yet (retried until the response
       arrives, which makes the exchange loss-safe). *)
    let sync_msgs =
      if Iset.is_empty n.need_sync then []
      else
        let req = mk_syncreq n.x in
        List.filter_map
          (fun j -> if Iset.mem j n.need_sync then Some (j, req) else None)
          n.neighbors
    in
    let msgs =
      if cfg.ack_mode then
        List.filter_map
          (fun j ->
            let g = group_for_ack n j in
            if C.is_bottom g then None else Some (j, mk_delta g n.next_seq))
          n.neighbors
      else if C.is_bottom n.pending then []
      else
        (* The full buffer goes to every non-origin neighbor: measure it
           once and share the message costs across those sends. *)
        let all = mk_delta n.pending n.next_seq in
        let excl =
          if cfg.bp then exclusive_groups n.groups else Origins.empty
        in
        List.filter_map
          (fun j ->
            match Origins.find_opt j excl with
            | Some g ->
                (* j is an origin: everything but its own. *)
                if C.is_bottom g then None else Some (j, mk_delta g n.next_seq)
            | None -> Some (j, all))
          n.neighbors
    in
    let msgs = sync_msgs @ msgs in
    let cost =
      List.fold_left
        (fun acc (_, m) ->
          match m with
          | Delta { weight; _ } | SyncReq { weight; _ } -> acc + weight
          | Ack _ | SyncResp _ -> acc)
        0 msgs
    in
    let n =
      if cfg.ack_mode then
        (* Keep entries until every neighbor that must receive them (under
           BP, everyone but their origin) has acked past them. *)
        let entries =
          List.filter
            (fun e ->
              List.exists
                (fun j ->
                  (not (cfg.bp && e.origin = j))
                  && e.seq >= Vclock.get j n.acked)
                n.neighbors)
            n.entries
        in
        { n with entries }
      else { n with groups = Origins.empty; pending = C.bottom }
    in
    ({ n with work = n.work + cost }, msgs)

  (* Absorb a received δ-group/state according to the configuration:
     RR extracts Δ(d, xᵢ), classic stores d whole iff d ⋢ xᵢ.  Stored
     with [src] as origin, so it re-enters the buffer and propagates. *)
  let absorb n ~src d =
    if cfg.rr then begin
      let extracted = C.delta d n.x in
      if C.is_bottom extracted then n else store n extracted src
    end
    else if C.leq d n.x then n
    else store n d src

  let handle n ~src d =
    match d with
    | Ack { seq } ->
        (* A seq we never issued can only come from a pre-crash
           incarnation of this replica (numbering restarted at 0):
           honoring it would evict fresh unacked entries. *)
        if seq > n.next_seq then (n, [])
        else
          let acked =
            Vclock.set src (max seq (Vclock.get src n.acked)) n.acked
          in
          ({ n with acked }, [])
    | Delta { group = d; seq; weight; bytes = _ } ->
        let ack = if cfg.ack_mode then [ (src, Ack { seq }) ] else [] in
        let n = { n with work = n.work + weight } in
        (absorb n ~src d, ack)
    | SyncReq { state = s; weight; bytes = _ } ->
        (* State-driven reconciliation leg 2: compute what the restarted
           replica is missing before absorbing its state, and always
           answer — an empty Δ is the up-to-date marker that clears the
           requester's need_sync entry. *)
        let missing = C.delta n.x s in
        let n = { n with work = n.work + weight } in
        (absorb n ~src s, [ (src, mk_syncresp missing) ])
    | SyncResp { group = g; weight; bytes = _ } ->
        let n =
          {
            n with
            need_sync = Iset.remove src n.need_sync;
            work = n.work + weight;
          }
        in
        if C.is_bottom g then (n, []) else (absorb n ~src g, [])

  let state n = n.x

  let payload_weight = function
    | Delta { weight; _ } | SyncReq { weight; _ } | SyncResp { weight; _ } ->
        weight
    | Ack _ -> 0

  (* Classic tags nothing; BP/ack tag each message with one sequence
     number (the paper's "a sequence number per neighbor" metadata). *)
  let tagged = cfg.bp || cfg.ack_mode

  let metadata_weight = function
    | Delta _ -> if tagged then 1 else 0
    | Ack _ -> 1
    | SyncReq _ | SyncResp _ -> 1 (* recovery marker. *)

  let payload_bytes = function
    | Delta { bytes; _ } | SyncReq { bytes; _ } | SyncResp { bytes; _ } ->
        bytes
    | Ack _ -> 0

  let metadata_bytes = function
    | Delta _ -> if tagged then 8 else 0
    | Ack _ -> 8
    | SyncReq _ | SyncResp _ -> 8

  (* Cached weight/bytes are recomputed at decode (they are a pure
     function of the group), so they never travel. *)
  let message_codec =
    let open Crdt_wire.Codec in
    union ~name:"delta_sync_message"
      [
        case 0 (pair C.codec varint)
          (function
            | Delta { group; seq; _ } -> Some (group, seq) | _ -> None)
          (fun (group, seq) -> mk_delta group seq);
        case 1 varint
          (function Ack { seq } -> Some seq | _ -> None)
          (fun seq -> Ack { seq });
        case 2 C.codec
          (function SyncReq { state; _ } -> Some state | _ -> None)
          mk_syncreq;
        case 3 C.codec
          (function SyncResp { group; _ } -> Some group | _ -> None)
          mk_syncresp;
      ]

  let message_wire_bytes m =
    Crdt_wire.Frame.framed_size
      ~payload_len:(Crdt_wire.Codec.encoded_size message_codec m)

  (* The buffer [Bᵢ]: seq-tagged entries (ack), per-origin groups (BP),
     or the single joined pending group (classic/RR, where origins are
     never consulted). *)
  let buffer_weight n =
    if cfg.ack_mode then
      List.fold_left (fun acc e -> acc + C.weight e.delta) 0 n.entries
    else if cfg.bp then Origins.fold (fun _ g acc -> acc + C.weight g) n.groups 0
    else C.weight n.pending

  let buffer_bytes n =
    if cfg.ack_mode then
      List.fold_left (fun acc e -> acc + C.byte_size e.delta) 0 n.entries
    else if cfg.bp then
      Origins.fold (fun _ g acc -> acc + C.byte_size g) n.groups 0
    else C.byte_size n.pending

  let memory_weight n = C.weight n.x + buffer_weight n
  let memory_bytes n = C.byte_size n.x + buffer_bytes n

  (* Delta-based metadata: one sequence number per neighbor (Fig. 9). *)
  let metadata_memory_bytes n = 8 * List.length n.neighbors
  let work n = n.work
end

(** Pre-packaged configurations, one per curve in Figs. 7–8. *)
module Classic_config = struct
  let config = classic
end

module Bp_config = struct
  let config = bp_only
end

module Rr_config = struct
  let config = rr_only
end

module Bp_rr_config = struct
  let config = bp_rr
end

module Ack_config = struct
  let config = { bp_rr with ack_mode = true }
end
