(** ConflictSync: digest-driven reconciliation of divergent state
    (arXiv:2505.01144 applied to this repo's protocol stack).

    Every other protocol here pays for a reconnect-after-gap with cost
    proportional to {e state size}: state-based ships [xᵢ] whole,
    delta-classic's recovery handshake ships full states both ways,
    merkle walks a tree whose traffic grows with the bucket count.
    ConflictSync reconciles the {e set of irreducibles} [⇓x] instead, so
    the wire cost of a catch-up scales with the symmetric difference
    [|⇓a △ ⇓b|] — the amount the peers actually diverged.

    {b Steady state} is plain delta synchronization: local mutations and
    received δ-groups accumulate in a per-origin buffer (BP: nothing is
    echoed to its origin; RR: only the strictly-inflating part is
    stored), and [tick] pushes the buffer to every neighbor.  Each tick
    additionally piggybacks a constant-size [Digest] — a commutative
    hash of [⇓x] — to every neighbor.

    {b Divergence detection.}  A digest mismatch alone means nothing
    while deltas are in flight (the peers legitimately trail each other
    by a round), so a mismatch only counts when the link has been
    {e quiet} — no δ-group traffic either way for [quiet_ticks] ticks.
    [mismatch_streak] consecutive quiet mismatches trigger a
    reconciliation session (initiated by the lower id, so exactly one
    side starts it).  After [recover], the restarted replica initiates
    sessions with every neighbor directly — its buffer is gone and a
    digest round-trip would only add latency.

    {b Session state machine} (initiator A, responder B):

    + A snapshots [⇓xₐ] as a hash→irreducible table and sends
      [SyncReq sid].
    + B snapshots likewise and streams rateless-IBLT cells of its key
      set: [Cells] chunks, doubling in size ([chunk0], then the current
      total again) as A answers [More] — the stream adapts to the
      unknown difference size with no size-estimation round.
    + A subtracts its own cells over the same index range and runs the
      peeling decoder after each chunk.  On success it knows the exact
      signed difference: it sends [Decoded] carrying the irreducibles
      only it holds plus the hashes of those only B holds; B joins the
      former, answers [Serve] with the latter, both sides close.
    + If the difference is so large that decode hasn't happened by
      [escalate_cells] cells, A escalates to one Bloom round:
      [BloomReq] carries a filter of A's keys, B answers [BloomResp]
      with its own filter plus every irreducible of its snapshot whose
      key the filter rejects, and A closes with [Serve] of the
      symmetric complement.  Bloom false positives (rate [fpr]) can
      leave a residue of elements neither side shipped, so both sides
      remember the escalation ([escalated]): the next digest mismatch
      with that peer forces a follow-up session {e immediately} —
      bypassing the quiet-link and streak gates, which an ongoing
      workload would otherwise suppress forever (delta traffic keeps
      the link non-quiet, and BP groups never re-carry old elements).
      The follow-up's difference is just the residue, which the IBLT
      path resolves exactly.  Filters are salted with the session id so
      a repeat Bloom round (huge residue) re-rolls its false positives
      instead of deterministically reproducing them.

    Sessions are volatile: they idle out after [session_timeout] ticks
    without progress (lost legs, crashed peers) and the digest mismatch
    that caused them re-triggers a fresh one — that retry loop is what
    makes the protocol tolerate loss, partitions, delay and crashes.
    Stale or duplicated session messages are ignored by session-id and
    chunk-offset checks; and since every action only ever {e joins
    genuine irreducibles} into the state, the worst any corruption or
    staleness can do is waste bytes, never diverge.

    {b Why IBLT-first, Bloom-as-escalation} (the reverse of the paper's
    presentation order): a Bloom filter over [⇓x] costs O(|⇓x|) bytes
    regardless of how small the difference is, which is exactly the
    state-size scaling this protocol exists to avoid; the rateless cell
    stream costs O(d) for a difference of d.  Bloom only wins when d is
    within a constant factor of the state size, so it serves as the
    large-divergence fallback rather than the opening move. *)

module type CONFIG = sig
  val fpr : float
  (** Bloom false-positive rate for the escalation round. *)

  val chunk0 : int
  (** cells in the first IBLT chunk; later chunks double the total. *)

  val escalate_cells : int
  (** total cells after which A gives up on peeling and goes Bloom. *)

  val mismatch_streak : int
  (** quiet digest mismatches in a row before initiating a session. *)

  val quiet_ticks : int
  (** ticks without δ-traffic on a link before mismatches count. *)

  val session_timeout : int
  (** ticks without session progress before it is garbage-collected. *)
end

(* [chunk0 = 8] keeps the opening chunk close to the cost of a tiny
   difference (a handful of 15-byte cells, cheaper than one tree
   descent) — chunks double from there, and since session legs cascade
   within a tick the extra [More] round trips are a few bytes, not
   latency.  [escalate_cells = 256] caps the doubling stream's
   worst-case waste at ~4 KB of cells before the Bloom fallback:
   differences up to ~190 irreducibles (the rateless decoder needs
   ≈ 1.35 d cells) still decode exactly, larger ones pay one bounded
   Bloom round instead of an ever-longer cell stream. *)
module Default_config = struct
  let fpr = 0.01
  let chunk0 = 8
  let escalate_cells = 256
  let mismatch_streak = 2
  let quiet_ticks = 2
  let session_timeout = 8
end

module Make (C : Protocol_intf.CRDT) (Cfg : CONFIG) :
  Protocol_intf.PROTOCOL with type crdt = C.t and type op = C.op = struct
  module Imap = Map.Make (Int)
  module Iset = Set.Make (Int)
  module Hash = Crdt_digest.Hash
  module Bloom = Crdt_digest.Bloom
  module Iblt = Crdt_digest.Iblt

  type crdt = C.t
  type op = C.op

  let key_of y = Hash.of_value C.codec y

  (* Bloom keys are salted with the session id: a repeat escalation over
     the same snapshots must re-roll its false positives, or the same
     residue would survive every round (the hashes are deterministic). *)
  let salt sid k = Hash.combine sid k

  (* Initiator-side session: waiting for cells (then for Serve). *)
  type isession = {
    i_sid : int;
    i_table : (int, C.t) Hashtbl.t;  (** key ↦ irreducible of ⇓snapshot. *)
    i_keys : int list;
    i_diff : Iblt.cell array;  (** (B − A) cells accumulated so far. *)
    i_last : int;  (** tick of last progress, for the idle timeout. *)
  }

  (* Responder-side session: serving cells (then need-hashes). *)
  type rsession = {
    r_sid : int;
    r_table : (int, C.t) Hashtbl.t;
    r_keys : int list;
    r_snap : C.t;
    r_last : int;
  }

  type node = {
    id : Crdt_core.Replica_id.t;
    self : int;
    neighbors : int list;
    x : C.t;  (** durable. *)
    now : int;  (** tick counter; everything below is volatile. *)
    next_sid : int;
    pending : C.t;  (** running join of the δ-buffer. *)
    groups : C.t Imap.t;  (** origin ↦ joined δ-group (BP). *)
    streak : int Imap.t;  (** peer ↦ consecutive quiet digest mismatches. *)
    last_traffic : int Imap.t;  (** peer ↦ last tick a δ-group flowed. *)
    resync : Iset.t;  (** peers to force-sync with after a restart. *)
    escalated : Iset.t;
        (** peers whose last session took the (lossy) Bloom road: the
            next digest mismatch forces a follow-up session without
            waiting for a quiet-link streak. *)
    init_s : isession Imap.t;  (** peer ↦ session we initiated. *)
    resp_s : rsession Imap.t;  (** peer ↦ session we respond to. *)
    dcache : (C.t * int) option;  (** state digest memo, keyed by ==. *)
    work : int;
  }

  type message =
    | Delta of { group : C.t; weight : int; bytes : int }
    | Digest of { h : int }
    | SyncReq of { sid : int }
    | Cells of { sid : int; lo : int; cells : Iblt.cell list }
    | More of { sid : int; hi : int }
    | BloomReq of { sid : int; filter : Bloom.t }
    | BloomResp of {
        sid : int;
        filter : Bloom.t;
        elements : C.t list;
        weight : int;
        bytes : int;
      }
    | Decoded of {
        sid : int;
        need : int list;  (** hashes of irreducibles only the peer holds. *)
        elements : C.t list;  (** irreducibles only we hold. *)
        weight : int;
        bytes : int;
      }
    | Serve of { sid : int; elements : C.t list; weight : int; bytes : int }

  let protocol_name = "conflict-sync"

  (* Loss, cuts, delay and crashes all reduce to "states quietly differ
     while no repair is running" — which the digest mismatch detects and
     a (re)triggered session repairs. *)
  let capabilities =
    {
      Protocol_intf.tolerates_drop = true;
      tolerates_partition = true;
      tolerates_delay = true;
      tolerates_crash = true;
      durable_restart = true;
    }

  (* Session ids are namespaced by the issuing replica so the two
     directions of a concurrent A↔B session pair can never collide on
     [sid] (which would let a Serve close the wrong session — harmless,
     since a timeout would repair it, but wasteful). *)
  let sid_base self = self lsl 20

  let init ~id ~neighbors ~total:_ =
    {
      id = Crdt_core.Replica_id.of_int id;
      self = id;
      neighbors;
      x = C.bottom;
      now = 0;
      next_sid = sid_base id;
      pending = C.bottom;
      groups = Imap.empty;
      streak = Imap.empty;
      last_traffic = Imap.empty;
      resync = Iset.empty;
      escalated = Iset.empty;
      init_s = Imap.empty;
      resp_s = Imap.empty;
      dcache = None;
      work = 0;
    }

  let crash n =
    {
      n with
      now = 0;
      next_sid = sid_base n.self;
      pending = C.bottom;
      groups = Imap.empty;
      streak = Imap.empty;
      last_traffic = Imap.empty;
      resync = Iset.empty;
      escalated = Iset.empty;
      init_s = Imap.empty;
      resp_s = Imap.empty;
      dcache = None;
    }

  let recover n = { n with resync = Iset.of_list n.neighbors }

  (* Restart-from-disk: the digest session machinery only ever compares
     states, so installing the recovered state and arming a resync with
     every neighbor is the whole story (the digest cache keys on
     physical state identity and self-invalidates). *)
  let load n s = recover { n with x = C.join n.x s }

  (* Commutative digest of ⇓x, memoized on the physical state — ticks
     between changes pay one pointer compare, not a decomposition. *)
  let state_digest n =
    match n.dcache with
    | Some (x0, h) when x0 == n.x -> (h, n)
    | _ ->
        let h = C.fold_decompose (fun y acc -> Hash.combine acc (key_of y)) n.x 0 in
        let n = { n with dcache = Some (n.x, h); work = n.work + C.weight n.x } in
        (h, n)

  let snapshot_table x =
    let table = Hashtbl.create 64 in
    let keys =
      C.fold_decompose
        (fun y acc ->
          let k = key_of y in
          if Hashtbl.mem table k then acc
          else begin
            Hashtbl.add table k y;
            k :: acc
          end)
        x []
    in
    (table, keys)

  (* δ-buffer store, BP+RR as in Delta_sync. *)
  let store n delta origin =
    {
      n with
      x = C.join n.x delta;
      groups =
        Imap.update origin
          (function None -> Some delta | Some g -> Some (C.join g delta))
          n.groups;
      pending = C.join n.pending delta;
      work = n.work + C.weight delta;
    }

  let absorb n ~src d =
    let extracted = C.delta d n.x in
    if C.is_bottom extracted then n else store n extracted src

  let local_update n op =
    let delta = C.delta_mutate op n.id n.x in
    if C.is_bottom delta then n else store n delta n.self

  let exclusive_groups groups =
    let arr = Array.of_list (Imap.bindings groups) in
    let k = Array.length arr in
    let suffix = Array.make (k + 1) C.bottom in
    for i = k - 1 downto 0 do
      suffix.(i) <- C.join (snd arr.(i)) suffix.(i + 1)
    done;
    let excl = ref Imap.empty and prefix = ref C.bottom in
    for i = 0 to k - 1 do
      let o, g = arr.(i) in
      excl := Imap.add o (C.join !prefix suffix.(i + 1)) !excl;
      prefix := C.join !prefix g
    done;
    !excl

  (* Message smart constructors: weight/bytes measured once, at build
     (and at decode — they never travel). *)
  let mk_delta group =
    Delta { group; weight = C.weight group; bytes = C.byte_size group }

  let sum_costs elements =
    List.fold_left
      (fun (w, b) y -> (w + C.weight y, b + C.byte_size y))
      (0, 0) elements

  let mk_bloomresp sid filter elements =
    let weight, bytes = sum_costs elements in
    BloomResp { sid; filter; elements; weight; bytes }

  let mk_decoded sid need elements =
    let weight, bytes = sum_costs elements in
    Decoded { sid; need; elements; weight; bytes }

  let mk_serve sid elements =
    let weight, bytes = sum_costs elements in
    Serve { sid; elements; weight; bytes }

  let session_with n j = Imap.mem j n.init_s || Imap.mem j n.resp_s

  let initiate n j =
    let table, keys = snapshot_table n.x in
    let s =
      {
        i_sid = n.next_sid;
        i_table = table;
        i_keys = keys;
        i_diff = [||];
        i_last = n.now;
      }
    in
    let n =
      {
        n with
        next_sid = n.next_sid + 1;
        init_s = Imap.add j s n.init_s;
        streak = Imap.remove j n.streak;
        work = n.work + List.length keys;
      }
    in
    (n, (j, SyncReq { sid = s.i_sid }))

  let prune_sessions n =
    let stale last = n.now - last > Cfg.session_timeout in
    {
      n with
      init_s = Imap.filter (fun _ s -> not (stale s.i_last)) n.init_s;
      resp_s = Imap.filter (fun _ s -> not (stale s.r_last)) n.resp_s;
    }

  let tick n =
    let n = prune_sessions { n with now = n.now + 1 } in
    (* Post-restart resync: initiate directly with every peer still
       owed a session (retried each tick until the session closes). *)
    let n, sync_msgs =
      Iset.fold
        (fun j (n, acc) ->
          if session_with n j then (n, acc)
          else
            let n, msg = initiate n j in
            (n, msg :: acc))
        n.resync (n, [])
    in
    (* δ-push, BP-filtered, as in Delta_sync. *)
    let delta_msgs =
      if C.is_bottom n.pending then []
      else
        let all = mk_delta n.pending in
        let excl = exclusive_groups n.groups in
        List.filter_map
          (fun j ->
            match Imap.find_opt j excl with
            | Some g -> if C.is_bottom g then None else Some (j, mk_delta g)
            | None -> Some (j, all))
          n.neighbors
    in
    let n =
      List.fold_left
        (fun n (j, _) -> { n with last_traffic = Imap.add j n.now n.last_traffic })
        n delta_msgs
    in
    let cost =
      List.fold_left
        (fun acc (_, m) ->
          match m with Delta { weight; _ } -> acc + weight | _ -> acc)
        0 delta_msgs
    in
    (* Constant-size divergence probe to every neighbor, every tick. *)
    let h, n = state_digest n in
    let digest_msgs = List.map (fun j -> (j, Digest { h })) n.neighbors in
    let n =
      {
        n with
        pending = C.bottom;
        groups = Imap.empty;
        work = n.work + cost;
      }
    in
    (n, List.rev sync_msgs @ delta_msgs @ digest_msgs)

  (* --- session legs ------------------------------------------------------ *)

  let chunk_after hi = if hi = 0 then Cfg.chunk0 else hi

  let serve_cells (s : rsession) ~lo =
    let len = chunk_after lo in
    let cells = Iblt.build ~keys:s.r_keys ~lo ~len in
    Cells { sid = s.r_sid; lo; cells = Array.to_list cells }

  (* A received a cell chunk: extend the difference table, try to peel. *)
  let on_cells n ~src (s : isession) ~lo cells =
    let len = List.length cells in
    let theirs = Array.of_list cells in
    let ours = Iblt.build ~keys:s.i_keys ~lo ~len in
    let diff = Array.append s.i_diff (Iblt.sub theirs ours) in
    let hi = Array.length diff in
    let n = { n with work = n.work + len } in
    match Iblt.peel diff with
    | Some (plus, minus) ->
        (* plus = keys only B holds (we need them); minus = only ours. *)
        let push = List.filter_map (fun k -> Hashtbl.find_opt s.i_table k) minus in
        let s = { s with i_diff = diff; i_last = n.now } in
        let n = { n with init_s = Imap.add src s n.init_s } in
        (n, [ (src, mk_decoded s.i_sid plus push) ])
    | None ->
        let s = { s with i_diff = diff; i_last = n.now } in
        let n = { n with init_s = Imap.add src s n.init_s } in
        if hi >= Cfg.escalate_cells then
          let filter =
            Bloom.of_keys ~fpr:Cfg.fpr (List.map (salt s.i_sid) s.i_keys)
          in
          (n, [ (src, BloomReq { sid = s.i_sid; filter }) ])
        else (n, [ (src, More { sid = s.i_sid; hi }) ])

  let close_initiator n src =
    {
      n with
      init_s = Imap.remove src n.init_s;
      resync = Iset.remove src n.resync;
      streak = Imap.remove src n.streak;
    }

  let handle n ~src msg =
    match msg with
    | Delta { group; weight; _ } ->
        let n =
          {
            n with
            last_traffic = Imap.add src n.now n.last_traffic;
            work = n.work + weight;
          }
        in
        (absorb n ~src group, [])
    | Digest { h } ->
        let mine, n = state_digest n in
        if mine = h then
          ( {
              n with
              streak = Imap.remove src n.streak;
              resync = Iset.remove src n.resync;
              escalated = Iset.remove src n.escalated;
            },
            [] )
        else if Iset.mem src n.escalated && not (session_with n src) then
          (* Post-escalation follow-up: the last session with this peer
             took the lossy Bloom road, so a persisting mismatch is
             (likely) its false-positive residue.  Initiate right away —
             the quiet-link and streak gates would starve this repair
             forever under an ongoing workload, and the id-order gate
             does not apply because only the session's two ends know an
             escalation happened. *)
          let n = { n with escalated = Iset.remove src n.escalated } in
          let n, req = initiate n src in
          (n, [ req ])
        else
          let quiet =
            match Imap.find_opt src n.last_traffic with
            | None -> true
            | Some t -> n.now - t >= Cfg.quiet_ticks
          in
          if not quiet then ({ n with streak = Imap.remove src n.streak }, [])
          else
            let st = (match Imap.find_opt src n.streak with Some s -> s | None -> 0) + 1 in
            if st >= Cfg.mismatch_streak && n.self < src && not (session_with n src)
            then
              let n, req = initiate n src in
              (n, [ req ])
            else ({ n with streak = Imap.add src st n.streak }, [])
    | SyncReq { sid } ->
        (* (Re)build the responder session — a duplicate or a newer
           request from the same peer simply supersedes the old one. *)
        let table, keys = snapshot_table n.x in
        let s =
          { r_sid = sid; r_table = table; r_keys = keys; r_snap = n.x; r_last = n.now }
        in
        let n =
          {
            n with
            resp_s = Imap.add src s n.resp_s;
            work = n.work + List.length keys;
          }
        in
        (n, [ (src, serve_cells s ~lo:0) ])
    | Cells { sid; lo; cells } -> (
        match Imap.find_opt src n.init_s with
        | Some s when s.i_sid = sid && lo = Array.length s.i_diff ->
            on_cells n ~src s ~lo cells
        | _ -> (n, []) (* stale session or duplicated chunk. *))
    | More { sid; hi } -> (
        match Imap.find_opt src n.resp_s with
        | Some s when s.r_sid = sid ->
            let s = { s with r_last = n.now } in
            let n =
              { n with resp_s = Imap.add src s n.resp_s; work = n.work + chunk_after hi }
            in
            (n, [ (src, serve_cells s ~lo:hi) ])
        | _ -> (n, []))
    | BloomReq { sid; filter } -> (
        match Imap.find_opt src n.resp_s with
        | Some s when s.r_sid = sid ->
            (* Everything of ours the filter rejects is definitely
               missing at A; our own filter lets A answer in kind.  The
               round is lossy (false positives), so remember it: the
               next digest mismatch with A must force a follow-up. *)
            let missing =
              C.fold_decompose
                (fun y acc ->
                  if Bloom.mem filter (salt sid (key_of y)) then acc
                  else y :: acc)
                s.r_snap []
            in
            let mine =
              Bloom.of_keys ~fpr:Cfg.fpr (List.map (salt sid) s.r_keys)
            in
            let s = { s with r_last = n.now } in
            let n =
              {
                n with
                resp_s = Imap.add src s n.resp_s;
                escalated = Iset.add src n.escalated;
                work = n.work + List.length s.r_keys;
              }
            in
            (n, [ (src, mk_bloomresp sid mine (List.rev missing)) ])
        | _ -> (n, []))
    | BloomResp { sid; filter; elements; weight; _ } -> (
        match Imap.find_opt src n.init_s with
        | Some s when s.i_sid = sid ->
            let n = { n with work = n.work + weight } in
            let n =
              List.fold_left (fun n y -> absorb n ~src y) n elements
            in
            let push =
              List.filter_map
                (fun k ->
                  if Bloom.mem filter (salt sid k) then None
                  else Hashtbl.find_opt s.i_table k)
                s.i_keys
            in
            (* closing a Bloom-escalated session: possible FP residue on
               both sides, so arm the follow-up trigger *)
            let n = close_initiator n src in
            let n = { n with escalated = Iset.add src n.escalated } in
            (n, [ (src, mk_serve sid push) ])
        | _ -> (n, []))
    | Decoded { sid; need; elements; weight; _ } -> (
        match Imap.find_opt src n.resp_s with
        | Some s when s.r_sid = sid ->
            let n = { n with work = n.work + weight + List.length need } in
            let n = List.fold_left (fun n y -> absorb n ~src y) n elements in
            let serve = List.filter_map (fun k -> Hashtbl.find_opt s.r_table k) need in
            let n = { n with resp_s = Imap.remove src n.resp_s } in
            (n, [ (src, mk_serve sid serve) ])
        | _ -> (n, []))
    | Serve { sid; elements; weight; _ } ->
        let n = { n with work = n.work + weight } in
        let n = List.fold_left (fun n y -> absorb n ~src y) n elements in
        let n =
          match Imap.find_opt src n.init_s with
          | Some s when s.i_sid = sid -> close_initiator n src
          | _ -> n
        in
        let n =
          match Imap.find_opt src n.resp_s with
          | Some s when s.r_sid = sid -> { n with resp_s = Imap.remove src n.resp_s }
          | _ -> n
        in
        (n, [])

  let state n = n.x

  (* --- accounting --------------------------------------------------------- *)

  let payload_weight = function
    | Delta { weight; _ } | BloomResp { weight; _ } | Decoded { weight; _ }
    | Serve { weight; _ } ->
        weight
    | Digest _ | SyncReq _ | Cells _ | More _ | BloomReq _ -> 0

  let metadata_weight = function
    | Delta _ -> 0
    | Digest _ | SyncReq _ | More _ | BloomReq _ -> 1
    | Cells { cells; _ } -> List.length cells
    | BloomResp _ -> 1
    | Decoded { need; _ } -> 1 + List.length need
    | Serve _ -> 1

  let payload_bytes = function
    | Delta { bytes; _ } | BloomResp { bytes; _ } | Decoded { bytes; _ }
    | Serve { bytes; _ } ->
        bytes
    | Digest _ | SyncReq _ | Cells _ | More _ | BloomReq _ -> 0

  let metadata_bytes = function
    | Delta _ -> 0
    | Digest _ | SyncReq _ | More _ -> 8
    | Cells { cells; _ } -> 8 + (16 * List.length cells)
    | BloomReq { filter; _ } -> 8 + Bloom.bits_bytes filter
    | BloomResp { filter; _ } -> 8 + Bloom.bits_bytes filter
    | Decoded { need; _ } -> 8 + (8 * List.length need)
    | Serve _ -> 8

  let message_codec =
    let open Crdt_wire.Codec in
    union ~name:"conflict_sync_message"
      [
        case 0 C.codec
          (function Delta { group; _ } -> Some group | _ -> None)
          mk_delta;
        case 1 varint
          (function Digest { h } -> Some h | _ -> None)
          (fun h -> Digest { h });
        case 2 varint
          (function SyncReq { sid } -> Some sid | _ -> None)
          (fun sid -> SyncReq { sid });
        case 3
          (triple varint varint (list Iblt.cell_codec))
          (function
            | Cells { sid; lo; cells } -> Some (sid, lo, cells) | _ -> None)
          (fun (sid, lo, cells) -> Cells { sid; lo; cells });
        case 4 (pair varint varint)
          (function More { sid; hi } -> Some (sid, hi) | _ -> None)
          (fun (sid, hi) -> More { sid; hi });
        case 5 (pair varint Bloom.codec)
          (function BloomReq { sid; filter } -> Some (sid, filter) | _ -> None)
          (fun (sid, filter) -> BloomReq { sid; filter });
        case 6
          (triple varint Bloom.codec (list C.codec))
          (function
            | BloomResp { sid; filter; elements; _ } ->
                Some (sid, filter, elements)
            | _ -> None)
          (fun (sid, filter, elements) -> mk_bloomresp sid filter elements);
        case 7
          (triple varint (list varint) (list C.codec))
          (function
            | Decoded { sid; need; elements; _ } -> Some (sid, need, elements)
            | _ -> None)
          (fun (sid, need, elements) -> mk_decoded sid need elements);
        case 8
          (pair varint (list C.codec))
          (function
            | Serve { sid; elements; _ } -> Some (sid, elements) | _ -> None)
          (fun (sid, elements) -> mk_serve sid elements);
      ]

  let message_wire_bytes m =
    Crdt_wire.Frame.framed_size
      ~payload_len:(Crdt_wire.Codec.encoded_size message_codec m)

  let memory_weight n = C.weight n.x + C.weight n.pending

  let memory_bytes n = C.byte_size n.x + C.byte_size n.pending

  (* Streaks, traffic clocks and live session tables (snapshot tables
     count 8 B per key entry, difference tables 16 B per cell). *)
  let metadata_memory_bytes n =
    let sessions =
      Imap.fold
        (fun _ s acc -> acc + (8 * Hashtbl.length s.i_table) + (16 * Array.length s.i_diff))
        n.init_s 0
      + Imap.fold (fun _ s acc -> acc + (8 * Hashtbl.length s.r_table)) n.resp_s 0
    in
    8
    * (Imap.cardinal n.streak + Imap.cardinal n.last_traffic
      + Iset.cardinal n.escalated)
    + sessions

  let work n = n.work
end
