(** Vector clocks: summaries [I ↪→ ℕ] of per-replica event counts.

    Used by the op-based causal-broadcast middleware (operation tags) and
    by Scuttlebutt (summary vectors of known updates). *)

type t

val empty : t
val get : int -> t -> int
val set : int -> int -> t -> t
(** Setting a component to 0 removes the entry. *)

val incr : int -> t -> t
val merge : t -> t -> t
(** Pointwise maximum. *)

val leq : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val dominates_strictly : t -> t -> bool
(** [dominates_strictly a b]: [b ≤ a] and [a ≠ b]. *)

val deliverable : origin:int -> tag:t -> local:t -> bool
(** Standard causal-delivery condition: the tag is the immediate
    successor on the origin's component and no newer than [local]
    elsewhere. *)

val cardinal : t -> int
val bindings : t -> (int * int) list
val of_list : (int * int) list -> t

val entry_bytes : int
(** Wire size of one entry: a 20 B replica id plus an 8 B counter
    (the accounting convention of Fig. 9). *)

val byte_size : t -> int

val codec : t Crdt_wire.Codec.t
(** Exact wire codec: a list of (replica, count) varint pairs.  Decoding
    drops zero entries, keeping clocks canonical. *)

val pp : Format.formatter -> t -> unit
