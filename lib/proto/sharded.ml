(** Per-object protocol composition.

    The paper's Retwis deployment replicates ~30 K {e independent} CRDT
    objects, each synchronized on its own (with its own δ-buffer and its
    own inflation check); messages exchanged between two nodes bundle the
    per-object payloads.  This combinator reproduces that: it lifts a
    protocol over a single CRDT to a protocol over a keyed collection of
    objects, creating per-object protocol instances lazily and batching
    their messages per destination.

    This matters for fidelity: with one big composed lattice, classic
    delta-based is penalized even under low contention (any received
    δ-group touching {e any} object fails the inflation check), whereas
    with per-object replication the check is per object — which is exactly
    why the paper observes classic ≈ BP+RR at Zipf 0.5 and a blow-up only
    as contention concentrates updates on few objects. *)

module type KEY = sig
  type t

  val compare : t -> t -> int
  val byte_size : t -> int
  val codec : t Crdt_wire.Codec.t
end

module Make
    (K : KEY)
    (C : Protocol_intf.CRDT)
    (P : Protocol_intf.PROTOCOL with type crdt = C.t and type op = C.op) : sig
  include
    Protocol_intf.PROTOCOL
      with type crdt = (K.t * C.t) list
       and type op = K.t * C.op

  val equal_states : crdt -> crdt -> bool
  (** Equality of sharded states, for convergence checks: objects absent
      on one side must be bottom on the other. *)
end = struct
  module Km = Map.Make (K)

  type crdt = (K.t * C.t) list
  (** Association of object key to object state, bottoms omitted. *)

  type op = K.t * C.op

  module Iset = Set.Make (Int)

  type node = {
    id : int;
    neighbors : int list;
    total : int;
    objects : P.node Km.t;
    manifest_from : Iset.t;
        (** Neighbors still owed a key manifest after a restart
            (volatile; the request is retried every tick until their
            [Manifest] arrives). *)
  }

  type message =
    | Batch of (K.t * P.message) list
        (** Per-object payloads bundled per destination. *)
    | ManifestReq  (** Restarted node asking which objects exist. *)
    | Manifest of K.t list  (** Every key the sender has an instance for. *)

  let protocol_name = "sharded-" ^ P.protocol_name

  (* Per-message faults (drop, partition cuts, delay) are exactly as
     tolerable as in the per-object protocol.  Crash–restart needs one
     extra exchange beyond the per-object recovery: object instances are
     created lazily on first use, so a restarted node would never run
     the per-object recovery for keys other nodes created while it was
     down — it does not know they exist, and delta-based protocols never
     re-advertise old irreducibles for them.  [recover] therefore asks
     every neighbor for its key manifest ([ManifestReq], retried per
     tick until answered); unknown keys in a [Manifest] get a freshly
     recovered instance whose own recovery exchange then pulls the
     object's state.  Keys only the restarted node holds need nothing
     special: its recovered instances re-sync each object
     bidirectionally, and peers instantiate unknown keys lazily on the
     first message.  With that gap closed, crash tolerance is simply
     inherited from the per-object protocol. *)
  let capabilities = P.capabilities

  let crash n =
    { n with objects = Km.map P.crash n.objects; manifest_from = Iset.empty }

  let recover n =
    {
      n with
      objects = Km.map P.recover n.objects;
      manifest_from = Iset.of_list n.neighbors;
    }

  (* Restart-from-disk: every key present in the durable image gets a
     per-object [P.load]; keys created cluster-wide while this node was
     down (or lost to a torn log tail) are pulled by the same manifest
     exchange an in-memory restart runs. *)
  let load n s =
    let objects =
      List.fold_left
        (fun objects (k, x) ->
          let o =
            match Km.find_opt k objects with
            | Some o -> o
            | None -> P.init ~id:n.id ~neighbors:n.neighbors ~total:n.total
          in
          Km.add k (P.load o x) objects)
        n.objects s
    in
    { n with objects; manifest_from = Iset.of_list n.neighbors }

  let init ~id ~neighbors ~total =
    { id; neighbors; total; objects = Km.empty; manifest_from = Iset.empty }

  let obj n k =
    match Km.find_opt k n.objects with
    | Some o -> o
    | None ->
        let fresh = P.init ~id:n.id ~neighbors:n.neighbors ~total:n.total in
        (* While a post-restart manifest exchange is still in flight, a
           lazily created instance (first local op, or first inbound
           batch, for a key this node has never seen) may shadow
           pre-crash state held elsewhere — and if it exists by the time
           the manifest arrives, the manifest won't touch it.  Arm its
           per-object recovery at creation instead. *)
        if Iset.is_empty n.manifest_from then fresh else P.recover fresh

  let local_update n (k, op) =
    { n with objects = Km.add k (P.local_update (obj n k) op) n.objects }

  (* Gather per-object outbound messages into one batch per
     destination. *)
  let batch_by_dest per_object =
    let add acc (dest, tagged) =
      let existing =
        match List.assoc_opt dest acc with Some l -> l | None -> []
      in
      (dest, tagged :: existing) :: List.remove_assoc dest acc
    in
    List.fold_left add [] per_object
    |> List.map (fun (dest, msgs) -> (dest, List.rev msgs))

  let tick n =
    let objects = ref n.objects in
    let outbound = ref [] in
    Km.iter
      (fun k o ->
        let o, msgs = P.tick o in
        objects := Km.add k o !objects;
        List.iter
          (fun (dest, m) -> outbound := (dest, (k, m)) :: !outbound)
          msgs)
      n.objects;
    let batches =
      batch_by_dest (List.rev !outbound)
      |> List.map (fun (dest, msgs) -> (dest, Batch msgs))
    in
    let manifest_reqs =
      Iset.fold (fun j acc -> (j, ManifestReq) :: acc) n.manifest_from []
    in
    ({ n with objects = !objects }, manifest_reqs @ batches)

  let handle n ~src msg =
    match msg with
    | ManifestReq -> (n, [ (src, Manifest (List.map fst (Km.bindings n.objects))) ])
    | Manifest keys ->
        (* Instantiate (as freshly recovered) every key we have never
           seen: its per-object recovery exchange pulls the state. *)
        let objects =
          List.fold_left
            (fun objects k ->
              if Km.mem k objects then objects
              else
                Km.add k
                  (P.recover
                     (P.init ~id:n.id ~neighbors:n.neighbors ~total:n.total))
                  objects)
            n.objects keys
        in
        ({ n with objects; manifest_from = Iset.remove src n.manifest_from }, [])
    | Batch batch ->
        let n, replies =
          List.fold_left
            (fun (n, replies) (k, m) ->
              let o, rs = P.handle (obj n k) ~src m in
              ( { n with objects = Km.add k o n.objects },
                List.fold_left
                  (fun replies (dest, r) -> (dest, (k, r)) :: replies)
                  replies rs ))
            (n, []) batch
        in
        (n, batch_by_dest (List.rev replies)
            |> List.map (fun (dest, msgs) -> (dest, Batch msgs)))

  let state n =
    Km.fold
      (fun k o acc ->
        let x = P.state o in
        if C.is_bottom x then acc else (k, x) :: acc)
      n.objects []
    |> List.rev

  let payload_weight = function
    | Batch batch ->
        List.fold_left (fun acc (_, m) -> acc + P.payload_weight m) 0 batch
    | ManifestReq | Manifest _ -> 0

  let metadata_weight = function
    | Batch batch ->
        List.fold_left (fun acc (_, m) -> acc + P.metadata_weight m) 0 batch
    | ManifestReq -> 1
    | Manifest keys -> List.length keys

  let payload_bytes = function
    | Batch batch ->
        List.fold_left (fun acc (_, m) -> acc + P.payload_bytes m) 0 batch
    | ManifestReq | Manifest _ -> 0

  (* Each bundled entry additionally carries its object key. *)
  let metadata_bytes = function
    | Batch batch ->
        List.fold_left
          (fun acc (k, m) -> acc + K.byte_size k + P.metadata_bytes m)
          0 batch
    | ManifestReq -> 8
    | Manifest keys ->
        List.fold_left (fun acc k -> acc + K.byte_size k) 8 keys

  let message_codec =
    let open Crdt_wire.Codec in
    union ~name:("sharded_" ^ P.protocol_name)
      [
        case 0
          (list (pair K.codec P.message_codec))
          (function Batch b -> Some b | _ -> None)
          (fun b -> Batch b);
        case 1 unit
          (function ManifestReq -> Some () | _ -> None)
          (fun () -> ManifestReq);
        case 2 (list K.codec)
          (function Manifest ks -> Some ks | _ -> None)
          (fun ks -> Manifest ks);
      ]

  let message_wire_bytes batch =
    Crdt_wire.Frame.framed_size
      ~payload_len:(Crdt_wire.Codec.encoded_size message_codec batch)

  let memory_weight n =
    Km.fold (fun _ o acc -> acc + P.memory_weight o) n.objects 0

  let memory_bytes n =
    Km.fold (fun _ o acc -> acc + P.memory_bytes o) n.objects 0

  let metadata_memory_bytes n =
    Km.fold (fun _ o acc -> acc + P.metadata_memory_bytes o) n.objects 0

  let work n = Km.fold (fun _ o acc -> acc + P.work o) n.objects 0

  let equal_states (a : crdt) (b : crdt) =
    let to_map l =
      List.fold_left (fun m (k, x) -> Km.add k x m) Km.empty l
    in
    let ma = to_map a and mb = to_map b in
    Km.merge
      (fun _ x y ->
        let x = Option.value x ~default:C.bottom
        and y = Option.value y ~default:C.bottom in
        if C.equal x y then None else Some ())
      ma mb
    |> Km.is_empty
end
