(** Operation-based synchronization over a store-and-forward causal
    broadcast middleware (Section V-B).

    Each operation is tagged with a vector clock summarizing its causal
    past; receivers delay delivery until every causally preceding
    operation has been delivered.  Because the topology is not all-to-all,
    the middleware stores and forwards: an operation seen for the first
    time enters a transmission buffer and is propagated at the next
    synchronization step to every neighbor not yet known to have seen it;
    receiving a duplicate only widens the seen-set (the paper calls this
    "the best possible implementation of such a middleware").

    Operations carry their origin replica, so applying them through the
    CRDT's classic mutator at the origin's identity reproduces the
    origin's update (e.g. a GCounter increment from replica A bumps entry
    A wherever it is delivered).  No operation compression is attempted —
    the paper highlights that its absence is precisely what makes
    op-based behave poorly on GCounter-like workloads. *)

module Make (C : Protocol_intf.CRDT) :
  Protocol_intf.PROTOCOL with type crdt = C.t and type op = C.op = struct
  type crdt = C.t
  type op = C.op

  module Opid = struct
    type t = int * int (* origin, per-origin sequence number *)

    let compare = compare
  end

  module Opmap = Map.Make (Opid)
  module Iset = Set.Make (Int)

  type tagged = {
    origin : int;
    seq : int;
    tag : Vclock.t;  (** causal past: the origin's clock at emission. *)
    operation : op;
  }

  type entry = { msg : tagged; seen : Iset.t }

  type node = {
    id : Crdt_core.Replica_id.t;
    self : int;
    neighbors : int list;
    x : C.t;
    clock : Vclock.t;  (** delivered operations per origin. *)
    pending : tagged Opmap.t;  (** received, awaiting causal delivery. *)
    tbuf : entry Opmap.t;  (** transmission buffer with seen-sets. *)
    work : int;
  }

  type message = tagged list

  let protocol_name = "op-based"

  (* [tick] optimistically marks forwarded operations as seen, assuming
     reliable channels, so a dropped or partition-cut batch is never
     retransmitted: no drop/partition tolerance.  Delay is fine — a held
     batch arrives intact and the causal buffer reorders it.  Crash is
     not tolerated either: the store-and-forward custody buffers are
     volatile, and an operation relayed through the victim that peers
     already marked as seen is lost for every replica behind it. *)
  let capabilities =
    {
      Protocol_intf.tolerates_drop = false;
      tolerates_partition = false;
      tolerates_delay = true;
      tolerates_crash = false;
      durable_restart = false;
    }

  (* Durable: the CRDT state together with the delivered-clock — they
     are checkpointed as one unit, because a clock regression would let
     an already-applied operation be redelivered and double-applied
     through a non-idempotent mutator.  Volatile: the causal-delivery
     and custody buffers. *)
  let crash n = { n with pending = Opmap.empty; tbuf = Opmap.empty }
  let recover n = n

  (* Crash is not tolerated (see capabilities), so no driver restarts
     this protocol from disk; the state-join definition keeps the
     signature total and the [load] law intact. *)
  let load n s = { n with x = C.join n.x s }

  let init ~id ~neighbors ~total:_ =
    {
      id = Crdt_core.Replica_id.of_int id;
      self = id;
      neighbors;
      x = C.bottom;
      clock = Vclock.empty;
      pending = Opmap.empty;
      tbuf = Opmap.empty;
      work = 0;
    }

  let deliver n (t : tagged) =
    {
      n with
      x = C.mutate t.operation (Crdt_core.Replica_id.of_int t.origin) n.x;
      clock = Vclock.set t.origin t.seq n.clock;
      work = n.work + C.op_weight t.operation;
    }

  (* Drain the pending set: deliver every operation whose causal past is
     satisfied, repeating until a fixpoint. *)
  let rec drain n =
    let deliverable =
      Opmap.filter
        (fun _ t ->
          Vclock.deliverable ~origin:t.origin ~tag:t.tag ~local:n.clock)
        n.pending
    in
    if Opmap.is_empty deliverable then n
    else
      let n =
        Opmap.fold
          (fun key t n ->
            let n = deliver n t in
            { n with pending = Opmap.remove key n.pending })
          deliverable n
      in
      drain n

  let local_update n op =
    (* prepare-update phase: ship the downstream form, whose replay at a
       causally consistent remote reproduces this replica's effect *)
    let op = C.prepare op (Crdt_core.Replica_id.of_int n.self) n.x in
    let seq = Vclock.get n.self n.clock + 1 in
    let tag = Vclock.set n.self seq n.clock in
    let t = { origin = n.self; seq; tag; operation = op } in
    let n = deliver n t in
    let entry = { msg = t; seen = Iset.singleton n.self } in
    { n with tbuf = Opmap.add (n.self, seq) entry n.tbuf }

  let tick n =
    (* For each neighbor, forward every buffered operation it has not
       seen; optimistically mark it seen so the next tick does not repeat
       the transmission (channels are reliable in the experiments). *)
    let msgs, tbuf =
      List.fold_left
        (fun (msgs, tbuf) j ->
          let for_j =
            Opmap.fold
              (fun _ e acc ->
                if Iset.mem j e.seen then acc else e.msg :: acc)
              tbuf []
          in
          if for_j = [] then (msgs, tbuf)
          else
            let tbuf =
              Opmap.map
                (fun e ->
                  if Iset.mem j e.seen then e
                  else { e with seen = Iset.add j e.seen })
                tbuf
            in
            ((j, List.rev for_j) :: msgs, tbuf))
        ([], n.tbuf) n.neighbors
    in
    (* Evict operations seen by every neighbor (and ourselves). *)
    let everyone = Iset.of_list (n.self :: n.neighbors) in
    let tbuf = Opmap.filter (fun _ e -> not (Iset.subset everyone e.seen)) tbuf in
    let cost = List.fold_left (fun acc (_, ms) -> acc + List.length ms) 0 msgs in
    ({ n with tbuf; work = n.work + cost }, msgs)

  let handle n ~src batch =
    let n =
      List.fold_left
        (fun n (t : tagged) ->
          let key = (t.origin, t.seq) in
          let n = { n with work = n.work + 1 } in
          let already_delivered = Vclock.get t.origin n.clock >= t.seq in
          match Opmap.find_opt key n.tbuf with
          | Some e ->
              (* Duplicate: only record that [src] has seen it. *)
              let e = { e with seen = Iset.add src e.seen } in
              { n with tbuf = Opmap.add key e n.tbuf }
          | None ->
              if already_delivered then n
              else
                let seen = Iset.of_list [ n.self; src; t.origin ] in
                let n =
                  { n with tbuf = Opmap.add key { msg = t; seen } n.tbuf }
                in
                { n with pending = Opmap.add key t n.pending })
        n batch
    in
    (drain n, [])

  let state n = n.x

  let payload_weight batch =
    List.fold_left (fun acc t -> acc + C.op_weight t.operation) 0 batch

  (* Each operation is tagged with a full vector clock. *)
  let metadata_weight batch =
    List.fold_left (fun acc t -> acc + Vclock.cardinal t.tag + 1) 0 batch

  let payload_bytes batch =
    List.fold_left (fun acc t -> acc + C.op_byte_size t.operation) 0 batch

  let metadata_bytes batch =
    List.fold_left
      (fun acc t ->
        acc + Vclock.byte_size t.tag + Crdt_core.Replica_id.id_bytes + 8)
      0 batch

  let message_codec =
    let open Crdt_wire.Codec in
    let tagged_codec =
      conv
        (fun t -> ((t.origin, t.seq), (t.tag, t.operation)))
        (fun ((origin, seq), (tag, operation)) -> { origin; seq; tag; operation })
        (pair (pair varint varint) (pair Vclock.codec C.op_codec))
    in
    list tagged_codec

  let message_wire_bytes m =
    Crdt_wire.Frame.framed_size
      ~payload_len:(Crdt_wire.Codec.encoded_size message_codec m)

  let buffered_ops n =
    Opmap.fold (fun _ e acc -> acc + C.op_weight e.msg.operation) n.tbuf 0

  let memory_weight n =
    C.weight n.x + buffered_ops n
    + Opmap.fold (fun _ e acc -> acc + Vclock.cardinal e.msg.tag) n.tbuf 0
    + Opmap.fold (fun _ t acc -> acc + Vclock.cardinal t.tag + 1) n.pending 0
    + Vclock.cardinal n.clock

  let metadata_memory_bytes n =
    Vclock.byte_size n.clock
    + Opmap.fold (fun _ e acc -> acc + Vclock.byte_size e.msg.tag) n.tbuf 0
    + Opmap.fold (fun _ t acc -> acc + Vclock.byte_size t.tag) n.pending 0

  let memory_bytes n =
    C.byte_size n.x
    + Opmap.fold
        (fun _ e acc -> acc + C.op_byte_size e.msg.operation) n.tbuf 0
    + metadata_memory_bytes n

  let work n = n.work
end
