(** Add-wins observed-remove set (OR-Set) in a decomposable encoding.

    The paper notes (Section II-A) that its results extend beyond
    grow-only types to the complex CRDTs of the delta literature [14].
    This module demonstrates that on the classic OR-Set: every addition
    creates a globally unique {e dot} (replica, sequence number), and a
    removal kills exactly the alive dots it has {e observed}.  A
    concurrent addition creates a dot the remover has not observed, so
    the element survives — add wins.

    Encoding: a grow-only map from [(dot, element)] to the three-state
    chain [absent(⊥) < alive(1) < dead(2)].  This is a plain [U ↪→ A]
    composition over a chain, so the unique irredundant decomposition,
    optimal deltas and optimal δ-mutators all come for free from the
    paper's framework — an add's delta is one alive entry, a remove's
    delta is one dead entry per killed dot.

    Trade-off: unlike the causal-context formulation of [14], killed dots
    remain as (small) tombstone entries.  The causal-context optimization
    buys tombstone-freedom at the price of a non-pointwise join that
    falls outside the distributive-lattice framework of the paper; this
    encoding stays inside it.

    Like {!Bounded_counter}, [Remove] reads the local state (it kills the
    dots observed {e here}), so replicate by shipping state or deltas;
    raw operation shipping would kill different dot sets at different
    replicas. *)

module Make (E : Powerset.ELT) : sig
  type elt = E.t
  type op = Add of elt | Remove of elt

  include Lattice_intf.CRDT with type op := op

  val add : elt -> Replica_id.t -> t -> t
  val remove : elt -> Replica_id.t -> t -> t
  val mem : elt -> t -> bool

  val value : t -> elt list
  (** Elements with at least one alive dot, sorted. *)

  val alive_dots : t -> int
  (** Number of alive dots (diagnostic). *)

  val tombstones : t -> int
  (** Number of dead dots retained as tombstones (diagnostic). *)
end = struct
  type elt = E.t

  module Key = struct
    type t = (int * int) * E.t
    (** ((replica, sequence), element). *)

    let compare ((d1, e1) : t) ((d2, e2) : t) =
      match compare d1 d2 with 0 -> E.compare e1 e2 | c -> c

    let byte_size ((_, e) : t) = Replica_id.id_bytes + 8 + E.byte_size e

    let codec =
      Crdt_wire.Codec.pair
        (Crdt_wire.Codec.pair Crdt_wire.Codec.varint Crdt_wire.Codec.varint)
        E.codec

    let pp ppf (((r, s), e) : t) =
      Format.fprintf ppf "%d.%d:%a" r s E.pp e
  end

  (* absent(0) = unseen, 1 = alive, 2 = dead. *)
  module M = Map_lattice.Make (Key) (Chain.Max_int)
  include M

  type op = Add of elt | Remove of elt

  let alive = 1
  let dead = 2

  (* Next unique sequence number for a replica: one past the highest it
     has ever used, alive or dead. *)
  let next_seq i m =
    fold
      (fun ((r, s), _) _ acc -> if r = i then max acc s else acc)
      m 0
    + 1

  let killed_dots e m =
    fold
      (fun ((r, s), e') v acc ->
        if v = alive && E.compare e e' = 0 then ((r, s), e') :: acc else acc)
      m []

  let mutate op i m =
    let i = Replica_id.to_int i in
    match op with
    | Add e -> set ((i, next_seq i m), e) alive m
    | Remove e ->
        List.fold_left (fun m k -> set k dead m) m (killed_dots e m)

  let delta_mutate op i m =
    let i = Replica_id.to_int i in
    match op with
    | Add e -> singleton ((i, next_seq i m), e) alive
    | Remove e ->
        List.fold_left
          (fun d k -> join d (singleton k dead))
          bottom (killed_dots e m)

  let prepare op _ _ = op

  let op_weight = function Add _ | Remove _ -> 1
  let op_byte_size = function Add e | Remove e -> 1 + E.byte_size e

  let op_codec =
    let open Crdt_wire.Codec in
    union ~name:"aw_set_op"
      [
        case 0 E.codec
          (function Add e -> Some e | Remove _ -> None)
          (fun e -> Add e);
        case 1 E.codec
          (function Remove e -> Some e | Add _ -> None)
          (fun e -> Remove e);
      ]

  let pp_op ppf = function
    | Add e -> Format.fprintf ppf "add(%a)" E.pp e
    | Remove e -> Format.fprintf ppf "remove(%a)" E.pp e

  let add e i m = mutate (Add e) i m
  let remove e i m = mutate (Remove e) i m

  let mem e m =
    fold
      (fun (_, e') v acc -> acc || (v = alive && E.compare e e' = 0))
      m false

  let value m =
    fold (fun (_, e) v acc -> if v = alive then e :: acc else acc) m []
    |> List.sort_uniq E.compare

  let alive_dots m = fold (fun _ v acc -> if v = alive then acc + 1 else acc) m 0
  let tombstones m = fold (fun _ v acc -> if v = dead then acc + 1 else acc) m 0
end

module Of_string = Make (Powerset.String_elt)
module Of_int = Make (Powerset.Int_elt)
