(** Last-writer-wins register: [Lexico(ℕ, Max_string)].

    The lexicographic product with a chain first component is the paper's
    canonical single-writer construction (Appendix B): a write bumps the
    version (first component) and replaces the payload (second component);
    concurrent writes with equal versions tie-break deterministically by
    the payload's total order.  States are join-irreducible, so a write's
    optimal delta is the whole (tiny) pair. *)

module L = Lexico.Make (Chain.Max_int) (Chain.Max_string)
include L

type op = Write of string

let mutate (Write s) _i (t, _v) = (t + 1, s)

let delta_mutate op i x =
  (* ⇓⟨t+1, s⟩ = {⟨t+1, s⟩} and it never sits below ⟨t, v⟩. *)
  mutate op i x

let prepare op _ _ = op

let op_weight (Write _) = 1
let op_byte_size (Write s) = 8 + String.length s

let op_codec =
  Crdt_wire.Codec.conv
    (fun (Write s) -> s)
    (fun s -> Write s)
    Crdt_wire.Codec.string

let pp_op ppf (Write s) = Format.fprintf ppf "write(%S)" s

let write s i x = mutate (Write s) i x

(** [value x] is the currently visible payload. *)
let value ((_, v) : t) : string = v

(** [timestamp x] is the register's version. *)
let timestamp ((t, _) : t) : int = t
