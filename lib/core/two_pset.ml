(** Two-phase set: [2PSet⟨E⟩ = P(E) × P(E)] (added set, removed set).

    Removal wins over addition; removed elements can never be re-added —
    both sides only grow, so the state is a product of two grow-only
    powersets and inherits their decomposition. *)

module Make (E : Powerset.ELT) : sig
  type elt = E.t
  type op = Add of elt | Remove of elt

  include Lattice_intf.CRDT with type op := op

  val add : elt -> Replica_id.t -> t -> t
  val remove : elt -> Replica_id.t -> t -> t
  val mem : elt -> t -> bool
  val value : t -> elt list
  (** Live elements: added and not removed. *)
end = struct
  module P = Powerset.Make (E)
  module Pair = Product.Make (P) (P)
  include Pair

  type elt = E.t
  type op = Add of elt | Remove of elt

  let mutate op _i (added, removed) =
    match op with
    | Add e -> (P.add e added, removed)
    | Remove e ->
        (* Removing an element that was never added is recorded too:
           2P-set semantics forbid a later add from resurrecting it. *)
        (added, P.add e removed)

  let delta_mutate op _i (added, removed) =
    match op with
    | Add e ->
        if P.mem e added then bottom else (P.singleton e, P.bottom)
    | Remove e ->
        if P.mem e removed then bottom else (P.bottom, P.singleton e)

  let prepare op _ _ = op

  let op_weight _ = 1
  let op_byte_size = function Add e | Remove e -> 1 + E.byte_size e

  let op_codec =
    let open Crdt_wire.Codec in
    union ~name:"two_pset_op"
      [
        case 0 E.codec
          (function Add e -> Some e | Remove _ -> None)
          (fun e -> Add e);
        case 1 E.codec
          (function Remove e -> Some e | Add _ -> None)
          (fun e -> Remove e);
      ]

  let pp_op ppf = function
    | Add e -> Format.fprintf ppf "add(%a)" E.pp e
    | Remove e -> Format.fprintf ppf "remove(%a)" E.pp e

  let add e i s = mutate (Add e) i s
  let remove e i s = mutate (Remove e) i s
  let mem e (added, removed) = P.mem e added && not (P.mem e removed)

  let value (added, removed) =
    List.filter (fun e -> not (P.mem e removed)) (P.elements added)
end
