(** Maximal-elements composition [M(P)]: finite antichains of a partial
    order, ordered by domination.

    [M(P)] is the lattice of finite sets of pairwise-incomparable elements
    of [P]; [A ⊑ B] iff every element of [A] is dominated by some element
    of [B]; join keeps the maximals of the union.  The paper lists this
    composition in Tables III/IV and Appendix C with decomposition
    [⇓s = { {e} | e ∈ s }].  It underlies multi-value registers. *)

module Make (P : Lattice_intf.POSET) : sig
  include Lattice_intf.DECOMPOSABLE

  val of_list : P.t list -> t
  (** Builds the antichain of maximal elements of the given list. *)

  val elements : t -> P.t list
  val insert : P.t -> t -> t
  (** [insert e s] joins [{e}] into [s], discarding dominated elements. *)

  val mem : P.t -> t -> bool
end = struct
  module S = Set.Make (P)

  type t = S.t

  (* Keep only elements not strictly dominated by another element. *)
  let maximals s =
    S.filter
      (fun e ->
        not
          (S.exists (fun e' -> (not (P.compare e e' = 0)) && P.leq e e') s))
      s

  let bottom = S.empty
  let is_bottom = S.is_empty
  let join a b = maximals (S.union a b)

  let leq a b = S.for_all (fun e -> S.exists (fun e' -> P.leq e e') b) a
  let equal = S.equal
  let compare = S.compare
  let weight = S.cardinal
  let byte_size s = S.fold (fun e acc -> acc + P.byte_size e) s 0
  let decompose s = S.fold (fun e acc -> S.singleton e :: acc) s []
  let fold_decompose f s acc = S.fold (fun e acc -> f (S.singleton e) acc) s acc

  (* {e} ⊑ b iff some element of [b] dominates [e]; the survivors of [a]
     are pairwise incomparable already, so their join is the plain set of
     survivors — no re-maximalization needed. *)
  let delta a b =
    S.filter (fun e -> not (S.exists (fun e' -> P.leq e e') b)) a

  let pp ppf s =
    Format.fprintf ppf "@[<1>⟪%a⟫@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         P.pp)
      (S.elements s)

  let of_list l = maximals (S.of_list l)
  let elements = S.elements
  let insert e s = join (S.singleton e) s
  let mem e s = S.mem e s

  (* Decoding re-maximalizes via [of_list], so corrupt input encoding
     comparable elements still yields a valid antichain. *)
  let codec =
    Crdt_wire.Codec.conv S.elements of_list (Crdt_wire.Codec.list P.codec)
end
