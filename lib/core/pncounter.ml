(** Positive-negative counter: [PNCounter = I ↪→ (ℕ × ℕ)] (Appendix C's
    worked example).

    Each replica entry is a pair (increments, decrements); the value is
    the difference of the sums.  The decomposition splits each entry into
    its two components:
    [⇓{A↦⟨2,3⟩} = {{A↦⟨2,0⟩}, {A↦⟨0,3⟩}}], exactly as in the paper. *)

module Entry = Product.Make (Chain.Max_int) (Chain.Max_int)
module M = Map_lattice.Make (Replica_id) (Entry)
include M

type op = Inc of int | Dec of int

let mutate op i p =
  let incs, decs = find i p in
  match op with
  | Inc n ->
      if n < 1 then invalid_arg "Pncounter.inc: increment must be >= 1";
      set i (incs + n, decs) p
  | Dec n ->
      if n < 1 then invalid_arg "Pncounter.dec: decrement must be >= 1";
      set i (incs, decs + n) p

let delta_mutate op i p =
  let incs, decs = find i p in
  match op with
  | Inc n ->
      if n < 1 then invalid_arg "Pncounter.inc: increment must be >= 1";
      singleton i (incs + n, 0)
  | Dec n ->
      if n < 1 then invalid_arg "Pncounter.dec: decrement must be >= 1";
      singleton i (0, decs + n)

let prepare op _ _ = op

let op_weight = function Inc _ | Dec _ -> 1
let op_byte_size = function Inc _ | Dec _ -> 8

let op_codec =
  let open Crdt_wire.Codec in
  union ~name:"pncounter_op"
    [
      case 0 int (function Inc n -> Some n | Dec _ -> None) (fun n -> Inc n);
      case 1 int (function Dec n -> Some n | Inc _ -> None) (fun n -> Dec n);
    ]

let pp_op ppf = function
  | Inc n -> Format.fprintf ppf "inc(%d)" n
  | Dec n -> Format.fprintf ppf "dec(%d)" n

let inc ?(n = 1) i p = mutate (Inc n) i p
let dec ?(n = 1) i p = mutate (Dec n) i p

(** [value p] = total increments − total decrements. *)
let value p = fold (fun _ (up, down) acc -> acc + up - down) p 0
