(** Multi-value register over the antichain composition [M(P)].

    Each write is tagged with a version vector that dominates every write
    it has seen; the register state is the antichain of maximal
    (vector, value) pairs, so concurrent writes are all retained and a
    subsequent write subsumes them.  This is the classic MV-register
    expressed with the paper's [M(P)] composition (Tables III/IV);
    decomposition is by singletons, and a write's optimal delta is the
    singleton antichain holding just the new tagged value. *)

module Version_vector = struct
  module M = Replica_id.Map

  type t = int M.t

  let empty : t = M.empty
  let get i (v : t) = match M.find_opt i v with Some n -> n | None -> 0

  let leq (a : t) (b : t) = M.for_all (fun i n -> n <= get i b) a
  let equal (a : t) (b : t) = leq a b && leq b a
  let merge (a : t) (b : t) : t = M.union (fun _ x y -> Some (max x y)) a b
  let incr i (v : t) : t = M.add i (get i v + 1) v
  let compare (a : t) (b : t) = M.compare Int.compare a b
  let cardinal (v : t) = M.cardinal v

  let byte_size (v : t) = M.cardinal v * (Replica_id.id_bytes + 8)

  (* Entries with count 0 are indistinguishable from absence ([get]
     defaults to 0), so decoding drops them to keep a canonical form. *)
  let codec : t Crdt_wire.Codec.t =
    Crdt_wire.Codec.conv M.bindings
      (fun l ->
        List.fold_left
          (fun v (i, n) -> if n = 0 then v else M.add i n v)
          M.empty l)
      (Crdt_wire.Codec.list
         (Crdt_wire.Codec.pair Crdt_wire.Codec.varint Crdt_wire.Codec.varint))

  let pp ppf (v : t) =
    Format.fprintf ppf "@[<1>[%a]@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         (fun ppf (i, n) -> Format.fprintf ppf "%a:%d" Replica_id.pp i n))
      (M.bindings v)
end

(** Tagged write: a payload with the version vector of its causal past. *)
module Tagged = struct
  type t = { vv : Version_vector.t; value : string }

  let leq a b =
    Version_vector.leq a.vv b.vv
    && ((not (Version_vector.equal a.vv b.vv))
       || String.compare a.value b.value <= 0)

  let compare a b =
    match Version_vector.compare a.vv b.vv with
    | 0 -> String.compare a.value b.value
    | c -> c

  let weight _ = 1
  let byte_size t = Version_vector.byte_size t.vv + String.length t.value

  let codec =
    Crdt_wire.Codec.conv
      (fun t -> (t.vv, t.value))
      (fun (vv, value) -> { vv; value })
      (Crdt_wire.Codec.pair Version_vector.codec Crdt_wire.Codec.string)

  let pp ppf t =
    Format.fprintf ppf "@[<1>%a@%a@]" Format.pp_print_string t.value
      Version_vector.pp t.vv
end

module A = Antichain.Make (Tagged)
include A

type op = Write of string

(* A write dominates everything currently in the register: its vector is
   the merge of all visible vectors with the writer's entry bumped. *)
let next_vector i reg =
  let seen =
    List.fold_left
      (fun acc (t : Tagged.t) -> Version_vector.merge acc t.vv)
      Version_vector.empty (elements reg)
  in
  Version_vector.incr i seen

let mutate (Write s) i reg =
  insert { Tagged.vv = next_vector i reg; value = s } reg

let delta_mutate (Write s) i reg =
  of_list [ { Tagged.vv = next_vector i reg; value = s } ]

let prepare op _ _ = op

let op_weight (Write _) = 1
let op_byte_size (Write s) = String.length s

let op_codec =
  Crdt_wire.Codec.conv
    (fun (Write s) -> s)
    (fun s -> Write s)
    Crdt_wire.Codec.string

let pp_op ppf (Write s) = Format.fprintf ppf "write(%S)" s

let write s i reg = mutate (Write s) i reg

(** [values reg] lists the currently concurrent payloads. *)
let values reg = List.map (fun (t : Tagged.t) -> t.Tagged.value) (elements reg)
