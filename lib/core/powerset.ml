(** Powerset composition [P(U)]: finite sets of elements of an unordered
    universe under union.

    This is the lattice of the grow-only set (Fig. 2b).  Decomposition
    (Appendix C): [⇓s = { {e} | e ∈ s }] — the singletons, which are
    exactly the join-irreducibles of a powerset lattice. *)

(** Universe elements: only equality/ordering is needed, no lattice
    structure. *)
module type ELT = sig
  type t

  val compare : t -> t -> int
  val byte_size : t -> int
  val codec : t Crdt_wire.Codec.t
  val pp : Format.formatter -> t -> unit
end

module Make (E : ELT) : sig
  include Lattice_intf.DECOMPOSABLE

  val empty : t
  val add : E.t -> t -> t
  val mem : E.t -> t -> bool
  val singleton : E.t -> t
  val elements : t -> E.t list
  val cardinal : t -> int
  val of_list : E.t list -> t
  val fold : (E.t -> 'a -> 'a) -> t -> 'a -> 'a
end = struct
  module S = Set.Make (E)

  type t = S.t

  let bottom = S.empty
  let is_bottom = S.is_empty
  let join = S.union
  let leq = S.subset
  let equal = S.equal
  let compare = S.compare
  let weight = S.cardinal
  let byte_size s = S.fold (fun e acc -> acc + E.byte_size e) s 0
  let decompose s = S.fold (fun e acc -> S.singleton e :: acc) s []
  let fold_decompose f s acc = S.fold (fun e acc -> f (S.singleton e) acc) s acc

  (* The irreducibles of a powerset are the singletons, so Δ is exactly
     set difference — no singleton allocation at all. *)
  let delta = S.diff

  (* Encoded as the sorted element list; decoding re-canonicalizes via
     [S.of_list], so duplicate or mis-ordered elements in corrupt input
     still yield a valid set. *)
  let codec =
    Crdt_wire.Codec.conv S.elements S.of_list
      (Crdt_wire.Codec.list E.codec)

  let pp ppf s =
    Format.fprintf ppf "@[<1>{%a}@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         E.pp)
      (S.elements s)

  let empty = S.empty
  let add = S.add
  let mem = S.mem
  let singleton = S.singleton
  let elements = S.elements
  let cardinal = S.cardinal
  let of_list = S.of_list
  let fold = S.fold
end

(** Common universes. *)
module Int_elt = struct
  type t = int

  let compare = Int.compare
  let byte_size _ = 8
  let codec = Crdt_wire.Codec.int
  let pp ppf = Format.fprintf ppf "%d"
end

module String_elt = struct
  type t = string

  let compare = String.compare
  let byte_size = String.length
  let codec = Crdt_wire.Codec.string
  let pp ppf = Format.fprintf ppf "%S"
end
