(** Linear sum composition [A ⊕ B]: every element of [B] sits above every
    element of [A].

    Following Appendix B/C (and matching their notation, where instances
    are written as tagged values [Left a] / [Right b]), the bottom of the
    sum is [Left ⊥A]; joins within a side are the side's joins and mixed
    joins resolve to the [Right] operand.  Decomposition follows the
    quotient-sublattice reasoning of Table IV: [Right ⊥B] is irreducible
    (it strictly dominates all of [A]). *)

module Make (A : Lattice_intf.DECOMPOSABLE) (B : Lattice_intf.DECOMPOSABLE) :
sig
  type t = Left of A.t | Right of B.t

  include Lattice_intf.DECOMPOSABLE with type t := t
end = struct
  type t = Left of A.t | Right of B.t

  let bottom = Left A.bottom
  let is_bottom = function Left a -> A.is_bottom a | Right _ -> false

  let join x y =
    match (x, y) with
    | Left a1, Left a2 -> Left (A.join a1 a2)
    | Right b1, Right b2 -> Right (B.join b1 b2)
    | (Right _ as r), Left _ | Left _, (Right _ as r) -> r

  let leq x y =
    match (x, y) with
    | Left a1, Left a2 -> A.leq a1 a2
    | Right b1, Right b2 -> B.leq b1 b2
    | Left _, Right _ -> true
    | Right _, Left _ -> false

  let equal x y =
    match (x, y) with
    | Left a1, Left a2 -> A.equal a1 a2
    | Right b1, Right b2 -> B.equal b1 b2
    | Left _, Right _ | Right _, Left _ -> false

  let compare x y =
    match (x, y) with
    | Left a1, Left a2 -> A.compare a1 a2
    | Right b1, Right b2 -> B.compare b1 b2
    | Left _, Right _ -> -1
    | Right _, Left _ -> 1

  let weight = function
    | Left a -> A.weight a
    | Right b -> max 1 (B.weight b)

  let byte_size = function
    | Left a -> 1 + A.byte_size a
    | Right b -> 1 + B.byte_size b

  let decompose = function
    | Left a -> List.map (fun d -> Left d) (A.decompose a)
    | Right b -> (
        match B.decompose b with
        | [] -> [ Right B.bottom ]
        | ds -> List.map (fun d -> Right d) ds)

  let fold_decompose f x acc =
    match x with
    | Left a -> A.fold_decompose (fun d acc -> f (Left d) acc) a acc
    | Right b ->
        if B.is_bottom b then f (Right B.bottom) acc
        else B.fold_decompose (fun d acc -> f (Right d) acc) b acc

  (* Sides never mix: anything [Left] is dominated by anything [Right],
     and a [Right] is never dominated by a [Left]. *)
  let delta x y =
    match (x, y) with
    | Left a1, Left a2 -> Left (A.delta a1 a2)
    | Left _, Right _ -> bottom
    | Right b1, Right b2 ->
        let d = B.delta b1 b2 in
        if B.is_bottom d then bottom else Right d
    | Right b1, Left _ -> Right b1

  let codec =
    let open Crdt_wire.Codec in
    union ~name:"linear_sum"
      [
        case 0 A.codec
          (function Left a -> Some a | Right _ -> None)
          (fun a -> Left a);
        case 1 B.codec
          (function Right b -> Some b | Left _ -> None)
          (fun b -> Right b);
      ]

  let pp ppf = function
    | Left a -> Format.fprintf ppf "Left %a" A.pp a
    | Right b -> Format.fprintf ppf "Right %a" B.pp b
end
