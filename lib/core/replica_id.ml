(** Replica identifiers.

    The paper models replica identifiers as an abstract set [I]; we use
    integers.  Following the metadata experiment of Fig. 9, a serialized
    node identifier is accounted as 20 bytes. *)

type t = int

let of_int i =
  if i < 0 then invalid_arg "Replica_id.of_int: negative id";
  i

let to_int i = i
let equal = Int.equal
let compare = Int.compare
let hash i = i

(* Wire size of a node identifier, matching the 20 B figure used by the
   paper's metadata measurements (Fig. 9). *)
let id_bytes = 20
let byte_size (_ : t) = id_bytes

(* On the actual wire an identifier is a varint, not the 20-byte
   accounting convention above; the estimate-vs-exact law test bounds
   the gap.  Identifiers are non-negative, so a negative decoded value
   is corrupt input, reported as an error rather than through
   [of_int]'s exception. *)
let codec =
  Crdt_wire.Codec.conv_partial to_int
    (fun n ->
      if n < 0 then Error (Crdt_wire.Codec.Malformed "negative replica id")
      else Ok n)
    Crdt_wire.Codec.varint

let pp ppf i = Format.fprintf ppf "r%d" i

module Map = Map.Make (Int)
module Set = Set.Make (Int)
