(** A replicated boolean flag built from a lexicographic pair
    [Lexico(ℕ, Bool_or)].

    [enable] sets the boolean within the current epoch (enable-wins among
    concurrent operations of the same epoch, since booleans join with
    [or]); [disable] advances the epoch with the flag cleared, dominating
    every earlier enable (disable-wins across epochs).  A compact
    demonstration of the single-writer lexicographic composition of
    Appendix B that needs no causal context. *)

module L = Lexico.Make (Chain.Max_int) (Chain.Bool_or)
include L

type op = Enable | Disable

let mutate op _i ((epoch, flag) : t) : t =
  match op with
  | Enable -> (epoch, true)
  | Disable -> if flag then (epoch + 1, false) else (epoch, flag)

let delta_mutate op i x =
  let next = mutate op i x in
  if equal next x then bottom else next

let prepare op _ _ = op

let op_weight _ = 1
let op_byte_size _ = 9

let op_codec =
  let open Crdt_wire.Codec in
  union ~name:"epoch_flag_op"
    [
      case 0 unit
        (function Enable -> Some () | Disable -> None)
        (fun () -> Enable);
      case 1 unit
        (function Disable -> Some () | Enable -> None)
        (fun () -> Disable);
    ]

let pp_op ppf = function
  | Enable -> Format.pp_print_string ppf "enable"
  | Disable -> Format.pp_print_string ppf "disable"

let enable i x = mutate Enable i x
let disable i x = mutate Disable i x

(** [value x] is the flag's current reading. *)
let value ((_, flag) : t) : bool = flag
