(** Positive-negative counter: [PNCounter = I ↪→ (ℕ × ℕ)] — Appendix C's
    worked decomposition example.

    Each entry is a pair (increments, decrements); the value is the
    difference of the sums; the decomposition splits every entry into its
    two components. *)

type op = Inc of int | Dec of int

include Lattice_intf.CRDT with type op := op

val empty : t

val value : t -> int
(** Total increments − total decrements (may be negative). *)

val inc : ?n:int -> Replica_id.t -> t -> t
(** @raise Invalid_argument when [n < 1]. *)

val dec : ?n:int -> Replica_id.t -> t -> t
(** @raise Invalid_argument when [n < 1]. *)

val find : Replica_id.t -> t -> int * int
(** Per-replica (increments, decrements); (0, 0) when absent. *)

val of_list : (Replica_id.t * (int * int)) list -> t
val bindings : t -> (Replica_id.t * (int * int)) list
