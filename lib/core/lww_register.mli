(** Last-writer-wins register: [Lexico(ℕ, Max_string)] — the canonical
    single-writer lexicographic construction of Appendix B.

    A write bumps the version and replaces the payload; concurrent writes
    with equal versions tie-break deterministically by the payload's
    total order. *)

type op = Write of string

include Lattice_intf.CRDT with type t = int * string and type op := op

val write : string -> Replica_id.t -> t -> t

val value : t -> string
(** The currently visible payload. *)

val timestamp : t -> int
(** The register's version. *)
