(** A single monotonically growing version number as a CRDT.

    This is the value lattice used by the GMap K% micro-benchmark
    (Table I): "changing the value of a key" inflates the key's entry, and
    the measurement metric counts map entries, so a [max]-chain version per
    key reproduces the workload faithfully. *)

include Chain.Max_int

type op =
  | Bump  (** Advance the version by one. *)
  | Raise_to of int
      (** Inflate to at least the given value (no-op if already there). *)

let mutate op _i v =
  match op with Bump -> v + 1 | Raise_to n -> max v n

let delta_mutate op i v =
  let next = mutate op i v in
  if next = v then bottom else next

(* [Bump] reads the local version, so replaying it remotely would advance
   whatever version the remote holds instead of reproducing the origin's
   effect (two concurrent bumps of v would converge to v+2 instead of
   v+1).  Its downstream form pins the origin's result. *)
let prepare op i v =
  match op with Bump -> Raise_to (mutate op i v) | Raise_to _ -> op

let op_weight _ = 1
let op_byte_size _ = 8

let op_codec =
  let open Crdt_wire.Codec in
  union ~name:"version_op"
    [
      case 0 unit (function Bump -> Some () | Raise_to _ -> None) (fun () -> Bump);
      case 1 int
        (function Raise_to n -> Some n | Bump -> None)
        (fun n -> Raise_to n);
    ]

let pp_op ppf = function
  | Bump -> Format.pp_print_string ppf "bump"
  | Raise_to n -> Format.fprintf ppf "raise_to(%d)" n

let value (v : t) : int = v
