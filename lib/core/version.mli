(** A single monotonically growing version number as a CRDT — the value
    lattice of the GMap K% micro-benchmark (Table I). *)

type op =
  | Bump  (** Advance the version by one. *)
  | Raise_to of int  (** Inflate to at least the given value. *)

include Lattice_intf.CRDT with type t = int and type op := op

val value : t -> int
