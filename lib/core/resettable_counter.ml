(** Resettable counter: [Lexico(ℕ, GCounter)].

    Appendix B singles out the lexicographic product with a chain first
    component as the idiom behind Cassandra's counters [37]: an "owner"
    version number guards an inner state that can either be inflated or
    replaced wholesale while bumping the version.  Here the inner state is
    a GCounter and [Reset] replaces it with ⊥ in a fresh epoch:

    - increments inflate the current epoch's counter;
    - a reset wins over all increments of epochs it has observed (and
      over concurrent increments to those epochs — the usual reset-wins
      small print of resettable counters).

    Being a lexicographic composition of decomposable parts, it inherits
    optimal deltas: an increment's delta is the single updated entry
    tagged with the epoch. *)

module L = Lexico.Make (Chain.Max_int) (Gcounter)
include L

type op = Inc of int | Reset

let mutate op i ((epoch, p) : t) : t =
  match op with
  | Inc n -> (epoch, Gcounter.mutate (Gcounter.Inc n) i p)
  | Reset -> (epoch + 1, Gcounter.bottom)

let delta_mutate op i ((epoch, p) : t) : t =
  match op with
  | Inc n -> (epoch, Gcounter.delta_mutate (Gcounter.Inc n) i p)
  | Reset -> (epoch + 1, Gcounter.bottom)

let prepare op _ _ = op

let op_weight = function Inc _ | Reset -> 1
let op_byte_size = function Inc _ -> 8 | Reset -> 1

let op_codec =
  let open Crdt_wire.Codec in
  union ~name:"resettable_counter_op"
    [
      case 0 int (function Inc n -> Some n | Reset -> None) (fun n -> Inc n);
      case 1 unit
        (function Reset -> Some () | Inc _ -> None)
        (fun () -> Reset);
    ]

let pp_op ppf = function
  | Inc n -> Format.fprintf ppf "inc(%d)" n
  | Reset -> Format.pp_print_string ppf "reset"

let inc ?(n = 1) i x = mutate (Inc n) i x
let reset i x = mutate Reset i x

(** [value x] is the sum of increments since the last reset. *)
let value ((_, p) : t) = Gcounter.value p

(** [epoch x] counts how many resets the state has absorbed. *)
let epoch ((e, _) : t) = e
