(** Finite-function composition [U ↪→ A]: maps from an unordered key set
    to a lattice, absent keys standing for [⊥].

    This is the lattice underlying GCounter ([I ↪→ ℕ]), GMap and the
    PNCounter of Appendix C.  Join is pointwise; the order is pointwise;
    decomposition (Appendix C) is
    [⇓f = { {k ↦ v} | k ∈ dom f ∧ v ∈ ⇓f(k) }].

    Invariant: no key is ever bound to [⊥] (such a binding is
    indistinguishable from absence and would break [equal]/[weight]). *)

module type KEY = sig
  type t

  val compare : t -> t -> int
  val byte_size : t -> int
  val pp : Format.formatter -> t -> unit
end

module Make (K : KEY) (V : Lattice_intf.DECOMPOSABLE) : sig
  include Lattice_intf.DECOMPOSABLE

  val empty : t

  val find : K.t -> t -> V.t
  (** Total lookup: absent keys map to [V.bottom]. *)

  val singleton : K.t -> V.t -> t
  (** [singleton k v]; returns [bottom] when [v] is [⊥]. *)

  val set : K.t -> V.t -> t -> t
  (** [set k v m] replaces the binding of [k] (removing it if [v = ⊥]).
      Unlike {!join}, this is not necessarily an inflation; mutators must
      guarantee inflation themselves. *)

  val join_entry : K.t -> V.t -> t -> t
  (** [join_entry k v m = join m (singleton k v)]. *)

  val cardinal : t -> int
  val bindings : t -> (K.t * V.t) list
  val keys : t -> K.t list
  val fold : (K.t -> V.t -> 'a -> 'a) -> t -> 'a -> 'a
  val of_list : (K.t * V.t) list -> t
end = struct
  module M = Map.Make (K)

  type t = V.t M.t

  let bottom = M.empty
  let is_bottom = M.is_empty

  let join m1 m2 =
    M.union (fun _k v1 v2 -> Some (V.join v1 v2)) m1 m2

  let find k m = match M.find_opt k m with Some v -> v | None -> V.bottom

  exception Not_leq

  (* One simultaneous walk of both maps, short-circuiting at the first
     violating key — instead of an O(log n) [find] in [m2] per key of
     [m1].  A key present only in [m1] violates the order directly (the
     no-⊥-binding invariant means its value is non-bottom). *)
  let leq m1 m2 =
    match
      M.merge
        (fun _k v1 v2 ->
          match (v1, v2) with
          | None, _ -> None
          | Some v1, Some v2 -> if V.leq v1 v2 then None else raise Not_leq
          | Some _, None -> raise Not_leq)
        m1 m2
    with
    | _ -> true
    | exception Not_leq -> false
  let equal = M.equal V.equal
  let compare = M.compare V.compare
  let weight m = M.fold (fun _ v acc -> acc + V.weight v) m 0

  let byte_size m =
    M.fold (fun k v acc -> acc + K.byte_size k + V.byte_size v) m 0

  let decompose m =
    M.fold
      (fun k v acc ->
        List.fold_left
          (fun acc d -> M.singleton k d :: acc)
          acc (V.decompose v))
      m []

  let fold_decompose f m acc =
    M.fold
      (fun k v acc ->
        V.fold_decompose (fun d acc -> f (M.singleton k d) acc) v acc)
      m acc

  (* Δ is pointwise: keys only in [m1] survive whole, shared keys recurse
     into the value lattice, keys only in [m2] contribute nothing.  One
     merge walk, no per-irreducible singleton maps. *)
  let delta m1 m2 =
    M.merge
      (fun _k v1 v2 ->
        match (v1, v2) with
        | None, _ -> None
        | Some v1, None -> Some v1
        | Some v1, Some v2 ->
            let d = V.delta v1 v2 in
            if V.is_bottom d then None else Some d)
      m1 m2

  let pp ppf m =
    let pp_binding ppf (k, v) =
      Format.fprintf ppf "@[<1>%a ↦@ %a@]" K.pp k V.pp v
    in
    Format.fprintf ppf "@[<1>{%a}@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         pp_binding)
      (M.bindings m)

  let empty = M.empty
  let singleton k v = if V.is_bottom v then M.empty else M.singleton k v

  let set k v m = if V.is_bottom v then M.remove k m else M.add k v m
  let join_entry k v m = join m (singleton k v)
  let cardinal = M.cardinal
  let bindings = M.bindings
  let keys m = List.map fst (M.bindings m)
  let fold = M.fold
  let of_list l = List.fold_left (fun m (k, v) -> set k v m) M.empty l
end
