(** Finite-function composition [U ↪→ A]: maps from an unordered key set
    to a lattice, absent keys standing for [⊥].

    This is the lattice underlying GCounter ([I ↪→ ℕ]), GMap and the
    PNCounter of Appendix C.  Join is pointwise; the order is pointwise;
    decomposition (Appendix C) is
    [⇓f = { {k ↦ v} | k ∈ dom f ∧ v ∈ ⇓f(k) }].

    Invariant: no key is ever bound to [⊥] (such a binding is
    indistinguishable from absence and would break [equal]/[weight]).

    {b Cached sizes.}  The representation carries the map's total weight
    and byte size, maintained incrementally: [join] corrects the sum of
    both operands' sizes by the overlap on collided keys (which the union
    callback visits anyway), [set] adjusts by the replaced binding.
    [weight] and [byte_size] are therefore O(1) — they sit on the
    simulator's per-message accounting and per-round memory-snapshot hot
    paths, where the former fold-the-whole-map cost dominated profiles.
    When the value lattice itself caches its sizes (e.g. nested maps),
    the per-collision correction stays O(1) too. *)

module type KEY = sig
  type t

  val compare : t -> t -> int
  val byte_size : t -> int
  val codec : t Crdt_wire.Codec.t
  val pp : Format.formatter -> t -> unit
end

module Make (K : KEY) (V : Lattice_intf.DECOMPOSABLE) : sig
  include Lattice_intf.DECOMPOSABLE

  val empty : t

  val find : K.t -> t -> V.t
  (** Total lookup: absent keys map to [V.bottom]. *)

  val singleton : K.t -> V.t -> t
  (** [singleton k v]; returns [bottom] when [v] is [⊥]. *)

  val set : K.t -> V.t -> t -> t
  (** [set k v m] replaces the binding of [k] (removing it if [v = ⊥]).
      Unlike {!join}, this is not necessarily an inflation; mutators must
      guarantee inflation themselves. *)

  val join_entry : K.t -> V.t -> t -> t
  (** [join_entry k v m = join m (singleton k v)]. *)

  val cardinal : t -> int
  val bindings : t -> (K.t * V.t) list
  val keys : t -> K.t list
  val fold : (K.t -> V.t -> 'a -> 'a) -> t -> 'a -> 'a
  val of_list : (K.t * V.t) list -> t
end = struct
  module M = Map.Make (K)

  type t = {
    m : V.t M.t;
    c : int;  (** cardinal. *)
    w : int;  (** Σ [V.weight] over the bindings. *)
    b : int;  (** Σ [K.byte_size] + [V.byte_size] over the bindings. *)
  }

  let bottom = { m = M.empty; c = 0; w = 0; b = 0 }
  let is_bottom t = M.is_empty t.m
  let weight t = t.w
  let byte_size t = t.b

  let join_union t1 t2 =
    (* Start from the disjoint sum and subtract the overlap: the union
       callback runs exactly on the collided keys, where the key and the
       two value sizes were each counted twice. *)
    let c = ref (t1.c + t2.c) in
    let w = ref (t1.w + t2.w) and b = ref (t1.b + t2.b) in
    let m =
      M.union
        (fun k v1 v2 ->
          let v = V.join v1 v2 in
          decr c;
          w := !w - V.weight v1 - V.weight v2 + V.weight v;
          b :=
            !b - K.byte_size k - V.byte_size v1 - V.byte_size v2
            + V.byte_size v;
          Some v)
        t1.m t2.m
    in
    { m; c = !c; w = !w; b = !b }

  let find k t = match M.find_opt k t.m with Some v -> v | None -> V.bottom

  (* The order check picks its walk by the cached cardinals.  A key
     present only in [m1] violates the order directly (the no-⊥-binding
     invariant means its value is non-bottom), so [c1 > c2] is an O(1)
     refutation by pigeonhole.  A small [m1] against a large [m2] — the
     δ-group-vs-state shape — walks only [m1] with O(log |m2|) lookups;
     comparable sizes use an allocation-free simultaneous walk over both
     ascending sequences.  (A [merge]-based walk would allocate the
     merged map just to discard it.)  Both walks short-circuit at the
     first violating key. *)
  let leq_lookup m1 m2 =
    M.for_all
      (fun k v1 ->
        match M.find_opt k m2 with Some v2 -> V.leq v1 v2 | None -> false)
      m1

  let leq_walk m1 m2 =
    let rec go s1 s2 =
      match s1 () with
      | Seq.Nil -> true
      | Seq.Cons ((k1, v1), s1') ->
          let rec advance s2 =
            match s2 () with
            | Seq.Nil -> false (* k1 (and the rest of m1) missing in m2. *)
            | Seq.Cons ((k2, v2), s2') -> (
                match K.compare k1 k2 with
                | n when n < 0 -> false (* k1 missing in m2. *)
                | 0 -> V.leq v1 v2 && go s1' s2'
                | _ -> advance s2')
          in
          advance s2
    in
    go (M.to_seq m1) (M.to_seq m2)

  let leq t1 t2 =
    t1.m == t2.m
    || t1.c <= t2.c
       &&
       if 8 * t1.c <= t2.c then leq_lookup t1.m t2.m
       else leq_walk t1.m t2.m

  let equal t1 t2 = t1.m == t2.m || (t1.w = t2.w && M.equal V.equal t1.m t2.m)
  let compare t1 t2 = M.compare V.compare t1.m t2.m

  let decompose t =
    M.fold
      (fun k v acc ->
        List.fold_left
          (fun acc d ->
            {
              m = M.singleton k d;
              c = 1;
              w = V.weight d;
              b = K.byte_size k + V.byte_size d;
            }
            :: acc)
          acc (V.decompose v))
      t.m []

  let fold_decompose f t acc =
    M.fold
      (fun k v acc ->
        V.fold_decompose
          (fun d acc ->
            f
              {
                m = M.singleton k d;
                c = 1;
                w = V.weight d;
                b = K.byte_size k + V.byte_size d;
              }
              acc)
          v acc)
      t.m acc

  (* Δ is pointwise: keys only in [m1] survive whole, shared keys recurse
     into the value lattice, keys only in [m2] contribute nothing.  Like
     [leq], this walks only [m1] with lookups into [m2] — the common call
     is Δ(small received δ-group, large local state), where a
     simultaneous merge walk would traverse the whole state per
     message. *)
  let delta t1 t2 =
    M.fold
      (fun k v1 acc ->
        let keep d =
          {
            m = M.add k d acc.m;
            c = acc.c + 1;
            w = acc.w + V.weight d;
            b = acc.b + K.byte_size k + V.byte_size d;
          }
        in
        match M.find_opt k t2.m with
        | None -> keep v1
        | Some v2 ->
            let d = V.delta v1 v2 in
            if V.is_bottom d then acc else keep d)
      t1.m bottom

  (* Note: a Δ-based join ([a ⊔ b = b ⊔ Δ(a,b)], extracting the smaller
     operand's strictly-new part before a small-vs-big union) measured
     {e slower} than the plain union on the anti-entropy shapes it
     targets — the stdlib union is already subtree-sharing and
     split-based, so the extra lookup walk never pays for itself. *)
  let join = join_union

  let pp ppf t =
    let pp_binding ppf (k, v) =
      Format.fprintf ppf "@[<1>%a ↦@ %a@]" K.pp k V.pp v
    in
    Format.fprintf ppf "@[<1>{%a}@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         pp_binding)
      (M.bindings t.m)

  let empty = bottom

  let singleton k v =
    if V.is_bottom v then bottom
    else
      {
        m = M.singleton k v;
        c = 1;
        w = V.weight v;
        b = K.byte_size k + V.byte_size v;
      }

  let set k v t =
    let old = M.find_opt k t.m in
    let w, b =
      match old with
      | None -> (t.w, t.b)
      | Some o -> (t.w - V.weight o, t.b - K.byte_size k - V.byte_size o)
    in
    if V.is_bottom v then
      match old with
      | None -> t
      | Some _ -> { m = M.remove k t.m; c = t.c - 1; w; b }
    else
      {
        m = M.add k v t.m;
        c = (if old = None then t.c + 1 else t.c);
        w = w + V.weight v;
        b = b + K.byte_size k + V.byte_size v;
      }

  let join_entry k v t = join t (singleton k v)
  let cardinal t = t.c
  let bindings t = M.bindings t.m
  let keys t = List.map fst (M.bindings t.m)
  let fold f t acc = M.fold f t.m acc
  let of_list l = List.fold_left (fun t (k, v) -> set k v t) bottom l

  (* Encoded as the sorted binding list.  Decoding goes through
     [of_list]/[set], which rebuilds the cached sizes and drops any
     ⊥-bound key, so the no-⊥-binding invariant holds even for corrupt
     input that encodes a bottom value. *)
  let codec =
    Crdt_wire.Codec.conv bindings of_list
      (Crdt_wire.Codec.list (Crdt_wire.Codec.pair K.codec V.codec))
end
