(** Bounded counter: a counter that never goes below zero, built from
    grow-only map compositions (Balegas et al.).

    Rights to decrement are minted by increments, move between replicas
    via transfers, and are spent by decrements; a replica can only spend
    rights it holds locally, which enforces the global non-negativity
    invariant without coordination.

    [Dec]/[Transfer] decide against the local state (no-ops when rights
    are insufficient), so replicate this type by shipping state or deltas
    — not raw operations. *)

type op =
  | Inc of int  (** produce [n] new rights locally. *)
  | Dec of int  (** consume [n] rights; no-op when insufficient. *)
  | Transfer of { amount : int; target : Replica_id.t }
      (** move rights to another replica; no-op when insufficient or when
          the target is the caller. *)

include Lattice_intf.CRDT with type op := op

val inc : ?n:int -> Replica_id.t -> t -> t
val dec : ?n:int -> Replica_id.t -> t -> t
val transfer : amount:int -> target:Replica_id.t -> Replica_id.t -> t -> t

val value : t -> int
(** Rights minted minus rights consumed; never negative. *)

val rights_of : Replica_id.t -> t -> int
(** Decrements the replica can still perform locally. *)
