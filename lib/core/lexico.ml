(** Lexicographic product composition [C ⋉ A] with a chain first
    component.

    The paper (Appendix B, Table III) notes that lexicographic products
    are distributive — and hence admit unique irredundant decompositions —
    only when the first component is a chain, which is how CRDT designs use
    them in practice (the single-writer principle: a version number guards
    an arbitrarily-replaceable second component, as in Cassandra counters
    and LWW registers).

    Join: the pair with the larger first component wins; on ties the
    second components join.  Decomposition (Appendix C):
    [⇓⟨c,a⟩ = ⇓c × ⇓a], computed in the quotient sublattice
    [⟨c,a⟩/⟨c,⊥⟩] (Table IV), i.e. [{⟨c,y⟩ | y ∈ ⇓a}]; when [a = ⊥] but
    [c ≠ ⊥] the element [⟨c,⊥⟩] is itself irreducible. *)

module Make (C : Lattice_intf.CHAIN) (A : Lattice_intf.DECOMPOSABLE) :
  Lattice_intf.DECOMPOSABLE with type t = C.t * A.t = struct
  type t = C.t * A.t

  let bottom = (C.bottom, A.bottom)
  let is_bottom (c, a) = C.is_bottom c && A.is_bottom a

  let join (c1, a1) (c2, a2) =
    match C.compare c1 c2 with
    | 0 -> (c1, A.join a1 a2)
    | n when n > 0 -> (c1, a1)
    | _ -> (c2, a2)

  let leq (c1, a1) (c2, a2) =
    match C.compare c1 c2 with
    | 0 -> A.leq a1 a2
    | n -> n < 0

  let equal (c1, a1) (c2, a2) = C.equal c1 c2 && A.equal a1 a2

  let compare (c1, a1) (c2, a2) =
    match C.compare c1 c2 with 0 -> A.compare a1 a2 | c -> c

  let weight (c, a) = if is_bottom (c, a) then 0 else max 1 (A.weight a)
  let byte_size (c, a) = C.byte_size c + A.byte_size a

  let decompose (c, a) =
    if is_bottom (c, a) then []
    else
      match A.decompose a with
      | [] -> [ (c, A.bottom) ]
      | ds -> List.map (fun d -> (c, d)) ds

  let fold_decompose f ((c, a) as x) acc =
    if is_bottom x then acc
    else if A.is_bottom a then f (c, A.bottom) acc
    else A.fold_decompose (fun d acc -> f (c, d) acc) a acc

  (* Every irreducible of ⟨c,a⟩ carries the same guard [c], so ⊑ against
     ⟨c',a'⟩ is decided once by the chain comparison: a smaller guard is
     wholly dominated, a larger one wholly kept, equal guards recurse. *)
  let delta ((c1, a1) as x) (c2, a2) =
    if is_bottom x then bottom
    else
      match C.compare c1 c2 with
      | 0 ->
          let d = A.delta a1 a2 in
          if A.is_bottom d then bottom else (c1, d)
      | n when n > 0 -> x
      | _ -> bottom

  let codec = Crdt_wire.Codec.pair C.codec A.codec
  let pp ppf (c, a) = Format.fprintf ppf "@[<1>⟨%a;@ %a⟩@]" C.pp c A.pp a
end
