(** Chain (totally ordered) lattices.

    Chains are the simplest distributive lattices satisfying DCC when
    well-founded; every non-bottom element is join-irreducible, so the
    decomposition rule of Appendix C is [⇓c = {c}]. *)

(** Input for {!Make_max}: a totally ordered carrier with a least
    element. *)
module type ORDERED_WITH_BOTTOM = sig
  type t

  val compare : t -> t -> int
  val bottom : t
  val byte_size : t -> int
  val codec : t Crdt_wire.Codec.t
  val pp : Format.formatter -> t -> unit
end

(** Build the max-chain lattice over a total order: [join = max]. *)
module Make_max (O : ORDERED_WITH_BOTTOM) :
  Lattice_intf.CHAIN with type t = O.t = struct
  type t = O.t

  let bottom = O.bottom
  let compare = O.compare
  let equal a b = compare a b = 0
  let is_bottom x = equal x bottom
  let join a b = if compare a b >= 0 then a else b
  let leq a b = compare a b <= 0
  let weight x = if is_bottom x then 0 else 1
  let byte_size = O.byte_size
  let decompose x = if is_bottom x then [] else [ x ]
  let fold_decompose f x acc = if is_bottom x then acc else f x acc

  (* Every non-⊥ element of a chain is irreducible, so Δ(a,b) is either
     all of [a] or nothing. *)
  let delta a b = if leq a b then bottom else a
  let codec = O.codec
  let pp = O.pp
end

(** Natural numbers under [max], bottom [0] — the per-replica entry
    lattice of GCounter. *)
module Max_int = Make_max (struct
  type t = int

  let compare = Int.compare
  let bottom = 0
  let byte_size _ = 8
  let codec = Crdt_wire.Codec.int
  let pp ppf = Format.fprintf ppf "%d"
end)

(** Strings under lexicographic [max], bottom [""].  Used as the second
    component of LWW registers (a totally ordered payload makes the
    lexicographic pair a lattice with deterministic tie-breaking). *)
module Max_string = Make_max (struct
  type t = string

  let compare = String.compare
  let bottom = ""
  let byte_size = String.length
  let codec = Crdt_wire.Codec.string
  let pp ppf = Format.fprintf ppf "%S"
end)

(** Booleans under [or], bottom [false] — a two-element chain. *)
module Bool_or = Make_max (struct
  type t = bool

  let compare = Bool.compare
  let bottom = false
  let byte_size _ = 1
  let codec = Crdt_wire.Codec.bool
  let pp = Format.pp_print_bool
end)
