(** A replicated boolean flag built from [Lexico(ℕ, Bool_or)]:
    enable-wins among concurrent operations within an epoch, disable-wins
    across epochs (a disable advances the epoch with the flag cleared). *)

type op = Enable | Disable

include Lattice_intf.CRDT with type t = int * bool and type op := op

val enable : Replica_id.t -> t -> t
val disable : Replica_id.t -> t -> t
val value : t -> bool
