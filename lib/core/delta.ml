(** Optimal deltas from join decompositions (Section III-B).

    Given the unique irredundant decomposition [⇓a], the minimum
    "difference" between states [a] and [b] is

    {v Δ(a,b) = ⊔ { y ∈ ⇓a | y ⋢ b } v}

    which satisfies [Δ(a,b) ⊔ b = a ⊔ b] and is dominated by every other
    [c] with [c ⊔ b = a ⊔ b].  Optimal δ-mutators follow as
    [mᵟ(x) = Δ(m(x), x)].

    This generic, list-based formulation materializes [⇓a] and filters
    it; it is kept as the {e reference oracle} for the structural
    {!Lattice_intf.DECOMPOSABLE.delta} that each composition implements
    directly (the hot paths use the structural version; the property
    suites check both agree on every instance). *)

module Make (L : Lattice_intf.DECOMPOSABLE) = struct
  (** [delta a b] is the optimal delta [Δ(a,b)]. *)
  let delta a b =
    List.fold_left
      (fun acc y -> if L.leq y b then acc else L.join acc y)
      L.bottom (L.decompose a)

  (** [delta_mutator m x] derives the optimal δ-mutator of a classic
      mutator [m]: the minimum state whose join with [x] is [m x]. *)
  let delta_mutator m x = delta (m x) x

  (** [redundancy a b] is the dual projection: the part of [a] already
      contained in [b], i.e. [⊔ { y ∈ ⇓a | y ⊑ b }].  Useful for
      diagnostics and tests ([join (delta a b) (redundancy a b) = a]). *)
  let redundancy a b =
    List.fold_left
      (fun acc y -> if L.leq y b then L.join acc y else acc)
      L.bottom (L.decompose a)

  (** Check that a list of states is a join decomposition of [x]
      (Definition 2): its join produces [x]. *)
  let is_decomposition ds x =
    L.equal (List.fold_left L.join L.bottom ds) x

  (** Check irredundancy (Definition 3): removing any element strictly
      shrinks the join. *)
  let is_irredundant ds =
    let total = List.fold_left L.join L.bottom ds in
    let rec go prefix = function
      | [] -> true
      | d :: rest ->
          let without =
            List.fold_left L.join L.bottom (List.rev_append prefix rest)
          in
          (not (L.equal without total)) && go (d :: prefix) rest
    in
    go [] ds

  (** Check join-irreducibility of a single state (Definition 1) with
      respect to its own decomposition: [x] is irreducible iff [x ≠ ⊥] and
      [⇓x = {x}]. *)
  let is_irreducible x =
    match L.decompose x with [ d ] -> L.equal d x | _ -> false
end
