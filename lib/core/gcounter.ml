(** Grow-only counter (Fig. 2a): [GCounter = I ↪→ ℕ].

    Each replica tracks its own increments in its map entry; the counter
    value is the sum of all entries.  Join takes the pointwise maximum.
    The δ-mutator returns only the updated entry, which is exactly the
    optimal delta [Δ(inc(p), p)] (the entry is join-irreducible and not
    below the previous state). *)

module M = Map_lattice.Make (Replica_id) (Chain.Max_int)
include M

type op = Inc of int  (** [Inc n]: add [n ≥ 1] to the counter. *)

(* Increments by replica [i] only touch entry [p(i)], so both mutators are
   O(log |dom p|). *)
let apply_inc n i p =
  if n < 1 then invalid_arg "Gcounter.inc: increment must be >= 1";
  let current = find i p in
  (current + n, p)

let mutate op i p =
  match op with
  | Inc n ->
      let updated, p = apply_inc n i p in
      set i updated p

let delta_mutate op i p =
  match op with
  | Inc n ->
      let updated, _ = apply_inc n i p in
      singleton i updated

let prepare op _ _ = op

let op_weight (Inc _) = 1
let op_byte_size (Inc _) = 8

let op_codec =
  Crdt_wire.Codec.conv (fun (Inc n) -> n) (fun n -> Inc n) Crdt_wire.Codec.int

let pp_op ppf (Inc n) = Format.fprintf ppf "inc(%d)" n

(** Convenience mutators used by examples. *)
let inc ?(n = 1) i p = mutate (Inc n) i p

let inc_delta ?(n = 1) i p = delta_mutate (Inc n) i p

(** [value p] is the counter's value: the sum of all entries. *)
let value p = fold (fun _ v acc -> acc + v) p 0
