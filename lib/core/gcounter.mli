(** Grow-only counter (Fig. 2a): [GCounter = I ↪→ ℕ].

    Each replica tracks its own increments in its map entry; the counter
    value is the sum of all entries; join takes the pointwise maximum.
    The δ-mutator returns only the updated entry — the optimal delta
    [Δ(inc(p), p)]. *)

type op = Inc of int  (** [Inc n]: add [n ≥ 1] to the counter. *)

include Lattice_intf.CRDT with type op := op

val empty : t

val value : t -> int
(** Sum of all per-replica entries. *)

val inc : ?n:int -> Replica_id.t -> t -> t
(** Classic mutator; [n] defaults to 1.
    @raise Invalid_argument when [n < 1]. *)

val inc_delta : ?n:int -> Replica_id.t -> t -> t
(** Optimal δ-mutator: the singleton map holding the updated entry. *)

val find : Replica_id.t -> t -> int
(** Per-replica entry; 0 when absent. *)

val of_list : (Replica_id.t * int) list -> t
(** Build a state from entries (later bindings win); entries of value 0
    are dropped. *)

val cardinal : t -> int
val bindings : t -> (Replica_id.t * int) list
val fold : (Replica_id.t -> int -> 'a -> 'a) -> t -> 'a -> 'a
