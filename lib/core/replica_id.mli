(** Replica identifiers.

    The paper models replica identifiers as an abstract set [I]; this
    implementation uses non-negative integers.  A serialized identifier
    is accounted as 20 bytes on the wire, matching the convention of the
    paper's metadata experiment (Fig. 9). *)

type t = int

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val id_bytes : int
(** Wire size of one identifier: 20 bytes (Fig. 9). *)

val byte_size : t -> int
(** [byte_size _ = id_bytes]; shaped as a function for use as a map
    key module. *)

val codec : t Crdt_wire.Codec.t
(** Exact wire codec: identifiers travel as varints, not as the 20-byte
    estimate of {!id_bytes}. *)

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = int
module Set : Set.S with type elt = int
