(** Module signatures for state-based CRDT lattices.

    A state-based CRDT is a triple [(L, ⊑, ⊔)] where [L] is a
    join-semilattice, [⊑] a partial order, and [⊔] computes least upper
    bounds (Section II of the paper).  All lattices used here are bounded
    (they have a bottom element) and additionally support the irredundant
    join decomposition [⇓x] of Section III, which exists and is unique for
    distributive lattices satisfying the descending chain condition
    (Proposition 1 / Appendix A). *)

(** A bounded join-semilattice. *)
module type LATTICE = sig
  type t

  val bottom : t
  (** The least element [⊥], neutral for {!join}. *)

  val is_bottom : t -> bool
  (** [is_bottom x] iff [equal x bottom]. *)

  val join : t -> t -> t
  (** [join a b] is the least upper bound [a ⊔ b].  Associative,
      commutative and idempotent. *)

  val leq : t -> t -> bool
  (** The lattice partial order: [leq a b ⇔ join a b = b]. *)

  val equal : t -> t -> bool
  (** Structural lattice equality ([leq a b && leq b a]). *)

  val compare : t -> t -> int
  (** A total order used only for storing states in sets/maps; it is
      compatible with {!equal} but otherwise arbitrary (it does {e not}
      extend {!leq}). *)

  val weight : t -> int
  (** Number of irreducible elements carried by the state — the paper's
      transmission/memory metric of Table I (map entries, set elements).
      [weight bottom = 0]. *)

  val byte_size : t -> int
  (** Estimated wire size in bytes (replica identifiers count 20 B as in
      Fig. 9, integers 8 B, strings their length).  The exact encoded
      size is [Crdt_wire.Codec.encoded_size codec x]; the estimate is
      kept for the paper's Fig. 9 accounting convention and is
      law-tested to stay within a documented constant envelope of the
      exact size (DESIGN.md §6). *)

  val codec : t Crdt_wire.Codec.t
  (** Binary wire codec for states, built by composition (DESIGN.md §6).
      Decoding is total: [Error] on truncated/corrupt input, never an
      exception.  Decoded values are canonical — caches rebuilt, bottom
      map entries dropped, antichains re-maximalized — so
      [decode (encode x) = Ok x] up to {!equal}/{!compare}. *)

  val pp : Format.formatter -> t -> unit
  (** Pretty-printer for debugging and example output. *)
end

(** A lattice whose states admit the unique irredundant join decomposition
    of Section III ([⇓x], Definition 3 + Proposition 2). *)
module type DECOMPOSABLE = sig
  include LATTICE

  val decompose : t -> t list
  (** [decompose x] is the irredundant join decomposition [⇓x]: a list of
      join-irreducible states whose join is [x], such that removing any
      element yields a strictly smaller join.  [decompose bottom = []]. *)

  val fold_decompose : (t -> 'a -> 'a) -> t -> 'a -> 'a
  (** [fold_decompose f x acc] folds [f] over the irreducibles of [⇓x]
      without materializing the decomposition list:
      [fold_decompose f x acc] visits exactly the elements of
      [decompose x] (in an unspecified order). *)

  val delta : t -> t -> t
  (** [delta a b] is the optimal delta
      [Δ(a,b) = ⊔ \{ y ∈ ⇓a | y ⋢ b \}] of Section III-B, computed
      {e structurally} — set difference for powersets, a pointwise
      simultaneous walk for maps, componentwise for products — instead of
      materializing [⇓a] and filtering it.  Agrees exactly with the
      decompose-based {!Delta.Make.delta}, which the property suites keep
      as the reference oracle. *)
end

(** A totally-ordered decomposable lattice (a chain).  Chains are the
    first component of lexicographic products; every non-bottom element of
    a chain is join-irreducible, so [decompose x = [x]]. *)
module type CHAIN = sig
  include DECOMPOSABLE
  (** For chains, {!DECOMPOSABLE.compare} {e does} extend {!DECOMPOSABLE.leq}:
      [leq a b ⇔ compare a b <= 0]. *)
end

(** A partially ordered set, used by the antichain composition [M(P)]. *)
module type POSET = sig
  type t

  val leq : t -> t -> bool
  val compare : t -> t -> int
  val weight : t -> int
  val byte_size : t -> int
  val codec : t Crdt_wire.Codec.t
  val pp : Format.formatter -> t -> unit
end

(** A state-based CRDT: a decomposable lattice together with update
    operations.  [mutate] is the classic mutator [m] (always an inflation:
    [x ⊑ mutate op i x]); [delta_mutate] is the {e optimal} δ-mutator
    [mᵟ(x) = Δ(m(x), x)] of Section III-B, satisfying
    [m op i x = x ⊔ delta_mutate op i x]. *)
module type CRDT = sig
  include DECOMPOSABLE

  type op
  (** The data type's update operations (e.g. increment, add-element). *)

  val mutate : op -> Replica_id.t -> t -> t
  (** Classic mutator [m(x)] executed at the given replica. *)

  val delta_mutate : op -> Replica_id.t -> t -> t
  (** Optimal δ-mutator [mᵟ(x)]: the minimum state whose join with [x]
      equals [mutate op i x].  Returns {!LATTICE.bottom} when the operation
      has no effect. *)

  val prepare : op -> Replica_id.t -> t -> op
  (** Prepare-update phase of operation-based replication: rewrite the
      operation at the origin, reading the origin's current state, into
      the downstream form that is shipped and replayed remotely.  Law:
      [mutate (prepare op i x) i x = mutate op i x] (preparing never
      changes the local effect).  The prepared form must be replay-safe —
      replaying it against any causally consistent remote state yields
      the origin's effect, so the system converges to the join of the
      origins' effects (e.g. the state-dependent [Version.Bump] prepares
      into [Version.Raise_to]).  Identity for operations that are already
      replay-safe. *)

  val op_weight : op -> int
  (** Number of lattice elements an operation carries on the wire when
      shipped by operation-based synchronization (usually 1). *)

  val op_byte_size : op -> int
  (** Estimated wire size of the operation in bytes (same conventions
      as {!LATTICE.byte_size}). *)

  val op_codec : op Crdt_wire.Codec.t
  (** Binary wire codec for operations, used by operation-based
      synchronization.  Same totality contract as {!LATTICE.codec}. *)

  val pp_op : Format.formatter -> op -> unit
end
