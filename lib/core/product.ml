(** Cartesian product composition [A × B].

    Joins, order and bottom are componentwise.  The decomposition rule of
    Appendix C is
    [⇓⟨a,b⟩ = ⇓a × {⊥} ∪ {⊥} × ⇓b]:
    each irreducible of the pair lives in exactly one component. *)

module Make (A : Lattice_intf.DECOMPOSABLE) (B : Lattice_intf.DECOMPOSABLE) :
  Lattice_intf.DECOMPOSABLE with type t = A.t * B.t = struct
  type t = A.t * B.t

  let bottom = (A.bottom, B.bottom)
  let is_bottom (a, b) = A.is_bottom a && B.is_bottom b
  let join (a1, b1) (a2, b2) = (A.join a1 a2, B.join b1 b2)
  let leq (a1, b1) (a2, b2) = A.leq a1 a2 && B.leq b1 b2
  let equal (a1, b1) (a2, b2) = A.equal a1 a2 && B.equal b1 b2

  let compare (a1, b1) (a2, b2) =
    match A.compare a1 a2 with 0 -> B.compare b1 b2 | c -> c

  let weight (a, b) = A.weight a + B.weight b
  let byte_size (a, b) = A.byte_size a + B.byte_size b

  let decompose (a, b) =
    let left = List.map (fun x -> (x, B.bottom)) (A.decompose a)
    and right = List.map (fun y -> (A.bottom, y)) (B.decompose b) in
    left @ right

  let fold_decompose f (a, b) acc =
    B.fold_decompose
      (fun y acc -> f (A.bottom, y) acc)
      b
      (A.fold_decompose (fun x acc -> f (x, B.bottom) acc) a acc)

  (* Each irreducible lives in exactly one component, so Δ splits
     componentwise. *)
  let delta (a1, b1) (a2, b2) = (A.delta a1 a2, B.delta b1 b2)
  let codec = Crdt_wire.Codec.pair A.codec B.codec
  let pp ppf (a, b) = Format.fprintf ppf "@[<1>(%a,@ %a)@]" A.pp a B.pp b
end
