(** Bounded counter (BCounter): a counter that never goes below zero,
    built purely from grow-only map compositions (Balegas et al.,
    "Extending Eventually Consistent Cloud Databases for Enforcing
    Numeric Invariants").

    State is a pair of grow-only maps:

    - [rights : (i, j) ↪→ ℕ] — cumulative rights produced by [i] for [j];
      an increment by [i] grows [rights (i, i)], a transfer from [i] to
      [j] grows [rights (i, j)];
    - [consumed : i ↪→ ℕ] — cumulative decrements spent by [i].

    Replica [i] may decrement only up to its {e local rights}
    [Σⱼ rights (j, i) − Σⱼ≠ᵢ rights (i, j) − consumed i], which makes the
    non-negativity invariant hold globally without coordination.  Both
    components only grow, so the state is a product of map lattices and
    inherits decompositions and optimal deltas.

    Caveat: [Dec]/[Transfer] decide against the {e local} state (they are
    no-ops when rights are insufficient), so this data type must be
    replicated by shipping {e state or deltas}; raw operation shipping
    (op-based synchronization) could evaluate the no-op decision
    differently at different replicas. *)

module Edge_key = struct
  type t = int * int

  let compare = compare
  let byte_size _ = 2 * Replica_id.id_bytes

  let codec =
    Crdt_wire.Codec.pair Crdt_wire.Codec.varint Crdt_wire.Codec.varint

  let pp ppf (i, j) = Format.fprintf ppf "%d→%d" i j
end

module Rights = Map_lattice.Make (Edge_key) (Chain.Max_int)
module Consumed = Map_lattice.Make (Gmap.Int_key) (Chain.Max_int)
module P = Product.Make (Rights) (Consumed)
include P

type op =
  | Inc of int  (** produce [n] new rights locally. *)
  | Dec of int  (** consume [n] rights; no-op when insufficient. *)
  | Transfer of { amount : int; target : Replica_id.t }
      (** move rights to another replica; no-op when insufficient. *)

(* Local rights available to replica [i]. *)
let local_rights i ((rights, consumed) : t) =
  let received =
    Rights.fold
      (fun (_, dst) v acc -> if dst = i then acc + v else acc)
      rights 0
  in
  let given =
    Rights.fold
      (fun (src, dst) v acc ->
        if src = i && dst <> i then acc + v else acc)
      rights 0
  in
  received - given - Consumed.find i consumed

(* Only diagonal entries mint value: off-diagonal entries move existing
   rights between replicas. *)
let value ((rights, consumed) : t) =
  Rights.fold (fun (s, d) v acc -> if s = d then acc + v else acc) rights 0
  - Consumed.fold (fun _ v acc -> acc + v) consumed 0

let mutate op i ((rights, consumed) as x : t) : t =
  let i = Replica_id.to_int i in
  match op with
  | Inc n ->
      if n < 1 then invalid_arg "Bounded_counter.inc: amount must be >= 1";
      (Rights.set (i, i) (Rights.find (i, i) rights + n) rights, consumed)
  | Dec n ->
      if n < 1 then invalid_arg "Bounded_counter.dec: amount must be >= 1";
      if local_rights i x < n then x
      else (rights, Consumed.set i (Consumed.find i consumed + n) consumed)
  | Transfer { amount; target } ->
      let j = Replica_id.to_int target in
      if amount < 1 then
        invalid_arg "Bounded_counter.transfer: amount must be >= 1";
      if local_rights i x < amount || j = i then x
      else
        ( Rights.set (i, j) (Rights.find (i, j) rights + amount) rights,
          consumed )

let delta_mutate op i x =
  let rights, consumed = x in
  let i' = Replica_id.to_int i in
  match op with
  | Inc n ->
      if n < 1 then invalid_arg "Bounded_counter.inc: amount must be >= 1";
      (Rights.singleton (i', i') (Rights.find (i', i') rights + n),
       Consumed.bottom)
  | Dec n ->
      if n < 1 then invalid_arg "Bounded_counter.dec: amount must be >= 1";
      if local_rights i' x < n then bottom
      else
        ( Rights.bottom,
          Consumed.singleton i' (Consumed.find i' consumed + n) )
  | Transfer { amount; target } ->
      let j = Replica_id.to_int target in
      if amount < 1 then
        invalid_arg "Bounded_counter.transfer: amount must be >= 1";
      if local_rights i' x < amount || j = i' then bottom
      else
        ( Rights.singleton (i', j) (Rights.find (i', j) rights + amount),
          Consumed.bottom )

let prepare op _ _ = op

let op_weight = function Inc _ | Dec _ | Transfer _ -> 1
let op_byte_size = function
  | Inc _ | Dec _ -> 8
  | Transfer _ -> 8 + Replica_id.id_bytes

let op_codec =
  let open Crdt_wire.Codec in
  union ~name:"bounded_counter_op"
    [
      case 0 int
        (function Inc n -> Some n | Dec _ | Transfer _ -> None)
        (fun n -> Inc n);
      case 1 int
        (function Dec n -> Some n | Inc _ | Transfer _ -> None)
        (fun n -> Dec n);
      case 2 (pair int Replica_id.codec)
        (function
          | Transfer { amount; target } -> Some (amount, target)
          | Inc _ | Dec _ -> None)
        (fun (amount, target) -> Transfer { amount; target });
    ]

let pp_op ppf = function
  | Inc n -> Format.fprintf ppf "inc(%d)" n
  | Dec n -> Format.fprintf ppf "dec(%d)" n
  | Transfer { amount; target } ->
      Format.fprintf ppf "transfer(%d→%a)" amount Replica_id.pp target

let inc ?(n = 1) i x = mutate (Inc n) i x
let dec ?(n = 1) i x = mutate (Dec n) i x
let transfer ~amount ~target i x = mutate (Transfer { amount; target }) i x

(** [rights_of i x] is the number of decrements replica [i] can still
    perform locally. *)
let rights_of i x = local_rights (Replica_id.to_int i) x
