(** Grow-only map of CRDTs: [GMap⟨K, V⟩ = K ↪→ V] for any embedded CRDT
    [V].

    Keys are never removed; updating a key inflates that key's value
    lattice.  Deltas localize naturally: the optimal delta of a key update
    is the singleton map carrying the embedded value's optimal delta, so
    δ-mutator optimality composes through the map (Appendix C's [↪→]
    rule). *)

module Make (K : Map_lattice.KEY) (V : Lattice_intf.CRDT) : sig
  type op = Apply of K.t * V.op
      (** [Apply (k, vop)] runs [vop] on the value stored under [k]
          (starting from [V.bottom] when the key is absent). *)

  include Lattice_intf.CRDT with type op := op

  val empty : t
  val find : K.t -> t -> V.t
  val mem : K.t -> t -> bool
  val cardinal : t -> int
  val bindings : t -> (K.t * V.t) list
  val keys : t -> K.t list
  val of_list : (K.t * V.t) list -> t
  val singleton : K.t -> V.t -> t
  val apply : K.t -> V.op -> Replica_id.t -> t -> t
  val apply_delta : K.t -> V.op -> Replica_id.t -> t -> t
end = struct
  module M = Map_lattice.Make (K) (V)
  include M

  type op = Apply of K.t * V.op

  let mutate (Apply (k, vop)) i m = set k (V.mutate vop i (find k m)) m

  let delta_mutate (Apply (k, vop)) i m =
    singleton k (V.delta_mutate vop i (find k m))

  let prepare (Apply (k, vop)) i m = Apply (k, V.prepare vop i (find k m))

  let op_weight (Apply (_, vop)) = V.op_weight vop
  let op_byte_size (Apply (k, vop)) = K.byte_size k + V.op_byte_size vop

  let op_codec =
    Crdt_wire.Codec.conv
      (fun (Apply (k, vop)) -> (k, vop))
      (fun (k, vop) -> Apply (k, vop))
      (Crdt_wire.Codec.pair K.codec V.op_codec)

  let pp_op ppf (Apply (k, vop)) =
    Format.fprintf ppf "@[<1>%a.%a@]" K.pp k V.pp_op vop

  let mem k m = not (V.is_bottom (find k m))
  let apply k vop i m = mutate (Apply (k, vop)) i m
  let apply_delta k vop i m = delta_mutate (Apply (k, vop)) i m
end

(** Integer keys, accounted at 8 bytes. *)
module Int_key = struct
  type t = int

  let compare = Int.compare
  let byte_size _ = 8
  let codec = Crdt_wire.Codec.int
  let pp ppf = Format.fprintf ppf "%d"
end

(** String keys, accounted at their length. *)
module String_key = struct
  type t = string

  let compare = String.compare
  let byte_size = String.length
  let codec = Crdt_wire.Codec.string
  let pp ppf = Format.fprintf ppf "%S"
end

(** The GMap K% micro-benchmark instance (Table I): integer keys mapped to
    a growing version number; each "key update" bumps the key's version. *)
module Versioned = Make (Int_key) (Version)
