(** Resettable counter: [Lexico(ℕ, GCounter)] — the Cassandra-counter
    idiom of Appendix B [37].

    Increments inflate the current epoch's grow-only counter; a reset
    opens a fresh epoch with a cleared counter and wins over the
    increments it has observed (and over concurrent increments to those
    epochs). *)

type op = Inc of int | Reset

include
  Lattice_intf.CRDT with type t = int * Gcounter.t and type op := op

val inc : ?n:int -> Replica_id.t -> t -> t
val reset : Replica_id.t -> t -> t

val value : t -> int
(** Sum of increments since the last reset. *)

val epoch : t -> int
(** Number of resets the state has absorbed. *)
