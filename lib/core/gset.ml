(** Grow-only set (Fig. 2b): [GSet⟨E⟩ = P(E)].

    [delta_mutate] is the paper's optimal δ-mutator: it returns the
    singleton only when the element is new, and [⊥] otherwise.  The naive
    δ-mutator of the original delta-CRDT paper [13] — which always returns
    the singleton — is kept as {!add_delta_naive} so benches can ablate the
    effect of δ-mutator optimality (Section III-B). *)

module Make (E : Powerset.ELT) : sig
  include Lattice_intf.CRDT with type op = E.t

  val empty : t
  val add : E.t -> Replica_id.t -> t -> t
  val add_delta : E.t -> t -> t

  val add_delta_naive : E.t -> t -> t
  (** The non-optimal δ-mutator from [13]: always [{e}], even when
      [e ∈ s]. *)

  val mem : E.t -> t -> bool
  val elements : t -> E.t list
  val cardinal : t -> int
  val of_list : E.t list -> t
  val singleton_of : E.t -> t
end = struct
  module P = Powerset.Make (E)
  include P

  type op = E.t

  let mutate e _i s = P.add e s
  let delta_mutate e _i s = if P.mem e s then P.bottom else P.singleton e
  let prepare e _ _ = e
  let op_weight _ = 1
  let op_byte_size = E.byte_size
  let op_codec = E.codec
  let pp_op = E.pp

  let add e i s = mutate e i s
  let add_delta e s = delta_mutate e (Replica_id.of_int 0) s
  let add_delta_naive e _s = P.singleton e
  let singleton_of = P.singleton
  let mem = P.mem
  let elements = P.elements
  let cardinal = P.cardinal
  let of_list = P.of_list
  let empty = P.empty
end

(** Ready-made instances used by benchmarks and examples. *)
module Of_int = Make (Powerset.Int_elt)

module Of_string = Make (Powerset.String_elt)

(** Ablation instance (Section III-B): identical to {!Of_int} except that
    its δ-mutator is the {e naive} one from the original delta-CRDT paper
    [13], which returns the singleton even for elements already present.
    Used by the benchmark harness to quantify what δ-mutator optimality
    alone contributes. *)
module Naive_of_int = struct
  include Of_int

  let delta_mutate e _i _s = singleton_of e
end
