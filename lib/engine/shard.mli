(** The parallel execution layer shared by every transport: a Domain
    work-pool ({!Pool}) plus the sharded Driver scheduler ({!Make})
    that partitions tick-by-source / handle-by-destination with
    deterministic shard-order merges.

    Shard [s] of [w] owns the contiguous node range [s·n/w, (s+1)·n/w).
    Contiguity makes the shard-order merge of the per-shard outboxes
    equal to the ascending producing-node order a sequential engine
    uses, so per-destination message order — and everything downstream
    of it — is independent of the pool width.  Each shard tallies into
    its own {!Trace.counters}; folded in shard order the totals are
    bit-identical at every [domains] setting. *)

(** Fixed work-pool over OCaml 5 domains (stdlib only).

    [size - 1] resident worker domains plus the caller's domain execute
    jobs of [size] shards; a pool of size 1 spawns nothing and runs jobs
    inline, so sequential and parallel callers share one code path. *)
module Pool : sig
  type t

  val create : int -> t
  (** Spawn a pool of [size] shards (1 <= size <= 64). *)

  val size : t -> int

  val run : t -> (int -> unit) -> unit
  (** [run t job] executes [job shard] for every shard [0 .. size t - 1]
      (shard 0 on the calling domain) and returns once all shards have
      finished.  A shard's exception is re-raised after the barrier. *)

  val shutdown : t -> unit
  (** Stop and join the worker domains.  Idempotent. *)

  val with_pool : int -> (t -> 'a) -> 'a
  (** [with_pool size f] runs [f] with a fresh pool and always shuts it
      down, including on exception. *)
end

module Make (P : Crdt_proto.Protocol_intf.PROTOCOL) : sig
  module D : module type of Driver.Make (P)

  type t
  (** [n] Driver shards scheduled over a {!Pool}: per-shard outboxes,
      per-destination inboxes, per-shard counting sinks. *)

  val create :
    ?sink:Trace.sink ->
    ?exact_bytes:bool ->
    ?changed:(P.crdt -> P.crdt -> bool) ->
    pool:Pool.t ->
    n:int ->
    neighbors:(int -> int list) ->
    unit ->
    t
  (** Build the driver array.  [neighbors i] lists node [i]'s topology
      neighbours.  [sink] is teed onto every shard's counting sink; with
      a pool wider than 1 it runs on worker domains, so callers that
      attach one must either restrict to one domain (the simulator
      does) or supply a thread-safe sink. *)

  val n : t -> int
  val shards : t -> int
  val pool : t -> Pool.t
  val lo : t -> int -> int
  (** First node of a shard's contiguous range. *)

  val hi : t -> int -> int
  (** One past the last node of a shard's range. *)

  val shard_of : t -> int -> int
  (** The shard owning a node. *)

  val drivers : t -> D.t array
  val driver : t -> int -> D.t
  val sink : t -> shard:int -> Trace.sink
  val inbox : t -> int -> (int * P.message) Dynbuf.t
  (** Destination [d]'s pending [(src, msg)] wave. *)

  val outbox : t -> shard:int -> (int * (int * P.message)) Dynbuf.t
  (** Shard [s]'s produced [(dst, (src, msg))] entries, production
      order. *)

  val counters : t -> Trace.counters array
  (** The per-shard tallies, in shard order. *)

  val run_shards : t -> (int -> unit) -> unit
  (** Run a custom shard job on the pool (the simulator's fault-aware
      delivery).  The job for shard [s] must touch only nodes in
      [lo s, hi s) and shard-[s] buffers. *)

  val tick : t -> round:int -> unit
  (** Parallel tick of every driver; emitted messages land in the
      producing shard's outbox. *)

  val route : t -> bool
  (** Merge outboxes into destination inboxes, sequentially in shard
      order; returns whether anything is now pending. *)

  val deliver_wave : t -> round:int -> unit
  (** Parallel fault-free delivery of every pending inbox; replies go
      to the shard outboxes (the next wave). *)

  val sync_round : t -> round:int -> unit
  (** [tick] then route/deliver waves until the network drains. *)

  val snapshot_memory : t -> unit
  (** Parallel per-shard memory sums into the shard counters'
      [memory_*] fields. *)

  val reset_counters : t -> unit

  val total_counters : t -> Trace.counters
  (** Fold the shard counters, in shard order, into one fresh record
      ([sync_rounds] capped at 1 — it is a per-round flag). *)

  val state : t -> int -> P.crdt
  val all_equal : equal:(P.crdt -> P.crdt -> bool) -> t -> bool
end
