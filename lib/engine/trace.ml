(* Structured trace layer.  See trace.mli for the contract; the one
   design rule here is that the hot path (a sink call per message) must
   not allocate, which is why a sink is a record of closures over plain
   labeled ints rather than an [event -> unit] consumer. *)

type event =
  | Meta of { note : string }
  | Tick of { node : int; round : int }
  | Send of {
      src : int;
      dest : int;
      round : int;
      weight : int;
      metadata : int;
      payload_bytes : int;
      metadata_bytes : int;
      wire_bytes : int;
    }
  | Recv of {
      node : int;
      src : int;
      round : int;
      weight : int;
      metadata : int;
      payload_bytes : int;
      metadata_bytes : int;
      wire_bytes : int;
    }
  | Deliver of { node : int; src : int; round : int }
  | Drop of { node : int; src : int; round : int }
  | Hold of { node : int; src : int; round : int }
  | Cut of { node : int; src : int; round : int }
  | Crash of { node : int; round : int }
  | Recover of { node : int; round : int }
  | Done of { node : int; round : int }

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let event_to_json = function
  | Meta { note } -> Printf.sprintf {|{"ev":"meta","note":"%s"}|} (json_escape note)
  | Tick { node; round } ->
      Printf.sprintf {|{"ev":"tick","node":%d,"round":%d}|} node round
  | Send
      { src; dest; round; weight; metadata; payload_bytes; metadata_bytes;
        wire_bytes } ->
      Printf.sprintf
        {|{"ev":"send","src":%d,"dest":%d,"round":%d,"weight":%d,"metadata":%d,"payload_bytes":%d,"metadata_bytes":%d,"wire_bytes":%d}|}
        src dest round weight metadata payload_bytes metadata_bytes wire_bytes
  | Recv
      { node; src; round; weight; metadata; payload_bytes; metadata_bytes;
        wire_bytes } ->
      Printf.sprintf
        {|{"ev":"recv","node":%d,"src":%d,"round":%d,"weight":%d,"metadata":%d,"payload_bytes":%d,"metadata_bytes":%d,"wire_bytes":%d}|}
        node src round weight metadata payload_bytes metadata_bytes wire_bytes
  | Deliver { node; src; round } ->
      Printf.sprintf {|{"ev":"deliver","node":%d,"src":%d,"round":%d}|} node src
        round
  | Drop { node; src; round } ->
      Printf.sprintf {|{"ev":"drop","node":%d,"src":%d,"round":%d}|} node src
        round
  | Hold { node; src; round } ->
      Printf.sprintf {|{"ev":"hold","node":%d,"src":%d,"round":%d}|} node src
        round
  | Cut { node; src; round } ->
      Printf.sprintf {|{"ev":"cut","node":%d,"src":%d,"round":%d}|} node src
        round
  | Crash { node; round } ->
      Printf.sprintf {|{"ev":"crash","node":%d,"round":%d}|} node round
  | Recover { node; round } ->
      Printf.sprintf {|{"ev":"recover","node":%d,"round":%d}|} node round
  | Done { node; round } ->
      Printf.sprintf {|{"ev":"done","node":%d,"round":%d}|} node round

type sink = {
  detailed : bool;
  meta : string -> unit;
  tick : node:int -> round:int -> unit;
  send :
    src:int ->
    dest:int ->
    round:int ->
    weight:int ->
    metadata:int ->
    payload_bytes:int ->
    metadata_bytes:int ->
    wire_bytes:int ->
    unit;
  recv :
    node:int ->
    src:int ->
    round:int ->
    weight:int ->
    metadata:int ->
    payload_bytes:int ->
    metadata_bytes:int ->
    wire_bytes:int ->
    unit;
  deliver : node:int -> src:int -> round:int -> unit;
  drop : node:int -> src:int -> round:int -> unit;
  hold : node:int -> src:int -> round:int -> unit;
  cut : node:int -> src:int -> round:int -> unit;
  crash : node:int -> round:int -> unit;
  recover : node:int -> round:int -> unit;
  finish : node:int -> round:int -> unit;
}

let null =
  {
    detailed = false;
    meta = (fun _ -> ());
    tick = (fun ~node:_ ~round:_ -> ());
    send =
      (fun ~src:_ ~dest:_ ~round:_ ~weight:_ ~metadata:_ ~payload_bytes:_
           ~metadata_bytes:_ ~wire_bytes:_ -> ());
    recv =
      (fun ~node:_ ~src:_ ~round:_ ~weight:_ ~metadata:_ ~payload_bytes:_
           ~metadata_bytes:_ ~wire_bytes:_ -> ());
    deliver = (fun ~node:_ ~src:_ ~round:_ -> ());
    drop = (fun ~node:_ ~src:_ ~round:_ -> ());
    hold = (fun ~node:_ ~src:_ ~round:_ -> ());
    cut = (fun ~node:_ ~src:_ ~round:_ -> ());
    crash = (fun ~node:_ ~round:_ -> ());
    recover = (fun ~node:_ ~round:_ -> ());
    finish = (fun ~node:_ ~round:_ -> ());
  }

type counters = {
  mutable sent : int;
  mutable delivered : int;
  mutable messages : int;
  mutable payload : int;
  mutable metadata : int;
  mutable payload_bytes : int;
  mutable metadata_bytes : int;
  mutable wire_bytes : int;
  mutable ops_applied : int;
  mutable dropped : int;
  mutable held : int;
  mutable partitioned : int;
  mutable memory_weight : int;
  mutable memory_bytes : int;
  mutable metadata_memory_bytes : int;
  mutable writes : int;
  mutable sync_rounds : int;
  mutable digest_bytes : int;
  mutable last_sync_round : int;
      (* internal: last round already counted in [sync_rounds]. *)
}

let make_counters () =
  {
    sent = 0;
    delivered = 0;
    messages = 0;
    payload = 0;
    metadata = 0;
    payload_bytes = 0;
    metadata_bytes = 0;
    wire_bytes = 0;
    ops_applied = 0;
    dropped = 0;
    held = 0;
    partitioned = 0;
    memory_weight = 0;
    memory_bytes = 0;
    metadata_memory_bytes = 0;
    writes = 0;
    sync_rounds = 0;
    digest_bytes = 0;
    last_sync_round = -1;
  }

let reset_counters c =
  c.sent <- 0;
  c.delivered <- 0;
  c.messages <- 0;
  c.payload <- 0;
  c.metadata <- 0;
  c.payload_bytes <- 0;
  c.metadata_bytes <- 0;
  c.wire_bytes <- 0;
  c.ops_applied <- 0;
  c.dropped <- 0;
  c.held <- 0;
  c.partitioned <- 0;
  c.memory_weight <- 0;
  c.memory_bytes <- 0;
  c.metadata_memory_bytes <- 0;
  c.writes <- 0;
  c.sync_rounds <- 0;
  c.digest_bytes <- 0;
  c.last_sync_round <- -1

let counting c =
  {
    null with
    send =
      (fun ~src:_ ~dest:_ ~round:_ ~weight:_ ~metadata:_ ~payload_bytes:_
           ~metadata_bytes:_ ~wire_bytes:_ -> c.sent <- c.sent + 1);
    recv =
      (fun ~node:_ ~src:_ ~round ~weight ~metadata ~payload_bytes
           ~metadata_bytes ~wire_bytes ->
        c.messages <- c.messages + 1;
        c.payload <- c.payload + weight;
        c.metadata <- c.metadata + metadata;
        c.payload_bytes <- c.payload_bytes + payload_bytes;
        c.metadata_bytes <- c.metadata_bytes + metadata_bytes;
        c.wire_bytes <- c.wire_bytes + wire_bytes;
        (* Pure control traffic — digests, sync requests, IBLT cells,
           acks: metadata with no payload.  Tally its bytes separately
           and count each round that carries any of it as a sync
           round. *)
        if weight = 0 && metadata > 0 then begin
          c.digest_bytes <-
            c.digest_bytes
            + (if wire_bytes > 0 then wire_bytes
               else payload_bytes + metadata_bytes);
          if round <> c.last_sync_round then begin
            c.sync_rounds <- c.sync_rounds + 1;
            c.last_sync_round <- round
          end
        end);
    deliver = (fun ~node:_ ~src:_ ~round:_ -> c.delivered <- c.delivered + 1);
    drop = (fun ~node:_ ~src:_ ~round:_ -> c.dropped <- c.dropped + 1);
    hold = (fun ~node:_ ~src:_ ~round:_ -> c.held <- c.held + 1);
    cut = (fun ~node:_ ~src:_ ~round:_ -> c.partitioned <- c.partitioned + 1);
  }

let tee a b =
  {
    detailed = a.detailed || b.detailed;
    meta = (fun s -> a.meta s; b.meta s);
    tick = (fun ~node ~round -> a.tick ~node ~round; b.tick ~node ~round);
    send =
      (fun ~src ~dest ~round ~weight ~metadata ~payload_bytes ~metadata_bytes
           ~wire_bytes ->
        a.send ~src ~dest ~round ~weight ~metadata ~payload_bytes
          ~metadata_bytes ~wire_bytes;
        b.send ~src ~dest ~round ~weight ~metadata ~payload_bytes
          ~metadata_bytes ~wire_bytes);
    recv =
      (fun ~node ~src ~round ~weight ~metadata ~payload_bytes ~metadata_bytes
           ~wire_bytes ->
        a.recv ~node ~src ~round ~weight ~metadata ~payload_bytes
          ~metadata_bytes ~wire_bytes;
        b.recv ~node ~src ~round ~weight ~metadata ~payload_bytes
          ~metadata_bytes ~wire_bytes);
    deliver =
      (fun ~node ~src ~round ->
        a.deliver ~node ~src ~round;
        b.deliver ~node ~src ~round);
    drop =
      (fun ~node ~src ~round ->
        a.drop ~node ~src ~round;
        b.drop ~node ~src ~round);
    hold =
      (fun ~node ~src ~round ->
        a.hold ~node ~src ~round;
        b.hold ~node ~src ~round);
    cut =
      (fun ~node ~src ~round ->
        a.cut ~node ~src ~round;
        b.cut ~node ~src ~round);
    crash = (fun ~node ~round -> a.crash ~node ~round; b.crash ~node ~round);
    recover =
      (fun ~node ~round -> a.recover ~node ~round; b.recover ~node ~round);
    finish =
      (fun ~node ~round -> a.finish ~node ~round; b.finish ~node ~round);
  }

let event_sink ?(detailed = true) f =
  {
    detailed;
    meta = (fun note -> f (Meta { note }));
    tick = (fun ~node ~round -> f (Tick { node; round }));
    send =
      (fun ~src ~dest ~round ~weight ~metadata ~payload_bytes ~metadata_bytes
           ~wire_bytes ->
        f
          (Send
             {
               src;
               dest;
               round;
               weight;
               metadata;
               payload_bytes;
               metadata_bytes;
               wire_bytes;
             }));
    recv =
      (fun ~node ~src ~round ~weight ~metadata ~payload_bytes ~metadata_bytes
           ~wire_bytes ->
        f
          (Recv
             {
               node;
               src;
               round;
               weight;
               metadata;
               payload_bytes;
               metadata_bytes;
               wire_bytes;
             }));
    deliver = (fun ~node ~src ~round -> f (Deliver { node; src; round }));
    drop = (fun ~node ~src ~round -> f (Drop { node; src; round }));
    hold = (fun ~node ~src ~round -> f (Hold { node; src; round }));
    cut = (fun ~node ~src ~round -> f (Cut { node; src; round }));
    crash = (fun ~node ~round -> f (Crash { node; round }));
    recover = (fun ~node ~round -> f (Recover { node; round }));
    finish = (fun ~node ~round -> f (Done { node; round }));
  }

let jsonl oc =
  let emit ev =
    output_string oc (event_to_json ev);
    output_char oc '\n';
    match ev with Meta _ | Done _ -> flush oc | _ -> ()
  in
  event_sink ~detailed:true emit
