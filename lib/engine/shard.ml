(** The parallel execution layer: a Domain work-pool plus the sharded
    Driver scheduler every transport shares.

    {!Pool} is the raw barrier primitive (moved here from the
    simulator, which grew it in PR 2): [size - 1] resident worker
    domains parked on a condition variable plus the caller's domain,
    running one job per barrier.

    {!Make} owns an array of {!Driver} shards and schedules them the
    way the simulator always has — tick-by-source, handle-by-
    destination — so the partitioning, the per-shard {!Trace} counting
    sinks and the deterministic shard-order outbox merge live in one
    place and both the simulator ([Crdt_sim.Runner]) and the socket
    runtime ([Crdt_net.Runtime]) are clients of the same scheduler.

    {2 Determinism contract}

    Shard [s] of [w] owns the contiguous node range
    [s·n/w, (s+1)·n/w).  Contiguity makes the shard-order merge of the
    per-shard outboxes ({!Make.route}) equal to the ascending
    producing-node order a sequential engine uses, so per-destination
    message order — and therefore every downstream PRNG draw, byte
    count and delivered state — is independent of the domain count.
    Each shard tallies into its own {!Trace.counters}; folding them in
    shard order yields totals that are bit-identical at every pool
    width. *)

module Pool = struct
  (* [size - 1] resident worker domains plus the caller's domain run
     one job per barrier; workers are spawned once and parked on a
     condition variable between jobs, so the per-round cost of
     parallelism is two mutex handshakes, not a [Domain.spawn].  A pool
     of size 1 never spawns a domain and [run] degenerates to a plain
     call — sequential and parallel clients share one code path. *)

  type t = {
    size : int;
    mutex : Mutex.t;
    work : Condition.t;  (** signalled when a new job is published. *)
    finished : Condition.t;  (** signalled when the last shard completes. *)
    mutable job : int -> unit;
    mutable epoch : int;  (** bumped per job; workers run each epoch once. *)
    mutable pending : int;  (** worker shards still running this epoch. *)
    mutable stop : bool;
    mutable failed : exn option;
        (** first worker exception, re-raised by [run]. *)
    mutable domains : unit Domain.t list;
  }

  let size t = t.size

  let worker t shard =
    let seen = ref 0 in
    let rec loop () =
      Mutex.lock t.mutex;
      while t.epoch = !seen && not t.stop do
        Condition.wait t.work t.mutex
      done;
      if t.stop then Mutex.unlock t.mutex
      else begin
        seen := t.epoch;
        let job = t.job in
        Mutex.unlock t.mutex;
        (try job shard
         with e ->
           Mutex.lock t.mutex;
           if t.failed = None then t.failed <- Some e;
           Mutex.unlock t.mutex);
        Mutex.lock t.mutex;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.signal t.finished;
        Mutex.unlock t.mutex;
        loop ()
      end
    in
    loop ()

  let create size =
    if size < 1 then invalid_arg "Pool.create: size must be >= 1";
    (* The OCaml runtime caps live domains at 128. *)
    if size > 64 then invalid_arg "Pool.create: size must be <= 64";
    let t =
      {
        size;
        mutex = Mutex.create ();
        work = Condition.create ();
        finished = Condition.create ();
        job = ignore;
        epoch = 0;
        pending = 0;
        stop = false;
        failed = None;
        domains = [];
      }
    in
    t.domains <-
      List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
    t

  (** Run [job shard] for every shard [0 .. size-1]; returns when all
      have completed.  Exceptions raised by any shard are re-raised here
      (the caller's shard first). *)
  let run t job =
    if t.size = 1 then job 0
    else begin
      Mutex.lock t.mutex;
      t.job <- job;
      t.pending <- t.size - 1;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      let caller = (try job 0; None with e -> Some e) in
      Mutex.lock t.mutex;
      while t.pending > 0 do
        Condition.wait t.finished t.mutex
      done;
      let from_worker = t.failed in
      t.failed <- None;
      Mutex.unlock t.mutex;
      match (caller, from_worker) with
      | Some e, _ | None, Some e -> raise e
      | None, None -> ()
    end

  let shutdown t =
    if t.domains <> [] then begin
      Mutex.lock t.mutex;
      t.stop <- true;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      List.iter Domain.join t.domains;
      t.domains <- []
    end

  let with_pool size f =
    let t = create size in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end

module Make (P : Crdt_proto.Protocol_intf.PROTOCOL) = struct
  module D = Driver.Make (P)

  type t = {
    n : int;
    shards : int;
    pool : Pool.t;
    drivers : D.t array;
    inbox : (int * P.message) Dynbuf.t array;
        (** per-destination [(src, msg)] pending this wave. *)
    out : (int * (int * P.message)) Dynbuf.t array;
        (** per-shard [(dst, (src, msg))] produced this wave, in
            production order. *)
    counters : Trace.counters array;  (** per-shard tallies. *)
    sinks : Trace.sink array;
        (** per-shard sink: the shard's counting sink, teed with the
            user sink when one was supplied. *)
  }

  (* Shard [s] owns the contiguous node range [lo s, hi s). *)
  let lo t s = s * t.n / t.shards
  let hi t s = (s + 1) * t.n / t.shards

  let create ?sink ?exact_bytes ?changed ~pool ~n ~neighbors () =
    if n < 1 then invalid_arg "Shard.create: n must be >= 1";
    let shards = Pool.size pool in
    let counters = Array.init shards (fun _ -> Trace.make_counters ()) in
    let sinks =
      Array.init shards (fun s ->
          let counting = Trace.counting counters.(s) in
          match sink with
          | None -> counting
          | Some user -> Trace.tee counting user)
    in
    (* Node → owning shard, to hand each driver its shard's sink. *)
    let shard_of =
      let a = Array.make n 0 in
      for s = 0 to shards - 1 do
        for i = s * n / shards to ((s + 1) * n / shards) - 1 do
          a.(i) <- s
        done
      done;
      a
    in
    let drivers =
      Array.init n (fun i ->
          D.create ~sink:sinks.(shard_of.(i)) ?exact_bytes ?changed ~id:i
            ~neighbors:(neighbors i) ~total:n ())
    in
    {
      n;
      shards;
      pool;
      drivers;
      inbox = Array.init n (fun _ -> Dynbuf.create ());
      out = Array.init shards (fun _ -> Dynbuf.create ());
      counters;
      sinks;
    }

  let n t = t.n
  let shards t = t.shards
  let pool t = t.pool
  let drivers t = t.drivers
  let driver t i = t.drivers.(i)

  let shard_of t i =
    (* Ranges are contiguous and ascending; start from the integer
       estimate and walk to the owner (at most one step off). *)
    let rec fix s =
      if lo t s > i then fix (s - 1)
      else if hi t s <= i then fix (s + 1)
      else s
    in
    fix (i * t.shards / t.n)

  let sink t ~shard = t.sinks.(shard)
  let inbox t d = t.inbox.(d)
  let outbox t ~shard = t.out.(shard)
  let counters t = t.counters
  let run_shards t job = Pool.run t.pool job

  (* Tick phase: shard-local; messages go to the shard's outbox (the
     driver skips crashed nodes itself). *)
  let tick t ~round =
    Pool.run t.pool (fun s ->
        let out = t.out.(s) in
        for i = lo t s to hi t s - 1 do
          D.tick t.drivers.(i) ~round ~emit:(fun ~dest msg ->
              Dynbuf.push out (dest, (i, msg)))
        done)

  (* Route every outbox entry to its destination inbox.  Sequential, in
     shard order; returns whether anything is pending. *)
  let route t =
    let any = ref false in
    Array.iter
      (fun out ->
        if not (Dynbuf.is_empty out) then begin
          any := true;
          Dynbuf.iter
            (fun (dst, payload) -> Dynbuf.push t.inbox.(dst) payload)
            out;
          Dynbuf.clear out
        end)
      t.out;
    !any

  (* Fault-free delivery of one wave: every pending message goes
     through its destination's driver; replies land in the shard outbox
     for the next wave.  Transports with a fault model (the simulator)
     run their own per-destination logic via [run_shards] instead. *)
  let deliver_wave t ~round =
    Pool.run t.pool (fun s ->
        let out = t.out.(s) in
        for d = lo t s to hi t s - 1 do
          let inb = t.inbox.(d) in
          let len = Dynbuf.length inb in
          if len > 0 then begin
            let drv = t.drivers.(d) in
            let emit ~dest msg = Dynbuf.push out (dest, (d, msg)) in
            for k = 0 to len - 1 do
              let src, msg = Dynbuf.get inb k in
              D.deliver drv ~round ~src ~emit msg
            done;
            Dynbuf.clear inb
          end
        done)

  (** Tick then deliver waves until the network drains — the fault-free
      round loop a direct client (or a test) drives. *)
  let sync_round t ~round =
    tick t ~round;
    while route t do
      deliver_wave t ~round
    done

  (* Post-round memory snapshot: parallel per-shard sums into the shard
     counters. *)
  let snapshot_memory t =
    Pool.run t.pool (fun s ->
        let c = t.counters.(s) in
        let w = ref 0 and b = ref 0 and mb = ref 0 in
        for i = lo t s to hi t s - 1 do
          let drv = t.drivers.(i) in
          w := !w + D.memory_weight drv;
          b := !b + D.memory_bytes drv;
          mb := !mb + D.metadata_memory_bytes drv
        done;
        c.memory_weight <- !w;
        c.memory_bytes <- !b;
        c.metadata_memory_bytes <- !mb)

  let reset_counters t = Array.iter Trace.reset_counters t.counters

  (** Fold the per-shard counters, in shard order, into one fresh
      total.  [sync_rounds] is capped at 1: per-shard counters are
      reset every round, so each contributes 0 or 1 and the total is
      their OR — a round either synchronized or did not. *)
  let total_counters t =
    let acc = Trace.make_counters () in
    Array.iter
      (fun (c : Trace.counters) ->
        acc.sent <- acc.sent + c.sent;
        acc.delivered <- acc.delivered + c.delivered;
        acc.messages <- acc.messages + c.messages;
        acc.payload <- acc.payload + c.payload;
        acc.metadata <- acc.metadata + c.metadata;
        acc.payload_bytes <- acc.payload_bytes + c.payload_bytes;
        acc.metadata_bytes <- acc.metadata_bytes + c.metadata_bytes;
        acc.wire_bytes <- acc.wire_bytes + c.wire_bytes;
        acc.ops_applied <- acc.ops_applied + c.ops_applied;
        acc.dropped <- acc.dropped + c.dropped;
        acc.held <- acc.held + c.held;
        acc.partitioned <- acc.partitioned + c.partitioned;
        acc.memory_weight <- acc.memory_weight + c.memory_weight;
        acc.memory_bytes <- acc.memory_bytes + c.memory_bytes;
        acc.metadata_memory_bytes <-
          acc.metadata_memory_bytes + c.metadata_memory_bytes;
        acc.writes <- acc.writes + c.writes;
        acc.sync_rounds <- min 1 (acc.sync_rounds + c.sync_rounds);
        acc.digest_bytes <- acc.digest_bytes + c.digest_bytes;
        acc.last_sync_round <- max acc.last_sync_round c.last_sync_round)
      t.counters;
    acc

  let state t i = D.state t.drivers.(i)

  let all_equal ~equal t =
    let first = D.state t.drivers.(0) in
    Array.for_all (fun drv -> equal (D.state drv) first) t.drivers
end
