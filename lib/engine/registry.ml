(* Protocol × CRDT registry; see registry.mli. *)

open Crdt_core
open Crdt_proto

module type PROTO_MAKER = sig
  val name : string
  val doc : string

  module Make (C : Protocol_intf.CRDT) :
    Protocol_intf.PROTOCOL with type crdt = C.t and type op = C.op
end

type proto = (module PROTO_MAKER)

let protocols : proto list =
  [
    (module struct
      let name = "state-based"
      let doc = "ship the full state to a neighbor every interval"

      module Make (C : Protocol_intf.CRDT) = State_sync.Make (C)
    end);
    (module struct
      let name = "delta-classic"
      let doc = "delta-buffer synchronization, no optimization (Algorithm 1)"

      module Make (C : Protocol_intf.CRDT) =
        Delta_sync.Make (C) (Delta_sync.Classic_config)
    end);
    (module struct
      let name = "delta-bp"
      let doc = "delta buffers with back-propagation of delta-groups"

      module Make (C : Protocol_intf.CRDT) =
        Delta_sync.Make (C) (Delta_sync.Bp_config)
    end);
    (module struct
      let name = "delta-rr"
      let doc = "delta buffers with removal of redundant state"

      module Make (C : Protocol_intf.CRDT) =
        Delta_sync.Make (C) (Delta_sync.Rr_config)
    end);
    (module struct
      let name = "delta-bp+rr"
      let doc = "delta buffers with both optimizations (the paper's best)"

      module Make (C : Protocol_intf.CRDT) =
        Delta_sync.Make (C) (Delta_sync.Bp_rr_config)
    end);
    (module struct
      let name = "delta-bp+rr-ack"
      let doc = "BP+RR with the ack-based buffer that survives loss"

      module Make (C : Protocol_intf.CRDT) =
        Delta_sync.Make (C) (Delta_sync.Ack_config)
    end);
    (module struct
      let name = "scuttlebutt"
      let doc = "digest/pairs anti-entropy over per-replica version vectors"

      module Make (C : Protocol_intf.CRDT) =
        Scuttlebutt.Make (C) (Scuttlebutt.No_gc_config)
    end);
    (module struct
      let name = "scuttlebutt-gc"
      let doc = "scuttlebutt with safe pair garbage collection"

      module Make (C : Protocol_intf.CRDT) =
        Scuttlebutt.Make (C) (Scuttlebutt.Gc_config)
    end);
    (module struct
      let name = "op-based"
      let doc = "causal broadcast of operations (reliable channels only)"

      module Make (C : Protocol_intf.CRDT) = Op_sync.Make (C)
    end);
    (module struct
      let name = "merkle"
      let doc = "hash-tree anti-entropy (related-work baseline)"

      module Make (C : Protocol_intf.CRDT) =
        Merkle_sync.Make (C) (Merkle_sync.Default_config)
    end);
    (module struct
      let name = "conflict-sync"

      let doc =
        "delta steady state + Bloom/rateless-IBLT digest reconciliation \
         of divergent state (ConflictSync)"

      module Make (C : Protocol_intf.CRDT) =
        Conflict_sync.Make (C) (Conflict_sync.Default_config)
    end);
  ]

let protocol_name (p : proto) =
  let module M = (val p) in
  M.name

let protocol_doc (p : proto) =
  let module M = (val p) in
  M.doc

let protocol_names = List.map protocol_name protocols

let find_protocol name =
  match
    List.find_opt (fun p -> String.equal (protocol_name p) name) protocols
  with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "unknown protocol %S (known: %s)" name
           (String.concat ", " protocol_names))

(* Capabilities are a per-configuration constant of the protocol functor,
   so any instantiation reads them; GCounter is the cheapest lattice in
   the catalogue. *)
let capabilities (p : proto) =
  let module M = (val p) in
  let module P = M.Make (Gcounter) in
  P.capabilities

let instantiate (type a b) ((module M) : proto)
    ((module C) : (module Protocol_intf.CRDT with type t = a and type op = b))
    : (module Protocol_intf.PROTOCOL with type crdt = a and type op = b) =
  (module M.Make (C))

module type CRDT_SPEC = sig
  module C : Protocol_intf.CRDT

  val name : string
  val doc : string
  val excluded : string -> string option

  val micro_ops :
    nodes:int -> k:int -> round:int -> node:int -> C.t -> C.op list

  val serve_ops : id:int -> tick:int -> C.t -> C.op list
end

type crdt_spec = (module CRDT_SPEC)

let crdts : crdt_spec list =
  [
    (module struct
      module C = Gset.Of_int

      let name = "gset"
      let doc = "grow-only integer set; one globally unique add per event"
      let excluded _ = None

      let micro_ops ~nodes ~k:_ ~round ~node state =
        Workload.gset ~nodes ~round ~node state

      (* Per-tick elements are disjoint across replicas, so the converged
         cardinal is exactly replicas * ticks. *)
      let serve_ops ~id ~tick _ = [ (id * 1_000_000) + tick ]
    end);
    (module struct
      module C = Gcounter

      let name = "gcounter"
      let doc = "grow-only counter; one increment per event"
      let excluded _ = None

      let micro_ops ~nodes:_ ~k:_ ~round ~node state =
        Workload.gcounter ~round ~node state

      let serve_ops ~id:_ ~tick:_ _ = [ Gcounter.Inc 1 ]
    end);
    (module struct
      module C = Gmap.Versioned

      let name = "gmap"
      let doc = "grow-only map of version counters; K% of keys per interval"
      let excluded _ = None

      let micro_ops ~nodes ~k ~round ~node state =
        Workload.gmap ~total_keys:Workload.Defaults.total_keys ~k ~nodes
          ~round ~node state

      (* Contended keys: every replica bumps the same 50-key window, so
         after convergence exactly [min ticks 50] keys are live. *)
      let serve_ops ~id:_ ~tick _ =
        [ Gmap.Versioned.Apply (tick mod 50, Version.Bump) ]
    end);
    (module struct
      module C = Aw_set.Of_int

      let name = "orset"
      let doc = "add-wins OR-Set; unique adds plus observed removes"
      let excluded _ = None

      (* Unique adds plus an observed remove every third round at node 0,
         targeting node 0's OWN element from three rounds earlier.  The
         target is a function of (round, node) alone — never of the
         replica's delivered state — so every protocol (op-based
         included) performs the same operation sequence: the removed
         element carries exactly one dot, minted by the removing replica
         itself three rounds before, so replaying the remove at any
         causally consistent replica kills exactly that dot. *)
      let micro_ops ~nodes:_ ~k:_ ~round ~node _state =
        let add = Aw_set.Of_int.Add ((round * 1_000_003) + node) in
        if round mod 3 = 0 && node = 0 && round >= 3 then
          [ add; Aw_set.Of_int.Remove (((round - 3) * 1_000_003) + node) ]
        else [ add ]

      let serve_ops ~id ~tick _state =
        let add = Aw_set.Of_int.Add ((id * 1_000_000) + tick) in
        if tick mod 3 = 0 && id = 0 && tick >= 3 then
          [ add; Aw_set.Of_int.Remove ((id * 1_000_000) + (tick - 3)) ]
        else [ add ]
    end);
  ]

let crdt_name (s : crdt_spec) =
  let module S = (val s) in
  S.name

let crdt_names = List.map crdt_name crdts

let find_crdt name =
  match List.find_opt (fun s -> String.equal (crdt_name s) name) crdts with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "unknown CRDT %S (known: %s)" name
           (String.concat ", " crdt_names))
