(** Growable array buffer (a minimal [Dynarray] for OCaml 5.1). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Amortized O(1) append. *)

val get : 'a t -> int -> 'a
(** [get t i] for [0 <= i < length t]; raises [Invalid_argument]
    otherwise. *)

val clear : 'a t -> unit
(** Reset the length to 0.  The backing array is kept (and its elements
    stay reachable until overwritten) so the buffer can be refilled
    without allocating. *)

val iter : ('a -> unit) -> 'a t -> unit

val shuffle : rng:Random.State.t -> 'a t -> unit
(** In-place Fisher–Yates shuffle of the live prefix. *)
