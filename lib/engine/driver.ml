(* Transport-agnostic replica state machine; see driver.mli.

   Accounting discipline (the single definition both drivers inherit):
   delivery costs are computed on every [deliver] — the counting sink
   needs them — while send costs are computed only for [detailed] sinks,
   so the default counting/null paths never size outbound messages. *)

module Make (P : Crdt_proto.Protocol_intf.PROTOCOL) = struct
  type t = {
    id : int;
    neighbors : int list;
    total : int;
    sink : Trace.sink;
    exact : bool;
    changed : (P.crdt -> P.crdt -> bool) option;
    mutable node : P.node;
    mutable down : bool;
    mutable dirty : bool;
    mutable store_dirty : bool;
    mutable persist : (P.crdt -> unit) option;
    mutable ops_applied : int;
  }

  let create ?(sink = Trace.null) ?(exact_bytes = true) ?changed ~id
      ~neighbors ~total () =
    {
      id;
      neighbors;
      total;
      sink;
      exact = exact_bytes;
      changed;
      node = P.init ~id ~neighbors ~total;
      down = false;
      dirty = false;
      store_dirty = false;
      persist = None;
      ops_applied = 0;
    }

  let id t = t.id
  let state t = P.state t.node
  let down t = t.down
  let dirty t = t.dirty
  let clear_dirty t = t.dirty <- false

  let apply t ops =
    if t.down then 0
    else begin
      let n = ref 0 in
      List.iter
        (fun op ->
          t.node <- P.local_update t.node op;
          incr n)
        ops;
      if !n > 0 then begin
        t.dirty <- true;
        t.store_dirty <- true
      end;
      t.ops_applied <- t.ops_applied + !n;
      !n
    end

  let ops_applied t = t.ops_applied

  let send_event t ~round ~dest msg =
    let s = t.sink in
    if s.detailed then
      s.send ~src:t.id ~dest ~round ~weight:(P.payload_weight msg)
        ~metadata:(P.metadata_weight msg)
        ~payload_bytes:(P.payload_bytes msg)
        ~metadata_bytes:(P.metadata_bytes msg)
        ~wire_bytes:(if t.exact then P.message_wire_bytes msg else 0)
    else
      s.send ~src:t.id ~dest ~round ~weight:0 ~metadata:0 ~payload_bytes:0
        ~metadata_bytes:0 ~wire_bytes:0

  let tick t ~round ~emit =
    if not t.down then begin
      t.sink.tick ~node:t.id ~round;
      let node, msgs = P.tick t.node in
      t.node <- node;
      List.iter
        (fun (dest, msg) ->
          send_event t ~round ~dest msg;
          emit ~dest msg)
        msgs
    end

  let deliver t ~round ~src ?(copies = 1) ~emit msg =
    t.sink.recv ~node:t.id ~src ~round ~weight:(P.payload_weight msg)
      ~metadata:(P.metadata_weight msg)
      ~payload_bytes:(P.payload_bytes msg)
      ~metadata_bytes:(P.metadata_bytes msg)
      ~wire_bytes:(if t.exact then P.message_wire_bytes msg else 0);
    for _ = 1 to copies do
      t.sink.deliver ~node:t.id ~src ~round;
      let prev = t.node in
      let node, replies = P.handle prev ~src msg in
      t.node <- node;
      (match t.changed with
      | Some changed ->
          if
            not (t.dirty && t.store_dirty)
            && changed (P.state prev) (P.state node)
          then begin
            t.dirty <- true;
            t.store_dirty <- true
          end
      | None ->
          (* No comparator: persistence dedupes in the sink instead
             (the delta against the last persisted image is bottom when
             nothing inflated). *)
          t.store_dirty <- true);
      List.iter
        (fun (dest, m) ->
          send_event t ~round ~dest m;
          emit ~dest m)
        replies
    done

  let crash t ~round =
    t.down <- true;
    t.node <- P.crash t.node;
    t.sink.crash ~node:t.id ~round

  let recover t ~round =
    t.down <- false;
    t.node <- P.recover t.node;
    t.dirty <- true;
    t.store_dirty <- true;
    t.sink.recover ~node:t.id ~round

  (* ---------------------------------------------------------------- *)
  (* Persistence seam.  The transport decides *when* durability points
     happen (once per tick / round), the sink decides *what* writing
     means (delta append, checkpoint roll — lib/store via bin/, or an
     in-memory probe in tests); the driver only tracks whether the
     state may have inflated since the last sync. *)

  let set_persist t f = t.persist <- Some f

  let sync_store t =
    match t.persist with
    | Some f when t.store_dirty ->
        t.store_dirty <- false;
        f (P.state t.node)
    | _ -> ()

  let restart_from t s =
    t.node <- P.load (P.init ~id:t.id ~neighbors:t.neighbors ~total:t.total) s;
    t.down <- false;
    t.dirty <- true;
    t.store_dirty <- true

  let finish t ~round = t.sink.finish ~node:t.id ~round

  type snapshot = {
    s_node : P.node;
    s_down : bool;
    s_dirty : bool;
    s_store_dirty : bool;
    s_ops_applied : int;
  }

  let snapshot t =
    {
      s_node = t.node;
      s_down = t.down;
      s_dirty = t.dirty;
      s_store_dirty = t.store_dirty;
      s_ops_applied = t.ops_applied;
    }

  let restore t s =
    t.node <- s.s_node;
    t.down <- s.s_down;
    t.dirty <- s.s_dirty;
    t.store_dirty <- s.s_store_dirty;
    t.ops_applied <- s.s_ops_applied
  let work t = P.work t.node
  let memory_weight t = P.memory_weight t.node
  let memory_bytes t = P.memory_bytes t.node
  let metadata_memory_bytes t = P.metadata_memory_bytes t.node
end
