(** Micro-benchmark workload generators (Table I).

    Each node performs one periodic event per round: a unique-element
    addition (GSet), a single increment (GCounter), or a block of key
    updates covering K/N % of the key space (GMap K%). *)

open Crdt_core

val gset : nodes:int -> round:int -> node:int -> 'state -> Gset.Of_int.op list
(** Addition of a globally unique element (rounds × nodes never
    collide). *)

val gcounter : round:int -> node:int -> 'state -> Gcounter.op list

val gset_contended :
  pool:int -> round:int -> node:int -> 'state -> Gset.Of_int.op list
(** Adds drawn round-robin from a small pool so most of them re-add
    present elements — the δ-mutator-optimality ablation workload. *)

val gmap_keys :
  total_keys:int -> k:int -> nodes:int -> round:int -> node:int -> int list
(** The key block node [node] updates in [round]: [total_keys·k/100/n]
    keys, disjoint across nodes within a round, rotating with the round
    so that globally K % of all keys change per synchronization
    interval. *)

val gmap :
  total_keys:int ->
  k:int ->
  nodes:int ->
  round:int ->
  node:int ->
  'state ->
  Gmap.Versioned.op list

(** Default experiment scale, matching the paper's micro-benchmarks. *)
module Defaults : sig
  val nodes : int
  val rounds : int
  val total_keys : int
end
