(** Micro-benchmark workload generators (Table I).

    Each node performs one periodic event per round: a unique-element
    addition (GSet), a single increment (GCounter), or a block of key
    updates covering K/N % of the key space (GMap K%).

    This is the one home of workload definitions: the simulator, the
    serve loop and domain-specific generators (Retwis) all produce or
    consume the {!gen} shape. *)

open Crdt_core

type ('state, 'op) gen = round:int -> node:int -> 'state -> 'op list
(** The shape in which every workload source feeds the engine: the
    operations node [node] applies at the start of [round], reading its
    local [state].  The simulator passes a [gen] straight to
    [Runner.run ~ops]; serve adapts one per tick; Retwis exposes its
    generator as a [gen] over its store. *)

val gset : nodes:int -> ('state, Gset.Of_int.op) gen
(** Addition of a globally unique element (rounds × nodes never
    collide). *)

val gcounter : ('state, Gcounter.op) gen

val gset_contended : pool:int -> ('state, Gset.Of_int.op) gen
(** Adds drawn round-robin from a small pool so most of them re-add
    present elements — the δ-mutator-optimality ablation workload. *)

val gmap_keys :
  total_keys:int -> k:int -> nodes:int -> round:int -> node:int -> int list
(** The key block node [node] updates in [round]: [total_keys·k/100/n]
    keys, disjoint across nodes within a round, rotating with the round
    so that globally K % of all keys change per synchronization
    interval. *)

val gmap :
  total_keys:int -> k:int -> nodes:int -> ('state, Gmap.Versioned.op) gen

(** Default experiment scale, matching the paper's micro-benchmarks. *)
module Defaults : sig
  val nodes : int
  val rounds : int
  val total_keys : int
end
