(** Structured trace layer: typed replica events with pluggable sinks.

    Every driver (the round-based simulator, the socket runtime) reports
    what happens to a replica through one {!sink}; what a sink does with
    the events is its own business:

    - {!null} ignores everything (the zero-cost default);
    - {!counting} folds the events into a {!counters} record — this {e is}
      the metrics accumulation both drivers share, so byte accounting is
      defined exactly once;
    - {!jsonl} writes one JSON object per event (the [--trace-out] format);
    - {!tee} duplicates events to two sinks.

    The hot path never allocates an {!event}: a sink is a record of
    closures taking plain labeled arguments, and drivers call the fields
    directly.  The {!event} variant exists for consumers that want values
    (the JSONL sink builds them, tests pattern-match them); {!sink_of} and
    {!event_sink} convert between the two representations. *)

(** One replica-level event.  [round] is the simulator round or the
    runtime tick in which the event happened.  Cost fields on [Send] and
    [Recv] follow the {!Crdt_sim.Metrics} conventions: [weight]/[metadata]
    count lattice elements and metadata units, the byte fields are the
    estimate model, and [wire_bytes] is the exact framed size (0 when the
    driver runs estimate-only accounting). *)
type event =
  | Meta of { note : string }  (** free-form run annotation. *)
  | Tick of { node : int; round : int }
  | Send of {
      src : int;
      dest : int;
      round : int;
      weight : int;
      metadata : int;
      payload_bytes : int;
      metadata_bytes : int;
      wire_bytes : int;
    }
  | Recv of {
      node : int;
      src : int;
      round : int;
      weight : int;
      metadata : int;
      payload_bytes : int;
      metadata_bytes : int;
      wire_bytes : int;
    }  (** a message was accepted for delivery (counted once even when
          fault injection duplicates it). *)
  | Deliver of { node : int; src : int; round : int }
      (** one [P.handle] application (≥ 1 per accepted message). *)
  | Drop of { node : int; src : int; round : int }
  | Hold of { node : int; src : int; round : int }
      (** captured by a per-link delay; delivered in a later round. *)
  | Cut of { node : int; src : int; round : int }
      (** discarded by an active partition. *)
  | Crash of { node : int; round : int }
  | Recover of { node : int; round : int }
  | Done of { node : int; round : int }
      (** the replica finished (converged / agreed to stop). *)

val event_to_json : event -> string
(** One-line JSON object, e.g.
    [{"ev":"send","src":0,"dest":1,"round":3,"weight":2,...}]. *)

(** Allocation-free event consumer.  [detailed] tells drivers whether to
    compute the cost fields of [send] (delivery costs are always
    computed — the counting sink needs them); sinks that ignore [Send]
    costs set it to [false] so the hot path skips the work. *)
type sink = {
  detailed : bool;
  meta : string -> unit;
  tick : node:int -> round:int -> unit;
  send :
    src:int ->
    dest:int ->
    round:int ->
    weight:int ->
    metadata:int ->
    payload_bytes:int ->
    metadata_bytes:int ->
    wire_bytes:int ->
    unit;
  recv :
    node:int ->
    src:int ->
    round:int ->
    weight:int ->
    metadata:int ->
    payload_bytes:int ->
    metadata_bytes:int ->
    wire_bytes:int ->
    unit;
  deliver : node:int -> src:int -> round:int -> unit;
  drop : node:int -> src:int -> round:int -> unit;
  hold : node:int -> src:int -> round:int -> unit;
  cut : node:int -> src:int -> round:int -> unit;
  crash : node:int -> round:int -> unit;
  recover : node:int -> round:int -> unit;
  finish : node:int -> round:int -> unit;  (** emits {!Done}. *)
}

val null : sink
(** Ignores everything; [detailed = false]. *)

(** Additive tallies in the {!Crdt_sim.Metrics} sense: message counts and
    transmission costs bump at {e delivery} ([recv]), never at send, so a
    dropped message costs nothing; [sent] counts send attempts and
    [delivered] counts handle applications (duplicates included).  The
    three [memory_*] fields and [writes] (the socket runtime's
    [write(2)]-syscall count; 0 under the simulator) are snapshots
    drivers set directly — the counting sink never touches them. *)
type counters = {
  mutable sent : int;
  mutable delivered : int;
  mutable messages : int;
  mutable payload : int;
  mutable metadata : int;
  mutable payload_bytes : int;
  mutable metadata_bytes : int;
  mutable wire_bytes : int;
  mutable ops_applied : int;
  mutable dropped : int;
  mutable held : int;
  mutable partitioned : int;
  mutable memory_weight : int;
  mutable memory_bytes : int;
  mutable metadata_memory_bytes : int;
  mutable writes : int;
  mutable sync_rounds : int;
      (** rounds in which at least one pure control message (zero payload
          weight, non-zero metadata) was delivered — digest exchanges,
          reconciliation sessions and other anti-entropy chatter. *)
  mutable digest_bytes : int;
      (** wire bytes of that control traffic (estimate bytes when the
          driver runs estimate-only accounting). *)
  mutable last_sync_round : int;
      (** internal: last round counted into [sync_rounds] (dedup). *)
}

val make_counters : unit -> counters
val reset_counters : counters -> unit

val counting : counters -> sink
(** The shared accounting path: [recv] adds the message and its costs,
    [drop]/[hold]/[cut] bump the fault tallies, [send]/[deliver] bump
    their counts; everything else is ignored.  [detailed = false]. *)

val tee : sink -> sink -> sink
(** Events go to both sinks; [detailed] is the disjunction. *)

val event_sink : ?detailed:bool -> (event -> unit) -> sink
(** Wrap an event consumer as a sink (allocates one {!event} per call);
    [detailed] defaults to [true]. *)

val jsonl : out_channel -> sink
(** Writes {!event_to_json} lines to the channel; [detailed = true].
    The channel is flushed on [finish] and [meta], not per event. *)
