(** Growable array buffer (a minimal [Dynarray] for OCaml 5.1).

    The simulator's message queues are append-heavy and drained once per
    delivery wave; a doubling array keeps every push O(1) amortized with
    no per-element allocation, unlike the seed's [list @ list] queues.
    [clear] only resets the length — the backing array (and the elements
    it still references) is reused by the next wave, which is exactly
    the recycling the engine wants. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let push t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    (* [x] doubles as the fill value, so no dummy element is needed. *)
    let data = Array.make (if cap = 0 then 8 else 2 * cap) x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Dynbuf.get";
  Array.unsafe_get t.data i

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

(** In-place Fisher–Yates shuffle over the live prefix. *)
let shuffle ~rng t =
  for i = t.len - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(j);
    t.data.(j) <- tmp
  done
