(** Transport-agnostic replica state machine.

    One {!Make.t} value is one replica of one protocol: it owns the
    [P.node], applies operations, runs synchronization ticks, handles
    received messages, and survives crash/restart — reporting every step
    to a {!Trace.sink}.  Transports stay thin: the simulator's shard loop
    and the socket runtime both reduce to "move the messages the driver
    [emit]s and feed back what arrives", so the apply → tick → ship →
    handle → replies cycle (and its accounting) is defined exactly once.

    Outbound messages are reported through an [emit] callback rather
    than returned as lists, so transports can push them straight into
    their own buffers without intermediate allocation. *)

module Make (P : Crdt_proto.Protocol_intf.PROTOCOL) : sig
  type t

  val create :
    ?sink:Trace.sink ->
    ?exact_bytes:bool ->
    ?changed:(P.crdt -> P.crdt -> bool) ->
    id:int ->
    neighbors:int list ->
    total:int ->
    unit ->
    t
  (** A fresh replica.  [exact_bytes] (default [true]) controls whether
      [Send]/[Recv] events carry exact framed wire sizes
      ([P.message_wire_bytes]) or 0.  [changed] enables dirty tracking:
      when provided, {!dirty} reports whether any delivery since the last
      {!clear_dirty} changed the CRDT state per [changed old new] (used
      by the socket runtime's quiescence detection; costs one state
      comparison per delivery, so the simulator leaves it off). *)

  val id : t -> int
  val state : t -> P.crdt
  val down : t -> bool

  val dirty : t -> bool
  (** True when operations were applied or (under [changed]) a delivery
      inflated the state since the last {!clear_dirty}. *)

  val clear_dirty : t -> unit

  val apply : t -> P.op list -> int
  (** Apply local operations; returns how many were applied (0 when the
      replica is down — a crashed node performs no operations). *)

  val ops_applied : t -> int
  (** Cumulative count over the replica's lifetime. *)

  val tick : t -> round:int -> emit:(dest:int -> P.message -> unit) -> unit
  (** One synchronization step: runs [P.tick], reports a [Tick] event and
      a [Send] per outbound message, and hands each message to [emit].
      No-op while down. *)

  val deliver :
    t ->
    round:int ->
    src:int ->
    ?copies:int ->
    emit:(dest:int -> P.message -> unit) ->
    P.message ->
    unit
  (** Process a received message: one [Recv] event (with delivery-cost
      accounting), then [copies] (default 1 — more under duplication
      faults) applications of [P.handle], each reported as a [Deliver];
      replies go through [emit] with their own [Send] events.  The caller
      must not deliver to a down replica (messages to crashed nodes are
      the transport's drops). *)

  val crash : t -> round:int -> unit
  (** [P.crash] + mark down + [Crash] event. *)

  val recover : t -> round:int -> unit
  (** [P.recover] + mark up (and dirty) + [Recover] event. *)

  val set_persist : t -> (P.crdt -> unit) -> unit
  (** Attach a durability sink.  The driver tracks which steps may have
      inflated the CRDT state; {!sync_store} hands the current state to
      the sink when (and only when) something happened since the last
      sync.  What "persisting" means — appending a delta against the
      last written image, rolling a checkpoint — is entirely the
      sink's business (see [lib/store] and [bin/crdtsync.ml]); the
      driver stays storage-agnostic.  This is the one seam the
      simulator, the socket runtime and the model checker share. *)

  val sync_store : t -> unit
  (** Durability point: invoke the {!set_persist} sink with the current
      state if any apply/deliver/recover since the last call may have
      changed it.  Transports call this once per tick (sockets) or
      exploration step (checker).  No-op without a sink. *)

  val restart_from : t -> P.crdt -> unit
  (** Rebuild this replica as a fresh process restarted from durable
      storage: replaces the node with [P.load (P.init ...) s] — losing
      {e all} volatile protocol state, unlike {!recover} which keeps
      the in-memory durable image — marks it up and dirty.  [s] is
      what the storage layer recovered (checkpoint ⊔ logged deltas), a
      lattice prefix of the pre-crash state. *)

  val finish : t -> round:int -> unit
  (** Report a [Done] event (the replica converged / agreed to stop). *)

  type snapshot
  (** An immutable image of the replica's full state (protocol node,
      up/down flag, dirty flag, operation count).  [P.node] values are
      persistent, so a snapshot is a constant-size record copy. *)

  val snapshot : t -> snapshot

  val restore : t -> snapshot -> unit
  (** Rewind the replica to a previous {!snapshot}.  Together with
      {!snapshot} this is the seam deterministic single-step schedulers
      (the model checker in [lib/check]) use to branch an execution:
      snapshot, explore one continuation, restore, explore the next.
      Trace events already reported are {e not} retracted — exploration
      sinks must expect replayed prefixes or use {!Trace.null}. *)

  val work : t -> int
  val memory_weight : t -> int
  val memory_bytes : t -> int
  val metadata_memory_bytes : t -> int
end
