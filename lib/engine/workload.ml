(** Micro-benchmark workload generators (Table I).

    Each node performs one periodic event per round:

    - {b GCounter}: a single increment; measurement counts map entries.
    - {b GSet}: addition of a globally unique element; measurement counts
      set elements.
    - {b GMap K%}: each of the [N] nodes changes the value of [K/N]% of
      the keys, so that globally [K]% of all keys are modified within
      each synchronization interval; measurement counts map entries.  The
      paper fixes the key space at 1000 keys and notes that the GCounter
      benchmark is the special case [K = 100] with [N] keys. *)

open Crdt_core

(** The shape in which every workload source feeds the engine: the
    operations node [node] applies at the start of [round], reading its
    local [state].  The simulator's [ops] argument, the serve loop's
    per-tick generator and the Retwis generator all flow through this
    one type, so a workload written against it runs on any transport. *)
type ('state, 'op) gen = round:int -> node:int -> 'state -> 'op list

(** Globally unique element for (round, node): rounds × nodes never
    collide. *)
let gset ~nodes:n ~round ~node _state : Gset.Of_int.op list =
  ignore n;
  [ (round * 1_000_003) + node ]

let gcounter ~round:_ ~node:_ _state : Gcounter.op list = [ Gcounter.Inc 1 ]

(** Contended GSet workload: nodes add elements drawn round-robin from a
    small pool, so most additions re-add elements already present.  Used
    by the δ-mutator-optimality ablation: a naive δ-mutator ships a
    redundant singleton on every re-add, an optimal one ships nothing. *)
let gset_contended ~pool ~round ~node _state : Gset.Of_int.op list =
  [ (round + node) mod pool ]

(** Key block updated by [node] in [round] for GMap K%.

    [per_node = total_keys * k / 100 / n] keys per node per round; blocks
    are disjoint across nodes within a round and rotate with the round so
    every key is eventually touched. *)
let gmap_keys ~total_keys ~k ~nodes:n ~round ~node =
  let per_node = max 1 (total_keys * k / 100 / n) in
  let base = ((node * per_node) + (round * per_node * n)) mod total_keys in
  List.init per_node (fun j -> (base + j) mod total_keys)

let gmap ~total_keys ~k ~nodes ~round ~node _state :
    Gmap.Versioned.op list =
  List.map
    (fun key -> Gmap.Versioned.Apply (key, Version.Bump))
    (gmap_keys ~total_keys ~k ~nodes ~round ~node)

(** Default experiment scale, matching the paper's micro-benchmarks:
    15-node topologies, 100 events per replica, 1000 GMap keys. *)
module Defaults = struct
  let nodes = 15
  let rounds = 100
  let total_keys = 1000
end
