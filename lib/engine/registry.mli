(** First-class protocol × CRDT registry.

    The single place where "a protocol name" and "a CRDT name" become
    modules: every driver (CLI micro and serve, harness, benches, tests)
    dispatches through {!find_protocol}/{!find_crdt} and
    {!instantiate} instead of keeping its own [match]-ladder, so adding a
    protocol variant or a benchmark data type is a one-line change here
    and every layer picks it up.

    Protocols are packed {e constructors} ({!PROTO_MAKER}): a name plus a
    functor from a CRDT to a {!Crdt_proto.Protocol_intf.PROTOCOL}, since
    a protocol instance only exists for a concrete lattice.  CRDTs are
    packed modules with their registry metadata: the Table I micro
    workload, the deterministic serve workload, and per-protocol
    exclusions for cells that are not meaningful.  Workloads are
    deterministic functions of (round, node) — they never read the
    replica's delivered state — so every protocol, op-based replay
    included, performs the same operation sequence. *)

(** A named protocol constructor. *)
module type PROTO_MAKER = sig
  val name : string
  (** Must equal [protocol_name] of every instance (checked by
      [test_registry]). *)

  val doc : string

  module Make (C : Crdt_proto.Protocol_intf.CRDT) :
    Crdt_proto.Protocol_intf.PROTOCOL with type crdt = C.t and type op = C.op
end

type proto = (module PROTO_MAKER)

val protocols : proto list
(** Every registered protocol, in the harness's stable reporting order:
    state-based, delta classic/BP/RR/BP+RR/BP+RR-ack, scuttlebutt ± GC,
    op-based, merkle. *)

val protocol_names : string list

val find_protocol : string -> proto
(** @raise Invalid_argument on an unknown name, listing the known ones. *)

val protocol_name : proto -> string
val protocol_doc : proto -> string

val capabilities : proto -> Crdt_proto.Protocol_intf.capabilities
(** Declared fault capabilities of the protocol (independent of the
    CRDT it is instantiated with). *)

val instantiate :
  proto ->
  (module Crdt_proto.Protocol_intf.CRDT with type t = 'a and type op = 'b) ->
  (module Crdt_proto.Protocol_intf.PROTOCOL
     with type crdt = 'a
      and type op = 'b)

(** A benchmark CRDT with its registry metadata. *)
module type CRDT_SPEC = sig
  module C : Crdt_proto.Protocol_intf.CRDT

  val name : string
  val doc : string

  val excluded : string -> string option
  (** [excluded proto] is [Some reason] when the protocol × CRDT cell is
      not meaningful (the driver should skip or reject it). *)

  val micro_ops :
    nodes:int -> k:int -> round:int -> node:int -> C.t -> C.op list
  (** The Table I micro workload ([k] is the GMap key-percentage knob;
      other CRDTs ignore it). *)

  val serve_ops : id:int -> tick:int -> C.t -> C.op list
  (** Deterministic per-tick operations for the socket runtime; designed
      so the converged state is predictable from [(replicas, ticks)]
      alone, making cross-process convergence checkable. *)
end

type crdt_spec = (module CRDT_SPEC)

val crdts : crdt_spec list
val crdt_names : string list

val find_crdt : string -> crdt_spec
(** @raise Invalid_argument on an unknown name, listing the known ones. *)

val crdt_name : crdt_spec -> string
