(* SEC model checker over one protocol × CRDT cell; see checker.mli.

   Exploration strategy: the exhaustive tier does NOT enumerate raw
   interleavings (chatty protocols make branching^depth infeasible and
   protocol nodes are abstract, so there is no state hashing to prune
   with).  Instead it enumerates round plans — per round and per link,
   one fate for everything queued on that link — and records the exact
   per-message step list while executing, so the artifact handed to the
   shrinker and to [--replay] is always a plain schedule.  Fine-grained
   tick/deliver races are covered by the seeded random tier, which picks
   enabled atomic steps one at a time. *)

type config = {
  replicas : int;
  script_len : int;
  flush_rounds : int;
  max_steps : int;
  durable : bool;
}

let default_config =
  {
    replicas = 2;
    script_len = 4;
    flush_rounds = 48;
    max_steps = 100_000;
    durable = false;
  }

type violation = { invariant : string; detail : string; at_step : int }
type outcome = { explored : int; failure : (Schedule.t * violation) option }

exception Violation of violation

module Make (C : Crdt_core.Lattice_intf.CRDT) (P : sig
  include
    Crdt_proto.Protocol_intf.PROTOCOL with type crdt = C.t and type op = C.op
end) =
struct
  module D = Crdt_engine.Driver.Make (P)

  type ops = node:int -> index:int -> C.t -> C.op list

  type sys = {
    cfg : config;
    ops : ops;
    drv : D.t array;
    links : P.message Queue.t array array; (* [src].(dst) *)
    held : P.message Queue.t array array;
    ops_done : int array;
    disk : C.t array;
        (** durable mode: per-replica on-disk image, written through the
            driver's persist seam at the same durability points the
            socket runtime uses (ops immediately, deliveries at the next
            tick), so a crash between ticks loses delivered-but-unsynced
            joins — the case the recovery exchange must repair. *)
    mutable oracle : C.t;
    mutable step_no : int; (* index of the step being executed; -1 in flush *)
  }

  (* Durable mode is per-cell: a protocol that cannot restart from a
     CRDT-state-only image (Scuttlebutt) keeps the in-memory crash
     model even under a durable config. *)
  let durable_mode cfg = cfg.durable && P.capabilities.durable_restart

  let make_sys cfg ops =
    let n = cfg.replicas in
    let neighbors id = List.init n Fun.id |> List.filter (fun j -> j <> id) in
    let sys =
      {
        cfg;
        ops;
        drv =
          Array.init n (fun id ->
              D.create ~id ~neighbors:(neighbors id) ~total:n ());
        links = Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ()));
        held = Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ()));
        ops_done = Array.make n 0;
        disk = Array.make n C.bottom;
        oracle = C.bottom;
        step_no = 0;
      }
    in
    if durable_mode cfg then
      Array.iteri
        (fun r d -> D.set_persist d (fun x -> sys.disk.(r) <- x))
        sys.drv;
    sys

  let fail sys invariant fmt =
    Format.kasprintf
      (fun detail ->
        raise (Violation { invariant; detail; at_step = sys.step_no }))
      fmt

  let emit sys src ~dest msg =
    if dest >= 0 && dest < sys.cfg.replicas && dest <> src then
      Queue.add msg sys.links.(src).(dest)

  let check_monotone sys r before after =
    if not (C.leq before after) then
      fail sys "monotonicity" "replica %d state shrank (weight %d -> %d)" r
        (C.weight before) (C.weight after)

  let check_phantom sys r =
    let x = D.state sys.drv.(r) in
    if not (C.leq x sys.oracle) then
      fail sys "phantom-state"
        "replica %d holds state outside the oracle (weight %d vs oracle %d)"
        r (C.weight x) (C.weight sys.oracle)

  let deliver_checked sys ~src ~dst msg =
    let d = sys.drv.(dst) in
    let before = D.state d in
    D.deliver d ~round:sys.step_no ~src ~emit:(emit sys dst) msg;
    let after = D.state d in
    check_monotone sys dst before after;
    check_phantom sys dst

  (* Execute one step against the live system.  Steps that are not
     enabled are skipped (see schedule.mli); raises [Violation]. *)
  let exec_step sys (step : Schedule.step) =
    match step with
    | Op r ->
        let d = sys.drv.(r) in
        if (not (D.down d)) && sys.ops_done.(r) < sys.cfg.script_len then begin
          let index = sys.ops_done.(r) in
          sys.ops_done.(r) <- index + 1;
          let before = D.state d in
          let script = sys.ops ~node:r ~index before in
          let (_ : int) = D.apply d script in
          let after = D.state d in
          check_monotone sys r before after;
          (* The oracle takes the op's CRDT-level intended effect, not
             the replica's post-op state: a protocol that mangles (or
             drops) local updates must not get to launder that through
             the no-data-loss baseline. *)
          let intended =
            List.fold_left
              (fun x op -> C.mutate op (Crdt_core.Replica_id.of_int r) x)
              before script
          in
          sys.oracle <- C.join sys.oracle intended;
          check_phantom sys r;
          (* Local ops become durable before they are acknowledged (the
             socket runtime applies and syncs within one tick), so a
             crash never loses an op — only delivered-but-unsynced
             joins, which the sender still holds. *)
          if durable_mode sys.cfg then D.sync_store d
        end
    | Tick r ->
        let d = sys.drv.(r) in
        if not (D.down d) then begin
          let before = D.state d in
          D.tick d ~round:sys.step_no ~emit:(emit sys r);
          check_monotone sys r before (D.state d);
          check_phantom sys r;
          if durable_mode sys.cfg then D.sync_store d
        end
    | Deliver (s, t) ->
        if not (Queue.is_empty sys.links.(s).(t)) then begin
          let msg = Queue.pop sys.links.(s).(t) in
          (* delivering to a down node is the transport's drop *)
          if not (D.down sys.drv.(t)) then deliver_checked sys ~src:s ~dst:t msg
        end
    | Duplicate (s, t) ->
        if not (Queue.is_empty sys.links.(s).(t)) then begin
          let msg = Queue.pop sys.links.(s).(t) in
          if not (D.down sys.drv.(t)) then begin
            deliver_checked sys ~src:s ~dst:t msg;
            let first = D.state sys.drv.(t) in
            deliver_checked sys ~src:s ~dst:t msg;
            let second = D.state sys.drv.(t) in
            if not (C.equal first second) then
              fail sys "redelivery"
                "redelivering a message from %d changed replica %d's state \
                 (weight %d -> %d)"
                s t (C.weight first) (C.weight second)
          end
        end
    | Drop (s, t) ->
        if not (Queue.is_empty sys.links.(s).(t)) then
          ignore (Queue.pop sys.links.(s).(t))
    | Delay (s, t) ->
        if not (Queue.is_empty sys.links.(s).(t)) then
          Queue.add (Queue.pop sys.links.(s).(t)) sys.held.(s).(t)
    | Release (s, t) ->
        if not (Queue.is_empty sys.held.(s).(t)) then
          Queue.add (Queue.pop sys.held.(s).(t)) sys.links.(s).(t)
    | Crash r ->
        let d = sys.drv.(r) in
        if not (D.down d) then begin
          let before = D.state d in
          D.crash d ~round:sys.step_no;
          if not (C.equal before (D.state d)) then
            fail sys "durability"
              "crash lost durable state at replica %d (weight %d -> %d)" r
              (C.weight before) (C.weight (D.state d));
          if durable_mode sys.cfg && not (C.leq sys.disk.(r) before) then
            fail sys "durability"
              "replica %d's on-disk image is not a lattice prefix of its \
               pre-crash state (disk weight %d vs state %d)"
              r
              (C.weight sys.disk.(r))
              (C.weight before)
        end
    | Recover r ->
        let d = sys.drv.(r) in
        if D.down d then
          if durable_mode sys.cfg then begin
            (* True process restart: volatile state is gone, the replica
               reboots from whatever reached disk.  The state may
               legitimately {e regress} relative to the in-memory image
               (unsynced deliveries are lost), so monotonicity is
               replaced by containment: disk ⊑ pre-crash, and the
               reloaded state stays inside the oracle.  The flush phase
               then proves the recovery exchange wins the gap back. *)
            let before = D.state d in
            D.restart_from d sys.disk.(r);
            let after = D.state d in
            if not (C.leq after before) then
              fail sys "durability"
                "replica %d restarted from disk with state beyond its \
                 pre-crash image (weight %d vs %d)"
                r (C.weight after) (C.weight before);
            check_phantom sys r;
            D.sync_store d
          end
          else begin
            let before = D.state d in
            D.recover d ~round:sys.step_no;
            check_monotone sys r before (D.state d);
            check_phantom sys r
          end

  let iter_links sys f =
    let n = sys.cfg.replicas in
    for s = 0 to n - 1 do
      for t = 0 to n - 1 do
        if s <> t then f s t
      done
    done

  (* Fault-free rounds after the schedule: release everything held,
     recover everyone, then tick + drain until all replicas hold exactly
     the oracle state. *)
  let flush sys =
    sys.step_no <- -1;
    iter_links sys (fun s t ->
        Queue.transfer sys.held.(s).(t) sys.links.(s).(t));
    Array.iteri
      (fun r d -> if D.down d then exec_step sys (Schedule.Recover r))
      sys.drv;
    let converged () =
      Array.for_all (fun d -> C.equal (D.state d) sys.oracle) sys.drv
    in
    let drain () =
      let budget = ref sys.cfg.max_steps in
      let again = ref true in
      while !again do
        again := false;
        iter_links sys (fun s t ->
            while not (Queue.is_empty sys.links.(s).(t)) do
              if !budget <= 0 then
                fail sys "convergence"
                  "drain did not quiesce within %d deliveries" sys.cfg.max_steps;
              decr budget;
              again := true;
              deliver_checked sys ~src:s ~dst:t
                (Queue.pop sys.links.(s).(t))
            done)
      done
    in
    let rounds = ref 0 in
    drain ();
    while (not (converged ())) && !rounds < sys.cfg.flush_rounds do
      incr rounds;
      Array.iteri (fun r _ -> exec_step sys (Schedule.Tick r)) sys.drv;
      drain ()
    done;
    if not (converged ()) then begin
      let w r = C.weight (D.state sys.drv.(r)) in
      let states =
        String.concat ", "
          (List.init sys.cfg.replicas (fun r ->
               Printf.sprintf "r%d:w%d" r (w r)))
      in
      let pairwise_equal =
        let x0 = D.state sys.drv.(0) in
        Array.for_all (fun d -> C.equal (D.state d) x0) sys.drv
      in
      if pairwise_equal then
        fail sys "data-loss"
          "replicas agree below the oracle after %d flush rounds (%s, oracle \
           w%d)"
          sys.cfg.flush_rounds states (C.weight sys.oracle)
      else
        fail sys "convergence"
          "replicas still diverge after %d flush rounds (%s, oracle w%d)"
          sys.cfg.flush_rounds states (C.weight sys.oracle)
    end

  let run cfg ~ops sched =
    let sys = make_sys cfg ops in
    try
      List.iteri
        (fun i step ->
          sys.step_no <- i;
          exec_step sys step)
        sched;
      flush sys;
      None
    with Violation v -> Some v

  (* ---- exhaustive tier: round plans -------------------------------- *)

  type fate = Fdeliver | Fduplicate | Fdrop | Fdelay

  let fate_alphabet () =
    let caps = P.capabilities in
    [ Fdeliver; Fduplicate ]
    @ (if caps.tolerates_drop then [ Fdrop ] else [])
    @ if caps.tolerates_delay then [ Fdelay ] else []

  let fate_step fate (s, t) : Schedule.step =
    match fate with
    | Fdeliver -> Deliver (s, t)
    | Fduplicate -> Duplicate (s, t)
    | Fdrop -> Drop (s, t)
    | Fdelay -> Delay (s, t)

  (* Execute one round plan from scratch, recording the per-message step
     list actually performed (queue contents at fate time depend on the
     protocol's chatter, so the schedule can only be concretized by
     running it).  [fates (round, link_index)] names the fate of every
     message queued on that link in that round. *)
  let run_plan cfg ~ops ~rounds ~links ~fates ~crash_plan =
    let sys = make_sys cfg ops in
    let rev_sched = ref [] in
    let exec step =
      rev_sched := step :: !rev_sched;
      sys.step_no <- List.length !rev_sched - 1;
      exec_step sys step
    in
    let sched () = List.rev !rev_sched in
    try
      for round = 0 to rounds - 1 do
        (match crash_plan with
        | Some (victim, down_at, up_at) ->
            if round = down_at then exec (Schedule.Crash victim);
            if round = up_at then exec (Schedule.Recover victim)
        | None -> ());
        (* spread the op script over the rounds (several per round when
           the script is longer than the schedule) so late script
           entries — e.g. the orset removes at index ≥ 3 — still run
           before the fault rounds end *)
        let per_round = (cfg.script_len + rounds - 1) / rounds in
        for r = 0 to cfg.replicas - 1 do
          for _ = 1 to per_round do
            if sys.ops_done.(r) < cfg.script_len then exec (Schedule.Op r)
          done
        done;
        for r = 0 to cfg.replicas - 1 do
          exec (Schedule.Tick r)
        done;
        List.iteri
          (fun li (s, t) ->
            (* messages delayed in an earlier round arrive now, behind
               whatever this round queued *)
            while not (Queue.is_empty sys.held.(s).(t)) do
              exec (Schedule.Release (s, t))
            done;
            let fate = fates (round, li) in
            while not (Queue.is_empty sys.links.(s).(t)) do
              exec (fate_step fate (s, t))
            done)
          links
      done;
      flush sys;
      None
    with Violation v -> Some (sched (), v)

  let exhaustive cfg ~ops ~rounds ~max_faults =
    let links =
      List.concat
        (List.init cfg.replicas (fun s ->
             List.filter_map
               (fun t -> if s <> t then Some (s, t) else None)
               (List.init cfg.replicas Fun.id)))
    in
    let alphabet = fate_alphabet () in
    let slots = rounds * List.length links in
    let crash_plans =
      if not P.capabilities.tolerates_crash then [ None ]
      else
        (* recovery at round [rounds] means "only at flush" *)
        None
        :: List.concat
             (List.init cfg.replicas (fun v ->
                  List.concat
                    (List.init rounds (fun down_at ->
                         List.filter_map
                           (fun up_at ->
                             if up_at > down_at then
                               Some (Some (v, down_at, up_at))
                             else None)
                           (List.init (rounds + 1) Fun.id)))))
    in
    let explored = ref 0 in
    let failure = ref None in
    (* depth-first over fate assignments, pruned by the fault budget *)
    let rec assign slot faults_left plan =
      if !failure <> None then ()
      else if slot = slots then begin
        let fates_arr = Array.of_list (List.rev plan) in
        let fates (round, li) = fates_arr.(round * List.length links + li) in
        List.iter
          (fun crash_plan ->
            if !failure = None then begin
              incr explored;
              match run_plan cfg ~ops ~rounds ~links ~fates ~crash_plan with
              | Some f -> failure := Some f
              | None -> ()
            end)
          crash_plans
      end
      else
        List.iter
          (fun fate ->
            let cost = if fate = Fdeliver then 0 else 1 in
            if faults_left >= cost then
              assign (slot + 1) (faults_left - cost) (fate :: plan))
          alphabet
    in
    assign 0 max_faults [];
    { explored = !explored; failure = !failure }

  (* ---- random tier: seeded atomic-step walks ----------------------- *)

  let random cfg ~ops ~seed ~walks ~walk_len =
    let caps = P.capabilities in
    let explored = ref 0 in
    let failure = ref None in
    let w = ref 0 in
    while !failure = None && !w < walks do
      let rng = Random.State.make [| seed; !w |] in
      let sys = make_sys cfg ops in
      let rev_sched = ref [] in
      let crashes = ref 0 in
      (try
         for _ = 1 to walk_len do
           (* enabled steps, weighted towards making progress *)
           let candidates = ref [] in
           let add weight step =
             for _ = 1 to weight do
               candidates := step :: !candidates
             done
           in
           for r = 0 to cfg.replicas - 1 do
             let d = sys.drv.(r) in
             if D.down d then begin
               add 4 (Schedule.Recover r)
             end
             else begin
               add 2 (Schedule.Tick r);
               if sys.ops_done.(r) < cfg.script_len then add 3 (Schedule.Op r);
               if caps.tolerates_crash && !crashes < 2 then
                 add 1 (Schedule.Crash r)
             end
           done;
           iter_links sys (fun s t ->
               if not (Queue.is_empty sys.links.(s).(t)) then begin
                 add 5 (Schedule.Deliver (s, t));
                 add 1 (Schedule.Duplicate (s, t));
                 if caps.tolerates_drop then add 1 (Schedule.Drop (s, t));
                 if caps.tolerates_delay then add 1 (Schedule.Delay (s, t))
               end;
               if not (Queue.is_empty sys.held.(s).(t)) then
                 add 2 (Schedule.Release (s, t)));
           match !candidates with
           | [] -> ()
           | cs ->
               let arr = Array.of_list cs in
               let step = arr.(Random.State.int rng (Array.length arr)) in
               (match step with Schedule.Crash _ -> incr crashes | _ -> ());
               rev_sched := step :: !rev_sched;
               sys.step_no <- List.length !rev_sched - 1;
               exec_step sys step
         done;
         flush sys;
         incr explored
       with Violation v ->
         incr explored;
         failure := Some (List.rev !rev_sched, v));
      incr w
    done;
    { explored = !explored; failure = !failure }

  (* ---- shrinking --------------------------------------------------- *)

  let reproduces cfg ~ops ~invariant sched =
    match run cfg ~ops sched with
    | Some v -> v.invariant = invariant
    | None -> false

  let drop_slice l ~at ~len =
    List.filteri (fun i _ -> i < at || i >= at + len) l

  let shrink cfg ~ops sched violation =
    let invariant = violation.invariant in
    let repro = reproduces cfg ~ops ~invariant in
    (* chunk pass: try removing halves, quarters, ... to cut the common
       case fast before the O(n²) single-step fixpoint *)
    let rec chunk_pass sched len =
      if len < 1 then sched
      else begin
        let n = List.length sched in
        let rec scan at sched =
          if at >= List.length sched then sched
          else
            let candidate = drop_slice sched ~at ~len in
            if repro candidate then scan at candidate
            else scan (at + len) sched
        in
        let sched = scan 0 sched in
        let next = if List.length sched < n then len else len / 2 in
        chunk_pass sched next
      end
    in
    let rec single_fixpoint sched =
      let rec scan at sched removed =
        if at >= List.length sched then (sched, removed)
        else
          let candidate = drop_slice sched ~at ~len:1 in
          if repro candidate then scan at candidate true
          else scan (at + 1) sched removed
      in
      let sched, removed = scan 0 sched false in
      if removed then single_fixpoint sched else sched
    in
    if not (repro sched) then sched
    else single_fixpoint (chunk_pass sched (List.length sched / 2))
end
