(** Replayable schedules for the SEC model checker.

    A schedule is the complete adversary: a finite list of atomic steps
    the checker executes against a fresh replica group.  Everything a
    run does — which replica applies its next scripted operation, who
    ticks, which in-flight message is delivered, duplicated, dropped,
    held or released, who crashes and who recovers — is one {!step}, so
    a violation is reproduced exactly by replaying its step list (and
    shrunk by deleting steps from it).

    Steps that are not enabled at replay time (delivering on an empty
    link, crashing a node that is already down, …) are {e skipped}, not
    errors: the shrinker deletes steps one at a time, which routinely
    strands later steps, and skip-if-disabled keeps every sub-list of a
    valid schedule a valid schedule. *)

type step =
  | Op of int  (** replica applies the next operation of its script. *)
  | Tick of int  (** replica runs one synchronization step. *)
  | Deliver of int * int  (** deliver the head of link (src, dst). *)
  | Duplicate of int * int
      (** deliver the head of link (src, dst) twice back-to-back — the
          idempotent-redelivery probe. *)
  | Drop of int * int  (** discard the head of link (src, dst). *)
  | Delay of int * int
      (** move the head of link (src, dst) into the link's hold buffer. *)
  | Release of int * int
      (** re-queue the oldest held message of link (src, dst) at the
          {e back} of the queue — delayed messages arrive late and out
          of order. *)
  | Crash of int
  | Recover of int

val pp_step : Format.formatter -> step -> unit

type t = step list

val to_string : t -> string
(** Compact comma-separated encoding, e.g.
    ["op:0,tick:0,dlv:0:1,dup:1:0,crash:0,rec:0"]. *)

val of_string : string -> t
(** Inverse of {!to_string}.
    @raise Invalid_argument on malformed input, naming the bad token. *)
