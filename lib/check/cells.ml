(* Registry dispatch for the SEC checker; see cells.mli. *)

module Registry = Crdt_engine.Registry

type tier_cfg = {
  checker : Checker.config;
  rounds : int;
  max_faults : int;
  seed : int;
  walks : int;
  walk_len : int;
}

let default_cfg =
  {
    checker = Checker.default_config;
    rounds = 3;
    max_faults = 2;
    seed = 42;
    walks = 64;
    walk_len = 80;
  }

type failure = {
  invariant : string;
  detail : string;
  schedule : string;
  shrunk : string;
}

type report = {
  proto : string;
  crdt : string;
  exhaustive : int;
  walks : int;
  failure : failure option;
}

let cells () =
  List.concat_map
    (fun proto ->
      let pname = Registry.protocol_name proto in
      List.filter_map
        (fun spec ->
          let module S = (val spec : Registry.CRDT_SPEC) in
          match S.excluded pname with
          | None -> Some (pname, S.name)
          | Some _ -> None)
        Registry.crdts)
    Registry.protocols

let check_cell cfg ~proto ~crdt =
  let maker = Registry.find_protocol proto in
  let spec = Registry.find_crdt crdt in
  let module S = (val spec) in
  (match S.excluded proto with
  | Some reason ->
      invalid_arg
        (Printf.sprintf "cell %s x %s is excluded: %s" proto crdt reason)
  | None -> ());
  let module P =
    (val Registry.instantiate maker
           (module S.C : Crdt_proto.Protocol_intf.CRDT
             with type t = S.C.t
              and type op = S.C.op))
  in
  let module K = Checker.Make (S.C) (P) in
  let ops ~node ~index state = S.serve_ops ~id:node ~tick:index state in
  let mk_failure checker_cfg (sched, (v : Checker.violation)) =
    let shrunk = K.shrink checker_cfg ~ops sched v in
    {
      invariant = v.invariant;
      detail = v.detail;
      schedule = Schedule.to_string sched;
      shrunk = Schedule.to_string shrunk;
    }
  in
  let ex =
    K.exhaustive cfg.checker ~ops ~rounds:cfg.rounds ~max_faults:cfg.max_faults
  in
  match ex.failure with
  | Some f ->
      {
        proto;
        crdt;
        exhaustive = ex.explored;
        walks = 0;
        failure = Some (mk_failure cfg.checker f);
      }
  | None ->
      (* the random tier widens the group to 3 replicas for cross-talk
         the 2-replica exhaustive scope cannot produce *)
      let rcfg =
        { cfg.checker with replicas = max 3 cfg.checker.replicas }
      in
      let rnd =
        if cfg.walks = 0 then ({ explored = 0; failure = None } : Checker.outcome)
        else
          K.random rcfg ~ops ~seed:cfg.seed ~walks:cfg.walks
            ~walk_len:cfg.walk_len
      in
      {
        proto;
        crdt;
        exhaustive = ex.explored;
        walks = rnd.explored;
        failure = Option.map (mk_failure rcfg) rnd.failure;
      }

let replay checker_cfg ~proto ~crdt ~schedule =
  let maker = Registry.find_protocol proto in
  let spec = Registry.find_crdt crdt in
  let module S = (val spec) in
  (match S.excluded proto with
  | Some reason ->
      invalid_arg
        (Printf.sprintf "cell %s x %s is excluded: %s" proto crdt reason)
  | None -> ());
  let module P =
    (val Registry.instantiate maker
           (module S.C : Crdt_proto.Protocol_intf.CRDT
             with type t = S.C.t
              and type op = S.C.op))
  in
  let module K = Checker.Make (S.C) (P) in
  let ops ~node ~index state = S.serve_ops ~id:node ~tick:index state in
  K.run checker_cfg ~ops (Schedule.of_string schedule)
