(* Replayable checker schedules; see schedule.mli. *)

type step =
  | Op of int
  | Tick of int
  | Deliver of int * int
  | Duplicate of int * int
  | Drop of int * int
  | Delay of int * int
  | Release of int * int
  | Crash of int
  | Recover of int

type t = step list

let step_to_string = function
  | Op r -> Printf.sprintf "op:%d" r
  | Tick r -> Printf.sprintf "tick:%d" r
  | Deliver (s, d) -> Printf.sprintf "dlv:%d:%d" s d
  | Duplicate (s, d) -> Printf.sprintf "dup:%d:%d" s d
  | Drop (s, d) -> Printf.sprintf "drop:%d:%d" s d
  | Delay (s, d) -> Printf.sprintf "dly:%d:%d" s d
  | Release (s, d) -> Printf.sprintf "rel:%d:%d" s d
  | Crash r -> Printf.sprintf "crash:%d" r
  | Recover r -> Printf.sprintf "rec:%d" r

let pp_step ppf s = Format.pp_print_string ppf (step_to_string s)
let to_string t = String.concat "," (List.map step_to_string t)

let step_of_string tok =
  let bad () = invalid_arg (Printf.sprintf "bad schedule token %S" tok) in
  let int s = match int_of_string_opt s with Some i -> i | None -> bad () in
  match String.split_on_char ':' tok with
  | [ "op"; r ] -> Op (int r)
  | [ "tick"; r ] -> Tick (int r)
  | [ "dlv"; s; d ] -> Deliver (int s, int d)
  | [ "dup"; s; d ] -> Duplicate (int s, int d)
  | [ "drop"; s; d ] -> Drop (int s, int d)
  | [ "dly"; s; d ] -> Delay (int s, int d)
  | [ "rel"; s; d ] -> Release (int s, int d)
  | [ "crash"; r ] -> Crash (int r)
  | [ "rec"; r ] -> Recover (int r)
  | _ -> bad ()

let of_string s =
  String.split_on_char ',' s
  |> List.filter_map (fun tok ->
         let tok = String.trim tok in
         if tok = "" then None else Some (step_of_string tok))
