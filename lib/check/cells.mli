(** Registry dispatch for the SEC checker: run {!Checker} tiers against
    any named protocol × CRDT cell.

    The op script of every cell is the registry's deterministic serve
    workload ([CRDT_SPEC.serve_ops]), so the checker exercises the same
    operation mix the socket runtime serves and any counterexample
    schedule replays bit-for-bit. *)

type tier_cfg = {
  checker : Checker.config;
  rounds : int;  (** exhaustive tier: rounds per schedule. *)
  max_faults : int;  (** exhaustive tier: non-deliver fate budget. *)
  seed : int;  (** random tier: base PRNG seed. *)
  walks : int;  (** random tier: number of walks (0 disables the tier). *)
  walk_len : int;  (** random tier: atomic steps per walk. *)
}

val default_cfg : tier_cfg
(** 2 replicas / 3 rounds / 2 faults exhaustively, then 64 random walks
    of 80 steps over 3 replicas (the random tier widens the group by
    one). *)

type failure = {
  invariant : string;
  detail : string;
  schedule : string;  (** original counterexample, {!Schedule.to_string}. *)
  shrunk : string;  (** locally minimal counterexample. *)
}

type report = {
  proto : string;
  crdt : string;
  exhaustive : int;  (** schedules fully explored by the exhaustive tier. *)
  walks : int;  (** random walks fully explored. *)
  failure : failure option;
}

val cells : unit -> (string * string) list
(** Every non-excluded (protocol, crdt) pair of the registry, protocols
    in reporting order. *)

val check_cell : tier_cfg -> proto:string -> crdt:string -> report
(** Run the exhaustive tier then (if no violation and [walks > 0]) the
    random tier; a violation is shrunk before reporting.
    @raise Invalid_argument on unknown names or an excluded cell. *)

val replay :
  Checker.config ->
  proto:string ->
  crdt:string ->
  schedule:string ->
  Checker.violation option
(** Re-execute one schedule (as printed in a {!failure}) against a fresh
    cell. @raise Invalid_argument on unknown names, an excluded cell or
    a malformed schedule. *)
