(** Mechanized SEC checking of one protocol × CRDT cell.

    The checker runs a small replica group (2–3 nodes, full mesh) of one
    protocol instance against adversarial schedules ({!Schedule.t}) and
    asserts the strong-eventual-consistency contract at every step:

    - {b monotonicity}: a replica's CRDT state only ever inflates
      ([leq before after] across every operation, delivery and recovery);
    - {b phantom-state}: no replica ever holds state outside the oracle —
      the running join of every locally applied operation's effect
      ([leq state oracle] after every step), so protocols cannot invent
      irreducibles;
    - {b redelivery}: delivering the same message twice back-to-back
      leaves the CRDT state unchanged (duplication is a mandatory
      tolerance of every protocol);
    - {b durability}: [P.crash] preserves the durable CRDT state exactly;
      under a durable config ({!config.durable}) the crash model sharpens
      to a real process restart: each replica writes through the driver's
      persist seam at the same durability points the socket runtime uses
      (ops immediately, deliveries at the next tick), a crash additionally
      asserts the on-disk image is a lattice prefix of the pre-crash
      state, and recovery reboots from that image via [P.load] — losing
      all volatile protocol state and any unsynced deliveries — instead
      of [P.recover].  Monotonicity is then replaced by containment
      across the restart (the reloaded state may regress but must stay
      within both the pre-crash state and the oracle), and the flush
      phase proves the protocol's recovery exchange re-converges to the
      oracle from the disk image alone;
    - {b convergence}: once the schedule ends, held messages are
      released, crashed replicas recover, and a bounded number of
      fault-free flush rounds must bring {e every} replica to a state
      equal to the oracle.  Failure splits into ["convergence"] (replicas
      still disagree pairwise) and ["data-loss"] (replicas agree on a
      state strictly below the oracle — an operation's effect vanished).

    Two exploration tiers share those invariants: {!Make.exhaustive}
    enumerates {e every} round-structured schedule in a small scope (per
    round and per link, all messages get one fate out of
    deliver / duplicate / drop / delay, bounded by a fault budget, crossed
    with every crash–recover window), and {!Make.random} walks seeded
    random interleavings at atomic-step granularity for larger scopes.
    Fault fates are gated by the protocol's declared capabilities, so a
    protocol is only attacked with faults it claims to tolerate.

    A violation comes with the exact schedule that produced it;
    {!Make.shrink} reduces it to a locally minimal counterexample
    (removing any single remaining step makes the violation disappear)
    whose {!Schedule.to_string} form replays from the CLI
    ([crdtsync check --replay]). *)

type config = {
  replicas : int;  (** group size (full mesh); 2 for exhaustive scope. *)
  script_len : int;  (** scripted operations per replica. *)
  flush_rounds : int;
      (** fault-free rounds allowed for post-schedule convergence. *)
  max_steps : int;  (** safety cap on message-drain loops. *)
  durable : bool;
      (** model crash/recover as kill -9 + restart-from-disk ([P.load])
          instead of in-memory [P.recover].  Only takes effect for
          protocols whose capabilities declare [durable_restart]; others
          keep the in-memory model even under a durable config. *)
}

val default_config : config
(** 2 replicas, 4 ops each (enough to reach the registry orset workload's
    remove at script index 3), 48 flush rounds, 100_000-step drain cap,
    in-memory crash model. *)

type violation = {
  invariant : string;
      (** ["monotonicity"] | ["phantom-state"] | ["redelivery"] |
          ["durability"] | ["convergence"] | ["data-loss"]. *)
  detail : string;
  at_step : int;  (** schedule index, or -1 when found during flush. *)
}

type outcome = {
  explored : int;  (** schedules fully executed. *)
  failure : (Schedule.t * violation) option;
      (** first violating schedule, un-shrunk. *)
}

module Make (C : Crdt_core.Lattice_intf.CRDT) (_ : sig
  include
    Crdt_proto.Protocol_intf.PROTOCOL with type crdt = C.t and type op = C.op
end) : sig
  type ops = node:int -> index:int -> C.t -> C.op list
  (** The bounded op script: [ops ~node ~index state] is what replica
      [node] applies as its [index]-th scripted operation (it may read
      the replica's current state — the schedule fixes {e when} it runs,
      so replay stays deterministic). *)

  val run : config -> ops:ops -> Schedule.t -> violation option
  (** Execute one schedule from a fresh replica group (skipping disabled
      steps), then flush; [None] means every invariant held. *)

  val exhaustive :
    config -> ops:ops -> rounds:int -> max_faults:int -> outcome
  (** Enumerate every round-structured schedule of [rounds] rounds:
      all assignments of one fate per (link, round) slot with at most
      [max_faults] non-deliver fates, crossed with every crash–recover
      window when the protocol tolerates crashes.  Stops at the first
      violation. *)

  val random :
    config ->
    ops:ops ->
    seed:int ->
    walks:int ->
    walk_len:int ->
    outcome
  (** [walks] seeded random walks of [walk_len] atomic steps each,
      deliver-biased, faults gated by capabilities.  Walk [w] derives its
      PRNG from [(seed, w)], so any failure names a reproducible walk. *)

  val shrink : config -> ops:ops -> Schedule.t -> violation -> Schedule.t
  (** Greedy chunk-then-single-step removal while a violation of the
      same invariant class reproduces; the result is locally minimal
      (removing any one step no longer reproduces it). *)
end
