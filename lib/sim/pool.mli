(** Fixed work-pool over OCaml 5 domains (stdlib only).

    [size - 1] resident worker domains plus the caller's domain execute
    jobs of [size] shards; a pool of size 1 spawns nothing and runs jobs
    inline, so sequential and parallel callers share one code path. *)

type t

val create : int -> t
(** Spawn a pool of [size] shards (1 <= size <= 64). *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run t job] executes [job shard] for every shard [0 .. size t - 1]
    (shard 0 on the calling domain) and returns once all shards have
    finished.  A shard's exception is re-raised after the barrier. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool size f] runs [f] with a fresh pool and always shuts it
    down, including on exception. *)
