(** Fixed work-pool over OCaml 5 domains (stdlib only).

    A pool of [size] shards runs one job per barrier: the caller's
    domain executes shard 0 and [size - 1] resident worker domains
    execute shards 1 .. size-1.  Workers are spawned once at pool
    creation and parked on a condition variable between jobs, so the
    per-round cost of parallelism is two mutex handshakes, not a
    [Domain.spawn].

    A pool of size 1 never spawns a domain and [run] degenerates to a
    plain call — the sequential engine and the parallel engine share one
    code path. *)

type t = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t;  (** signalled when a new job is published. *)
  finished : Condition.t;  (** signalled when the last shard completes. *)
  mutable job : int -> unit;
  mutable epoch : int;  (** bumped per job; workers run each epoch once. *)
  mutable pending : int;  (** worker shards still running this epoch. *)
  mutable stop : bool;
  mutable failed : exn option;  (** first worker exception, re-raised by [run]. *)
  mutable domains : unit Domain.t list;
}

let size t = t.size

let worker t shard =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while t.epoch = !seen && not t.stop do
      Condition.wait t.work t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      seen := t.epoch;
      let job = t.job in
      Mutex.unlock t.mutex;
      (try job shard
       with e ->
         Mutex.lock t.mutex;
         if t.failed = None then t.failed <- Some e;
         Mutex.unlock t.mutex);
      Mutex.lock t.mutex;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.signal t.finished;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create size =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  (* The OCaml runtime caps live domains at 128. *)
  if size > 64 then invalid_arg "Pool.create: size must be <= 64";
  let t =
    {
      size;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = ignore;
      epoch = 0;
      pending = 0;
      stop = false;
      failed = None;
      domains = [];
    }
  in
  t.domains <-
    List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

(** Run [job shard] for every shard [0 .. size-1]; returns when all have
    completed.  Exceptions raised by any shard are re-raised here (the
    caller's shard first). *)
let run t job =
  if t.size = 1 then job 0
  else begin
    Mutex.lock t.mutex;
    t.job <- job;
    t.pending <- t.size - 1;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    let caller = (try job 0; None with e -> Some e) in
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.finished t.mutex
    done;
    let from_worker = t.failed in
    t.failed <- None;
    Mutex.unlock t.mutex;
    match (caller, from_worker) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()
  end

let shutdown t =
  if t.domains <> [] then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool size f =
  let t = create size in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
