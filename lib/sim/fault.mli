(** Adversity plans for the simulation engine: per-message randomness
    (duplication, loss, reordering), scheduled link partitions, per-link
    delay, and node crash–restart.  See {!Runner} for the execution
    semantics; partition/delay/crash decisions are pure functions of
    [(round, src, dst)], so they are bit-identical at every domain
    count.  Fault classes beyond duplication/reordering are checked
    capabilities: {!require} rejects a plan a protocol did not declare
    tolerance for. *)

type partition = {
  from_round : int;  (** first round the cut is active. *)
  heal_round : int;  (** first round the links are back up. *)
  islands : int list list;
      (** groups that cannot talk to each other while the partition is
          active; unlisted nodes form one extra residual group. *)
}

type delay_rule = {
  src : int;
  dst : int;
  hold : int;  (** rounds a message on the link is held ([≥ 1]). *)
}

type crash = {
  victim : int;
  crash_round : int;  (** volatile state is lost at the start of this round. *)
  recover_round : int;  (** the node rejoins at the start of this round. *)
}

type plan = {
  duplicate : float;  (** probability a delivered message is duplicated. *)
  drop : float;  (** probability a message is dropped. *)
  shuffle : bool;  (** randomize delivery order within a destination. *)
  partitions : partition list;
  delays : delay_rule list;
  crashes : crash list;
  seed : int;  (** base seed of the per-destination fault streams. *)
}

val none : plan
(** No faults; seed 7. *)

val partition :
  from_round:int -> heal_round:int -> int list list -> partition
(** Smart constructors.  They raise [Invalid_argument] on scheduling
    mistakes that need no node/round context (empty island list,
    non-positive windows, hold < 1); {!validate} performs the full
    plan check. *)

val delay : src:int -> dst:int -> hold:int -> delay_rule
val crash : victim:int -> crash_round:int -> recover_round:int -> crash

val rng_active : plan -> bool
(** Whether the plan consumes per-destination PRNG streams
    (duplicate/drop/shuffle). *)

val structural : plan -> bool
(** Whether the plan schedules partitions, delays or crashes. *)

val active : plan -> bool

val unsupported :
  caps:Crdt_proto.Protocol_intf.capabilities -> plan -> string list
(** Fault classes the plan demands but [caps] does not declare
    tolerance for (["drop"], ["partition"], ["delay"], ["crash"]). *)

val supported : caps:Crdt_proto.Protocol_intf.capabilities -> plan -> bool

val require :
  protocol:string -> caps:Crdt_proto.Protocol_intf.capabilities -> plan -> unit
(** @raise Invalid_argument naming the protocol and the missing fault
    classes when the plan is {!unsupported}. *)

val validate : nodes:int -> rounds:int -> plan -> unit
(** Structural validation against the run's shape.
    @raise Invalid_argument on out-of-range probabilities or node ids,
    overlapping islands or crash windows, non-positive hold, or
    heal/recovery rounds past the measured phase. *)

val island_map : nodes:int -> partition -> int array
(** Island id per node; unlisted nodes share the residual island
    [List.length islands]. *)

val last_heal : plan -> int
(** Latest scheduled heal/recovery round (0 when the plan has none) —
    the reference point for time-to-converge-after-heal. *)
