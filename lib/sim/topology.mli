(** Static network topologies (Fig. 6 and variants).

    A topology is an undirected connected graph over nodes [0 .. n-1];
    replicas synchronize only with their graph neighbors.  All
    constructors validate connectivity and reject self-loops. *)

type t

val name : t -> string
val size : t -> int

val neighbors : t -> int -> int list
(** @raise Invalid_argument on out-of-range node ids. *)

val degree : t -> int -> int

val of_edges : name:string -> n:int -> (int * int) list -> t
(** Build from an undirected edge list.
    @raise Invalid_argument on self-loops, out-of-range endpoints or
    disconnected graphs. *)

val edges : t -> (int * int) list
(** Undirected edges, each reported once with the smaller endpoint
    first. *)

val line : int -> t
val ring : int -> t
val star : int -> t
val full_mesh : int -> t

val tree : int -> t
(** Complete binary tree in heap order.  With [n = 15] this is the
    paper's tree topology: root degree 2, internal degree 3, leaves 1. *)

val circulant : offsets:int list -> int -> t
(** Node [i] connected to [i ± o] for each offset. *)

val partial_mesh : int -> t
(** The paper's partial mesh: 4-regular, rich in cycles (circulant with
    offsets {1, 2}).  Requires [n ≥ 5]. *)

val grid : rows:int -> cols:int -> t

val is_acyclic : t -> bool
(** True when BP alone suffices for optimal propagation (no redundant
    paths). *)

val pp : Format.formatter -> t -> unit

val of_name : string -> int -> t
(** Name → builder dispatch: ["tree"], ["mesh"]/["partial-mesh"],
    ["ring"], ["line"], ["star"], ["full"]/["full-mesh"].
    @raise Invalid_argument on an unknown name, listing the known ones. *)
