(** Measurement records shared by the simulator and the bench harness.

    Weights count lattice elements (the Table I metric: set elements and
    map entries); byte figures follow the paper's wire-size conventions
    (node id = 20 B, int = 8 B). *)

type accounting = Estimate | Exact
    (** How byte figures are attributed: [Estimate] uses the protocols'
        byte models (node id = 20 B, int = 8 B); [Exact] additionally
        records exact framed wire sizes in the [wire_bytes] counters. *)

val accounting_name : accounting -> string

type round = {
  messages : int;  (** messages delivered this round. *)
  payload : int;  (** lattice elements shipped. *)
  metadata : int;  (** metadata units shipped. *)
  payload_bytes : int;
  metadata_bytes : int;
  wire_bytes : int;
      (** exact framed wire bytes of the messages delivered this round;
          0 under [Estimate] accounting. *)
  memory_weight : int;
      (** elements resident across all nodes after the round. *)
  memory_bytes : int;
  metadata_memory_bytes : int;
  ops_applied : int;  (** application operations applied this round. *)
  dropped : int;
      (** messages lost this round: probabilistic drops plus messages
          addressed to a crashed node.  Dropped messages contribute
          nothing to [messages] or the payload/metadata tallies. *)
  held : int;
      (** messages captured by a per-link delay this round; each is
          counted in [messages] later, at its delivery round. *)
  partitioned : int;  (** messages cut by an active partition this round. *)
  sync_rounds : int;
      (** 1 when at least one pure control message (zero payload weight,
          non-zero metadata) was delivered this round — digest exchanges
          and reconciliation-session traffic; 0 otherwise. *)
  digest_bytes : int;
      (** wire bytes of that control traffic this round (estimate bytes
          under [Estimate] accounting). *)
}

val empty_round : round

type summary = {
  rounds : int;
  total_messages : int;
  total_payload : int;
  total_metadata : int;
  total_payload_bytes : int;
  total_metadata_bytes : int;
  total_wire_bytes : int;
      (** exact framed wire bytes over all rounds; 0 under [Estimate]. *)
  avg_memory_weight : float;
      (** mean across rounds of system-wide resident elements. *)
  avg_memory_bytes : float;
  max_memory_weight : int;
  avg_metadata_memory_bytes : float;
  total_ops : int;
      (** application operations applied over the rounds. *)
  total_dropped : int;
  total_held : int;
  total_partitioned : int;
  total_sync_rounds : int;
      (** rounds that carried pure control traffic (digests, sessions). *)
  total_digest_bytes : int;
      (** wire bytes of that control traffic over all rounds. *)
}

val summarize : round array -> summary

val ops_per_sec : summary -> seconds:float -> float
(** Operations per wall-clock second; NaN on a non-positive interval. *)

val msgs_per_sec : summary -> seconds:float -> float
(** Messages per wall-clock second; NaN on a non-positive interval. *)

val total_transmission : summary -> int
(** Payload + metadata, in element units. *)

val total_transmission_bytes : summary -> int

val transmission_bytes : accounting:accounting -> summary -> int
(** Headline byte figure under the given accounting mode: exact framed
    wire bytes when [Exact], the estimate model otherwise. *)

val metadata_fraction : summary -> float
(** Metadata share of all transmitted bytes (Section V-B2); 0 when
    nothing was transmitted. *)

val ratio : baseline:int -> int -> float
(** [ratio ~baseline x = x / baseline]; NaN on a zero baseline. *)

val fratio : baseline:float -> float -> float
