(** Zipf-distributed sampling over [0 .. n-1].

    Rank [k] (1-based) has probability proportional to [1 / k^s]; the
    Retwis evaluation sweeps the coefficient [s] from 0.5 (low contention)
    to 1.5 (high contention), following [24]. *)

type t = { cumulative : float array; rng : Random.State.t }

let make ~rng ~s ~n =
  if n <= 0 then invalid_arg "Zipf.make: need a positive support";
  if s < 0. then invalid_arg "Zipf.make: negative coefficient";
  let cumulative = Array.make n 0. in
  let total = ref 0. in
  for k = 0 to n - 1 do
    total := !total +. (1. /. Float.pow (float_of_int (k + 1)) s);
    cumulative.(k) <- !total
  done;
  (* Normalize so the last entry is exactly 1. *)
  let norm = !total in
  Array.iteri (fun k v -> cumulative.(k) <- v /. norm) cumulative;
  { cumulative; rng }

let support t = Array.length t.cumulative

(** Rank for a given uniform draw [u ∈ [0, 1)]: the first index whose
    cumulative mass reaches [u].  Exposed so the inversion can be tested
    at exact boundary values without going through the PRNG. *)
let sample_at t u =
  (* Binary search for the first index whose cumulative mass reaches u. *)
  let lo = ref 0 and hi = ref (Array.length t.cumulative - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cumulative.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

(** Draw a sample; rank 0 is the most popular item. *)
let sample t = sample_at t (Random.State.float t.rng 1.0)

(** Exact probability mass of rank 0 — the first entry of the normalized
    CDF, not an empirical measurement. *)
let head_mass t = t.cumulative.(0)
