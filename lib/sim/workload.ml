(** Re-export of {!Crdt_engine.Workload}, the micro-benchmark workload
    generators (Table I).  They moved into the engine library so the
    registry's workload adapters and the simulator share one definition;
    this alias keeps [Crdt_sim.Workload] working for existing callers. *)

include Crdt_engine.Workload
