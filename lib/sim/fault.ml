(** Adversity plans for the simulation engine.

    A {!plan} bundles every transport- and node-level fault the runner can
    inject:

    - per-message randomness — {e duplication}, {e loss} and
      {e reordering} — drawn from per-destination PRNG streams;
    - {e link partitions}: during rounds [from_round ≤ r < heal_round],
      messages between nodes in different islands are cut;
    - {e per-link delay}: every message on a delayed link is held [hold]
      rounds and delivered (unconditionally) at the release round;
    - {e node crash–restart}: at [crash_round] the victim loses its
      volatile protocol state ({!Crdt_proto.Protocol_intf.PROTOCOL.crash})
      and goes dark — it neither ticks nor applies operations, and
      messages addressed to it are lost — until [recover_round], when
      {!Crdt_proto.Protocol_intf.PROTOCOL.recover} rebuilds its working
      state from the durable image.

    Partition, delay and crash decisions are pure functions of
    [(round, src, dst)] — no randomness — so they are bit-identical at
    every domain count by construction; only duplicate/drop/shuffle
    consult the per-destination streams.

    Every fault class beyond duplication/reordering (which all protocols
    must tolerate, see {!Crdt_proto.Protocol_intf}) is a {e checked
    capability}: {!require} rejects a plan up front unless the protocol
    declares tolerance, so a lossy plan can no longer silently produce a
    diverged run. *)

type partition = {
  from_round : int;  (** first round the cut is active. *)
  heal_round : int;  (** first round the links are back up. *)
  islands : int list list;
      (** groups that cannot talk to each other while the partition is
          active; nodes listed in no island form one extra residual
          group. *)
}

type delay_rule = {
  src : int;
  dst : int;
  hold : int;  (** rounds a message on the link is held ([≥ 1]). *)
}

type crash = {
  victim : int;
  crash_round : int;  (** volatile state is lost at the start of this round. *)
  recover_round : int;  (** the node rejoins at the start of this round. *)
}

type plan = {
  duplicate : float;  (** probability a delivered message is duplicated. *)
  drop : float;  (** probability a message is dropped. *)
  shuffle : bool;  (** randomize delivery order within a destination. *)
  partitions : partition list;
  delays : delay_rule list;
  crashes : crash list;
  seed : int;
      (** base seed of the per-destination fault streams: destination
          [d] draws from [Random.State.make [| seed; d |]], so random
          fault decisions do not depend on how nodes are sharded across
          domains. *)
}

let none =
  {
    duplicate = 0.;
    drop = 0.;
    shuffle = false;
    partitions = [];
    delays = [];
    crashes = [];
    seed = 7;
  }

(* Smart constructors, mainly for tests and the CLI.  They reject the
   scheduling mistakes that do not need node/round context; the full
   check (ranges, island overlap, heal deadline) runs in [validate]. *)
let partition ~from_round ~heal_round islands =
  if islands = [] then invalid_arg "Fault.partition: no islands";
  if from_round < 0 || heal_round <= from_round then
    invalid_arg "Fault.partition: need 0 <= from_round < heal_round";
  { from_round; heal_round; islands }

let delay ~src ~dst ~hold =
  if hold < 1 then invalid_arg "Fault.delay: hold must be >= 1 round";
  { src; dst; hold }

let crash ~victim ~crash_round ~recover_round =
  if crash_round < 0 || recover_round <= crash_round then
    invalid_arg "Fault.crash: need 0 <= crash_round < recover_round";
  { victim; crash_round; recover_round }

let rng_active p = p.duplicate > 0. || p.drop > 0. || p.shuffle
let structural p = p.partitions <> [] || p.delays <> [] || p.crashes <> []
let active p = rng_active p || structural p

(** Fault classes the plan demands but [caps] does not declare. *)
let unsupported ~(caps : Crdt_proto.Protocol_intf.capabilities) p =
  List.filter_map
    (fun (needed, ok, cls) -> if needed && not ok then Some cls else None)
    [
      (p.drop > 0., caps.tolerates_drop, "drop");
      (p.partitions <> [], caps.tolerates_partition, "partition");
      (p.delays <> [], caps.tolerates_delay, "delay");
      (p.crashes <> [], caps.tolerates_crash, "crash");
    ]

let supported ~caps p = unsupported ~caps p = []

(** Fail fast when the plan demands a fault class the protocol does not
    declare tolerance for — the former behaviour was a silently diverged
    run. @raise Invalid_argument naming the protocol and the classes. *)
let require ~protocol ~caps p =
  match unsupported ~caps p with
  | [] -> ()
  | classes ->
      invalid_arg
        (Printf.sprintf
           "Runner.run: fault plan injects {%s} but protocol %s does not \
            declare tolerance for %s (see Protocol_intf.capabilities); the \
            run would silently diverge"
           (String.concat ", " classes) protocol
           (if List.length classes = 1 then "it" else "them"))

(** Structural validation against the run's shape.
    @raise Invalid_argument on out-of-range probabilities or node ids,
    empty or overlapping islands, non-positive hold, inverted or
    overlapping crash windows, or schedules extending past [rounds]
    (partitions must heal and crashed nodes must recover within the
    measured phase, so every run ends with the full system online). *)
let validate ~nodes ~rounds p =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let prob name v =
    if not (v >= 0. && v <= 1.) then
      fail "Fault.validate: %s probability %g outside [0, 1]" name v
  in
  prob "duplicate" p.duplicate;
  prob "drop" p.drop;
  let check_node what i =
    if i < 0 || i >= nodes then
      fail "Fault.validate: %s node %d outside [0, %d)" what i nodes
  in
  List.iter
    (fun part ->
      if part.islands = [] then fail "Fault.validate: partition with no islands";
      if not (0 <= part.from_round && part.from_round < part.heal_round) then
        fail "Fault.validate: partition window [%d, %d) is empty or negative"
          part.from_round part.heal_round;
      if part.heal_round > rounds then
        fail
          "Fault.validate: partition heals at round %d, past the measured \
           phase (%d rounds)"
          part.heal_round rounds;
      let seen = Hashtbl.create 16 in
      List.iter
        (List.iter (fun i ->
             check_node "partition island" i;
             if Hashtbl.mem seen i then
               fail "Fault.validate: node %d appears in two islands" i;
             Hashtbl.add seen i ()))
        part.islands)
    p.partitions;
  List.iter
    (fun d ->
      check_node "delay src" d.src;
      check_node "delay dst" d.dst;
      if d.hold < 1 then
        fail "Fault.validate: delay hold %d on link %d→%d must be ≥ 1" d.hold
          d.src d.dst)
    p.delays;
  let windows = Hashtbl.create 8 in
  List.iter
    (fun c ->
      check_node "crash victim" c.victim;
      if not (0 <= c.crash_round && c.crash_round < c.recover_round) then
        fail "Fault.validate: crash window [%d, %d) of node %d is empty or \
              negative"
          c.crash_round c.recover_round c.victim;
      if c.recover_round > rounds then
        fail
          "Fault.validate: node %d recovers at round %d, past the measured \
           phase (%d rounds)"
          c.victim c.recover_round rounds;
      let prev = Hashtbl.find_all windows c.victim in
      List.iter
        (fun (a, b) ->
          if c.crash_round < b && a < c.recover_round then
            fail "Fault.validate: overlapping crash windows for node %d"
              c.victim)
        prev;
      Hashtbl.add windows c.victim (c.crash_round, c.recover_round))
    p.crashes

(** Island id per node for one partition; unlisted nodes share the
    residual island [List.length islands]. *)
let island_map ~nodes p =
  let a = Array.make nodes (List.length p.islands) in
  List.iteri (fun gi ns -> List.iter (fun i -> a.(i) <- gi) ns) p.islands;
  a

(** Latest scheduled heal/recovery round of the plan (0 when it has
    none) — the reference point for time-to-converge-after-heal. *)
let last_heal p =
  let m =
    List.fold_left (fun acc (part : partition) -> max acc part.heal_round) 0
      p.partitions
  in
  List.fold_left (fun acc c -> max acc c.recover_round) m p.crashes
