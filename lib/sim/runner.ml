(** Round-based simulation driver.

    Substitutes the paper's Kubernetes/Emulab deployment: one simulated
    round corresponds to one synchronization interval (1 s in the paper).
    Per round, every node first executes its periodic update operations,
    then every node runs a synchronization step; messages are delivered
    and any protocol-level replies (e.g. Scuttlebutt's digest → pairs
    exchange) are processed until the network drains.  Transport-level
    faults can be injected: per-message duplication and reordering — the
    channel properties state-based CRDTs must tolerate (Section I) — and
    probabilistic message loss (tolerated by the retry-by-design
    protocols: state-based, ack-mode delta, Scuttlebutt, Merkle).

    After the measured rounds, the runner performs quiescent
    synchronization rounds (no further operations) until all replicas
    converge, and reports whether convergence was reached — every
    experiment doubles as a correctness check. *)

module Make (P : Crdt_proto.Protocol_intf.PROTOCOL) = struct
  type result = {
    rounds : Metrics.round array;  (** one record per measured round. *)
    quiesce_rounds : Metrics.round array;
        (** extra rounds needed to reach convergence. *)
    finals : P.crdt array;
    work : int array;  (** cumulative work units per node. *)
    converged : bool;
  }

  type fault_plan = {
    duplicate : float;  (** probability a delivered message is duplicated. *)
    drop : float;  (** probability a message is dropped (ack-mode only). *)
    shuffle : bool;  (** randomize delivery order within a round. *)
    rng : Random.State.t;
  }

  let no_faults =
    { duplicate = 0.; drop = 0.; shuffle = false; rng = Random.State.make [| 7 |] }

  let snapshot nodes (acc : Metrics.round) : Metrics.round =
    let memory_weight = ref 0
    and memory_bytes = ref 0
    and metadata_memory_bytes = ref 0 in
    Array.iter
      (fun n ->
        memory_weight := !memory_weight + P.memory_weight n;
        memory_bytes := !memory_bytes + P.memory_bytes n;
        metadata_memory_bytes :=
          !metadata_memory_bytes + P.metadata_memory_bytes n)
      nodes;
    {
      acc with
      memory_weight = !memory_weight;
      memory_bytes = !memory_bytes;
      metadata_memory_bytes = !metadata_memory_bytes;
    }

  (* Deliver a queue of (src, dst, message), accumulating measurements and
     processing protocol replies until the network drains. *)
  let deliver ~faults nodes queue (acc : Metrics.round) : Metrics.round =
    let acc = ref acc in
    let pending = Queue.create () in
    let push msgs = List.iter (fun m -> Queue.add m pending) msgs in
    push queue;
    while not (Queue.is_empty pending) do
      let batch =
        if faults.shuffle then begin
          let all = List.of_seq (Queue.to_seq pending) in
          Queue.clear pending;
          (* Fisher–Yates shuffle for delivery-order randomization. *)
          let arr = Array.of_list all in
          for i = Array.length arr - 1 downto 1 do
            let j = Random.State.int faults.rng (i + 1) in
            let tmp = arr.(i) in
            arr.(i) <- arr.(j);
            arr.(j) <- tmp
          done;
          Array.to_list arr
        end
        else begin
          let all = List.of_seq (Queue.to_seq pending) in
          Queue.clear pending;
          all
        end
      in
      List.iter
        (fun (src, dst, msg) ->
          let dropped = faults.drop > 0. && Random.State.float faults.rng 1. < faults.drop in
          acc :=
            {
              !acc with
              messages = !acc.messages + 1;
              payload = !acc.payload + P.payload_weight msg;
              metadata = !acc.metadata + P.metadata_weight msg;
              payload_bytes = !acc.payload_bytes + P.payload_bytes msg;
              metadata_bytes = !acc.metadata_bytes + P.metadata_bytes msg;
            };
          if not dropped then begin
            let deliveries =
              if
                faults.duplicate > 0.
                && Random.State.float faults.rng 1. < faults.duplicate
              then 2
              else 1
            in
            for _ = 1 to deliveries do
              let node, replies = P.handle nodes.(dst) ~src msg in
              nodes.(dst) <- node;
              push (List.map (fun (j, m) -> (dst, j, m)) replies)
            done
          end)
        batch
    done;
    !acc

  let sync_round ~faults nodes (acc : Metrics.round) : Metrics.round =
    let queue = ref [] in
    Array.iteri
      (fun i _ ->
        let node, msgs = P.tick nodes.(i) in
        nodes.(i) <- node;
        queue := !queue @ List.map (fun (j, m) -> (i, j, m)) msgs)
      nodes;
    deliver ~faults nodes !queue acc

  let all_equal ~equal nodes =
    let first = P.state nodes.(0) in
    Array.for_all (fun n -> equal (P.state n) first) nodes

  (** Run a simulation.

      [ops ~round ~node state] lists the operations node [node] performs
      at the start of [round] given its current local state (Retwis needs
      the state to read follower sets).  [quiesce_limit] bounds the
      post-measurement convergence phase. *)
  let run ?(faults = no_faults) ?(quiesce_limit = 64) ~equal ~topology ~rounds
      ~ops () =
    let n = Topology.size topology in
    let nodes =
      Array.init n (fun i ->
          P.init ~id:i ~neighbors:(Topology.neighbors topology i) ~total:n)
    in
    let measured =
      Array.init rounds (fun round ->
          Array.iteri
            (fun i _ ->
              List.iter
                (fun op -> nodes.(i) <- P.local_update nodes.(i) op)
                (ops ~round ~node:i (P.state nodes.(i))))
            nodes;
          let acc = sync_round ~faults nodes Metrics.empty_round in
          snapshot nodes acc)
    in
    (* Quiescent phase: keep synchronizing without new operations until
       all replicas agree (or the bound is hit). *)
    let quiesce = ref [] in
    let steps = ref 0 in
    while (not (all_equal ~equal nodes)) && !steps < quiesce_limit do
      incr steps;
      let acc = sync_round ~faults nodes Metrics.empty_round in
      quiesce := snapshot nodes acc :: !quiesce
    done;
    {
      rounds = measured;
      quiesce_rounds = Array.of_list (List.rev !quiesce);
      finals = Array.map P.state nodes;
      work = Array.map P.work nodes;
      converged = all_equal ~equal nodes;
    }

  (** Summary over the measured rounds only. *)
  let summary r = Metrics.summarize r.rounds

  (** Summary including the quiescent convergence tail. *)
  let full_summary r =
    Metrics.summarize (Array.append r.rounds r.quiesce_rounds)

  let total_work r = Array.fold_left ( + ) 0 r.work
end
