(** Round-based simulation driver.

    Substitutes the paper's Kubernetes/Emulab deployment: one simulated
    round corresponds to one synchronization interval (1 s in the paper).
    Per round, every node first executes its periodic update operations,
    then every node runs a synchronization step; messages are delivered
    and any protocol-level replies (e.g. Scuttlebutt's digest → pairs
    exchange) are processed in waves until the network drains.

    The per-replica state machine (apply → tick → ship → handle →
    crash/recover) lives in {!Crdt_engine.Driver}; this module is the
    {e transport}: wave scheduling, topology routing, fault injection and
    the domain pool.  All accounting flows through the drivers'
    {!Crdt_engine.Trace} sinks — one counting sink per shard becomes the
    {!Metrics.round} records, and [run ?sink] can attach a user sink
    (e.g. the JSONL trace writer) on top.

    {2 Fault injection}

    A {!Fault.plan} describes the adversity of a run: per-message
    duplication and reordering — the channel properties state-based
    CRDTs must tolerate (Section I) — plus four {e declared-capability}
    fault classes: probabilistic loss, scheduled link partitions (healed
    at a known round), per-link delay (messages held a fixed number of
    rounds) and node crash–restart.  {!run} validates the plan against
    {!Crdt_proto.Protocol_intf.PROTOCOL.capabilities} and fails fast on
    a class the protocol does not declare, instead of the former
    behaviour of silently returning a diverged run.

    Execution semantics, per round: crash/recover events and due delayed
    messages are applied at the round boundary ([begin_round]); a
    crashed node neither ticks nor applies operations, loses its
    volatile protocol state ([P.crash]) and keeps its durable state, and
    messages addressed to it are counted as dropped; at [recover_round]
    the node rejoins via [P.recover].  Partition cuts and delay captures
    are decided per message at delivery time as pure functions of
    [(round, src, dst)]; a message released from a delay is delivered
    unconditionally (its fault checks ran when it was captured).

    {2 Engine}

    Delivery is organized as {e waves} of per-destination inboxes: a
    wave handles every pending message, grouped by destination, and the
    replies form the next wave.  Since message handling only ever
    touches the destination's driver, the destinations of one wave are
    mutually independent, which gives both the allocation-light
    sequential path (growable array buffers instead of list appends,
    mutable per-shard counters folded into a {!Metrics.round} once per
    round) and a race-free parallel mode: a fixed {!Pool} of domains
    shards the node range, and shard [s] owns nodes [s·n/W .. (s+1)·n/W)
    for ticking, delivery and memory snapshots alike.  Fault randomness
    is drawn from per-destination PRNG streams (seeded from
    [fault_plan.seed] and the destination id), partition/delay/crash
    decisions are deterministic in [(round, src, dst)], and per-shard
    counters are merged in shard order, so for a fixed seed the parallel
    engine is bit-identical to the sequential one at every [domains]
    setting.

    After the measured rounds, the runner performs quiescent
    synchronization rounds (no further operations) until all replicas
    converge, and reports whether convergence was reached — every
    experiment doubles as a correctness check. *)

module Trace = Crdt_engine.Trace

module Make (P : Crdt_proto.Protocol_intf.PROTOCOL) = struct
  module D = Crdt_engine.Driver.Make (P)

  type result = {
    rounds : Metrics.round array;  (** one record per measured round. *)
    quiesce_rounds : Metrics.round array;
        (** extra rounds needed to reach convergence. *)
    finals : P.crdt array;
    work : int array;  (** cumulative work units per node. *)
    converged : bool;
  }

  (** Re-export of {!Fault.plan} (the definition protocols and the
      harness share), keeping the record labels in scope here. *)
  type fault_plan = Fault.plan = {
    duplicate : float;  (** probability a delivered message is duplicated. *)
    drop : float;  (** probability a message is dropped. *)
    shuffle : bool;  (** randomize delivery order within a destination. *)
    partitions : Fault.partition list;
    delays : Fault.delay_rule list;
    crashes : Fault.crash list;
    seed : int;
        (** base seed of the per-destination fault streams: destination
            [d] draws from [Random.State.make [| seed; d |]], so random
            fault decisions do not depend on how nodes are sharded across
            domains. *)
  }

  let no_faults = Fault.none

  type engine = {
    n : int;
    shards : int;
    total_rounds : int;  (** measured rounds; the fault schedule ends here. *)
    drivers : D.t array;
    pool : Pool.t;
    faults : fault_plan;
    rng_faults : bool;
        (** whether duplicate/drop/shuffle consult the PRNG streams. *)
    adversity : bool;  (** whether partitions/delays/crashes are scheduled. *)
    rngs : Random.State.t array;
        (** per-destination fault streams; [[||]] when no random fault is
            configured — that path never consults a PRNG. *)
    parts : (Fault.partition * int array) array;
        (** partitions with their compiled per-node island ids. *)
    delay : (int, int) Hashtbl.t;  (** [src * n + dst ↦ hold] rounds. *)
    events : (int * [ `Crash | `Recover ]) list array;
        (** crash/recover events per round boundary, recoveries first;
            length [total_rounds + 1]. *)
    held : (int * int * P.message) Dynbuf.t array;
        (** per-destination [(release_round, src, msg)] captured by a
            delay rule. *)
    released : (int * P.message) Dynbuf.t array;
        (** per-destination [(src, msg)] due this round, delivered in
            the first wave without further fault checks. *)
    inbox : (int * P.message) Dynbuf.t array;
        (** per-destination [(src, msg)] pending this wave. *)
    out : (int * (int * P.message)) Dynbuf.t array;
        (** per-shard [(dst, (src, msg))] produced this wave, in
            production order. *)
    counters : Trace.counters array;  (** per-shard tallies. *)
    sinks : Trace.sink array;
        (** per-shard sink: the shard's counting sink, teed with the
            user sink when one was supplied. *)
    mutable now : int;  (** current round (measured and quiescent). *)
  }

  (* Shard [s] owns the contiguous node range [lo s, hi s): contiguity
     makes the shard-order merge of outboxes equal to the ascending
     producing-node order the sequential engine uses, which is what
     keeps per-destination message order independent of the domain
     count. *)
  let lo eng s = s * eng.n / eng.shards
  let hi eng s = (s + 1) * eng.n / eng.shards

  (* Tick phase: shard-local; messages go to the shard's outbox.
     Crashed nodes are dark — the driver does not tick them. *)
  let tick_shard eng s =
    let out = eng.out.(s) in
    let round = eng.now in
    for i = lo eng s to hi eng s - 1 do
      D.tick eng.drivers.(i) ~round ~emit:(fun ~dest msg ->
          Dynbuf.push out (dest, (i, msg)))
    done

  (* Route every outbox entry to its destination inbox.  Sequential, in
     shard order; returns whether anything is pending. *)
  let route eng =
    let any = ref false in
    Array.iter
      (fun out ->
        if not (Dynbuf.is_empty out) then begin
          any := true;
          Dynbuf.iter (fun (dst, payload) -> Dynbuf.push eng.inbox.(dst) payload) out;
          Dynbuf.clear out
        end)
      eng.out;
    !any

  (* An active partition cuts src → d this round iff some partition
     window covers [now] and puts them on different islands. *)
  let cut eng ~src ~dst =
    let round = eng.now in
    let k = Array.length eng.parts in
    let rec go i =
      if i >= k then false
      else
        let (p : Fault.partition), islands = eng.parts.(i) in
        (round >= p.from_round && round < p.heal_round
        && islands.(src) <> islands.(dst))
        || go (i + 1)
    in
    go 0

  let delay_of eng ~src ~dst =
    if Hashtbl.length eng.delay = 0 then None
    else Hashtbl.find_opt eng.delay ((src * eng.n) + dst)

  (* Handle one wave of destination [d]'s inbox plus any delay releases
     due this round (shard-local: only [drivers.(d)] and shard-owned
     buffers are touched).  Fault decisions (drop/hold/cut) are the
     transport's to make, so they are reported here; accepted messages
     go through the driver, which does the delivery accounting. *)
  let deliver_dst eng s d =
    let inb = eng.inbox.(d) in
    let rel = eng.released.(d) in
    let len = Dynbuf.length inb in
    let rlen = Dynbuf.length rel in
    if len > 0 || rlen > 0 then begin
      let snk = eng.sinks.(s) in
      let out = eng.out.(s) in
      let drv = eng.drivers.(d) in
      let round = eng.now in
      let emit ~dest msg = Dynbuf.push out (dest, (d, msg)) in
      if D.down drv then begin
        (* Everything addressed to a crashed node is lost. *)
        for k = 0 to len - 1 do
          let src, _ = Dynbuf.get inb k in
          snk.drop ~node:d ~src ~round
        done;
        for k = 0 to rlen - 1 do
          let src, _ = Dynbuf.get rel k in
          snk.drop ~node:d ~src ~round
        done;
        Dynbuf.clear inb;
        Dynbuf.clear rel
      end
      else begin
        (* Delay releases first: their fault checks ran at capture time,
           so they are delivered unconditionally (and counted now). *)
        if rlen > 0 then begin
          for k = 0 to rlen - 1 do
            let src, msg = Dynbuf.get rel k in
            D.deliver drv ~round ~src ~emit msg
          done;
          Dynbuf.clear rel
        end;
        if len > 0 then begin
          if eng.rng_faults || eng.adversity then begin
            let f = eng.faults in
            if eng.rng_faults && f.shuffle then
              Dynbuf.shuffle ~rng:eng.rngs.(d) inb;
            for k = 0 to len - 1 do
              let src, msg = Dynbuf.get inb k in
              (* Deterministic checks (partition, delay) come first so
                 the per-destination PRNG draw sequence is a function of
                 the surviving message sequence only. *)
              if cut eng ~src ~dst:d then snk.cut ~node:d ~src ~round
              else
                match delay_of eng ~src ~dst:d with
                | Some hold ->
                    snk.hold ~node:d ~src ~round;
                    Dynbuf.push eng.held.(d) (round + hold, src, msg)
                | None ->
                    let dropped =
                      eng.rng_faults && f.drop > 0.
                      && Random.State.float eng.rngs.(d) 1. < f.drop
                    in
                    if dropped then snk.drop ~node:d ~src ~round
                    else
                      let copies =
                        if
                          eng.rng_faults && f.duplicate > 0.
                          && Random.State.float eng.rngs.(d) 1. < f.duplicate
                        then 2
                        else 1
                      in
                      D.deliver drv ~round ~src ~copies ~emit msg
            done
          end
          else
            (* Fault-free fast path: no PRNG, one delivery per message. *)
            for k = 0 to len - 1 do
              let src, msg = Dynbuf.get inb k in
              D.deliver drv ~round ~src ~emit msg
            done;
          Dynbuf.clear inb
        end
      end
    end

  let deliver_shard eng s =
    for d = lo eng s to hi eng s - 1 do
      deliver_dst eng s d
    done

  (* Round boundary: apply crash/recover events scheduled for [round]
     (recoveries first, so back-to-back windows on one node behave) and
     move due delayed messages into the release buffers.  Sequential and
     in fixed order — deterministic at every domain count. *)
  let begin_round eng ~round =
    eng.now <- round;
    if round <= eng.total_rounds then
      List.iter
        (fun (i, ev) ->
          match ev with
          | `Recover -> D.recover eng.drivers.(i) ~round
          | `Crash -> D.crash eng.drivers.(i) ~round)
        eng.events.(round);
    Array.iteri
      (fun d buf ->
        if not (Dynbuf.is_empty buf) then begin
          let keep = ref [] in
          for k = 0 to Dynbuf.length buf - 1 do
            let (due, src, msg) as e = Dynbuf.get buf k in
            if due <= round then Dynbuf.push eng.released.(d) (src, msg)
            else keep := e :: !keep
          done;
          Dynbuf.clear buf;
          List.iter (Dynbuf.push buf) (List.rev !keep)
        end)
      eng.held

  (* One synchronization round: tick every live node, then drain the
     network wave by wave (each Pool.run is a barrier between waves).
     The first wave also delivers the delay releases of this round, so
     it must run even when ticking produced nothing. *)
  let sync_round eng =
    Pool.run eng.pool (tick_shard eng);
    let any_released =
      Array.exists (fun b -> not (Dynbuf.is_empty b)) eng.released
    in
    if route eng || any_released then Pool.run eng.pool (deliver_shard eng);
    while route eng do
      Pool.run eng.pool (deliver_shard eng)
    done

  (* Post-round memory snapshot (parallel per-shard sums) plus the fold
     of all shard counters into the round record. *)
  let finish_round eng ~ops_applied : Metrics.round =
    Pool.run eng.pool (fun s ->
        let c = eng.counters.(s) in
        let w = ref 0 and b = ref 0 and mb = ref 0 in
        for i = lo eng s to hi eng s - 1 do
          let drv = eng.drivers.(i) in
          w := !w + D.memory_weight drv;
          b := !b + D.memory_bytes drv;
          mb := !mb + D.metadata_memory_bytes drv
        done;
        c.memory_weight <- !w;
        c.memory_bytes <- !b;
        c.metadata_memory_bytes <- !mb);
    let r =
      Array.fold_left
        (fun (r : Metrics.round) (c : Trace.counters) ->
          {
            r with
            messages = r.messages + c.messages;
            payload = r.payload + c.payload;
            metadata = r.metadata + c.metadata;
            payload_bytes = r.payload_bytes + c.payload_bytes;
            metadata_bytes = r.metadata_bytes + c.metadata_bytes;
            wire_bytes = r.wire_bytes + c.wire_bytes;
            memory_weight = r.memory_weight + c.memory_weight;
            memory_bytes = r.memory_bytes + c.memory_bytes;
            metadata_memory_bytes =
              r.metadata_memory_bytes + c.metadata_memory_bytes;
            dropped = r.dropped + c.dropped;
            held = r.held + c.held;
            partitioned = r.partitioned + c.partitioned;
            (* Per-shard counters are reset every round, so each shard
               contributes 0 or 1; the round-level flag is their OR. *)
            sync_rounds = min 1 (r.sync_rounds + c.sync_rounds);
            digest_bytes = r.digest_bytes + c.digest_bytes;
          })
        { Metrics.empty_round with ops_applied }
        eng.counters
    in
    Array.iter Trace.reset_counters eng.counters;
    r

  let all_equal ~equal drivers =
    let first = D.state drivers.(0) in
    Array.for_all (fun drv -> equal (D.state drv) first) drivers

  (** Run a simulation.

      [ops ~round ~node state] lists the operations node [node] performs
      at the start of [round] given its current local state (Retwis needs
      the state to read follower sets); the ops phase always runs
      sequentially on the calling domain because workload generators may
      carry their own PRNG; a crashed node performs no operations.
      [quiesce_limit] bounds the post-measurement convergence phase.
      [domains] sets the pool width; any value produces bit-identical
      results for a fixed fault seed.  [bytes] selects the byte
      accounting: under {!Metrics.Exact} every delivered message is
      additionally sized exactly via [P.message_wire_bytes] into the
      [wire_bytes] counters (the estimate counters are always kept).
      [sink] attaches a {!Crdt_engine.Trace} sink to every replica (all
      events, including per-message [Send]/[Recv]); it requires
      [domains = 1], since a shared sink would otherwise race.

      @raise Invalid_argument when the fault plan is structurally
      invalid ({!Fault.validate}) or demands a fault class the protocol
      does not declare in its capabilities ({!Fault.require}), or when a
      [sink] is combined with [domains > 1]. *)
  let run ?(faults = no_faults) ?(quiesce_limit = 64) ?(domains = 1)
      ?(bytes = Metrics.Estimate) ?sink ~equal ~topology ~rounds ~ops () =
    if domains < 1 then invalid_arg "Runner.run: domains must be >= 1";
    if Option.is_some sink && domains > 1 then
      invalid_arg "Runner.run: a trace sink requires domains = 1";
    let n = Topology.size topology in
    Fault.validate ~nodes:n ~rounds faults;
    Fault.require ~protocol:P.protocol_name ~caps:P.capabilities faults;
    let exact_bytes = bytes = Metrics.Exact in
    Pool.with_pool domains (fun pool ->
        let rng_faults = Fault.rng_active faults in
        let adversity = Fault.structural faults in
        let shards = Pool.size pool in
        let delay = Hashtbl.create (max 1 (List.length faults.delays)) in
        List.iter
          (fun (d : Fault.delay_rule) ->
            Hashtbl.replace delay ((d.src * n) + d.dst) d.hold)
          faults.delays;
        let events = Array.make (rounds + 1) [] in
        List.iter
          (fun (c : Fault.crash) ->
            events.(c.crash_round) <-
              events.(c.crash_round) @ [ (c.victim, `Crash) ];
            events.(c.recover_round) <-
              (c.victim, `Recover) :: events.(c.recover_round))
          faults.crashes;
        let counters = Array.init shards (fun _ -> Trace.make_counters ()) in
        let sinks =
          Array.init shards (fun s ->
              let counting = Trace.counting counters.(s) in
              match sink with
              | None -> counting
              | Some user -> Trace.tee counting user)
        in
        (* Node → owning shard, to hand each driver its shard's sink. *)
        let shard_of =
          let a = Array.make n 0 in
          for s = 0 to shards - 1 do
            for i = s * n / shards to ((s + 1) * n / shards) - 1 do
              a.(i) <- s
            done
          done;
          a
        in
        let drivers =
          Array.init n (fun i ->
              D.create ~sink:sinks.(shard_of.(i)) ~exact_bytes ~id:i
                ~neighbors:(Topology.neighbors topology i) ~total:n ())
        in
        let eng =
          {
            n;
            shards;
            total_rounds = rounds;
            drivers;
            pool;
            faults;
            rng_faults;
            adversity;
            rngs =
              (if rng_faults then
                 Array.init n (fun d -> Random.State.make [| faults.seed; d |])
               else [||]);
            parts =
              Array.of_list
                (List.map
                   (fun p -> (p, Fault.island_map ~nodes:n p))
                   faults.partitions);
            delay;
            events;
            held = Array.init n (fun _ -> Dynbuf.create ());
            released = Array.init n (fun _ -> Dynbuf.create ());
            inbox = Array.init n (fun _ -> Dynbuf.create ());
            out = Array.init shards (fun _ -> Dynbuf.create ());
            counters;
            sinks;
            now = 0;
          }
        in
        let measured =
          Array.init rounds (fun round ->
              begin_round eng ~round;
              let applied = ref 0 in
              Array.iteri
                (fun i drv ->
                  if not (D.down drv) then
                    applied :=
                      !applied
                      + D.apply drv (ops ~round ~node:i (D.state drv)))
                drivers;
              sync_round eng;
              finish_round eng ~ops_applied:!applied)
        in
        (* Quiescent phase: keep synchronizing without new operations
           until all replicas agree (or the bound is hit).  Events
           scheduled exactly at [rounds] (a heal/recovery closing the
           measured phase) land at the first quiescent boundary, so that
           round is forced even if states momentarily look equal. *)
        let late_events = events.(rounds) <> [] in
        let quiesce = ref [] in
        let steps = ref 0 in
        while
          !steps < quiesce_limit
          && ((!steps = 0 && late_events) || not (all_equal ~equal drivers))
        do
          begin_round eng ~round:(rounds + !steps);
          incr steps;
          sync_round eng;
          quiesce := finish_round eng ~ops_applied:0 :: !quiesce
        done;
        let converged = all_equal ~equal drivers in
        if converged then
          Array.iter (fun drv -> D.finish drv ~round:(rounds + !steps)) drivers;
        {
          rounds = measured;
          quiesce_rounds = Array.of_list (List.rev !quiesce);
          finals = Array.map D.state drivers;
          work = Array.map D.work drivers;
          converged;
        })

  (** Summary over the measured rounds only. *)
  let summary r = Metrics.summarize r.rounds

  (** Summary including the quiescent convergence tail. *)
  let full_summary r =
    Metrics.summarize (Array.append r.rounds r.quiesce_rounds)

  let total_work r = Array.fold_left ( + ) 0 r.work
end
