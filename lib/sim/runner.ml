(** Round-based simulation driver.

    Substitutes the paper's Kubernetes/Emulab deployment: one simulated
    round corresponds to one synchronization interval (1 s in the paper).
    Per round, every node first executes its periodic update operations,
    then every node runs a synchronization step; messages are delivered
    and any protocol-level replies (e.g. Scuttlebutt's digest → pairs
    exchange) are processed in waves until the network drains.

    The per-replica state machine (apply → tick → ship → handle →
    crash/recover) lives in {!Crdt_engine.Driver}, and since the shard
    scheduler moved into the engine the {e parallel execution} — the
    Domain pool, tick-by-source / handle-by-destination partitioning,
    per-shard counting sinks and the deterministic shard-order outbox
    merge — lives in {!Crdt_engine.Shard}.  This module is the
    simulator-specific transport on top of it: round structure,
    topology routing and fault injection.  All accounting flows through
    the shards' {!Crdt_engine.Trace} sinks — the shard counters become
    the {!Metrics.round} records, and [run ?sink] can attach a user
    sink (e.g. the JSONL trace writer) on top.

    {2 Fault injection}

    A {!Fault.plan} describes the adversity of a run: per-message
    duplication and reordering — the channel properties state-based
    CRDTs must tolerate (Section I) — plus four {e declared-capability}
    fault classes: probabilistic loss, scheduled link partitions (healed
    at a known round), per-link delay (messages held a fixed number of
    rounds) and node crash–restart.  {!run} validates the plan against
    {!Crdt_proto.Protocol_intf.PROTOCOL.capabilities} and fails fast on
    a class the protocol does not declare, instead of the former
    behaviour of silently returning a diverged run.

    Execution semantics, per round: crash/recover events and due delayed
    messages are applied at the round boundary ([begin_round]); a
    crashed node neither ticks nor applies operations, loses its
    volatile protocol state ([P.crash]) and keeps its durable state, and
    messages addressed to it are counted as dropped; at [recover_round]
    the node rejoins via [P.recover].  Partition cuts and delay captures
    are decided per message at delivery time as pure functions of
    [(round, src, dst)]; a message released from a delay is delivered
    unconditionally (its fault checks ran when it was captured).

    {2 Determinism}

    Fault randomness is drawn from per-destination PRNG streams (seeded
    from [fault_plan.seed] and the destination id), partition/delay/
    crash decisions are deterministic in [(round, src, dst)], and the
    shared scheduler merges per-shard output in shard order, so for a
    fixed seed the parallel engine is bit-identical to the sequential
    one at every [domains] setting.  Fault-free waves ride the engine's
    own {!Crdt_engine.Shard.Make.deliver_wave}; runs with faults keep
    the per-destination fault logic here, executed on the same pool via
    [run_shards].

    After the measured rounds, the runner performs quiescent
    synchronization rounds (no further operations) until all replicas
    converge, and reports whether convergence was reached — every
    experiment doubles as a correctness check. *)

module Trace = Crdt_engine.Trace
module Dynbuf = Crdt_engine.Dynbuf
module Pool = Crdt_engine.Shard.Pool

module Make (P : Crdt_proto.Protocol_intf.PROTOCOL) = struct
  module Sh = Crdt_engine.Shard.Make (P)
  module D = Sh.D

  type result = {
    rounds : Metrics.round array;  (** one record per measured round. *)
    quiesce_rounds : Metrics.round array;
        (** extra rounds needed to reach convergence. *)
    finals : P.crdt array;
    work : int array;  (** cumulative work units per node. *)
    converged : bool;
  }

  (** Re-export of {!Fault.plan} (the definition protocols and the
      harness share), keeping the record labels in scope here. *)
  type fault_plan = Fault.plan = {
    duplicate : float;  (** probability a delivered message is duplicated. *)
    drop : float;  (** probability a message is dropped. *)
    shuffle : bool;  (** randomize delivery order within a destination. *)
    partitions : Fault.partition list;
    delays : Fault.delay_rule list;
    crashes : Fault.crash list;
    seed : int;
        (** base seed of the per-destination fault streams: destination
            [d] draws from [Random.State.make [| seed; d |]], so random
            fault decisions do not depend on how nodes are sharded across
            domains. *)
  }

  let no_faults = Fault.none

  type engine = {
    n : int;
    total_rounds : int;  (** measured rounds; the fault schedule ends here. *)
    sh : Sh.t;  (** the shared sharded scheduler (drivers, pool, sinks). *)
    faults : fault_plan;
    rng_faults : bool;
        (** whether duplicate/drop/shuffle consult the PRNG streams. *)
    adversity : bool;  (** whether partitions/delays/crashes are scheduled. *)
    rngs : Random.State.t array;
        (** per-destination fault streams; [[||]] when no random fault is
            configured — that path never consults a PRNG. *)
    parts : (Fault.partition * int array) array;
        (** partitions with their compiled per-node island ids. *)
    delay : (int, int) Hashtbl.t;  (** [src * n + dst ↦ hold] rounds. *)
    events : (int * [ `Crash | `Recover ]) list array;
        (** crash/recover events per round boundary, recoveries first;
            length [total_rounds + 1]. *)
    held : (int * int * P.message) Dynbuf.t array;
        (** per-destination [(release_round, src, msg)] captured by a
            delay rule. *)
    released : (int * P.message) Dynbuf.t array;
        (** per-destination [(src, msg)] due this round, delivered in
            the first wave without further fault checks. *)
    mutable now : int;  (** current round (measured and quiescent). *)
  }

  (* An active partition cuts src → d this round iff some partition
     window covers [now] and puts them on different islands. *)
  let cut eng ~src ~dst =
    let round = eng.now in
    let k = Array.length eng.parts in
    let rec go i =
      if i >= k then false
      else
        let (p : Fault.partition), islands = eng.parts.(i) in
        (round >= p.from_round && round < p.heal_round
        && islands.(src) <> islands.(dst))
        || go (i + 1)
    in
    go 0

  let delay_of eng ~src ~dst =
    if Hashtbl.length eng.delay = 0 then None
    else Hashtbl.find_opt eng.delay ((src * eng.n) + dst)

  (* Handle one wave of destination [d]'s inbox plus any delay releases
     due this round (shard-local: only [d]'s driver and shard-owned
     buffers are touched).  Fault decisions (drop/hold/cut) are the
     transport's to make, so they are reported here; accepted messages
     go through the driver, which does the delivery accounting. *)
  let deliver_dst eng s d =
    let inb = Sh.inbox eng.sh d in
    let rel = eng.released.(d) in
    let len = Dynbuf.length inb in
    let rlen = Dynbuf.length rel in
    if len > 0 || rlen > 0 then begin
      let snk = Sh.sink eng.sh ~shard:s in
      let out = Sh.outbox eng.sh ~shard:s in
      let drv = Sh.driver eng.sh d in
      let round = eng.now in
      let emit ~dest msg = Dynbuf.push out (dest, (d, msg)) in
      if D.down drv then begin
        (* Everything addressed to a crashed node is lost. *)
        for k = 0 to len - 1 do
          let src, _ = Dynbuf.get inb k in
          snk.drop ~node:d ~src ~round
        done;
        for k = 0 to rlen - 1 do
          let src, _ = Dynbuf.get rel k in
          snk.drop ~node:d ~src ~round
        done;
        Dynbuf.clear inb;
        Dynbuf.clear rel
      end
      else begin
        (* Delay releases first: their fault checks ran at capture time,
           so they are delivered unconditionally (and counted now). *)
        if rlen > 0 then begin
          for k = 0 to rlen - 1 do
            let src, msg = Dynbuf.get rel k in
            D.deliver drv ~round ~src ~emit msg
          done;
          Dynbuf.clear rel
        end;
        if len > 0 then begin
          let f = eng.faults in
          if eng.rng_faults && f.shuffle then
            Dynbuf.shuffle ~rng:eng.rngs.(d) inb;
          for k = 0 to len - 1 do
            let src, msg = Dynbuf.get inb k in
            (* Deterministic checks (partition, delay) come first so
               the per-destination PRNG draw sequence is a function of
               the surviving message sequence only. *)
            if cut eng ~src ~dst:d then snk.cut ~node:d ~src ~round
            else
              match delay_of eng ~src ~dst:d with
              | Some hold ->
                  snk.hold ~node:d ~src ~round;
                  Dynbuf.push eng.held.(d) (round + hold, src, msg)
              | None ->
                  let dropped =
                    eng.rng_faults && f.drop > 0.
                    && Random.State.float eng.rngs.(d) 1. < f.drop
                  in
                  if dropped then snk.drop ~node:d ~src ~round
                  else
                    let copies =
                      if
                        eng.rng_faults && f.duplicate > 0.
                        && Random.State.float eng.rngs.(d) 1. < f.duplicate
                      then 2
                      else 1
                    in
                    D.deliver drv ~round ~src ~copies ~emit msg
          done;
          Dynbuf.clear inb
        end
      end
    end

  let deliver_shard eng s =
    for d = Sh.lo eng.sh s to Sh.hi eng.sh s - 1 do
      deliver_dst eng s d
    done

  (* Round boundary: apply crash/recover events scheduled for [round]
     (recoveries first, so back-to-back windows on one node behave) and
     move due delayed messages into the release buffers.  Sequential and
     in fixed order — deterministic at every domain count. *)
  let begin_round eng ~round =
    eng.now <- round;
    if round <= eng.total_rounds then
      List.iter
        (fun (i, ev) ->
          match ev with
          | `Recover -> D.recover (Sh.driver eng.sh i) ~round
          | `Crash -> D.crash (Sh.driver eng.sh i) ~round)
        eng.events.(round);
    Array.iteri
      (fun d buf ->
        if not (Dynbuf.is_empty buf) then begin
          let keep = ref [] in
          for k = 0 to Dynbuf.length buf - 1 do
            let (due, src, msg) as e = Dynbuf.get buf k in
            if due <= round then Dynbuf.push eng.released.(d) (src, msg)
            else keep := e :: !keep
          done;
          Dynbuf.clear buf;
          List.iter (Dynbuf.push buf) (List.rev !keep)
        end)
      eng.held

  (* One synchronization round: tick every live node, then drain the
     network wave by wave (each pool barrier separates waves).  The
     first wave also delivers the delay releases of this round, so it
     must run even when ticking produced nothing.  Without faults the
     waves are the engine's own; with faults the per-destination fault
     logic above runs on the same pool. *)
  let sync_round eng =
    Sh.tick eng.sh ~round:eng.now;
    let deliver () =
      if eng.rng_faults || eng.adversity then
        Sh.run_shards eng.sh (deliver_shard eng)
      else Sh.deliver_wave eng.sh ~round:eng.now
    in
    let any_released =
      Array.exists (fun b -> not (Dynbuf.is_empty b)) eng.released
    in
    if Sh.route eng.sh || any_released then deliver ();
    while Sh.route eng.sh do
      deliver ()
    done

  (* Post-round memory snapshot (parallel per-shard sums) plus the fold
     of all shard counters into the round record. *)
  let finish_round eng ~ops_applied : Metrics.round =
    Sh.snapshot_memory eng.sh;
    let c = Sh.total_counters eng.sh in
    Sh.reset_counters eng.sh;
    {
      Metrics.messages = c.messages;
      payload = c.payload;
      metadata = c.metadata;
      payload_bytes = c.payload_bytes;
      metadata_bytes = c.metadata_bytes;
      wire_bytes = c.wire_bytes;
      memory_weight = c.memory_weight;
      memory_bytes = c.memory_bytes;
      metadata_memory_bytes = c.metadata_memory_bytes;
      ops_applied;
      dropped = c.dropped;
      held = c.held;
      partitioned = c.partitioned;
      sync_rounds = c.sync_rounds;
      digest_bytes = c.digest_bytes;
    }

  (** Run a simulation.

      [ops ~round ~node state] lists the operations node [node] performs
      at the start of [round] given its current local state (Retwis needs
      the state to read follower sets); the ops phase always runs
      sequentially on the calling domain because workload generators may
      carry their own PRNG; a crashed node performs no operations.
      [quiesce_limit] bounds the post-measurement convergence phase.
      [domains] sets the pool width; any value produces bit-identical
      results for a fixed fault seed.  [bytes] selects the byte
      accounting: under {!Metrics.Exact} every delivered message is
      additionally sized exactly via [P.message_wire_bytes] into the
      [wire_bytes] counters (the estimate counters are always kept).
      [sink] attaches a {!Crdt_engine.Trace} sink to every replica (all
      events, including per-message [Send]/[Recv]); it requires
      [domains = 1], since a shared sink would otherwise race.

      @raise Invalid_argument when the fault plan is structurally
      invalid ({!Fault.validate}) or demands a fault class the protocol
      does not declare in its capabilities ({!Fault.require}), or when a
      [sink] is combined with [domains > 1]. *)
  let run ?(faults = no_faults) ?(quiesce_limit = 64) ?(domains = 1)
      ?(bytes = Metrics.Estimate) ?sink ~equal ~topology ~rounds ~ops () =
    if domains < 1 then invalid_arg "Runner.run: domains must be >= 1";
    if Option.is_some sink && domains > 1 then
      invalid_arg "Runner.run: a trace sink requires domains = 1";
    let n = Topology.size topology in
    Fault.validate ~nodes:n ~rounds faults;
    Fault.require ~protocol:P.protocol_name ~caps:P.capabilities faults;
    let exact_bytes = bytes = Metrics.Exact in
    Pool.with_pool domains (fun pool ->
        let rng_faults = Fault.rng_active faults in
        let adversity = Fault.structural faults in
        let delay = Hashtbl.create (max 1 (List.length faults.delays)) in
        List.iter
          (fun (d : Fault.delay_rule) ->
            Hashtbl.replace delay ((d.src * n) + d.dst) d.hold)
          faults.delays;
        let events = Array.make (rounds + 1) [] in
        List.iter
          (fun (c : Fault.crash) ->
            events.(c.crash_round) <-
              events.(c.crash_round) @ [ (c.victim, `Crash) ];
            events.(c.recover_round) <-
              (c.victim, `Recover) :: events.(c.recover_round))
          faults.crashes;
        let sh =
          Sh.create ?sink ~exact_bytes ~pool ~n
            ~neighbors:(Topology.neighbors topology) ()
        in
        let eng =
          {
            n;
            total_rounds = rounds;
            sh;
            faults;
            rng_faults;
            adversity;
            rngs =
              (if rng_faults then
                 Array.init n (fun d -> Random.State.make [| faults.seed; d |])
               else [||]);
            parts =
              Array.of_list
                (List.map
                   (fun p -> (p, Fault.island_map ~nodes:n p))
                   faults.partitions);
            delay;
            events;
            held = Array.init n (fun _ -> Dynbuf.create ());
            released = Array.init n (fun _ -> Dynbuf.create ());
            now = 0;
          }
        in
        let drivers = Sh.drivers sh in
        let measured =
          Array.init rounds (fun round ->
              begin_round eng ~round;
              let applied = ref 0 in
              Array.iteri
                (fun i drv ->
                  if not (D.down drv) then
                    applied :=
                      !applied
                      + D.apply drv (ops ~round ~node:i (D.state drv)))
                drivers;
              sync_round eng;
              finish_round eng ~ops_applied:!applied)
        in
        (* Quiescent phase: keep synchronizing without new operations
           until all replicas agree (or the bound is hit).  Events
           scheduled exactly at [rounds] (a heal/recovery closing the
           measured phase) land at the first quiescent boundary, so that
           round is forced even if states momentarily look equal. *)
        let late_events = events.(rounds) <> [] in
        let quiesce = ref [] in
        let steps = ref 0 in
        while
          !steps < quiesce_limit
          && ((!steps = 0 && late_events) || not (Sh.all_equal ~equal sh))
        do
          begin_round eng ~round:(rounds + !steps);
          incr steps;
          sync_round eng;
          quiesce := finish_round eng ~ops_applied:0 :: !quiesce
        done;
        let converged = Sh.all_equal ~equal sh in
        if converged then
          Array.iter (fun drv -> D.finish drv ~round:(rounds + !steps)) drivers;
        {
          rounds = measured;
          quiesce_rounds = Array.of_list (List.rev !quiesce);
          finals = Array.map D.state drivers;
          work = Array.map D.work drivers;
          converged;
        })

  (** Summary over the measured rounds only. *)
  let summary r = Metrics.summarize r.rounds

  (** Summary including the quiescent convergence tail. *)
  let full_summary r =
    Metrics.summarize (Array.append r.rounds r.quiesce_rounds)

  let total_work r = Array.fold_left ( + ) 0 r.work
end
