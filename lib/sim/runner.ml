(** Round-based simulation driver.

    Substitutes the paper's Kubernetes/Emulab deployment: one simulated
    round corresponds to one synchronization interval (1 s in the paper).
    Per round, every node first executes its periodic update operations,
    then every node runs a synchronization step; messages are delivered
    and any protocol-level replies (e.g. Scuttlebutt's digest → pairs
    exchange) are processed in waves until the network drains.
    Transport-level faults can be injected: per-message duplication and
    reordering — the channel properties state-based CRDTs must tolerate
    (Section I) — and probabilistic message loss (tolerated by the
    retry-by-design protocols: state-based, ack-mode delta, Scuttlebutt,
    Merkle).

    {2 Engine}

    Delivery is organized as {e waves} of per-destination inboxes: a
    wave handles every pending message, grouped by destination, and the
    replies form the next wave.  Since [P.handle] only ever touches
    [nodes.(dst)], the destinations of one wave are mutually
    independent, which gives both the allocation-light sequential path
    (growable array buffers instead of list appends, mutable counters
    folded into a {!Metrics.round} once per round) and a race-free
    parallel mode: a fixed {!Pool} of domains shards the node range, and
    shard [s] owns nodes [s·n/W .. (s+1)·n/W) for ticking, delivery and
    memory snapshots alike.  Fault randomness is drawn from
    per-destination PRNG streams (seeded from [fault_plan.seed] and the
    destination id) and per-shard counters are merged in shard order, so
    for a fixed seed the parallel engine is bit-identical to the
    sequential one at every [domains] setting.

    After the measured rounds, the runner performs quiescent
    synchronization rounds (no further operations) until all replicas
    converge, and reports whether convergence was reached — every
    experiment doubles as a correctness check. *)

module Make (P : Crdt_proto.Protocol_intf.PROTOCOL) = struct
  type result = {
    rounds : Metrics.round array;  (** one record per measured round. *)
    quiesce_rounds : Metrics.round array;
        (** extra rounds needed to reach convergence. *)
    finals : P.crdt array;
    work : int array;  (** cumulative work units per node. *)
    converged : bool;
  }

  type fault_plan = {
    duplicate : float;  (** probability a delivered message is duplicated. *)
    drop : float;  (** probability a message is dropped (ack-mode only). *)
    shuffle : bool;  (** randomize delivery order within a destination. *)
    seed : int;
        (** base seed of the per-destination fault streams: destination
            [d] draws from [Random.State.make [| seed; d |]], so fault
            decisions do not depend on how nodes are sharded across
            domains. *)
  }

  let no_faults = { duplicate = 0.; drop = 0.; shuffle = false; seed = 7 }

  (* Per-shard accumulator: mutable counters bumped per message/node and
     folded into an immutable Metrics.round once per round.  All fields
     are additive ints, so merging in shard order yields the same sums
     at every domain count. *)
  type acc = {
    mutable messages : int;
    mutable payload : int;
    mutable metadata : int;
    mutable payload_bytes : int;
    mutable metadata_bytes : int;
    mutable memory_weight : int;
    mutable memory_bytes : int;
    mutable metadata_memory_bytes : int;
  }

  let make_acc () =
    {
      messages = 0;
      payload = 0;
      metadata = 0;
      payload_bytes = 0;
      metadata_bytes = 0;
      memory_weight = 0;
      memory_bytes = 0;
      metadata_memory_bytes = 0;
    }

  let reset_acc a =
    a.messages <- 0;
    a.payload <- 0;
    a.metadata <- 0;
    a.payload_bytes <- 0;
    a.metadata_bytes <- 0;
    a.memory_weight <- 0;
    a.memory_bytes <- 0;
    a.metadata_memory_bytes <- 0

  type engine = {
    n : int;
    shards : int;
    nodes : P.node array;
    pool : Pool.t;
    faults : fault_plan;
    faults_active : bool;
    rngs : Random.State.t array;
        (** per-destination fault streams; [[||]] on the fault-free fast
            path, where no PRNG is ever consulted. *)
    inbox : (int * P.message) Dynbuf.t array;
        (** per-destination [(src, msg)] pending this wave. *)
    out : (int * (int * P.message)) Dynbuf.t array;
        (** per-shard [(dst, (src, msg))] produced this wave, in
            production order. *)
    accs : acc array;  (** per-shard counters. *)
  }

  (* Shard [s] owns the contiguous node range [lo s, hi s): contiguity
     makes the shard-order merge of outboxes equal to the ascending
     producing-node order the sequential engine uses, which is what
     keeps per-destination message order independent of the domain
     count. *)
  let lo eng s = s * eng.n / eng.shards
  let hi eng s = (s + 1) * eng.n / eng.shards

  (* Tick phase: shard-local; messages go to the shard's outbox. *)
  let tick_shard eng s =
    let out = eng.out.(s) in
    for i = lo eng s to hi eng s - 1 do
      let node, msgs = P.tick eng.nodes.(i) in
      eng.nodes.(i) <- node;
      List.iter (fun (j, m) -> Dynbuf.push out (j, (i, m))) msgs
    done

  (* Route every outbox entry to its destination inbox.  Sequential, in
     shard order; returns whether anything is pending. *)
  let route eng =
    let any = ref false in
    Array.iter
      (fun out ->
        if not (Dynbuf.is_empty out) then begin
          any := true;
          Dynbuf.iter (fun (dst, payload) -> Dynbuf.push eng.inbox.(dst) payload) out;
          Dynbuf.clear out
        end)
      eng.out;
    !any

  (* Handle one wave of destination [d]'s inbox (shard-local: only
     [nodes.(d)] and shard-owned buffers are touched). *)
  let deliver_dst eng s d =
    let inb = eng.inbox.(d) in
    let len = Dynbuf.length inb in
    if len > 0 then begin
      let acc = eng.accs.(s) in
      let out = eng.out.(s) in
      let count msg =
        acc.messages <- acc.messages + 1;
        acc.payload <- acc.payload + P.payload_weight msg;
        acc.metadata <- acc.metadata + P.metadata_weight msg;
        acc.payload_bytes <- acc.payload_bytes + P.payload_bytes msg;
        acc.metadata_bytes <- acc.metadata_bytes + P.metadata_bytes msg
      in
      let handle ~src msg =
        let node, replies = P.handle eng.nodes.(d) ~src msg in
        eng.nodes.(d) <- node;
        List.iter (fun (j, m) -> Dynbuf.push out (j, (d, m))) replies
      in
      if eng.faults_active then begin
        let f = eng.faults in
        let rng = eng.rngs.(d) in
        if f.shuffle then Dynbuf.shuffle ~rng inb;
        for k = 0 to len - 1 do
          let src, msg = Dynbuf.get inb k in
          count msg;
          let dropped = f.drop > 0. && Random.State.float rng 1. < f.drop in
          if not dropped then begin
            let deliveries =
              if f.duplicate > 0. && Random.State.float rng 1. < f.duplicate
              then 2
              else 1
            in
            for _ = 1 to deliveries do
              handle ~src msg
            done
          end
        done
      end
      else
        (* Fault-free fast path: no PRNG, one delivery per message. *)
        for k = 0 to len - 1 do
          let src, msg = Dynbuf.get inb k in
          count msg;
          handle ~src msg
        done;
      Dynbuf.clear inb
    end

  let deliver_shard eng s =
    for d = lo eng s to hi eng s - 1 do
      deliver_dst eng s d
    done

  (* One synchronization round: tick every node, then drain the network
     wave by wave (each Pool.run is a barrier between waves). *)
  let sync_round eng =
    Pool.run eng.pool (tick_shard eng);
    while route eng do
      Pool.run eng.pool (deliver_shard eng)
    done

  (* Post-round memory snapshot (parallel per-shard sums) plus the fold
     of all shard counters into the round record. *)
  let finish_round eng ~ops_applied : Metrics.round =
    Pool.run eng.pool (fun s ->
        let acc = eng.accs.(s) in
        let w = ref 0 and b = ref 0 and mb = ref 0 in
        for i = lo eng s to hi eng s - 1 do
          let n = eng.nodes.(i) in
          w := !w + P.memory_weight n;
          b := !b + P.memory_bytes n;
          mb := !mb + P.metadata_memory_bytes n
        done;
        acc.memory_weight <- !w;
        acc.memory_bytes <- !b;
        acc.metadata_memory_bytes <- !mb);
    let r =
      Array.fold_left
        (fun (r : Metrics.round) a ->
          {
            r with
            messages = r.messages + a.messages;
            payload = r.payload + a.payload;
            metadata = r.metadata + a.metadata;
            payload_bytes = r.payload_bytes + a.payload_bytes;
            metadata_bytes = r.metadata_bytes + a.metadata_bytes;
            memory_weight = r.memory_weight + a.memory_weight;
            memory_bytes = r.memory_bytes + a.memory_bytes;
            metadata_memory_bytes =
              r.metadata_memory_bytes + a.metadata_memory_bytes;
          })
        { Metrics.empty_round with ops_applied }
        eng.accs
    in
    Array.iter reset_acc eng.accs;
    r

  let all_equal ~equal nodes =
    let first = P.state nodes.(0) in
    Array.for_all (fun n -> equal (P.state n) first) nodes

  (** Run a simulation.

      [ops ~round ~node state] lists the operations node [node] performs
      at the start of [round] given its current local state (Retwis needs
      the state to read follower sets); the ops phase always runs
      sequentially on the calling domain because workload generators may
      carry their own PRNG.  [quiesce_limit] bounds the post-measurement
      convergence phase.  [domains] sets the pool width; any value
      produces bit-identical results for a fixed fault seed. *)
  let run ?(faults = no_faults) ?(quiesce_limit = 64) ?(domains = 1) ~equal
      ~topology ~rounds ~ops () =
    if domains < 1 then invalid_arg "Runner.run: domains must be >= 1";
    let n = Topology.size topology in
    let nodes =
      Array.init n (fun i ->
          P.init ~id:i ~neighbors:(Topology.neighbors topology i) ~total:n)
    in
    Pool.with_pool domains (fun pool ->
        let faults_active =
          faults.duplicate > 0. || faults.drop > 0. || faults.shuffle
        in
        let shards = Pool.size pool in
        let eng =
          {
            n;
            shards;
            nodes;
            pool;
            faults;
            faults_active;
            rngs =
              (if faults_active then
                 Array.init n (fun d -> Random.State.make [| faults.seed; d |])
               else [||]);
            inbox = Array.init n (fun _ -> Dynbuf.create ());
            out = Array.init shards (fun _ -> Dynbuf.create ());
            accs = Array.init shards (fun _ -> make_acc ());
          }
        in
        let measured =
          Array.init rounds (fun round ->
              let applied = ref 0 in
              Array.iteri
                (fun i _ ->
                  List.iter
                    (fun op ->
                      nodes.(i) <- P.local_update nodes.(i) op;
                      incr applied)
                    (ops ~round ~node:i (P.state nodes.(i))))
                nodes;
              sync_round eng;
              finish_round eng ~ops_applied:!applied)
        in
        (* Quiescent phase: keep synchronizing without new operations
           until all replicas agree (or the bound is hit). *)
        let quiesce = ref [] in
        let steps = ref 0 in
        while (not (all_equal ~equal nodes)) && !steps < quiesce_limit do
          incr steps;
          sync_round eng;
          quiesce := finish_round eng ~ops_applied:0 :: !quiesce
        done;
        {
          rounds = measured;
          quiesce_rounds = Array.of_list (List.rev !quiesce);
          finals = Array.map P.state nodes;
          work = Array.map P.work nodes;
          converged = all_equal ~equal nodes;
        })

  (** Summary over the measured rounds only. *)
  let summary r = Metrics.summarize r.rounds

  (** Summary including the quiescent convergence tail. *)
  let full_summary r =
    Metrics.summarize (Array.append r.rounds r.quiesce_rounds)

  let total_work r = Array.fold_left ( + ) 0 r.work
end
