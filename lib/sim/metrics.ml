(** Measurement records shared by the simulator and the bench harness.

    All weights count lattice elements (the Table I metric: set elements
    and map entries); byte figures follow the paper's wire-size
    conventions (node id = 20 B, int = 8 B). *)

(** How byte figures are attributed.  [Estimate] uses the protocols'
    [payload_bytes]/[metadata_bytes] models (node id = 20 B, int = 8 B);
    [Exact] additionally records the exact framed wire size of every
    delivered message ([message_wire_bytes], i.e. what [lib/wire] would
    put on a socket) in the [wire_bytes] counters. *)
type accounting = Estimate | Exact

let accounting_name = function Estimate -> "estimate" | Exact -> "exact"

type round = {
  messages : int;  (** messages delivered this round. *)
  payload : int;  (** lattice elements shipped. *)
  metadata : int;  (** metadata units shipped. *)
  payload_bytes : int;
  metadata_bytes : int;
  wire_bytes : int;
      (** exact framed wire bytes of the messages delivered this round;
          0 under [Estimate] accounting. *)
  memory_weight : int;  (** elements resident across all nodes after the round. *)
  memory_bytes : int;
  metadata_memory_bytes : int;
  ops_applied : int;  (** application operations applied this round. *)
  dropped : int;
      (** messages lost this round: probabilistic drops plus messages
          addressed to a crashed node.  Dropped messages contribute
          nothing to [messages] or the payload/metadata tallies. *)
  held : int;
      (** messages captured by a per-link delay this round; each is
          counted in [messages] later, at its delivery round. *)
  partitioned : int;  (** messages cut by an active partition this round. *)
  sync_rounds : int;
      (** 1 when at least one pure control message (zero payload weight,
          non-zero metadata) was delivered this round — digest exchanges
          and reconciliation-session traffic; 0 otherwise. *)
  digest_bytes : int;
      (** wire bytes of that control traffic this round (estimate bytes
          under [Estimate] accounting). *)
}

let empty_round =
  {
    messages = 0;
    payload = 0;
    metadata = 0;
    payload_bytes = 0;
    metadata_bytes = 0;
    wire_bytes = 0;
    memory_weight = 0;
    memory_bytes = 0;
    metadata_memory_bytes = 0;
    ops_applied = 0;
    dropped = 0;
    held = 0;
    partitioned = 0;
    sync_rounds = 0;
    digest_bytes = 0;
  }

type summary = {
  rounds : int;
  total_messages : int;
  total_payload : int;
  total_metadata : int;
  total_payload_bytes : int;
  total_metadata_bytes : int;
  total_wire_bytes : int;
      (** exact framed wire bytes over all rounds; 0 under [Estimate]. *)
  avg_memory_weight : float;  (** mean across rounds of system-wide resident elements. *)
  avg_memory_bytes : float;
  max_memory_weight : int;
  avg_metadata_memory_bytes : float;
  total_ops : int;  (** application operations applied over the rounds. *)
  total_dropped : int;
  total_held : int;
  total_partitioned : int;
  total_sync_rounds : int;
      (** rounds that carried pure control traffic (digests, sessions). *)
  total_digest_bytes : int;
      (** wire bytes of that control traffic over all rounds. *)
}

let summarize (rounds : round array) : summary =
  let n = Array.length rounds in
  let fold f init = Array.fold_left f init rounds in
  let fn = float_of_int (max n 1) in
  {
    rounds = n;
    total_messages = fold (fun acc r -> acc + r.messages) 0;
    total_payload = fold (fun acc r -> acc + r.payload) 0;
    total_metadata = fold (fun acc r -> acc + r.metadata) 0;
    total_payload_bytes = fold (fun acc r -> acc + r.payload_bytes) 0;
    total_metadata_bytes = fold (fun acc r -> acc + r.metadata_bytes) 0;
    total_wire_bytes = fold (fun acc r -> acc + r.wire_bytes) 0;
    avg_memory_weight =
      float_of_int (fold (fun acc r -> acc + r.memory_weight) 0) /. fn;
    avg_memory_bytes =
      float_of_int (fold (fun acc r -> acc + r.memory_bytes) 0) /. fn;
    max_memory_weight = fold (fun acc r -> max acc r.memory_weight) 0;
    avg_metadata_memory_bytes =
      float_of_int (fold (fun acc r -> acc + r.metadata_memory_bytes) 0) /. fn;
    total_ops = fold (fun acc r -> acc + r.ops_applied) 0;
    total_dropped = fold (fun acc r -> acc + r.dropped) 0;
    total_held = fold (fun acc r -> acc + r.held) 0;
    total_partitioned = fold (fun acc r -> acc + r.partitioned) 0;
    total_sync_rounds = fold (fun acc r -> acc + r.sync_rounds) 0;
    total_digest_bytes = fold (fun acc r -> acc + r.digest_bytes) 0;
  }

(** Grand total of transmitted units (payload + metadata). *)
let total_transmission s = s.total_payload + s.total_metadata

let total_transmission_bytes s = s.total_payload_bytes + s.total_metadata_bytes

(** The headline byte figure under the given accounting mode: exact
    framed wire bytes when [Exact], the estimated payload + metadata
    model otherwise. *)
let transmission_bytes ~accounting s =
  match accounting with
  | Exact -> s.total_wire_bytes
  | Estimate -> total_transmission_bytes s

(** Metadata share of all transmitted bytes (Section V-B2). *)
let metadata_fraction s =
  let total = total_transmission_bytes s in
  if total = 0 then 0.
  else float_of_int s.total_metadata_bytes /. float_of_int total

(** Throughput over a measured wall-clock interval (the benches report
    ops/sec and messages/sec instead of only totals). *)
let ops_per_sec s ~seconds =
  if seconds <= 0. then Float.nan else float_of_int s.total_ops /. seconds

let msgs_per_sec s ~seconds =
  if seconds <= 0. then Float.nan
  else float_of_int s.total_messages /. seconds

let ratio ~baseline x =
  if baseline = 0 then Float.nan else float_of_int x /. float_of_int baseline

let fratio ~baseline x = if baseline = 0. then Float.nan else x /. baseline
