(** Zipf-distributed sampling over [0 .. n-1].

    Rank [k] (1-based) has probability proportional to [1 / k^s]; the
    Retwis evaluation sweeps [s] from 0.5 (low contention) to 1.5 (high
    contention). *)

type t

val make : rng:Random.State.t -> s:float -> n:int -> t
(** @raise Invalid_argument when [n ≤ 0] or [s < 0]. *)

val support : t -> int

val sample : t -> int
(** Draw a sample; rank 0 is the most popular item. *)

val head_mass : t -> float
(** Probability of the most popular item. *)
