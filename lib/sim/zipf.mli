(** Zipf-distributed sampling over [0 .. n-1].

    Rank [k] (1-based) has probability proportional to [1 / k^s]; the
    Retwis evaluation sweeps [s] from 0.5 (low contention) to 1.5 (high
    contention). *)

type t

val make : rng:Random.State.t -> s:float -> n:int -> t
(** @raise Invalid_argument when [n ≤ 0] or [s < 0]. *)

val support : t -> int

val sample : t -> int
(** Draw a sample; rank 0 is the most popular item. *)

val sample_at : t -> float -> int
(** [sample_at t u] is the rank a uniform draw [u ∈ [0, 1)] maps to:
    the first index whose cumulative mass reaches [u].  [sample] is
    [sample_at] of a PRNG draw; exposed for boundary tests. *)

val head_mass : t -> float
(** Exact probability mass of rank 0 — the first entry of the
    normalized CDF, not an empirical measurement. *)
