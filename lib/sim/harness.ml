(** Uniform experiment driver: runs the same workload under every
    synchronization protocol and returns comparable measurements.

    Used by the benchmark executable (one section per paper figure) and by
    the [crdtsync] CLI. *)

open Crdt_proto

type outcome = {
  protocol : string;
  summary : Metrics.summary;  (** measured rounds only. *)
  full : Metrics.summary;  (** including the convergence tail. *)
  work : int;  (** total work units across nodes. *)
  converged : bool;
}

(** Which protocols to include in a run. *)
type selection = {
  state_based : bool;
  delta_classic : bool;
  delta_bp : bool;
  delta_rr : bool;
  delta_bp_rr : bool;
  delta_ack : bool;
      (** BP+RR with the ack-based δ-buffer (Section IV-C): the only
          delta variant that tolerates message loss and partitions, so
          fault experiments enable it; excluded from the paper's default
          comparison set. *)
  scuttlebutt : bool;
  scuttlebutt_gc : bool;
  op_based : bool;
  merkle : bool;
      (** hash-tree anti-entropy, an extension baseline beyond the
          paper's protocol set (related work [32, 33]). *)
}

let all_protocols =
  {
    state_based = true;
    delta_classic = true;
    delta_bp = true;
    delta_rr = true;
    delta_bp_rr = true;
    delta_ack = false;
    scuttlebutt = true;
    scuttlebutt_gc = true;
    op_based = true;
    merkle = true;
  }

let delta_only =
  {
    state_based = false;
    delta_classic = true;
    delta_bp = false;
    delta_rr = false;
    delta_bp_rr = true;
    delta_ack = false;
    scuttlebutt = false;
    scuttlebutt_gc = false;
    op_based = false;
    merkle = false;
  }

module Make (C : Protocol_intf.CRDT) = struct
  type ops = round:int -> node:int -> C.t -> C.op list

  module Run (P : Protocol_intf.PROTOCOL with type crdt = C.t and type op = C.op) =
  struct
    module R = Runner.Make (P)

    let name = P.protocol_name
    let caps = P.capabilities

    let go ?faults ?quiesce_limit ?(domains = 1) ?bytes ~topology ~rounds
        ~(ops : ops) () =
      let res =
        R.run ?faults ?quiesce_limit ~domains ?bytes ~equal:C.equal ~topology
          ~rounds ~ops ()
      in
      {
        protocol = P.protocol_name;
        summary = R.summary res;
        full = R.full_summary res;
        work = R.total_work res;
        converged = res.R.converged;
      }
  end

  module State = Run (State_sync.Make (C))
  module Classic = Run (Delta_sync.Make (C) (Delta_sync.Classic_config))
  module Bp = Run (Delta_sync.Make (C) (Delta_sync.Bp_config))
  module Rr = Run (Delta_sync.Make (C) (Delta_sync.Rr_config))
  module BpRr = Run (Delta_sync.Make (C) (Delta_sync.Bp_rr_config))
  module Ack = Run (Delta_sync.Make (C) (Delta_sync.Ack_config))
  module Sb = Run (Scuttlebutt.Make (C) (Scuttlebutt.No_gc_config))
  module SbGc = Run (Scuttlebutt.Make (C) (Scuttlebutt.Gc_config))
  module Op = Run (Op_sync.Make (C))
  module Merkle = Run (Merkle_sync.Make (C) (Merkle_sync.Default_config))

  (** Restrict [sel] to the protocols whose declared capabilities cover
      the fault [plan]; also returns the names that were excluded, so
      callers can report what was masked instead of silently shrinking
      the comparison.  With [Fault.none] this is the identity. *)
  let mask_unsupported (plan : Fault.plan) (sel : selection) =
    let excluded = ref [] in
    let keep flag ~name ~caps =
      if (not flag) || Fault.supported ~caps plan then flag
      else begin
        excluded := name :: !excluded;
        false
      end
    in
    let sel =
      {
        state_based = keep sel.state_based ~name:State.name ~caps:State.caps;
        delta_classic =
          keep sel.delta_classic ~name:Classic.name ~caps:Classic.caps;
        delta_bp = keep sel.delta_bp ~name:Bp.name ~caps:Bp.caps;
        delta_rr = keep sel.delta_rr ~name:Rr.name ~caps:Rr.caps;
        delta_bp_rr = keep sel.delta_bp_rr ~name:BpRr.name ~caps:BpRr.caps;
        delta_ack = keep sel.delta_ack ~name:Ack.name ~caps:Ack.caps;
        scuttlebutt = keep sel.scuttlebutt ~name:Sb.name ~caps:Sb.caps;
        scuttlebutt_gc =
          keep sel.scuttlebutt_gc ~name:SbGc.name ~caps:SbGc.caps;
        op_based = keep sel.op_based ~name:Op.name ~caps:Op.caps;
        merkle = keep sel.merkle ~name:Merkle.name ~caps:Merkle.caps;
      }
    in
    (sel, List.rev !excluded)

  (** Run the selected protocols over the same topology and operation
      stream; results come back in a stable order with BP+RR last
      runnable as the ratio baseline.  [domains] selects the engine's
      pool width (results are identical at any setting).  A [faults]
      plan applies identically to every selected protocol; protocols
      whose capabilities do not cover it make {!Runner.Make.run} raise —
      use {!mask_unsupported} first to drop them instead. *)
  let run ?(selection = all_protocols) ?faults ?quiesce_limit ?(domains = 1)
      ?bytes ~topology ~rounds ~(ops : ops) () =
    let maybe flag f acc = if flag then f () :: acc else acc in
    List.rev
      ([]
      |> maybe selection.state_based (fun () ->
             State.go ?faults ?quiesce_limit ~domains ?bytes ~topology ~rounds
               ~ops ())
      |> maybe selection.delta_classic (fun () ->
             Classic.go ?faults ?quiesce_limit ~domains ?bytes ~topology
               ~rounds ~ops ())
      |> maybe selection.delta_bp (fun () ->
             Bp.go ?faults ?quiesce_limit ~domains ?bytes ~topology ~rounds
               ~ops ())
      |> maybe selection.delta_rr (fun () ->
             Rr.go ?faults ?quiesce_limit ~domains ?bytes ~topology ~rounds
               ~ops ())
      |> maybe selection.delta_bp_rr (fun () ->
             BpRr.go ?faults ?quiesce_limit ~domains ?bytes ~topology ~rounds
               ~ops ())
      |> maybe selection.delta_ack (fun () ->
             Ack.go ?faults ?quiesce_limit ~domains ?bytes ~topology ~rounds
               ~ops ())
      |> maybe selection.scuttlebutt (fun () ->
             Sb.go ?faults ?quiesce_limit ~domains ?bytes ~topology ~rounds
               ~ops ())
      |> maybe selection.scuttlebutt_gc (fun () ->
             SbGc.go ?faults ?quiesce_limit ~domains ?bytes ~topology ~rounds
               ~ops ())
      |> maybe selection.op_based (fun () ->
             Op.go ?faults ?quiesce_limit ~domains ?bytes ~topology ~rounds
               ~ops ())
      |> maybe selection.merkle (fun () ->
             Merkle.go ?faults ?quiesce_limit ~domains ?bytes ~topology ~rounds
               ~ops ()))

  (** Find the ratio baseline in a result list: BP+RR when present,
      otherwise its ack-mode variant (fault runs may mask plain BP+RR),
      otherwise the first outcome. *)
  let baseline outcomes =
    let find name = List.find_opt (fun o -> o.protocol = name) outcomes in
    match find "delta-bp+rr" with
    | Some o -> o
    | None -> (
        match find "delta-bp+rr-ack" with
        | Some o -> o
        | None -> (
            match outcomes with
            | o :: _ -> o
            | [] ->
                invalid_arg "Harness.baseline: empty outcome list"))
end
