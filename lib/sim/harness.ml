(** Uniform experiment driver: runs the same workload under every
    synchronization protocol and returns comparable measurements.

    Protocol dispatch is registry-driven: the harness walks
    {!Crdt_engine.Registry.protocols} and instantiates each selected
    constructor against the experiment's CRDT, so a protocol added to the
    registry shows up here (and in every harness client) without edits.

    Used by the benchmark executable (one section per paper figure) and by
    the [crdtsync] CLI. *)

open Crdt_proto
module Registry = Crdt_engine.Registry

type outcome = {
  protocol : string;
  summary : Metrics.summary;  (** measured rounds only. *)
  full : Metrics.summary;  (** including the convergence tail. *)
  work : int;  (** total work units across nodes. *)
  converged : bool;
}

(** Which protocols to include in a run. *)
type selection = {
  state_based : bool;
  delta_classic : bool;
  delta_bp : bool;
  delta_rr : bool;
  delta_bp_rr : bool;
  delta_ack : bool;
      (** BP+RR with the ack-based δ-buffer (Section IV-C): the only
          delta variant that tolerates message loss and partitions, so
          fault experiments enable it; excluded from the paper's default
          comparison set. *)
  scuttlebutt : bool;
  scuttlebutt_gc : bool;
  op_based : bool;
  merkle : bool;
      (** hash-tree anti-entropy, an extension baseline beyond the
          paper's protocol set (related work [32, 33]). *)
  conflict_sync : bool;
      (** digest/IBLT divergence reconciliation (ConflictSync), another
          extension baseline. *)
}

let all_protocols =
  {
    state_based = true;
    delta_classic = true;
    delta_bp = true;
    delta_rr = true;
    delta_bp_rr = true;
    delta_ack = false;
    scuttlebutt = true;
    scuttlebutt_gc = true;
    op_based = true;
    merkle = true;
    conflict_sync = true;
  }

let delta_only =
  {
    state_based = false;
    delta_classic = true;
    delta_bp = false;
    delta_rr = false;
    delta_bp_rr = true;
    delta_ack = false;
    scuttlebutt = false;
    scuttlebutt_gc = false;
    op_based = false;
    merkle = false;
    conflict_sync = false;
  }

(* Registry name ↔ selection field.  The registry order is the stable
   reporting order, so [run] only needs the getters/setters here. *)
let enabled sel = function
  | "state-based" -> sel.state_based
  | "delta-classic" -> sel.delta_classic
  | "delta-bp" -> sel.delta_bp
  | "delta-rr" -> sel.delta_rr
  | "delta-bp+rr" -> sel.delta_bp_rr
  | "delta-bp+rr-ack" -> sel.delta_ack
  | "scuttlebutt" -> sel.scuttlebutt
  | "scuttlebutt-gc" -> sel.scuttlebutt_gc
  | "op-based" -> sel.op_based
  | "merkle" -> sel.merkle
  | "conflict-sync" -> sel.conflict_sync
  | name -> invalid_arg ("Harness: protocol not mapped to selection: " ^ name)

let disable sel = function
  | "state-based" -> { sel with state_based = false }
  | "delta-classic" -> { sel with delta_classic = false }
  | "delta-bp" -> { sel with delta_bp = false }
  | "delta-rr" -> { sel with delta_rr = false }
  | "delta-bp+rr" -> { sel with delta_bp_rr = false }
  | "delta-bp+rr-ack" -> { sel with delta_ack = false }
  | "scuttlebutt" -> { sel with scuttlebutt = false }
  | "scuttlebutt-gc" -> { sel with scuttlebutt_gc = false }
  | "op-based" -> { sel with op_based = false }
  | "merkle" -> { sel with merkle = false }
  | "conflict-sync" -> { sel with conflict_sync = false }
  | name -> invalid_arg ("Harness: protocol not mapped to selection: " ^ name)

let enable sel = function
  | "state-based" -> { sel with state_based = true }
  | "delta-classic" -> { sel with delta_classic = true }
  | "delta-bp" -> { sel with delta_bp = true }
  | "delta-rr" -> { sel with delta_rr = true }
  | "delta-bp+rr" -> { sel with delta_bp_rr = true }
  | "delta-bp+rr-ack" -> { sel with delta_ack = true }
  | "scuttlebutt" -> { sel with scuttlebutt = true }
  | "scuttlebutt-gc" -> { sel with scuttlebutt_gc = true }
  | "op-based" -> { sel with op_based = true }
  | "merkle" -> { sel with merkle = true }
  | "conflict-sync" -> { sel with conflict_sync = true }
  | name -> invalid_arg ("Harness: protocol not mapped to selection: " ^ name)

(* Everything off: the base for an explicit --protocol list. *)
let none_protocols =
  {
    state_based = false;
    delta_classic = false;
    delta_bp = false;
    delta_rr = false;
    delta_bp_rr = false;
    delta_ack = false;
    scuttlebutt = false;
    scuttlebutt_gc = false;
    op_based = false;
    merkle = false;
    conflict_sync = false;
  }

module Make (C : Protocol_intf.CRDT) = struct
  type ops = round:int -> node:int -> C.t -> C.op list

  (** Restrict [sel] to the protocols whose declared capabilities cover
      the fault [plan]; also returns the names that were excluded, so
      callers can report what was masked instead of silently shrinking
      the comparison.  With [Fault.none] this is the identity. *)
  let mask_unsupported (plan : Fault.plan) (sel : selection) =
    let excluded = ref [] in
    let sel =
      List.fold_left
        (fun sel maker ->
          let name = Registry.protocol_name maker in
          if
            enabled sel name
            && not (Fault.supported ~caps:(Registry.capabilities maker) plan)
          then begin
            excluded := name :: !excluded;
            disable sel name
          end
          else sel)
        sel Registry.protocols
    in
    (sel, List.rev !excluded)

  let run_one (maker : Registry.proto) ?faults ?quiesce_limit ?(domains = 1)
      ?bytes ?sink ~topology ~rounds ~(ops : ops) () =
    let module P =
      (val Registry.instantiate maker
             (module C : Protocol_intf.CRDT with type t = C.t and type op = C.op))
    in
    let module R = Runner.Make (P) in
    (match sink with
    | Some (s : Crdt_engine.Trace.sink) ->
        s.meta ("protocol=" ^ P.protocol_name)
    | None -> ());
    let res =
      R.run ?faults ?quiesce_limit ~domains ?bytes ?sink ~equal:C.equal
        ~topology ~rounds ~ops ()
    in
    {
      protocol = P.protocol_name;
      summary = R.summary res;
      full = R.full_summary res;
      work = R.total_work res;
      converged = res.R.converged;
    }

  (** Run the selected protocols over the same topology and operation
      stream; results come back in the registry's stable order.
      [domains] selects the engine's pool width (results are identical
      at any setting).  A [faults] plan applies identically to every
      selected protocol; protocols whose capabilities do not cover it
      make {!Runner.Make.run} raise — use {!mask_unsupported} first to
      drop them instead.  [sink] attaches a trace sink to every run
      (each prefixed with a [protocol=<name>] meta event); it requires
      [domains = 1]. *)
  let run ?(selection = all_protocols) ?faults ?quiesce_limit ?(domains = 1)
      ?bytes ?sink ~topology ~rounds ~(ops : ops) () =
    List.filter_map
      (fun maker ->
        if enabled selection (Registry.protocol_name maker) then
          Some
            (run_one maker ?faults ?quiesce_limit ~domains ?bytes ?sink
               ~topology ~rounds ~ops ())
        else None)
      Registry.protocols

  (** Find the ratio baseline in a result list: BP+RR when present,
      otherwise its ack-mode variant (fault runs may mask plain BP+RR),
      otherwise the first outcome. *)
  let baseline outcomes =
    let find name = List.find_opt (fun o -> o.protocol = name) outcomes in
    match find "delta-bp+rr" with
    | Some o -> o
    | None -> (
        match find "delta-bp+rr-ack" with
        | Some o -> o
        | None -> (
            match outcomes with
            | o :: _ -> o
            | [] ->
                invalid_arg "Harness.baseline: empty outcome list"))
end
