(** Uniform experiment driver: runs the same workload under every
    synchronization protocol and returns comparable measurements.

    Used by the benchmark executable (one section per paper figure) and by
    the [crdtsync] CLI. *)

open Crdt_proto

type outcome = {
  protocol : string;
  summary : Metrics.summary;  (** measured rounds only. *)
  full : Metrics.summary;  (** including the convergence tail. *)
  work : int;  (** total work units across nodes. *)
  converged : bool;
}

(** Which protocols to include in a run. *)
type selection = {
  state_based : bool;
  delta_classic : bool;
  delta_bp : bool;
  delta_rr : bool;
  delta_bp_rr : bool;
  scuttlebutt : bool;
  scuttlebutt_gc : bool;
  op_based : bool;
  merkle : bool;
      (** hash-tree anti-entropy, an extension baseline beyond the
          paper's protocol set (related work [32, 33]). *)
}

let all_protocols =
  {
    state_based = true;
    delta_classic = true;
    delta_bp = true;
    delta_rr = true;
    delta_bp_rr = true;
    scuttlebutt = true;
    scuttlebutt_gc = true;
    op_based = true;
    merkle = true;
  }

let delta_only =
  {
    state_based = false;
    delta_classic = true;
    delta_bp = false;
    delta_rr = false;
    delta_bp_rr = true;
    scuttlebutt = false;
    scuttlebutt_gc = false;
    op_based = false;
    merkle = false;
  }

module Make (C : Protocol_intf.CRDT) = struct
  type ops = round:int -> node:int -> C.t -> C.op list

  module Run (P : Protocol_intf.PROTOCOL with type crdt = C.t and type op = C.op) =
  struct
    module R = Runner.Make (P)

    let go ?(domains = 1) ~topology ~rounds ~(ops : ops) () =
      let res = R.run ~domains ~equal:C.equal ~topology ~rounds ~ops () in
      {
        protocol = P.protocol_name;
        summary = R.summary res;
        full = R.full_summary res;
        work = R.total_work res;
        converged = res.R.converged;
      }
  end

  module State = Run (State_sync.Make (C))
  module Classic = Run (Delta_sync.Make (C) (Delta_sync.Classic_config))
  module Bp = Run (Delta_sync.Make (C) (Delta_sync.Bp_config))
  module Rr = Run (Delta_sync.Make (C) (Delta_sync.Rr_config))
  module BpRr = Run (Delta_sync.Make (C) (Delta_sync.Bp_rr_config))
  module Sb = Run (Scuttlebutt.Make (C) (Scuttlebutt.No_gc_config))
  module SbGc = Run (Scuttlebutt.Make (C) (Scuttlebutt.Gc_config))
  module Op = Run (Op_sync.Make (C))
  module Merkle = Run (Merkle_sync.Make (C) (Merkle_sync.Default_config))

  (** Run the selected protocols over the same topology and operation
      stream; results come back in a stable order with BP+RR last
      runnable as the ratio baseline.  [domains] selects the engine's
      pool width (results are identical at any setting). *)
  let run ?(selection = all_protocols) ?(domains = 1) ~topology ~rounds
      ~(ops : ops) () =
    let maybe flag f acc = if flag then f () :: acc else acc in
    List.rev
      ([]
      |> maybe selection.state_based (fun () ->
             State.go ~domains ~topology ~rounds ~ops ())
      |> maybe selection.delta_classic (fun () ->
             Classic.go ~domains ~topology ~rounds ~ops ())
      |> maybe selection.delta_bp (fun () ->
             Bp.go ~domains ~topology ~rounds ~ops ())
      |> maybe selection.delta_rr (fun () ->
             Rr.go ~domains ~topology ~rounds ~ops ())
      |> maybe selection.delta_bp_rr (fun () ->
             BpRr.go ~domains ~topology ~rounds ~ops ())
      |> maybe selection.scuttlebutt (fun () ->
             Sb.go ~domains ~topology ~rounds ~ops ())
      |> maybe selection.scuttlebutt_gc (fun () ->
             SbGc.go ~domains ~topology ~rounds ~ops ())
      |> maybe selection.op_based (fun () ->
             Op.go ~domains ~topology ~rounds ~ops ())
      |> maybe selection.merkle (fun () ->
             Merkle.go ~domains ~topology ~rounds ~ops ()))

  (** Find the BP+RR baseline in a result list. *)
  let baseline outcomes =
    match
      List.find_opt (fun o -> o.protocol = "delta-bp+rr") outcomes
    with
    | Some o -> o
    | None -> invalid_arg "Harness.baseline: run BP+RR to compute ratios"
end
